// Package alltoallx is a Go reproduction of "Scaling All-to-all Operations
// Across Emerging Many-Core Supercomputers" (Kinkead et al., SC Workshops
// '25): a library of all-to-all collective algorithms for many-core
// systems — hierarchical, multi-leader, node-aware, and the paper's novel
// locality-aware and multi-leader+node-aware schemes — together with the
// two substrates needed to use and evaluate them without MPI:
//
//   - a live in-process message-passing runtime (one goroutine per rank)
//     for real data exchanges on the machine at hand, and
//   - a deterministic discrete-event simulator with cost models of the
//     paper's three systems (Dane, Amber, Tuolomne) for cluster-scale
//     performance studies.
//
// Quick start (live ranks, real data):
//
//	mapping, _ := alltoallx.NewMapping(alltoallx.SapphireRapidsNode(), 2, 8)
//	err := alltoallx.RunLive(alltoallx.LiveConfig{Mapping: mapping}, func(c alltoallx.Comm) error {
//		a, err := alltoallx.New("node-aware", c, 64, alltoallx.Options{})
//		if err != nil {
//			return err
//		}
//		send, recv := alltoallx.Alloc(c.Size()*64), alltoallx.Alloc(c.Size()*64)
//		return a.Alltoall(send, recv, 64)
//	})
//
// Performance studies run the same per-rank body under Simulate with a
// Machine preset. The cmd/alltoallbench tool regenerates every table and
// figure of the paper, and cmd/a2atune precomputes per-size dispatch
// tables for the "tuned" algorithm; see README.md for the architecture
// map and the tune -> dispatch workflow.
//
// # Unified persistent-operation API
//
// Every collective follows one model: a registry of named algorithms, a
// collective constructor that performs all communicator splitting and
// staging setup (outside the timed region, as the paper measures), and a
// reusable operation object with a Phases() breakdown:
//
//	New(name, c, maxBlock, o)        -> Alltoaller      (fixed-size all-to-all)
//	NewV(name, c, maxTotal, o)       -> Alltoallver     (MPI_Alltoallv)
//	NewAllgather(name, c, o)         -> Allgatherer
//	NewAllreduce(name, c, o)         -> Allreducer
//	NewReduceScatter(name, c, o)     -> ReduceScatterer
//
// Both all-to-all registries include a "tuned" meta-algorithm driven by a
// persisted autotune table (cmd/a2atune -op alltoall|alltoallv); the
// one-shot free functions (Alltoallv, AllgatherRing, ...) remain as
// deprecated shims over the same implementations — see deprecated.go for
// the full shim-to-replacement table. DisplsFromCounts is the packing
// helper for variable-sized calls: it turns per-peer byte counts into
// contiguous displacements plus the total buffer length.
//
// # Nonblocking exchanges
//
// Every persistent operation is also nonblocking: Start launches the
// exchange off the caller's critical path and returns a Handle with Wait
// and Test; the blocking methods are exactly Start followed by Wait, and
// at most one exchange per operation may be outstanding (MPI
// persistent-request semantics). On the live runtime a started exchange
// runs on its own driver goroutine, overlapping with whatever Go code the
// caller runs before Wait. In the simulator, Comm.Compute(seconds)
// models application compute, and any compute issued while a handle is
// outstanding hides behind the exchange's waiting time — so a
// Start / Compute / Wait sequence costs max(comm, compute + software
// overhead) of virtual time, and `alltoallbench -experiment overlap`
// quantifies the hideable fraction per algorithm:
//
//	a, _ := alltoallx.New("node-aware", c, 64, alltoallx.Options{})
//	h, err := a.Start(send, recv, 64)
//	if err != nil { return err }
//	computeSomething()        // overlapped with the exchange
//	c.Compute(0.001)          // modeled compute (simulator)
//	if err := h.Wait(); err != nil { return err }
package alltoallx

import (
	"alltoallx/internal/comm"
	"alltoallx/internal/core"
	"alltoallx/internal/netmodel"
	"alltoallx/internal/runtime"
	"alltoallx/internal/sim"
	"alltoallx/internal/topo"
	"alltoallx/internal/trace"
)

// Comm is the MPI-like communicator all algorithms are written against.
type Comm = comm.Comm

// Buffer is a communication buffer (real or virtual).
type Buffer = comm.Buffer

// Request is an in-flight nonblocking operation.
type Request = comm.Request

// Alloc returns a real zeroed buffer of n bytes.
func Alloc(n int) Buffer { return comm.Alloc(n) }

// Wrap returns a buffer aliasing p.
func Wrap(p []byte) Buffer { return comm.Wrap(p) }

// Virtual returns a storage-less buffer of n bytes for simulations.
func Virtual(n int) Buffer { return comm.Virtual(n) }

// NodeSpec describes the shape of one node (sockets x NUMA x cores).
type NodeSpec = topo.Spec

// Mapping is a block layout of ranks onto nodes.
type Mapping = topo.Mapping

// NewMapping lays out nodes*ppn ranks over nodes of the given shape.
func NewMapping(spec NodeSpec, nodes, ppn int) (*Mapping, error) {
	return topo.NewMapping(spec, nodes, ppn)
}

// SapphireRapidsNode is the 112-core node shape of Dane and Amber.
func SapphireRapidsNode() NodeSpec { return topo.SapphireRapids() }

// MI300ANode is the 96-core node shape of Tuolomne.
func MI300ANode() NodeSpec { return topo.MI300A() }

// Alltoaller is a persistent all-to-all operation.
type Alltoaller = core.Alltoaller

// Handle is an in-flight started collective exchange: Wait blocks until
// completion, Test polls. Handles come from the Start method of any
// persistent operation and are driven by the rank that started them.
type Handle = core.Handle

// WaitAll waits for every handle, ignoring nil entries, and returns the
// joined errors of the failures.
func WaitAll(hs []Handle) error { return core.WaitAll(hs) }

// Options configures algorithm construction.
type Options = core.Options

// Inner selects the exchange used inside node-aware algorithms.
type Inner = core.Inner

// Inner exchange choices (the paper's solid/dashed line variants).
const (
	InnerPairwise    = core.InnerPairwise
	InnerNonblocking = core.InnerNonblocking
	InnerBruck       = core.InnerBruck
)

// Phase names one internal stage of an algorithm (gather, scatter, inter,
// intra, repack, total).
type Phase = trace.Phase

// Phases reported by Alltoaller.Phases.
const (
	PhaseGather  = trace.PhaseGather
	PhaseScatter = trace.PhaseScatter
	PhaseInter   = trace.PhaseInter
	PhaseIntra   = trace.PhaseIntra
	PhaseRepack  = trace.PhaseRepack
	PhaseTotal   = trace.PhaseTotal
)

// Dispatch is the size-bucketed algorithm-selection spec the "tuned"
// meta-algorithm executes (see internal/autotune for building one offline
// and persisting it as JSON).
type Dispatch = core.Dispatch

// DispatchEntry is one size bucket of a Dispatch.
type DispatchEntry = core.DispatchEntry

// Op names the collective operation a dispatch spec or autotune table was
// tuned for.
type Op = core.Op

// Tunable operation kinds.
const (
	OpAlltoall  = core.OpAlltoall
	OpAlltoallv = core.OpAlltoallv
)

// New constructs the named algorithm on c (collective call). Algorithm
// names: pairwise, nonblocking, batched, bruck, hierarchical, multileader,
// node-aware, locality-aware, multileader-node-aware, system-mpi, tuned.
func New(name string, c Comm, maxBlock int, o Options) (Alltoaller, error) {
	return core.New(name, c, maxBlock, o)
}

// Algorithms returns all registered algorithm names.
func Algorithms() []string { return core.Names() }

// LiveConfig configures an in-process world of ranks.
type LiveConfig = runtime.Config

// RunLive spawns one goroutine per rank and calls body with each rank's
// world communicator.
func RunLive(cfg LiveConfig, body func(c Comm) error) error {
	return runtime.Run(cfg, body)
}

// Machine is a simulated machine model.
type Machine = netmodel.Params

// Dane returns the model of LLNL's Dane (Sapphire Rapids + Omni-Path).
func Dane() Machine { return netmodel.Dane() }

// Amber returns the model of SNL's Amber (Sapphire Rapids + Omni-Path).
func Amber() Machine { return netmodel.Amber() }

// Tuolomne returns the model of LLNL's Tuolomne (MI300A + Slingshot-11).
func Tuolomne() Machine { return netmodel.Tuolomne() }

// MachineByName returns a machine preset by name.
func MachineByName(name string) (Machine, error) { return netmodel.ByName(name) }

// SimConfig configures a simulated cluster run.
type SimConfig = sim.ClusterConfig

// SimStats summarizes a finished simulation.
type SimStats = sim.Stats

// Simulate runs body once per simulated rank under virtual time.
func Simulate(cfg SimConfig, body func(c Comm) error) (SimStats, error) {
	return sim.RunCluster(cfg, body)
}
