// Public-API tests: everything a downstream user touches goes through the
// facade exercised here.
package alltoallx_test

import (
	"fmt"
	"testing"

	"alltoallx"
	"alltoallx/internal/testutil"
)

func TestAlgorithmsList(t *testing.T) {
	t.Parallel()
	algos := alltoallx.Algorithms()
	// 11 loop-coded algorithms plus the six schedule-backed ones.
	if len(algos) != 17 {
		t.Fatalf("Algorithms() = %v", algos)
	}
	sched := 0
	for _, a := range algos {
		if len(a) > 6 && a[:6] == "sched:" {
			sched++
		}
	}
	if sched != 6 {
		t.Fatalf("want 6 sched:* algorithms in %v", algos)
	}
}

func TestMachinePresets(t *testing.T) {
	t.Parallel()
	for _, m := range []alltoallx.Machine{alltoallx.Dane(), alltoallx.Amber(), alltoallx.Tuolomne()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
	if _, err := alltoallx.MachineByName("Dane"); err != nil {
		t.Error(err)
	}
	if _, err := alltoallx.MachineByName("nope"); err == nil {
		t.Error("unknown machine accepted")
	}
	if alltoallx.SapphireRapidsNode().CoresPerNode() != 112 {
		t.Error("Sapphire Rapids node shape wrong")
	}
	if alltoallx.MI300ANode().CoresPerNode() != 96 {
		t.Error("MI300A node shape wrong")
	}
}

func TestBuffers(t *testing.T) {
	t.Parallel()
	b := alltoallx.Alloc(8)
	if b.Len() != 8 || b.IsVirtual() {
		t.Error("Alloc wrong")
	}
	v := alltoallx.Virtual(8)
	if !v.IsVirtual() {
		t.Error("Virtual wrong")
	}
	w := alltoallx.Wrap([]byte{1, 2})
	if w.Len() != 2 {
		t.Error("Wrap wrong")
	}
}

// TestPublicLiveRoundTrip drives a full live exchange through the facade
// only, for every algorithm.
func TestPublicLiveRoundTrip(t *testing.T) {
	t.Parallel()
	spec := alltoallx.NodeSpec{Sockets: 2, NumaPerSocket: 2, CoresPerNuma: 2}
	mapping, err := alltoallx.NewMapping(spec, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	const block = 48
	for _, algo := range alltoallx.Algorithms() {
		algo := algo
		t.Run(algo, func(t *testing.T) {
			t.Parallel()
			opts := alltoallx.Options{PPL: 2, PPG: 2}
			switch algo {
			case "system-mpi":
				opts.Sys = alltoallx.Dane().Sys
			case "tuned":
				opts.Table = &alltoallx.Dispatch{Entries: []alltoallx.DispatchEntry{
					{MaxBlock: 8, Algo: "bruck"},
					{MaxBlock: block, Algo: "node-aware"},
				}}
			}
			err := alltoallx.RunLive(alltoallx.LiveConfig{Mapping: mapping}, func(c alltoallx.Comm) error {
				a, err := alltoallx.New(algo, c, block, opts)
				if err != nil {
					return err
				}
				if a.Name() == "" {
					return fmt.Errorf("empty name")
				}
				p := c.Size()
				send := alltoallx.Alloc(p * block)
				recv := alltoallx.Alloc(p * block)
				testutil.FillAlltoall(send, c.Rank(), p, block)
				if err := a.Alltoall(send, recv, block); err != nil {
					return err
				}
				return testutil.CheckAlltoall(recv, c.Rank(), p, block)
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPublicStartWait drives every registered algorithm through the
// nonblocking facade — Start, a Test poll, Wait (via WaitAll) — and
// verifies the exchange, including the dispatching meta-algorithms whose
// bucket selection runs inside the started body.
func TestPublicStartWait(t *testing.T) {
	t.Parallel()
	spec := alltoallx.NodeSpec{Sockets: 2, NumaPerSocket: 2, CoresPerNuma: 2}
	mapping, err := alltoallx.NewMapping(spec, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	const block = 48
	for _, algo := range alltoallx.Algorithms() {
		algo := algo
		t.Run(algo, func(t *testing.T) {
			t.Parallel()
			opts := alltoallx.Options{PPL: 2, PPG: 2}
			switch algo {
			case "system-mpi":
				opts.Sys = alltoallx.Dane().Sys
			case "tuned":
				opts.Table = &alltoallx.Dispatch{Entries: []alltoallx.DispatchEntry{
					{MaxBlock: 8, Algo: "bruck"},
					{MaxBlock: block, Algo: "node-aware"},
				}}
			}
			err := alltoallx.RunLive(alltoallx.LiveConfig{Mapping: mapping}, func(c alltoallx.Comm) error {
				a, err := alltoallx.New(algo, c, block, opts)
				if err != nil {
					return err
				}
				p := c.Size()
				send := alltoallx.Alloc(p * block)
				recv := alltoallx.Alloc(p * block)
				testutil.FillAlltoall(send, c.Rank(), p, block)
				h, err := a.Start(send, recv, block)
				if err != nil {
					return err
				}
				if _, err := h.Test(); err != nil {
					return err
				}
				if err := alltoallx.WaitAll([]alltoallx.Handle{nil, h}); err != nil {
					return err
				}
				return testutil.CheckAlltoall(recv, c.Rank(), p, block)
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPublicSimulate runs a simulated exchange through the facade and
// checks the phase constants line up with recorded phases.
func TestPublicSimulate(t *testing.T) {
	t.Parallel()
	m := alltoallx.Dane()
	m.Node = alltoallx.NodeSpec{Sockets: 2, NumaPerSocket: 2, CoresPerNuma: 2}
	const block = 128
	phases := make([]map[alltoallx.Phase]float64, 16)
	stats, err := alltoallx.Simulate(alltoallx.SimConfig{Model: m, Nodes: 2, PPN: 8, Seed: 3}, func(c alltoallx.Comm) error {
		a, err := alltoallx.New("multileader-node-aware", c, block, alltoallx.Options{PPL: 2})
		if err != nil {
			return err
		}
		send := alltoallx.Virtual(c.Size() * block)
		recv := alltoallx.Virtual(c.Size() * block)
		if err := a.Alltoall(send, recv, block); err != nil {
			return err
		}
		phases[c.Rank()] = a.Phases()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.VirtualSeconds <= 0 || stats.Messages == 0 {
		t.Fatalf("stats: %+v", stats)
	}
	if phases[0][alltoallx.PhaseTotal] <= 0 {
		t.Errorf("rank 0 phases: %v", phases[0])
	}
	// Leader rank 0 must have recorded the inter phase.
	if phases[0][alltoallx.PhaseInter] <= 0 {
		t.Errorf("rank 0 inter phase missing: %v", phases[0])
	}
}

// TestInnerVariants checks the facade's Inner constants drive distinct
// code paths that all produce correct results.
func TestInnerVariants(t *testing.T) {
	t.Parallel()
	spec := alltoallx.NodeSpec{Sockets: 1, NumaPerSocket: 2, CoresPerNuma: 4}
	mapping, err := alltoallx.NewMapping(spec, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	const block = 16
	for _, inner := range []alltoallx.Inner{alltoallx.InnerPairwise, alltoallx.InnerNonblocking, alltoallx.InnerBruck} {
		inner := inner
		t.Run(string(inner), func(t *testing.T) {
			t.Parallel()
			err := alltoallx.RunLive(alltoallx.LiveConfig{Mapping: mapping}, func(c alltoallx.Comm) error {
				a, err := alltoallx.New("node-aware", c, block, alltoallx.Options{Inner: inner})
				if err != nil {
					return err
				}
				p := c.Size()
				send := alltoallx.Alloc(p * block)
				recv := alltoallx.Alloc(p * block)
				testutil.FillAlltoall(send, c.Rank(), p, block)
				if err := a.Alltoall(send, recv, block); err != nil {
					return err
				}
				return testutil.CheckAlltoall(recv, c.Rank(), p, block)
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}
