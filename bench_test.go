// Benchmarks regenerating each paper table/figure at reduced scale, plus
// wall-clock microbenchmarks of the live runtime and model ablations.
//
// Every BenchmarkFigNN runs one representative configuration of that
// figure's experiment through the discrete-event simulator and reports the
// simulated collective time as "sim-sec/op" (the figures' y-axis). Full
// sweeps at paper scale are produced by cmd/alltoallbench -scale full; see
// EXPERIMENTS.md for the recorded results.
package alltoallx_test

import (
	"fmt"
	"io"
	"testing"

	"alltoallx"
	"alltoallx/internal/bench"
	"alltoallx/internal/core"
	"alltoallx/internal/netmodel"
	"alltoallx/internal/testutil"
	"alltoallx/internal/trace"
)

// benchScale is small enough for a benchmark iteration to finish in tens
// of milliseconds while keeping the node-aware structure intact.
func benchScale() bench.Scale {
	return bench.Scale{Name: "bench", NodeCap: 4, PPN: 8, Runs: 1, SizeStride: 100}
}

// reportExperiment runs one experiment at bench scale and reports the
// simulated seconds of the last series at the largest swept x.
func reportExperiment(b *testing.B, id string) {
	b.Helper()
	exp, err := bench.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	var last float64
	for i := 0; i < b.N; i++ {
		t, err := bench.RunExperiment(exp, benchScale(), nil)
		if err != nil {
			b.Fatal(err)
		}
		row := t.Values[len(t.Values)-1]
		last = row[len(row)-1]
	}
	b.ReportMetric(last, "sim-sec/op")
}

func BenchmarkTable1Systems(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.FormatTable1(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig07HierarchicalVsMultileader(b *testing.B) { reportExperiment(b, "fig7") }
func BenchmarkFig08NodeVsLocalityAware(b *testing.B)       { reportExperiment(b, "fig8") }
func BenchmarkFig09MultileaderLocality(b *testing.B)       { reportExperiment(b, "fig9") }
func BenchmarkFig10AllAlgorithms(b *testing.B)             { reportExperiment(b, "fig10") }
func BenchmarkFig11NodeScaling4B(b *testing.B)             { reportExperiment(b, "fig11") }
func BenchmarkFig12NodeScaling4096B(b *testing.B)          { reportExperiment(b, "fig12") }
func BenchmarkFig13HierarchicalBreakdown(b *testing.B)     { reportExperiment(b, "fig13") }
func BenchmarkFig14NodeAwareBreakdown(b *testing.B)        { reportExperiment(b, "fig14") }
func BenchmarkFig15NodeAwareScalingBreakdown(b *testing.B) { reportExperiment(b, "fig15") }
func BenchmarkFig16LocalityBreakdown(b *testing.B)         { reportExperiment(b, "fig16") }
func BenchmarkFig17Amber(b *testing.B)                     { reportExperiment(b, "fig17") }
func BenchmarkFig18Tuolomne(b *testing.B)                  { reportExperiment(b, "fig18") }

// BenchmarkHeadlineSpeedup reports the paper's headline metric — best
// speedup over system MPI — at bench scale.
func BenchmarkHeadlineSpeedup(b *testing.B) {
	exp, err := bench.Lookup("fig10")
	if err != nil {
		b.Fatal(err)
	}
	var speedup float64
	for i := 0; i < b.N; i++ {
		t, err := bench.RunExperiment(exp, benchScale(), nil)
		if err != nil {
			b.Fatal(err)
		}
		speedup, _, _ = bench.Headline(t)
	}
	b.ReportMetric(speedup, "speedup-vs-sysmpi")
}

// BenchmarkSimPoint measures single simulated configurations (one per
// algorithm) at a moderate scale: the cost of the simulator itself.
func BenchmarkSimPoint(b *testing.B) {
	for _, algo := range []string{"bruck", "node-aware", "locality-aware", "multileader-node-aware"} {
		b.Run(algo, func(b *testing.B) {
			m := netmodel.Dane()
			var sec float64
			for i := 0; i < b.N; i++ {
				pt, err := bench.Measure(bench.Config{
					Machine: m, Nodes: 8, PPN: 16, Algo: algo,
					Opts: core.Options{PPL: 4, PPG: 4}, Block: 256, Runs: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				sec = pt.Seconds
			}
			b.ReportMetric(sec, "sim-sec/op")
		})
	}
}

// BenchmarkLiveAlltoall measures real wall-clock all-to-all exchanges on
// the in-process runtime (32 goroutine ranks, 256 B blocks).
func BenchmarkLiveAlltoall(b *testing.B) {
	for _, algo := range []string{"pairwise", "nonblocking", "batched", "bruck", "hierarchical", "node-aware", "locality-aware", "multileader-node-aware"} {
		b.Run(algo, func(b *testing.B) {
			spec := alltoallx.NodeSpec{Sockets: 2, NumaPerSocket: 2, CoresPerNuma: 2}
			mapping, err := alltoallx.NewMapping(spec, 4, 8)
			if err != nil {
				b.Fatal(err)
			}
			const block = 256
			b.ResetTimer()
			err = alltoallx.RunLive(alltoallx.LiveConfig{Mapping: mapping}, func(c alltoallx.Comm) error {
				a, err := alltoallx.New(algo, c, block, alltoallx.Options{PPL: 4, PPG: 4})
				if err != nil {
					return err
				}
				p := c.Size()
				send := alltoallx.Alloc(p * block)
				recv := alltoallx.Alloc(p * block)
				testutil.FillAlltoall(send, c.Rank(), p, block)
				for i := 0; i < b.N; i++ {
					if err := a.Alltoall(send, recv, block); err != nil {
						return err
					}
				}
				return testutil.CheckAlltoall(recv, c.Rank(), p, block)
			})
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(mapping.Size() * block))
		})
	}
}

// ablationPoint measures node-aware at 4096 B under a mutated machine
// model, reporting simulated seconds — the design-choice ablations called
// out in DESIGN.md.
func ablationPoint(b *testing.B, algo string, opts core.Options, mutate func(*netmodel.Params)) {
	b.Helper()
	m := netmodel.Dane()
	if mutate != nil {
		mutate(&m)
	}
	var sec float64
	for i := 0; i < b.N; i++ {
		pt, err := bench.Measure(bench.Config{
			Machine: m, Nodes: 8, PPN: 16, Algo: algo, Opts: opts, Block: 4096, Runs: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		sec = pt.Seconds
	}
	b.ReportMetric(sec, "sim-sec/op")
}

func BenchmarkAblationInterleavePenalty(b *testing.B) {
	b.Run("on", func(b *testing.B) { ablationPoint(b, "node-aware", core.Options{}, nil) })
	b.Run("off", func(b *testing.B) {
		ablationPoint(b, "node-aware", core.Options{}, func(p *netmodel.Params) { p.InterleavePenalty = 0 })
	})
}

func BenchmarkAblationEagerThreshold(b *testing.B) {
	b.Run("8KiB", func(b *testing.B) { ablationPoint(b, "node-aware", core.Options{}, nil) })
	b.Run("always-rendezvous", func(b *testing.B) {
		ablationPoint(b, "node-aware", core.Options{}, func(p *netmodel.Params) { p.EagerMax = 0 })
	})
	b.Run("always-eager", func(b *testing.B) {
		ablationPoint(b, "node-aware", core.Options{}, func(p *netmodel.Params) { p.EagerMax = 1 << 30 })
	})
}

func BenchmarkAblationQueueSearch(b *testing.B) {
	b.Run("on", func(b *testing.B) { ablationPoint(b, "nonblocking", core.Options{}, nil) })
	b.Run("off", func(b *testing.B) {
		ablationPoint(b, "nonblocking", core.Options{}, func(p *netmodel.Params) { p.MatchCost = 0 })
	})
}

func BenchmarkAblationGatherKind(b *testing.B) {
	b.Run("linear", func(b *testing.B) { ablationPoint(b, "hierarchical", core.Options{}, nil) })
	b.Run("binomial", func(b *testing.B) {
		ablationPoint(b, "hierarchical", core.Options{GatherKind: 1}, nil)
	})
}

func BenchmarkAblationBatchWindow(b *testing.B) {
	for _, w := range []int{4, 32, 128} {
		b.Run(fmt.Sprintf("window%d", w), func(b *testing.B) {
			ablationPoint(b, "batched", core.Options{BatchWindow: w}, nil)
		})
	}
}

func BenchmarkAblationNoise(b *testing.B) {
	b.Run("on", func(b *testing.B) { ablationPoint(b, "node-aware", core.Options{}, nil) })
	b.Run("off", func(b *testing.B) {
		ablationPoint(b, "node-aware", core.Options{}, func(p *netmodel.Params) {
			p.NoiseSigma, p.SpikeProb = 0, 0
		})
	})
}

var _ = trace.PhaseTotal
