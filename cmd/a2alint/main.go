// a2alint is the module's own static analyzer: it proves the
// invariants the generic toolchain cannot see — deterministic
// simulation, SPMD-uniform collectives, attributable errors, guarded
// mutex state, and tag discipline — at compile time, over the
// packages that ship.
//
// Usage:
//
//	a2alint [-list] [packages]
//
// With no packages, ./... is checked from the enclosing module root.
// Findings print as file:line:col: message (analyzer) and make the
// exit status 1; a clean run exits 0. Suppress a finding, with a
// recorded justification, by a directive on or above the line:
//
//	//a2alint:ignore <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"os"

	"alltoallx/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "print the analyzers and their invariants, then exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: a2alint [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All {
			fmt.Printf("%s\n\t%s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	n, err := run(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "a2alint:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "a2alint: %d finding(s)\n", n)
		os.Exit(1)
	}
}

func run(patterns []string) (findings int, err error) {
	wd, err := os.Getwd()
	if err != nil {
		return 0, err
	}
	root, err := lint.ModuleRoot(wd)
	if err != nil {
		return 0, err
	}
	pkgs, err := lint.LoadPackages(root, patterns)
	if err != nil {
		return 0, err
	}
	for _, pkg := range pkgs {
		diags, err := lint.Check(pkg, lint.All)
		if err != nil {
			return findings, err
		}
		for _, d := range diags {
			fmt.Println(d)
			findings++
		}
	}
	return findings, nil
}
