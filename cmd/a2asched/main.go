// Command a2asched generates, verifies, diffs and pretty-prints
// communication schedules — the offline tooling of the internal/sched
// subsystem. Schedules are shareable JSON artifacts like autotune tables:
// generate one per world shape, verify it statically (every block
// delivered exactly once, every send matched within its round, all
// offsets in range), and ship it for inspection or execution
// (core.New("sched:<generator>", ...) compiles and verifies the same
// schedules at construction).
//
// Usage:
//
//	a2asched list
//	a2asched gen -name ring -ranks 16 -o ring16.json
//	a2asched gen -name torus -nodes 4 -ppn 8 -o torus4x8.json
//	a2asched verify ring16.json
//	a2asched print ring16.json
//	a2asched diff ring16.json torus4x8.json
//	a2asched slice -name ring -ranks 4096 -rank 7 -o ring4096r7.json
//	a2asched slice -name torus -nodes 64 -ppn 32 -rank 0 -world
//
// slice compiles a single rank's program (sched.GenerateRank) without
// materializing the whole world — the large-world form the runtime uses
// past the slicing threshold. It is locally verified; -world additionally
// streams every rank's slice through the incremental cross-rank verifier.
//
// fetch resolves a rank program through the schedule service instead of
// compiling locally:
//
//	a2asched fetch -daemon 127.0.0.1:7643 -name torus -nodes 4 -ppn 8 -rank 3
//	a2asched fetch -root /var/lib/a2asched -name ring -ranks 16 -rank 0 -o r0.json
//
// and list inspects the service: -root walks a registry directory,
// -daemon queries a running a2aschedd's counters.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"alltoallx/internal/sched"
	"alltoallx/internal/schedreg"
	"alltoallx/internal/topo"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = runList(os.Args[2:])
	case "gen":
		err = runGen(os.Args[2:])
	case "slice":
		err = runSlice(os.Args[2:])
	case "fetch":
		err = runFetch(os.Args[2:])
	case "verify":
		err = runVerify(os.Args[2:])
	case "print":
		err = runPrint(os.Args[2:])
	case "diff":
		err = runDiff(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "a2asched: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "a2asched:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `a2asched <command> [flags]

commands:
  list                      list schedule generators
         [-root DIR]        instead: list a registry directory's worlds + counters
         [-daemon ADDR]     instead: query a running a2aschedd's counters
  gen    -name G -ranks N   generate + verify a schedule (JSON to -o or stdout)
         [-nodes N -ppn P]  give the generator a topology (torus grid); implies -ranks
  slice  -name G -ranks N   compile + verify ONE rank's program (rank-sliced, O(slice)
         -rank R [-world]   memory; -world also streams the cross-rank verification)
  fetch  -name G -ranks N   resolve one rank's program through the schedule service
         -rank R            (-daemon ADDR or -root DIR), re-verify locally, emit JSON
  verify <file>             statically verify a schedule artifact
  print  [-linkload [-fabric K]] <file>
                            stats and per-round message matrices; -linkload
                            folds each round onto the fabric's links
                            (the flow-level contention model's routes)
  diff   <a> <b>            compare two schedules round by round
`)
}

func runList(args []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	var (
		root   = fs.String("root", "", "list the worlds of this registry directory instead of the generators")
		daemon = fs.String("daemon", "", "query this a2aschedd's registry counters instead of the generators")
	)
	fs.Parse(args)
	if *root != "" && *daemon != "" {
		return errors.New("-root and -daemon are mutually exclusive")
	}
	switch {
	case *root != "":
		reg, err := schedreg.Open(*root)
		if err != nil {
			return err
		}
		entries, err := reg.List()
		if err != nil {
			return err
		}
		if len(entries) == 0 {
			fmt.Printf("registry %s is empty\n", reg.Root())
			return nil
		}
		fmt.Printf("%-12s %-16s %-9s %9s %12s\n", "generator", "world", "state", "programs", "bytes")
		for _, e := range entries {
			state := "verified"
			if e.Rejected {
				state = "rejected"
			}
			fmt.Printf("%-12s %-16s %-9s %9d %12d\n", e.Gen, e.World, state, e.Programs, e.Bytes)
		}
		return nil
	case *daemon != "":
		cl := schedreg.NewClient(*daemon)
		st, err := cl.Stats()
		if err != nil {
			return err
		}
		fmt.Printf("daemon %s: %d hits, %d misses, %d negative hits, %d compiles\n",
			*daemon, st.Hits, st.Misses, st.NegativeHits, st.Compiles)
		return nil
	}
	for _, g := range sched.AllGenerators() {
		coll, _ := sched.GeneratorColl(g)
		fmt.Printf("%-16s %s\n", g, coll)
	}
	return nil
}

// runFetch resolves one rank's program through the schedule service —
// a running daemon (-daemon) or a registry directory opened in-process
// (-root) — and re-verifies it locally before emitting, exactly as the
// runtime's fetcher hook does. This is the CI smoke path: daemon up,
// fetch, verify, shut down.
func runFetch(args []string) error {
	fs := flag.NewFlagSet("fetch", flag.ExitOnError)
	var (
		name   = fs.String("name", "ring", "generator name (see a2asched list)")
		ranks  = fs.Int("ranks", 0, "world size in ranks (or use -nodes and -ppn)")
		nodes  = fs.Int("nodes", 0, "node count (with -ppn: shapes topology-aware generators)")
		ppn    = fs.Int("ppn", 0, "ranks per node")
		rank   = fs.Int("rank", 0, "the rank whose program to fetch")
		daemon = fs.String("daemon", "", "a2aschedd address (e.g. 127.0.0.1:7643)")
		root   = fs.String("root", "", "registry directory to resolve from without a daemon")
		out    = fs.String("o", "", "write the rank program JSON to this path (default stdout)")
	)
	fs.Parse(args)
	if (*daemon == "") == (*root == "") {
		return errors.New("fetch needs exactly one of -daemon or -root")
	}
	p, m, err := parseWorld(*ranks, *nodes, *ppn)
	if err != nil {
		return err
	}
	var rp *sched.RankProgram
	if *daemon != "" {
		rp, err = schedreg.NewClient(*daemon).Fetch(*name, p, m, *rank)
	} else {
		var reg *schedreg.Registry
		if reg, err = schedreg.Open(*root); err == nil {
			rp, err = reg.GetOrCompile(schedreg.KeyFor(*name, p, m, *rank))
		}
	}
	if err != nil {
		return err
	}
	if err := sched.VerifyRank(rp); err != nil {
		return fmt.Errorf("fetched program fails verification: %w", err)
	}
	if *out == "" {
		return rp.Encode(os.Stdout)
	}
	if err := rp.Save(*out); err != nil {
		return err
	}
	st := rp.Stats()
	fmt.Printf("fetched %s: rank %d of %q at %d ranks — %d rounds, %d sends, %d wire blocks (verified)\n",
		*out, rp.Rank, rp.Name, rp.Ranks, st.Rounds, st.Messages, st.WireBlocks)
	return nil
}

func runGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	var (
		name  = fs.String("name", "ring", "generator name (see a2asched list)")
		ranks = fs.Int("ranks", 0, "world size in ranks (or use -nodes and -ppn)")
		nodes = fs.Int("nodes", 0, "node count (with -ppn: shapes topology-aware generators)")
		ppn   = fs.Int("ppn", 0, "ranks per node")
		out   = fs.String("o", "", "write the schedule JSON to this path (default stdout)")
	)
	fs.Parse(args)
	p, m, err := parseWorld(*ranks, *nodes, *ppn)
	if err != nil {
		return err
	}
	s, err := sched.Generate(*name, p, m)
	if err != nil {
		return err
	}
	if err := sched.Verify(s); err != nil {
		return fmt.Errorf("generated schedule fails verification (a generator bug): %w", err)
	}
	if *out == "" {
		return s.Encode(os.Stdout)
	}
	if err := s.Save(*out); err != nil {
		return err
	}
	st := s.Stats()
	fmt.Printf("wrote %s: %q for %d ranks, %d rounds, %d messages, %d wire blocks (verified)\n",
		*out, s.Name, s.Ranks, st.Rounds, st.Messages, st.WireBlocks)
	return nil
}

// parseWorld resolves the -ranks / -nodes / -ppn flag combination shared
// by gen and slice into a rank count and optional topology.
func parseWorld(ranks, nodes, ppn int) (int, *topo.Mapping, error) {
	var m *topo.Mapping
	p := ranks
	if nodes > 0 || ppn > 0 {
		if nodes <= 0 || ppn <= 0 {
			return 0, nil, errors.New("-nodes and -ppn must be given together")
		}
		var err error
		// The generator only consumes the nodes x ppn grid; a flat
		// one-core-per-rank node shape carries it.
		m, err = topo.NewMapping(topo.Spec{Sockets: 1, NumaPerSocket: 1, CoresPerNuma: ppn}, nodes, ppn)
		if err != nil {
			return 0, nil, err
		}
		if p != 0 && p != m.Size() {
			return 0, nil, fmt.Errorf("-ranks %d contradicts -nodes %d x -ppn %d", p, nodes, ppn)
		}
		p = m.Size()
	}
	if p <= 0 {
		return 0, nil, errors.New("need -ranks (or -nodes and -ppn)")
	}
	return p, m, nil
}

func runSlice(args []string) error {
	fs := flag.NewFlagSet("slice", flag.ExitOnError)
	var (
		name  = fs.String("name", "ring", "generator name (see a2asched list)")
		ranks = fs.Int("ranks", 0, "world size in ranks (or use -nodes and -ppn)")
		nodes = fs.Int("nodes", 0, "node count (with -ppn: shapes topology-aware generators)")
		ppn   = fs.Int("ppn", 0, "ranks per node")
		rank  = fs.Int("rank", 0, "the rank whose program to compile")
		world = fs.Bool("world", false, "also stream every rank's slice through the cross-rank verifier (O(p) memory, O(schedule) time)")
		out   = fs.String("o", "", "write the rank program JSON to this path (default stdout)")
	)
	fs.Parse(args)
	p, m, err := parseWorld(*ranks, *nodes, *ppn)
	if err != nil {
		return err
	}
	rp, err := sched.GenerateRank(*name, p, *rank, m)
	if err != nil {
		return err
	}
	if err := sched.VerifyRank(rp); err != nil {
		return fmt.Errorf("generated slice fails local verification (a generator bug): %w", err)
	}
	if *world {
		if err := sched.VerifyWorldSliced(*name, p, m); err != nil {
			return fmt.Errorf("streamed world verification FAILED: %w", err)
		}
		fmt.Fprintf(os.Stderr, "world OK — %q at %d ranks: per-round send/recv multisets match, every rank's blocks delivered exactly once\n", rp.Name, p)
	}
	if *out == "" {
		return rp.Encode(os.Stdout)
	}
	if err := rp.Save(*out); err != nil {
		return err
	}
	st := rp.Stats()
	fmt.Printf("wrote %s: rank %d of %q at %d ranks — %d rounds, %d sends, %d wire blocks, %d repack copies (locally verified)\n",
		*out, rp.Rank, rp.Name, rp.Ranks, st.Rounds, st.Messages, st.WireBlocks, st.Copies)
	return nil
}

func oneFile(cmd string, args []string) (string, error) {
	if len(args) != 1 {
		return "", fmt.Errorf("usage: a2asched %s <file>", cmd)
	}
	return args[0], nil
}

func runVerify(args []string) error {
	path, err := oneFile("verify", args)
	if err != nil {
		return err
	}
	s, serr := sched.Load(path)
	if serr != nil {
		// Not a whole-world schedule; rank-program artifacts (slice -o,
		// fetch -o) get the local single-rank check instead.
		rp, rerr := sched.LoadRank(path)
		if rerr != nil {
			return serr
		}
		if err := sched.VerifyRank(rp); err != nil {
			return fmt.Errorf("%s: FAIL: %w", path, err)
		}
		st := rp.Stats()
		fmt.Printf("%s: OK — rank %d of %q at %d ranks passes local verification (%d rounds, %d sends, %d wire blocks)\n",
			path, rp.Rank, rp.Name, rp.Ranks, st.Rounds, st.Messages, st.WireBlocks)
		return nil
	}
	if err := sched.Verify(s); err != nil {
		return fmt.Errorf("%s: FAIL: %w", path, err)
	}
	st := s.Stats()
	fmt.Printf("%s: OK — %s %q verifies exactly-once dataflow over %d rounds (%d messages, %d wire blocks, %d repack copies)\n",
		path, s.Collective(), s.Name, st.Rounds, st.Messages, st.WireBlocks, st.Copies)
	return nil
}

// inferFabric maps a schedule's generator name to the fabric kind its
// routes were compiled for (the sched:* family names its topology). The
// reduction generators prefix the topology with the collective
// ("rs-ring", "ar-torus3x5"), so the prefix is stripped first.
func inferFabric(name string) (string, error) {
	topoName := strings.TrimPrefix(strings.TrimPrefix(name, "rs-"), "ar-")
	switch {
	case topoName == "ring":
		return "ring", nil
	case strings.HasPrefix(topoName, "torus"):
		return "torus", nil
	case topoName == "hypercube":
		return "hypercube", nil
	}
	return "", fmt.Errorf("cannot infer a fabric from schedule %q; pass -fabric (one of %v)", name, topo.FabricKinds())
}

func runPrint(args []string) error {
	fs := flag.NewFlagSet("print", flag.ExitOnError)
	var (
		linkload = fs.Bool("linkload", false, "also fold each round onto the fabric's links (static contention pressure)")
		fabric   = fs.String("fabric", "", "fabric kind for -linkload (default: inferred from the schedule name)")
	)
	fs.Parse(args)
	path, err := oneFile("print", fs.Args())
	if err != nil {
		return err
	}
	s, err := sched.Load(path)
	if err != nil {
		return err
	}
	// print renders broken schedules too (that is what inspection is
	// for), but says so up front.
	if err := sched.Verify(s); err != nil {
		fmt.Printf("note: schedule fails verification: %v\n", err)
	}
	if *linkload {
		kind := *fabric
		if kind == "" {
			if kind, err = inferFabric(s.Name); err != nil {
				return err
			}
		}
		// A schedule artifact carries no node mapping, so each rank is its
		// own fabric node — the shape the sched:* generators route for.
		f, err := topo.NewFabric(kind, s.Ranks)
		if err != nil {
			return err
		}
		loads, err := sched.LinkLoads(s, f, nil)
		if err != nil {
			return err
		}
		fmt.Print(sched.FormatLinkLoads(f, loads))
	}
	fmt.Print(sched.Format(s))
	return nil
}

func runDiff(args []string) error {
	if len(args) != 2 {
		return errors.New("usage: a2asched diff <a> <b>")
	}
	a, err := sched.Load(args[0])
	if err != nil {
		return err
	}
	b, err := sched.Load(args[1])
	if err != nil {
		return err
	}
	diffs := 0
	report := func(format string, argv ...any) {
		if diffs < 20 {
			fmt.Printf(format+"\n", argv...)
		}
		diffs++
	}
	if a.Name != b.Name {
		report("name: %q vs %q", a.Name, b.Name)
	}
	if a.Ranks != b.Ranks {
		report("ranks: %d vs %d", a.Ranks, b.Ranks)
	}
	ra, rb := len(a.Rounds), len(b.Rounds)
	if ra != rb {
		report("rounds: %d vs %d", ra, rb)
	}
	if a.Ranks == b.Ranks {
		n := ra
		if rb < n {
			n = rb
		}
		for ri := 0; ri < n; ri++ {
			ma, mb := a.RoundMatrix(ri), b.RoundMatrix(ri)
			for s := 0; s < a.Ranks; s++ {
				for d := 0; d < a.Ranks; d++ {
					if ma[s][d] != mb[s][d] {
						report("round %d: %d->%d sends %d vs %d blocks", ri, s, d, ma[s][d], mb[s][d])
					}
				}
			}
		}
	}
	sa, sb := a.Stats(), b.Stats()
	fmt.Printf("totals: %d vs %d messages, %d vs %d wire blocks, %d vs %d copies\n",
		sa.Messages, sb.Messages, sa.WireBlocks, sb.WireBlocks, sa.Copies, sb.Copies)
	if diffs == 0 {
		fmt.Println("schedules are equivalent (same per-round message matrices)")
		return nil
	}
	if diffs > 20 {
		fmt.Printf("... and %d more differences\n", diffs-20)
	}
	return fmt.Errorf("schedules differ (%d differences)", diffs)
}
