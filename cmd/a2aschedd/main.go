// Command a2aschedd is the schedule-service daemon: an HTTP front-end
// over a disk-backed registry of compiled-and-verified rank programs
// (internal/schedreg). Jobs point core at it (a2asim/alltoallbench
// -schedd, or core.SetSchedFetcher in embedding code) and every
// (generator, world, rank) in the fleet is compiled exactly once —
// subsequent requests are served from the content-addressed store.
//
// Endpoints:
//
//	GET  /healthz                 liveness probe
//	GET  /v1/stats                registry counters + admission state
//	GET  /v1/program?gen=&ranks=&rank=[&nodes=&ppn=]   one rank program
//	POST /v1/batch                several ranks of one world per request
//
// Cold compilations are admission-controlled (-maxcompile slots); a
// saturated daemon answers 503 + Retry-After and clients fall back to
// local compilation. Registry hits never queue.
//
// Usage:
//
//	a2aschedd -root /var/lib/a2asched [-addr 127.0.0.1:7643] [-maxcompile 4]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"alltoallx/internal/schedreg"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7643", "listen address")
		root       = flag.String("root", "", "registry directory (required; created if absent)")
		maxCompile = flag.Int("maxcompile", 4, "concurrent cold compilations admitted before answering 503")
	)
	flag.Parse()
	if *root == "" {
		fmt.Fprintln(os.Stderr, "a2aschedd: -root is required")
		flag.Usage()
		os.Exit(2)
	}

	log.SetPrefix("a2aschedd: ")
	log.SetFlags(log.LstdFlags)

	reg, err := schedreg.Open(*root)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{
		Addr:    *addr,
		Handler: schedreg.NewServer(reg, *maxCompile),
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving registry %s on %s (%d compile slots)", reg.Root(), ln.Addr(), *maxCompile)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Printf("shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Fatal(err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
		st := reg.Stats()
		log.Printf("done: %d hits, %d misses, %d negative hits, %d compiles",
			st.Hits, st.Misses, st.NegativeHits, st.Compiles)
	}
}
