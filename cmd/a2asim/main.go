// Command a2asim runs a single simulated all-to-all configuration and
// prints its timing, phase breakdown and simulator statistics — the
// single-point explorer behind the figures that cmd/alltoallbench sweeps.
//
// Example:
//
//	go run ./cmd/a2asim -machine Dane -nodes 32 -algo multileader-node-aware -ppl 4 -block 4
package main

import (
	"flag"
	"fmt"
	"os"

	"alltoallx/internal/bench"
	"alltoallx/internal/core"
	"alltoallx/internal/netmodel"
	"alltoallx/internal/trace"
)

func main() {
	var (
		machine = flag.String("machine", "Dane", "machine model: Dane, Amber, Tuolomne")
		nodes   = flag.Int("nodes", 8, "node count")
		ppn     = flag.Int("ppn", 0, "ranks per node (0 = all cores)")
		algo    = flag.String("algo", "node-aware", "algorithm name")
		inner   = flag.String("inner", "pairwise", "inner exchange: pairwise, nonblocking, bruck")
		ppl     = flag.Int("ppl", 4, "processes per leader")
		ppg     = flag.Int("ppg", 4, "processes per group")
		block   = flag.Int("block", 4096, "bytes per rank pair")
		runs    = flag.Int("runs", 3, "seeded runs (minimum reported)")
		seed    = flag.Int64("seed", 0, "base noise seed")
	)
	flag.Parse()

	m, err := netmodel.ByName(*machine)
	if err != nil {
		fatal(err)
	}
	p := *ppn
	if p == 0 {
		p = m.Node.CoresPerNode()
	}
	cfg := bench.Config{
		Machine: m, Nodes: *nodes, PPN: p,
		Algo:  *algo,
		Opts:  core.Options{Inner: core.Inner(*inner), PPL: *ppl, PPG: *ppg},
		Block: *block, Runs: *runs, BaseSeed: *seed,
	}
	pt, err := bench.Measure(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s on %s: %d nodes x %d ranks, %d B/block (inner=%s ppl=%d ppg=%d)\n",
		*algo, m.Name, *nodes, p, *block, *inner, *ppl, *ppg)
	fmt.Printf("  time      %.6e s (min of %d runs)\n", pt.Seconds, *runs)
	for _, ph := range trace.SortedPhases(pt.Phases) {
		fmt.Printf("  phase %-8s %.6e s\n", ph, pt.Phases[ph])
	}
	fmt.Printf("  simulated %d messages, %d events\n", pt.Stats.Messages, pt.Stats.Events)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "a2asim:", err)
	os.Exit(1)
}
