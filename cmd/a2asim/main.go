// Command a2asim runs a single simulated all-to-all configuration and
// prints its timing, phase breakdown and simulator statistics — the
// single-point explorer behind the figures that cmd/alltoallbench sweeps.
//
// Examples:
//
//	go run ./cmd/a2asim -machine Dane -nodes 32 -algo multileader-node-aware -ppl 4 -block 4
//	go run ./cmd/a2asim -op alltoallv -algo node-aware -block 512
//	go run ./cmd/a2asim -table table.json -block 512
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"alltoallx/internal/autotune"
	"alltoallx/internal/bench"
	"alltoallx/internal/core"
	"alltoallx/internal/netmodel"
	"alltoallx/internal/schedreg"
	"alltoallx/internal/trace"
)

func main() {
	var (
		machine   = flag.String("machine", "Dane", "machine model: "+strings.Join(netmodel.Names(), ", "))
		nodes     = flag.Int("nodes", 8, "node count")
		ppn       = flag.Int("ppn", 0, "ranks per node (0 = all cores)")
		opName    = flag.String("op", "alltoall", "collective: alltoall or alltoallv (block = mean bytes per peer)")
		algo      = flag.String("algo", "node-aware", "algorithm name")
		inner     = flag.String("inner", "pairwise", "inner exchange: pairwise, nonblocking, bruck")
		ppl       = flag.Int("ppl", 4, "processes per leader")
		ppg       = flag.Int("ppg", 4, "processes per group")
		block     = flag.Int("block", 4096, "bytes per rank pair")
		runs      = flag.Int("runs", 3, "seeded runs (minimum reported)")
		seed      = flag.Int64("seed", 0, "base noise seed")
		tablePath = flag.String("table", "", "autotune dispatch table (JSON); runs the tuned dispatcher at the table's world")
		schedRoot = flag.String("schedreg", "", "schedule-registry directory: resolve sched:* programs through it (compile-once across processes)")
		schedd    = flag.String("schedd", "", "a2aschedd address: resolve sched:* programs through the daemon")
	)
	flag.Parse()
	if err := installSchedFetcher(*schedRoot, *schedd); err != nil {
		fatal(err)
	}

	op := core.Op(*opName).Norm()
	if op != core.OpAlltoall && op != core.OpAlltoallv {
		fatal(fmt.Errorf("unknown -op %q (want %s or %s)", *opName, core.OpAlltoall, core.OpAlltoallv))
	}
	var m netmodel.Params
	var p int
	opts := core.Options{Inner: core.Inner(*inner), PPL: *ppl, PPG: *ppg}
	if *tablePath != "" {
		// The table fully determines the run: machine, world shape,
		// algorithm, and per-size options all come from it.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "machine", "nodes", "ppn":
				fatal(fmt.Errorf("-%s does not apply with -table: the table carries its own world shape (retune with a2atune for another)", f.Name))
			case "inner", "ppl", "ppg":
				fatal(fmt.Errorf("-%s does not apply with -table: the table's per-size winners carry their own options", f.Name))
			case "op":
				fatal(fmt.Errorf("-op does not apply with -table: the table carries its own operation kind"))
			case "algo":
				if *algo != "tuned" {
					fatal(fmt.Errorf("-algo %s conflicts with -table (a table always runs the tuned dispatcher)", *algo))
				}
			}
		})
		table, err := autotune.Load(*tablePath)
		if err != nil {
			fatal(err)
		}
		m, err = netmodel.ByName(table.Machine)
		if err != nil {
			fatal(err)
		}
		*nodes, p = table.Nodes, table.PPN
		*algo = "tuned"
		op = table.Op.Norm()
		opts = table.Options()
	} else {
		if *algo == "tuned" {
			fatal(fmt.Errorf("-algo tuned requires -table (generate one with a2atune -o)"))
		}
		var err error
		m, err = netmodel.ByName(*machine)
		if err != nil {
			fatal(err)
		}
		p = *ppn
		if p == 0 {
			p = m.Node.CoresPerNode()
		}
	}
	cfg := bench.Config{
		Machine: m, Nodes: *nodes, PPN: p,
		Op:    op,
		Algo:  *algo,
		Opts:  opts,
		Block: *block, Runs: *runs, BaseSeed: *seed,
	}
	pt, err := bench.Measure(cfg)
	if err != nil {
		fatal(err)
	}
	how := fmt.Sprintf("inner=%s ppl=%d ppg=%d", *inner, *ppl, *ppg)
	if *tablePath != "" {
		how = "dispatched from " + *tablePath
	}
	fmt.Printf("%s %s on %s: %d nodes x %d ranks, %d B/block (%s)\n",
		op, *algo, m.Name, *nodes, p, *block, how)
	fmt.Printf("  time      %.6e s (min of %d runs)\n", pt.Seconds, *runs)
	for _, ph := range trace.SortedPhases(pt.Phases) {
		fmt.Printf("  phase %-8s %.6e s\n", ph, pt.Phases[ph])
	}
	fmt.Printf("  simulated %d messages, %d events\n", pt.Stats.Messages, pt.Stats.Events)
}

// installSchedFetcher points core's sched:* construction at the
// schedule service: a registry directory opened in-process, or a
// running a2aschedd. Rejections negative-cache; outages fall back to
// local compilation.
func installSchedFetcher(root, daemon string) error {
	switch {
	case root != "" && daemon != "":
		return fmt.Errorf("-schedreg and -schedd are mutually exclusive")
	case root != "":
		reg, err := schedreg.Open(root)
		if err != nil {
			return err
		}
		core.SetSchedFetcher(schedreg.RegistryFetcher(reg))
	case daemon != "":
		core.SetSchedFetcher(schedreg.ClientFetcher(schedreg.NewClient(daemon)))
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "a2asim:", err)
	os.Exit(1)
}
