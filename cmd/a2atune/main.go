// Command a2atune selects the best algorithm for a machine, scale,
// operation and message-size range — the paper's future-work goal of
// dynamic algorithm selection, driven by the machine model. With -o it
// persists the per-size winners as a versioned JSON dispatch table that
// the "tuned" algorithm (cmd/a2asim -table, cmd/alltoallbench -table, or
// core.New / core.NewV in library use) dispatches from at run time. The
// -op flag selects the tuned collective: alltoall (fixed-size, the
// default) or alltoallv (variable-size; sizes then mean the average
// payload per peer of the skewed benchmark workload).
//
// Two sweep modes:
//
//   - full sweep (default): every candidate is simulated at every size;
//   - predictive (-predict): the full pool is simulated only on a small
//     probe grid, per-candidate cost models are fitted (log-log
//     regression, internal/costmodel), and the remaining sizes measure
//     just the predicted front-runners — plus everyone near a predicted
//     winner crossover. Typically >60% fewer simulations for the same
//     winners; -models persists the fitted model set.
//
// Examples:
//
//	go run ./cmd/a2atune -machine Dane -nodes 32 -ppn 112 -sizes 4,64,1024,4096
//	go run ./cmd/a2atune -machine Dane -nodes 8 -ppn 16 -grid 4:65536 -o table.json
//	go run ./cmd/a2atune -predict -grid 4:65536 -maxranks 64 -v -o table.json -models models.json
//	go run ./cmd/a2atune -op alltoallv -nodes 8 -ppn 16 -grid 4:4096 -o vtable.json
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"slices"
	"sort"
	"strconv"
	"strings"
	"time"

	"alltoallx/internal/autotune"
	"alltoallx/internal/core"
	"alltoallx/internal/netmodel"
)

func main() {
	var (
		machine  = flag.String("machine", "Dane", "machine model: "+strings.Join(netmodel.Names(), ", "))
		nodes    = flag.Int("nodes", 8, "node count")
		ppn      = flag.Int("ppn", 0, "ranks per node (0 = all cores)")
		opName   = flag.String("op", "alltoall", "collective to tune: alltoall or alltoallv")
		sizes    = flag.String("sizes", "4,64,1024,4096", "comma-separated block sizes in bytes")
		grid     = flag.String("grid", "", "doubling size grid min:max in bytes (overrides -sizes)")
		runs     = flag.Int("runs", 2, "runs per candidate (minimum kept)")
		full     = flag.Bool("ranking", false, "print the full ranking per size, not just the winner (full sweep only)")
		predict  = flag.Bool("predict", false, "cost-model-pruned sweep: probe, fit, measure only near predicted crossovers")
		models   = flag.String("models", "", "with -predict: write the fitted cost-model set as JSON to this path")
		verbose  = flag.Bool("v", false, "print the sweep summary: measured vs pruned points, fitted models, crossovers")
		maxranks = flag.Int("maxranks", 0, "cap the tuned world at this many ranks, shrinking ppn/nodes to fit (0 = no cap; for smoke runs)")
		out      = flag.String("o", "", "write the winners as a JSON dispatch table to this path")
	)
	flag.Parse()

	m, err := netmodel.ByName(*machine)
	if err != nil {
		fatal(err)
	}
	op := core.Op(*opName).Norm()
	if op != core.OpAlltoall && op != core.OpAlltoallv {
		fatal(fmt.Errorf("unknown -op %q (want %s or %s)", *opName, core.OpAlltoall, core.OpAlltoallv))
	}
	p := *ppn
	if p == 0 {
		p = m.Node.CoresPerNode()
	}
	n := *nodes
	if *maxranks > 0 && n*p > *maxranks {
		// Shrink to fit: ppn clamps to 8 (keeps the divisor-based leader
		// candidates in the pool), then nodes to whatever the cap allows.
		if p > 8 {
			p = 8
		}
		if n*p > *maxranks {
			n = *maxranks / p
			if n < 1 {
				n, p = 1, *maxranks
			}
		}
		fmt.Fprintf(os.Stderr, "a2atune: -maxranks %d: tuning a %d nodes x %d ranks world\n", *maxranks, n, p)
	}
	sz, err := sizeList(*sizes, *grid)
	if err != nil {
		fatal(err)
	}
	if *full && *predict {
		fatal(fmt.Errorf("-ranking needs every candidate measured at every size; drop it or drop -predict"))
	}
	if *models != "" && !*predict {
		fatal(fmt.Errorf("-models requires -predict (the full sweep fits no models)"))
	}
	cands := autotune.DefaultCandidates(op, n, p)
	mode := "full sweep"
	if *predict {
		mode = "predictive sweep"
	}
	fmt.Printf("tuning %s on %s: %d nodes x %d ranks, %d candidates x %d sizes (%s)\n",
		op, m.Name, n, p, len(cands), len(sz), mode)

	// Per-candidate progress goes to stderr with elapsed time, so long
	// sweeps (minutes per point at scale) are visibly alive while stdout
	// stays a clean winners report.
	start := time.Now()
	progress := func(line string) {
		fmt.Fprintf(os.Stderr, "[%7.1fs] %s\n", time.Since(start).Seconds(), line)
	}

	var table *autotune.Table
	measured, total := 0, len(cands)*len(sz)
	if *predict {
		pred, err := autotune.BuildTablePredictive(m, op, n, p, sz, cands, *runs, 1, progress)
		if err != nil {
			fatal(err)
		}
		table, measured = pred.Table, pred.Measured
		for _, e := range table.Entries {
			fmt.Printf("%6d B: %-30s %.4e s\n", e.Size, e.Name, e.Seconds)
		}
		if *verbose {
			fmt.Printf("\nmeasured %d of %d points (%d pruned, %.0f%%), dense at %v\n",
				pred.Measured, pred.Full, pred.Pruned(), 100*float64(pred.Pruned())/float64(pred.Full), pred.Dense)
			fmt.Printf("fitted models (probe grid %v, hash %s):\n", pred.Models.ProbeSizes, pred.Models.Hash())
			for _, md := range pred.Models.Models {
				conf := ""
				if md.LowConfidence() {
					conf = "  [low R2: crossover reporting suppressed]"
				}
				fmt.Printf("  %-30s T(x) = %.3e * x^%.3f  (R2 %.4f)%s\n",
					md.Name, math.Exp(md.Intercept), md.Slope, md.R2, conf)
			}
			lo, hi := float64(sz[0]), float64(sz[len(sz)-1])
			if cross := pred.Models.Crossovers(lo, hi); len(cross) > 0 {
				fmt.Println("predicted crossovers in range:")
				for _, c := range cross {
					fmt.Printf("  %8.0f B: %s <-> %s\n", c.X, c.A, c.B)
				}
			}
		}
		if *models != "" {
			if err := pred.Models.Save(*models); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote cost-model set (version %d, %d models) to %s\n",
				pred.Models.Version, len(pred.Models.Models), *models)
		}
	} else {
		// Assemble the table directly from the winners printed below, so
		// each (candidate, size) point is simulated exactly once whether or
		// not the table is written.
		table = &autotune.Table{
			Version: autotune.TableVersion, Machine: m.Name, Nodes: n, PPN: p, Op: op,
			Provenance: &autotune.Provenance{Source: m.Name, Mode: "sweep"},
		}
		for _, s := range sz {
			best, ranking, err := autotune.Select(m, op, n, p, s, cands, *runs, 1, progress)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%6d B: %-30s %.4e s\n", s, best.Name, best.Seconds)
			if *full {
				for _, ch := range ranking[1:] {
					fmt.Printf("         %-30s %.4e s\n", ch.Name, ch.Seconds)
				}
			}
			table.Entries = append(table.Entries, autotune.EntryFor(s, best))
		}
		measured = total
		if *verbose {
			fmt.Printf("\nmeasured %d of %d points (exhaustive; -predict prunes)\n", measured, total)
		}
	}
	fmt.Fprintf(os.Stderr, "[%7.1fs] sweep done: %d simulations\n", time.Since(start).Seconds(), measured)
	if *out == "" {
		return
	}
	if err := table.Save(*out); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote dispatch table (version %d, %d entries) to %s\n",
		table.Version, len(table.Entries), *out)
}

// sizeList resolves the swept sizes: an explicit -sizes list, or a
// doubling -grid min:max.
func sizeList(sizes, grid string) ([]int, error) {
	if grid != "" {
		lo, hi, ok := strings.Cut(grid, ":")
		if !ok {
			return nil, fmt.Errorf("bad grid %q (want min:max)", grid)
		}
		min, err1 := strconv.Atoi(strings.TrimSpace(lo))
		max, err2 := strconv.Atoi(strings.TrimSpace(hi))
		if err1 != nil || err2 != nil || min <= 0 || max < min {
			return nil, fmt.Errorf("bad grid %q (want 0 < min <= max)", grid)
		}
		return autotune.SizeGrid(min, max), nil
	}
	var sz []int
	for _, f := range strings.Split(sizes, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad size %q", f)
		}
		sz = append(sz, v)
	}
	// Sweep (and table) order is ascending; duplicates collapse.
	sort.Ints(sz)
	return slices.Compact(sz), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "a2atune:", err)
	os.Exit(1)
}
