// Command a2atune selects the best algorithm for a machine, scale,
// operation and message-size range — the paper's future-work goal of
// dynamic algorithm selection, driven by the machine model. With -o it
// persists the per-size winners as a versioned JSON dispatch table that
// the "tuned" algorithm (cmd/a2asim -table, cmd/alltoallbench -table, or
// core.New / core.NewV in library use) dispatches from at run time. The
// -op flag selects the tuned collective: alltoall (fixed-size, the
// default) or alltoallv (variable-size; sizes then mean the average
// payload per peer of the skewed benchmark workload).
//
// Examples:
//
//	go run ./cmd/a2atune -machine Dane -nodes 32 -ppn 112 -sizes 4,64,1024,4096
//	go run ./cmd/a2atune -machine Dane -nodes 8 -ppn 16 -grid 4:65536 -o table.json
//	go run ./cmd/a2atune -op alltoallv -nodes 8 -ppn 16 -grid 4:4096 -o vtable.json
package main

import (
	"flag"
	"fmt"
	"os"
	"slices"
	"sort"
	"strconv"
	"strings"

	"alltoallx/internal/autotune"
	"alltoallx/internal/core"
	"alltoallx/internal/netmodel"
)

func main() {
	var (
		machine = flag.String("machine", "Dane", "machine model: "+strings.Join(netmodel.Names(), ", "))
		nodes   = flag.Int("nodes", 8, "node count")
		ppn     = flag.Int("ppn", 0, "ranks per node (0 = all cores)")
		opName  = flag.String("op", "alltoall", "collective to tune: alltoall or alltoallv")
		sizes   = flag.String("sizes", "4,64,1024,4096", "comma-separated block sizes in bytes")
		grid    = flag.String("grid", "", "doubling size grid min:max in bytes (overrides -sizes)")
		runs    = flag.Int("runs", 2, "runs per candidate (minimum kept)")
		full    = flag.Bool("ranking", false, "print the full ranking per size, not just the winner")
		out     = flag.String("o", "", "write the winners as a JSON dispatch table to this path")
	)
	flag.Parse()

	m, err := netmodel.ByName(*machine)
	if err != nil {
		fatal(err)
	}
	op := core.Op(*opName).Norm()
	if op != core.OpAlltoall && op != core.OpAlltoallv {
		fatal(fmt.Errorf("unknown -op %q (want %s or %s)", *opName, core.OpAlltoall, core.OpAlltoallv))
	}
	p := *ppn
	if p == 0 {
		p = m.Node.CoresPerNode()
	}
	sz, err := sizeList(*sizes, *grid)
	if err != nil {
		fatal(err)
	}
	cands := autotune.DefaultCandidates(op, *nodes, p)
	fmt.Printf("tuning %s on %s: %d nodes x %d ranks, %d candidates x %d sizes\n",
		op, m.Name, *nodes, p, len(cands), len(sz))
	// Assemble the table directly from the winners printed below, so each
	// (candidate, size) point is simulated exactly once whether or not the
	// table is written.
	table := &autotune.Table{Version: autotune.TableVersion, Machine: m.Name, Nodes: *nodes, PPN: p, Op: op}
	for _, s := range sz {
		best, ranking, err := autotune.Select(m, op, *nodes, p, s, cands, *runs, 1)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%6d B: %-30s %.4e s\n", s, best.Name, best.Seconds)
		if *full {
			for _, ch := range ranking[1:] {
				fmt.Printf("         %-30s %.4e s\n", ch.Name, ch.Seconds)
			}
		}
		table.Entries = append(table.Entries, autotune.EntryFor(s, best))
	}
	if *out == "" {
		return
	}
	if err := table.Save(*out); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote dispatch table (version %d, %d entries) to %s\n",
		table.Version, len(table.Entries), *out)
}

// sizeList resolves the swept sizes: an explicit -sizes list, or a
// doubling -grid min:max.
func sizeList(sizes, grid string) ([]int, error) {
	if grid != "" {
		lo, hi, ok := strings.Cut(grid, ":")
		if !ok {
			return nil, fmt.Errorf("bad grid %q (want min:max)", grid)
		}
		min, err1 := strconv.Atoi(strings.TrimSpace(lo))
		max, err2 := strconv.Atoi(strings.TrimSpace(hi))
		if err1 != nil || err2 != nil || min <= 0 || max < min {
			return nil, fmt.Errorf("bad grid %q (want 0 < min <= max)", grid)
		}
		return autotune.SizeGrid(min, max), nil
	}
	var sz []int
	for _, f := range strings.Split(sizes, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad size %q", f)
		}
		sz = append(sz, v)
	}
	// Sweep (and table) order is ascending; duplicates collapse.
	sort.Ints(sz)
	return slices.Compact(sz), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "a2atune:", err)
	os.Exit(1)
}
