// Command a2atune selects the best all-to-all algorithm for a machine,
// scale and message-size range — the paper's future-work goal of dynamic
// algorithm selection, driven by the machine model.
//
// Example:
//
//	go run ./cmd/a2atune -machine Dane -nodes 32 -ppn 112 -sizes 4,64,1024,4096
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"alltoallx/internal/autotune"
	"alltoallx/internal/netmodel"
)

func main() {
	var (
		machine = flag.String("machine", "Dane", "machine model: Dane, Amber, Tuolomne")
		nodes   = flag.Int("nodes", 8, "node count")
		ppn     = flag.Int("ppn", 0, "ranks per node (0 = all cores)")
		sizes   = flag.String("sizes", "4,64,1024,4096", "comma-separated block sizes in bytes")
		runs    = flag.Int("runs", 2, "runs per candidate (minimum kept)")
		full    = flag.Bool("ranking", false, "print the full ranking per size, not just the winner")
	)
	flag.Parse()

	m, err := netmodel.ByName(*machine)
	if err != nil {
		fatal(err)
	}
	p := *ppn
	if p == 0 {
		p = m.Node.CoresPerNode()
	}
	var sz []int
	for _, f := range strings.Split(*sizes, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v <= 0 {
			fatal(fmt.Errorf("bad size %q", f))
		}
		sz = append(sz, v)
	}
	cands := autotune.DefaultCandidates(p)
	fmt.Printf("tuning all-to-all on %s: %d nodes x %d ranks, %d candidates\n", m.Name, *nodes, p, len(cands))
	for _, s := range sz {
		best, ranking, err := autotune.Select(m, *nodes, p, s, cands, *runs, 1)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%6d B: %-30s %.4e s\n", s, best.Name, best.Seconds)
		if *full {
			for _, ch := range ranking[1:] {
				fmt.Printf("         %-30s %.4e s\n", ch.Name, ch.Seconds)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "a2atune:", err)
	os.Exit(1)
}
