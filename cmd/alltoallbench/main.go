// Command alltoallbench regenerates the paper's tables and figures.
//
// Each experiment ID corresponds to one figure of the evaluation (fig7 ..
// fig18) or table1. The default "quick" scale runs a reduced cluster
// (8 nodes x 16 ranks) that preserves the figures' qualitative shapes in
// seconds of wall time; "-scale full" reproduces the paper's 32-node,
// all-cores configuration (minutes of wall time for the direct-exchange
// baselines, which simulate ~13M messages per point).
//
// Usage:
//
//	go run ./cmd/alltoallbench -experiment fig10
//	go run ./cmd/alltoallbench -experiment all -scale full -csv results/
//
// With -table, instead of a paper figure it benchmarks the autotuned
// "tuned" dispatcher (built from the table written by a2atune -o) against
// static algorithms, at the table's world shape and over the table's size
// grid:
//
//	go run ./cmd/alltoallbench -table table.json -algo tuned,bruck,system-mpi
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"alltoallx/internal/autotune"
	"alltoallx/internal/bench"
	"alltoallx/internal/core"
	"alltoallx/internal/netmodel"
	"alltoallx/internal/schedreg"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment ID (fig7..fig18, table1, headline, overlap, regress, scale, contention, repair, drift) or 'all'")
		scaleName  = flag.String("scale", "quick", "reproduction scale: quick or full")
		nodes      = flag.Int("nodes", 0, "override node count (0 = experiment default)")
		ppn        = flag.Int("ppn", 0, "override ranks per node (0 = scale default)")
		runs       = flag.Int("runs", 0, "override runs per point (0 = scale default)")
		csvDir     = flag.String("csv", "", "directory for CSV output (empty = none)")
		plot       = flag.Bool("plot", false, "render an ASCII log-scale chart of each figure")
		verbose    = flag.Bool("v", false, "print per-point progress")
		tablePath  = flag.String("table", "", "autotune dispatch table (JSON): benchmark it instead of a figure")
		opName     = flag.String("op", "alltoall",
			"with -table: the collective the table must be tuned for (alltoall or alltoallv)")
		algoList = flag.String("algo", "",
			"with -table: comma-separated algorithms to compare (tuned = the table's dispatcher; default depends on -op)")
		machineName = flag.String("machine", "Dane",
			"with -experiment overlap: machine preset ("+strings.Join(netmodel.Names(), ", ")+")")
		computeFrac = flag.Float64("computefrac", 1.0,
			"with -experiment overlap: modeled compute between Start and Wait, as a fraction of the blocking exchange time")
		blockSize = flag.Int("block", 4096,
			"with -experiment overlap: block bytes per rank pair")
		jsonPath = flag.String("json", "",
			"with -experiment regress, scale, contention, repair or drift: write the machine-readable output (BENCH_regress.json / BENCH_scale.json / BENCH_contention.json / BENCH_repair.json / BENCH_drift.json) to this path")
		maxRanks = flag.Int("maxranks", 0,
			"with -experiment scale, contention, repair or drift: cap the swept world size (0 = the experiment's full sweep; CI smoke uses 256)")
		schedRoot = flag.String("schedreg", "", "schedule-registry directory: resolve sched:* programs through it (compile-once across processes)")
		schedd    = flag.String("schedd", "", "a2aschedd address: resolve sched:* programs through the daemon")
	)
	flag.Parse()
	if err := installSchedFetcher(*schedRoot, *schedd); err != nil {
		fatal(err)
	}

	scale, err := scaleByName(*scaleName)
	if err != nil {
		fatal(err)
	}
	if *ppn > 0 {
		scale.PPN = *ppn
	}
	if *runs > 0 {
		scale.Runs = *runs
	}
	var progress func(string)
	if *verbose {
		progress = func(s string) { fmt.Fprintln(os.Stderr, "  "+s) }
	}

	if *experiment == "regress" {
		if *tablePath != "" {
			fatal(fmt.Errorf("-experiment regress and -table are mutually exclusive"))
		}
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "op", "algo", "scale", "nodes", "ppn", "runs", "machine", "computefrac", "block", "maxranks":
				fatal(fmt.Errorf("-%s does not apply to -experiment regress (the baseline world, machines, algorithms and runs are fixed so snapshots stay comparable)", f.Name))
			}
		})
		if err := runRegress(*jsonPath, progress); err != nil {
			fatal(err)
		}
		return
	}
	if *experiment == "scale" {
		if *tablePath != "" {
			fatal(fmt.Errorf("-experiment scale and -table are mutually exclusive"))
		}
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "op", "algo", "scale", "nodes", "ppn", "runs", "machine", "computefrac", "block":
				fatal(fmt.Errorf("-%s does not apply to -experiment scale (the sweep's world shapes, block size, algorithms and caps are fixed so snapshots stay comparable)", f.Name))
			}
		})
		if err := runScale(*maxRanks, *jsonPath, progress); err != nil {
			fatal(err)
		}
		return
	}
	if *experiment == "repair" {
		if *tablePath != "" {
			fatal(fmt.Errorf("-experiment repair and -table are mutually exclusive"))
		}
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "op", "algo", "scale", "nodes", "ppn", "runs", "machine", "computefrac", "block":
				fatal(fmt.Errorf("-%s does not apply to -experiment repair (the repaired worlds and dead ranks are fixed so runs stay comparable)", f.Name))
			}
		})
		if err := runRepair(*maxRanks, *jsonPath, progress); err != nil {
			fatal(err)
		}
		return
	}
	if *experiment == "drift" {
		if *tablePath != "" {
			fatal(fmt.Errorf("-experiment drift and -table are mutually exclusive"))
		}
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "op", "algo", "scale", "nodes", "ppn", "runs", "machine", "computefrac", "block":
				fatal(fmt.Errorf("-%s does not apply to -experiment drift (the world, table, block size and machine shift are fixed so snapshots stay comparable)", f.Name))
			}
		})
		if err := runDrift(*maxRanks, *jsonPath, progress); err != nil {
			fatal(err)
		}
		return
	}
	if *experiment == "contention" {
		if *tablePath != "" {
			fatal(fmt.Errorf("-experiment contention and -table are mutually exclusive"))
		}
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "op", "algo", "scale", "nodes", "ppn", "runs", "machine", "computefrac", "block":
				fatal(fmt.Errorf("-%s does not apply to -experiment contention (the world shape, block sizes and algorithm family are fixed so snapshots stay comparable)", f.Name))
			}
		})
		if err := runContention(*maxRanks, *jsonPath, progress); err != nil {
			fatal(err)
		}
		return
	}
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "json":
			fatal(fmt.Errorf("-json only applies with -experiment regress, scale, contention, repair or drift"))
		case "maxranks":
			fatal(fmt.Errorf("-maxranks only applies with -experiment scale, contention, repair or drift"))
		}
	})

	if *experiment == "overlap" {
		if *tablePath != "" {
			fatal(fmt.Errorf("-experiment overlap and -table are mutually exclusive"))
		}
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "op" {
				fatal(fmt.Errorf("-op does not apply to -experiment overlap (it measures the fixed-size exchange)"))
			}
		})
		algos := *algoList
		if algos == "" {
			algos = "pairwise,nonblocking,bruck,node-aware,multileader-node-aware"
		}
		if err := runOverlap(*machineName, scale, *nodes, *blockSize, algos, *computeFrac, *csvDir, progress); err != nil {
			fatal(err)
		}
		return
	}

	op := core.Op(*opName).Norm()
	if op != core.OpAlltoall && op != core.OpAlltoallv {
		fatal(fmt.Errorf("unknown -op %q (want %s or %s)", *opName, core.OpAlltoall, core.OpAlltoallv))
	}
	if *tablePath == "" {
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "algo":
				fatal(fmt.Errorf("-algo only applies with -table (figures fix their own algorithm series)"))
			case "op":
				fatal(fmt.Errorf("-op only applies with -table (experiments fix their own operation; run -experiment alltoallv for the variable-size scenario)"))
			}
		})
	}
	if *tablePath != "" {
		if *nodes != 0 || *ppn != 0 {
			fatal(fmt.Errorf("-table runs at the table's own world shape; -nodes/-ppn do not apply (retune with a2atune for a different world)"))
		}
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "experiment" {
				fatal(fmt.Errorf("-experiment and -table are mutually exclusive (a table benchmark is its own experiment)"))
			}
		})
		algos := *algoList
		if algos == "" {
			algos = "tuned,bruck,node-aware,multileader-node-aware,system-mpi"
			if op == core.OpAlltoallv {
				algos = "tuned,pairwise,nonblocking,node-aware,locality-aware"
			}
		}
		if err := runTable(*tablePath, op, algos, scale, *csvDir, *plot, progress); err != nil {
			fatal(err)
		}
		return
	}

	ids := strings.Split(*experiment, ",")
	if *experiment == "all" {
		ids = []string{"table1"}
		for _, e := range bench.Experiments() {
			ids = append(ids, e.ID)
		}
		ids = append(ids, "headline")
	}
	for _, id := range ids {
		if err := runOne(id, scale, *nodes, *csvDir, *plot, progress); err != nil {
			fatal(err)
		}
	}
}

func scaleByName(name string) (bench.Scale, error) {
	switch name {
	case "quick":
		return bench.Quick(), nil
	case "full":
		return bench.Full(), nil
	}
	return bench.Scale{}, fmt.Errorf("unknown scale %q (quick or full)", name)
}

func runOne(id string, scale bench.Scale, nodeOverride int, csvDir string, plot bool, progress func(string)) error {
	switch id {
	case "table1":
		return bench.FormatTable1(os.Stdout)
	case "headline":
		return runHeadline(scale, nodeOverride, progress)
	}
	exp, err := bench.Lookup(id)
	if err != nil {
		return err
	}
	if nodeOverride > 0 {
		exp.Nodes = nodeOverride
	}
	t, err := bench.RunExperiment(exp, scale, progress)
	if err != nil {
		return err
	}
	return emit(t, csvDir, plot)
}

// runTable benchmarks the tuned dispatcher of an a2atune table against
// static algorithms. The sweep runs at the table's world shape (machine,
// nodes, ppn) and operation over the table's size grid; -scale only sets
// repetitions.
func runTable(path string, op core.Op, algoList string, scale bench.Scale, csvDir string, plot bool, progress func(string)) error {
	table, err := autotune.Load(path)
	if err != nil {
		return err
	}
	if table.Op.Norm() != op {
		return fmt.Errorf("table %s was tuned for %s, but -op is %s (pass -op %s, or retune with a2atune -op %s)",
			path, table.Op.Norm(), op, table.Op.Norm(), op)
	}
	// Fail before the sweep if the current machine model cannot host the
	// tuned world (RunExperiment would silently clamp ppn to the model's
	// core count).
	machine, err := netmodel.ByName(table.Machine)
	if err != nil {
		return err
	}
	if cores := machine.Node.CoresPerNode(); table.PPN > cores {
		return fmt.Errorf("table tuned for %d ranks/node, %s nodes have %d cores", table.PPN, table.Machine, cores)
	}
	exp := bench.Experiment{
		ID:      "tuned-" + string(op),
		Title:   fmt.Sprintf("Tuned %s dispatcher (%s) vs static algorithms", op, filepath.Base(path)),
		Machine: table.Machine,
		Op:      op,
		XAxis:   bench.XSize,
		Nodes:   table.Nodes,
		Expectation: "the tuned line tracks the lower envelope of the static lines " +
			"(equal to the per-size winner, modulo simulation noise)",
	}
	for _, e := range table.Entries {
		exp.Xs = append(exp.Xs, e.Size)
	}
	for _, name := range strings.Split(algoList, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		s := bench.Series{Label: name, Algo: name}
		switch name {
		case "tuned":
			s.Opts = table.Options()
		case "locality-aware":
			// State the default group/leader sizes explicitly so the bench
			// harness can clamp them to a divisor of the table's PPN
			// (core's withDefaults would otherwise hard-fail on worlds
			// where 4 does not divide ppn).
			s.Opts.PPG = 4
		case "multileader", "multileader-node-aware":
			s.Opts.PPL = 4
		}
		exp.Series = append(exp.Series, s)
	}
	if len(exp.Series) == 0 {
		return fmt.Errorf("no algorithms in -algo %q", algoList)
	}
	// Pin the sweep to the tuned world: the table's winners are only valid
	// at the shape they were tuned for.
	scale.NodeCap, scale.PPN, scale.SizeStride = 0, table.PPN, 1
	t, err := bench.RunExperiment(exp, scale, progress)
	if err != nil {
		return err
	}
	return emit(t, csvDir, plot)
}

// runRegress executes the fixed regression sweep and optionally persists
// the machine-readable baseline for trajectory tracking.
func runRegress(jsonPath string, progress func(string)) error {
	r, err := bench.RunRegress(progress)
	if err != nil {
		return err
	}
	if err := r.Format(os.Stdout); err != nil {
		return err
	}
	if jsonPath == "" {
		return nil
	}
	if err := r.Save(jsonPath); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", jsonPath)
	return nil
}

// runScale executes the rank-scaling sweep (256..maxRanks ranks of every
// Table 1 machine, rank-sliced schedules vs loop-coded baselines) and
// optionally persists the machine-readable snapshot.
func runScale(maxRanks int, jsonPath string, progress func(string)) error {
	s, err := bench.RunScale(maxRanks, progress)
	if err != nil {
		return err
	}
	if err := s.Format(os.Stdout); err != nil {
		return err
	}
	if jsonPath == "" {
		return nil
	}
	if err := s.Save(jsonPath); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", jsonPath)
	return nil
}

// runDrift executes the machine-drift re-convergence experiment (the
// tuned dispatcher in online refinement mode, before and after a NIC
// parameter shift) and optionally persists the machine-readable snapshot.
func runDrift(maxRanks int, jsonPath string, progress func(string)) error {
	d, err := bench.RunDrift(maxRanks, progress)
	if err != nil {
		return err
	}
	if err := d.Format(os.Stdout); err != nil {
		return err
	}
	if jsonPath == "" {
		return nil
	}
	if err := d.Save(jsonPath); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", jsonPath)
	return nil
}

// runContention executes the flow-level contention comparison (every
// Table 1 machine x fabric kind x block size, analytic vs flow model)
// and optionally persists the machine-readable snapshot.
func runContention(maxRanks int, jsonPath string, progress func(string)) error {
	c, err := bench.RunContention(maxRanks, progress)
	if err != nil {
		return err
	}
	if err := c.Format(os.Stdout); err != nil {
		return err
	}
	if jsonPath == "" {
		return nil
	}
	if err := c.Save(jsonPath); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", jsonPath)
	return nil
}

// runRepair executes the failure-repair comparison (repair + re-verify
// versus recompiling the full world after one injected rank failure)
// and optionally persists the machine-readable output. No snapshot is
// committed: the point measurements are wall-clock.
func runRepair(maxRanks int, jsonPath string, progress func(string)) error {
	r, err := bench.RunRepair(maxRanks, progress)
	if err != nil {
		return err
	}
	if err := r.Format(os.Stdout); err != nil {
		return err
	}
	if jsonPath == "" {
		return nil
	}
	if err := r.Save(jsonPath); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", jsonPath)
	return nil
}

// installSchedFetcher points core's sched:* construction at the
// schedule service: a registry directory opened in-process, or a
// running a2aschedd. Rejections negative-cache; outages fall back to
// local compilation.
func installSchedFetcher(root, daemon string) error {
	switch {
	case root != "" && daemon != "":
		return fmt.Errorf("-schedreg and -schedd are mutually exclusive")
	case root != "":
		reg, err := schedreg.Open(root)
		if err != nil {
			return err
		}
		core.SetSchedFetcher(schedreg.RegistryFetcher(reg))
	case daemon != "":
		core.SetSchedFetcher(schedreg.ClientFetcher(schedreg.NewClient(daemon)))
	}
	return nil
}

// runOverlap measures the nonblocking-overlap efficiency
// (hidden-communication fraction) of each algorithm under the simulator:
// a Start / Compute / Wait sequence versus the blocking exchange plus the
// same compute.
func runOverlap(machine string, scale bench.Scale, nodes, block int, algoList string, frac float64, csvDir string, progress func(string)) error {
	t, err := bench.RunOverlap(machine, scale, nodes, block, strings.Split(algoList, ","), frac, progress)
	if err != nil {
		return err
	}
	if err := t.Format(os.Stdout); err != nil {
		return err
	}
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(csvDir, "overlap_"+scale.Name+".csv")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := t.CSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
	return nil
}

// emit prints a completed table and optionally plots and CSV-dumps it.
func emit(t *bench.Table, csvDir string, plot bool) error {
	if err := t.Format(os.Stdout); err != nil {
		return err
	}
	if plot {
		if err := t.Plot(os.Stdout, 18); err != nil {
			return err
		}
	}
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(csvDir, t.Exp.ID+"_"+t.Scale.Name+".csv")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := t.CSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
	return nil
}

// runHeadline reproduces the abstract's claim: "up to 3x speedup over
// system MPI at 32 nodes", derived from the all-algorithms comparison.
func runHeadline(scale bench.Scale, nodeOverride int, progress func(string)) error {
	exp, err := bench.Lookup("fig10")
	if err != nil {
		return err
	}
	if nodeOverride > 0 {
		exp.Nodes = nodeOverride
	}
	t, err := bench.RunExperiment(exp, scale, progress)
	if err != nil {
		return err
	}
	sp, atX, vs := bench.Headline(t)
	fmt.Printf("headline — max speedup over System MPI at %d nodes (%s scale): %.2fx (%s at %d B)\n",
		t.Nodes, scale.Name, sp, vs, atX)
	fmt.Println("paper claim: up to 3x over system MPI at 32 nodes")
	fmt.Println()
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "alltoallbench:", err)
	os.Exit(1)
}
