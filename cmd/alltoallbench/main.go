// Command alltoallbench regenerates the paper's tables and figures.
//
// Each experiment ID corresponds to one figure of the evaluation (fig7 ..
// fig18) or table1. The default "quick" scale runs a reduced cluster
// (8 nodes x 16 ranks) that preserves the figures' qualitative shapes in
// seconds of wall time; "-scale full" reproduces the paper's 32-node,
// all-cores configuration (minutes of wall time for the direct-exchange
// baselines, which simulate ~13M messages per point).
//
// Usage:
//
//	go run ./cmd/alltoallbench -experiment fig10
//	go run ./cmd/alltoallbench -experiment all -scale full -csv results/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"alltoallx/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment ID (fig7..fig18, table1, headline) or 'all'")
		scaleName  = flag.String("scale", "quick", "reproduction scale: quick or full")
		nodes      = flag.Int("nodes", 0, "override node count (0 = experiment default)")
		ppn        = flag.Int("ppn", 0, "override ranks per node (0 = scale default)")
		runs       = flag.Int("runs", 0, "override runs per point (0 = scale default)")
		csvDir     = flag.String("csv", "", "directory for CSV output (empty = none)")
		plot       = flag.Bool("plot", false, "render an ASCII log-scale chart of each figure")
		verbose    = flag.Bool("v", false, "print per-point progress")
	)
	flag.Parse()

	scale, err := scaleByName(*scaleName)
	if err != nil {
		fatal(err)
	}
	if *ppn > 0 {
		scale.PPN = *ppn
	}
	if *runs > 0 {
		scale.Runs = *runs
	}
	var progress func(string)
	if *verbose {
		progress = func(s string) { fmt.Fprintln(os.Stderr, "  "+s) }
	}

	ids := strings.Split(*experiment, ",")
	if *experiment == "all" {
		ids = []string{"table1"}
		for _, e := range bench.Experiments() {
			ids = append(ids, e.ID)
		}
		ids = append(ids, "headline")
	}
	for _, id := range ids {
		if err := runOne(id, scale, *nodes, *csvDir, *plot, progress); err != nil {
			fatal(err)
		}
	}
}

func scaleByName(name string) (bench.Scale, error) {
	switch name {
	case "quick":
		return bench.Quick(), nil
	case "full":
		return bench.Full(), nil
	}
	return bench.Scale{}, fmt.Errorf("unknown scale %q (quick or full)", name)
}

func runOne(id string, scale bench.Scale, nodeOverride int, csvDir string, plot bool, progress func(string)) error {
	switch id {
	case "table1":
		return bench.FormatTable1(os.Stdout)
	case "headline":
		return runHeadline(scale, nodeOverride, progress)
	}
	exp, err := bench.Lookup(id)
	if err != nil {
		return err
	}
	if nodeOverride > 0 {
		exp.Nodes = nodeOverride
	}
	t, err := bench.RunExperiment(exp, scale, progress)
	if err != nil {
		return err
	}
	if err := t.Format(os.Stdout); err != nil {
		return err
	}
	if plot {
		if err := t.Plot(os.Stdout, 18); err != nil {
			return err
		}
	}
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(csvDir, exp.ID+"_"+scale.Name+".csv")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := t.CSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
	return nil
}

// runHeadline reproduces the abstract's claim: "up to 3x speedup over
// system MPI at 32 nodes", derived from the all-algorithms comparison.
func runHeadline(scale bench.Scale, nodeOverride int, progress func(string)) error {
	exp, err := bench.Lookup("fig10")
	if err != nil {
		return err
	}
	if nodeOverride > 0 {
		exp.Nodes = nodeOverride
	}
	t, err := bench.RunExperiment(exp, scale, progress)
	if err != nil {
		return err
	}
	sp, atX, vs := bench.Headline(t)
	fmt.Printf("headline — max speedup over System MPI at %d nodes (%s scale): %.2fx (%s at %d B)\n",
		t.Nodes, scale.Name, sp, vs, atX)
	fmt.Println("paper claim: up to 3x over system MPI at 32 nodes")
	fmt.Println()
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "alltoallbench:", err)
	os.Exit(1)
}
