package alltoallx

import (
	"alltoallx/internal/collx"
	"alltoallx/internal/core"
)

// Alltoallv performs a variable-sized all-to-all: rank r sends
// sendCounts[i] bytes at sdispls[i] to rank i and receives recvCounts[j]
// bytes from rank j at rdispls[j] (MPI_Alltoallv semantics, pairwise
// stepping).
func Alltoallv(c Comm, send Buffer, sendCounts, sdispls []int, recv Buffer, recvCounts, rdispls []int) error {
	return core.Alltoallv(c, send, sendCounts, sdispls, recv, recvCounts, rdispls)
}

// AlltoallvNonblocking is Alltoallv with all exchanges posted up front.
func AlltoallvNonblocking(c Comm, send Buffer, sendCounts, sdispls []int, recv Buffer, recvCounts, rdispls []int) error {
	return core.AlltoallvNonblocking(c, send, sendCounts, sdispls, recv, recvCounts, rdispls)
}

// AlltoallvCounts builds contiguous displacements for per-peer byte counts
// and returns the total buffer length.
func AlltoallvCounts(counts []int) (displs []int, total int) {
	return core.CountsFromSizes(counts)
}

// ReduceOp accumulates the second buffer into the first, element-wise.
type ReduceOp = collx.Op

// Element-wise reduction operators over little-endian int64 payloads.
var (
	SumInt64 ReduceOp = collx.SumInt64
	MaxInt64 ReduceOp = collx.MaxInt64
)

// NodeAwareCollectives applies the paper's aggregation strategy (its
// Section 5 future work) to allgather, allreduce, reduce-scatter and
// broadcast: leaders perform the inter-node part, everything else stays on
// the node.
type NodeAwareCollectives = collx.NodeAware

// NewNodeAwareCollectives builds the node-level communicators once
// (collective over the world communicator c, which must carry a mapping).
func NewNodeAwareCollectives(c Comm) (*NodeAwareCollectives, error) {
	return collx.NewNodeAware(c)
}

// AllgatherRing gathers every rank's block to all ranks in p-1
// neighbor steps (bandwidth-optimal baseline).
func AllgatherRing(c Comm, send, recv Buffer, block int) error {
	return collx.AllgatherRing(c, send, recv, block)
}

// AllgatherBruck gathers in ceil(log2 p) doubling steps
// (latency-optimal baseline).
func AllgatherBruck(c Comm, send, recv Buffer, block int) error {
	return collx.AllgatherBruck(c, send, recv, block)
}

// AllreduceRecursiveDoubling reduces buf element-wise across all ranks,
// leaving the result everywhere.
func AllreduceRecursiveDoubling(c Comm, buf Buffer, op ReduceOp) error {
	return collx.AllreduceRecursiveDoubling(c, buf, op)
}

// ReduceScatterPairwise leaves each rank the element-wise reduction of
// every rank's block for it.
func ReduceScatterPairwise(c Comm, send, recv Buffer, block int, op ReduceOp) error {
	return collx.ReduceScatterPairwise(c, send, recv, block, op)
}
