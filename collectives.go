package alltoallx

import (
	"alltoallx/internal/collx"
	"alltoallx/internal/core"
)

// Alltoallver is a persistent variable-sized all-to-all operation — the
// MPI_Alltoallv counterpart of Alltoaller, with the same lifecycle:
// construct once (collectively) with NewV, reuse for any number of
// exchanges within the maxTotal fixed at construction.
type Alltoallver = core.Alltoallver

// NewV constructs the named persistent alltoallv on c (collective call).
// maxTotal — the largest send or receive total of ANY rank — must be
// passed identically by every rank. Algorithm names: pairwise,
// nonblocking, node-aware, locality-aware, tuned.
func NewV(name string, c Comm, maxTotal int, o Options) (Alltoallver, error) {
	return core.NewV(name, c, maxTotal, o)
}

// AlgorithmsV returns all registered alltoallv algorithm names.
func AlgorithmsV() []string { return core.NamesV() }

// DisplsFromCounts builds contiguous displacements for per-peer byte
// counts and returns the total buffer length — the common packing helper
// for Alltoallv callers.
func DisplsFromCounts(counts []int) (displs []int, total int) {
	return core.DisplsFromCounts(counts)
}

// ReduceOp accumulates the second buffer into the first, element-wise.
type ReduceOp = collx.Op

// Element-wise reduction operators over little-endian int64 payloads.
var (
	SumInt64 ReduceOp = collx.SumInt64
	MaxInt64 ReduceOp = collx.MaxInt64
)

// Allgatherer is a persistent allgather operation (registry names: ring,
// bruck, node-aware).
type Allgatherer = collx.Allgatherer

// Allreducer is a persistent allreduce operation (registry names:
// recursive-doubling, node-aware).
type Allreducer = collx.Allreducer

// ReduceScatterer is a persistent reduce-scatter operation (registry
// names: pairwise, node-aware).
type ReduceScatterer = collx.ReduceScatterer

// NewAllgather constructs the named persistent allgather on c (collective
// call; the node-aware variant splits leader communicators once, during
// construction).
func NewAllgather(name string, c Comm, o Options) (Allgatherer, error) {
	return collx.NewAllgather(name, c, o)
}

// NewAllreduce constructs the named persistent allreduce on c (collective
// call).
func NewAllreduce(name string, c Comm, o Options) (Allreducer, error) {
	return collx.NewAllreduce(name, c, o)
}

// NewReduceScatter constructs the named persistent reduce-scatter on c
// (collective call).
func NewReduceScatter(name string, c Comm, o Options) (ReduceScatterer, error) {
	return collx.NewReduceScatter(name, c, o)
}

// AllgatherAlgorithms returns the registered allgather algorithm names.
func AllgatherAlgorithms() []string { return collx.AllgatherNames() }

// AllreduceAlgorithms returns the registered allreduce algorithm names.
func AllreduceAlgorithms() []string { return collx.AllreduceNames() }

// ReduceScatterAlgorithms returns the registered reduce-scatter algorithm
// names.
func ReduceScatterAlgorithms() []string { return collx.ReduceScatterNames() }

// NodeAwareCollectives applies the paper's aggregation strategy (its
// Section 5 future work) to allgather, allreduce, reduce-scatter and
// broadcast: leaders perform the inter-node part, everything else stays on
// the node. Library users should prefer the registry constructors
// (NewAllgather et al., name "node-aware"); this object remains the home
// of the node-aware broadcast.
type NodeAwareCollectives = collx.NodeAware

// NewNodeAwareCollectives builds the node-level communicators once
// (collective over the world communicator c, which must carry a mapping).
func NewNodeAwareCollectives(c Comm) (*NodeAwareCollectives, error) {
	return collx.NewNodeAware(c)
}
