package alltoallx_test

import (
	"encoding/binary"
	"fmt"
	"testing"

	"alltoallx"
)

func TestPublicAlltoallv(t *testing.T) {
	t.Parallel()
	const n = 6
	err := alltoallx.RunLive(alltoallx.LiveConfig{Ranks: n}, func(c alltoallx.Comm) error {
		r := c.Rank()
		sendCounts := make([]int, n)
		recvCounts := make([]int, n)
		for i := 0; i < n; i++ {
			sendCounts[i] = (r+i)%4 + 1
			recvCounts[i] = (i+r)%4 + 1
		}
		sdispls, sTotal := alltoallx.AlltoallvCounts(sendCounts)
		rdispls, rTotal := alltoallx.AlltoallvCounts(recvCounts)
		send := alltoallx.Alloc(sTotal)
		recv := alltoallx.Alloc(rTotal)
		for i := 0; i < n; i++ {
			for k := 0; k < sendCounts[i]; k++ {
				send.Bytes()[sdispls[i]+k] = byte(r*16 + i)
			}
		}
		if err := alltoallx.Alltoallv(c, send, sendCounts, sdispls, recv, recvCounts, rdispls); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			for k := 0; k < recvCounts[i]; k++ {
				if got, want := recv.Bytes()[rdispls[i]+k], byte(i*16+r); got != want {
					return fmt.Errorf("rank %d from %d byte %d: got %d want %d", r, i, k, got, want)
				}
			}
		}
		return alltoallx.AlltoallvNonblocking(c, send, sendCounts, sdispls, recv, recvCounts, rdispls)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPublicNodeAwareCollectives(t *testing.T) {
	t.Parallel()
	spec := alltoallx.NodeSpec{Sockets: 2, NumaPerSocket: 2, CoresPerNuma: 2}
	mapping, err := alltoallx.NewMapping(spec, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	p := mapping.Size()
	wantSum := int64(0)
	for r := 0; r < p; r++ {
		wantSum += int64(r + 1)
	}
	err = alltoallx.RunLive(alltoallx.LiveConfig{Mapping: mapping}, func(c alltoallx.Comm) error {
		na, err := alltoallx.NewNodeAwareCollectives(c)
		if err != nil {
			return err
		}
		// Allreduce.
		buf := alltoallx.Alloc(8)
		binary.LittleEndian.PutUint64(buf.Bytes(), uint64(int64(c.Rank()+1)))
		if err := na.Allreduce(buf, alltoallx.SumInt64); err != nil {
			return err
		}
		if got := int64(binary.LittleEndian.Uint64(buf.Bytes())); got != wantSum {
			return fmt.Errorf("allreduce: got %d want %d", got, wantSum)
		}
		// Allgather.
		const block = 4
		send := alltoallx.Alloc(block)
		for i := range send.Bytes() {
			send.Bytes()[i] = byte(c.Rank())
		}
		recv := alltoallx.Alloc(p * block)
		if err := na.Allgather(send, recv, block); err != nil {
			return err
		}
		for r := 0; r < p; r++ {
			if recv.Bytes()[r*block] != byte(r) {
				return fmt.Errorf("allgather block %d wrong", r)
			}
		}
		// Bcast.
		b := alltoallx.Alloc(8)
		if c.Rank() == 3 {
			copy(b.Bytes(), []byte("broadcst"))
		}
		if err := na.Bcast(3, b); err != nil {
			return err
		}
		if string(b.Bytes()) != "broadcst" {
			return fmt.Errorf("bcast payload %q", b.Bytes())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPublicFlatCollectives(t *testing.T) {
	t.Parallel()
	const n = 7
	err := alltoallx.RunLive(alltoallx.LiveConfig{Ranks: n}, func(c alltoallx.Comm) error {
		const block = 8
		send := alltoallx.Alloc(block)
		binary.LittleEndian.PutUint64(send.Bytes(), uint64(int64(c.Rank()*10)))
		recv := alltoallx.Alloc(n * block)
		if err := alltoallx.AllgatherRing(c, send, recv, block); err != nil {
			return err
		}
		recv2 := alltoallx.Alloc(n * block)
		if err := alltoallx.AllgatherBruck(c, send, recv2, block); err != nil {
			return err
		}
		for r := 0; r < n; r++ {
			a := int64(binary.LittleEndian.Uint64(recv.Bytes()[r*block:]))
			b := int64(binary.LittleEndian.Uint64(recv2.Bytes()[r*block:]))
			if a != int64(r*10) || b != a {
				return fmt.Errorf("allgather mismatch at %d: ring %d bruck %d", r, a, b)
			}
		}
		// Reduce-scatter: block d from rank s carries s+d.
		rs := alltoallx.Alloc(n * block)
		for d := 0; d < n; d++ {
			binary.LittleEndian.PutUint64(rs.Bytes()[d*block:], uint64(int64(c.Rank()+d)))
		}
		out := alltoallx.Alloc(block)
		if err := alltoallx.ReduceScatterPairwise(c, rs, out, block, alltoallx.SumInt64); err != nil {
			return err
		}
		want := int64(0)
		for s := 0; s < n; s++ {
			want += int64(s + c.Rank())
		}
		if got := int64(binary.LittleEndian.Uint64(out.Bytes())); got != want {
			return fmt.Errorf("reduce-scatter: got %d want %d", got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPublicNewV drives the unified persistent alltoallv API through the
// facade: node-aware aggregation plus the tuned dispatcher built from an
// OpAlltoallv dispatch spec.
func TestPublicNewV(t *testing.T) {
	t.Parallel()
	spec := alltoallx.NodeSpec{Sockets: 2, NumaPerSocket: 2, CoresPerNuma: 2}
	mapping, err := alltoallx.NewMapping(spec, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	p := mapping.Size()
	count := func(src, dst int) int { return (src+dst)%5 + 1 }
	maxTotal := 0
	for r := 0; r < p; r++ {
		st, rt := 0, 0
		for i := 0; i < p; i++ {
			st += count(r, i)
			rt += count(i, r)
		}
		if st > maxTotal {
			maxTotal = st
		}
		if rt > maxTotal {
			maxTotal = rt
		}
	}
	for _, name := range []string{"node-aware", "locality-aware", "tuned"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			opts := alltoallx.Options{PPG: 4}
			if name == "tuned" {
				opts.Table = &alltoallx.Dispatch{Op: alltoallx.OpAlltoallv, Entries: []alltoallx.DispatchEntry{
					{MaxBlock: 2, Algo: "pairwise"},
					{MaxBlock: 4096, Algo: "node-aware"},
				}}
			}
			err := alltoallx.RunLive(alltoallx.LiveConfig{Mapping: mapping}, func(c alltoallx.Comm) error {
				r := c.Rank()
				sc := make([]int, p)
				rc := make([]int, p)
				for i := 0; i < p; i++ {
					sc[i] = count(r, i)
					rc[i] = count(i, r)
				}
				sdispls, sTotal := alltoallx.DisplsFromCounts(sc)
				rdispls, rTotal := alltoallx.DisplsFromCounts(rc)
				a, err := alltoallx.NewV(name, c, maxTotal, opts)
				if err != nil {
					return err
				}
				send := alltoallx.Alloc(sTotal)
				recv := alltoallx.Alloc(rTotal)
				for i := 0; i < p; i++ {
					for k := 0; k < sc[i]; k++ {
						send.Bytes()[sdispls[i]+k] = byte(r*16 + i)
					}
				}
				if err := a.Alltoallv(send, sc, sdispls, recv, rc, rdispls); err != nil {
					return err
				}
				for i := 0; i < p; i++ {
					for k := 0; k < rc[i]; k++ {
						if got, want := recv.Bytes()[rdispls[i]+k], byte(i*16+r); got != want {
							return fmt.Errorf("rank %d from %d byte %d: got %d want %d", r, i, k, got, want)
						}
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPublicCollectiveRegistries exercises the registry constructors for
// allgather, allreduce and reduce-scatter through the facade.
func TestPublicCollectiveRegistries(t *testing.T) {
	t.Parallel()
	spec := alltoallx.NodeSpec{Sockets: 2, NumaPerSocket: 2, CoresPerNuma: 2}
	mapping, err := alltoallx.NewMapping(spec, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	p := mapping.Size()
	if got := alltoallx.AllgatherAlgorithms(); len(got) < 3 {
		t.Fatalf("allgather registry too small: %v", got)
	}
	if got := alltoallx.AllreduceAlgorithms(); len(got) < 2 {
		t.Fatalf("allreduce registry too small: %v", got)
	}
	if got := alltoallx.ReduceScatterAlgorithms(); len(got) < 2 {
		t.Fatalf("reduce-scatter registry too small: %v", got)
	}
	err = alltoallx.RunLive(alltoallx.LiveConfig{Mapping: mapping}, func(c alltoallx.Comm) error {
		r := c.Rank()
		const block = 8
		ag, err := alltoallx.NewAllgather("node-aware", c, alltoallx.Options{})
		if err != nil {
			return err
		}
		send := alltoallx.Alloc(block)
		recv := alltoallx.Alloc(p * block)
		for i := range send.Bytes() {
			send.Bytes()[i] = byte(r)
		}
		if err := ag.Allgather(send, recv, block); err != nil {
			return err
		}
		for s := 0; s < p; s++ {
			if got := recv.Bytes()[s*block]; got != byte(s) {
				return fmt.Errorf("allgather block %d: got %d", s, got)
			}
		}

		ar, err := alltoallx.NewAllreduce("node-aware", c, alltoallx.Options{})
		if err != nil {
			return err
		}
		buf := alltoallx.Alloc(8)
		binary.LittleEndian.PutUint64(buf.Bytes(), uint64(int64(r+1)))
		if err := ar.Allreduce(buf, alltoallx.SumInt64); err != nil {
			return err
		}
		wantSum := int64(p * (p + 1) / 2)
		if got := int64(binary.LittleEndian.Uint64(buf.Bytes())); got != wantSum {
			return fmt.Errorf("allreduce: got %d, want %d", got, wantSum)
		}

		rs, err := alltoallx.NewReduceScatter("pairwise", c, alltoallx.Options{})
		if err != nil {
			return err
		}
		rsend := alltoallx.Alloc(p * 8)
		rrecv := alltoallx.Alloc(8)
		for d := 0; d < p; d++ {
			binary.LittleEndian.PutUint64(rsend.Bytes()[d*8:], uint64(int64(d)))
		}
		if err := rs.ReduceScatter(rsend, rrecv, 8, alltoallx.SumInt64); err != nil {
			return err
		}
		if got := int64(binary.LittleEndian.Uint64(rrecv.Bytes())); got != int64(r*p) {
			return fmt.Errorf("reduce-scatter: got %d, want %d", got, r*p)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDisplsFromCountsAlias: the renamed helper and its deprecated alias
// agree.
func TestDisplsFromCountsAlias(t *testing.T) {
	t.Parallel()
	counts := []int{3, 0, 5, 2}
	d1, t1 := alltoallx.DisplsFromCounts(counts)
	d2, t2 := alltoallx.AlltoallvCounts(counts)
	if t1 != t2 || t1 != 10 {
		t.Fatalf("totals differ: %d vs %d", t1, t2)
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("displs differ at %d: %v vs %v", i, d1, d2)
		}
	}
}
