package alltoallx_test

import (
	"encoding/binary"
	"fmt"
	"testing"

	"alltoallx"
)

func TestPublicAlltoallv(t *testing.T) {
	t.Parallel()
	const n = 6
	err := alltoallx.RunLive(alltoallx.LiveConfig{Ranks: n}, func(c alltoallx.Comm) error {
		r := c.Rank()
		sendCounts := make([]int, n)
		recvCounts := make([]int, n)
		for i := 0; i < n; i++ {
			sendCounts[i] = (r+i)%4 + 1
			recvCounts[i] = (i+r)%4 + 1
		}
		sdispls, sTotal := alltoallx.AlltoallvCounts(sendCounts)
		rdispls, rTotal := alltoallx.AlltoallvCounts(recvCounts)
		send := alltoallx.Alloc(sTotal)
		recv := alltoallx.Alloc(rTotal)
		for i := 0; i < n; i++ {
			for k := 0; k < sendCounts[i]; k++ {
				send.Bytes()[sdispls[i]+k] = byte(r*16 + i)
			}
		}
		if err := alltoallx.Alltoallv(c, send, sendCounts, sdispls, recv, recvCounts, rdispls); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			for k := 0; k < recvCounts[i]; k++ {
				if got, want := recv.Bytes()[rdispls[i]+k], byte(i*16+r); got != want {
					return fmt.Errorf("rank %d from %d byte %d: got %d want %d", r, i, k, got, want)
				}
			}
		}
		return alltoallx.AlltoallvNonblocking(c, send, sendCounts, sdispls, recv, recvCounts, rdispls)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPublicNodeAwareCollectives(t *testing.T) {
	t.Parallel()
	spec := alltoallx.NodeSpec{Sockets: 2, NumaPerSocket: 2, CoresPerNuma: 2}
	mapping, err := alltoallx.NewMapping(spec, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	p := mapping.Size()
	wantSum := int64(0)
	for r := 0; r < p; r++ {
		wantSum += int64(r + 1)
	}
	err = alltoallx.RunLive(alltoallx.LiveConfig{Mapping: mapping}, func(c alltoallx.Comm) error {
		na, err := alltoallx.NewNodeAwareCollectives(c)
		if err != nil {
			return err
		}
		// Allreduce.
		buf := alltoallx.Alloc(8)
		binary.LittleEndian.PutUint64(buf.Bytes(), uint64(int64(c.Rank()+1)))
		if err := na.Allreduce(buf, alltoallx.SumInt64); err != nil {
			return err
		}
		if got := int64(binary.LittleEndian.Uint64(buf.Bytes())); got != wantSum {
			return fmt.Errorf("allreduce: got %d want %d", got, wantSum)
		}
		// Allgather.
		const block = 4
		send := alltoallx.Alloc(block)
		for i := range send.Bytes() {
			send.Bytes()[i] = byte(c.Rank())
		}
		recv := alltoallx.Alloc(p * block)
		if err := na.Allgather(send, recv, block); err != nil {
			return err
		}
		for r := 0; r < p; r++ {
			if recv.Bytes()[r*block] != byte(r) {
				return fmt.Errorf("allgather block %d wrong", r)
			}
		}
		// Bcast.
		b := alltoallx.Alloc(8)
		if c.Rank() == 3 {
			copy(b.Bytes(), []byte("broadcst"))
		}
		if err := na.Bcast(3, b); err != nil {
			return err
		}
		if string(b.Bytes()) != "broadcst" {
			return fmt.Errorf("bcast payload %q", b.Bytes())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPublicFlatCollectives(t *testing.T) {
	t.Parallel()
	const n = 7
	err := alltoallx.RunLive(alltoallx.LiveConfig{Ranks: n}, func(c alltoallx.Comm) error {
		const block = 8
		send := alltoallx.Alloc(block)
		binary.LittleEndian.PutUint64(send.Bytes(), uint64(int64(c.Rank()*10)))
		recv := alltoallx.Alloc(n * block)
		if err := alltoallx.AllgatherRing(c, send, recv, block); err != nil {
			return err
		}
		recv2 := alltoallx.Alloc(n * block)
		if err := alltoallx.AllgatherBruck(c, send, recv2, block); err != nil {
			return err
		}
		for r := 0; r < n; r++ {
			a := int64(binary.LittleEndian.Uint64(recv.Bytes()[r*block:]))
			b := int64(binary.LittleEndian.Uint64(recv2.Bytes()[r*block:]))
			if a != int64(r*10) || b != a {
				return fmt.Errorf("allgather mismatch at %d: ring %d bruck %d", r, a, b)
			}
		}
		// Reduce-scatter: block d from rank s carries s+d.
		rs := alltoallx.Alloc(n * block)
		for d := 0; d < n; d++ {
			binary.LittleEndian.PutUint64(rs.Bytes()[d*block:], uint64(int64(c.Rank()+d)))
		}
		out := alltoallx.Alloc(block)
		if err := alltoallx.ReduceScatterPairwise(c, rs, out, block, alltoallx.SumInt64); err != nil {
			return err
		}
		want := int64(0)
		for s := 0; s < n; s++ {
			want += int64(s + c.Rank())
		}
		if got := int64(binary.LittleEndian.Uint64(out.Bytes())); got != want {
			return fmt.Errorf("reduce-scatter: got %d want %d", got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
