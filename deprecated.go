package alltoallx

// This file collects every deprecated free-function shim at the facade.
// All of them predate the unified persistent-operation API (construct
// once with a registry constructor, exchange many times, Start/Test/Wait
// for overlap) and forward to the same implementations; none can take
// part in tuned dispatch, phase breakdowns, or nonblocking exchanges.
//
// Migration table:
//
//	deprecated shim               registry replacement
//	---------------------------   ------------------------------------------
//	Alltoallv                     NewV("pairwise", c, maxTotal, o)
//	AlltoallvNonblocking          NewV("nonblocking", c, maxTotal, o)
//	AlltoallvCounts               DisplsFromCounts
//	AllgatherRing                 NewAllgather("ring", c, o)
//	AllgatherBruck                NewAllgather("bruck", c, o)
//	AllreduceRecursiveDoubling    NewAllreduce("recursive-doubling", c, o)
//	ReduceScatterPairwise         NewReduceScatter("pairwise", c, o)
//
// The shims remain so no caller breaks; new code should use the
// replacements, which validate once at construction and expose the full
// operation interface (Phases, Start/Test/Wait).

import (
	"alltoallx/internal/collx"
	"alltoallx/internal/core"
)

// AlltoallvCounts builds contiguous displacements for per-peer byte
// counts.
//
// Deprecated: renamed to DisplsFromCounts (the result is displacements,
// not counts); this alias forwards to it.
func AlltoallvCounts(counts []int) (displs []int, total int) {
	return core.DisplsFromCounts(counts)
}

// Alltoallv performs a one-shot variable-sized all-to-all (MPI_Alltoallv
// semantics, pairwise stepping).
//
// Deprecated: construct a persistent operation with
// NewV("pairwise", ...) instead; the free function re-validates on every
// call and cannot take part in tuned dispatch.
func Alltoallv(c Comm, send Buffer, sendCounts, sdispls []int, recv Buffer, recvCounts, rdispls []int) error {
	return core.Alltoallv(c, send, sendCounts, sdispls, recv, recvCounts, rdispls)
}

// AlltoallvNonblocking is Alltoallv with all exchanges posted up front.
//
// Deprecated: construct a persistent operation with
// NewV("nonblocking", ...) instead.
func AlltoallvNonblocking(c Comm, send Buffer, sendCounts, sdispls []int, recv Buffer, recvCounts, rdispls []int) error {
	return core.AlltoallvNonblocking(c, send, sendCounts, sdispls, recv, recvCounts, rdispls)
}

// AllgatherRing gathers every rank's block to all ranks in p-1
// neighbor steps (bandwidth-optimal baseline).
//
// Deprecated: construct a persistent operation with
// NewAllgather("ring", ...) instead.
func AllgatherRing(c Comm, send, recv Buffer, block int) error {
	return collx.AllgatherRing(c, send, recv, block)
}

// AllgatherBruck gathers in ceil(log2 p) doubling steps
// (latency-optimal baseline).
//
// Deprecated: construct a persistent operation with
// NewAllgather("bruck", ...) instead.
func AllgatherBruck(c Comm, send, recv Buffer, block int) error {
	return collx.AllgatherBruck(c, send, recv, block)
}

// AllreduceRecursiveDoubling reduces buf element-wise across all ranks,
// leaving the result everywhere.
//
// Deprecated: construct a persistent operation with
// NewAllreduce("recursive-doubling", ...) instead.
func AllreduceRecursiveDoubling(c Comm, buf Buffer, op ReduceOp) error {
	return collx.AllreduceRecursiveDoubling(c, buf, op)
}

// ReduceScatterPairwise leaves each rank the element-wise reduction of
// every rank's block for it.
//
// Deprecated: construct a persistent operation with
// NewReduceScatter("pairwise", ...) instead.
func ReduceScatterPairwise(c Comm, send, recv Buffer, block int, op ReduceOp) error {
	return collx.ReduceScatterPairwise(c, send, recv, block, op)
}
