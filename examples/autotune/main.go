// Dynamic algorithm selection — the paper's future-work direction of
// picking the optimal all-to-all "for a given computer, system MPI,
// process count, and data size". The machine model evaluates every
// candidate per message size and bakes the winners into a dispatch table.
//
//	go run ./examples/autotune [-machine Dane] [-nodes 8] [-ppn 16]
package main

import (
	"flag"
	"fmt"
	"log"

	"alltoallx/internal/autotune"
	"alltoallx/internal/netmodel"
)

func main() {
	var (
		machine = flag.String("machine", "Dane", "machine model")
		nodes   = flag.Int("nodes", 8, "node count")
		ppn     = flag.Int("ppn", 16, "ranks per node")
	)
	flag.Parse()

	m, err := netmodel.ByName(*machine)
	if err != nil {
		log.Fatal(err)
	}
	sizes := []int{4, 64, 1024, 4096}
	cands := autotune.DefaultCandidates(*ppn)
	fmt.Printf("selecting best all-to-all on %s (%d nodes x %d ranks) from %d candidates...\n",
		m.Name, *nodes, *ppn, len(cands))
	table, err := autotune.BuildTable(m, *nodes, *ppn, sizes, cands, 2, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndispatch table:")
	for i, s := range table.Sizes {
		c := table.Best[i]
		fmt.Printf("  <= %5d B : %-28s (predicted %.3e s)\n", s, c.Name, c.Seconds)
	}
	for _, probe := range []int{16, 512, 1 << 15} {
		c := table.Pick(probe)
		fmt.Printf("Pick(%d B) -> %s\n", probe, c.Name)
	}
}
