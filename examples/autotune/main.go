// Dynamic algorithm selection — the paper's future-work direction of
// picking the optimal all-to-all "for a given computer, system MPI,
// process count, and data size" — as a full produce -> persist -> dispatch
// cycle. The machine model evaluates every candidate per message size and
// bakes the winners into a dispatch table (offline tuning); the table is
// saved to JSON and loaded back (what cmd/a2atune -o and a deployed job
// do on opposite sides of a filesystem); finally a simulated cluster
// constructs the "tuned" meta-algorithm from the loaded table and
// dispatches each block size to its tabled winner.
//
// The -op flag tunes and dispatches either collective through the same
// unified persistent-operation API: alltoall (fixed-size) or alltoallv
// (variable-size, Zipf-skewed counts).
//
// With -predict the produce step runs the model-guided sweep instead of
// the exhaustive one: every candidate is measured at a few probe sizes,
// power-law cost models are fitted (internal/costmodel), and the
// remaining sizes only measure candidates predicted competitive — same
// winners, a fraction of the simulations.
//
//	go run ./examples/autotune [-machine Dane] [-nodes 8] [-ppn 16] [-op alltoallv] [-predict] [-o table.json]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"alltoallx/internal/autotune"
	"alltoallx/internal/bench"
	"alltoallx/internal/comm"
	"alltoallx/internal/core"
	"alltoallx/internal/netmodel"
	"alltoallx/internal/sim"
)

func main() {
	var (
		machine = flag.String("machine", "Dane", "machine model")
		nodes   = flag.Int("nodes", 8, "node count")
		ppn     = flag.Int("ppn", 16, "ranks per node")
		opName  = flag.String("op", "alltoall", "collective to tune: alltoall or alltoallv")
		predict = flag.Bool("predict", false, "model-guided sweep: fit cost models at probe sizes, measure only predicted contenders")
		out     = flag.String("o", "", "table path (empty = a temp file, removed on exit)")
	)
	flag.Parse()
	// run, not main, owns the logic: log.Fatal would skip the deferred
	// temp-file cleanup.
	if err := run(*machine, *nodes, *ppn, core.Op(*opName), *predict, *out); err != nil {
		log.Fatal(err)
	}
}

func run(machineName string, nodes, ppn int, op core.Op, predict bool, out string) error {
	m, err := netmodel.ByName(machineName)
	if err != nil {
		return err
	}

	// 1. Produce: rank every candidate at every size on the machine model.
	sizes := autotune.SizeGrid(4, 4096)
	cands := autotune.DefaultCandidates(op, nodes, ppn)
	fmt.Printf("tuning %s on %s (%d nodes x %d ranks): %d candidates x %d sizes...\n",
		op.Norm(), m.Name, nodes, ppn, len(cands), len(sizes))
	var table *autotune.Table
	if predict {
		pred, err := autotune.BuildTablePredictive(m, op, nodes, ppn, sizes, cands, 2, 1, nil)
		if err != nil {
			return err
		}
		table = pred.Table
		fmt.Printf("predictive sweep: %d of %d measurements (%d pruned by fitted cost models)\n",
			pred.Measured, pred.Full, pred.Pruned())
		for _, x := range pred.Models.Crossovers(float64(sizes[0]), float64(sizes[len(sizes)-1])) {
			fmt.Printf("  predicted crossover: %s -> %s near %d B\n", x.A, x.B, int(x.X))
		}
	} else {
		table, err = autotune.BuildTable(m, op, nodes, ppn, sizes, cands, 2, 1, nil)
		if err != nil {
			return err
		}
	}

	// 2. Persist: save the table, then load it back as a deployed job would.
	path := out
	if path == "" {
		f, err := os.CreateTemp("", "a2a-table-*.json")
		if err != nil {
			return err
		}
		f.Close()
		path = f.Name()
		defer os.Remove(path)
	}
	if err := table.Save(path); err != nil {
		return err
	}
	loaded, err := autotune.Load(path)
	if err != nil {
		return err
	}
	if err := loaded.CheckWorld(m.Name, nodes, ppn); err != nil {
		return err
	}
	fmt.Printf("\ndispatch table (version %d, saved to %s):\n", loaded.Version, path)
	for _, e := range loaded.Entries {
		fmt.Printf("  <= %5d B : %-28s (predicted %.3e s)\n", e.Size, e.Name, e.Seconds)
	}

	// 3. Dispatch: a simulated cluster runs the "tuned" meta-algorithm
	// built from the loaded table; each exchange goes to the tabled winner.
	fmt.Println("\ndispatching on a simulated cluster:")
	probes := []int{16, 512, 4096}
	picked := make([]string, len(probes))
	timed := make([]float64, len(probes))
	cfg := sim.ClusterConfig{Model: m, Nodes: nodes, PPN: ppn, Seed: 1}
	_, err = sim.RunCluster(cfg, func(c comm.Comm) error {
		if op.Norm() == core.OpAlltoallv {
			return dispatchV(c, loaded, probes, picked, timed)
		}
		a, err := core.New("tuned", c, probes[len(probes)-1], loaded.Options())
		if err != nil {
			return err
		}
		for i, block := range probes {
			send := comm.Virtual(c.Size() * block)
			recv := comm.Virtual(c.Size() * block)
			if err := c.Barrier(); err != nil {
				return err
			}
			t0 := c.Now()
			if err := a.Alltoall(send, recv, block); err != nil {
				return err
			}
			if c.Rank() == 0 {
				timed[i] = c.Now() - t0
				picked[i] = a.(interface{ Picked() string }).Picked()
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	for i, block := range probes {
		fmt.Printf("  %5d B -> %-28s %.3e s (table predicted %s)\n",
			block, picked[i], timed[i], loaded.Pick(block).Name)
	}
	return nil
}

// dispatchV probes the tuned alltoallv dispatcher with the benchmark's
// Zipf-skewed count matrices, one per mean block size.
func dispatchV(c comm.Comm, table *autotune.Table, probes []int, picked []string, timed []float64) error {
	p, r := c.Size(), c.Rank()
	// maxTotal is collective: the largest send/recv total of ANY rank over
	// every probed count matrix (hot columns can exceed p*mean).
	maxTotal := 1
	for _, block := range probes {
		if t := bench.MaxTotal(bench.ZipfCounts(p, block)); t > maxTotal {
			maxTotal = t
		}
	}
	a, err := core.NewV("tuned", c, maxTotal, table.Options())
	if err != nil {
		return err
	}
	for i, block := range probes {
		counts := bench.ZipfCounts(p, block)
		sc := counts[r]
		rc := make([]int, p)
		for s := 0; s < p; s++ {
			rc[s] = counts[s][r]
		}
		sdispls, sTotal := core.DisplsFromCounts(sc)
		rdispls, rTotal := core.DisplsFromCounts(rc)
		if err := c.Barrier(); err != nil {
			return err
		}
		t0 := c.Now()
		if err := a.Alltoallv(comm.Virtual(sTotal), sc, sdispls, comm.Virtual(rTotal), rc, rdispls); err != nil {
			return err
		}
		if r == 0 {
			timed[i] = c.Now() - t0
			picked[i] = a.(interface{ Picked() string }).Picked()
		}
	}
	return nil
}
