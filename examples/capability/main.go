// Capability-scale projection — the paper's future-work plan to "develop a
// model to evaluate these impacts at capability-scale". The closed-form
// cost model ranks the algorithm family far beyond what any replay could
// simulate: here, up to 4096 nodes of each machine.
//
//	go run ./examples/capability [-machine Tuolomne] [-block 1024]
package main

import (
	"flag"
	"fmt"
	"log"

	"alltoallx/internal/model"
	"alltoallx/internal/netmodel"
)

func main() {
	var (
		machine = flag.String("machine", "Dane", "machine model: Dane, Amber, Tuolomne")
		block   = flag.Int("block", 1024, "bytes per rank pair")
	)
	flag.Parse()

	m, err := netmodel.ByName(*machine)
	if err != nil {
		log.Fatal(err)
	}
	ppn := m.Node.CoresPerNode()
	fmt.Printf("projected best all-to-all on %s (%d ranks/node, %d B blocks)\n\n", m.Name, ppn, *block)
	fmt.Printf("%8s  %-28s %-12s %-34s\n", "nodes", "best", "predicted", "runner-up")
	for nodes := 32; nodes <= 4096; nodes *= 2 {
		cfg := model.Config{Machine: m, Nodes: nodes, PPN: ppn, Block: *block}
		ranked, err := model.Rank(cfg)
		if err != nil {
			log.Fatal(err)
		}
		best, second := ranked[0], ranked[1]
		fmt.Printf("%8d  %-28s %.3e s  %s (%.2fx slower)\n",
			nodes, best.Algorithm, best.Seconds, second.Algorithm, second.Seconds/best.Seconds)
	}
	fmt.Println("\ncrossover scan (multileader-node-aware -> node-aware), 512 nodes:")
	cfg := model.Config{Machine: m, Nodes: 512, PPN: ppn}
	x, err := model.Crossover("multileader-node-aware", "node-aware", cfg, 4, 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	if x == 0 {
		fmt.Println("  node-aware never overtakes below 1 MiB")
	} else {
		fmt.Printf("  node-aware becomes fastest at %d B per block\n", x)
	}
}
