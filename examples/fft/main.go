// Distributed 1-D FFT — the paper's headline motivating workload for
// all-to-all: a six-step (transpose) FFT where every transpose is an
// all-to-all exchange among the ranks.
//
// N complex points are viewed as an n1 x n2 matrix. The algorithm is:
// transpose, n1-point row FFTs, twiddle multiply, transpose, n2-point row
// FFTs, transpose. Each distributed transpose uses the selected all-to-all
// algorithm. The result is verified against a direct O(N^2) DFT.
//
// With -pipeline each transpose is software-pipelined through the
// nonblocking Start/Test/Wait API: the owned rows are split in half, the
// first half's exchange is started, and the second half's packing (and
// later the first half's unpacking) overlaps with it — the pack/unpack
// compute hides behind the wire.
//
//	go run ./examples/fft [-algo node-aware] [-n 4096] [-ranks 16] [-pipeline]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/cmplx"
	"math/rand"
	"sync/atomic"
	"time"

	"alltoallx"
)

func main() {
	var (
		algo     = flag.String("algo", "node-aware", "all-to-all algorithm for the transposes")
		n        = flag.Int("n", 4096, "total FFT points (power of two)")
		ranks    = flag.Int("ranks", 16, "rank count (power of two dividing both matrix axes)")
		pipeline = flag.Bool("pipeline", false, "pipeline each transpose with Start/Test/Wait (pack/unpack overlaps the exchange)")
	)
	flag.Parse()

	n1, n2 := factor(*n)
	if n1%*ranks != 0 || n2%*ranks != 0 {
		log.Fatalf("ranks=%d must divide both matrix axes %dx%d", *ranks, n1, n2)
	}
	// Input signal: deterministic pseudo-random complex points.
	rng := rand.New(rand.NewSource(7))
	x := make([]complex128, *n)
	for i := range x {
		x[i] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
	}
	want := dft(x) // reference result

	spec := alltoallx.NodeSpec{Sockets: 2, NumaPerSocket: 2, CoresPerNuma: 2}
	nodes := *ranks / spec.CoresPerNode()
	if nodes == 0 {
		nodes = 1
	}
	mapping, err := alltoallx.NewMapping(spec, nodes, *ranks/nodes)
	if err != nil {
		log.Fatal(err)
	}

	got := make([]complex128, *n)
	var inFlight int64 // Test() polls that found the exchange still running
	start := time.Now()
	err = alltoallx.RunLive(alltoallx.LiveConfig{Mapping: mapping}, func(c alltoallx.Comm) error {
		out, err := distributedFFT(c, *algo, x, n1, n2, *pipeline, &inFlight)
		if err != nil {
			return err
		}
		// Each rank owns rows of the final n1 x n2 layout (X[k1 + n1*k2]
		// at row k2): deposit into the shared result (disjoint ranges).
		per := n2 / c.Size()
		copy(got[c.Rank()*per*n1:], out)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	var maxErr float64
	for i := range want {
		if e := cmplx.Abs(got[i] - want[i]); e > maxErr {
			maxErr = e
		}
	}
	mode := "blocking"
	if *pipeline {
		mode = "pipelined (Start/Test/Wait)"
	}
	fmt.Printf("distributed FFT: N=%d (%dx%d) on %d ranks via %s %s transposes\n", *n, n1, n2, *ranks, mode, *algo)
	if *pipeline {
		fmt.Printf("overlap: %d Test polls observed the exchange still in flight while packing/unpacking\n",
			atomic.LoadInt64(&inFlight))
	}
	fmt.Printf("max |error| vs direct DFT: %.3e (%.2fms)\n", maxErr, float64(elapsed.Microseconds())/1000)
	if maxErr > 1e-6 {
		log.Fatal("FFT verification FAILED")
	}
	fmt.Println("verified OK")
}

// factor splits n into the most square n1 x n2 with both powers of two.
func factor(n int) (int, int) {
	if n&(n-1) != 0 || n < 4 {
		log.Fatalf("n=%d must be a power of two >= 4", n)
	}
	n1 := 1
	for n1*n1 < n {
		n1 <<= 1
	}
	return n1, n / n1
}

// distributedFFT computes FFT(x) with x viewed as an n1 x n2 row-major
// matrix (element x[r*n2+c] at row r). Rank k owns rows [k*rows, (k+1)*rows).
// The returned slice is this rank's rows of the final transposed result.
func distributedFFT(c alltoallx.Comm, algo string, x []complex128, n1, n2 int, pipeline bool, inFlight *int64) ([]complex128, error) {
	p, rank := c.Size(), c.Rank()
	nTotal := n1 * n2

	// Local rows of the n1 x n2 input.
	rows1 := n1 / p
	local := make([]complex128, rows1*n2)
	copy(local, x[rank*rows1*n2:(rank+1)*rows1*n2])

	// One persistent all-to-all: every transpose exchanges the same
	// (n1/p)*(n2/p) complex values per rank pair.
	maxBlock := 16 * (n1 / p) * (n2 / p)
	a, err := alltoallx.New(algo, c, maxBlock, alltoallx.Options{PPL: 2, PPG: 2})
	if err != nil {
		return nil, err
	}

	xpose := transpose
	if pipeline {
		xpose = func(c alltoallx.Comm, a alltoallx.Alltoaller, local []complex128, myRows, cols, p int) ([]complex128, error) {
			return transposePipelined(c, a, local, myRows, cols, p, inFlight)
		}
	}

	// Step 1: transpose to n2 x n1 (rank gets rows of the transposed
	// matrix, i.e. columns of the original).
	t1, err := xpose(c, a, local, rows1, n2, p)
	if err != nil {
		return nil, err
	}
	rows2 := n2 / p // rows now owned of the n2 x n1 matrix

	// Step 2: n1-point FFT along each owned row; Step 3: twiddles
	// W_N^(j*k) with j the global row (0..n2), k the column (0..n1).
	for r := 0; r < rows2; r++ {
		row := t1[r*n1 : (r+1)*n1]
		fft(row)
		j := rank*rows2 + r
		for k := 0; k < n1; k++ {
			ang := -2 * math.Pi * float64(j) * float64(k) / float64(nTotal)
			row[k] *= cmplx.Exp(complex(0, ang))
		}
	}

	// Step 4: transpose back to n1 x n2.
	t2, err := xpose(c, a, t1, rows2, n1, p)
	if err != nil {
		return nil, err
	}

	// Step 5: n2-point FFT along each owned row of the n1 x n2 matrix.
	for r := 0; r < rows1; r++ {
		fft(t2[r*n2 : (r+1)*n2])
	}

	// Step 6: final transpose to n2 x n1; X[k1 + n1*k2] = result row k2.
	return xpose(c, a, t2, rows1, n2, p)
}

// transpose redistributes a row-distributed rows x cols matrix (rows per
// rank) into its transpose (cols/p rows per rank) using one all-to-all.
func transpose(c alltoallx.Comm, a alltoallx.Alltoaller, local []complex128, myRows, cols, p int) ([]complex128, error) {
	colsPer := cols / p
	blockVals := myRows * colsPer // complex values per destination
	block := blockVals * 16
	send := alltoallx.Alloc(p * block)
	recv := alltoallx.Alloc(p * block)
	// Pack: destination d owns transposed rows = original columns
	// [d*colsPer, (d+1)*colsPer).
	for d := 0; d < p; d++ {
		off := d * block
		for r := 0; r < myRows; r++ {
			for cc := 0; cc < colsPer; cc++ {
				putComplex(send.Bytes()[off+(r*colsPer+cc)*16:], local[r*cols+d*colsPer+cc])
			}
		}
	}
	if err := a.Alltoall(send, recv, block); err != nil {
		return nil, err
	}
	// Unpack: my transposed rows are original columns; element (tr, tc) of
	// the transpose = original (tc, globalCol tr). Source rank s owned
	// original rows [s*myRows, ...), which become my columns.
	out := make([]complex128, colsPer*(myRows*p))
	totalRows := myRows * p // columns of the transpose
	for s := 0; s < p; s++ {
		off := s * block
		for r := 0; r < myRows; r++ { // original row index within source
			for cc := 0; cc < colsPer; cc++ { // my transposed row index
				v := getComplex(recv.Bytes()[off+(r*colsPer+cc)*16:])
				out[cc*totalRows+s*myRows+r] = v
			}
		}
	}
	return out, nil
}

// transposePipelined is transpose software-pipelined through the
// nonblocking API: the owned rows are split in half, each half travels in
// its own (smaller) all-to-all, and the pack of half 2 overlaps the
// exchange of half 1 while the unpack of half 1 overlaps the exchange of
// half 2. Test is polled between per-destination packing chunks; every
// poll that finds the exchange still in flight is proof of compute that
// hid behind communication.
func transposePipelined(c alltoallx.Comm, a alltoallx.Alltoaller, local []complex128,
	myRows, cols, p int, inFlight *int64) ([]complex128, error) {
	if myRows < 2 {
		return transpose(c, a, local, myRows, cols, p) // nothing to split
	}
	colsPer := cols / p
	r1 := myRows / 2
	r2 := myRows - r1
	block1 := r1 * colsPer * 16
	block2 := r2 * colsPer * 16
	send1, recv1 := alltoallx.Alloc(p*block1), alltoallx.Alloc(p*block1)
	send2, recv2 := alltoallx.Alloc(p*block2), alltoallx.Alloc(p*block2)
	out := make([]complex128, colsPer*myRows*p)
	totalRows := myRows * p

	// pack writes the row range [lo, hi) into per-destination blocks.
	pack := func(send alltoallx.Buffer, lo, hi int, h alltoallx.Handle) error {
		rows := hi - lo
		for d := 0; d < p; d++ {
			off := d * rows * colsPer * 16
			for r := lo; r < hi; r++ {
				for cc := 0; cc < colsPer; cc++ {
					putComplex(send.Bytes()[off+((r-lo)*colsPer+cc)*16:], local[r*cols+d*colsPer+cc])
				}
			}
			if err := pollInFlight(h, inFlight); err != nil {
				return err
			}
		}
		return nil
	}
	// unpack spreads arrivals for the source-row range [lo, hi) into out.
	unpack := func(recv alltoallx.Buffer, lo, hi int, h alltoallx.Handle) error {
		rows := hi - lo
		for s := 0; s < p; s++ {
			off := s * rows * colsPer * 16
			for r := lo; r < hi; r++ {
				for cc := 0; cc < colsPer; cc++ {
					out[cc*totalRows+s*myRows+r] = getComplex(recv.Bytes()[off+((r-lo)*colsPer+cc)*16:])
				}
			}
			if err := pollInFlight(h, inFlight); err != nil {
				return err
			}
		}
		return nil
	}

	if err := pack(send1, 0, r1, nil); err != nil {
		return nil, err
	}
	h1, err := a.Start(send1, recv1, block1)
	if err != nil {
		return nil, err
	}
	if err := pack(send2, r1, myRows, h1); err != nil { // overlaps exchange 1
		return nil, err
	}
	if err := h1.Wait(); err != nil {
		return nil, err
	}
	h2, err := a.Start(send2, recv2, block2)
	if err != nil {
		return nil, err
	}
	if err := unpack(recv1, 0, r1, h2); err != nil { // overlaps exchange 2
		return nil, err
	}
	if err := h2.Wait(); err != nil {
		return nil, err
	}
	if err := unpack(recv2, r1, myRows, nil); err != nil {
		return nil, err
	}
	return out, nil
}

// pollInFlight polls a handle between compute chunks, tallying polls that
// found the exchange still running (nil handles are skipped).
func pollInFlight(h alltoallx.Handle, inFlight *int64) error {
	if h == nil {
		return nil
	}
	done, err := h.Test()
	if err != nil {
		return err
	}
	if !done {
		atomic.AddInt64(inFlight, 1)
	}
	return nil
}

// fft is an in-place iterative radix-2 Cooley-Tukey FFT.
func fft(a []complex128) {
	n := len(a)
	if n&(n-1) != 0 {
		panic("fft: length must be a power of two")
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wl := cmplx.Exp(complex(0, ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := a[i+j]
				v := a[i+j+length/2] * w
				a[i+j] = u + v
				a[i+j+length/2] = u - v
				w *= wl
			}
		}
	}
}

// dft is the direct O(N^2) reference.
func dft(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			ang := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			sum += x[t] * cmplx.Exp(complex(0, ang))
		}
		out[k] = sum
	}
	return out
}

func putComplex(b []byte, v complex128) {
	putF64(b, real(v))
	putF64(b[8:], imag(v))
}

func getComplex(b []byte) complex128 {
	return complex(getF64(b), getF64(b[8:]))
}

func putF64(b []byte, f float64) {
	u := math.Float64bits(f)
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * i))
	}
}

func getF64(b []byte) float64 {
	var u uint64
	for i := 0; i < 8; i++ {
		u |= uint64(b[i]) << (8 * i)
	}
	return math.Float64frombits(u)
}
