// Mixture-of-experts token shuffle — the paper's deep-learning motivation
// for all-to-all. Every rank hosts one expert and a batch of tokens; a
// router assigns each token an expert, tokens travel to their experts,
// are "processed", and travel back. Delivery is verified token by token.
//
// The -op flag selects the exchange through the unified persistent API:
//
//   - alltoall: fixed capacity per rank pair, like framework MoE layers —
//     tokens over capacity are dropped (counted).
//
//   - alltoallv: exact variable counts via NewV — a small fixed-size
//     all-to-all exchanges the per-pair token counts, then the payload
//     alltoallv moves exactly the routed bytes. No capacity, no drops.
//
// With -pipeline (alltoallv only) the return trip of step s is issued
// nonblockingly with Start, and step s+1's routing and packing — pure
// compute — overlaps it, polling Test between packing chunks; Wait
// synchronizes before the returned tokens are verified.
//
//	go run ./examples/mlshuffle [-op alltoallv] [-tokens 256] [-dim 64] [-ranks 16] [-pipeline]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"alltoallx"
)

func main() {
	var (
		tokens   = flag.Int("tokens", 256, "tokens per rank per step")
		dim      = flag.Int("dim", 64, "floats per token")
		ranks    = flag.Int("ranks", 16, "rank count (= expert count)")
		opName   = flag.String("op", "alltoallv", "exchange: alltoall (fixed capacity, drops) or alltoallv (exact counts)")
		algo     = flag.String("algo", "", "algorithm name (default: multileader-node-aware for alltoall, node-aware for alltoallv)")
		steps    = flag.Int("steps", 10, "shuffle steps to time")
		pipeline = flag.Bool("pipeline", false, "overlap each step's return trip with the next step's routing and packing (alltoallv only)")
	)
	flag.Parse()

	spec := alltoallx.NodeSpec{Sockets: 2, NumaPerSocket: 2, CoresPerNuma: 2}
	nodes := *ranks / spec.CoresPerNode()
	if nodes == 0 {
		nodes = 1
	}
	mapping, err := alltoallx.NewMapping(spec, nodes, *ranks/nodes)
	if err != nil {
		log.Fatal(err)
	}

	op := alltoallx.Op(*opName)
	switch op {
	case alltoallx.OpAlltoall:
		if *algo == "" {
			*algo = "multileader-node-aware"
		}
		if *pipeline {
			log.Fatal("-pipeline requires -op alltoallv")
		}
		runCapacity(mapping, *tokens, *dim, *steps, *algo)
	case alltoallx.OpAlltoallv:
		if *algo == "" {
			*algo = "node-aware"
		}
		runExact(mapping, *tokens, *dim, *steps, *algo, *pipeline)
	default:
		log.Fatalf("unknown -op %q (want %s or %s)", *opName, alltoallx.OpAlltoall, alltoallx.OpAlltoallv)
	}
}

// stepPrep is one step's routing outcome: which tokens go to which
// expert, the resulting send counts/displacements, and the packed send
// buffer (written by prepare).
type stepPrep struct {
	route   [][]int64
	sc      []int
	sdispls []int
	sTotal  int
}

// runExact shuffles with exact counts: a persistent 8-byte all-to-all
// announces how many bytes each pair exchanges, then a persistent
// alltoallv moves exactly that much. Every routed token is delivered.
// With pipeline=true the return trip of each step is started
// nonblockingly and the next step's routing + packing (pure compute)
// overlaps it.
func runExact(mapping *alltoallx.Mapping, tokens, dim, steps int, algo string, pipeline bool) {
	p := mapping.Size()
	slot := 8 + dim*8
	// Collective worst-case ceiling: every token in the system routed to
	// one expert.
	maxTotal := p * tokens * slot

	var totalTokens, inFlight int64
	start := time.Now()
	err := alltoallx.RunLive(alltoallx.LiveConfig{Mapping: mapping}, func(c alltoallx.Comm) error {
		rank := c.Rank()
		// The count exchange is itself a persistent fixed-size all-to-all:
		// 8 bytes per rank pair per step.
		counter, err := alltoallx.New("pairwise", c, 8, alltoallx.Options{})
		if err != nil {
			return err
		}
		shuffler, err := alltoallx.NewV(algo, c, maxTotal, alltoallx.Options{})
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(int64(rank) + 1))
		csend, crecv := alltoallx.Alloc(p*8), alltoallx.Alloc(p*8)
		send := alltoallx.Alloc(tokens * slot)
		recv := alltoallx.Alloc(maxTotal)
		back := alltoallx.Alloc(maxTotal)
		home := alltoallx.Alloc(tokens * slot)

		// prepare routes one step's tokens and packs them into send (and
		// the counts into csend) — pure local compute. When h is non-nil
		// it is polled between per-expert packing chunks: every poll that
		// finds the previous return trip still in flight is compute that
		// hid behind communication.
		prepare := func(step int, h alltoallx.Handle) (*stepPrep, error) {
			route := make([][]int64, p)
			for tok := 0; tok < tokens; tok++ {
				expert := rng.Intn(p)
				id := int64(rank)*1_000_000 + int64(step)*10_000 + int64(tok)
				route[expert] = append(route[expert], id)
			}
			sc := make([]int, p)
			for d := 0; d < p; d++ {
				sc[d] = len(route[d]) * slot
				putI64(csend.Bytes()[d*8:], int64(sc[d]))
			}
			sdispls, sTotal := alltoallx.DisplsFromCounts(sc)
			for d := 0; d < p; d++ {
				off := sdispls[d]
				for _, id := range route[d] {
					putI64(send.Bytes()[off:], id)
					for d2 := 0; d2 < dim; d2++ {
						putF64(send.Bytes()[off+8+d2*8:], float64(id)+float64(d2))
					}
					off += slot
				}
				if h != nil {
					done, err := h.Test()
					if err != nil {
						return nil, err
					}
					if !done && rank == 0 {
						inFlight++
					}
				}
			}
			return &stepPrep{route: route, sc: sc, sdispls: sdispls, sTotal: sTotal}, nil
		}

		var cur *stepPrep
		for step := 0; step < steps; step++ {
			if cur == nil {
				if cur, err = prepare(step, nil); err != nil {
					return err
				}
			}
			// Announce counts, then derive the receive displacements.
			if err := counter.Alltoall(csend, crecv, 8); err != nil {
				return err
			}
			rc := make([]int, p)
			for s := 0; s < p; s++ {
				rc[s] = int(getI64(crecv.Bytes()[s*8:]))
			}
			rdispls, rTotal := alltoallx.DisplsFromCounts(rc)
			// Ship exactly the routed tokens.
			if err := shuffler.Alltoallv(send.Slice(0, cur.sTotal), cur.sc, cur.sdispls,
				recv.Slice(0, rTotal), rc, rdispls); err != nil {
				return err
			}
			// "Expert computation": verify and negate every delivered token.
			for src := 0; src < p; src++ {
				for off := rdispls[src]; off < rdispls[src]+rc[src]; off += slot {
					id := getI64(recv.Bytes()[off:])
					if int(id/1_000_000) != src {
						return fmt.Errorf("rank %d: token %d arrived from wrong source %d", rank, id, src)
					}
					putI64(back.Bytes()[off:], id)
					for d2 := 0; d2 < dim; d2++ {
						want := float64(id) + float64(d2)
						if got := getF64(recv.Bytes()[off+8+d2*8:]); got != want {
							return fmt.Errorf("rank %d: token %d payload corrupt", rank, id)
						}
						putF64(back.Bytes()[off+8+d2*8:], -want)
					}
					if rank == 0 {
						totalTokens++
					}
				}
			}
			// Return trip: counts are simply reversed. Pipelined, the next
			// step's routing and packing overlaps it (send is free — the
			// forward exchange completed — and the in-flight return only
			// touches back and home).
			next := (*stepPrep)(nil)
			if pipeline && step+1 < steps {
				h, err := shuffler.Start(back.Slice(0, rTotal), rc, rdispls,
					home.Slice(0, cur.sTotal), cur.sc, cur.sdispls)
				if err != nil {
					return err
				}
				if next, err = prepare(step+1, h); err != nil {
					return err
				}
				if err := h.Wait(); err != nil {
					return err
				}
			} else if err := shuffler.Alltoallv(back.Slice(0, rTotal), rc, rdispls,
				home.Slice(0, cur.sTotal), cur.sc, cur.sdispls); err != nil {
				return err
			}
			// Verify every originated token came home negated.
			for d := 0; d < p; d++ {
				off := cur.sdispls[d]
				for _, id := range cur.route[d] {
					if got := getI64(home.Bytes()[off:]); got != id {
						return fmt.Errorf("rank %d: token %d came home as %d", rank, id, got)
					}
					for d2 := 0; d2 < dim; d2++ {
						if got := getF64(home.Bytes()[off+8+d2*8:]); got != -(float64(id) + float64(d2)) {
							return fmt.Errorf("rank %d: returned token %d corrupt", rank, id)
						}
					}
					off += slot
				}
			}
			cur = next
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	// Rank 0 counted ~1/p of deliveries; scale to all ranks, two trips.
	est := totalTokens * int64(p) * 2
	mode := "exact alltoallv"
	if pipeline {
		mode = "exact alltoallv, pipelined Start/Test/Wait"
	}
	fmt.Printf("MoE shuffle (%s): %d ranks, %d tokens/rank/step, dim %d, %d steps via %s\n",
		mode, p, tokens, dim, steps, algo)
	fmt.Printf("  delivered ~%d token-trips in %.1fms (%.2fM tokens/s), 0 dropped (no capacity limit)\n",
		est, float64(elapsed.Microseconds())/1000, float64(est)/elapsed.Seconds()/1e6)
	if pipeline {
		fmt.Printf("  overlap: %d rank-0 Test polls observed the return trip still in flight during next-step packing\n", inFlight)
	}
	fmt.Println("  verified OK")
}

// runCapacity is the fixed-size framework-style shuffle: a capacity per
// rank pair with headroom, overflow dropped.
func runCapacity(mapping *alltoallx.Mapping, tokens, dim, steps int, algo string) {
	p := mapping.Size()

	// Capacity per (source, expert) pair, with headroom like real MoE
	// capacity factors; overflowing tokens are dropped (counted).
	capacity := (tokens / p) * 2
	if capacity == 0 {
		capacity = 1
	}
	// Wire format per slot: token id (8 bytes) + payload; a negative id
	// marks an empty slot.
	slot := 8 + dim*8
	block := capacity * slot

	var totalTokens, dropped int64
	start := time.Now()
	err := alltoallx.RunLive(alltoallx.LiveConfig{Mapping: mapping}, func(c alltoallx.Comm) error {
		rank := c.Rank()
		a, err := alltoallx.New(algo, c, block, alltoallx.Options{PPL: 2, PPG: 2})
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(int64(rank) + 1))
		send := alltoallx.Alloc(p * block)
		recv := alltoallx.Alloc(p * block)
		back := alltoallx.Alloc(p * block)
		bref := alltoallx.Alloc(p * block)
		for step := 0; step < steps; step++ {
			// Route: token i of this rank goes to expert router(i).
			fill := make([]int, p)
			for i := range send.Bytes() {
				send.Bytes()[i] = 0
			}
			markAllEmpty(send, p, capacity, slot)
			for tok := 0; tok < tokens; tok++ {
				expert := rng.Intn(p)
				if fill[expert] >= capacity {
					if rank == 0 {
						dropped++
					}
					continue
				}
				off := expert*block + fill[expert]*slot
				id := int64(rank)*1_000_000 + int64(step)*10_000 + int64(tok)
				putI64(send.Bytes()[off:], id)
				for d2 := 0; d2 < dim; d2++ {
					putF64(send.Bytes()[off+8+d2*8:], float64(id)+float64(d2))
				}
				fill[expert]++
			}
			if err := a.Alltoall(send, recv, block); err != nil {
				return err
			}
			// "Expert computation": negate payloads of delivered tokens and
			// verify their integrity.
			markAllEmpty(back, p, capacity, slot)
			for src := 0; src < p; src++ {
				for s := 0; s < capacity; s++ {
					off := src*block + s*slot
					id := getI64(recv.Bytes()[off:])
					if id < 0 {
						continue
					}
					if int(id/1_000_000) != src {
						return fmt.Errorf("rank %d: token %d arrived from wrong source %d", rank, id, src)
					}
					for d2 := 0; d2 < dim; d2++ {
						want := float64(id) + float64(d2)
						if got := getF64(recv.Bytes()[off+8+d2*8:]); got != want {
							return fmt.Errorf("rank %d: token %d payload corrupt", rank, id)
						}
						putF64(back.Bytes()[off+8+d2*8:], -want)
					}
					putI64(back.Bytes()[off:], id)
					if rank == 0 {
						totalTokens++
					}
				}
			}
			// Return trip: experts send results home.
			if err := a.Alltoall(back, bref, block); err != nil {
				return err
			}
			// Verify the tokens this rank originated came home negated.
			for ex := 0; ex < p; ex++ {
				for s := 0; s < capacity; s++ {
					off := ex*block + s*slot
					id := getI64(bref.Bytes()[off:])
					if id < 0 {
						continue
					}
					if int(id/1_000_000) != rank {
						return fmt.Errorf("rank %d: foreign token %d returned", rank, id)
					}
					for d2 := 0; d2 < dim; d2++ {
						if got := getF64(bref.Bytes()[off+8+d2*8:]); got != -(float64(id) + float64(d2)) {
							return fmt.Errorf("rank %d: returned token %d corrupt", rank, id)
						}
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	// totalTokens was counted by rank 0 only; scale to all ranks for the
	// throughput estimate (routing is uniform).
	est := totalTokens * int64(p) * 2 // two trips
	fmt.Printf("MoE shuffle (fixed alltoall): %d ranks, %d tokens/rank/step, dim %d, %d steps via %s\n",
		p, tokens, dim, steps, algo)
	fmt.Printf("  delivered ~%d token-trips in %.1fms (%.2fM tokens/s), %d dropped at rank 0 (capacity %d)\n",
		est, float64(elapsed.Microseconds())/1000,
		float64(est)/elapsed.Seconds()/1e6, dropped, capacity)
	fmt.Println("  verified OK")
}

func markAllEmpty(b alltoallx.Buffer, p, capacity, slot int) {
	for d := 0; d < p; d++ {
		for s := 0; s < capacity; s++ {
			putI64(b.Bytes()[(d*capacity+s)*slot:], -1)
		}
	}
}

func putI64(b []byte, v int64) {
	u := uint64(v)
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * i))
	}
}

func getI64(b []byte) int64 {
	var u uint64
	for i := 0; i < 8; i++ {
		u |= uint64(b[i]) << (8 * i)
	}
	return int64(u)
}

func putF64(b []byte, f float64) { putI64(b, int64(math.Float64bits(f))) }

func getF64(b []byte) float64 { return math.Float64frombits(uint64(getI64(b))) }
