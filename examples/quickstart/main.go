// Quickstart: run a node-aware all-to-all among live in-process ranks with
// real data, verify every byte, and print the phase breakdown.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"alltoallx"
)

func main() {
	// A little "cluster": 2 nodes x 8 ranks, each node 2 sockets x 2 NUMA
	// domains x 2 cores — small, but every locality level exists.
	spec := alltoallx.NodeSpec{Sockets: 2, NumaPerSocket: 2, CoresPerNuma: 2}
	mapping, err := alltoallx.NewMapping(spec, 2, 8)
	if err != nil {
		log.Fatal(err)
	}
	const block = 64 // bytes exchanged per rank pair

	err = alltoallx.RunLive(alltoallx.LiveConfig{Mapping: mapping}, func(c alltoallx.Comm) error {
		p, rank := c.Size(), c.Rank()

		// Build the persistent collective once (communicator splits happen
		// here), then exchange as often as needed.
		a, err := alltoallx.New("node-aware", c, block, alltoallx.Options{})
		if err != nil {
			return err
		}

		// Send block d carries this rank's data for rank d.
		send := alltoallx.Alloc(p * block)
		recv := alltoallx.Alloc(p * block)
		for d := 0; d < p; d++ {
			for i := 0; i < block; i++ {
				send.Bytes()[d*block+i] = byte(rank ^ d ^ i)
			}
		}
		if err := a.Alltoall(send, recv, block); err != nil {
			return err
		}

		// recv block s must now hold what rank s sent us.
		for s := 0; s < p; s++ {
			for i := 0; i < block; i++ {
				if got, want := recv.Bytes()[s*block+i], byte(s^rank^i); got != want {
					return fmt.Errorf("rank %d: block %d byte %d: got %#x, want %#x", rank, s, i, got, want)
				}
			}
		}
		if rank == 0 {
			fmt.Printf("node-aware all-to-all verified on %d ranks (%d B per pair)\n", p, block)
			fmt.Printf("phases on rank 0: %v\n", a.Phases())
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
