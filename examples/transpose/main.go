// Distributed dense matrix transposition — one of the paper's motivating
// all-to-all workloads. An R x C float64 matrix is row-distributed across
// the ranks; the transpose redistributes it as a C x R matrix with one
// all-to-all exchange plus local packing. Every algorithm of the family is
// run and verified, with wall-clock times compared.
//
//	go run ./examples/transpose [-rows 512] [-cols 256] [-ranks 16]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"time"

	"alltoallx"
)

func main() {
	var (
		rows  = flag.Int("rows", 512, "matrix rows (divisible by ranks)")
		cols  = flag.Int("cols", 256, "matrix columns (divisible by ranks)")
		ranks = flag.Int("ranks", 16, "rank count")
	)
	flag.Parse()
	if *rows%*ranks != 0 || *cols%*ranks != 0 {
		log.Fatalf("ranks=%d must divide rows=%d and cols=%d", *ranks, *rows, *cols)
	}

	spec := alltoallx.NodeSpec{Sockets: 2, NumaPerSocket: 2, CoresPerNuma: 2}
	nodes := *ranks / spec.CoresPerNode()
	if nodes == 0 {
		nodes = 1
	}
	mapping, err := alltoallx.NewMapping(spec, nodes, *ranks/nodes)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("transposing %dx%d float64 matrix on %d ranks\n", *rows, *cols, *ranks)
	for _, algo := range []string{"pairwise", "nonblocking", "bruck", "hierarchical", "node-aware", "locality-aware", "multileader-node-aware"} {
		elapsed, err := runOnce(mapping, algo, *rows, *cols)
		if err != nil {
			log.Fatalf("%s: %v", algo, err)
		}
		fmt.Printf("  %-24s %8.3f ms  verified\n", algo, float64(elapsed.Microseconds())/1000)
	}
}

// element gives matrix entry (r, c) a unique value so misplacement is
// detectable.
func element(r, c int) float64 { return float64(r)*1e4 + float64(c) }

func runOnce(mapping *alltoallx.Mapping, algo string, rows, cols int) (time.Duration, error) {
	p := mapping.Size()
	myRows := rows / p
	tRows := cols / p // transposed rows per rank
	block := myRows * tRows * 8
	var elapsed time.Duration
	err := alltoallx.RunLive(alltoallx.LiveConfig{Mapping: mapping}, func(c alltoallx.Comm) error {
		rank := c.Rank()
		a, err := alltoallx.New(algo, c, block, alltoallx.Options{PPL: 2, PPG: 2})
		if err != nil {
			return err
		}
		// Local slab: rows [rank*myRows, ...).
		local := make([]float64, myRows*cols)
		for r := 0; r < myRows; r++ {
			for cc := 0; cc < cols; cc++ {
				local[r*cols+cc] = element(rank*myRows+r, cc)
			}
		}
		send := alltoallx.Alloc(p * block)
		recv := alltoallx.Alloc(p * block)
		if err := c.Barrier(); err != nil {
			return err
		}
		t0 := time.Now()
		// Pack: destination d owns transposed rows = original columns
		// [d*tRows, (d+1)*tRows).
		for d := 0; d < p; d++ {
			off := d * block
			for r := 0; r < myRows; r++ {
				for cc := 0; cc < tRows; cc++ {
					putF64(send.Bytes()[off+(r*tRows+cc)*8:], local[r*cols+d*tRows+cc])
				}
			}
		}
		if err := a.Alltoall(send, recv, block); err != nil {
			return err
		}
		// Unpack into my transposed slab: rows [rank*tRows, ...), length
		// `rows` each.
		out := make([]float64, tRows*rows)
		for s := 0; s < p; s++ {
			off := s * block
			for r := 0; r < myRows; r++ {
				for cc := 0; cc < tRows; cc++ {
					out[cc*rows+s*myRows+r] = getF64(recv.Bytes()[off+(r*tRows+cc)*8:])
				}
			}
		}
		if rank == 0 {
			elapsed = time.Since(t0)
		}
		// Verify: transposed entry (tr, tc) == element(tc, tr).
		for tr := 0; tr < tRows; tr++ {
			for tc := 0; tc < rows; tc++ {
				want := element(tc, rank*tRows+tr)
				if got := out[tr*rows+tc]; got != want {
					return fmt.Errorf("rank %d: T(%d,%d) = %v, want %v", rank, rank*tRows+tr, tc, got, want)
				}
			}
		}
		return nil
	})
	return elapsed, err
}

func putF64(b []byte, f float64) {
	u := math.Float64bits(f)
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * i))
	}
}

func getF64(b []byte) float64 {
	var u uint64
	for i := 0; i < 8; i++ {
		u |= uint64(b[i]) << (8 * i)
	}
	return math.Float64frombits(u)
}
