module alltoallx

go 1.23
