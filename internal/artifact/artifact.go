// Package artifact holds the shared persistence discipline of the
// repository's JSON artifacts — autotune tables, communication schedules,
// and bench baselines: every Save is atomic (temp file + rename, so a
// concurrent reader never sees a torn file) and world-readable (artifacts
// are produced once and read by any job, so CreateTemp's restrictive 0600
// must not survive the rename).
package artifact

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Save atomically writes the output of encode to path. what names the
// artifact in error messages (e.g. "autotune: saving table").
func Save(path, what string, encode func(io.Writer) error) error {
	f, err := os.CreateTemp(filepath.Dir(path), ".artifact-*")
	if err != nil {
		return fmt.Errorf("%s: %w", what, err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		os.Remove(tmp)
		return fmt.Errorf("%s: %w", what, err)
	}
	if err := encode(f); err != nil {
		f.Close()
		return fail(err)
	}
	if err := f.Close(); err != nil {
		return fail(err)
	}
	if err := os.Chmod(tmp, 0o644); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fail(err)
	}
	return nil
}
