// Package autotune implements the paper's future-work goal (Section 5) of
// dynamically selecting the optimal all-to-all algorithm "for a given
// computer, system MPI, process count, and data size". Selection is
// model-driven: candidates are evaluated on the discrete-event machine
// model (no cluster time needed), and the per-size winners are baked into
// a persistent dispatch Table. The full loop is
//
//	BuildTable -> Table.Save            (offline, cmd/a2atune -o)
//	Load -> Table.Options -> core.New("tuned", ...)   (run time)
//
// so a machine is tuned once and every subsequent run dispatches each
// message size to its precomputed winner.
package autotune

import (
	"fmt"
	"sort"

	"alltoallx/internal/bench"
	"alltoallx/internal/core"
	"alltoallx/internal/netmodel"
)

// Candidate is one algorithm configuration under consideration.
type Candidate struct {
	// Name labels the candidate in reports (defaults to Algo).
	Name string
	// Algo and Opts are passed to core.New.
	Algo string
	Opts core.Options
}

// Label returns the candidate's display name: Name, or Algo when unnamed.
// It is also the Entry.Name a tabled winner is recorded under.
func (c Candidate) Label() string {
	if c.Name != "" {
		return c.Name
	}
	return c.Algo
}

// Choice is a measured candidate.
type Choice struct {
	Candidate
	// Seconds is the predicted collective time on the machine model.
	Seconds float64
}

// schedMaxRanks caps the world size at which schedule-backed candidates
// join the default pool. Rank-sliced compilation (sched.GenerateRank via
// core's sliced construction path) builds each rank's program in
// O(slice), so the old 128-rank ceiling — a relic of compiling and
// verifying the assembled O(p^2) schedule on every rank — is gone; the
// remaining bound is the simulator's cost of actually *executing* a
// candidate during the sweep. Torus and hypercube stay affordable to
// 1024 ranks and beyond; beyond the cap they remain constructible by
// name.
const schedMaxRanks = 1024

// ringMaxRanks separately caps the ring schedule: every block rides
// Theta(p) hops, so executing one exchange costs Theta(p^3) block copies
// — at 1024 ranks that is ~10^9 staged copies per sweep point, which
// would dwarf the rest of the sweep combined.
const ringMaxRanks = 256

// vSchedMaxRanks mirrors core's ceiling for the schedule-backed
// alltoallv, which compiles the assembled O(p^2) schedule per count
// matrix and is rejected at construction above it.
const vSchedMaxRanks = 128

// DefaultCandidates returns the tuning pool for an operation at a
// nodes x ppn world, restricted to divisors of ppn. For OpAlltoall it is
// the paper's algorithm family with the leader/group sizes it evaluates,
// plus the generated direct-connect schedules (sched:torus, sched:ring up
// to ringMaxRanks, and sched:hypercube when the rank count is a power of
// two) on worlds of at most schedMaxRanks ranks; for OpAlltoallv it is
// the flat baselines plus the leader-aggregating variants.
func DefaultCandidates(op core.Op, nodes, ppn int) []Candidate {
	if op.Norm() == core.OpAlltoallv {
		cands := []Candidate{
			{Name: "pairwise", Algo: "pairwise"},
			{Name: "nonblocking", Algo: "nonblocking"},
			{Name: "node-aware", Algo: "node-aware"},
		}
		for _, q := range []int{4, 8, 16} {
			// q == ppn is valid (one whole-node group, the node-aware
			// degenerate case) and must be swept exactly as the OpAlltoall
			// branch sweeps it: a strict bound here silently dropped the
			// locality-aware/PPG=ppn configuration from every alltoallv
			// sweep.
			if q <= ppn && ppn%q == 0 {
				cands = append(cands,
					Candidate{Name: fmt.Sprintf("locality-aware/%dppg", q), Algo: "locality-aware", Opts: core.Options{PPG: q}},
				)
			}
		}
		// The schedule-backed alltoallv compiles and verifies the
		// assembled schedule per count matrix, so it joins the pool only
		// up to its own whole-world ceiling (vSchedMaxRanks in core).
		if p := nodes * ppn; p > 1 && p <= vSchedMaxRanks {
			cands = append(cands, Candidate{Name: "sched:pairwise", Algo: "sched:pairwise"})
		}
		return cands
	}
	cands := []Candidate{
		{Name: "bruck", Algo: "bruck"},
		{Name: "hierarchical", Algo: "hierarchical"},
		{Name: "node-aware", Algo: "node-aware"},
	}
	for _, q := range []int{4, 8, 16} {
		if q <= ppn && ppn%q == 0 {
			cands = append(cands,
				Candidate{Name: fmt.Sprintf("multileader/%dppl", q), Algo: "multileader", Opts: core.Options{PPL: q}},
				Candidate{Name: fmt.Sprintf("locality-aware/%dppg", q), Algo: "locality-aware", Opts: core.Options{PPG: q}},
				Candidate{Name: fmt.Sprintf("multileader-node-aware/%dppl", q), Algo: "multileader-node-aware", Opts: core.Options{PPL: q}},
			)
		}
	}
	if p := nodes * ppn; p > 1 && p <= schedMaxRanks {
		if p <= ringMaxRanks {
			cands = append(cands, Candidate{Name: "sched:ring", Algo: "sched:ring"})
		}
		cands = append(cands, Candidate{Name: "sched:torus", Algo: "sched:torus"})
		if p&(p-1) == 0 {
			cands = append(cands, Candidate{Name: "sched:hypercube", Algo: "sched:hypercube"})
		}
	}
	return cands
}

// measure simulates one (candidate, size) point — the unit both sweep
// modes count when they report measured-vs-pruned totals.
func measure(m netmodel.Params, op core.Op, nodes, ppn, block int, cand Candidate, runs int, seed int64) (float64, error) {
	pt, err := bench.Measure(bench.Config{
		Machine: m, Nodes: nodes, PPN: ppn, Op: op,
		Algo: cand.Algo, Opts: cand.Opts, Block: block,
		Runs: runs, BaseSeed: seed,
	})
	if err != nil {
		return 0, fmt.Errorf("autotune: candidate %s: %w", cand.Label(), err)
	}
	return pt.Seconds, nil
}

// Select evaluates every candidate for one (operation, configuration) and
// returns the winner plus the full ranking (fastest first). For
// OpAlltoallv, block is the mean payload per peer of the benchmark's
// skewed count matrix. progress, if non-nil, receives one line per
// completed candidate (1024-rank sweeps spend minutes per point; silence
// reads as a hang).
func Select(m netmodel.Params, op core.Op, nodes, ppn, block int, cands []Candidate, runs int, seed int64, progress func(string)) (Choice, []Choice, error) {
	if len(cands) == 0 {
		return Choice{}, nil, fmt.Errorf("autotune: no candidates")
	}
	ranking := make([]Choice, 0, len(cands))
	for i, cand := range cands {
		secs, err := measure(m, op, nodes, ppn, block, cand, runs, seed)
		if err != nil {
			return Choice{}, nil, err
		}
		if progress != nil {
			progress(fmt.Sprintf("%6d B [%2d/%d] %-30s %.4e s", block, i+1, len(cands), cand.Label(), secs))
		}
		ranking = append(ranking, Choice{Candidate: cand, Seconds: secs})
	}
	sort.SliceStable(ranking, func(i, j int) bool { return ranking[i].Seconds < ranking[j].Seconds })
	return ranking[0], ranking, nil
}

// sortedSizes validates and normalizes a sweep's size grid.
func sortedSizes(sizes []int) ([]int, error) {
	if len(sizes) == 0 {
		return nil, fmt.Errorf("autotune: no sizes")
	}
	sorted := append([]int(nil), sizes...)
	sort.Ints(sorted)
	for i, s := range sorted {
		if s <= 0 || (i > 0 && s == sorted[i-1]) {
			return nil, fmt.Errorf("autotune: sizes must be positive and distinct, got %v", sizes)
		}
	}
	return sorted, nil
}

// BuildTable selects the winner at every size by exhaustive measurement
// and assembles the results into a persistable dispatch Table for the
// (machine, nodes, ppn, op) world. progress, if non-nil, receives one
// line per measured candidate. For a cost-model-pruned sweep that
// measures a fraction of the points, see BuildTablePredictive.
func BuildTable(m netmodel.Params, op core.Op, nodes, ppn int, sizes []int, cands []Candidate, runs int, seed int64, progress func(string)) (*Table, error) {
	sorted, err := sortedSizes(sizes)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Version: TableVersion, Machine: m.Name, Nodes: nodes, PPN: ppn, Op: op.Norm(),
		Provenance: &Provenance{Source: m.Name, Mode: "sweep"},
	}
	for _, s := range sorted {
		best, _, err := Select(m, op, nodes, ppn, s, cands, runs, seed, progress)
		if err != nil {
			return nil, err
		}
		t.Entries = append(t.Entries, EntryFor(s, best))
	}
	return t, nil
}
