package autotune

import (
	"testing"

	"alltoallx/internal/core"
	"alltoallx/internal/netmodel"
	"alltoallx/internal/topo"
)

// tinyDane shrinks the node so selection tests stay fast.
func tinyDane() netmodel.Params {
	m := netmodel.Dane()
	m.Node = topo.Spec{Sockets: 2, NumaPerSocket: 2, CoresPerNuma: 2}
	return m
}

func TestDefaultCandidates(t *testing.T) {
	t.Parallel()
	// 32 x 112 = 3584 ranks: far beyond the schedule-candidate cap, so
	// only the paper family appears.
	cands := DefaultCandidates(core.OpAlltoall, 32, 112)
	if len(cands) != 3+3*3 {
		t.Fatalf("candidate count = %d", len(cands))
	}
	cands8 := DefaultCandidates(core.OpAlltoall, 2, 8)
	for _, c := range cands8 {
		if c.Opts.PPL > 8 || c.Opts.PPG > 8 {
			t.Errorf("candidate %s exceeds ppn", c.Label())
		}
	}
	// 2 x 8 = 16 ranks: schedule candidates join, including hypercube
	// (power of two).
	has := func(cands []Candidate, name string) bool {
		for _, c := range cands {
			if c.Name == name {
				return true
			}
		}
		return false
	}
	for _, want := range []string{"sched:ring", "sched:torus", "sched:hypercube"} {
		if !has(cands8, want) {
			t.Errorf("16-rank pool missing %s", want)
		}
	}
	// 3 x 4 = 12 ranks: not a power of two, no hypercube.
	cands12 := DefaultCandidates(core.OpAlltoall, 3, 4)
	if !has(cands12, "sched:ring") || has(cands12, "sched:hypercube") {
		t.Errorf("12-rank pool wrong schedule gating: %v", cands12)
	}
	// The v-operation pool carries the count-parameterized schedule
	// candidate — never the fixed-shape families, which compile
	// fixed-size exchanges.
	vcands := DefaultCandidates(core.OpAlltoallv, 2, 8)
	if !has(vcands, "sched:pairwise") {
		t.Errorf("16-rank alltoallv pool missing sched:pairwise: %v", vcands)
	}
	for _, c := range vcands {
		if c.Algo == "sched:ring" || c.Algo == "sched:torus" || c.Algo == "sched:hypercube" {
			t.Errorf("alltoallv pool contains fixed-shape schedule candidate %s", c.Name)
		}
	}
	// Above the whole-world compile ceiling the v-schedule drops out.
	if big := DefaultCandidates(core.OpAlltoallv, 8, 32); has(big, "sched:pairwise") {
		t.Errorf("256-rank alltoallv pool contains sched:pairwise beyond vSchedMaxRanks")
	}
}

// TestCandidatePoolGroupSizeParity pins the satellite bugfix: both
// operations must gate leader/group sizes with the same q <= ppn bound.
// The OpAlltoallv branch used q < ppn, silently dropping the valid
// locality-aware/PPG=ppn configuration (the whole-node-group degenerate
// case exercised by core's census tests) from every alltoallv sweep.
func TestCandidatePoolGroupSizeParity(t *testing.T) {
	t.Parallel()
	groupSizes := func(cands []Candidate) map[int]bool {
		out := make(map[int]bool)
		for _, c := range cands {
			if c.Algo == "locality-aware" {
				out[c.Opts.PPG] = true
			}
		}
		return out
	}
	for _, ppn := range []int{4, 8, 16} {
		a := groupSizes(DefaultCandidates(core.OpAlltoall, 2, ppn))
		v := groupSizes(DefaultCandidates(core.OpAlltoallv, 2, ppn))
		if !a[ppn] {
			t.Errorf("ppn=%d: alltoall pool missing locality-aware/PPG=ppn", ppn)
		}
		if !v[ppn] {
			t.Errorf("ppn=%d: alltoallv pool missing locality-aware/PPG=ppn (the q < ppn bound bug)", ppn)
		}
		if len(a) != len(v) {
			t.Errorf("ppn=%d: group-size sets differ between ops: alltoall %v, alltoallv %v", ppn, a, v)
		}
		for q := range a {
			if !v[q] {
				t.Errorf("ppn=%d: group size %d swept for alltoall but not alltoallv", ppn, q)
			}
		}
	}
}

// TestCandidatePoolScheduleCaps pins the raised schedule-candidate
// ceiling: torus/hypercube join up to schedMaxRanks (1024) ranks — far
// past the old 128-rank cap — while the Theta(p^3)-work ring stops at
// ringMaxRanks.
func TestCandidatePoolScheduleCaps(t *testing.T) {
	t.Parallel()
	has := func(cands []Candidate, name string) bool {
		for _, c := range cands {
			if c.Name == name {
				return true
			}
		}
		return false
	}
	// 256 ranks: all three schedule families (power of two).
	c256 := DefaultCandidates(core.OpAlltoall, 8, 32)
	for _, want := range []string{"sched:ring", "sched:torus", "sched:hypercube"} {
		if !has(c256, want) {
			t.Errorf("256-rank pool missing %s", want)
		}
	}
	// 512 ranks: past the old 128-rank cap, torus and hypercube sweep;
	// ring is excluded by its own work bound.
	c512 := DefaultCandidates(core.OpAlltoall, 16, 32)
	if !has(c512, "sched:torus") || !has(c512, "sched:hypercube") {
		t.Errorf("512-rank pool missing schedule candidates (old 128-rank cap resurrected?): %v", c512)
	}
	if has(c512, "sched:ring") {
		t.Errorf("512-rank pool contains sched:ring despite its Theta(p^3) execution cost")
	}
	// 1024 ranks: still in; 2048: out.
	if c := DefaultCandidates(core.OpAlltoall, 32, 32); !has(c, "sched:torus") {
		t.Errorf("1024-rank pool missing sched:torus (schedMaxRanks must be >= 1024)")
	}
	if c := DefaultCandidates(core.OpAlltoall, 64, 32); has(c, "sched:torus") {
		t.Errorf("2048-rank pool contains schedule candidates beyond schedMaxRanks")
	}
}

// TestSelectSweepsSchedules: a selection over schedule-backed candidates
// runs end-to-end on the machine model and produces a valid table entry.
func TestSelectSweepsSchedules(t *testing.T) {
	t.Parallel()
	m := tinyDane()
	cands := []Candidate{
		{Name: "bruck", Algo: "bruck"},
		{Name: "sched:ring", Algo: "sched:ring"},
		{Name: "sched:hypercube", Algo: "sched:hypercube"},
	}
	best, ranking, err := Select(m, core.OpAlltoall, 2, 8, 64, cands, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranking) != len(cands) {
		t.Fatalf("ranking size %d", len(ranking))
	}
	tbl := &Table{Version: TableVersion, Machine: m.Name, Nodes: 2, PPN: 8,
		Entries: []Entry{EntryFor(64, best)}}
	if err := tbl.Validate(); err != nil {
		t.Fatalf("table with schedule winner invalid: %v", err)
	}
}

func TestSelectRanksCandidates(t *testing.T) {
	t.Parallel()
	m := tinyDane()
	cands := []Candidate{
		{Name: "node-aware", Algo: "node-aware"},
		{Name: "hierarchical", Algo: "hierarchical"},
		{Name: "mlna", Algo: "multileader-node-aware", Opts: core.Options{PPL: 2}},
	}
	best, ranking, err := Select(m, core.OpAlltoall, 4, 8, 512, cands, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranking) != len(cands) {
		t.Fatalf("ranking size %d", len(ranking))
	}
	for i := 1; i < len(ranking); i++ {
		if ranking[i].Seconds < ranking[i-1].Seconds {
			t.Errorf("ranking not sorted: %v", ranking)
		}
	}
	if best.Seconds != ranking[0].Seconds {
		t.Errorf("best %v != ranking[0] %v", best, ranking[0])
	}
	if best.Seconds <= 0 {
		t.Errorf("nonpositive prediction %g", best.Seconds)
	}
}

func TestSelectErrors(t *testing.T) {
	t.Parallel()
	m := tinyDane()
	if _, _, err := Select(m, core.OpAlltoall, 2, 8, 64, nil, 1, 1, nil); err == nil {
		t.Error("empty candidates accepted")
	}
	bad := []Candidate{{Algo: "no-such"}}
	if _, _, err := Select(m, core.OpAlltoall, 2, 8, 64, bad, 1, 1, nil); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestBuildTableAndPick(t *testing.T) {
	t.Parallel()
	m := tinyDane()
	cands := []Candidate{
		{Name: "node-aware", Algo: "node-aware"},
		{Name: "mlna", Algo: "multileader-node-aware", Opts: core.Options{PPL: 2}},
	}
	tbl, err := BuildTable(m, core.OpAlltoall, 4, 8, []int{1024, 16}, cands, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Validate(); err != nil {
		t.Fatalf("built table invalid: %v", err)
	}
	if len(tbl.Entries) != 2 || tbl.Entries[0].Size != 16 || tbl.Entries[1].Size != 1024 {
		t.Fatalf("sizes not sorted: %+v", tbl.Entries)
	}
	// Pick boundaries: below, between, above.
	if got := tbl.Pick(4); got.Name != tbl.Entries[0].Name {
		t.Errorf("Pick(4) = %v", got.Name)
	}
	if got := tbl.Pick(16); got.Name != tbl.Entries[0].Name {
		t.Errorf("Pick(16) = %v", got.Name)
	}
	if got := tbl.Pick(500); got.Name != tbl.Entries[1].Name {
		t.Errorf("Pick(500) = %v", got.Name)
	}
	if got := tbl.Pick(1 << 20); got.Name != tbl.Entries[1].Name {
		t.Errorf("Pick(big) = %v", got.Name)
	}
	if _, err := BuildTable(m, core.OpAlltoall, 4, 8, nil, cands, 1, 1, nil); err == nil {
		t.Error("empty sizes accepted")
	}
	if _, err := BuildTable(m, core.OpAlltoall, 4, 8, []int{16, 16}, cands, 1, 1, nil); err == nil {
		t.Error("duplicate sizes accepted")
	}
}
