package autotune

import (
	"fmt"
	"math"

	"alltoallx/internal/core"
	"alltoallx/internal/costmodel"
	"alltoallx/internal/netmodel"
)

// Predictive pruning: instead of measuring every (candidate, size) point,
// the sweep measures a small probe grid, fits per-candidate cost models
// (log-log regression, internal/costmodel), and lets the models decide
// which points deserve measurement: every candidate near a predicted
// winner crossover, only the predicted front-runners elsewhere. The
// pruned points are the sweep's savings; the winners must match the
// exhaustive sweep's (asserted by TestPredictiveMatchesFullSweep on the
// committed fixture).

const (
	// predictProbes is the probe-grid size: enough points to see the
	// latency-to-bandwidth bend of every candidate, few enough that
	// probing stays a small fraction of the exhaustive sweep.
	predictProbes = 3
	// predictMargin keeps a candidate in a size's measured shortlist when
	// its predicted time is within this factor of the predicted best —
	// the model only prunes candidates it predicts to lose clearly.
	predictMargin = 1.2
)

// Predictive is a completed cost-model-pruned sweep.
type Predictive struct {
	// Table is the assembled dispatch table (same shape a full sweep
	// builds), with predictive provenance.
	Table *Table
	// Models is the fitted per-candidate cost-model set, a persistable
	// artifact (a2atune -models).
	Models *costmodel.Set
	// Measured counts the (candidate, size) points actually simulated;
	// Full is what the exhaustive sweep would have simulated. Pruned()
	// is the difference.
	Measured int
	Full     int
	// Dense lists the sizes measured with the complete candidate pool:
	// the probe grid, plus any size whose shortlist widened to the whole
	// pool (every candidate predicted within margin — a contested
	// crossover neighborhood).
	Dense []int
}

// Pruned returns the number of measurements the models saved.
func (p *Predictive) Pruned() int { return p.Full - p.Measured }

// probeIndices spreads k probe indices evenly over n grid positions,
// always including both endpoints (extrapolating a power law outside the
// probed range would let model error grow unbounded exactly where blocks
// are largest). k >= n degenerates to every index.
func probeIndices(n, k int) []int {
	if k >= n {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	idx := make([]int, 0, k)
	for i := 0; i < k; i++ {
		j := (i*(n-1) + (k-1)/2) / (k - 1)
		if len(idx) == 0 || idx[len(idx)-1] != j {
			idx = append(idx, j)
		}
	}
	return idx
}

// BuildTablePredictive assembles a dispatch table from a cost-model-pruned
// sweep: probe, fit, then measure only where the models say the winner is
// (or may be) decided. It returns the table, the fitted models, and the
// measured-vs-pruned accounting. progress, if non-nil, receives one line
// per measured candidate and one per pruning decision.
func BuildTablePredictive(m netmodel.Params, op core.Op, nodes, ppn int, sizes []int, cands []Candidate, runs int, seed int64, progress func(string)) (*Predictive, error) {
	sorted, err := sortedSizes(sizes)
	if err != nil {
		return nil, err
	}
	if len(sorted) < 2 {
		return nil, fmt.Errorf("autotune: predictive sweep needs at least 2 sizes to fit models (got %d); use the full sweep", len(sorted))
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("autotune: no candidates")
	}

	// secs[si][ci] is the measured time, NaN while unmeasured.
	secs := make([][]float64, len(sorted))
	for si := range secs {
		secs[si] = make([]float64, len(cands))
		for ci := range secs[si] {
			secs[si][ci] = math.NaN()
		}
	}
	measured := 0
	measureAt := func(si, ci int) error {
		if !math.IsNaN(secs[si][ci]) {
			return nil
		}
		s, err := measure(m, op, nodes, ppn, sorted[si], cands[ci], runs, seed)
		if err != nil {
			return err
		}
		secs[si][ci] = s
		measured++
		if progress != nil {
			progress(fmt.Sprintf("%6d B [measure] %-30s %.4e s", sorted[si], cands[ci].Label(), s))
		}
		return nil
	}

	// 1. Probe: the full pool at a few spread sizes.
	probes := probeIndices(len(sorted), predictProbes)
	isProbe := make([]bool, len(sorted))
	probeSizes := make([]int, len(probes))
	for i, si := range probes {
		isProbe[si] = true
		probeSizes[i] = sorted[si]
		for ci := range cands {
			if err := measureAt(si, ci); err != nil {
				return nil, err
			}
		}
	}

	// 2. Fit one global model per candidate over the probe grid. The
	// global fit carries the headline slope/intercept/R²; prediction for
	// pruning interpolates between bracketing probes (a local two-point
	// log-log fit), which tracks the latency-to-bandwidth bend a single
	// line cannot.
	set := &costmodel.Set{
		Version: costmodel.SetVersion, Machine: m.Name, Op: string(op.Norm()),
		Nodes: nodes, PPN: ppn, Runs: runs, Seed: seed, ProbeSizes: probeSizes,
	}
	for ci, cand := range cands {
		xs := make([]float64, len(probes))
		ys := make([]float64, len(probes))
		for i, si := range probes {
			xs[i], ys[i] = float64(sorted[si]), secs[si][ci]
		}
		fit, err := costmodel.FitPoints(xs, ys)
		if err != nil {
			return nil, fmt.Errorf("autotune: fitting %s: %w", cand.Label(), err)
		}
		set.Models = append(set.Models, costmodel.Model{Name: cand.Label(), Fit: fit})
	}

	// predict interpolates candidate ci's time at size index si from the
	// bracketing probes (exact at probes).
	predict := func(si, ci int) float64 {
		if isProbe[si] {
			return secs[si][ci]
		}
		// Bracket si between its nearest probes on each side (probes
		// include both grid endpoints, so both always exist).
		lo, hi := probes[0], probes[len(probes)-1]
		for _, p := range probes {
			if p < si {
				lo = p
			}
			if p > si && p < hi {
				hi = p
			}
		}
		seg, err := costmodel.FitPoints(
			[]float64{float64(sorted[lo]), float64(sorted[hi])},
			[]float64{secs[lo][ci], secs[hi][ci]})
		if err != nil {
			// Bracketing probes are measured and distinct; a failed local
			// fit means a non-positive timing, which Measure never returns.
			return math.Inf(1)
		}
		return seg.Predict(float64(sorted[si]))
	}

	// 3. Measure the shortlist at every remaining size: the candidates
	// whose predicted time sits within predictMargin of the predicted
	// best. Near a crossover the contenders' predictions are nearly equal,
	// so they all land inside the margin and the neighborhood is measured
	// densely — the densification the models exist to target — while far
	// from any crossover the clear predicted winner is often alone on the
	// shortlist. The winner at every size is the measured minimum.
	t := &Table{
		Version: TableVersion, Machine: m.Name, Nodes: nodes, PPN: ppn, Op: op.Norm(),
		Provenance: &Provenance{Source: m.Name, Mode: "predictive", ProbeSizes: probeSizes},
	}
	var denseSizes []int
	for si, s := range sorted {
		if !isProbe[si] {
			bound := math.Inf(1)
			for ci := range cands {
				if p := predict(si, ci); p < bound {
					bound = p
				}
			}
			bound *= predictMargin
			pruned := 0
			for ci := range cands {
				if predict(si, ci) <= bound {
					if err := measureAt(si, ci); err != nil {
						return nil, err
					}
				} else {
					pruned++
				}
			}
			if progress != nil && pruned > 0 {
				progress(fmt.Sprintf("%6d B [prune]   %d of %d candidates predicted out (margin %.2fx)",
					s, pruned, len(cands), predictMargin))
			}
		}
		full := true
		best, bestT := -1, math.Inf(1)
		for ci := range cands {
			v := secs[si][ci]
			if math.IsNaN(v) {
				full = false
				continue
			}
			if v < bestT {
				best, bestT = ci, v
			}
		}
		if full {
			denseSizes = append(denseSizes, s)
		}
		t.Entries = append(t.Entries, EntryFor(s, Choice{Candidate: cands[best], Seconds: bestT}))
	}
	t.Provenance.ModelHash = set.Hash()
	return &Predictive{
		Table: t, Models: set,
		Measured: measured, Full: len(cands) * len(sorted),
		Dense: denseSizes,
	}, nil
}
