package autotune

import (
	"path/filepath"
	"testing"

	"alltoallx/internal/core"
	"alltoallx/internal/costmodel"
)

// TestPredictiveMatchesFullSweep is the tentpole acceptance criterion: on
// the committed fixture (Dane, 4 nodes x 8 ppn, doubling grid 4..64 KiB)
// the predictive sweep must pick the same winner at every size as the
// exhaustive sweep while running at least 60% fewer simulations.
func TestPredictiveMatchesFullSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps the full candidate pool")
	}
	m := tinyDane()
	const nodes, ppn, runs, seed = 4, 8, 1, 1
	sizes := SizeGrid(4, 65536)
	cands := DefaultCandidates(core.OpAlltoall, nodes, ppn)

	full, err := BuildTable(m, core.OpAlltoall, nodes, ppn, sizes, cands, runs, seed, nil)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := BuildTablePredictive(m, core.OpAlltoall, nodes, ppn, sizes, cands, runs, seed, nil)
	if err != nil {
		t.Fatal(err)
	}

	if len(pred.Table.Entries) != len(full.Entries) {
		t.Fatalf("predictive table has %d entries, full sweep %d", len(pred.Table.Entries), len(full.Entries))
	}
	for i, e := range full.Entries {
		if pe := pred.Table.Entries[i]; pe.Name != e.Name || pe.Size != e.Size {
			t.Errorf("size %d B: predictive picked %s, full sweep %s", e.Size, pe.Name, e.Name)
		}
	}

	if pred.Full != len(cands)*len(sizes) {
		t.Errorf("Full = %d, want %d", pred.Full, len(cands)*len(sizes))
	}
	if limit := (pred.Full * 40) / 100; pred.Measured > limit {
		t.Errorf("predictive sweep measured %d of %d points; acceptance requires <= %d (>= 60%% pruned)",
			pred.Measured, pred.Full, limit)
	}
	t.Logf("measured %d of %d points (%d pruned), dense sizes %v",
		pred.Measured, pred.Full, pred.Pruned(), pred.Dense)

	// The provenance block ties the table to the models that pruned it.
	prov := pred.Table.Provenance
	if prov == nil || prov.Mode != "predictive" || prov.ModelHash != pred.Models.Hash() {
		t.Fatalf("predictive provenance %+v does not reference model hash %s", prov, pred.Models.Hash())
	}
	if len(prov.ProbeSizes) != len(pred.Models.ProbeSizes) {
		t.Errorf("provenance probe grid %v vs model set %v", prov.ProbeSizes, pred.Models.ProbeSizes)
	}

	// Both artifacts round-trip through disk.
	dir := t.TempDir()
	tpath, mpath := filepath.Join(dir, "table.json"), filepath.Join(dir, "models.json")
	if err := pred.Table.Save(tpath); err != nil {
		t.Fatal(err)
	}
	if err := pred.Models.Save(mpath); err != nil {
		t.Fatal(err)
	}
	lt, err := Load(tpath)
	if err != nil {
		t.Fatal(err)
	}
	if lt.Provenance == nil || lt.Provenance.ModelHash != prov.ModelHash {
		t.Error("provenance lost across save/load")
	}
	lm, err := costmodel.Load(mpath)
	if err != nil {
		t.Fatal(err)
	}
	if lm.Hash() != pred.Models.Hash() {
		t.Error("model set hash changed across save/load")
	}
}

// TestPredictiveValidation pins the error paths: predictive needs a grid
// it can fit models on.
func TestPredictiveValidation(t *testing.T) {
	t.Parallel()
	m := tinyDane()
	cands := []Candidate{{Algo: "bruck"}}
	if _, err := BuildTablePredictive(m, core.OpAlltoall, 2, 8, []int{64}, cands, 1, 1, nil); err == nil {
		t.Error("single-size predictive sweep accepted (no model is fittable)")
	}
	if _, err := BuildTablePredictive(m, core.OpAlltoall, 2, 8, nil, cands, 1, 1, nil); err == nil {
		t.Error("empty size grid accepted")
	}
	if _, err := BuildTablePredictive(m, core.OpAlltoall, 2, 8, []int{16, 256}, nil, 1, 1, nil); err == nil {
		t.Error("empty candidate pool accepted")
	}
}

// TestProbeIndices pins the probe-grid spread: endpoints always included,
// k >= n degenerates to every index.
func TestProbeIndices(t *testing.T) {
	t.Parallel()
	idx := probeIndices(15, 4)
	if len(idx) != 4 || idx[0] != 0 || idx[3] != 14 {
		t.Errorf("probeIndices(15, 4) = %v, want 4 spread indices including 0 and 14", idx)
	}
	for i := 1; i < len(idx); i++ {
		if idx[i] <= idx[i-1] {
			t.Errorf("probe indices not strictly ascending: %v", idx)
		}
	}
	if idx := probeIndices(3, 4); len(idx) != 3 || idx[0] != 0 || idx[2] != 2 {
		t.Errorf("probeIndices(3, 4) = %v, want [0 1 2]", idx)
	}
}
