package autotune

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"alltoallx/internal/artifact"
	"alltoallx/internal/core"
)

// TableVersion is the on-disk format version new tables are written with.
// Version 2 added the Provenance block (source machine, probe grid,
// fitted-model hash, refresh generation); version 1 tables carry none and
// still decode (provenance is auditing metadata, not dispatch state).
// Bump the version on incompatible changes to Table or core.Options
// serialization; Load rejects unknown versions rather than silently
// dispatching on stale winners.
const TableVersion = 2

// minTableVersion is the oldest format Load still accepts.
const minTableVersion = 1

// Entry is one row of a Table: the candidate that won blocks of at most
// Size bytes, and its predicted time at that size.
type Entry struct {
	// Size is the upper edge of this bucket in bytes per rank pair.
	Size int `json:"size"`
	// Name is the winning candidate's label (e.g. "multileader/4ppl").
	Name string `json:"name"`
	// Algo and Opts reconstruct the winner via core.New.
	Algo string       `json:"algo"`
	Opts core.Options `json:"opts"`
	// Seconds is the machine model's prediction at Size.
	Seconds float64 `json:"seconds"`
}

// EntryFor records a selection winner as the table row for blocks of at
// most size bytes — the single construction site for entries, shared by
// BuildTable and callers that assemble tables from their own Select loop.
func EntryFor(size int, best Choice) Entry {
	return Entry{Size: size, Name: best.Label(), Algo: best.Algo, Opts: best.Opts, Seconds: best.Seconds}
}

// Provenance records how a table's winners were obtained, so a table
// found on disk — especially one an online refinement loop has rewritten
// while jobs were running — can be audited back to its origin. It is
// metadata: dispatch behavior never depends on it.
type Provenance struct {
	// Source is the machine model the winners were measured against
	// (normally equal to Table.Machine; kept separately so a refreshed
	// table still names the model the original sweep ran on).
	Source string `json:"source,omitempty"`
	// Mode is how the winners were selected: "sweep" (exhaustive),
	// "predictive" (cost-model-pruned sweep), or "online" (refreshed at
	// run time by the incumbent-vs-challenger loop).
	Mode string `json:"mode,omitempty"`
	// ProbeSizes is the probe grid a predictive sweep fitted its cost
	// models from (nil for exhaustive sweeps).
	ProbeSizes []int `json:"probeSizes,omitempty"`
	// ModelHash is the content hash of the fitted cost-model set
	// (costmodel.Set.Hash) that pruned the sweep, tying the table to the
	// exact models that selected its winners.
	ModelHash string `json:"modelHash,omitempty"`
	// Generation counts online refreshes: 0 as tuned offline, +1 every
	// time the online loop promotes a challenger and rewrites the table.
	Generation int `json:"generation,omitempty"`
}

// Table is a persistent, size-indexed dispatch table of autotuned winners
// for one (machine, nodes, ppn) world. BuildTable produces it offline from
// the machine model; Save/Load round-trip it as versioned JSON; Dispatch
// converts it into the spec the run-time "tuned" algorithm (core.New)
// executes. A table is only meaningful for the world shape it was tuned
// for — Load validates internal consistency and CheckWorld rejects a
// mismatched deployment.
type Table struct {
	Version int    `json:"version"`
	Machine string `json:"machine"`
	Nodes   int    `json:"nodes"`
	PPN     int    `json:"ppn"`
	// Op is the collective the table was tuned for: core.OpAlltoall or
	// core.OpAlltoallv. Absent (pre-op-kind tables) means alltoall. For
	// alltoallv tables, Size is the mean payload per peer (total bytes
	// sent by a rank divided by the rank count).
	Op core.Op `json:"op,omitempty"`
	// Entries are the per-size winners, ascending in Size.
	Entries []Entry `json:"entries"`
	// Provenance is the optional audit block (format version 2+).
	Provenance *Provenance `json:"provenance,omitempty"`
}

// Validate checks version and internal consistency: a known version, a
// positive world shape, and at least one entry with strictly ascending
// positive sizes and constructible algorithms.
func (t *Table) Validate() error {
	if t.Version < minTableVersion || t.Version > TableVersion {
		return fmt.Errorf("autotune: table version %d, this build reads versions %d-%d — regenerate with a2atune", t.Version, minTableVersion, TableVersion)
	}
	if t.Machine == "" {
		return fmt.Errorf("autotune: table has no machine name")
	}
	if t.Nodes <= 0 || t.PPN <= 0 {
		return fmt.Errorf("autotune: table world %d nodes x %d ppn invalid", t.Nodes, t.PPN)
	}
	if len(t.Entries) == 0 {
		return fmt.Errorf("autotune: table has no entries")
	}
	// Bucket-level invariants (ascending sizes, known algorithms) are
	// owned by the dispatch spec the entries convert to.
	return t.Dispatch().Validate()
}

// CheckWorld reports whether the table was tuned for the given world: the
// same machine model, node count, and ranks per node. Winners tuned on one
// shape are not transferable (the paper's Section 5 selection is per
// "computer, system MPI, process count"), so dispatching from a mismatched
// table is an error, not a fallback.
func (t *Table) CheckWorld(machine string, nodes, ppn int) error {
	if t.Machine != machine || t.Nodes != nodes || t.PPN != ppn {
		return fmt.Errorf("autotune: table tuned for %s %d nodes x %d ppn, world is %s %d nodes x %d ppn",
			t.Machine, t.Nodes, t.PPN, machine, nodes, ppn)
	}
	return nil
}

// Pick returns the tabled winner for a block size: the entry of the
// smallest tabled size >= block, or the largest entry when block exceeds
// the table.
func (t *Table) Pick(block int) Entry {
	for _, e := range t.Entries {
		if block <= e.Size {
			return e
		}
	}
	return t.Entries[len(t.Entries)-1]
}

// Dispatch converts the table into the run-time spec core's "tuned"
// algorithm executes: pass it via core.Options.Table (or use Options).
func (t *Table) Dispatch() *core.Dispatch {
	d := &core.Dispatch{Op: t.Op.Norm(), Entries: make([]core.DispatchEntry, len(t.Entries))}
	for i, e := range t.Entries {
		d.Entries[i] = core.DispatchEntry{MaxBlock: e.Size, Name: e.Name, Algo: e.Algo, Opts: e.Opts}
	}
	return d
}

// Refresh applies an online promotion (core.OnlineConfig.OnPromote) to
// the table: the promoted bucket's entry adopts the new winner with its
// agreed worst-rank window mean as the recorded seconds, and provenance
// switches to mode "online" with the refresh generation bumped. Table
// entries map 1:1 onto dispatch buckets (Dispatch), so the event's
// bucket index addresses the entry directly. Callers persist the result
// with Save — atomic, so a concurrently loading job never reads a torn
// table.
func (t *Table) Refresh(ev core.PromoteEvent) error {
	if ev.Bucket < 0 || ev.Bucket >= len(t.Entries) {
		return fmt.Errorf("autotune: promotion bucket %d outside table (%d entries)", ev.Bucket, len(t.Entries))
	}
	e := &t.Entries[ev.Bucket]
	name := ev.New.Name
	if name == "" {
		name = ev.New.Algo
	}
	e.Name, e.Algo, e.Opts, e.Seconds = name, ev.New.Algo, ev.New.Opts, ev.NewMean
	if t.Provenance == nil {
		t.Provenance = &Provenance{Source: t.Machine}
	}
	t.Provenance.Mode = "online"
	t.Provenance.Generation = ev.Generation
	return nil
}

// Options returns construction options for the "tuned" algorithm backed
// by this table: core.New("tuned", c, maxBlock, t.Options()) for alltoall
// tables, core.NewV("tuned", c, maxTotal, t.Options()) for alltoallv
// tables.
func (t *Table) Options() core.Options {
	return core.Options{Table: t.Dispatch()}
}

// Encode writes the table as versioned, indented JSON.
func (t *Table) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// Decode reads one table from r. It validates before returning, so a
// successful Decode yields a dispatchable table.
func Decode(r io.Reader) (*Table, error) {
	var t Table
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("autotune: decoding table: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// Save writes the table to path atomically (internal/artifact: temp file
// + rename, so a concurrent reader never sees a torn table).
func (t *Table) Save(path string) error {
	if err := t.Validate(); err != nil {
		return err
	}
	return artifact.Save(path, "autotune: saving table", t.Encode)
}

// Load reads and validates the table at path.
func Load(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("autotune: loading table: %w", err)
	}
	defer f.Close()
	t, err := Decode(f)
	if err != nil {
		// Decode's errors already carry the package prefix; add the path.
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// SizeGrid returns the doubling message-size grid [min, 2min, 4min, ...]
// up to and including max (max is appended if the doubling sequence does
// not land on it), the sweep a2atune tunes over by default.
func SizeGrid(min, max int) []int {
	if min <= 0 || max < min {
		return nil
	}
	var out []int
	for s := min; ; s *= 2 {
		out = append(out, s)
		if s > max/2 { // next double would exceed max (or overflow)
			break
		}
	}
	if last := out[len(out)-1]; last != max {
		out = append(out, max)
	}
	return out
}
