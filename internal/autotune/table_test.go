package autotune

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"alltoallx/internal/comm"
	"alltoallx/internal/core"
	"alltoallx/internal/netmodel"
	"alltoallx/internal/runtime"
	"alltoallx/internal/sim"
	"alltoallx/internal/topo"
)

// buildTestTable tunes a small world with two candidates; tests share it
// via the bench layer's measurement cache, so repeated builds are cheap.
func buildTestTable(t *testing.T, sizes []int) *Table {
	t.Helper()
	cands := []Candidate{
		{Name: "node-aware", Algo: "node-aware"},
		{Name: "mlna", Algo: "multileader-node-aware", Opts: core.Options{PPL: 2}},
	}
	tbl, err := BuildTable(tinyDane(), core.OpAlltoall, 4, 8, sizes, cands, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestTableSaveLoadRoundTrip(t *testing.T) {
	t.Parallel()
	tbl := buildTestTable(t, []int{16, 1024})
	path := filepath.Join(t.TempDir(), "table.json")
	if err := tbl.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tbl, loaded) {
		t.Errorf("round trip changed the table:\nsaved  %+v\nloaded %+v", tbl, loaded)
	}
	// A loaded table must be immediately dispatchable.
	if err := loaded.Dispatch().Validate(); err != nil {
		t.Errorf("loaded table not dispatchable: %v", err)
	}
}

func TestTableLoadRejects(t *testing.T) {
	t.Parallel()
	tbl := buildTestTable(t, []int{16, 1024})
	dir := t.TempDir()

	save := func(name string, mutate func(*Table)) string {
		t.Helper()
		c := *tbl
		c.Entries = append([]Entry(nil), tbl.Entries...)
		mutate(&c)
		path := filepath.Join(dir, name)
		// Bypass Save's own validation: encode directly.
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Encode(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}

	cases := []struct {
		name   string
		mutate func(*Table)
		want   string
	}{
		{"version.json", func(c *Table) { c.Version = TableVersion + 1 }, "version"},
		{"nomachine.json", func(c *Table) { c.Machine = "" }, "machine"},
		{"badworld.json", func(c *Table) { c.Nodes = 0 }, "invalid"},
		{"empty.json", func(c *Table) { c.Entries = nil }, "no entries"},
		{"unsorted.json", func(c *Table) {
			c.Entries[0], c.Entries[1] = c.Entries[1], c.Entries[0]
		}, "ascending"},
		{"badalgo.json", func(c *Table) { c.Entries[0].Algo = "no-such" }, "unknown algorithm"},
	}
	for _, tc := range cases {
		path := save(tc.name, tc.mutate)
		_, err := Load(path)
		if err == nil {
			t.Errorf("%s: corrupted table accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}

	if _, err := Load(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("missing file accepted")
	}
	garbled := filepath.Join(dir, "garbage.json")
	if err := os.WriteFile(garbled, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(garbled); err == nil {
		t.Error("garbage accepted")
	}
}

func TestTableCheckWorld(t *testing.T) {
	t.Parallel()
	tbl := buildTestTable(t, []int{64})
	if err := tbl.CheckWorld("Dane", 4, 8); err != nil {
		t.Errorf("matching world rejected: %v", err)
	}
	for _, w := range []struct {
		machine    string
		nodes, ppn int
	}{
		{"Amber", 4, 8}, {"Dane", 8, 8}, {"Dane", 4, 16},
	} {
		if err := tbl.CheckWorld(w.machine, w.nodes, w.ppn); err == nil {
			t.Errorf("world %v accepted", w)
		}
	}
}

// TestTunedDispatchMatchesRanking closes the autotuning loop: for every
// tabled size, the "tuned" dispatcher constructed from the persisted
// table must hand the exchange to the candidate the autotuner ranked
// first at that size.
func TestTunedDispatchMatchesRanking(t *testing.T) {
	t.Parallel()
	m := tinyDane()
	const nodes, ppn = 4, 8
	cands := []Candidate{
		{Name: "node-aware", Algo: "node-aware"},
		{Name: "mlna", Algo: "multileader-node-aware", Opts: core.Options{PPL: 2}},
		{Name: "bruck", Algo: "bruck"},
	}
	sizes := []int{8, 128, 2048}
	tbl, err := BuildTable(m, core.OpAlltoall, nodes, ppn, sizes, cands, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Round-trip through disk so the test covers the persisted form.
	path := filepath.Join(t.TempDir(), "table.json")
	if err := tbl.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}

	for _, s := range sizes {
		want, _, err := Select(m, core.OpAlltoall, nodes, ppn, s, cands, 1, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		var picked string
		cfg := sim.ClusterConfig{Model: m, Nodes: nodes, PPN: ppn, Seed: 1}
		_, err = sim.RunCluster(cfg, func(c comm.Comm) error {
			a, err := core.New("tuned", c, s, loaded.Options())
			if err != nil {
				return err
			}
			send := comm.Virtual(c.Size() * s)
			recv := comm.Virtual(c.Size() * s)
			if err := a.Alltoall(send, recv, s); err != nil {
				return err
			}
			if c.Rank() == 0 {
				picked = a.(interface{ Picked() string }).Picked()
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if picked != want.Label() {
			t.Errorf("size %d: dispatcher picked %q, autotuner ranked %q first", s, picked, want.Label())
		}
		if got := loaded.Pick(s); got.Name != want.Label() {
			t.Errorf("size %d: table entry %q, autotuner ranked %q first", s, got.Name, want.Label())
		}
	}
}

func TestSizeGrid(t *testing.T) {
	t.Parallel()
	if got := SizeGrid(4, 64); !reflect.DeepEqual(got, []int{4, 8, 16, 32, 64}) {
		t.Errorf("SizeGrid(4, 64) = %v", got)
	}
	// Max off the doubling sequence is appended.
	if got := SizeGrid(4, 100); !reflect.DeepEqual(got, []int{4, 8, 16, 32, 64, 100}) {
		t.Errorf("SizeGrid(4, 100) = %v", got)
	}
	if got := SizeGrid(7, 7); !reflect.DeepEqual(got, []int{7}) {
		t.Errorf("SizeGrid(7, 7) = %v", got)
	}
	if SizeGrid(0, 8) != nil || SizeGrid(8, 4) != nil {
		t.Error("invalid grids accepted")
	}
	// Doubling must terminate (not overflow) at the int ceiling.
	huge := SizeGrid(4, math.MaxInt)
	if len(huge) == 0 || len(huge) > 64 || huge[len(huge)-1] != math.MaxInt {
		t.Errorf("SizeGrid to MaxInt: %d entries, last %d", len(huge), huge[len(huge)-1])
	}
	for _, v := range huge {
		if v <= 0 {
			t.Fatalf("overflowed entry %d in %v", v, huge)
		}
	}
}

// TestVTableRoundTrip: an alltoallv table preserves its op kind through
// Save/Load, converts to an OpAlltoallv dispatch spec, and drives the
// tuned v-dispatcher (while being rejected by the fixed-size one).
func TestVTableRoundTrip(t *testing.T) {
	t.Parallel()
	cands := []Candidate{
		{Name: "pairwise", Algo: "pairwise"},
		{Name: "node-aware", Algo: "node-aware"},
	}
	tbl, err := BuildTable(tinyDane(), core.OpAlltoallv, 2, 8, []int{16, 256}, cands, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Op != core.OpAlltoallv {
		t.Fatalf("table op = %q", tbl.Op)
	}
	path := filepath.Join(t.TempDir(), "vtable.json")
	if err := tbl.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Op != core.OpAlltoallv {
		t.Fatalf("loaded op = %q", loaded.Op)
	}
	d := loaded.Dispatch()
	if d.Op != core.OpAlltoallv {
		t.Fatalf("dispatch op = %q", d.Op)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// A v-table must not drive the fixed-size dispatcher.
	m, err := topo.NewMapping(topo.Spec{Sockets: 2, NumaPerSocket: 2, CoresPerNuma: 2}, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	err = runtime.Run(runtime.Config{Mapping: m}, func(c comm.Comm) error {
		if _, err := core.New("tuned", c, 64, loaded.Options()); err == nil {
			return fmt.Errorf("fixed-size tuned accepted an alltoallv table")
		}
		if _, err := core.NewV("tuned", c, 4096, loaded.Options()); err != nil {
			return fmt.Errorf("tuned alltoallv rejected its own table: %w", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRefreshRoundTrip closes the online loop end to end: a table tuned
// for baseline Dane dispatches on a drifted machine (NICMsgCost x10
// flips the 4 KiB winner from pairwise to the adjacent bucket's
// node-aware), the refinement loop promotes the challenger, OnPromote
// rewrites the table via Refresh, and the refreshed table round-trips
// through Save/Load with its provenance intact.
func TestRefreshRoundTrip(t *testing.T) {
	drifted := netmodel.Dane()
	drifted.NICMsgCost *= 10
	tbl := &Table{
		Version: TableVersion, Machine: drifted.Name, Nodes: 4, PPN: 8,
		Entries: []Entry{
			{Size: 2048, Name: "node-aware", Algo: "node-aware"},
			{Size: 8192, Name: "pairwise", Algo: "pairwise"},
			{Size: 32768, Name: "pairwise", Algo: "pairwise"},
		},
		Provenance: &Provenance{Source: drifted.Name, Mode: "sweep"},
	}
	var refreshErr error
	cfg := sim.ClusterConfig{Model: drifted, Nodes: 4, PPN: 8, Seed: 1}
	_, err := sim.RunCluster(cfg, func(c comm.Comm) error {
		opts := tbl.Options()
		opts.Online = &core.OnlineConfig{Window: 2, TrialEvery: 2, OnPromote: func(ev core.PromoteEvent) {
			refreshErr = tbl.Refresh(ev) // rank 0 only
		}}
		a, err := core.New("tuned", c, 32768, opts)
		if err != nil {
			return err
		}
		const block = 4096
		send := comm.Virtual(c.Size() * block)
		recv := comm.Virtual(c.Size() * block)
		for i := 0; i < 12; i++ {
			if err := a.Alltoall(send, recv, block); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if refreshErr != nil {
		t.Fatal(refreshErr)
	}
	path := filepath.Join(t.TempDir(), "refreshed.json")
	if err := tbl.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Pick(4096); got.Algo != "node-aware" || got.Seconds <= 0 {
		t.Errorf("refreshed 4 KiB winner %+v, want promoted node-aware with its window mean", got)
	}
	if back.Provenance == nil || back.Provenance.Mode != "online" || back.Provenance.Generation != 1 {
		t.Errorf("refreshed provenance %+v, want mode online at generation 1", back.Provenance)
	}
	if back.Provenance != nil && back.Provenance.Source != drifted.Name {
		t.Errorf("refreshed provenance source %q, want %q kept", back.Provenance.Source, drifted.Name)
	}
	if got := back.Pick(1024); got.Algo != "node-aware" {
		t.Errorf("unpromoted bucket changed: %+v", got)
	}
}

// TestRefreshRejectsBadBucket: a promotion event outside the table is an
// error, not a silent out-of-range write.
func TestRefreshRejectsBadBucket(t *testing.T) {
	tbl := &Table{Version: TableVersion, Machine: "Dane", Nodes: 1, PPN: 2,
		Entries: []Entry{{Size: 64, Name: "bruck", Algo: "bruck"}}}
	if err := tbl.Refresh(core.PromoteEvent{Bucket: 1}); err == nil {
		t.Fatal("Refresh accepted an out-of-range bucket")
	}
}
