// Package bench is the experiment harness that regenerates every table and
// figure in the paper's evaluation (Section 4). Each Experiment describes
// one figure: the machine model, the x-axis (message size, node count, or
// group size), and the plotted series (algorithm + options, or an internal
// phase for the breakdown figures). The runner executes each point as a
// discrete-event simulation, repeats it with different noise seeds, and
// reports the minimum — exactly the paper's "minimum of 3 runs for each
// data point" methodology.
package bench

import (
	"fmt"

	"alltoallx/internal/comm"
	"alltoallx/internal/core"
	"alltoallx/internal/netmodel"
	"alltoallx/internal/sim"
	"alltoallx/internal/trace"
)

// Point is one measured data point.
type Point struct {
	// Seconds is the collective's duration: max across ranks within a run,
	// min across runs.
	Seconds float64
	// Phases holds rank 0's per-phase breakdown from the minimum run.
	// Rank 0 is a leader in every algorithm, so its timers cover all
	// internal stages; a max-merge across ranks would instead fold
	// non-leader idle time into the gather/scatter phases (a non-leader's
	// "scatter" lasts the whole leader pipeline), which is not what the
	// paper's Figures 13-16 plot.
	Phases map[trace.Phase]float64
	// Stats carries simulator counters from the selected (minimum) run.
	Stats sim.Stats
}

// Config fully identifies one measurement.
type Config struct {
	Machine netmodel.Params
	Nodes   int
	PPN     int
	// Op selects the measured collective: core.OpAlltoall (default) times
	// a fixed-size exchange of Block bytes per rank pair; core.OpAlltoallv
	// times a skewed variable-size exchange (ZipfCounts) whose mean
	// payload per peer is Block.
	Op    core.Op
	Algo  string
	Opts  core.Options
	Block int
	// Runs is the number of seeded repetitions (paper: 3).
	Runs int
	// BaseSeed offsets the noise seeds; runs use BaseSeed+1..BaseSeed+Runs.
	BaseSeed int64
	// Fabric, when non-empty, enables the flow-level contention model
	// over the named topo.Fabric kind (sim.ClusterConfig.Fabric); empty
	// measures under the analytic model alone.
	Fabric string
}

// Key returns a map key identifying the simulation (used to share runs
// between series that read different phases of the same algorithm).
func (c Config) Key() string {
	return fmt.Sprintf("%s|%d|%d|%s|%s|%s|%d|%d|%d|%d|%d|%v|%s|%s",
		c.Machine.Name, c.Nodes, c.PPN, c.Op.Norm(), c.Algo, c.Opts.Inner,
		c.Opts.PPL, c.Opts.PPG, c.Opts.BatchWindow, c.Block, c.Runs, c.Opts.GatherKind,
		c.Opts.Table.Fingerprint(), c.Fabric)
}

// Measure runs the configuration and returns its data point. The algorithm
// object is constructed outside the timed region (as in the paper); a
// barrier aligns the ranks and a single exchange is timed (the simulator
// starts from a clean state, so no warm-up iteration is needed).
func Measure(cfg Config) (Point, error) {
	if cfg.Runs <= 0 {
		cfg.Runs = 1
	}
	opts := cfg.Opts
	scale := 1.0
	if cfg.Algo == "system-mpi" {
		if opts.Sys.SmallAlgo == "" {
			opts.Sys = cfg.Machine.Sys
		}
		scale = cfg.Machine.Sys.OverheadScale
	}
	best := Point{Seconds: -1}
	p := cfg.Nodes * cfg.PPN
	var vcounts [][]int
	var vMax int
	if cfg.Op.Norm() == core.OpAlltoallv {
		vcounts = ZipfCounts(p, cfg.Block)
		vMax = MaxTotal(vcounts)
	}
	for run := 0; run < cfg.Runs; run++ {
		durations := make([]float64, p)
		snaps := make([]map[trace.Phase]float64, p)
		cc := sim.ClusterConfig{
			Model: cfg.Machine, Nodes: cfg.Nodes, PPN: cfg.PPN,
			Seed: cfg.BaseSeed + int64(run) + 1, OverheadScale: scale,
			Fabric: cfg.Fabric,
		}
		body := func(c comm.Comm) error {
			a, err := core.New(cfg.Algo, c, cfg.Block, opts)
			if err != nil {
				return err
			}
			send := comm.Virtual(c.Size() * cfg.Block)
			recv := comm.Virtual(c.Size() * cfg.Block)
			if err := c.Barrier(); err != nil {
				return err
			}
			t0 := c.Now()
			if err := a.Alltoall(send, recv, cfg.Block); err != nil {
				return err
			}
			durations[c.Rank()] = c.Now() - t0
			snaps[c.Rank()] = a.Phases()
			return nil
		}
		if vcounts != nil {
			body = func(c comm.Comm) error {
				a, err := core.NewV(cfg.Algo, c, vMax, opts)
				if err != nil {
					return err
				}
				r := c.Rank()
				sc := vcounts[r]
				rc := make([]int, p)
				for s := 0; s < p; s++ {
					rc[s] = vcounts[s][r]
				}
				sdispls, sTotal := core.DisplsFromCounts(sc)
				rdispls, rTotal := core.DisplsFromCounts(rc)
				send := comm.Virtual(sTotal)
				recv := comm.Virtual(rTotal)
				if err := c.Barrier(); err != nil {
					return err
				}
				t0 := c.Now()
				if err := a.Alltoallv(send, sc, sdispls, recv, rc, rdispls); err != nil {
					return err
				}
				durations[r] = c.Now() - t0
				snaps[r] = a.Phases()
				return nil
			}
		}
		stats, err := sim.RunCluster(cc, body)
		if err != nil {
			return Point{}, fmt.Errorf("bench: %s %s nodes=%d ppn=%d block=%d run=%d: %w",
				cfg.Op.Norm(), cfg.Algo, cfg.Nodes, cfg.PPN, cfg.Block, run, err)
		}
		d := maxOf(durations)
		if best.Seconds < 0 || d < best.Seconds {
			best = Point{Seconds: d, Phases: snaps[0], Stats: stats}
		}
	}
	return best, nil
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
