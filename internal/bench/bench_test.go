package bench

import (
	"bytes"
	"strings"
	"testing"

	"alltoallx/internal/core"
	"alltoallx/internal/netmodel"
	"alltoallx/internal/trace"
)

// tinyDane keeps bench-package tests fast.
func tinyDane() netmodel.Params {
	m := netmodel.Dane()
	m.Node.Sockets, m.Node.NumaPerSocket, m.Node.CoresPerNuma = 2, 2, 2
	return m
}

func TestMeasureDeterministic(t *testing.T) {
	t.Parallel()
	cfg := Config{Machine: tinyDane(), Nodes: 2, PPN: 8, Algo: "node-aware", Block: 64, Runs: 2, BaseSeed: 5}
	a, err := Measure(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Measure(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Seconds != b.Seconds {
		t.Errorf("same config diverged: %g vs %g", a.Seconds, b.Seconds)
	}
	if a.Seconds <= 0 || a.Stats.Messages == 0 {
		t.Errorf("implausible point: %+v", a)
	}
	if a.Phases[trace.PhaseTotal] <= 0 {
		t.Errorf("missing total phase: %v", a.Phases)
	}
}

func TestMeasureMinOfRuns(t *testing.T) {
	t.Parallel()
	// More runs can only lower (or keep) the minimum.
	cfg := Config{Machine: tinyDane(), Nodes: 2, PPN: 8, Algo: "pairwise", Block: 32, Runs: 1, BaseSeed: 9}
	one, err := Measure(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Runs = 3
	three, err := Measure(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if three.Seconds > one.Seconds {
		t.Errorf("min of 3 (%g) exceeds min of 1 (%g)", three.Seconds, one.Seconds)
	}
}

func TestMeasureSystemMPIProfile(t *testing.T) {
	t.Parallel()
	// system-mpi without an explicit profile inherits the machine's.
	cfg := Config{Machine: tinyDane(), Nodes: 2, PPN: 8, Algo: "system-mpi", Block: 16, Runs: 1}
	if _, err := Measure(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMeasureErrors(t *testing.T) {
	t.Parallel()
	cfg := Config{Machine: tinyDane(), Nodes: 2, PPN: 8, Algo: "no-such", Block: 16, Runs: 1}
	if _, err := Measure(cfg); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestExperimentRegistry(t *testing.T) {
	t.Parallel()
	exps := Experiments()
	if len(exps) != 13 {
		t.Fatalf("expected 13 experiments (fig7..fig18 + alltoallv), got %d", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if seen[e.ID] {
			t.Errorf("duplicate experiment %s", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Expectation == "" || len(e.Series) == 0 {
			t.Errorf("%s: incomplete definition", e.ID)
		}
		if _, err := netmodel.ByName(e.Machine); err != nil {
			t.Errorf("%s: %v", e.ID, err)
		}
		if len(e.Xs) == 0 {
			t.Errorf("%s: no x values", e.ID)
		}
	}
	for _, id := range []string{"fig7", "fig10", "fig13", "fig16", "fig18"} {
		if !seen[id] {
			t.Errorf("missing %s", id)
		}
	}
	if _, err := Lookup("fig10"); err != nil {
		t.Error(err)
	}
	if _, err := Lookup("fig99"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestSweepValues(t *testing.T) {
	t.Parallel()
	exp := Experiment{XAxis: XSize, Xs: []int{4, 8, 16, 32, 64}}
	got := sweepValues(exp, Scale{SizeStride: 2}, 16)
	want := []int{4, 16, 64}
	if len(got) != len(want) {
		t.Fatalf("stride sweep = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stride sweep = %v, want %v", got, want)
		}
	}
	exp = Experiment{XAxis: XNodes, Xs: []int{2, 4, 8, 16, 32}}
	got = sweepValues(exp, Scale{NodeCap: 8}, 16)
	if len(got) != 3 || got[2] != 8 {
		t.Fatalf("node cap sweep = %v", got)
	}
	exp = Experiment{XAxis: XPPG, Xs: []int{0, 16, 8, 4}}
	got = sweepValues(exp, Scale{}, 8)
	if len(got) != 3 { // 16 dropped: exceeds ppn 8
		t.Fatalf("ppg sweep = %v", got)
	}
}

func TestNearestDivisor(t *testing.T) {
	t.Parallel()
	cases := []struct{ q, ppn, want int }{
		{0, 16, 0}, {4, 16, 4}, {5, 16, 4}, {16, 8, 8}, {3, 8, 2}, {7, 14, 7}, {1, 9, 1},
	}
	for _, tc := range cases {
		if got := nearestDivisor(tc.q, tc.ppn); got != tc.want {
			t.Errorf("nearestDivisor(%d, %d) = %d, want %d", tc.q, tc.ppn, got, tc.want)
		}
	}
}

func TestRunExperimentQuickShape(t *testing.T) {
	t.Parallel()
	exp, err := Lookup("fig10")
	if err != nil {
		t.Fatal(err)
	}
	sc := Scale{Name: "test", NodeCap: 2, PPN: 8, Runs: 1, SizeStride: 5}
	tbl, err := RunExperiment(exp, sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Xs) == 0 || len(tbl.Labels) != len(exp.Series) {
		t.Fatalf("table shape: %d xs, %d labels", len(tbl.Xs), len(tbl.Labels))
	}
	for xi := range tbl.Xs {
		for si := range tbl.Labels {
			if tbl.Values[xi][si] <= 0 {
				t.Errorf("non-positive cell [%d][%d]", xi, si)
			}
		}
	}
	sp, atX, vs := Headline(tbl)
	if sp <= 0 || atX == 0 || vs == "" {
		t.Errorf("headline: %g %d %q", sp, atX, vs)
	}

	var text, csv bytes.Buffer
	if err := tbl.Format(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "fig10") || !strings.Contains(text.String(), "System MPI") {
		t.Errorf("formatted table missing headers:\n%s", text.String())
	}
	if err := tbl.CSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != len(tbl.Xs)+1 {
		t.Errorf("CSV rows = %d, want %d", len(lines), len(tbl.Xs)+1)
	}
}

func TestRunExperimentBreakdownPhases(t *testing.T) {
	t.Parallel()
	exp, err := Lookup("fig14")
	if err != nil {
		t.Fatal(err)
	}
	sc := Scale{Name: "test", NodeCap: 2, PPN: 8, Runs: 1, SizeStride: 10}
	tbl, err := RunExperiment(exp, sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Breakdown cells report the selected phase, which must be below the
	// total of the same point.
	for xi := range tbl.Xs {
		for si := range tbl.Labels {
			if tbl.Values[xi][si] <= 0 {
				t.Errorf("phase cell [%d][%d] = %g", xi, si, tbl.Values[xi][si])
			}
			if tbl.Values[xi][si] > tbl.Points[xi][si].Seconds {
				t.Errorf("phase exceeds total at [%d][%d]", xi, si)
			}
		}
	}
}

func TestFormatTable1(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := FormatTable1(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Dane", "Amber", "Tuolomne", "112", "96", "Slingshot-11", "Omni-Path"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 missing %q:\n%s", want, out)
		}
	}
}

func TestPointConfigXAxes(t *testing.T) {
	t.Parallel()
	m := tinyDane()
	exp := Experiment{XAxis: XPPG, Block: 64}
	s := Series{Algo: "locality-aware", Opts: core.Options{Inner: core.InnerPairwise}}
	cfg, err := pointConfig(exp, s, m, 4, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Algo != "node-aware" {
		t.Errorf("PPG=0 should map to node-aware, got %s", cfg.Algo)
	}
	cfg, err = pointConfig(exp, s, m, 4, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Algo != "locality-aware" || cfg.Opts.PPG != 4 {
		t.Errorf("PPG=4: %+v", cfg)
	}
	exp = Experiment{XAxis: XSize}
	if _, err := pointConfig(exp, s, m, 4, 8, 0); err == nil {
		t.Error("unresolved block accepted")
	}
}

// TestZipfCounts: the skewed count matrix is deterministic, exactly
// row-normalized to p*mean, and actually skewed.
func TestZipfCounts(t *testing.T) {
	t.Parallel()
	const p, mean = 16, 64
	a := ZipfCounts(p, mean)
	b := ZipfCounts(p, mean)
	maxC, minC := 0, 1<<30
	for s := 0; s < p; s++ {
		total := 0
		for d := 0; d < p; d++ {
			if a[s][d] != b[s][d] {
				t.Fatalf("counts not deterministic at [%d][%d]", s, d)
			}
			if a[s][d] < 0 {
				t.Fatalf("negative count at [%d][%d]", s, d)
			}
			if a[s][d] > maxC {
				maxC = a[s][d]
			}
			if a[s][d] < minC {
				minC = a[s][d]
			}
			total += a[s][d]
		}
		if total != p*mean {
			t.Fatalf("row %d total %d, want %d", s, total, p*mean)
		}
	}
	if maxC <= mean {
		t.Fatalf("no skew: max count %d <= mean %d", maxC, mean)
	}
	if mt := MaxTotal(a); mt < p*mean {
		t.Fatalf("MaxTotal %d below row total %d", mt, p*mean)
	}
}

// TestMeasureAlltoallv: the v-measurement path runs every v-algorithm on
// the simulator and produces positive timings that differ across
// algorithms (i.e. the op kind is actually honored).
func TestMeasureAlltoallv(t *testing.T) {
	t.Parallel()
	secs := map[string]float64{}
	for _, algo := range []string{"pairwise", "node-aware"} {
		pt, err := Measure(Config{
			Machine: tinyDane(), Nodes: 2, PPN: 8,
			Op: core.OpAlltoallv, Algo: algo, Block: 32, Runs: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if pt.Seconds <= 0 {
			t.Fatalf("%s: non-positive duration %v", algo, pt.Seconds)
		}
		secs[algo] = pt.Seconds
	}
	if secs["pairwise"] == secs["node-aware"] {
		t.Fatalf("identical timings %v: op kind likely ignored", secs)
	}
	// Fixed-size and variable-size measurements of the same shape must
	// cache under different keys.
	k1 := Config{Machine: tinyDane(), Nodes: 2, PPN: 8, Algo: "pairwise", Block: 32, Runs: 1}.Key()
	k2 := Config{Machine: tinyDane(), Nodes: 2, PPN: 8, Op: core.OpAlltoallv, Algo: "pairwise", Block: 32, Runs: 1}.Key()
	if k1 == k2 {
		t.Fatal("cache keys collide across op kinds")
	}
}
