package bench

import (
	"encoding/json"
	"fmt"
	"io"

	"alltoallx/internal/artifact"
	"alltoallx/internal/netmodel"
	"alltoallx/internal/topo"
)

// The contention experiment asks the question the analytic cost model
// cannot: once inter-node messages contend for the fabric's links
// (the flow-level model, sim.ClusterConfig.Fabric), does the fastest
// algorithm change? Topology-oblivious exchanges (pairwise, bruck) route
// traffic across many shared links of a direct-connect fabric, while the
// sched:* schedules were compiled for that topology and mostly talk to
// neighbours — so as contention grows the ranking between them can flip
// relative to the analytic prediction. Each cell measures every
// algorithm twice (analytic vs flow) and records both winners; the
// committed snapshot (BENCH_contention.json) pins where the flips are.

// ContentionVersion is the emitted format version.
const ContentionVersion = 1

// Fixed methodology: a single seeded run per mode (the object is the
// analytic-vs-flow delta, not run variance), a small power-of-two node
// count so every fabric kind participates, and few ranks per node so the
// wire — not the intra-node staging — dominates.
const (
	contentionPPN  = 4
	contentionRuns = 1
	contentionSeed = 1
)

// contentionBlocks spans the eager/rendezvous crossover into the
// bandwidth-bound regime where link sharing binds. The 512 and 1024
// points sit on the bruck/pairwise crossover, where bruck's long-haul
// aggregated messages queue on ring links and the flow model flips the
// winner (Dane at 512, Tuolomne at 1024).
func contentionBlocks() []int { return []int{256, 512, 1024, 4096, 65536} }

// contentionAlgos returns the compared family for a fabric kind: the two
// topology-oblivious baselines and the schedule compiled for exactly
// that topology.
func contentionAlgos(fabric string) []string {
	return []string{"pairwise", "bruck", "sched:" + fabric}
}

// ContentionPoint is one algorithm measured under both models.
type ContentionPoint struct {
	Algo string `json:"algo"`
	// AnalyticSeconds is the plain cost-model time; FlowSeconds the time
	// with per-link FIFO queueing and backpressure enabled.
	AnalyticSeconds float64 `json:"analyticSeconds"`
	FlowSeconds     float64 `json:"flowSeconds"`
	// LinkBlockedSeconds / LinkQueuedSeconds / MaxLinkQueueBytes surface
	// the flow run's congestion counters (sim.Stats).
	LinkBlockedSeconds float64 `json:"linkBlockedSeconds"`
	LinkQueuedSeconds  float64 `json:"linkQueuedSeconds"`
	MaxLinkQueueBytes  int     `json:"maxLinkQueueBytes"`
}

// ContentionCell is one (fabric, block size) comparison.
type ContentionCell struct {
	Block  int               `json:"block"`
	Points []ContentionPoint `json:"points"`
	// AnalyticBest and FlowBest name the fastest algorithm under each
	// model; Flip marks cells where modeled contention changes the choice.
	AnalyticBest string `json:"analyticBest"`
	FlowBest     string `json:"flowBest"`
	Flip         bool   `json:"flip"`
}

// ContentionFabric is one fabric kind's sweep on one machine.
type ContentionFabric struct {
	Fabric string           `json:"fabric"`
	Nodes  int              `json:"nodes"`
	PPN    int              `json:"ppn"`
	Cells  []ContentionCell `json:"cells"`
}

// ContentionMachine is one machine's complete sweep.
type ContentionMachine struct {
	Machine string             `json:"machine"`
	Fabrics []ContentionFabric `json:"fabrics"`
}

// Contention is the full experiment artifact.
type Contention struct {
	Version int   `json:"version"`
	Runs    int   `json:"runs"`
	Seed    int64 `json:"seed"`
	// MaxRanks records the world-size cap this run honoured.
	MaxRanks int `json:"maxRanks"`
	// Flips counts cells where the flow model changes the fastest
	// algorithm — the experiment's headline number.
	Flips    int                 `json:"flips"`
	Machines []ContentionMachine `json:"machines"`
}

// contentionNodes picks the node count under a rank cap: the largest
// power of two with at least contentionPPN ranks each, capped at 16 (the
// sched:ring and sched:torus schedules stage Theta(p^2)+ blocks per rank,
// so bigger worlds buy wall time, not signal).
func contentionNodes(maxRanks int) int {
	nodes := 16
	for nodes > 2 && nodes*contentionPPN > maxRanks {
		nodes /= 2
	}
	return nodes
}

// RunContention executes the contention sweep on every Table 1 machine.
// maxRanks caps the world size (0 = the full 16-node world); progress,
// if non-nil, receives one line per completed point.
func RunContention(maxRanks int, progress func(string)) (*Contention, error) {
	if maxRanks == 0 {
		maxRanks = 16 * contentionPPN
	}
	nodes := contentionNodes(maxRanks)
	if nodes*contentionPPN > maxRanks {
		return nil, fmt.Errorf("bench: -maxranks %d below the smallest contention world (%d ranks)", maxRanks, nodes*contentionPPN)
	}
	out := &Contention{Version: ContentionVersion, Runs: contentionRuns, Seed: contentionSeed, MaxRanks: maxRanks}
	for _, m := range netmodel.Machines() {
		cm := ContentionMachine{Machine: m.Name}
		for _, fabric := range topo.FabricKinds() {
			cf := ContentionFabric{Fabric: fabric, Nodes: nodes, PPN: contentionPPN}
			for _, block := range contentionBlocks() {
				cell := ContentionCell{Block: block}
				for _, algo := range contentionAlgos(fabric) {
					pt := ContentionPoint{Algo: algo}
					for _, mode := range []string{"", fabric} {
						cfg := Config{
							Machine: m, Nodes: nodes, PPN: contentionPPN,
							Algo: algo, Block: block, Runs: contentionRuns,
							BaseSeed: contentionSeed, Fabric: mode,
						}
						key := cfg.Key()
						p, ok := cacheGet(key)
						if !ok {
							var err error
							p, err = Measure(cfg)
							if err != nil {
								return nil, fmt.Errorf("bench: contention %s/%s/%s/%d: %w", m.Name, fabric, algo, block, err)
							}
							cachePut(key, p)
						}
						if mode == "" {
							pt.AnalyticSeconds = p.Seconds
						} else {
							pt.FlowSeconds = p.Seconds
							pt.LinkBlockedSeconds = p.Stats.LinkBlockedSeconds
							pt.LinkQueuedSeconds = p.Stats.LinkQueuedSeconds
							pt.MaxLinkQueueBytes = p.Stats.MaxLinkQueueBytes
						}
					}
					cell.Points = append(cell.Points, pt)
					if progress != nil {
						progress(fmt.Sprintf("contention %s %s %s block=%d: analytic %.3e s, flow %.3e s (queued %.3e s, blocked %.3e s)",
							m.Name, fabric, algo, block, pt.AnalyticSeconds, pt.FlowSeconds, pt.LinkQueuedSeconds, pt.LinkBlockedSeconds))
					}
				}
				bestA, bestF := -1.0, -1.0
				for _, p := range cell.Points {
					if bestA < 0 || p.AnalyticSeconds < bestA {
						bestA, cell.AnalyticBest = p.AnalyticSeconds, p.Algo
					}
					if bestF < 0 || p.FlowSeconds < bestF {
						bestF, cell.FlowBest = p.FlowSeconds, p.Algo
					}
				}
				cell.Flip = cell.AnalyticBest != cell.FlowBest
				if cell.Flip {
					out.Flips++
				}
				cf.Cells = append(cf.Cells, cell)
			}
			cm.Fabrics = append(cm.Fabrics, cf)
		}
		out.Machines = append(out.Machines, cm)
	}
	return out, nil
}

// Encode writes the artifact as indented JSON.
func (c *Contention) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// Save writes the artifact to path atomically (internal/artifact).
func (c *Contention) Save(path string) error {
	return artifact.Save(path, "bench: saving contention sweep", c.Encode)
}

// Format prints the sweep as text tables, one fabric per machine block.
func (c *Contention) Format(w io.Writer) error {
	for _, m := range c.Machines {
		for _, f := range m.Fabrics {
			fmt.Fprintf(w, "contention — %s over %s fabric, %d nodes x %d ranks (seeded, %d run)\n",
				m.Machine, f.Fabric, f.Nodes, f.PPN, c.Runs)
			fmt.Fprintf(w, "%-8s %-18s %12s %12s %12s %s\n", "block", "algorithm", "analytic s", "flow s", "queued s", "")
			for _, cell := range f.Cells {
				for _, p := range cell.Points {
					marks := ""
					if p.Algo == cell.AnalyticBest {
						marks += " <analytic-best"
					}
					if p.Algo == cell.FlowBest {
						marks += " <flow-best"
					}
					if cell.Flip && (p.Algo == cell.AnalyticBest || p.Algo == cell.FlowBest) {
						marks += " FLIP"
					}
					fmt.Fprintf(w, "%-8d %-18s %12.4e %12.4e %12.4e%s\n",
						cell.Block, p.Algo, p.AnalyticSeconds, p.FlowSeconds, p.LinkQueuedSeconds, marks)
				}
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintf(w, "flips (contention changes the fastest algorithm): %d\n", c.Flips)
	return nil
}
