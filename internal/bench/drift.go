package bench

import (
	"encoding/json"
	"fmt"
	"io"

	"alltoallx/internal/artifact"
	"alltoallx/internal/comm"
	"alltoallx/internal/core"
	"alltoallx/internal/netmodel"
	"alltoallx/internal/sim"
)

// The drift experiment demonstrates the online half of the autotuning
// story: an offline table is only as good as the machine it was tuned on,
// and machines drift — firmware updates, congested fabrics, driver
// regressions all move the per-message and bandwidth constants the
// crossovers depend on. The experiment runs the tuned dispatcher in
// refinement mode (core.OnlineConfig) twice over the same table:
//
//   - pre-drift, on the machine the table was tuned for: trials run but
//     the incumbent keeps winning, so nothing is promoted;
//   - post-drift, on a shifted machine (NICMsgCost x10 — an onload-NIC
//     driver regression that punishes message-count-heavy exchanges):
//     the table's winner is now stale, the adjacent bucket's aggregating
//     algorithm wins the trials, and the loop promotes it within a few
//     windows.
//
// The committed snapshot (BENCH_drift.json) pins the re-convergence
// point and the speedup of the promoted incumbent over the stale one.

// DriftVersion is the emitted format version.
const DriftVersion = 1

// Fixed methodology: one seeded world (the object is the promotion
// trajectory, not run variance), small enough to re-run in CI, large
// enough that the baseline winner at the drift block differs from the
// adjacent bucket's winner — the shape the refinement loop exploits.
const (
	driftNodes      = 4
	driftPPN        = 8
	driftBlock      = 4096
	driftMaxBlock   = 32768
	driftSeed       = 1
	driftCalls      = 24
	driftWindow     = 3
	driftTrialEvery = 2
	// driftShift multiplies Dane's NICMsgCost for the post-drift phase:
	// at x10, pairwise's p-1 inter-node messages per rank cost more than
	// node-aware's aggregated exchange, flipping the 4 KiB winner.
	driftShift = 10.0
)

// driftSpec is the table tuned on baseline Dane at the drift world: the
// measured per-bucket winners (node-aware at 1 KiB, pairwise from 4 KiB
// up). The refinement loop trials adjacent buckets, so node-aware is in
// the 4 KiB bucket's challenger pool by construction.
func driftSpec() *core.Dispatch {
	return &core.Dispatch{Entries: []core.DispatchEntry{
		{MaxBlock: 2048, Algo: "node-aware"},
		{MaxBlock: 8192, Algo: "pairwise"},
		{MaxBlock: driftMaxBlock, Algo: "pairwise"},
	}}
}

// driftMachine returns the phase's machine model.
func driftMachine(shifted bool) netmodel.Params {
	m := netmodel.Dane()
	if shifted {
		m.NICMsgCost *= driftShift
	}
	return m
}

// DriftPromotion records one promotion the refinement loop made.
type DriftPromotion struct {
	Bucket     int     `json:"bucket"`
	Old        string  `json:"old"`
	New        string  `json:"new"`
	OldSeconds float64 `json:"oldSeconds"`
	NewSeconds float64 `json:"newSeconds"`
	Generation int     `json:"generation"`
}

// DriftPhase is one run of the dispatcher over the table: pre-drift on
// the tuned-for machine, post-drift on the shifted one.
type DriftPhase struct {
	Name string `json:"name"`
	// Incumbent is the algorithm serving the drift block's bucket after
	// the run; Generation and Promotions count adopted challengers.
	Incumbent  string `json:"incumbent"`
	Generation int    `json:"generation"`
	Promotions int    `json:"promotions"`
	Trials     int    `json:"trials"`
	Calls      int    `json:"calls"`
	// ConvergeCall is the 1-based call after which the last promotion
	// took effect (0 when nothing was promoted).
	ConvergeCall int `json:"convergeCall"`
	// FirstSeconds and LastSeconds are the mean per-call worst-rank times
	// over the first and last driftWindow calls: post-drift, Last under
	// the promoted incumbent sits well below First under the stale one.
	FirstSeconds float64          `json:"firstSeconds"`
	LastSeconds  float64          `json:"lastSeconds"`
	PerCall      []float64        `json:"perCallSeconds"`
	Promoted     []DriftPromotion `json:"promoted,omitempty"`
}

// Drift is the full experiment artifact.
type Drift struct {
	Version int    `json:"version"`
	Machine string `json:"machine"`
	Nodes   int    `json:"nodes"`
	PPN     int    `json:"ppn"`
	Block   int    `json:"block"`
	Seed    int64  `json:"seed"`
	// Shift describes the injected machine drift.
	Shift string `json:"shift"`
	// StaleSeconds and ConvergedSeconds are static measurements on the
	// drifted machine of the table's original winner and the promoted
	// one; ReconvergeSpeedup is their ratio — what staying online buys.
	StaleSeconds      float64      `json:"staleSeconds"`
	ConvergedSeconds  float64      `json:"convergedSeconds"`
	ReconvergeSpeedup float64      `json:"reconvergeSpeedup"`
	Phases            []DriftPhase `json:"phases"`
}

// runDriftPhase runs driftCalls exchanges of the tuned dispatcher in
// refinement mode on one machine and summarizes the trajectory.
func runDriftPhase(name string, m netmodel.Params, progress func(string)) (DriftPhase, error) {
	p := driftNodes * driftPPN
	perCall := make([][]float64, driftCalls)
	for i := range perCall {
		perCall[i] = make([]float64, p)
	}
	genAfter := make([]int, driftCalls)
	var stats core.OnlineStats
	var promoted []DriftPromotion
	cfg := sim.ClusterConfig{Model: m, Nodes: driftNodes, PPN: driftPPN, Seed: driftSeed}
	_, err := sim.RunCluster(cfg, func(c comm.Comm) error {
		oc := &core.OnlineConfig{
			Window: driftWindow, TrialEvery: driftTrialEvery,
			OnPromote: func(ev core.PromoteEvent) { // rank 0 only
				promoted = append(promoted, DriftPromotion{
					Bucket: ev.Bucket, Old: ev.Old.Algo, New: ev.New.Algo,
					OldSeconds: ev.OldMean, NewSeconds: ev.NewMean, Generation: ev.Generation,
				})
			},
		}
		a, err := core.New("tuned", c, driftMaxBlock, core.Options{Table: driftSpec(), Online: oc})
		if err != nil {
			return err
		}
		send := comm.Virtual(c.Size() * driftBlock)
		recv := comm.Virtual(c.Size() * driftBlock)
		for i := 0; i < driftCalls; i++ {
			if err := c.Barrier(); err != nil {
				return err
			}
			t0 := c.Now()
			if err := a.Alltoall(send, recv, driftBlock); err != nil {
				return fmt.Errorf("call %d: %w", i, err)
			}
			perCall[i][c.Rank()] = c.Now() - t0
			if c.Rank() == 0 {
				st := a.(interface{ OnlineStats() core.OnlineStats }).OnlineStats()
				genAfter[i] = st.Generation
				if progress != nil {
					progress(fmt.Sprintf("drift %s call %2d: %s via %s (generation %d)",
						name, i+1, m.Name, a.(interface{ Picked() string }).Picked(), st.Generation))
				}
			}
		}
		if c.Rank() == 0 {
			stats = a.(interface{ OnlineStats() core.OnlineStats }).OnlineStats()
		}
		return nil
	})
	if err != nil {
		return DriftPhase{}, fmt.Errorf("bench: drift phase %s: %w", name, err)
	}
	ph := DriftPhase{Name: name, Calls: driftCalls, Generation: stats.Generation, Promoted: promoted}
	bucket := 0
	for i, e := range driftSpec().Entries {
		if driftBlock <= e.MaxBlock {
			bucket = i
			break
		}
	}
	ph.Incumbent = stats.Buckets[bucket].Entry.Algo
	for _, b := range stats.Buckets {
		ph.Promotions += b.Promotions
		ph.Trials += b.Trials
	}
	for i := range perCall {
		ph.PerCall = append(ph.PerCall, maxOf(perCall[i]))
		prev := 0
		if i > 0 {
			prev = genAfter[i-1]
		}
		if genAfter[i] != prev {
			ph.ConvergeCall = i + 1
		}
	}
	for i := 0; i < driftWindow; i++ {
		ph.FirstSeconds += ph.PerCall[i] / driftWindow
		ph.LastSeconds += ph.PerCall[driftCalls-1-i] / driftWindow
	}
	return ph, nil
}

// RunDrift executes both phases plus the static stale-vs-converged
// comparison on the drifted machine. maxRanks, when non-zero, must admit
// the experiment's fixed world (the winner flip it stages is shape
// dependent); progress, if non-nil, receives one line per call.
func RunDrift(maxRanks int, progress func(string)) (*Drift, error) {
	if maxRanks != 0 && maxRanks < driftNodes*driftPPN {
		return nil, fmt.Errorf("bench: -maxranks %d below the drift world (%d ranks)", maxRanks, driftNodes*driftPPN)
	}
	shifted := driftMachine(true)
	out := &Drift{
		Version: DriftVersion, Machine: shifted.Name,
		Nodes: driftNodes, PPN: driftPPN, Block: driftBlock, Seed: driftSeed,
		Shift: fmt.Sprintf("NICMsgCost x%g", driftShift),
	}
	for _, ph := range []struct {
		name    string
		shifted bool
	}{{"pre-drift", false}, {"post-drift", true}} {
		res, err := runDriftPhase(ph.name, driftMachine(ph.shifted), progress)
		if err != nil {
			return nil, err
		}
		out.Phases = append(out.Phases, res)
	}
	// Static comparison: what each incumbent costs on the drifted machine.
	spec := driftSpec()
	stale, converged := spec.Entries[1].Algo, out.Phases[1].Incumbent
	for _, m := range []struct {
		algo string
		dst  *float64
	}{{stale, &out.StaleSeconds}, {converged, &out.ConvergedSeconds}} {
		pt, err := Measure(Config{
			Machine: shifted, Nodes: driftNodes, PPN: driftPPN,
			Algo: m.algo, Block: driftBlock, Runs: 3, BaseSeed: driftSeed,
		})
		if err != nil {
			return nil, fmt.Errorf("bench: drift static %s: %w", m.algo, err)
		}
		*m.dst = pt.Seconds
	}
	if out.ConvergedSeconds > 0 {
		out.ReconvergeSpeedup = out.StaleSeconds / out.ConvergedSeconds
	}
	return out, nil
}

// Encode writes the artifact as indented JSON.
func (d *Drift) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// Save writes the artifact to path atomically (internal/artifact).
func (d *Drift) Save(path string) error {
	return artifact.Save(path, "bench: saving drift experiment", d.Encode)
}

// Format prints the experiment as text.
func (d *Drift) Format(w io.Writer) error {
	fmt.Fprintf(w, "drift — tuned dispatcher with online refinement, %s %d nodes x %d ranks, %d B blocks (shift: %s)\n",
		d.Machine, d.Nodes, d.PPN, d.Block, d.Shift)
	for _, ph := range d.Phases {
		fmt.Fprintf(w, "%-10s %2d calls: incumbent %-12s generation %d (%d trials, %d promotions)",
			ph.Name, ph.Calls, ph.Incumbent, ph.Generation, ph.Trials, ph.Promotions)
		if ph.ConvergeCall > 0 {
			fmt.Fprintf(w, ", converged at call %d", ph.ConvergeCall)
		}
		fmt.Fprintf(w, "\n%-10s first window %.4e s -> last window %.4e s\n", "", ph.FirstSeconds, ph.LastSeconds)
		for _, pr := range ph.Promoted {
			fmt.Fprintf(w, "%-10s promoted bucket %d: %s (%.4e s) -> %s (%.4e s)\n",
				"", pr.Bucket, pr.Old, pr.OldSeconds, pr.New, pr.NewSeconds)
		}
	}
	fmt.Fprintf(w, "stale incumbent on drifted machine: %.4e s; converged: %.4e s; re-convergence speedup: %.2fx\n",
		d.StaleSeconds, d.ConvergedSeconds, d.ReconvergeSpeedup)
	return nil
}
