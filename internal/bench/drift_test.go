package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestDriftReconverges pins the drift experiment's shape: the table is
// correct pre-drift (no promotions), stale post-drift (the loop promotes
// the adjacent bucket's aggregating algorithm), and the converged
// incumbent beats the stale one by a real margin on the drifted machine.
func TestDriftReconverges(t *testing.T) {
	if testing.Short() {
		t.Skip("drift experiment in -short mode")
	}
	d, err := RunDrift(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	pre, post := d.Phases[0], d.Phases[1]
	if pre.Promotions != 0 || pre.Generation != 0 || pre.Incumbent != "pairwise" {
		t.Errorf("pre-drift phase displaced a correct incumbent: %+v", pre)
	}
	if pre.Trials == 0 {
		t.Error("pre-drift phase ran no trials — the loop was not refining")
	}
	if post.Promotions != 1 || post.Generation != 1 || post.Incumbent != "node-aware" {
		t.Errorf("post-drift phase did not re-converge: %+v", post)
	}
	if post.ConvergeCall <= 0 || post.ConvergeCall > post.Calls {
		t.Errorf("post-drift converge call %d out of range (1..%d)", post.ConvergeCall, post.Calls)
	}
	if len(post.Promoted) != 1 || post.Promoted[0].Old != "pairwise" || post.Promoted[0].New != "node-aware" {
		t.Errorf("post-drift promotions %+v, want pairwise -> node-aware", post.Promoted)
	}
	if d.ReconvergeSpeedup < 1.5 {
		t.Errorf("re-convergence speedup %.2fx, want >= 1.5x (stale %.3e s vs converged %.3e s)",
			d.ReconvergeSpeedup, d.StaleSeconds, d.ConvergedSeconds)
	}

	// The snapshot round-trips through the atomic artifact writer.
	path := filepath.Join(t.TempDir(), "drift.json")
	if err := d.Save(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Drift
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Version != DriftVersion || len(back.Phases) != 2 || back.ReconvergeSpeedup != d.ReconvergeSpeedup {
		t.Errorf("snapshot round-trip mismatch: %+v", back)
	}
}

// TestDriftMaxRanksFloor: the staged winner flip is shape dependent, so
// a cap below the fixed world must fail fast rather than silently shrink.
func TestDriftMaxRanksFloor(t *testing.T) {
	t.Parallel()
	if _, err := RunDrift(16, nil); err == nil {
		t.Fatal("RunDrift accepted a cap below its world")
	}
}
