package bench

import (
	"fmt"
	"sort"

	"alltoallx/internal/core"
	"alltoallx/internal/trace"
)

// XKind names the x-axis of an experiment.
type XKind int

const (
	// XSize sweeps per-process message size in bytes (most figures).
	XSize XKind = iota
	// XNodes sweeps node count (Figures 11, 12, 15).
	XNodes
	// XPPG sweeps locality-aware group size; the value 0 denotes the
	// node-aware algorithm, i.e. one whole-node group (Figure 16).
	XPPG
)

func (k XKind) String() string {
	switch k {
	case XSize:
		return "msg-size-bytes"
	case XNodes:
		return "nodes"
	case XPPG:
		return "procs-per-group"
	}
	return fmt.Sprintf("XKind(%d)", int(k))
}

// Series is one plotted line or bar group.
type Series struct {
	// Label as it appears in the paper's legend.
	Label string
	// Algo and Opts select the algorithm (Algo may be overridden by an
	// XPPG sweep).
	Algo string
	Opts core.Options
	// Phase, when non-empty, reports that internal phase instead of the
	// total (breakdown figures).
	Phase trace.Phase
}

// Experiment describes one paper table or figure.
type Experiment struct {
	// ID is the registry key, e.g. "fig10".
	ID string
	// Title is the paper's caption, abbreviated.
	Title string
	// Machine is the netmodel preset name.
	Machine string
	// Op selects the measured collective (zero = fixed-size alltoall; the
	// paper's figures all measure it). OpAlltoallv experiments sweep the
	// mean payload per peer of the Zipf-skewed scenario.
	Op core.Op
	// XAxis and Xs define the sweep.
	XAxis XKind
	Xs    []int
	// Nodes is the node count for non-XNodes experiments.
	Nodes int
	// Block is the per-process message size for non-XSize experiments.
	Block int
	// Series are the plotted lines/bars.
	Series []Series
	// Expectation states the qualitative shape the paper reports, the
	// criterion EXPERIMENTS.md checks against.
	Expectation string
}

// paper sweep: 4 B to 4096 B, powers of two (Figure 13 x-axis labels).
func sizes4to4096() []int {
	var out []int
	for s := 4; s <= 4096; s *= 2 {
		out = append(out, s)
	}
	return out
}

// Tuolomne's Figure 18 extends to 8 KiB.
func sizes4to8192() []int { return append(sizes4to4096(), 8192) }

func nodes2to32() []int { return []int{2, 4, 8, 16, 32} }

const (
	pw = core.InnerPairwise
	nb = core.InnerNonblocking
)

// Experiments returns every reproduced experiment in paper order.
func Experiments() []Experiment {
	all := []Experiment{
		{
			ID: "fig7", Title: "Hierarchical vs Multileader (Dane, 32 nodes)",
			Machine: "Dane", XAxis: XSize, Xs: sizes4to4096(), Nodes: 32,
			Series: []Series{
				{Label: "System MPI", Algo: "system-mpi"},
				{Label: "Hierarchical", Algo: "hierarchical", Opts: core.Options{Inner: pw}},
				{Label: "Hierarchical (nb)", Algo: "hierarchical", Opts: core.Options{Inner: nb}},
				{Label: "4 Proc Per Leader", Algo: "multileader", Opts: core.Options{Inner: pw, PPL: 4}},
				{Label: "4 PPL (nb)", Algo: "multileader", Opts: core.Options{Inner: nb, PPL: 4}},
				{Label: "8 Proc Per Leader", Algo: "multileader", Opts: core.Options{Inner: pw, PPL: 8}},
				{Label: "8 PPL (nb)", Algo: "multileader", Opts: core.Options{Inner: nb, PPL: 8}},
				{Label: "16 Proc Per Leader", Algo: "multileader", Opts: core.Options{Inner: pw, PPL: 16}},
				{Label: "16 PPL (nb)", Algo: "multileader", Opts: core.Options{Inner: nb, PPL: 16}},
			},
			Expectation: "Large sizes: more leaders win (4 PPL best, plain hierarchical worst). Small sizes: multileader beats hierarchical, fewer leaders preferred (16 PPL best among the tested multileader configs).",
		},
		{
			ID: "fig8", Title: "Node-Aware vs Locality-Aware (Dane, 32 nodes)",
			Machine: "Dane", XAxis: XSize, Xs: sizes4to4096(), Nodes: 32,
			Series: []Series{
				{Label: "System MPI", Algo: "system-mpi"},
				{Label: "Node-Aware", Algo: "node-aware", Opts: core.Options{Inner: pw}},
				{Label: "Node-Aware (nb)", Algo: "node-aware", Opts: core.Options{Inner: nb}},
				{Label: "4 Proc Per Group", Algo: "locality-aware", Opts: core.Options{Inner: pw, PPG: 4}},
				{Label: "4 PPG (nb)", Algo: "locality-aware", Opts: core.Options{Inner: nb, PPG: 4}},
				{Label: "8 Proc Per Group", Algo: "locality-aware", Opts: core.Options{Inner: pw, PPG: 8}},
				{Label: "8 PPG (nb)", Algo: "locality-aware", Opts: core.Options{Inner: nb, PPG: 8}},
				{Label: "16 Proc Per Group", Algo: "locality-aware", Opts: core.Options{Inner: pw, PPG: 16}},
				{Label: "16 PPG (nb)", Algo: "locality-aware", Opts: core.Options{Inner: nb, PPG: 16}},
			},
			Expectation: "Node-aware best for most sizes; locality-aware (small groups) overtakes it only at the largest tested size (4096 B).",
		},
		{
			ID: "fig9", Title: "Multileader + Node-Aware leader sweep (Dane, 32 nodes)",
			Machine: "Dane", XAxis: XSize, Xs: sizes4to4096(), Nodes: 32,
			Series: []Series{
				{Label: "System MPI", Algo: "system-mpi"},
				{Label: "Hierarchical", Algo: "hierarchical", Opts: core.Options{Inner: pw}},
				{Label: "4 Proc Per Leader", Algo: "multileader-node-aware", Opts: core.Options{Inner: pw, PPL: 4}},
				{Label: "4 PPL (nb)", Algo: "multileader-node-aware", Opts: core.Options{Inner: nb, PPL: 4}},
				{Label: "8 Proc Per Leader", Algo: "multileader-node-aware", Opts: core.Options{Inner: pw, PPL: 8}},
				{Label: "8 PPL (nb)", Algo: "multileader-node-aware", Opts: core.Options{Inner: nb, PPL: 8}},
				{Label: "16 Proc Per Leader", Algo: "multileader-node-aware", Opts: core.Options{Inner: pw, PPL: 16}},
				{Label: "16 PPL (nb)", Algo: "multileader-node-aware", Opts: core.Options{Inner: nb, PPL: 16}},
				{Label: "Node-Aware", Algo: "node-aware", Opts: core.Options{Inner: pw}},
			},
			Expectation: "Small sizes favor many-but-not-all leaders (around 4 PPL, ~28 leaders); one leader reduces to hierarchical, all-leaders reduces to node-aware.",
		},
		{
			ID: "fig10", Title: "All algorithms (Dane, 32 nodes, PPL=PPG=4)",
			Machine: "Dane", XAxis: XSize, Xs: sizes4to4096(), Nodes: 32,
			Series: []Series{
				{Label: "System MPI", Algo: "system-mpi"},
				{Label: "Hierarchical", Algo: "hierarchical", Opts: core.Options{Inner: pw}},
				{Label: "Node-Aware", Algo: "node-aware", Opts: core.Options{Inner: pw}},
				{Label: "Multileader", Algo: "multileader", Opts: core.Options{Inner: pw, PPL: 4}},
				{Label: "Locality-Aware", Algo: "locality-aware", Opts: core.Options{Inner: pw, PPG: 4}},
				{Label: "Multileader + Locality", Algo: "multileader-node-aware", Opts: core.Options{Inner: pw, PPL: 4}},
			},
			Expectation: "Multileader+node-aware best at small sizes (beating system MPI's Bruck); node-aware best at mid sizes; locality-aware best at the largest size.",
		},
		{
			ID: "fig11", Title: "Node scaling at 4 B (Dane)",
			Machine: "Dane", XAxis: XNodes, Xs: nodes2to32(), Block: 4,
			Series:      allSixSeries(),
			Expectation: "Multileader+node-aware fastest across node counts at 4 B; hierarchical and plain multileader trail system MPI.",
		},
		{
			ID: "fig12", Title: "Node scaling at 4096 B (Dane)",
			Machine: "Dane", XAxis: XNodes, Xs: nodes2to32(), Block: 4096,
			Series:      allSixSeries(),
			Expectation: "Node-aware and locality-aware fastest at 4096 B (about 3x over system MPI at 32 nodes); hierarchical worst.",
		},
		{
			ID: "fig13", Title: "Hierarchical timing breakdown (Dane, 32 nodes)",
			Machine: "Dane", XAxis: XSize, Xs: sizes4to4096(), Nodes: 32,
			Series: []Series{
				{Label: "MPI Gather", Algo: "hierarchical", Opts: core.Options{Inner: pw}, Phase: trace.PhaseGather},
				{Label: "MPI Scatter", Algo: "hierarchical", Opts: core.Options{Inner: pw}, Phase: trace.PhaseScatter},
				{Label: "Alltoall (Pairwise)", Algo: "hierarchical", Opts: core.Options{Inner: pw}, Phase: trace.PhaseInter},
				{Label: "Alltoall (Nonblocking)", Algo: "hierarchical", Opts: core.Options{Inner: nb}, Phase: trace.PhaseInter},
			},
			Expectation: "Leader all-to-all dominates below ~256 B (nonblocking beating pairwise until ~2 KiB); gather/scatter dominate at larger sizes.",
		},
		{
			ID: "fig14", Title: "Node-aware intra/inter breakdown (Dane, 32 nodes)",
			Machine: "Dane", XAxis: XSize, Xs: sizes4to4096(), Nodes: 32,
			Series: []Series{
				{Label: "Intra-Node (Pairwise)", Algo: "node-aware", Opts: core.Options{Inner: pw}, Phase: trace.PhaseIntra},
				{Label: "Inter-Node (Pairwise)", Algo: "node-aware", Opts: core.Options{Inner: pw}, Phase: trace.PhaseInter},
				{Label: "Intra-Node (Nonblocking)", Algo: "node-aware", Opts: core.Options{Inner: nb}, Phase: trace.PhaseIntra},
				{Label: "Inter-Node (Nonblocking)", Algo: "node-aware", Opts: core.Options{Inner: nb}, Phase: trace.PhaseInter},
			},
			Expectation: "Inter-node dominates at every size; intra-node scales along with it.",
		},
		{
			ID: "fig15", Title: "Node-aware breakdown vs node count (Dane, 4096 B, pairwise)",
			Machine: "Dane", XAxis: XNodes, Xs: nodes2to32(), Block: 4096,
			Series: []Series{
				{Label: "Intra-Node Alltoall", Algo: "node-aware", Opts: core.Options{Inner: pw}, Phase: trace.PhaseIntra},
				{Label: "Inter-Node Alltoall", Algo: "node-aware", Opts: core.Options{Inner: pw}, Phase: trace.PhaseInter},
			},
			Expectation: "Inter-node dominates at every node count; both components grow with scale.",
		},
		{
			ID: "fig16", Title: "Locality-aware breakdown vs group size (Dane, 4096 B, 32 nodes)",
			Machine: "Dane", XAxis: XPPG, Xs: []int{0, 16, 8, 4}, Nodes: 32, Block: 4096,
			Series: []Series{
				{Label: "Intra-Node Alltoall", Algo: "locality-aware", Opts: core.Options{Inner: pw}, Phase: trace.PhaseIntra},
				{Label: "Inter-Node Alltoall", Algo: "locality-aware", Opts: core.Options{Inner: pw}, Phase: trace.PhaseInter},
			},
			Expectation: "Inter-node dominates in every configuration; 16 and 4 PPG show slightly better inter-node time than 8 PPG and node-aware (group-size tuning is not single-modal).",
		},
		{
			ID: "fig17", Title: "Best algorithms on Amber (32 nodes)",
			Machine: "Amber", XAxis: XSize, Xs: sizes4to4096(), Nodes: 32,
			Series:      bestFourSeries(),
			Expectation: "Like Dane: multileader+node-aware best at small sizes, node-aware best at large sizes.",
		},
		{
			ID: "fig18", Title: "Best algorithms on Tuolomne (32 nodes)",
			Machine: "Tuolomne", XAxis: XSize, Xs: sizes4to8192(), Nodes: 32,
			Series:      bestFourSeries(),
			Expectation: "Node-aware best at small sizes with system MPI close behind; system MPI best at large sizes.",
		},
		{
			ID: "alltoallv", Title: "Alltoallv with Zipf-skewed counts (Dane, 32 nodes)",
			Machine: "Dane", Op: core.OpAlltoallv, XAxis: XSize, Xs: sizes4to4096(), Nodes: 32,
			Series: []Series{
				{Label: "Pairwise", Algo: "pairwise"},
				{Label: "Nonblocking", Algo: "nonblocking"},
				{Label: "Node-Aware", Algo: "node-aware", Opts: core.Options{Inner: pw}},
				{Label: "Locality-Aware", Algo: "locality-aware", Opts: core.Options{Inner: pw, PPG: 4}},
			},
			Expectation: "Leader aggregation (node-aware) wins at small and medium mean sizes where per-message " +
				"overheads dominate the skewed exchange; the flat variants close the gap as payloads grow.",
		},
	}
	return all
}

func allSixSeries() []Series {
	return []Series{
		{Label: "System MPI", Algo: "system-mpi"},
		{Label: "Hierarchical", Algo: "hierarchical", Opts: core.Options{Inner: pw}},
		{Label: "Node-Aware", Algo: "node-aware", Opts: core.Options{Inner: pw}},
		{Label: "Multileader", Algo: "multileader", Opts: core.Options{Inner: pw, PPL: 4}},
		{Label: "Locality-Aware", Algo: "locality-aware", Opts: core.Options{Inner: pw, PPG: 4}},
		{Label: "Multileader + Locality", Algo: "multileader-node-aware", Opts: core.Options{Inner: pw, PPL: 4}},
	}
}

func bestFourSeries() []Series {
	return []Series{
		{Label: "System MPI", Algo: "system-mpi"},
		{Label: "Node-Aware", Algo: "node-aware", Opts: core.Options{Inner: pw}},
		{Label: "Locality-Aware", Algo: "locality-aware", Opts: core.Options{Inner: pw, PPG: 4}},
		{Label: "Multileader + Locality", Algo: "multileader-node-aware", Opts: core.Options{Inner: pw, PPL: 4}},
	}
}

// Lookup returns the experiment with the given ID.
func Lookup(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range Experiments() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (have %v and table1)", id, ids)
}
