package bench

import (
	"fmt"
	"io"
	"strings"

	"alltoallx/internal/netmodel"
)

// Format writes the table as aligned text with the experiment header.
func (t *Table) Format(w io.Writer) error {
	header := fmt.Sprintf("%s — %s\nmachine=%s nodes=%d ppn=%d scale=%s runs=%d\npaper shape: %s\n",
		t.Exp.ID, t.Exp.Title, t.Machine.Name, t.Nodes, t.PPN, t.Scale.Name, t.Scale.Runs, t.Exp.Expectation)
	if _, err := io.WriteString(w, header); err != nil {
		return err
	}
	cols := make([]string, 0, len(t.Labels)+1)
	cols = append(cols, t.Exp.XAxis.String())
	cols = append(cols, t.Labels...)
	widths := make([]int, len(cols))
	rows := [][]string{cols}
	for xi, x := range t.Xs {
		row := make([]string, 0, len(cols))
		xv := fmt.Sprintf("%d", x)
		if t.Exp.XAxis == XPPG && x == 0 {
			xv = "node-aware"
		}
		row = append(row, xv)
		for si := range t.Labels {
			row = append(row, fmt.Sprintf("%.4e", t.Values[xi][si]))
		}
		rows = append(rows, row)
	}
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		parts := make([]string, len(row))
		for i, cell := range row {
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		if _, err := fmt.Fprintln(w, "  "+strings.Join(parts, "  ")); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// CSV writes the table as comma-separated values (one header row; times in
// seconds).
func (t *Table) CSV(w io.Writer) error {
	cols := append([]string{t.Exp.XAxis.String()}, t.Labels...)
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for xi, x := range t.Xs {
		parts := make([]string, 0, len(cols))
		parts = append(parts, fmt.Sprintf("%d", x))
		for si := range t.Labels {
			parts = append(parts, fmt.Sprintf("%.9e", t.Values[xi][si]))
		}
		if _, err := fmt.Fprintln(w, strings.Join(parts, ",")); err != nil {
			return err
		}
	}
	return nil
}

// FormatTable1 renders the paper's Table 1 (system architectures) from the
// machine presets.
func FormatTable1(w io.Writer) error {
	rows := [][]string{{"Name", "CPU", "Network", "MPI", "LibFabric", "Cores/Node"}}
	for _, m := range netmodel.Machines() {
		rows = append(rows, []string{
			m.Name, m.CPU, m.Network, m.MPIName, m.LibFabric,
			fmt.Sprintf("%d", m.Node.CoresPerNode()),
		})
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if _, err := fmt.Fprintln(w, "table1 — System Architectures (paper Table 1)"); err != nil {
		return err
	}
	for _, row := range rows {
		parts := make([]string, len(row))
		for i, cell := range row {
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		if _, err := fmt.Fprintln(w, "  "+strings.Join(parts, "  ")); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
