package bench

import (
	"fmt"
	"io"
	"strings"

	"alltoallx/internal/comm"
	"alltoallx/internal/core"
	"alltoallx/internal/netmodel"
	"alltoallx/internal/sim"
)

// This file implements the "overlap" experiment: how much of each
// algorithm's all-to-all hides behind application compute when the
// exchange is issued nonblockingly (Start / Compute / Wait) instead of
// blockingly. The simulator's overlap model banks the time a rank spends
// *waiting* during a started exchange and lets Compute draw it down, so
// the hideable fraction differs by algorithm: synchronization-heavy
// exchanges (pairwise) leave long waits on the table, while repack-heavy
// node-aware schemes keep the CPU busy and hide less.

// OverlapPoint is one algorithm's overlap measurement at one compute
// fraction.
type OverlapPoint struct {
	// Algo is the algorithm's registry name.
	Algo string
	// CommSeconds is the blocking exchange duration (max across ranks,
	// min across runs — the standard methodology).
	CommSeconds float64
	// ComputeSeconds is the modeled compute issued between Start and
	// Wait: Frac * CommSeconds.
	ComputeSeconds float64
	// SeqSeconds is the no-overlap baseline, CommSeconds +
	// ComputeSeconds (a blocking program pays the straight sum).
	SeqSeconds float64
	// AsyncSeconds is the measured Start / Compute / Wait duration.
	AsyncSeconds float64
	// Hidden is the communication time that disappeared behind compute:
	// SeqSeconds - AsyncSeconds, clamped to [0, min(comm, compute)].
	Hidden float64
	// HiddenFrac is the overlap efficiency: Hidden divided by the best
	// possible overlap min(CommSeconds, ComputeSeconds). 1.0 means the
	// exchange hid perfectly; 0 means Start+Compute+Wait cost the same
	// as the blocking sequence.
	HiddenFrac float64
}

// OverlapTable is a completed overlap experiment.
type OverlapTable struct {
	Machine netmodel.Params
	Nodes   int
	PPN     int
	Block   int
	Frac    float64
	Runs    int
	Rows    []OverlapPoint
}

// RunOverlap measures overlap efficiency for each algorithm on the named
// machine preset: first the blocking exchange time T, then a
// Start / Compute(frac*T) / Wait sequence under the same seeds. The scale
// sets PPN and repetitions exactly as for the figure experiments.
func RunOverlap(machineName string, scale Scale, nodes, block int, algos []string, frac float64, progress func(string)) (*OverlapTable, error) {
	machine, err := netmodel.ByName(machineName)
	if err != nil {
		return nil, err
	}
	if frac <= 0 {
		return nil, fmt.Errorf("bench: overlap compute fraction must be positive, got %g", frac)
	}
	if nodes <= 0 {
		nodes = 8
	}
	if scale.NodeCap > 0 && nodes > scale.NodeCap {
		nodes = scale.NodeCap
	}
	ppn := machine.Node.CoresPerNode()
	if scale.PPN > 0 && scale.PPN < ppn {
		ppn = scale.PPN
	}
	if block <= 0 {
		block = 4096
	}
	t := &OverlapTable{Machine: machine, Nodes: nodes, PPN: ppn, Block: block, Frac: frac, Runs: scale.Runs}
	for _, algo := range algos {
		algo = strings.TrimSpace(algo)
		if algo == "" {
			continue
		}
		cfg := Config{Machine: machine, Nodes: nodes, PPN: ppn, Algo: algo, Block: block, Runs: scale.Runs}
		// Leader/group sizes must divide the (possibly reduced) ppn, as in
		// the figure experiments.
		switch algo {
		case "multileader", "multileader-node-aware":
			cfg.Opts.PPL = nearestDivisor(4, ppn)
		case "locality-aware":
			cfg.Opts.PPG = nearestDivisor(4, ppn)
		}
		pt, err := Measure(cfg)
		if err != nil {
			return nil, err
		}
		row, err := measureOverlap(cfg, pt.Seconds, frac)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, row)
		if progress != nil {
			progress(fmt.Sprintf("overlap: %q comm %.3e s, async %.3e s -> hidden %.0f%%",
				algo, row.CommSeconds, row.AsyncSeconds, row.HiddenFrac*100))
		}
	}
	if len(t.Rows) == 0 {
		return nil, fmt.Errorf("bench: overlap experiment has no algorithms")
	}
	return t, nil
}

// measureOverlap times Start / Compute / Wait for one algorithm, reusing
// the blocking measurement's seeds so the two differ only in issue order.
func measureOverlap(cfg Config, commSeconds, frac float64) (OverlapPoint, error) {
	compute := frac * commSeconds
	opts := cfg.Opts
	scale := 1.0
	if cfg.Algo == "system-mpi" {
		if opts.Sys.SmallAlgo == "" {
			opts.Sys = cfg.Machine.Sys
		}
		scale = cfg.Machine.Sys.OverheadScale
	}
	p := cfg.Nodes * cfg.PPN
	best := -1.0
	for run := 0; run < cfg.Runs; run++ {
		durations := make([]float64, p)
		cc := sim.ClusterConfig{
			Model: cfg.Machine, Nodes: cfg.Nodes, PPN: cfg.PPN,
			Seed: cfg.BaseSeed + int64(run) + 1, OverheadScale: scale,
		}
		_, err := sim.RunCluster(cc, func(c comm.Comm) error {
			a, err := core.New(cfg.Algo, c, cfg.Block, opts)
			if err != nil {
				return err
			}
			send := comm.Virtual(c.Size() * cfg.Block)
			recv := comm.Virtual(c.Size() * cfg.Block)
			if err := c.Barrier(); err != nil {
				return err
			}
			t0 := c.Now()
			h, err := a.Start(send, recv, cfg.Block)
			if err != nil {
				return err
			}
			if err := c.Compute(compute); err != nil {
				return err
			}
			if err := h.Wait(); err != nil {
				return err
			}
			durations[c.Rank()] = c.Now() - t0
			return nil
		})
		if err != nil {
			return OverlapPoint{}, fmt.Errorf("bench: overlap %s nodes=%d ppn=%d block=%d run=%d: %w",
				cfg.Algo, cfg.Nodes, cfg.PPN, cfg.Block, run, err)
		}
		d := maxOf(durations)
		if best < 0 || d < best {
			best = d
		}
	}
	seq := commSeconds + compute
	hidden := seq - best
	limit := commSeconds
	if compute < limit {
		limit = compute
	}
	if hidden < 0 {
		hidden = 0
	}
	if hidden > limit {
		hidden = limit
	}
	row := OverlapPoint{
		Algo: cfg.Algo, CommSeconds: commSeconds, ComputeSeconds: compute,
		SeqSeconds: seq, AsyncSeconds: best, Hidden: hidden,
	}
	if limit > 0 {
		row.HiddenFrac = hidden / limit
	}
	return row, nil
}

// Format renders the overlap table.
func (t *OverlapTable) Format(w io.Writer) error {
	_, err := fmt.Fprintf(w, "overlap — %s, %d nodes x %d ranks, %d B blocks, compute = %.2f x T_comm (min of %d runs)\n",
		t.Machine.Name, t.Nodes, t.PPN, t.Block, t.Frac, t.Runs)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-24s %12s %12s %12s %12s %8s\n",
		"algorithm", "T_comm(s)", "compute(s)", "blocking(s)", "overlapped(s)", "hidden"); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if _, err := fmt.Fprintf(w, "%-24s %12.3e %12.3e %12.3e %12.3e %7.0f%%\n",
			r.Algo, r.CommSeconds, r.ComputeSeconds, r.SeqSeconds, r.AsyncSeconds, r.HiddenFrac*100); err != nil {
			return err
		}
	}
	_, err = fmt.Fprintln(w, "hidden = communication time that disappeared behind compute, as a share of min(T_comm, compute)")
	return err
}

// CSV writes the overlap table as CSV.
func (t *OverlapTable) CSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "algorithm,comm_s,compute_s,blocking_s,overlapped_s,hidden_s,hidden_frac"); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if _, err := fmt.Fprintf(w, "%s,%g,%g,%g,%g,%g,%g\n",
			r.Algo, r.CommSeconds, r.ComputeSeconds, r.SeqSeconds, r.AsyncSeconds, r.Hidden, r.HiddenFrac); err != nil {
			return err
		}
	}
	return nil
}
