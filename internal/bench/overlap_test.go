package bench

import (
	"strings"
	"testing"

	"alltoallx/internal/netmodel"
)

// TestRunOverlap runs a tiny overlap experiment end to end and sanity-
// checks the model's invariants: the async time never beats the exchange
// itself, never exceeds the blocking sequence, and the hidden fraction is
// a valid share.
func TestRunOverlap(t *testing.T) {
	scale := Scale{Name: "test", Runs: 1, PPN: 4}
	tbl, err := RunOverlap("Dane", scale, 2, 1024, []string{"pairwise", "node-aware"}, 1.0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		if r.CommSeconds <= 0 {
			t.Errorf("%s: nonpositive comm time %g", r.Algo, r.CommSeconds)
		}
		if r.AsyncSeconds < r.CommSeconds*0.99 {
			t.Errorf("%s: async %g undercuts comm %g", r.Algo, r.AsyncSeconds, r.CommSeconds)
		}
		if r.AsyncSeconds > r.SeqSeconds*1.01 {
			t.Errorf("%s: async %g exceeds blocking sequence %g", r.Algo, r.AsyncSeconds, r.SeqSeconds)
		}
		if r.HiddenFrac < 0 || r.HiddenFrac > 1 {
			t.Errorf("%s: hidden fraction %g outside [0, 1]", r.Algo, r.HiddenFrac)
		}
	}
	// Direct exchanges wait more than they compute, so pairwise should
	// hide a substantial share behind compute.
	if tbl.Rows[0].HiddenFrac <= 0 {
		t.Errorf("pairwise hid nothing: the overlap model is inert")
	}
	var sb strings.Builder
	if err := tbl.Format(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "pairwise") || !strings.Contains(sb.String(), "hidden") {
		t.Errorf("Format output missing expected columns:\n%s", sb.String())
	}
	sb.Reset()
	if err := tbl.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(sb.String(), "\n"); got != 3 {
		t.Errorf("CSV lines = %d, want 3 (header + 2 rows)", got)
	}
}

// TestMeasureCachePhasesIsolated: mutating the Phases map of a returned
// point must not corrupt later cache hits for the same configuration.
func TestMeasureCachePhasesIsolated(t *testing.T) {
	machine, err := netmodel.ByName("Dane")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Machine: machine, Nodes: 2, PPN: 4, Algo: "node-aware", Block: 512, Runs: 1}
	key := cfg.Key()
	pt, err2 := Measure(cfg)
	if err2 != nil {
		t.Fatal(err2)
	}
	cachePut(key, pt)
	first, ok := cacheGet(key)
	if !ok {
		t.Fatal("cache miss after put")
	}
	for k := range first.Phases {
		first.Phases[k] = -42
	}
	second, _ := cacheGet(key)
	for k, v := range second.Phases {
		if v == -42 {
			t.Errorf("cache phase %q corrupted through a returned point", k)
		}
	}
}
