package bench

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Plot renders the table as an ASCII chart — log-scaled y (seconds), the
// experiment's x values as columns — so `alltoallbench -plot` shows the
// paper figures' shapes directly in a terminal. Each series is drawn with
// its own mark; column headers carry the x values.
func (t *Table) Plot(w io.Writer, height int) error {
	if height < 4 {
		height = 16
	}
	marks := []byte("*o+x#@%&$~^=")
	lo, hi := math.Inf(1), math.Inf(-1)
	for xi := range t.Xs {
		for si := range t.Labels {
			v := t.Values[xi][si]
			if v <= 0 {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if !(lo < hi) {
		hi = lo * 10
	}
	logLo, logHi := math.Log10(lo), math.Log10(hi)
	span := logHi - logLo
	if span == 0 {
		span = 1
	}
	const colW = 6
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", colW*len(t.Xs)))
	}
	for xi := range t.Xs {
		for si := range t.Labels {
			v := t.Values[xi][si]
			if v <= 0 {
				continue
			}
			row := int(math.Round((math.Log10(v) - logLo) / span * float64(height-1)))
			r := height - 1 - row // row 0 at top = max
			colChar := xi*colW + colW/2
			cell := &grid[r][colChar]
			if *cell == ' ' {
				*cell = marks[si%len(marks)]
			} else {
				*cell = '!' // collision: multiple series share this pixel
			}
		}
	}
	if _, err := fmt.Fprintf(w, "%s — %s (seconds, log scale)\n", t.Exp.ID, t.Exp.Title); err != nil {
		return err
	}
	for r := range grid {
		frac := float64(height-1-r) / float64(height-1)
		yval := math.Pow(10, logLo+frac*span)
		if _, err := fmt.Fprintf(w, "%9.2e |%s\n", yval, string(grid[r])); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%9s +%s\n", "", strings.Repeat("-", colW*len(t.Xs))); err != nil {
		return err
	}
	head := make([]string, len(t.Xs))
	for i, x := range t.Xs {
		label := fmt.Sprintf("%d", x)
		if t.Exp.XAxis == XPPG && x == 0 {
			label = "NA"
		}
		head[i] = fmt.Sprintf("%*s", colW, label)
	}
	if _, err := fmt.Fprintf(w, "%9s  %s  (%s)\n", "", strings.Join(head, ""), t.Exp.XAxis); err != nil {
		return err
	}
	for si, l := range t.Labels {
		if _, err := fmt.Fprintf(w, "%14c %s\n", marks[si%len(marks)], l); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
