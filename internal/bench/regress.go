package bench

import (
	"encoding/json"
	"fmt"
	"io"

	"alltoallx/internal/artifact"
	"alltoallx/internal/netmodel"
)

// This file is the performance-regression baseline: a fixed, seeded sweep
// of the algorithm family (including the generated direct-connect
// schedules) over a fixed world on all three Table 1 machines, emitted as
// machine-readable JSON. The committed snapshot (BENCH_regress.json at
// the repository root) is the trajectory anchor: future changes rerun the
// sweep and diff against it, so a perf regression in the simulator or an
// algorithm shows up as a JSON diff, not an anecdote.

// RegressVersion is the emitted format version.
const RegressVersion = 1

// Fixed regression world: small enough that the full sweep runs in CI
// seconds, large enough that node-aware aggregation and multi-hop
// schedules have real structure (4 nodes, 32 ranks — a power of two, so
// the hypercube schedule participates).
const (
	regressNodes = 4
	regressPPN   = 8
	regressRuns  = 2
	regressSeed  = 1
)

// regressSizes spans the paper's sweep corners: latency-bound, the
// mid-size crossover region, and bandwidth-bound blocks.
func regressSizes() []int { return []int{4, 64, 1024, 8192} }

// regressAlgos is the tracked family: the paper's main lines plus every
// schedule-backed direct-connect algorithm runnable at the world size.
func regressAlgos() []string {
	return []string{
		"pairwise", "nonblocking", "bruck",
		"node-aware", "multileader-node-aware",
		"sched:ring", "sched:torus", "sched:hypercube",
	}
}

// RegressPoint is one (algorithm, size) measurement.
type RegressPoint struct {
	// Block is the bytes per rank pair.
	Block int `json:"block"`
	// Seconds is the simulated collective time (max across ranks, min
	// across runs — the paper's methodology).
	Seconds float64 `json:"seconds"`
}

// RegressSeries is one algorithm's sweep on one machine.
type RegressSeries struct {
	Algo   string         `json:"algo"`
	Points []RegressPoint `json:"points"`
}

// RegressMachine is one machine's complete sweep.
type RegressMachine struct {
	Machine string          `json:"machine"`
	Nodes   int             `json:"nodes"`
	PPN     int             `json:"ppn"`
	Series  []RegressSeries `json:"series"`
}

// Regress is the full baseline artifact.
type Regress struct {
	Version int `json:"version"`
	// Runs and Seed pin the methodology so reruns are comparable.
	Runs     int              `json:"runs"`
	Seed     int64            `json:"seed"`
	Machines []RegressMachine `json:"machines"`
}

// RunRegress executes the fixed regression sweep on every Table 1
// machine. progress, if non-nil, receives one line per completed point.
func RunRegress(progress func(string)) (*Regress, error) {
	out := &Regress{Version: RegressVersion, Runs: regressRuns, Seed: regressSeed}
	for _, m := range netmodel.Machines() {
		rm := RegressMachine{Machine: m.Name, Nodes: regressNodes, PPN: regressPPN}
		for _, algo := range regressAlgos() {
			s := RegressSeries{Algo: algo}
			for _, block := range regressSizes() {
				cfg := Config{
					Machine: m, Nodes: regressNodes, PPN: regressPPN,
					Algo: algo, Block: block, Runs: regressRuns, BaseSeed: regressSeed,
				}
				key := cfg.Key()
				pt, ok := cacheGet(key)
				if !ok {
					var err error
					pt, err = Measure(cfg)
					if err != nil {
						return nil, fmt.Errorf("bench: regress %s/%s/%d: %w", m.Name, algo, block, err)
					}
					cachePut(key, pt)
				}
				s.Points = append(s.Points, RegressPoint{Block: block, Seconds: pt.Seconds})
				if progress != nil {
					progress(fmt.Sprintf("regress %s %s block=%d -> %.3e s", m.Name, algo, block, pt.Seconds))
				}
			}
			rm.Series = append(rm.Series, s)
		}
		out.Machines = append(out.Machines, rm)
	}
	return out, nil
}

// Encode writes the artifact as indented JSON.
func (r *Regress) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Save writes the artifact to path atomically, like every other
// persistent artifact in the repository (internal/artifact).
func (r *Regress) Save(path string) error {
	return artifact.Save(path, "bench: saving regress baseline", r.Encode)
}

// Format prints the sweep as text tables, one per machine.
func (r *Regress) Format(w io.Writer) error {
	for _, m := range r.Machines {
		fmt.Fprintf(w, "regress baseline — %s, %d nodes x %d ranks (min of %d runs)\n",
			m.Machine, m.Nodes, m.PPN, r.Runs)
		fmt.Fprintf(w, "%-24s", "algorithm \\ bytes")
		if len(m.Series) > 0 {
			for _, pt := range m.Series[0].Points {
				fmt.Fprintf(w, " %12d", pt.Block)
			}
		}
		fmt.Fprintln(w)
		for _, s := range m.Series {
			fmt.Fprintf(w, "%-24s", s.Algo)
			for _, pt := range s.Points {
				fmt.Fprintf(w, " %12.4e", pt.Seconds)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
	}
	return nil
}
