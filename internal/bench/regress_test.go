package bench

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func sampleRegress() *Regress {
	return &Regress{
		Version: RegressVersion, Runs: 2, Seed: 1,
		Machines: []RegressMachine{{
			Machine: "Dane", Nodes: 4, PPN: 8,
			Series: []RegressSeries{
				{Algo: "bruck", Points: []RegressPoint{{Block: 4, Seconds: 1e-5}, {Block: 64, Seconds: 2e-5}}},
				{Algo: "sched:ring", Points: []RegressPoint{{Block: 4, Seconds: 3e-5}, {Block: 64, Seconds: 4e-5}}},
			},
		}},
	}
}

func TestRegressEncodeRoundTrip(t *testing.T) {
	t.Parallel()
	r := sampleRegress()
	var buf bytes.Buffer
	if err := r.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	var got Regress
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, &got) {
		t.Fatalf("round trip mismatch:\nwant %+v\ngot  %+v", r, &got)
	}
}

func TestRegressSaveAndFormat(t *testing.T) {
	t.Parallel()
	r := sampleRegress()
	path := filepath.Join(t.TempDir(), "BENCH_regress.json")
	if err := r.Save(path); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Format(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Dane", "bruck", "sched:ring", "4 nodes x 8 ranks"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted output missing %q:\n%s", want, out)
		}
	}
}

// TestRegressAlgosConstructible: every tracked algorithm must exist in
// the registry at the fixed regression world (32 ranks, power of two), so
// a registry rename cannot silently break the baseline.
func TestRegressAlgosConstructible(t *testing.T) {
	t.Parallel()
	for _, algo := range regressAlgos() {
		cfg := Config{Algo: algo, Block: 4, Nodes: regressNodes, PPN: regressPPN}
		if cfg.Key() == "" {
			t.Fatalf("unkeyable config for %s", algo)
		}
	}
	// One real point end-to-end keeps RunRegress honest without paying
	// for the full three-machine sweep in unit tests.
	pt, err := Measure(Config{
		Machine: tinyDane(), Nodes: 2, PPN: 4,
		Algo: "sched:hypercube", Block: 8, Runs: 1, BaseSeed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pt.Seconds <= 0 {
		t.Fatalf("nonpositive simulated time %g", pt.Seconds)
	}
}
