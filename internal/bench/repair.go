package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"alltoallx/internal/artifact"
	"alltoallx/internal/sched"
)

// The repair experiment quantifies the failure-repair story: after one
// rank of a compiled schedule world dies, sched.Repair patches the
// surviving fabric around the hole and re-proves the result, versus the
// baseline of recompiling the whole world from scratch (regenerating
// every rank's slice and streaming it through the verifier — the
// runtime's large-world compilation path, which is also the only honest
// baseline: a shrunken world does not exist for shape-bound generators,
// a 32x32 torus has no 1023-rank form and a hypercube no non-power-of-
// two form at all). Both sides pay a full O(schedule) re-verification;
// the saving is route work, which repair confines to the ranks whose
// traffic crossed the dead rank — a thin neighborhood of the failure.
//
// The point timings are wall-clock, so no snapshot is committed (unlike
// BENCH_scale.json); the structural columns (rescheduled ranks, dropped
// and rerouted blocks, rounds) are deterministic.

// RepairVersion is the emitted format version.
const RepairVersion = 1

// repairPoints is the fixed sweep: each route-compiled generator family
// at world sizes its schedule volume keeps tractable (the ring moves
// Theta(p^3) staged blocks and stops first). The 1024-rank torus point
// is the headline: one dead rank reroutes a row-and-column neighborhood
// of ~2 sqrt(p) ranks out of 1024. The ring has no such locality — its
// detour is the complementary arc, which sweeps nearly every rank — so
// its saving is route-computation volume, not rank count.
func repairPoints() []struct {
	Gen   string
	Ranks int
} {
	return []struct {
		Gen   string
		Ranks int
	}{
		{"ring", 64},
		{"ring", 256},
		{"torus", 64},
		{"torus", 256},
		{"torus", 1024},
		{"hypercube", 64},
		{"hypercube", 256},
		{"hypercube", 1024},
	}
}

// repairDead picks the injected failure deterministically: an interior
// rank, so torus detours exercise both row and column dodges.
func repairDead(p int) int { return p/2 + 1 }

// RepairPoint is one (generator, world size) repair-vs-recompile
// measurement.
type RepairPoint struct {
	Gen   string `json:"gen"`
	Ranks int    `json:"ranks"`
	Dead  int    `json:"dead"`
	// Survivors is Ranks-1; Rescheduled the ranks whose programs needed
	// route work (every other survivor is a mechanical filter of the
	// original schedule). Rescheduled < Survivors is the saving.
	Survivors   int `json:"survivors"`
	Rescheduled int `json:"rescheduled"`
	// DroppedBlocks left with the dead rank; ReroutedBlocks were
	// detoured around it on the surviving fabric.
	DroppedBlocks  int `json:"droppedBlocks"`
	ReroutedBlocks int `json:"reroutedBlocks"`
	// Rounds after repair vs the original schedule (equal unless the
	// longest detour outgrew the round count).
	Rounds     int `json:"rounds"`
	BaseRounds int `json:"baseRounds"`
	// RepairSeconds times Repair + full dead-aware re-verification;
	// RecompileSeconds times the baseline (regenerate every slice +
	// streamed verification). Wall-clock — indicative, not snapshotted.
	RepairSeconds    float64 `json:"repairSeconds"`
	RecompileSeconds float64 `json:"recompileSeconds"`
}

// Repairs is the full repair-experiment artifact.
type Repairs struct {
	Version  int           `json:"version"`
	MaxRanks int           `json:"maxRanks"`
	Points   []RepairPoint `json:"points"`
}

// RunRepair executes the repair sweep up to maxRanks ranks (0 means the
// full 1024). progress, if non-nil, receives one line per point.
func RunRepair(maxRanks int, progress func(string)) (*Repairs, error) {
	if maxRanks == 0 {
		maxRanks = 1024
	}
	out := &Repairs{Version: RepairVersion, MaxRanks: maxRanks}
	for _, pt := range repairPoints() {
		if pt.Ranks > maxRanks {
			if progress != nil {
				progress(fmt.Sprintf("repair %s ranks=%d skipped (-maxranks %d)", pt.Gen, pt.Ranks, maxRanks))
			}
			continue
		}
		p, dead := pt.Ranks, repairDead(pt.Ranks)

		t0 := time.Now()
		rep, err := sched.Repair(pt.Gen, p, dead, nil)
		if err != nil {
			return nil, fmt.Errorf("bench: repair %s/%d: %w", pt.Gen, p, err)
		}
		if err := rep.Verify(); err != nil {
			return nil, fmt.Errorf("bench: repair %s/%d failed re-verification: %w", pt.Gen, p, err)
		}
		repairT := time.Since(t0)

		rp0, err := sched.GenerateRank(pt.Gen, p, 0, nil)
		if err != nil {
			return nil, fmt.Errorf("bench: repair %s/%d baseline: %w", pt.Gen, p, err)
		}
		// Count rounds from emitted programs on both sides: the slicers'
		// internal round figure is a hop count, one short of the emitted
		// round list.
		rep0, err := rep.Program(0)
		if err != nil {
			return nil, fmt.Errorf("bench: repair %s/%d: %w", pt.Gen, p, err)
		}
		t0 = time.Now()
		if err := sched.VerifyWorldSliced(pt.Gen, p, nil); err != nil {
			return nil, fmt.Errorf("bench: repair %s/%d recompile baseline: %w", pt.Gen, p, err)
		}
		recompileT := time.Since(t0)

		point := RepairPoint{
			Gen: pt.Gen, Ranks: p, Dead: dead,
			Survivors:        p - 1,
			Rescheduled:      len(rep.RescheduledRanks()),
			DroppedBlocks:    rep.DroppedBlocks(),
			ReroutedBlocks:   rep.ReroutedBlocks(),
			Rounds:           len(rep0.Rounds),
			BaseRounds:       len(rp0.Rounds),
			RepairSeconds:    repairT.Seconds(),
			RecompileSeconds: recompileT.Seconds(),
		}
		out.Points = append(out.Points, point)
		if progress != nil {
			progress(fmt.Sprintf("repair %s ranks=%d dead=%d -> %d/%d rescheduled, %.3fs vs %.3fs recompile",
				pt.Gen, p, dead, point.Rescheduled, point.Survivors, point.RepairSeconds, point.RecompileSeconds))
		}
	}
	if len(out.Points) == 0 {
		return nil, fmt.Errorf("bench: -maxranks %d below the smallest repair point (%d)", maxRanks, repairPoints()[0].Ranks)
	}
	return out, nil
}

// Encode writes the artifact as indented JSON.
func (r *Repairs) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Save writes the artifact to path atomically (internal/artifact).
func (r *Repairs) Save(path string) error {
	return artifact.Save(path, "bench: saving repair experiment", r.Encode)
}

// Format prints the experiment as a text table.
func (r *Repairs) Format(w io.Writer) error {
	fmt.Fprintf(w, "failure repair — patch + re-verify vs full recompile (one dead rank, shape preserved)\n")
	fmt.Fprintf(w, "%-10s %6s %6s %12s %9s %9s %8s %10s %12s\n",
		"generator", "ranks", "dead", "rescheduled", "dropped", "rerouted", "rounds", "repair s", "recompile s")
	for _, pt := range r.Points {
		rounds := fmt.Sprint(pt.Rounds)
		if pt.Rounds != pt.BaseRounds {
			rounds = fmt.Sprintf("%d(+%d)", pt.Rounds, pt.Rounds-pt.BaseRounds)
		}
		fmt.Fprintf(w, "%-10s %6d %6d %5d/%-6d %9d %9d %8s %10.4f %12.4f\n",
			pt.Gen, pt.Ranks, pt.Dead, pt.Rescheduled, pt.Survivors,
			pt.DroppedBlocks, pt.ReroutedBlocks, rounds, pt.RepairSeconds, pt.RecompileSeconds)
	}
	fmt.Fprintln(w)
	return nil
}
