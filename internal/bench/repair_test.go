package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestRunRepairQuick runs the capped sweep and checks the structural
// claims: repair confines route work to strictly fewer ranks than a
// full recompile touches, the patched worlds re-verify (RunRepair fails
// otherwise), and the artifact round-trips.
func TestRunRepairQuick(t *testing.T) {
	r, err := RunRepair(64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) == 0 {
		t.Fatal("no points")
	}
	gens := map[string]bool{}
	for _, pt := range r.Points {
		gens[pt.Gen] = true
		if pt.Rescheduled <= 0 || pt.Rescheduled > pt.Survivors {
			t.Errorf("%s@%d: rescheduled %d of %d survivors", pt.Gen, pt.Ranks, pt.Rescheduled, pt.Survivors)
		}
		// The localized families confine route work to a thin
		// neighborhood; the ring's complementary-arc detour does not.
		if pt.Gen != "ring" && pt.Rescheduled >= pt.Survivors {
			t.Errorf("%s@%d: rescheduled all %d survivors, want a strict subset",
				pt.Gen, pt.Ranks, pt.Rescheduled)
		}
		if pt.DroppedBlocks != 2*(pt.Ranks-1) {
			t.Errorf("%s@%d: dropped %d blocks, want 2(p-1) = %d",
				pt.Gen, pt.Ranks, pt.DroppedBlocks, 2*(pt.Ranks-1))
		}
		if pt.RepairSeconds <= 0 || pt.RecompileSeconds <= 0 {
			t.Errorf("%s@%d: non-positive timing", pt.Gen, pt.Ranks)
		}
		// Detours rejoin at the original rounds or extend past them —
		// repair never shortens the exchange.
		if pt.Rounds < pt.BaseRounds {
			t.Errorf("%s@%d: repaired rounds %d < original %d", pt.Gen, pt.Ranks, pt.Rounds, pt.BaseRounds)
		}
	}
	for _, g := range []string{"ring", "torus", "hypercube"} {
		if !gens[g] {
			t.Errorf("no %s point in the capped sweep", g)
		}
	}

	var buf bytes.Buffer
	if err := r.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	var back Repairs
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Version != RepairVersion || len(back.Points) != len(r.Points) {
		t.Fatalf("round-trip lost data: %+v", back)
	}
	var txt bytes.Buffer
	if err := r.Format(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "ring") {
		t.Fatalf("format output missing series:\n%s", txt.String())
	}
}

// TestRunRepairCapTooLow: a cap below the smallest point is an error,
// not an empty artifact.
func TestRunRepairCapTooLow(t *testing.T) {
	if _, err := RunRepair(32, nil); err == nil {
		t.Fatal("want error for -maxranks below the smallest point")
	}
}
