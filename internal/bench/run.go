package bench

import (
	"fmt"
	"sync"

	"alltoallx/internal/netmodel"
	"alltoallx/internal/trace"
)

// cache shares measurements across experiments in one process: figures 7
// through 12 reuse identical series (notably the expensive system-MPI
// points, which simulate ~13M messages each at full scale).
var cache = struct {
	mu sync.Mutex
	m  map[string]Point
}{m: make(map[string]Point)}

func cacheGet(key string) (Point, bool) {
	cache.mu.Lock()
	defer cache.mu.Unlock()
	pt, ok := cache.m[key]
	if ok {
		// Hand out a defensive copy of the phase map: every Phases() in
		// the operation layer already copies, and the cache must not be
		// the one place where a caller mutating a returned breakdown
		// corrupts timing state shared with later cache hits.
		pt.Phases = clonePhases(pt.Phases)
	}
	return pt, ok
}

func cachePut(key string, pt Point) {
	cache.mu.Lock()
	defer cache.mu.Unlock()
	pt.Phases = clonePhases(pt.Phases)
	cache.m[key] = pt
}

func clonePhases(m map[trace.Phase]float64) map[trace.Phase]float64 {
	if m == nil {
		return nil
	}
	out := make(map[trace.Phase]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Scale selects the size of a reproduction run.
type Scale struct {
	// Name labels the scale in reports.
	Name string
	// NodeCap caps swept node counts (0 = none).
	NodeCap int
	// PPN overrides ranks per node (0 = all cores, as the paper runs).
	PPN int
	// Runs is the repetitions per point.
	Runs int
	// SizeStride keeps every k-th message size (first and last always
	// kept).
	SizeStride int
}

// Full reproduces the paper's configuration: every core of every node,
// all 11 sizes, minimum of 3 runs.
func Full() Scale { return Scale{Name: "full", Runs: 3, SizeStride: 1} }

// Quick is a CI-friendly reduction: 8 nodes x 16 ranks, every other size,
// 2 runs. Shapes are preserved; absolute times shrink.
func Quick() Scale { return Scale{Name: "quick", NodeCap: 8, PPN: 16, Runs: 2, SizeStride: 2} }

// Table is a completed experiment: values[xi][si] in seconds.
type Table struct {
	Exp     Experiment
	Scale   Scale
	Machine netmodel.Params
	Nodes   int // node count used for non-XNodes sweeps
	PPN     int
	Xs      []int
	Labels  []string
	Values  [][]float64
	Points  [][]Point
}

// RunExperiment executes every point of the experiment at the given scale.
// progress, if non-nil, receives one line per completed point.
func RunExperiment(exp Experiment, scale Scale, progress func(string)) (*Table, error) {
	machine, err := netmodel.ByName(exp.Machine)
	if err != nil {
		return nil, err
	}
	ppn := machine.Node.CoresPerNode()
	if scale.PPN > 0 && scale.PPN < ppn {
		ppn = scale.PPN
	}
	nodes := exp.Nodes
	if nodes == 0 {
		nodes = 32
	}
	if scale.NodeCap > 0 && nodes > scale.NodeCap {
		nodes = scale.NodeCap
	}
	xs := sweepValues(exp, scale, ppn)
	if len(xs) == 0 {
		return nil, fmt.Errorf("bench: experiment %s has no x values at scale %s", exp.ID, scale.Name)
	}
	t := &Table{Exp: exp, Scale: scale, Machine: machine, Nodes: nodes, PPN: ppn, Xs: xs}
	for _, s := range exp.Series {
		t.Labels = append(t.Labels, s.Label)
	}
	for _, x := range xs {
		row := make([]float64, len(exp.Series))
		prow := make([]Point, len(exp.Series))
		for si, s := range exp.Series {
			cfg, err := pointConfig(exp, s, machine, nodes, ppn, x)
			if err != nil {
				return nil, err
			}
			cfg.Runs = scale.Runs
			key := cfg.Key()
			pt, ok := cacheGet(key)
			if !ok {
				pt, err = Measure(cfg)
				if err != nil {
					return nil, err
				}
				cachePut(key, pt)
				if progress != nil {
					progress(fmt.Sprintf("%s: %s=%d %q -> %.3e s (%d msgs)",
						exp.ID, exp.XAxis, x, s.Label, pt.Seconds, pt.Stats.Messages))
				}
			}
			v := pt.Seconds
			if s.Phase != "" {
				v = pt.Phases[s.Phase]
			}
			row[si] = v
			prow[si] = pt
		}
		t.Values = append(t.Values, row)
		t.Points = append(t.Points, prow)
	}
	return t, nil
}

// sweepValues applies the scale's reductions to the experiment's x axis.
func sweepValues(exp Experiment, scale Scale, ppn int) []int {
	var out []int
	switch exp.XAxis {
	case XSize:
		stride := scale.SizeStride
		if stride <= 0 {
			stride = 1
		}
		for i, v := range exp.Xs {
			if i%stride == 0 || i == len(exp.Xs)-1 {
				out = append(out, v)
			}
		}
	case XNodes:
		for _, v := range exp.Xs {
			if scale.NodeCap == 0 || v <= scale.NodeCap {
				out = append(out, v)
			}
		}
	case XPPG:
		for _, v := range exp.Xs {
			if v == 0 || (v <= ppn && ppn%v == 0) {
				out = append(out, v)
			}
		}
	}
	return out
}

// pointConfig resolves one (experiment, series, x) into a measurement
// config.
func pointConfig(exp Experiment, s Series, machine netmodel.Params, nodes, ppn, x int) (Config, error) {
	cfg := Config{Machine: machine, Nodes: nodes, PPN: ppn, Op: exp.Op, Algo: s.Algo, Opts: s.Opts, Block: exp.Block}
	switch exp.XAxis {
	case XSize:
		cfg.Block = x
	case XNodes:
		cfg.Nodes = x
	case XPPG:
		if x == 0 {
			cfg.Algo = "node-aware"
			cfg.Opts.PPG = 0
		} else {
			cfg.Algo = "locality-aware"
			cfg.Opts.PPG = x
		}
	}
	if cfg.Block <= 0 {
		return Config{}, fmt.Errorf("bench: %s/%s: block unresolved", exp.ID, s.Label)
	}
	// Leader/group sizes must divide the (possibly reduced) ppn; clamp to
	// the nearest divisor so Quick scale remains runnable.
	cfg.Opts.PPL = nearestDivisor(cfg.Opts.PPL, ppn)
	cfg.Opts.PPG = nearestDivisor(cfg.Opts.PPG, ppn)
	return cfg, nil
}

// nearestDivisor returns the largest divisor of ppn that is <= q (0 stays
// 0: "use default").
func nearestDivisor(q, ppn int) int {
	if q <= 0 {
		return q
	}
	if q > ppn {
		q = ppn
	}
	for ; q > 1; q-- {
		if ppn%q == 0 {
			return q
		}
	}
	return 1
}

// Headline computes the paper's headline claim from a completed fig10-like
// table: the best speedup of any of our algorithms over system MPI at any
// x. It returns the speedup and the x where it occurs.
func Headline(t *Table) (speedup float64, atX int, vs string) {
	sys := -1
	for i, l := range t.Labels {
		if l == "System MPI" {
			sys = i
		}
	}
	if sys < 0 {
		return 0, 0, ""
	}
	for xi, x := range t.Xs {
		for si, l := range t.Labels {
			if si == sys || t.Values[xi][si] <= 0 {
				continue
			}
			sp := t.Values[xi][sys] / t.Values[xi][si]
			if sp > speedup {
				speedup, atX, vs = sp, x, l
			}
		}
	}
	return speedup, atX, vs
}
