package bench

import (
	"encoding/json"
	"fmt"
	"io"

	"alltoallx/internal/artifact"
	"alltoallx/internal/netmodel"
)

// The scale experiment is the paper's scaling story past the old
// 128-rank schedule cap: a fixed, seeded sweep of rank counts from 256
// to 4096 on every Table 1 machine, comparing the loop-coded baselines
// against the rank-sliced direct-connect schedules. It exists because
// algorithm choice flips with scale (the SuperMUC lesson in PAPERS.md):
// the O(p^2)-message exchanges dominate small worlds while the
// logarithmic and toroidal schedules take over as p grows. The committed
// snapshot (BENCH_scale.json) anchors the trajectory like the regress
// baseline does.

// ScaleVersion is the emitted format version.
const ScaleVersion = 1

// Fixed scale-sweep methodology: one mid-size block, one seeded run per
// point (the top points simulate millions of messages; variance is not
// the object here — the scaling shape is), 32 ranks per node so every
// Table 1 machine can host the sweep.
const (
	scalePPN   = 32
	scaleBlock = 1024
	scaleRuns  = 1
	scaleSeed  = 1
)

// scaleRankPoints is the swept world sizes (powers of two so the
// hypercube schedule participates everywhere).
func scaleRankPoints() []int { return []int{256, 512, 1024, 2048, 4096} }

// scaleAlgos is the tracked family with per-algorithm rank caps: a cap
// reflects the cost of *executing* a candidate under the simulator, not
// of compiling it (rank-sliced compilation is O(slice) everywhere). The
// ring moves Theta(p^3) staged blocks per exchange and stops first; the
// torus's Theta(p^2 sqrt(p)) staging stops next; sched:bruck and
// sched:hypercube stop at 2048 (their per-block pack/unpack step counts
// make the 4096 point minutes of wall time for no extra story); the
// loop-coded baselines and sched:pairwise run to the top.
func scaleAlgos() []struct {
	Algo string
	Cap  int
} {
	return []struct {
		Algo string
		Cap  int
	}{
		{"pairwise", 4096},
		{"bruck", 4096},
		{"sched:pairwise", 4096},
		{"sched:bruck", 2048},
		{"sched:hypercube", 2048},
		{"sched:torus", 1024},
		{"sched:ring", 256},
	}
}

// ScalePoint is one (algorithm, world size) measurement.
type ScalePoint struct {
	// Ranks is the world size (Nodes = Ranks / PPN).
	Ranks int `json:"ranks"`
	// Seconds is the simulated collective time (max across ranks).
	Seconds float64 `json:"seconds"`
	// Messages is the point-to-point message count of the run.
	Messages uint64 `json:"messages"`
}

// ScaleSeries is one algorithm's sweep on one machine.
type ScaleSeries struct {
	Algo   string       `json:"algo"`
	Points []ScalePoint `json:"points"`
}

// ScaleMachine is one machine's complete sweep.
type ScaleMachine struct {
	Machine string        `json:"machine"`
	PPN     int           `json:"ppn"`
	Series  []ScaleSeries `json:"series"`
}

// Scaling is the full scale-sweep artifact.
type Scaling struct {
	Version int `json:"version"`
	// Runs, Seed and Block pin the methodology so reruns are comparable;
	// MaxRanks records how far this run swept (CI smoke runs stop early).
	Runs     int            `json:"runs"`
	Seed     int64          `json:"seed"`
	Block    int            `json:"block"`
	MaxRanks int            `json:"maxRanks"`
	Machines []ScaleMachine `json:"machines"`
}

// RunScale executes the scale sweep up to maxRanks ranks (0 means the
// full 4096) on every Table 1 machine. progress, if non-nil, receives one
// line per completed point.
func RunScale(maxRanks int, progress func(string)) (*Scaling, error) {
	if maxRanks == 0 {
		maxRanks = 4096
	}
	var ranks []int
	for _, p := range scaleRankPoints() {
		if p <= maxRanks {
			ranks = append(ranks, p)
		}
	}
	if len(ranks) == 0 {
		return nil, fmt.Errorf("bench: -maxranks %d below the smallest scale point (%d)", maxRanks, scaleRankPoints()[0])
	}
	out := &Scaling{Version: ScaleVersion, Runs: scaleRuns, Seed: scaleSeed, Block: scaleBlock, MaxRanks: maxRanks}
	for _, m := range netmodel.Machines() {
		rm := ScaleMachine{Machine: m.Name, PPN: scalePPN}
		for _, a := range scaleAlgos() {
			s := ScaleSeries{Algo: a.Algo}
			for _, p := range ranks {
				if p > a.Cap {
					if progress != nil {
						progress(fmt.Sprintf("scale %s %s ranks=%d skipped (execution cap %d)", m.Name, a.Algo, p, a.Cap))
					}
					continue
				}
				cfg := Config{
					Machine: m, Nodes: p / scalePPN, PPN: scalePPN,
					Algo: a.Algo, Block: scaleBlock, Runs: scaleRuns, BaseSeed: scaleSeed,
				}
				key := cfg.Key()
				pt, ok := cacheGet(key)
				if !ok {
					var err error
					pt, err = Measure(cfg)
					if err != nil {
						return nil, fmt.Errorf("bench: scale %s/%s/%d: %w", m.Name, a.Algo, p, err)
					}
					cachePut(key, pt)
				}
				s.Points = append(s.Points, ScalePoint{Ranks: p, Seconds: pt.Seconds, Messages: pt.Stats.Messages})
				if progress != nil {
					progress(fmt.Sprintf("scale %s %s ranks=%d -> %.3e s (%d msgs)", m.Name, a.Algo, p, pt.Seconds, pt.Stats.Messages))
				}
			}
			rm.Series = append(rm.Series, s)
		}
		out.Machines = append(out.Machines, rm)
	}
	return out, nil
}

// Encode writes the artifact as indented JSON.
func (s *Scaling) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Save writes the artifact to path atomically (internal/artifact).
func (s *Scaling) Save(path string) error {
	return artifact.Save(path, "bench: saving scale sweep", s.Encode)
}

// Format prints the sweep as text tables, one per machine.
func (s *Scaling) Format(w io.Writer) error {
	ranks := scaleRankPoints()
	for _, m := range s.Machines {
		fmt.Fprintf(w, "scale sweep — %s, %d ranks/node, block %d B (seeded, %d run)\n",
			m.Machine, m.PPN, s.Block, s.Runs)
		fmt.Fprintf(w, "%-18s", "algorithm \\ ranks")
		for _, p := range ranks {
			if p <= s.MaxRanks {
				fmt.Fprintf(w, " %12d", p)
			}
		}
		fmt.Fprintln(w)
		for _, sr := range m.Series {
			fmt.Fprintf(w, "%-18s", sr.Algo)
			byRanks := make(map[int]float64, len(sr.Points))
			for _, pt := range sr.Points {
				byRanks[pt.Ranks] = pt.Seconds
			}
			for _, p := range ranks {
				if p > s.MaxRanks {
					continue
				}
				if v, ok := byRanks[p]; ok {
					fmt.Fprintf(w, " %12.4e", v)
				} else {
					fmt.Fprintf(w, " %12s", "—")
				}
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
	}
	return nil
}
