package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"alltoallx/internal/netmodel"
)

// TestScaleMethodologyPinned freezes the sweep's fixed methodology: the
// committed BENCH_scale.json is only diffable against reruns if the
// world shapes, block size and seeding never drift silently.
func TestScaleMethodologyPinned(t *testing.T) {
	t.Parallel()
	if scalePPN != 32 || scaleBlock != 1024 || scaleRuns != 1 || scaleSeed != 1 {
		t.Fatalf("scale methodology drifted: ppn=%d block=%d runs=%d seed=%d", scalePPN, scaleBlock, scaleRuns, scaleSeed)
	}
	pts := scaleRankPoints()
	if pts[0] != 256 || pts[len(pts)-1] != 4096 {
		t.Fatalf("scale sweep must span 256..4096 ranks, got %v", pts)
	}
	for _, p := range pts {
		if p&(p-1) != 0 {
			t.Errorf("rank point %d not a power of two (hypercube must participate)", p)
		}
		if p%scalePPN != 0 {
			t.Errorf("rank point %d not divisible by ppn %d", p, scalePPN)
		}
	}
	caps := scaleAlgos()
	byAlgo := make(map[string]int, len(caps))
	for _, a := range caps {
		byAlgo[a.Algo] = a.Cap
	}
	// The headline of the sweep: at least one schedule-backed algorithm
	// runs at the full 4096 ranks — the point of rank slicing.
	if byAlgo["sched:pairwise"] != 4096 {
		t.Errorf("sched:pairwise capped at %d, want the full 4096", byAlgo["sched:pairwise"])
	}
	for _, m := range netmodel.Machines() {
		if cores := m.Node.CoresPerNode(); cores < scalePPN {
			t.Errorf("%s has %d cores/node, sweep needs %d", m.Name, cores, scalePPN)
		}
	}
}

// TestScaleArtifactRoundTrip checks the snapshot format and the Format
// renderer against a synthetic sweep (running a real one is the CI smoke
// step's job).
func TestScaleArtifactRoundTrip(t *testing.T) {
	t.Parallel()
	s := &Scaling{
		Version: ScaleVersion, Runs: scaleRuns, Seed: scaleSeed, Block: scaleBlock, MaxRanks: 512,
		Machines: []ScaleMachine{{
			Machine: "Dane", PPN: scalePPN,
			Series: []ScaleSeries{
				{Algo: "pairwise", Points: []ScalePoint{{Ranks: 256, Seconds: 1e-3, Messages: 65280}, {Ranks: 512, Seconds: 4e-3, Messages: 261632}}},
				{Algo: "sched:ring", Points: []ScalePoint{{Ranks: 256, Seconds: 2e-3, Messages: 65280}}},
			},
		}},
	}
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	var back Scaling
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Version != ScaleVersion || len(back.Machines) != 1 || len(back.Machines[0].Series) != 2 {
		t.Fatalf("round trip mangled: %+v", back)
	}
	var txt bytes.Buffer
	if err := s.Format(&txt); err != nil {
		t.Fatal(err)
	}
	out := txt.String()
	for _, want := range []string{"Dane", "pairwise", "sched:ring", "256", "512"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format output missing %q:\n%s", want, out)
		}
	}
	// A series capped below the sweep top renders a gap, not a zero.
	if !strings.Contains(out, "—") {
		t.Errorf("capped series should render a gap marker:\n%s", out)
	}
}

// TestScaleRejectsTinyMaxRanks: a cap below the smallest point is a
// usage error, not an empty artifact.
func TestScaleRejectsTinyMaxRanks(t *testing.T) {
	t.Parallel()
	if _, err := RunScale(100, nil); err == nil {
		t.Fatal("RunScale(100) succeeded with no sweepable points")
	}
}

// TestSchedScale4096 is the acceptance run: a schedule-backed algorithm
// constructs (rank-sliced), verifies (streamed) and runs at 4096 ranks
// under the simulator — 32x the old schedMaxRanks ceiling. ~1 minute of
// wall time (16.8M simulated messages), so -short skips it.
func TestSchedScale4096(t *testing.T) {
	if testing.Short() {
		t.Skip("4096-rank simulation (~1 min) skipped in -short mode")
	}
	t.Parallel()
	pt, err := Measure(Config{
		Machine: netmodel.Dane(), Nodes: 128, PPN: 32,
		Algo: "sched:pairwise", Block: 1024, Runs: 1, BaseSeed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The exchange sends every ordered pair exactly once; Measure's
	// pre-exchange barrier adds its p*log2(p) dissemination messages.
	const p = 4096
	if want := uint64(p*(p-1) + p*12); pt.Stats.Messages != want {
		t.Errorf("messages = %d, want %d (p(p-1) exchange + p*log2(p) barrier)", pt.Stats.Messages, want)
	}
	if pt.Seconds <= 0 {
		t.Errorf("nonpositive simulated time %g", pt.Seconds)
	}
}
