package bench

import "math/rand"

// vCountSeed fixes the Zipf stream of the alltoallv scenario: counts are
// part of the workload definition, not the measurement noise, so every
// run (and every candidate in an autotune sweep) sees the identical
// skewed matrix.
const vCountSeed = 42

// ZipfCounts builds the deterministic p x p count matrix of the skewed
// alltoallv scenario: counts[s][d] is the byte count rank s sends rank d.
// Each row draws Zipf-distributed weights (a few heavy destinations, a
// long tail of light ones — the shape of MoE token routing and graph
// exchanges) and is then scaled so every rank sends exactly p*mean bytes,
// keeping the total traffic of an alltoallv point comparable to the
// fixed-size point of the same block size.
func ZipfCounts(p, mean int) [][]int {
	rng := rand.New(rand.NewSource(vCountSeed))
	zipf := rand.NewZipf(rng, 1.4, 1, 1<<20)
	counts := make([][]int, p)
	for s := range counts {
		weights := make([]int, p)
		sum := 0
		for d := range weights {
			weights[d] = int(zipf.Uint64()) + 1
			sum += weights[d]
		}
		// Scale the row to exactly p*mean bytes; the integer-division
		// remainder (< p bytes) is spread round-robin from destination 0.
		total := p * mean
		row := make([]int, p)
		got := 0
		for d := range row {
			row[d] = weights[d] * total / sum
			got += row[d]
		}
		for d := 0; got < total; d = (d + 1) % p {
			row[d]++
			got++
		}
		counts[s] = row
	}
	return counts
}

// MaxTotal returns the collective maxTotal for a count matrix: the
// largest send or receive total of any rank — the value every rank must
// pass to core.NewV.
func MaxTotal(counts [][]int) int {
	max := 1
	p := len(counts)
	for r := 0; r < p; r++ {
		st, rt := 0, 0
		for i := 0; i < p; i++ {
			st += counts[r][i]
			rt += counts[i][r]
		}
		if st > max {
			max = st
		}
		if rt > max {
			max = rt
		}
	}
	return max
}
