// Package coll provides the collective building blocks the paper's
// Algorithms 3 and 5 are assembled from: gather and scatter (linear and
// binomial-tree variants), binomial broadcast, and a dissemination barrier.
// All operations are written against comm.Comm, so they run on both the
// live runtime and the simulator.
//
// Layout convention (matching MPI): Gather concatenates contributions in
// rank order into the root's receive buffer; Scatter distributes the root's
// send buffer in rank order. Both accept any root; the hierarchical
// algorithms always use root 0 (the leader is rank 0 of its local
// communicator), which is the fast path.
package coll

import (
	"fmt"

	"alltoallx/internal/comm"
)

// Kind selects a gather/scatter algorithm.
type Kind int

const (
	// Linear exchanges directly with the root: p-1 messages, no extra
	// copies. MPI libraries prefer it for large blocks.
	Linear Kind = iota
	// Binomial uses a binomial tree: log2(p) rounds, fewer messages at the
	// root, extra staging copies. Preferred for small blocks.
	Binomial
)

func (k Kind) String() string {
	switch k {
	case Linear:
		return "linear"
	case Binomial:
		return "binomial"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// allocLike returns a buffer of n bytes matching ref's virtualness, so
// staging buffers never force payload allocation in virtual simulations.
func allocLike(ref comm.Buffer, n int) comm.Buffer {
	if ref.IsVirtual() {
		return comm.Virtual(n)
	}
	return comm.Alloc(n)
}

// Gather collects equal-size contributions to root: every rank passes its
// send buffer; recv is significant only at root and must hold
// send.Len()*Size() bytes.
func Gather(c comm.Comm, root int, send, recv comm.Buffer, kind Kind, tag int) error {
	switch kind {
	case Linear:
		return gatherLinear(c, root, send, recv, tag)
	case Binomial:
		return gatherBinomial(c, root, send, recv, tag)
	}
	return fmt.Errorf("coll: unknown gather kind %v", kind)
}

func gatherLinear(c comm.Comm, root int, send, recv comm.Buffer, tag int) error {
	n, rank := c.Size(), c.Rank()
	if err := comm.CheckPeer(root, n); err != nil {
		return err
	}
	block := send.Len()
	if rank != root {
		return c.Send(send, root, tag)
	}
	if recv.Len() < block*n {
		return fmt.Errorf("coll: gather recv buffer %d short of %d", recv.Len(), block*n)
	}
	reqs := make([]comm.Request, 0, n-1)
	for r := 0; r < n; r++ {
		if r == root {
			continue
		}
		req, err := c.Irecv(recv.Slice(r*block, block), r, tag)
		if err != nil {
			return err
		}
		reqs = append(reqs, req)
	}
	if err := c.Memcpy(recv.Slice(root*block, block), send); err != nil {
		return err
	}
	return c.WaitAll(reqs)
}

// gatherBinomial gathers along a binomial tree in relative rank order
// (rel = (rank-root+n) mod n). Each rank accumulates the contiguous
// relative range [rel, rel+cnt) before forwarding it to its parent. For
// root != 0 the result arrives in relative order and is rotated into
// absolute order with one extra pass.
// subtreeExtent returns how many consecutive relative ranks the rank at
// relative position rel accumulates in a binomial tree over n ranks: its
// lowest set bit, clipped to the end of the rank space (n for the root).
func subtreeExtent(rel, n int) int {
	if rel == 0 {
		return n
	}
	low := rel & (-rel)
	if rel+low > n {
		return n - rel
	}
	return low
}

func gatherBinomial(c comm.Comm, root int, send, recv comm.Buffer, tag int) error {
	n, rank := c.Size(), c.Rank()
	if err := comm.CheckPeer(root, n); err != nil {
		return err
	}
	block := send.Len()
	if rank == root && recv.Len() < block*n {
		return fmt.Errorf("coll: gather recv buffer %d short of %d", recv.Len(), block*n)
	}
	rel := (rank - root + n) % n
	extent := subtreeExtent(rel, n)
	var stage comm.Buffer
	if rel == 0 && root == 0 {
		stage = recv // gather in place at a rank-0 root
	} else {
		stage = allocLike(send, extent*block)
	}
	if err := c.Memcpy(stage.Slice(0, block), send); err != nil {
		return err
	}
	for mask := 1; mask < n; mask <<= 1 {
		if rel&mask != 0 {
			parent := (rel - mask + root) % n
			return c.Send(stage.Slice(0, extent*block), parent, tag)
		}
		childRel := rel + mask
		if childRel < n {
			cnt := subtreeExtent(childRel, n)
			if err := c.Recv(stage.Slice(mask*block, cnt*block), (childRel+root)%n, tag); err != nil {
				return err
			}
		}
	}
	// Only the root reaches here (every non-root exits via its Send).
	if root == 0 {
		return nil // gathered in place
	}
	// Rotate relative order back to absolute rank order.
	for relIdx := 0; relIdx < n; relIdx++ {
		abs := (relIdx + root) % n
		if _, err := comm.CopyData(recv.Slice(abs*block, block), stage.Slice(relIdx*block, block)); err != nil {
			return err
		}
	}
	return c.ChargeCopy(n*block, n)
}

// Scatter distributes the root's send buffer (Size() equal blocks in rank
// order) so each rank receives its block into recv. send is significant
// only at root.
func Scatter(c comm.Comm, root int, send, recv comm.Buffer, kind Kind, tag int) error {
	switch kind {
	case Linear:
		return scatterLinear(c, root, send, recv, tag)
	case Binomial:
		return scatterBinomial(c, root, send, recv, tag)
	}
	return fmt.Errorf("coll: unknown scatter kind %v", kind)
}

func scatterLinear(c comm.Comm, root int, send, recv comm.Buffer, tag int) error {
	n, rank := c.Size(), c.Rank()
	if err := comm.CheckPeer(root, n); err != nil {
		return err
	}
	block := recv.Len()
	if rank != root {
		return c.Recv(recv, root, tag)
	}
	if send.Len() < block*n {
		return fmt.Errorf("coll: scatter send buffer %d short of %d", send.Len(), block*n)
	}
	reqs := make([]comm.Request, 0, n-1)
	for r := 0; r < n; r++ {
		if r == root {
			continue
		}
		req, err := c.Isend(send.Slice(r*block, block), r, tag)
		if err != nil {
			return err
		}
		reqs = append(reqs, req)
	}
	if err := c.Memcpy(recv, send.Slice(root*block, block)); err != nil {
		return err
	}
	return c.WaitAll(reqs)
}

// scatterBinomial reverses the binomial gather: blocks flow from the root
// down the tree in relative rank order.
func scatterBinomial(c comm.Comm, root int, send, recv comm.Buffer, tag int) error {
	n, rank := c.Size(), c.Rank()
	if err := comm.CheckPeer(root, n); err != nil {
		return err
	}
	block := recv.Len()
	rel := (rank - root + n) % n
	// myMask: the bit at which this rank attaches to its parent; also the
	// upper bound on the subtree it redistributes.
	myMask := 0
	if rel != 0 {
		for mask := 1; ; mask <<= 1 {
			if rel&mask != 0 {
				myMask = mask
				break
			}
		}
	} else {
		myMask = 1
		for myMask < n {
			myMask <<= 1
		}
	}
	extent := myMask
	if rel+extent > n {
		extent = n - rel
	}
	var stage comm.Buffer
	if rel == 0 {
		if send.Len() < block*n {
			return fmt.Errorf("coll: scatter send buffer %d short of %d", send.Len(), block*n)
		}
		if root == 0 {
			stage = send
		} else {
			// Rotate absolute order into relative order once at the root.
			stage = allocLike(recv, n*block)
			for relIdx := 0; relIdx < n; relIdx++ {
				abs := (relIdx + root) % n
				if _, err := comm.CopyData(stage.Slice(relIdx*block, block), send.Slice(abs*block, block)); err != nil {
					return err
				}
			}
			if err := c.ChargeCopy(n*block, n); err != nil {
				return err
			}
		}
	} else {
		if extent > 1 {
			stage = allocLike(recv, extent*block)
		} else {
			stage = recv
		}
		parent := (rel - myMask + root) % n
		if err := c.Recv(stage.Slice(0, extent*block), parent, tag); err != nil {
			return err
		}
	}
	for mask := myMask >> 1; mask >= 1; mask >>= 1 {
		childRel := rel + mask
		if childRel >= n {
			continue
		}
		cnt := mask
		if childRel+cnt > n {
			cnt = n - childRel
		}
		if err := c.Send(stage.Slice(mask*block, cnt*block), (childRel+root)%n, tag); err != nil {
			return err
		}
	}
	if rel == 0 {
		return c.Memcpy(recv, stage.Slice(0, block))
	}
	if extent > 1 {
		return c.Memcpy(recv, stage.Slice(0, block))
	}
	return nil // received directly into recv
}

// Bcast broadcasts the root's buffer to all ranks along a binomial tree.
func Bcast(c comm.Comm, root int, b comm.Buffer, tag int) error {
	n, rank := c.Size(), c.Rank()
	if err := comm.CheckPeer(root, n); err != nil {
		return err
	}
	rel := (rank - root + n) % n
	myMask := 0
	if rel != 0 {
		for mask := 1; ; mask <<= 1 {
			if rel&mask != 0 {
				myMask = mask
				break
			}
		}
		parent := (rel - myMask + root) % n
		if err := c.Recv(b, parent, tag); err != nil {
			return err
		}
	} else {
		myMask = 1
		for myMask < n {
			myMask <<= 1
		}
	}
	for mask := myMask >> 1; mask >= 1; mask >>= 1 {
		childRel := rel + mask
		if childRel >= n {
			continue
		}
		if err := c.Send(b, (childRel+root)%n, tag); err != nil {
			return err
		}
	}
	return nil
}

// Barrier is a dissemination barrier: ceil(log2 n) rounds of zero-byte
// exchanges. (The simulator's communicators implement their own Barrier
// with identical structure; this one serves the live runtime's
// sub-communicators and tests.)
func Barrier(c comm.Comm, tag int) error {
	n, rank := c.Size(), c.Rank()
	if n == 1 {
		return nil
	}
	empty := comm.Buffer{}
	round := 0
	for k := 1; k < n; k <<= 1 {
		to := (rank + k) % n
		from := (rank - k%n + n) % n
		if err := c.Sendrecv(empty, to, tag+round, empty, from, tag+round); err != nil {
			return fmt.Errorf("coll: barrier round %d: %w", round, err)
		}
		round++
	}
	return nil
}
