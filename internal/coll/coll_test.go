package coll

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"alltoallx/internal/comm"
	"alltoallx/internal/runtime"
)

// runWorld is a shorthand for spinning up n live ranks.
func runWorld(t *testing.T, n int, body func(c comm.Comm) error) {
	t.Helper()
	if err := runtime.Run(runtime.Config{Ranks: n}, body); err != nil {
		t.Fatal(err)
	}
}

func fillRank(b comm.Buffer, rank int) {
	for i := range b.Bytes() {
		b.Bytes()[i] = byte(rank*31 + i)
	}
}

func wantRank(rank, i int) byte { return byte(rank*31 + i) }

func TestGatherBothKindsAllRoots(t *testing.T) {
	t.Parallel()
	for _, kind := range []Kind{Linear, Binomial} {
		for _, n := range []int{1, 2, 3, 5, 8, 13} {
			for _, root := range []int{0, n - 1, n / 2} {
				kind, n, root := kind, n, root
				t.Run(fmt.Sprintf("%v/n%d/root%d", kind, n, root), func(t *testing.T) {
					t.Parallel()
					const block = 6
					runWorld(t, n, func(c comm.Comm) error {
						send := comm.Alloc(block)
						fillRank(send, c.Rank())
						var recv comm.Buffer
						if c.Rank() == root {
							recv = comm.Alloc(n * block)
						}
						if err := Gather(c, root, send, recv, kind, 10); err != nil {
							return err
						}
						if c.Rank() != root {
							return nil
						}
						for r := 0; r < n; r++ {
							for i := 0; i < block; i++ {
								if got := recv.Bytes()[r*block+i]; got != wantRank(r, i) {
									return fmt.Errorf("root recv[%d][%d] = %d, want %d", r, i, got, wantRank(r, i))
								}
							}
						}
						return nil
					})
				})
			}
		}
	}
}

func TestScatterBothKindsAllRoots(t *testing.T) {
	t.Parallel()
	for _, kind := range []Kind{Linear, Binomial} {
		for _, n := range []int{1, 2, 3, 5, 8, 13} {
			for _, root := range []int{0, n - 1, n / 2} {
				kind, n, root := kind, n, root
				t.Run(fmt.Sprintf("%v/n%d/root%d", kind, n, root), func(t *testing.T) {
					t.Parallel()
					const block = 5
					runWorld(t, n, func(c comm.Comm) error {
						var send comm.Buffer
						if c.Rank() == root {
							send = comm.Alloc(n * block)
							for r := 0; r < n; r++ {
								for i := 0; i < block; i++ {
									send.Bytes()[r*block+i] = wantRank(r, i)
								}
							}
						}
						recv := comm.Alloc(block)
						if err := Scatter(c, root, send, recv, kind, 20); err != nil {
							return err
						}
						for i := 0; i < block; i++ {
							if got := recv.Bytes()[i]; got != wantRank(c.Rank(), i) {
								return fmt.Errorf("rank %d recv[%d] = %d, want %d", c.Rank(), i, got, wantRank(c.Rank(), i))
							}
						}
						return nil
					})
				})
			}
		}
	}
}

// TestGatherScatterRoundTrip is a property test: scatter(gather(x)) == x
// for random payloads, sizes and roots.
func TestGatherScatterRoundTrip(t *testing.T) {
	t.Parallel()
	f := func(seed int64, nRaw, rootRaw, kindRaw uint8) bool {
		n := int(nRaw%9) + 1
		root := int(rootRaw) % n
		kind := Kind(kindRaw % 2)
		block := 4
		rng := rand.New(rand.NewSource(seed))
		inputs := make([][]byte, n)
		for r := range inputs {
			inputs[r] = make([]byte, block)
			rng.Read(inputs[r])
		}
		ok := true
		err := runtime.Run(runtime.Config{Ranks: n}, func(c comm.Comm) error {
			send := comm.Alloc(block)
			copy(send.Bytes(), inputs[c.Rank()])
			var mid comm.Buffer
			if c.Rank() == root {
				mid = comm.Alloc(n * block)
			}
			if err := Gather(c, root, send, mid, kind, 1); err != nil {
				return err
			}
			back := comm.Alloc(block)
			if err := Scatter(c, root, mid, back, kind, 2); err != nil {
				return err
			}
			if !bytes.Equal(back.Bytes(), inputs[c.Rank()]) {
				ok = false
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBcast(t *testing.T) {
	t.Parallel()
	for _, n := range []int{1, 2, 5, 9, 16} {
		for _, root := range []int{0, n - 1} {
			n, root := n, root
			t.Run(fmt.Sprintf("n%d/root%d", n, root), func(t *testing.T) {
				t.Parallel()
				runWorld(t, n, func(c comm.Comm) error {
					b := comm.Alloc(16)
					if c.Rank() == root {
						fillRank(b, root)
					}
					if err := Bcast(c, root, b, 30); err != nil {
						return err
					}
					for i := range b.Bytes() {
						if b.Bytes()[i] != wantRank(root, i) {
							return fmt.Errorf("rank %d byte %d = %d", c.Rank(), i, b.Bytes()[i])
						}
					}
					return nil
				})
			})
		}
	}
}

func TestBarrierCollective(t *testing.T) {
	t.Parallel()
	for _, n := range []int{1, 2, 7, 16} {
		n := n
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			t.Parallel()
			runWorld(t, n, func(c comm.Comm) error {
				for i := 0; i < 3; i++ {
					if err := Barrier(c, 1000); err != nil {
						return err
					}
				}
				return nil
			})
		})
	}
}

func TestGatherErrors(t *testing.T) {
	t.Parallel()
	runWorld(t, 2, func(c comm.Comm) error {
		send := comm.Alloc(4)
		if c.Rank() == 0 {
			if err := Gather(c, 0, send, comm.Alloc(4), Linear, 1); err == nil {
				return fmt.Errorf("short recv accepted (linear)")
			}
			if err := Gather(c, 0, send, comm.Alloc(4), Binomial, 1); err == nil {
				return fmt.Errorf("short recv accepted (binomial)")
			}
			if err := Gather(c, 9, send, comm.Alloc(8), Linear, 1); err == nil {
				return fmt.Errorf("bad root accepted")
			}
			if err := Gather(c, 0, send, comm.Alloc(8), Kind(9), 1); err == nil {
				return fmt.Errorf("bad kind accepted")
			}
			// Unblock rank 1's sends from the two short-recv attempts.
			ok := comm.Alloc(8)
			if err := Gather(c, 0, send, ok, Linear, 2); err != nil {
				return err
			}
			return Gather(c, 0, send, ok, Binomial, 3)
		}
		if err := Gather(c, 9, send, comm.Buffer{}, Linear, 1); err == nil {
			return fmt.Errorf("bad root accepted on non-root")
		}
		if err := Gather(c, 0, send, comm.Buffer{}, Kind(9), 1); err == nil {
			return fmt.Errorf("bad kind accepted on non-root")
		}
		if err := Gather(c, 0, send, comm.Buffer{}, Linear, 2); err != nil {
			return err
		}
		return Gather(c, 0, send, comm.Buffer{}, Binomial, 3)
	})
}

func TestSubtreeExtent(t *testing.T) {
	t.Parallel()
	cases := []struct{ rel, n, want int }{
		{0, 8, 8}, {1, 8, 1}, {2, 8, 2}, {3, 8, 1}, {4, 8, 4}, {6, 8, 2},
		{0, 6, 6}, {2, 6, 2}, {4, 6, 2}, {5, 6, 1},
		{4, 5, 1}, {0, 1, 1},
	}
	for _, tc := range cases {
		if got := subtreeExtent(tc.rel, tc.n); got != tc.want {
			t.Errorf("subtreeExtent(%d, %d) = %d, want %d", tc.rel, tc.n, got, tc.want)
		}
	}
	// Property: subtree extents tile the rank space exactly: the root's
	// children [mask, mask+extent) are disjoint and cover 1..n-1.
	f := func(nRaw uint8) bool {
		n := int(nRaw%63) + 1
		covered := make([]bool, n)
		covered[0] = true
		var visit func(rel int)
		visit = func(rel int) {
			low := subtreeExtent(rel, n)
			if rel != 0 {
				low = rel & (-rel)
			}
			for mask := 1; mask < low || rel == 0 && mask < n; mask <<= 1 {
				child := rel + mask
				if child >= n {
					break
				}
				if covered[child] {
					return
				}
				covered[child] = true
				visit(child)
			}
		}
		visit(0)
		for _, c := range covered {
			if !c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestKindString(t *testing.T) {
	t.Parallel()
	if Linear.String() != "linear" || Binomial.String() != "binomial" {
		t.Error("kind strings wrong")
	}
	if Kind(7).String() == "" {
		t.Error("unknown kind should still format")
	}
}
