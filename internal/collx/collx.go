// Package collx implements the paper's future-work direction (Section 5):
// extending the node-aware approach "on both other HPC critical collectives
// (allgather, broadcast, etc.) and AI critical collectives (allreduce,
// reduce-scatter, etc.)".
//
// Every collective follows the same persistent-operation pattern as the
// all-to-all family in internal/core: a registry of named algorithms, a
// collective constructor (NewAllgather, NewAllreduce, NewReduceScatter)
// that performs all communicator splitting during setup, core.Options for
// configuration, and Phases() for per-call timing. The registered
// node-aware variants apply the paper's aggregation idea — do the
// inter-node part once per node via leaders, keep everything else inside
// the node — while ring/bruck allgather, recursive-doubling allreduce and
// pairwise reduce-scatter are the flat baselines. The free functions in
// this file are the underlying one-shot exchanges; library users should
// prefer the registry constructors.
package collx

import (
	"fmt"

	"alltoallx/internal/comm"
)

// Tag bases for collx operations (distinct from core's).
const (
	tagAllgather = 401
	tagAllreduce = 501
	tagReduceSc  = 601
	tagBcastX    = 701
	tagReduce    = 801
)

// Op accumulates in into acc element-wise (acc += in). Implementations
// must tolerate arbitrary lengths that are multiples of their element
// size.
type Op func(acc, in []byte)

// SumInt64 adds little-endian int64 elements.
func SumInt64(acc, in []byte) {
	for i := 0; i+8 <= len(acc) && i+8 <= len(in); i += 8 {
		a := int64(leU64(acc[i:]))
		b := int64(leU64(in[i:]))
		putLeU64(acc[i:], uint64(a+b))
	}
}

// MaxInt64 keeps the element-wise maximum of little-endian int64s.
func MaxInt64(acc, in []byte) {
	for i := 0; i+8 <= len(acc) && i+8 <= len(in); i += 8 {
		a := int64(leU64(acc[i:]))
		b := int64(leU64(in[i:]))
		if b > a {
			putLeU64(acc[i:], uint64(b))
		}
	}
}

func leU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLeU64(b []byte, v uint64) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	b[4], b[5], b[6], b[7] = byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56)
}

// apply runs op on real buffers and charges the equivalent compute as a
// copy pass; virtual buffers charge only.
func apply(c comm.Comm, op Op, acc, in comm.Buffer) error {
	if !acc.IsVirtual() && !in.IsVirtual() {
		op(acc.Bytes(), in.Bytes())
	}
	return c.ChargeCopy(in.Len(), 1)
}

func allocLike(ref comm.Buffer, n int) comm.Buffer {
	if ref.IsVirtual() {
		return comm.Virtual(n)
	}
	return comm.Alloc(n)
}

// AllgatherRing gathers every rank's block to all ranks in p-1
// neighbor-to-neighbor steps: bandwidth-optimal, latency-heavy.
func AllgatherRing(c comm.Comm, send, recv comm.Buffer, block int) error {
	n, r := c.Size(), c.Rank()
	if err := checkAG(c, send, recv, block); err != nil {
		return err
	}
	if err := c.Memcpy(recv.Slice(r*block, block), send.Slice(0, block)); err != nil {
		return err
	}
	right := (r + 1) % n
	left := (r - 1 + n) % n
	for i := 0; i < n-1; i++ {
		outIdx := (r - i + n) % n
		inIdx := (r - i - 1 + n) % n
		if err := c.Sendrecv(
			recv.Slice(outIdx*block, block), right, tagAllgather+i,
			recv.Slice(inIdx*block, block), left, tagAllgather+i); err != nil {
			return fmt.Errorf("collx: allgather ring step %d: %w", i, err)
		}
	}
	return nil
}

// AllgatherBruck gathers in ceil(log2 p) doubling steps, then rotates —
// the latency-optimal variant (the paper's reference [1] extends it with
// locality awareness, mirrored here by NodeAware.Allgather).
func AllgatherBruck(c comm.Comm, send, recv comm.Buffer, block int) error {
	n, r := c.Size(), c.Rank()
	if err := checkAG(c, send, recv, block); err != nil {
		return err
	}
	tmp := allocLike(send, n*block)
	if err := c.Memcpy(tmp.Slice(0, block), send.Slice(0, block)); err != nil {
		return err
	}
	have := 1
	step := 0
	for have < n {
		cnt := have
		if have+cnt > n {
			cnt = n - have
		}
		dst := (r - have + n) % n
		src := (r + have) % n
		if err := c.Sendrecv(
			tmp.Slice(0, cnt*block), dst, tagAllgather+32+step,
			tmp.Slice(have*block, cnt*block), src, tagAllgather+32+step); err != nil {
			return fmt.Errorf("collx: allgather bruck step %d: %w", step, err)
		}
		have += cnt
		step++
	}
	// tmp[i] holds rank (r+i)%n's block; rotate into rank order.
	for i := 0; i < n; i++ {
		srcRank := (r + i) % n
		if _, err := comm.CopyData(recv.Slice(srcRank*block, block), tmp.Slice(i*block, block)); err != nil {
			return err
		}
	}
	return c.ChargeCopy(n*block, n)
}

func checkAG(c comm.Comm, send, recv comm.Buffer, block int) error {
	if block <= 0 {
		return fmt.Errorf("collx: block must be positive, got %d", block)
	}
	if send.Len() < block {
		return fmt.Errorf("collx: send buffer %d short of block %d", send.Len(), block)
	}
	if recv.Len() < block*c.Size() {
		return fmt.Errorf("collx: recv buffer %d short of %d", recv.Len(), block*c.Size())
	}
	return nil
}

// AllreduceRecursiveDoubling reduces buf element-wise across all ranks and
// leaves the full result on every rank. Non-power-of-two counts fold the
// extra ranks into the nearest power of two first (standard MPI scheme).
func AllreduceRecursiveDoubling(c comm.Comm, buf comm.Buffer, op Op) error {
	n, r := c.Size(), c.Rank()
	if n == 1 {
		return nil
	}
	pow2 := 1
	for pow2*2 <= n {
		pow2 *= 2
	}
	rem := n - pow2
	tmp := allocLike(buf, buf.Len())
	// Fold: ranks [pow2, n) send to [0, rem); those partners pre-reduce.
	if r >= pow2 {
		if err := c.Send(buf, r-pow2, tagAllreduce); err != nil {
			return err
		}
	} else if r < rem {
		if err := c.Recv(tmp, r+pow2, tagAllreduce); err != nil {
			return err
		}
		if err := apply(c, op, buf, tmp); err != nil {
			return err
		}
	}
	if r < pow2 {
		for mask := 1; mask < pow2; mask <<= 1 {
			partner := r ^ mask
			if err := c.Sendrecv(buf, partner, tagAllreduce+mask, tmp, partner, tagAllreduce+mask); err != nil {
				return fmt.Errorf("collx: allreduce mask %d: %w", mask, err)
			}
			if err := apply(c, op, buf, tmp); err != nil {
				return err
			}
		}
	}
	// Unfold: results back to the folded ranks.
	if r >= pow2 {
		return c.Recv(buf, r-pow2, tagAllreduce+1<<20)
	}
	if r < rem {
		return c.Send(buf, r+pow2, tagAllreduce+1<<20)
	}
	return nil
}

// ReduceScatterPairwise leaves, on each rank, the element-wise reduction
// of every rank's block for it: recv = sum over s of send_s[rank]. One of
// the paper's named AI-critical collectives.
func ReduceScatterPairwise(c comm.Comm, send, recv comm.Buffer, block int, op Op) error {
	n, r := c.Size(), c.Rank()
	if block <= 0 {
		return fmt.Errorf("collx: block must be positive, got %d", block)
	}
	if send.Len() < n*block {
		return fmt.Errorf("collx: send buffer %d short of %d", send.Len(), n*block)
	}
	if recv.Len() < block {
		return fmt.Errorf("collx: recv buffer %d short of block %d", recv.Len(), block)
	}
	if err := c.Memcpy(recv.Slice(0, block), send.Slice(r*block, block)); err != nil {
		return err
	}
	tmp := allocLike(send, block)
	for i := 1; i < n; i++ {
		dst := (r + i) % n
		src := (r - i + n) % n
		if err := c.Sendrecv(
			send.Slice(dst*block, block), dst, tagReduceSc+i,
			tmp, src, tagReduceSc+i); err != nil {
			return fmt.Errorf("collx: reduce-scatter step %d: %w", i, err)
		}
		if err := apply(c, op, recv.Slice(0, block), tmp); err != nil {
			return err
		}
	}
	return nil
}
