package collx

import (
	"fmt"
	"testing"
	"testing/quick"

	"alltoallx/internal/comm"
	"alltoallx/internal/netmodel"
	"alltoallx/internal/runtime"
	"alltoallx/internal/sim"
	"alltoallx/internal/topo"
)

func tinyMapping(t *testing.T, nodes, ppn int) *topo.Mapping {
	t.Helper()
	m, err := topo.NewMapping(topo.Spec{Sockets: 2, NumaPerSocket: 2, CoresPerNuma: 2}, nodes, ppn)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func putInt64s(b comm.Buffer, vals ...int64) {
	for i, v := range vals {
		putLeU64(b.Bytes()[i*8:], uint64(v))
	}
}

func getInt64(b comm.Buffer, i int) int64 { return int64(leU64(b.Bytes()[i*8:])) }

func TestLeU64RoundTrip(t *testing.T) {
	t.Parallel()
	f := func(v uint64) bool {
		var buf [8]byte
		putLeU64(buf[:], v)
		return leU64(buf[:]) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOps(t *testing.T) {
	t.Parallel()
	a, b := comm.Alloc(16), comm.Alloc(16)
	putInt64s(a, 5, -3)
	putInt64s(b, 7, -10)
	SumInt64(a.Bytes(), b.Bytes())
	if getInt64(a, 0) != 12 || getInt64(a, 1) != -13 {
		t.Errorf("SumInt64: %d, %d", getInt64(a, 0), getInt64(a, 1))
	}
	putInt64s(a, 5, -3)
	MaxInt64(a.Bytes(), b.Bytes())
	if getInt64(a, 0) != 7 || getInt64(a, 1) != -3 {
		t.Errorf("MaxInt64: %d, %d", getInt64(a, 0), getInt64(a, 1))
	}
}

// checkAllgather verifies recv holds every rank's pattern block.
func checkAllgather(recv comm.Buffer, p, block int) error {
	for r := 0; r < p; r++ {
		for i := 0; i < block; i++ {
			want := byte(r*13 + i)
			if got := recv.Bytes()[r*block+i]; got != want {
				return fmt.Errorf("allgather block %d byte %d: got %d, want %d", r, i, got, want)
			}
		}
	}
	return nil
}

func TestAllgatherFlat(t *testing.T) {
	t.Parallel()
	for _, algo := range []string{"ring", "bruck"} {
		for _, n := range []int{1, 2, 3, 7, 8, 12} {
			algo, n := algo, n
			t.Run(fmt.Sprintf("%s/n%d", algo, n), func(t *testing.T) {
				t.Parallel()
				const block = 5
				err := runtime.Run(runtime.Config{Ranks: n}, func(c comm.Comm) error {
					send := comm.Alloc(block)
					for i := range send.Bytes() {
						send.Bytes()[i] = byte(c.Rank()*13 + i)
					}
					recv := comm.Alloc(n * block)
					var err error
					if algo == "ring" {
						err = AllgatherRing(c, send, recv, block)
					} else {
						err = AllgatherBruck(c, send, recv, block)
					}
					if err != nil {
						return err
					}
					return checkAllgather(recv, n, block)
				})
				if err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestNodeAwareAllgather(t *testing.T) {
	t.Parallel()
	const block = 6
	m := tinyMapping(t, 3, 8)
	err := runtime.Run(runtime.Config{Mapping: m}, func(c comm.Comm) error {
		na, err := NewNodeAware(c)
		if err != nil {
			return err
		}
		p := c.Size()
		send := comm.Alloc(block)
		for i := range send.Bytes() {
			send.Bytes()[i] = byte(c.Rank()*13 + i)
		}
		recv := comm.Alloc(p * block)
		for iter := 0; iter < 2; iter++ { // persistent reuse
			if err := na.Allgather(send, recv, block); err != nil {
				return err
			}
			if err := checkAllgather(recv, p, block); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceFlatAndNodeAware(t *testing.T) {
	t.Parallel()
	for _, variant := range []string{"flat", "node-aware"} {
		for _, shape := range []struct{ nodes, ppn int }{{1, 5}, {2, 8}, {3, 4}, {2, 7}} {
			variant, shape := variant, shape
			t.Run(fmt.Sprintf("%s/%dx%d", variant, shape.nodes, shape.ppn), func(t *testing.T) {
				t.Parallel()
				m := tinyMapping(t, shape.nodes, shape.ppn)
				p := shape.nodes * shape.ppn
				wantSum := int64(0)
				for r := 0; r < p; r++ {
					wantSum += int64(r + 1)
				}
				err := runtime.Run(runtime.Config{Mapping: m}, func(c comm.Comm) error {
					buf := comm.Alloc(16)
					putInt64s(buf, int64(c.Rank()+1), int64(-(c.Rank() + 1)))
					var err error
					if variant == "flat" {
						err = AllreduceRecursiveDoubling(c, buf, SumInt64)
					} else {
						na, e := NewNodeAware(c)
						if e != nil {
							return e
						}
						err = na.Allreduce(buf, SumInt64)
					}
					if err != nil {
						return err
					}
					if getInt64(buf, 0) != wantSum || getInt64(buf, 1) != -wantSum {
						return fmt.Errorf("rank %d: got (%d, %d), want (%d, %d)",
							c.Rank(), getInt64(buf, 0), getInt64(buf, 1), wantSum, -wantSum)
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestReduceScatterFlatAndNodeAware(t *testing.T) {
	t.Parallel()
	for _, variant := range []string{"flat", "node-aware"} {
		variant := variant
		t.Run(variant, func(t *testing.T) {
			t.Parallel()
			m := tinyMapping(t, 2, 8)
			p := 16
			const block = 8
			err := runtime.Run(runtime.Config{Mapping: m}, func(c comm.Comm) error {
				send := comm.Alloc(p * block)
				// send block d = rank*1000 + d
				for d := 0; d < p; d++ {
					putLeU64(send.Bytes()[d*block:], uint64(int64(c.Rank()*1000+d)))
				}
				recv := comm.Alloc(block)
				var err error
				if variant == "flat" {
					err = ReduceScatterPairwise(c, send, recv, block, SumInt64)
				} else {
					na, e := NewNodeAware(c)
					if e != nil {
						return e
					}
					err = na.ReduceScatter(send, recv, block, SumInt64)
				}
				if err != nil {
					return err
				}
				// sum over s of (s*1000 + rank)
				want := int64(0)
				for s := 0; s < p; s++ {
					want += int64(s*1000 + c.Rank())
				}
				if got := getInt64(recv, 0); got != want {
					return fmt.Errorf("rank %d: got %d, want %d", c.Rank(), got, want)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestNodeAwareBcast(t *testing.T) {
	t.Parallel()
	for _, root := range []int{0, 5, 12} {
		root := root
		t.Run(fmt.Sprintf("root%d", root), func(t *testing.T) {
			t.Parallel()
			m := tinyMapping(t, 2, 8)
			err := runtime.Run(runtime.Config{Mapping: m}, func(c comm.Comm) error {
				na, err := NewNodeAware(c)
				if err != nil {
					return err
				}
				b := comm.Alloc(24)
				if c.Rank() == root {
					for i := range b.Bytes() {
						b.Bytes()[i] = byte(root*7 + i)
					}
				}
				if err := na.Bcast(root, b); err != nil {
					return err
				}
				for i := range b.Bytes() {
					if b.Bytes()[i] != byte(root*7+i) {
						return fmt.Errorf("rank %d byte %d = %d", c.Rank(), i, b.Bytes()[i])
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestAllreduceProperty: allreduce(sum) equals the serial sum for random
// inputs and rank counts.
func TestAllreduceProperty(t *testing.T) {
	t.Parallel()
	f := func(vals []int64, nRaw uint8) bool {
		n := int(nRaw%12) + 1
		if len(vals) < n {
			return true // not enough inputs to be interesting
		}
		var want int64
		for r := 0; r < n; r++ {
			want += vals[r]
		}
		ok := true
		err := runtime.Run(runtime.Config{Ranks: n}, func(c comm.Comm) error {
			buf := comm.Alloc(8)
			putLeU64(buf.Bytes(), uint64(vals[c.Rank()]))
			if err := AllreduceRecursiveDoubling(c, buf, SumInt64); err != nil {
				return err
			}
			if getInt64(buf, 0) != want {
				ok = false
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestNodeAwareUnderSimulation: the extensions run under the simulator
// with virtual buffers (the mode a capability-scale study would use).
func TestNodeAwareUnderSimulation(t *testing.T) {
	t.Parallel()
	model := netmodel.Dane()
	model.Node = topo.Spec{Sockets: 2, NumaPerSocket: 2, CoresPerNuma: 2}
	cfg := sim.ClusterConfig{Model: model, Nodes: 4, PPN: 8, Seed: 5}
	stats, err := sim.RunCluster(cfg, func(c comm.Comm) error {
		na, err := NewNodeAware(c)
		if err != nil {
			return err
		}
		const block = 256
		if err := na.Allgather(comm.Virtual(block), comm.Virtual(c.Size()*block), block); err != nil {
			return err
		}
		if err := na.Allreduce(comm.Virtual(4096), SumInt64); err != nil {
			return err
		}
		if err := na.ReduceScatter(comm.Virtual(c.Size()*block), comm.Virtual(block), block, SumInt64); err != nil {
			return err
		}
		return na.Bcast(0, comm.Virtual(4096))
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.VirtualSeconds <= 0 {
		t.Fatal("no virtual time elapsed")
	}
}

func TestErrors(t *testing.T) {
	t.Parallel()
	err := runtime.Run(runtime.Config{Ranks: 2}, func(c comm.Comm) error {
		if err := AllgatherRing(c, comm.Alloc(4), comm.Alloc(4), 4); err == nil {
			return fmt.Errorf("short allgather recv accepted")
		}
		if err := AllgatherBruck(c, comm.Alloc(4), comm.Alloc(16), 0); err == nil {
			return fmt.Errorf("zero block accepted")
		}
		if err := ReduceScatterPairwise(c, comm.Alloc(4), comm.Alloc(8), 8, SumInt64); err == nil {
			return fmt.Errorf("short reduce-scatter send accepted")
		}
		if _, err := NewNodeAware(c); err == nil {
			return fmt.Errorf("topology-less NewNodeAware accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
