package collx

import (
	"fmt"

	"alltoallx/internal/coll"
	"alltoallx/internal/comm"
)

// NodeAware applies the paper's aggregation strategy to allgather,
// allreduce and broadcast: one leader per node performs the inter-node
// part, everything else stays on the node. Construct once per
// communicator (collective call), reuse across operations — the same
// persistent-object pattern as the all-to-all family.
type NodeAware struct {
	c       comm.Comm
	local   comm.Comm // my node's ranks; leader is local rank 0
	leaders comm.Comm // one leader per node (nil on non-leaders)
	ppn     int
	nnodes  int
	myLocal int
}

// NewNodeAware splits node-level communicators from the world
// communicator c (which must carry a topology mapping).
func NewNodeAware(c comm.Comm) (*NodeAware, error) {
	m := c.Topo()
	if m == nil {
		return nil, fmt.Errorf("collx: communicator carries no topology")
	}
	if m.Size() != c.Size() {
		return nil, fmt.Errorf("collx: topology size %d != communicator size %d", m.Size(), c.Size())
	}
	na := &NodeAware{c: c, ppn: m.PPN(), nnodes: m.Nodes(), myLocal: m.LocalRank(c.Rank())}
	var err error
	na.local, err = c.Split(m.NodeOf(c.Rank()), na.myLocal)
	if err != nil {
		return nil, err
	}
	color := -1
	if na.myLocal == 0 {
		color = 0
	}
	na.leaders, err = c.Split(color, c.Rank())
	if err != nil {
		return nil, err
	}
	return na, nil
}

// Allgather gathers every rank's block to all ranks: gather to the node
// leader, Bruck allgather among leaders (one inter-node message stream per
// node), broadcast the full result inside the node. Output order is world
// rank order (block rank layout).
func (na *NodeAware) Allgather(send, recv comm.Buffer, block int) error {
	if err := checkAG(na.c, send, recv, block); err != nil {
		return err
	}
	p := na.c.Size()
	isLeader := na.myLocal == 0
	var nodeBuf comm.Buffer
	if isLeader {
		nodeBuf = allocLike(send, na.ppn*block)
	}
	if err := coll.Gather(na.local, 0, send.Slice(0, block), nodeBuf, coll.Linear, tagAllgather+64); err != nil {
		return fmt.Errorf("collx: node-aware allgather gather: %w", err)
	}
	if isLeader {
		// Leaders are ordered by node, so their Bruck allgather lands
		// directly in world order.
		if err := AllgatherBruck(na.leaders, nodeBuf, recv.Slice(0, p*block), na.ppn*block); err != nil {
			return fmt.Errorf("collx: node-aware allgather leader exchange: %w", err)
		}
	}
	if err := coll.Bcast(na.local, 0, recv.Slice(0, p*block), tagAllgather+96); err != nil {
		return fmt.Errorf("collx: node-aware allgather bcast: %w", err)
	}
	return nil
}

// Allreduce reduces buf element-wise across all ranks, leaving the result
// everywhere: linear reduce to the node leader, recursive doubling among
// leaders, broadcast down.
func (na *NodeAware) Allreduce(buf comm.Buffer, op Op) error {
	if err := na.reduceToLeader(buf, op); err != nil {
		return err
	}
	if na.myLocal == 0 {
		if err := AllreduceRecursiveDoubling(na.leaders, buf, op); err != nil {
			return fmt.Errorf("collx: node-aware allreduce leaders: %w", err)
		}
	}
	if err := coll.Bcast(na.local, 0, buf, tagAllreduce+96); err != nil {
		return fmt.Errorf("collx: node-aware allreduce bcast: %w", err)
	}
	return nil
}

// ReduceScatter leaves each rank the reduction of all ranks' blocks for
// it: node-local pre-reduction of each destination block at the leader,
// pairwise reduce-scatter of node sums among leaders, scatter inside the
// node.
func (na *NodeAware) ReduceScatter(send, recv comm.Buffer, block int, op Op) error {
	p := na.c.Size()
	if send.Len() < p*block {
		return fmt.Errorf("collx: reduce-scatter send buffer %d short of %d", send.Len(), p*block)
	}
	if recv.Len() < block {
		return fmt.Errorf("collx: reduce-scatter recv buffer %d short of %d", recv.Len(), block)
	}
	isLeader := na.myLocal == 0
	// Step 1: element-wise reduce all members' full send buffers onto the
	// leader (linear: recv and fold one member at a time).
	var acc comm.Buffer
	if isLeader {
		acc = allocLike(send, p*block)
		if err := na.c.Memcpy(acc, send.Slice(0, p*block)); err != nil {
			return err
		}
		tmp := allocLike(send, p*block)
		for m := 1; m < na.local.Size(); m++ {
			if err := na.local.Recv(tmp, m, tagReduce); err != nil {
				return err
			}
			if err := apply(na.c, op, acc, tmp); err != nil {
				return err
			}
		}
	} else {
		if err := na.local.Send(send.Slice(0, p*block), 0, tagReduce); err != nil {
			return err
		}
	}
	// Step 2: pairwise reduce-scatter among leaders with node-sized
	// blocks; leader n ends with the reduced ppn blocks of its node.
	var nodeBlock comm.Buffer
	if isLeader {
		nodeBlock = allocLike(send, na.ppn*block)
		if err := ReduceScatterPairwise(na.leaders, acc, nodeBlock, na.ppn*block, op); err != nil {
			return fmt.Errorf("collx: node-aware reduce-scatter leaders: %w", err)
		}
	}
	// Step 3: scatter the node's blocks to its ranks.
	if err := coll.Scatter(na.local, 0, nodeBlock, recv.Slice(0, block), coll.Linear, tagReduceSc+128); err != nil {
		return fmt.Errorf("collx: node-aware reduce-scatter scatter: %w", err)
	}
	return nil
}

// Bcast broadcasts root's buffer: binomial among leaders, then binomial
// inside each node — at most one copy of the payload crosses into each
// node.
func (na *NodeAware) Bcast(root int, b comm.Buffer) error {
	m := na.c.Topo()
	rootNode := m.NodeOf(root)
	rootLocal := m.LocalRank(root)
	// Move the payload to the root node's leader if the root is not it.
	if rootLocal != 0 {
		if na.c.Rank() == root {
			if err := na.local.Send(b, 0, tagBcastX); err != nil {
				return err
			}
		}
		if na.myLocal == 0 && m.NodeOf(na.c.Rank()) == rootNode {
			if err := na.local.Recv(b, rootLocal, tagBcastX); err != nil {
				return err
			}
		}
	}
	if na.myLocal == 0 {
		if err := coll.Bcast(na.leaders, rootNode, b, tagBcastX+32); err != nil {
			return fmt.Errorf("collx: node-aware bcast leaders: %w", err)
		}
	}
	return coll.Bcast(na.local, 0, b, tagBcastX+64)
}

// reduceToLeader folds every member's buffer onto the node leader.
func (na *NodeAware) reduceToLeader(buf comm.Buffer, op Op) error {
	if na.myLocal != 0 {
		return na.local.Send(buf, 0, tagReduce+32)
	}
	tmp := allocLike(buf, buf.Len())
	for mrank := 1; mrank < na.local.Size(); mrank++ {
		if err := na.local.Recv(tmp, mrank, tagReduce+32); err != nil {
			return err
		}
		if err := apply(na.c, op, buf, tmp); err != nil {
			return err
		}
	}
	return nil
}
