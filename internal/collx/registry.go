package collx

import (
	"fmt"
	"sort"

	"alltoallx/internal/comm"
	"alltoallx/internal/core"
	"alltoallx/internal/trace"
)

// This file migrates the package onto the same persistent-operation
// pattern as the all-to-all family (core.Alltoaller / core.Alltoallver):
// a registry of named algorithms per collective, a collective constructor
// that performs all communicator splitting during setup, core.Options for
// configuration, and Phases() for per-call timing. The free functions in
// collx.go remain as the underlying exchange implementations.
//
// Registered algorithms:
//
//	allgather:      ring | bruck | node-aware
//	allreduce:      recursive-doubling | node-aware
//	reduce-scatter: pairwise | node-aware
//
// The node-aware variants construct the leader communicators once, in the
// constructor, so the hot path never splits (the persistent-object
// discipline the paper applies to its all-to-all measurements).

// Allgatherer is a persistent allgather bound to one rank: every call
// gathers each rank's block to all ranks, up to the maxBlock fixed at
// construction. Like every persistent operation, it supports nonblocking
// exchanges: Start returns a core.Handle, the blocking method is exactly
// Start followed by Wait, and at most one exchange may be outstanding.
type Allgatherer interface {
	// Name returns the algorithm's registry name.
	Name() string
	// Allgather gathers every rank's block (send, block bytes) into recv
	// (Size()*block bytes, world rank order).
	Allgather(send, recv comm.Buffer, block int) error
	// Start launches the same exchange off the caller's critical path.
	Start(send, recv comm.Buffer, block int) (core.Handle, error)
	// Phases returns this rank's per-phase timings for the last
	// completed exchange, as the caller's own copy. It must not be
	// called while an exchange is outstanding.
	Phases() map[trace.Phase]float64
}

// Allreducer is a persistent allreduce bound to one rank.
type Allreducer interface {
	Name() string
	// Allreduce reduces buf element-wise across all ranks with op,
	// leaving the full result everywhere.
	Allreduce(buf comm.Buffer, op Op) error
	// Start launches the same reduction off the caller's critical path.
	Start(buf comm.Buffer, op Op) (core.Handle, error)
	Phases() map[trace.Phase]float64
}

// ReduceScatterer is a persistent reduce-scatter bound to one rank.
type ReduceScatterer interface {
	Name() string
	// ReduceScatter leaves on each rank the element-wise reduction of
	// every rank's block for it.
	ReduceScatter(send, recv comm.Buffer, block int, op Op) error
	// Start launches the same exchange off the caller's critical path.
	Start(send, recv comm.Buffer, block int, op Op) (core.Handle, error)
	Phases() map[trace.Phase]float64
}

// collOp carries the shared persistent state of one collx operation: the
// communicator, an optional NodeAware split set, the phase recorder, and
// the nonblocking-handle state.
type collOp struct {
	name string
	c    comm.Comm
	na   *NodeAware // nil for flat algorithms
	rec  *trace.Recorder
	st   core.OpState
}

func (o *collOp) Name() string { return o.name }

func (o *collOp) Phases() map[trace.Phase]float64 { return o.rec.Snapshot() }

// startTimed launches fn off the critical path under the total-phase
// timer — the collx counterpart of the core operations' Start bodies.
func (o *collOp) startTimed(fn func() error) (core.Handle, error) {
	return o.st.Start(o.c, func() error {
		o.rec.Reset()
		stop := o.rec.Time(trace.PhaseTotal)
		err := fn()
		stop()
		return err
	})
}

// timed runs fn to completion under the total-phase timer (the blocking
// shim over startTimed).
func (o *collOp) timed(fn func() error) error {
	h, err := o.startTimed(fn)
	if err != nil {
		return err
	}
	return h.Wait()
}

// newCollOp builds the shared state; nodeAware selects whether the
// constructor performs the node-level splits.
func newCollOp(name string, c comm.Comm, nodeAware bool) (*collOp, error) {
	op := &collOp{name: name, c: c, rec: trace.NewRecorder(c.Now)}
	if nodeAware {
		na, err := NewNodeAware(c)
		if err != nil {
			return nil, err
		}
		op.na = na
	}
	return op, nil
}

type allgatherer struct {
	*collOp
	run func(send, recv comm.Buffer, block int) error
}

func (a *allgatherer) Allgather(send, recv comm.Buffer, block int) error {
	return a.timed(func() error { return a.run(send, recv, block) })
}

func (a *allgatherer) Start(send, recv comm.Buffer, block int) (core.Handle, error) {
	return a.startTimed(func() error { return a.run(send, recv, block) })
}

type allreducer struct {
	*collOp
	run func(buf comm.Buffer, op Op) error
}

func (a *allreducer) Allreduce(buf comm.Buffer, op Op) error {
	return a.timed(func() error { return a.run(buf, op) })
}

func (a *allreducer) Start(buf comm.Buffer, op Op) (core.Handle, error) {
	return a.startTimed(func() error { return a.run(buf, op) })
}

type reduceScatterer struct {
	*collOp
	run func(send, recv comm.Buffer, block int, op Op) error
}

func (r *reduceScatterer) ReduceScatter(send, recv comm.Buffer, block int, op Op) error {
	return r.timed(func() error { return r.run(send, recv, block, op) })
}

func (r *reduceScatterer) Start(send, recv comm.Buffer, block int, op Op) (core.Handle, error) {
	return r.startTimed(func() error { return r.run(send, recv, block, op) })
}

var agRegistry = map[string]func(c comm.Comm, o core.Options) (Allgatherer, error){
	"ring": func(c comm.Comm, _ core.Options) (Allgatherer, error) {
		op, err := newCollOp("ring", c, false)
		if err != nil {
			return nil, err
		}
		return &allgatherer{collOp: op, run: func(send, recv comm.Buffer, block int) error {
			return AllgatherRing(c, send, recv, block)
		}}, nil
	},
	"bruck": func(c comm.Comm, _ core.Options) (Allgatherer, error) {
		op, err := newCollOp("bruck", c, false)
		if err != nil {
			return nil, err
		}
		return &allgatherer{collOp: op, run: func(send, recv comm.Buffer, block int) error {
			return AllgatherBruck(c, send, recv, block)
		}}, nil
	},
	"node-aware": func(c comm.Comm, _ core.Options) (Allgatherer, error) {
		op, err := newCollOp("node-aware", c, true)
		if err != nil {
			return nil, err
		}
		return &allgatherer{collOp: op, run: op.na.Allgather}, nil
	},
}

var arRegistry = map[string]func(c comm.Comm, o core.Options) (Allreducer, error){
	"recursive-doubling": func(c comm.Comm, _ core.Options) (Allreducer, error) {
		op, err := newCollOp("recursive-doubling", c, false)
		if err != nil {
			return nil, err
		}
		return &allreducer{collOp: op, run: func(buf comm.Buffer, rop Op) error {
			return AllreduceRecursiveDoubling(c, buf, rop)
		}}, nil
	},
	"node-aware": func(c comm.Comm, _ core.Options) (Allreducer, error) {
		op, err := newCollOp("node-aware", c, true)
		if err != nil {
			return nil, err
		}
		return &allreducer{collOp: op, run: op.na.Allreduce}, nil
	},
}

var rsRegistry = map[string]func(c comm.Comm, o core.Options) (ReduceScatterer, error){
	"pairwise": func(c comm.Comm, _ core.Options) (ReduceScatterer, error) {
		op, err := newCollOp("pairwise", c, false)
		if err != nil {
			return nil, err
		}
		return &reduceScatterer{collOp: op, run: func(send, recv comm.Buffer, block int, rop Op) error {
			return ReduceScatterPairwise(c, send, recv, block, rop)
		}}, nil
	},
	"node-aware": func(c comm.Comm, _ core.Options) (ReduceScatterer, error) {
		op, err := newCollOp("node-aware", c, true)
		if err != nil {
			return nil, err
		}
		return &reduceScatterer{collOp: op, run: op.na.ReduceScatter}, nil
	},
}

// NewAllgather constructs the named persistent allgather on c (collective
// call; the node-aware variant splits leader communicators).
func NewAllgather(name string, c comm.Comm, o core.Options) (Allgatherer, error) {
	f, ok := agRegistry[name]
	if !ok {
		return nil, fmt.Errorf("collx: unknown allgather %q (have %v)", name, AllgatherNames())
	}
	if c == nil {
		return nil, fmt.Errorf("collx: nil communicator")
	}
	return f(c, o)
}

// NewAllreduce constructs the named persistent allreduce on c (collective
// call).
func NewAllreduce(name string, c comm.Comm, o core.Options) (Allreducer, error) {
	f, ok := arRegistry[name]
	if !ok {
		return nil, fmt.Errorf("collx: unknown allreduce %q (have %v)", name, AllreduceNames())
	}
	if c == nil {
		return nil, fmt.Errorf("collx: nil communicator")
	}
	return f(c, o)
}

// NewReduceScatter constructs the named persistent reduce-scatter on c
// (collective call).
func NewReduceScatter(name string, c comm.Comm, o core.Options) (ReduceScatterer, error) {
	f, ok := rsRegistry[name]
	if !ok {
		return nil, fmt.Errorf("collx: unknown reduce-scatter %q (have %v)", name, ReduceScatterNames())
	}
	if c == nil {
		return nil, fmt.Errorf("collx: nil communicator")
	}
	return f(c, o)
}

// AllgatherNames returns the registered allgather algorithms, sorted.
func AllgatherNames() []string { return sortedKeys(agRegistry) }

// AllreduceNames returns the registered allreduce algorithms, sorted.
func AllreduceNames() []string { return sortedKeys(arRegistry) }

// ReduceScatterNames returns the registered reduce-scatter algorithms,
// sorted.
func ReduceScatterNames() []string { return sortedKeys(rsRegistry) }

func sortedKeys[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
