package collx

import (
	"fmt"
	"testing"

	"alltoallx/internal/comm"
	"alltoallx/internal/core"
	"alltoallx/internal/runtime"
	"alltoallx/internal/testutil"
	"alltoallx/internal/topo"
)

func registryMapping(t *testing.T) *topo.Mapping {
	t.Helper()
	m, err := topo.NewMapping(topo.Spec{Sockets: 2, NumaPerSocket: 2, CoresPerNuma: 2}, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestAllgatherRegistry runs every registered allgather twice through one
// persistent instance and verifies the gathered pattern and the phase
// timer.
func TestAllgatherRegistry(t *testing.T) {
	t.Parallel()
	m := registryMapping(t)
	const block = 6
	for _, name := range AllgatherNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			err := runtime.Run(runtime.Config{Mapping: m}, func(c comm.Comm) error {
				p, r := c.Size(), c.Rank()
				a, err := NewAllgather(name, c, core.Options{})
				if err != nil {
					return err
				}
				if a.Name() != name {
					return fmt.Errorf("Name() = %q, want %q", a.Name(), name)
				}
				send := comm.Alloc(block)
				recv := comm.Alloc(p * block)
				testutil.FillBlock(send, r, 0)
				for iter := 0; iter < 2; iter++ {
					if err := a.Allgather(send, recv, block); err != nil {
						return fmt.Errorf("iter %d: %w", iter, err)
					}
					for s := 0; s < p; s++ {
						if err := testutil.CheckBlock(recv.Slice(s*block, block), s, 0); err != nil {
							return fmt.Errorf("iter %d block %d: %w", iter, s, err)
						}
					}
				}
				if len(a.Phases()) == 0 {
					return fmt.Errorf("no phases recorded")
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestAllreduceRegistry verifies every registered allreduce sums int64
// payloads correctly through a persistent instance. The element count
// matches the world size so the buffer splits into whole int64 blocks —
// the schedule-backed variants distribute the buffer as p rank blocks
// and need the element boundaries to survive the split.
func TestAllreduceRegistry(t *testing.T) {
	t.Parallel()
	m := registryMapping(t)
	const elems = 16
	for _, name := range AllreduceNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			err := runtime.Run(runtime.Config{Mapping: m}, func(c comm.Comm) error {
				p, r := c.Size(), c.Rank()
				a, err := NewAllreduce(name, c, core.Options{})
				if err != nil {
					return err
				}
				buf := comm.Alloc(elems * 8)
				for iter := 0; iter < 2; iter++ {
					for e := 0; e < elems; e++ {
						putLeU64(buf.Bytes()[e*8:], uint64(int64(r+e+iter)))
					}
					if err := a.Allreduce(buf, SumInt64); err != nil {
						return fmt.Errorf("iter %d: %w", iter, err)
					}
					for e := 0; e < elems; e++ {
						want := int64(0)
						for s := 0; s < p; s++ {
							want += int64(s + e + iter)
						}
						if got := int64(leU64(buf.Bytes()[e*8:])); got != want {
							return fmt.Errorf("iter %d elem %d: got %d, want %d", iter, e, got, want)
						}
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestReduceScatterRegistry verifies every registered reduce-scatter
// through a persistent instance.
func TestReduceScatterRegistry(t *testing.T) {
	t.Parallel()
	m := registryMapping(t)
	const elems = 3
	block := elems * 8
	for _, name := range ReduceScatterNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			err := runtime.Run(runtime.Config{Mapping: m}, func(c comm.Comm) error {
				p, r := c.Size(), c.Rank()
				a, err := NewReduceScatter(name, c, core.Options{})
				if err != nil {
					return err
				}
				send := comm.Alloc(p * block)
				recv := comm.Alloc(block)
				for d := 0; d < p; d++ {
					for e := 0; e < elems; e++ {
						putLeU64(send.Bytes()[d*block+e*8:], uint64(int64(r*31+d*7+e)))
					}
				}
				if err := a.ReduceScatter(send, recv, block, SumInt64); err != nil {
					return err
				}
				for e := 0; e < elems; e++ {
					want := int64(0)
					for s := 0; s < p; s++ {
						want += int64(s*31 + r*7 + e)
					}
					if got := int64(leU64(recv.Bytes()[e*8:])); got != want {
						return fmt.Errorf("elem %d: got %d, want %d", e, got, want)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRegistryUnknownNames: constructors reject unknown names and list
// the registry contents.
func TestRegistryUnknownNames(t *testing.T) {
	t.Parallel()
	err := runtime.Run(runtime.Config{Ranks: 2}, func(c comm.Comm) error {
		if _, err := NewAllgather("no-such", c, core.Options{}); err == nil {
			return fmt.Errorf("unknown allgather accepted")
		}
		if _, err := NewAllreduce("no-such", c, core.Options{}); err == nil {
			return fmt.Errorf("unknown allreduce accepted")
		}
		if _, err := NewReduceScatter("no-such", c, core.Options{}); err == nil {
			return fmt.Errorf("unknown reduce-scatter accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
