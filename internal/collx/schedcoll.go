package collx

import (
	"fmt"

	"alltoallx/internal/comm"
	"alltoallx/internal/core"
	"alltoallx/internal/sched"
)

// Schedule-backed reductions: the reduce-scatter and allreduce compiled
// by internal/sched's reduction generators, registered here under the
// same "sched:<topology>" naming the all-to-all family uses. The
// schedules are operator-generic (compiled once per world, verified
// statically, cached and serviceable like every sched:* artifact — the
// construction goes through core.NewSchedExec); the caller's Op is
// installed per call, so one persistent operation serves any operator.

// schedTopos maps the registry suffix to the reduction generators'
// topology names (the generator registry prefixes the collective:
// "rs-ring", "ar-torus", ...).
var schedTopos = []string{"ring", "torus", "hypercube"}

func init() {
	for _, topo := range schedTopos {
		rsGen, arGen := "rs-"+topo, "ar-"+topo
		name := "sched:" + topo
		rsRegistry[name] = func(c comm.Comm, _ core.Options) (ReduceScatterer, error) {
			op, err := newCollOp(name, c, false)
			if err != nil {
				return nil, err
			}
			ex, err := core.NewSchedExec(rsGen, c)
			if err != nil {
				return nil, err
			}
			return &reduceScatterer{collOp: op, run: func(send, recv comm.Buffer, block int, rop Op) error {
				if err := checkSchedRS(c, send, recv, block); err != nil {
					return err
				}
				ex.SetOp(sched.ReduceOp(rop))
				return ex.Run(c, send, recv, block, op.rec)
			}}, nil
		}
		arRegistry[name] = func(c comm.Comm, _ core.Options) (Allreducer, error) {
			op, err := newCollOp(name, c, false)
			if err != nil {
				return nil, err
			}
			ex, err := core.NewSchedExec(arGen, c)
			if err != nil {
				return nil, err
			}
			// The schedule reads a send space and writes a recv space, but
			// the allreduce contract is in-place: a persistent shadow holds
			// the input so buf can serve as the recv space.
			var shadow comm.Buffer
			return &allreducer{collOp: op, run: func(buf comm.Buffer, rop Op) error {
				p := c.Size()
				if buf.Len() == 0 || buf.Len()%p != 0 {
					return fmt.Errorf("collx: sched allreduce needs a buffer divisible into %d rank blocks, got %d bytes", p, buf.Len())
				}
				block := buf.Len() / p
				if shadow.Len() != buf.Len() || shadow.IsVirtual() != buf.IsVirtual() {
					shadow = allocLike(buf, buf.Len())
				}
				if err := c.Memcpy(shadow, buf); err != nil {
					return err
				}
				ex.SetOp(sched.ReduceOp(rop))
				return ex.Run(c, shadow, buf, block, op.rec)
			}}, nil
		}
	}
}

// checkSchedRS mirrors the reference reduce-scatter's argument contract.
func checkSchedRS(c comm.Comm, send, recv comm.Buffer, block int) error {
	if block <= 0 {
		return fmt.Errorf("collx: block must be positive, got %d", block)
	}
	if send.Len() < c.Size()*block {
		return fmt.Errorf("collx: send buffer %d short of %d", send.Len(), c.Size()*block)
	}
	if recv.Len() < block {
		return fmt.Errorf("collx: recv buffer %d short of block %d", recv.Len(), block)
	}
	return nil
}
