package collx

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"alltoallx/internal/comm"
	"alltoallx/internal/core"
	"alltoallx/internal/netmodel"
	"alltoallx/internal/runtime"
	"alltoallx/internal/sim"
	"alltoallx/internal/topo"
)

// schedCollNames are the schedule-backed reduction registry entries.
func schedCollNames() []string {
	out := make([]string, 0, len(schedTopos))
	for _, topo := range schedTopos {
		out = append(out, "sched:"+topo)
	}
	return out
}

// schedEquivBody runs every schedule-backed reduce-scatter and allreduce
// next to the reference algorithms on identical int64 payloads and
// demands byte-identical results, for both test operators. It is
// substrate-agnostic: the same body runs live and under the simulator.
func schedEquivBody(elems int) func(c comm.Comm) error {
	return func(c comm.Comm) error {
		p, r := c.Size(), c.Rank()
		block := elems * 8
		fill := func(buf comm.Buffer) {
			for d := 0; d < p; d++ {
				for e := 0; e < elems; e++ {
					putLeU64(buf.Bytes()[d*block+e*8:], uint64(int64(r*31+d*7+e*3)))
				}
			}
		}
		for _, opCase := range []struct {
			name string
			op   Op
		}{{"sum", SumInt64}, {"max", MaxInt64}} {
			// Reference results.
			refSend := comm.Alloc(p * block)
			refRS := comm.Alloc(block)
			fill(refSend)
			if err := ReduceScatterPairwise(c, refSend, refRS, block, opCase.op); err != nil {
				return err
			}
			refAR := comm.Alloc(p * block)
			fill(refAR)
			if err := AllreduceRecursiveDoubling(c, refAR, opCase.op); err != nil {
				return err
			}
			for _, name := range schedCollNames() {
				rs, err := NewReduceScatter(name, c, core.Options{})
				if err != nil {
					return fmt.Errorf("%s: %w", name, err)
				}
				send := comm.Alloc(p * block)
				recv := comm.Alloc(block)
				fill(send)
				if err := rs.ReduceScatter(send, recv, block, opCase.op); err != nil {
					return fmt.Errorf("%s/%s reduce-scatter: %w", name, opCase.name, err)
				}
				if !bytes.Equal(recv.Bytes(), refRS.Bytes()) {
					return fmt.Errorf("%s/%s reduce-scatter diverges from pairwise reference at rank %d", name, opCase.name, r)
				}
				ar, err := NewAllreduce(name, c, core.Options{})
				if err != nil {
					return fmt.Errorf("%s: %w", name, err)
				}
				buf := comm.Alloc(p * block)
				fill(buf)
				if err := ar.Allreduce(buf, opCase.op); err != nil {
					return fmt.Errorf("%s/%s allreduce: %w", name, opCase.name, err)
				}
				if !bytes.Equal(buf.Bytes(), refAR.Bytes()) {
					return fmt.Errorf("%s/%s allreduce diverges from recursive-doubling reference at rank %d", name, opCase.name, r)
				}
			}
		}
		return nil
	}
}

// TestSchedCollEquivalenceLive: on the live runtime, every sched:*
// reduce-scatter and allreduce is byte-identical to the collx reference
// algorithms under both operators. The 16-rank world is a power of two
// so the hypercube schedules participate.
func TestSchedCollEquivalenceLive(t *testing.T) {
	t.Parallel()
	m := registryMapping(t)
	if err := runtime.Run(runtime.Config{Mapping: m}, schedEquivBody(3)); err != nil {
		t.Fatal(err)
	}
}

// TestSchedCollEquivalenceSim: the same equivalence under the
// discrete-event simulator with real payloads — the virtual-time
// transport must not perturb reduction contents.
func TestSchedCollEquivalenceSim(t *testing.T) {
	t.Parallel()
	model := netmodel.Dane()
	model.Node = topo.Spec{Sockets: 2, NumaPerSocket: 2, CoresPerNuma: 2}
	if _, err := sim.RunCluster(sim.ClusterConfig{Model: model, Nodes: 2, PPN: 8, Seed: 1},
		schedEquivBody(2)); err != nil {
		t.Fatal(err)
	}
}

// TestSchedCollArgErrors: the schedule-backed wrappers enforce the
// reference argument contracts before touching the executor.
func TestSchedCollArgErrors(t *testing.T) {
	t.Parallel()
	err := runtime.Run(runtime.Config{Ranks: 2}, func(c comm.Comm) error {
		rs, err := NewReduceScatter("sched:ring", c, core.Options{})
		if err != nil {
			return err
		}
		if err := rs.ReduceScatter(comm.Alloc(16), comm.Alloc(8), 0, SumInt64); err == nil ||
			!strings.Contains(err.Error(), "block must be positive") {
			return fmt.Errorf("zero block: %v", err)
		}
		if err := rs.ReduceScatter(comm.Alloc(8), comm.Alloc(8), 8, SumInt64); err == nil ||
			!strings.Contains(err.Error(), "send buffer") {
			return fmt.Errorf("short send: %v", err)
		}
		if err := rs.ReduceScatter(comm.Alloc(16), comm.Alloc(4), 8, SumInt64); err == nil ||
			!strings.Contains(err.Error(), "recv buffer") {
			return fmt.Errorf("short recv: %v", err)
		}
		ar, err := NewAllreduce("sched:ring", c, core.Options{})
		if err != nil {
			return err
		}
		if err := ar.Allreduce(comm.Alloc(9), SumInt64); err == nil ||
			!strings.Contains(err.Error(), "divisible") {
			return fmt.Errorf("indivisible allreduce buffer: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
