package collx

import (
	"encoding/binary"
	"errors"
	"fmt"
	"testing"

	"alltoallx/internal/comm"
	"alltoallx/internal/core"
	"alltoallx/internal/netmodel"
	"alltoallx/internal/runtime"
	"alltoallx/internal/sim"
	"alltoallx/internal/testutil"
)

// startBoth runs body on the live runtime and under the simulator: the
// collx Start wrappers share core's handle machinery, but each collective
// has its own Start signature, so both substrates are exercised here too.
func startBoth(t *testing.T, body func(c comm.Comm) error) {
	t.Helper()
	m := registryMapping(t)
	if err := runtime.Run(runtime.Config{Mapping: m}, body); err != nil {
		t.Errorf("live: %v", err)
	}
	cfg := sim.ClusterConfig{Model: netmodel.Dane(), Nodes: 2, PPN: 8, Seed: 1}
	if _, err := sim.RunCluster(cfg, body); err != nil {
		t.Errorf("sim: %v", err)
	}
}

// TestAllgatherStart verifies Start/Wait equivalence, the pending rule
// and WaitAll for the allgather operation.
func TestAllgatherStart(t *testing.T) {
	const block = 6
	startBoth(t, func(c comm.Comm) error {
		p, r := c.Size(), c.Rank()
		a, err := NewAllgather("ring", c, core.Options{})
		if err != nil {
			return err
		}
		send := comm.Alloc(block)
		recv := comm.Alloc(p * block)
		testutil.FillBlock(send, r, 0)
		h, err := a.Start(send, recv, block)
		if err != nil {
			return err
		}
		if _, err := a.Start(send, recv, block); !errors.Is(err, core.ErrPending) {
			return fmt.Errorf("second allgather Start while pending: got %v, want ErrPending", err)
		}
		if err := core.WaitAll([]core.Handle{nil, h}); err != nil {
			return err
		}
		for s := 0; s < p; s++ {
			if err := testutil.CheckBlock(recv.Slice(s*block, block), s, 0); err != nil {
				return err
			}
		}
		return nil
	})
}

// TestAllreduceReduceScatterStart covers the remaining two collx Start
// signatures end to end.
func TestAllreduceReduceScatterStart(t *testing.T) {
	startBoth(t, func(c comm.Comm) error {
		p, r := c.Size(), c.Rank()
		ar, err := NewAllreduce("recursive-doubling", c, core.Options{})
		if err != nil {
			return err
		}
		buf := comm.Alloc(8)
		binary.LittleEndian.PutUint64(buf.Bytes(), uint64(r+1))
		h, err := ar.Start(buf, SumInt64)
		if err != nil {
			return err
		}
		if err := h.Wait(); err != nil {
			return err
		}
		want := uint64(p * (p + 1) / 2)
		if got := binary.LittleEndian.Uint64(buf.Bytes()); got != want {
			return fmt.Errorf("allreduce sum = %d, want %d", got, want)
		}

		rs, err := NewReduceScatter("pairwise", c, core.Options{})
		if err != nil {
			return err
		}
		send := comm.Alloc(p * 8)
		recv := comm.Alloc(8)
		for d := 0; d < p; d++ {
			binary.LittleEndian.PutUint64(send.Bytes()[d*8:], uint64(r+1))
		}
		h2, err := rs.Start(send, recv, 8, SumInt64)
		if err != nil {
			return err
		}
		if _, err := rs.Start(send, recv, 8, SumInt64); !errors.Is(err, core.ErrPending) {
			return fmt.Errorf("second reduce-scatter Start while pending: got %v, want ErrPending", err)
		}
		if err := h2.Wait(); err != nil {
			return err
		}
		if got := binary.LittleEndian.Uint64(recv.Bytes()); got != want {
			return fmt.Errorf("reduce-scatter sum = %d, want %d", got, want)
		}
		return nil
	})
}
