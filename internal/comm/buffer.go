package comm

import "fmt"

// Buffer is a communication buffer. It is either real — backed by a []byte
// segment — or virtual: a length with no storage. Virtual buffers let the
// simulator run paper-scale configurations (3584 ranks x ~14.7 MB of
// all-to-all payload each) without allocating terabytes; all cost modeling
// needs only lengths. The same algorithm code runs unchanged on either kind
// because every data movement goes through Comm.Memcpy or point-to-point
// operations, which accept both.
//
// Slicing panics on out-of-range arguments, matching Go slice semantics:
// a bad slice is a programming error in the algorithm, not a runtime
// condition to handle.
type Buffer struct {
	data   []byte // nil for virtual buffers
	length int
}

// Alloc returns a real zeroed buffer of n bytes.
func Alloc(n int) Buffer {
	if n < 0 {
		panic(fmt.Sprintf("comm: Alloc(%d): negative length", n))
	}
	return Buffer{data: make([]byte, n), length: n}
}

// Wrap returns a real buffer aliasing p (no copy).
func Wrap(p []byte) Buffer { return Buffer{data: p, length: len(p)} }

// Virtual returns a storage-less buffer of n bytes.
func Virtual(n int) Buffer {
	if n < 0 {
		panic(fmt.Sprintf("comm: Virtual(%d): negative length", n))
	}
	return Buffer{length: n}
}

// Len returns the buffer length in bytes.
func (b Buffer) Len() int { return b.length }

// IsVirtual reports whether the buffer has no backing storage.
func (b Buffer) IsVirtual() bool { return b.data == nil && b.length > 0 }

// Bytes returns the backing storage (nil for virtual buffers).
func (b Buffer) Bytes() []byte { return b.data }

// Slice returns the sub-buffer [off, off+n). It panics if the range is out
// of bounds, like slicing a Go slice.
func (b Buffer) Slice(off, n int) Buffer {
	if off < 0 || n < 0 || off+n > b.length {
		panic(fmt.Sprintf("comm: Slice(%d, %d) out of range of %d-byte buffer", off, n, b.length))
	}
	if b.data == nil {
		return Buffer{length: n}
	}
	return Buffer{data: b.data[off : off+n], length: n}
}

// CopyData moves bytes from src to dst when both are real. It returns the
// logical byte count (always src.Len()) so callers can charge cost for
// virtual copies too. Lengths must match: algorithm repacks always copy
// whole blocks.
func CopyData(dst, src Buffer) (int, error) {
	if dst.length != src.length {
		return 0, fmt.Errorf("comm: copy length mismatch: dst %d, src %d", dst.length, src.length)
	}
	if dst.data != nil && src.data != nil {
		copy(dst.data, src.data)
	}
	return src.length, nil
}
