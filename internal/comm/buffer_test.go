package comm

import (
	"testing"
	"testing/quick"
)

func TestAllocAndWrap(t *testing.T) {
	t.Parallel()
	b := Alloc(16)
	if b.Len() != 16 || b.IsVirtual() || len(b.Bytes()) != 16 {
		t.Fatalf("Alloc(16): len=%d virtual=%v", b.Len(), b.IsVirtual())
	}
	p := []byte{1, 2, 3}
	w := Wrap(p)
	if w.Len() != 3 || w.IsVirtual() {
		t.Fatalf("Wrap: len=%d virtual=%v", w.Len(), w.IsVirtual())
	}
	w.Bytes()[0] = 9
	if p[0] != 9 {
		t.Error("Wrap must alias, not copy")
	}
}

func TestVirtual(t *testing.T) {
	t.Parallel()
	v := Virtual(100)
	if v.Len() != 100 || !v.IsVirtual() || v.Bytes() != nil {
		t.Fatalf("Virtual(100): len=%d virtual=%v", v.Len(), v.IsVirtual())
	}
	s := v.Slice(10, 50)
	if s.Len() != 50 || !s.IsVirtual() {
		t.Fatalf("virtual slice: len=%d virtual=%v", s.Len(), s.IsVirtual())
	}
	// A zero-length virtual buffer is not "virtual" by definition (no
	// storage needed either way).
	if Virtual(0).IsVirtual() {
		t.Error("zero-length buffer should not report virtual")
	}
}

func TestSlicePanics(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct{ off, n int }{{-1, 2}, {0, -1}, {8, 9}, {17, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Slice(%d, %d) did not panic", tc.off, tc.n)
				}
			}()
			Alloc(16).Slice(tc.off, tc.n)
		}()
	}
}

func TestAllocPanicsOnNegative(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Error("Alloc(-1) did not panic")
		}
	}()
	Alloc(-1)
}

func TestCopyData(t *testing.T) {
	t.Parallel()
	src := Alloc(8)
	for i := range src.Bytes() {
		src.Bytes()[i] = byte(i)
	}
	dst := Alloc(8)
	n, err := CopyData(dst, src)
	if err != nil || n != 8 {
		t.Fatalf("CopyData = %d, %v", n, err)
	}
	for i, b := range dst.Bytes() {
		if b != byte(i) {
			t.Fatalf("dst[%d] = %d", i, b)
		}
	}
	if _, err := CopyData(Alloc(4), src); err == nil {
		t.Error("length mismatch accepted")
	}
	// Virtual-to-real and real-to-virtual copies are legal no-ops.
	if n, err := CopyData(Virtual(8), src); err != nil || n != 8 {
		t.Errorf("copy to virtual: %d, %v", n, err)
	}
	if n, err := CopyData(dst, Virtual(8)); err != nil || n != 8 {
		t.Errorf("copy from virtual: %d, %v", n, err)
	}
}

// TestSliceProperty: slicing preserves offsets — byte i of Slice(off, n)
// is byte off+i of the parent, for arbitrary valid ranges.
func TestSliceProperty(t *testing.T) {
	t.Parallel()
	base := Alloc(257)
	for i := range base.Bytes() {
		base.Bytes()[i] = byte(i * 7)
	}
	f := func(offRaw, nRaw uint16) bool {
		off := int(offRaw) % base.Len()
		n := int(nRaw) % (base.Len() - off)
		s := base.Slice(off, n)
		if s.Len() != n {
			return false
		}
		for i := 0; i < n; i++ {
			if s.Bytes()[i] != base.Bytes()[off+i] {
				return false
			}
		}
		// Nested slice composes.
		if n >= 2 {
			s2 := s.Slice(1, n-1)
			if s2.Bytes()[0] != base.Bytes()[off+1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCheckHelpers(t *testing.T) {
	t.Parallel()
	if err := CheckPeer(0, 4); err != nil {
		t.Error(err)
	}
	if err := CheckPeer(3, 4); err != nil {
		t.Error(err)
	}
	if err := CheckPeer(4, 4); err == nil {
		t.Error("peer == size accepted")
	}
	if err := CheckPeer(-1, 4); err == nil {
		t.Error("negative peer accepted")
	}
	if err := CheckTag(0); err != nil {
		t.Error(err)
	}
	if err := CheckTag(-1); err == nil {
		t.Error("negative tag accepted")
	}
}
