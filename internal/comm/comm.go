// Package comm defines the communication interface that every all-to-all
// algorithm in this repository is written against. Two substrates implement
// it: internal/runtime (a live in-process message-passing runtime, one
// goroutine per rank) and internal/sim (a discrete-event simulator of a
// many-core cluster). Writing each algorithm once against this interface is
// what lets the same code be correctness-tested for real and
// performance-modeled at supercomputer scale.
//
// The interface mirrors the MPI subset the paper's Algorithms 1-5 use:
// blocking and nonblocking point-to-point, Sendrecv, Waitall, Barrier, and
// communicator splitting.
package comm

import (
	"errors"
	"fmt"

	"alltoallx/internal/topo"
)

// Common errors returned by substrates.
var (
	// ErrTruncate reports a receive buffer smaller than the matched message.
	ErrTruncate = errors.New("comm: receive buffer shorter than message")
	// ErrClosed reports use of a communicator whose world has shut down.
	ErrClosed = errors.New("comm: communicator closed")
)

// Request is an in-flight nonblocking operation. It is completed by
// Comm.Wait or Comm.WaitAll on the communicator that created it.
type Request interface {
	// Pending reports whether the request has not completed yet.
	Pending() bool
}

// Async is a substrate token for a started collective-operation body (see
// AsyncStarter): the handle layer in internal/core polls or joins it to
// implement Test and Wait. Like the operations themselves, a token is
// driven by one goroutine — the rank that started it.
type Async interface {
	// Join blocks until the body has completed and returns its error.
	// Joining a completed token returns the same error again.
	Join() error
	// TryJoin polls for completion without blocking. err is meaningful
	// only when done is true.
	TryJoin() (done bool, err error)
}

// AsyncStarter is an optional Comm capability: substrates that implement
// it decide how a started operation's body runs off the caller's critical
// path. The live runtime spawns a driver goroutine per started body; the
// simulator executes the body eagerly under virtual time and banks the
// time the rank spent *waiting* (parked on message completions, as
// opposed to busy with per-message overheads and copies) as an overlap
// budget that subsequent Compute calls on the same rank draw down — the
// classic overlap model total = max(comm, compute + overhead), realized
// event by event. Comms without the capability fall back to synchronous
// execution inside Start (the body runs to completion before Start
// returns a pre-completed token).
type AsyncStarter interface {
	StartAsync(body func() error) Async
}

// Comm is an MPI-like communicator bound to one rank (SPMD style: every
// rank of a world executes the same program against its own Comm value).
//
// Buffers may be real (backed by []byte) or virtual (length only); see
// Buffer. Substrates must support both: the live runtime requires real
// buffers, the simulator accepts either and moves payload bytes whenever
// both ends are real.
type Comm interface {
	// Rank returns this process's rank in the communicator (0..Size-1).
	Rank() int
	// Size returns the number of ranks in the communicator.
	Size() int

	// Send delivers b to rank dst with the given tag, blocking until the
	// message is safely injected (eager) or received (rendezvous).
	Send(b Buffer, dst, tag int) error
	// Recv blocks until a message from src with the given tag arrives,
	// copying it into b. The message length must not exceed b.Len().
	Recv(b Buffer, src, tag int) error
	// Isend starts a nonblocking send of b to dst.
	Isend(b Buffer, dst, tag int) (Request, error)
	// Irecv starts a nonblocking receive from src into b.
	Irecv(b Buffer, src, tag int) (Request, error)
	// Wait blocks until r completes.
	Wait(r Request) error
	// WaitAll blocks until every request completes. A nil element is
	// ignored, mirroring MPI_REQUEST_NULL.
	WaitAll(rs []Request) error
	// Sendrecv performs a blocking combined exchange, deadlock-free even
	// when all ranks call it simultaneously (as pairwise exchange does).
	Sendrecv(sb Buffer, dst, stag int, rb Buffer, src, rtag int) error

	// Barrier blocks until every rank of the communicator has entered it.
	Barrier() error

	// Split partitions the communicator: ranks passing equal color form a
	// new communicator, ordered by (key, parent rank). It is collective
	// over the parent. Substrates may treat it as setup (untimed): the
	// paper constructs sub-communicators once, outside the timed region.
	Split(color, key int) (Comm, error)

	// Memcpy copies src into dst (lengths must match). On real buffers it
	// moves bytes; in the simulator it also charges memory-copy time to
	// this rank. Single-block algorithm copies go through Memcpy so that
	// repack cost is modeled.
	Memcpy(dst, src Buffer) error

	// ChargeCopy accounts for a batch repack of blocks copies totalling
	// bytes that was performed directly with comm.CopyData (which moves
	// data but charges nothing). The live runtime pays the real copy cost
	// in wall time, so this is a no-op there; the simulator charges
	// bytes/copy-bandwidth plus a per-block loop cost. The paper's
	// "Repack Data" steps — thousands of tiny block moves at small message
	// sizes — are modeled through this call.
	ChargeCopy(bytes, blocks int) error

	// Now returns this rank's current time in seconds: wall-clock seconds
	// on the live runtime, virtual seconds in the simulator. Used by the
	// phase-breakdown instrumentation (Figures 13-16).
	Now() float64

	// Compute models `seconds` of application computation on this rank —
	// the hook that lets one program body both run for real and be
	// overlap-modeled. On the live runtime it is a validating no-op
	// (wall-clock compute is real Go code; nothing sleeps). In the
	// simulator it charges virtual time, minus whatever portion hides
	// behind the rank's outstanding started operations (see AsyncStarter):
	// a rank that calls Start, Compute, Wait pays
	// max(comm, compute + software overhead), not their sum.
	Compute(seconds float64) error

	// Topo returns the world rank mapping, or nil on communicators that do
	// not carry topology (sub-communicators). Algorithms query it on the
	// world communicator to plan node-aware exchanges.
	Topo() *topo.Mapping
}

// CheckPeer validates a peer rank against a communicator size.
func CheckPeer(peer, size int) error {
	if peer < 0 || peer >= size {
		return fmt.Errorf("comm: peer rank %d out of range 0..%d", peer, size-1)
	}
	return nil
}

// CheckTag validates a user tag (non-negative; substrates reserve negative
// tags for internal protocols).
func CheckTag(tag int) error {
	if tag < 0 {
		return fmt.Errorf("comm: tag %d must be non-negative", tag)
	}
	return nil
}
