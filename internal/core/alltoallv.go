package core

import (
	"fmt"

	"alltoallx/internal/comm"
)

// Alltoallv performs a variable-sized all-to-all (the MPI_Alltoallv
// counterpart discussed in the paper's related work, Section 2.1): rank r
// sends sendCounts[i] bytes starting at sdispls[i] to rank i, and receives
// recvCounts[j] bytes from rank j into rdispls[j]. Counts must be
// symmetric across ranks (recvCounts[j] on r equals sendCounts[r] on j).
// The exchange uses pairwise stepping, which bounds in-flight traffic the
// same way Algorithm 1 does for the fixed-size case.
func Alltoallv(c comm.Comm, send comm.Buffer, sendCounts, sdispls []int,
	recv comm.Buffer, recvCounts, rdispls []int) error {
	n, r := c.Size(), c.Rank()
	if err := checkVArgs(c, send, sendCounts, sdispls, "send"); err != nil {
		return err
	}
	if err := checkVArgs(c, recv, recvCounts, rdispls, "recv"); err != nil {
		return err
	}
	if sendCounts[r] != recvCounts[r] {
		return fmt.Errorf("core: alltoallv self counts differ: send %d, recv %d", sendCounts[r], recvCounts[r])
	}
	if err := c.Memcpy(
		recv.Slice(rdispls[r], recvCounts[r]),
		send.Slice(sdispls[r], sendCounts[r])); err != nil {
		return err
	}
	for i := 1; i < n; i++ {
		sp := (r + i) % n
		rp := (r - i + n) % n
		if err := c.Sendrecv(
			send.Slice(sdispls[sp], sendCounts[sp]), sp, tagAlltoall,
			recv.Slice(rdispls[rp], recvCounts[rp]), rp, tagAlltoall); err != nil {
			return fmt.Errorf("core: alltoallv step %d (to %d, from %d): %w", i, sp, rp, err)
		}
	}
	return nil
}

// AlltoallvNonblocking is Alltoallv with every exchange posted up front
// (Algorithm 2's strategy for the variable-sized case).
func AlltoallvNonblocking(c comm.Comm, send comm.Buffer, sendCounts, sdispls []int,
	recv comm.Buffer, recvCounts, rdispls []int) error {
	n, r := c.Size(), c.Rank()
	if err := checkVArgs(c, send, sendCounts, sdispls, "send"); err != nil {
		return err
	}
	if err := checkVArgs(c, recv, recvCounts, rdispls, "recv"); err != nil {
		return err
	}
	reqs := make([]comm.Request, 0, 2*(n-1))
	for i := 1; i < n; i++ {
		sp := (r + i) % n
		rp := (r - i + n) % n
		rq, err := c.Irecv(recv.Slice(rdispls[rp], recvCounts[rp]), rp, tagAlltoall)
		if err != nil {
			return err
		}
		sq, err := c.Isend(send.Slice(sdispls[sp], sendCounts[sp]), sp, tagAlltoall)
		if err != nil {
			return err
		}
		reqs = append(reqs, rq, sq)
	}
	if err := c.Memcpy(
		recv.Slice(rdispls[r], recvCounts[r]),
		send.Slice(sdispls[r], sendCounts[r])); err != nil {
		return err
	}
	return c.WaitAll(reqs)
}

// CountsFromSizes builds contiguous displacements for the given per-peer
// byte counts, returning the displacement slice and the total length —
// the common packing helper for Alltoallv callers.
func CountsFromSizes(counts []int) (displs []int, total int) {
	displs = make([]int, len(counts))
	for i, cnt := range counts {
		displs[i] = total
		total += cnt
	}
	return displs, total
}

func checkVArgs(c comm.Comm, buf comm.Buffer, counts, displs []int, what string) error {
	n := c.Size()
	if len(counts) != n || len(displs) != n {
		return fmt.Errorf("core: alltoallv %s counts/displs length %d/%d, want %d", what, len(counts), len(displs), n)
	}
	for i := 0; i < n; i++ {
		if counts[i] < 0 {
			return fmt.Errorf("core: alltoallv %s count[%d] = %d negative", what, i, counts[i])
		}
		if displs[i] < 0 || displs[i]+counts[i] > buf.Len() {
			return fmt.Errorf("core: alltoallv %s segment %d [%d, %d) outside %d-byte buffer",
				what, i, displs[i], displs[i]+counts[i], buf.Len())
		}
	}
	return nil
}
