package core

import (
	"fmt"
	"sort"

	"alltoallx/internal/comm"
	"alltoallx/internal/trace"
)

// Alltoallver is a persistent variable-sized all-to-all operation bound to
// one rank of a communicator — the MPI_Alltoallv counterpart of
// Alltoaller, with the same lifecycle: NewV is a collective constructor
// that performs all communicator splitting and staging-buffer setup, the
// instance may be reused for any number of exchanges whose per-rank totals
// stay within the maxTotal fixed at construction, and one rank drives one
// instance (not safe for concurrent use by multiple goroutines).
type Alltoallver interface {
	// Name returns the algorithm's registry name.
	Name() string
	// Alltoallv exchanges variable-sized blocks: this rank sends
	// sendCounts[i] bytes starting at sdispls[i] to rank i and receives
	// recvCounts[j] bytes from rank j into rdispls[j]. Counts must be
	// globally consistent (recvCounts[j] here equals sendCounts of this
	// rank on j) and each rank's send and receive totals must not exceed
	// the maxTotal fixed at construction. It is exactly Start followed
	// by Wait.
	Alltoallv(send comm.Buffer, sendCounts, sdispls []int,
		recv comm.Buffer, recvCounts, rdispls []int) error
	// Start launches the same exchange off the caller's critical path
	// and returns its handle. The buffers and count/displacement slices
	// belong to the exchange until the handle completes; at most one
	// exchange per operation may be outstanding.
	Start(send comm.Buffer, sendCounts, sdispls []int,
		recv comm.Buffer, recvCounts, rdispls []int) (Handle, error)
	// Phases returns this rank's per-phase timings for the last
	// completed exchange (empty for algorithms without internal phases).
	// The returned map is the caller's copy: mutating it never affects
	// the operation's timing state. It must not be called while an
	// exchange is outstanding.
	Phases() map[trace.Phase]float64
}

// vFactory builds a v-algorithm instance; maxTotal is the largest total
// byte count any single rank sends (or receives) in one exchange —
// leader-aggregating algorithms size their staging buffers from it.
type vFactory func(c comm.Comm, maxTotal int, o Options) (Alltoallver, error)

var vRegistry = map[string]vFactory{
	"pairwise":    newVPairwise,
	"nonblocking": newVNonblocking,
	"node-aware": func(c comm.Comm, maxTotal int, o Options) (Alltoallver, error) {
		return newVLeadered(c, maxTotal, o, true)
	},
	"locality-aware": func(c comm.Comm, maxTotal int, o Options) (Alltoallver, error) {
		return newVLeadered(c, maxTotal, o, false)
	},
}

// init registers the tuned v-dispatcher separately: its factory calls NewV
// at dispatch time, which would otherwise form an initialization cycle
// with the registry.
func init() { vRegistry[algoTuned] = newTunedV }

// NamesV returns all registered alltoallv algorithm names, sorted.
func NamesV() []string {
	names := make([]string, 0, len(vRegistry))
	for n := range vRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NewV constructs a persistent alltoallv of the named algorithm on c, able
// to exchange up to maxTotal bytes per rank per direction. It is
// collective over c (node-aware algorithms split communicators during
// construction), and maxTotal — the largest send or receive total of ANY
// rank, not just this one — must be passed identically by every rank:
// leader-aggregating algorithms size their staging buffers from it.
func NewV(name string, c comm.Comm, maxTotal int, o Options) (Alltoallver, error) {
	f, ok := vRegistry[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown alltoallv algorithm %q (have %v)", name, NamesV())
	}
	if c == nil {
		return nil, errNilComm
	}
	if maxTotal <= 0 {
		return nil, fmt.Errorf("core: maxTotal must be positive, got %d", maxTotal)
	}
	return f(c, maxTotal, o.withDefaults())
}

// basicV wraps a stateless v-exchange function as a persistent
// Alltoallver, adding argument validation, the maxTotal ceiling and phase
// timing.
type basicV struct {
	name     string
	c        comm.Comm
	maxTotal int
	rec      *trace.Recorder
	st       OpState
	run      func(c comm.Comm, send comm.Buffer, sendCounts, sdispls []int,
		recv comm.Buffer, recvCounts, rdispls []int) error
}

func (b *basicV) Name() string { return b.name }

func (b *basicV) Phases() map[trace.Phase]float64 { return b.rec.Snapshot() }

func (b *basicV) Start(send comm.Buffer, sendCounts, sdispls []int,
	recv comm.Buffer, recvCounts, rdispls []int) (Handle, error) {
	if err := checkVCall(b.c, b.maxTotal, send, sendCounts, sdispls, recv, recvCounts, rdispls); err != nil {
		return nil, err
	}
	return b.st.Start(b.c, func() error {
		b.rec.Reset()
		stop := b.rec.Time(trace.PhaseTotal)
		err := b.run(b.c, send, sendCounts, sdispls, recv, recvCounts, rdispls)
		stop()
		return err
	})
}

func (b *basicV) Alltoallv(send comm.Buffer, sendCounts, sdispls []int,
	recv comm.Buffer, recvCounts, rdispls []int) error {
	h, err := b.Start(send, sendCounts, sdispls, recv, recvCounts, rdispls)
	if err != nil {
		return err
	}
	return h.Wait()
}

func newVPairwise(c comm.Comm, maxTotal int, _ Options) (Alltoallver, error) {
	return &basicV{name: "pairwise", c: c, maxTotal: maxTotal,
		rec: trace.NewRecorder(c.Now), run: alltoallvPairwise}, nil
}

func newVNonblocking(c comm.Comm, maxTotal int, _ Options) (Alltoallver, error) {
	return &basicV{name: "nonblocking", c: c, maxTotal: maxTotal,
		rec: trace.NewRecorder(c.Now), run: alltoallvNonblocking}, nil
}

// Alltoallv performs a one-shot variable-sized all-to-all with pairwise
// stepping.
//
// Deprecated: construct a persistent operation with NewV("pairwise", ...)
// instead; the free function re-validates on every call and cannot take
// part in tuned dispatch.
func Alltoallv(c comm.Comm, send comm.Buffer, sendCounts, sdispls []int,
	recv comm.Buffer, recvCounts, rdispls []int) error {
	if err := checkVArgs(c, send, sendCounts, sdispls, "send"); err != nil {
		return err
	}
	if err := checkVArgs(c, recv, recvCounts, rdispls, "recv"); err != nil {
		return err
	}
	return alltoallvPairwise(c, send, sendCounts, sdispls, recv, recvCounts, rdispls)
}

// AlltoallvNonblocking performs a one-shot variable-sized all-to-all with
// every exchange posted up front.
//
// Deprecated: construct a persistent operation with
// NewV("nonblocking", ...) instead.
func AlltoallvNonblocking(c comm.Comm, send comm.Buffer, sendCounts, sdispls []int,
	recv comm.Buffer, recvCounts, rdispls []int) error {
	if err := checkVArgs(c, send, sendCounts, sdispls, "send"); err != nil {
		return err
	}
	if err := checkVArgs(c, recv, recvCounts, rdispls, "recv"); err != nil {
		return err
	}
	return alltoallvNonblocking(c, send, sendCounts, sdispls, recv, recvCounts, rdispls)
}

// alltoallvPairwise is the variable-sized analogue of Algorithm 1: rank r
// sends sendCounts[i] bytes at sdispls[i] to rank i and receives
// recvCounts[j] bytes from rank j into rdispls[j], in p-1 disjoint
// Sendrecv steps, so exactly one exchange is in flight per rank.
func alltoallvPairwise(c comm.Comm, send comm.Buffer, sendCounts, sdispls []int,
	recv comm.Buffer, recvCounts, rdispls []int) error {
	n, r := c.Size(), c.Rank()
	if sendCounts[r] != recvCounts[r] {
		return fmt.Errorf("core: alltoallv self counts differ: send %d, recv %d", sendCounts[r], recvCounts[r])
	}
	if err := c.Memcpy(
		recv.Slice(rdispls[r], recvCounts[r]),
		send.Slice(sdispls[r], sendCounts[r])); err != nil {
		return err
	}
	for i := 1; i < n; i++ {
		sp := (r + i) % n
		rp := (r - i + n) % n
		if err := c.Sendrecv(
			send.Slice(sdispls[sp], sendCounts[sp]), sp, tagAlltoall,
			recv.Slice(rdispls[rp], recvCounts[rp]), rp, tagAlltoall); err != nil {
			return fmt.Errorf("core: alltoallv step %d (to %d, from %d): %w", i, sp, rp, err)
		}
	}
	return nil
}

// alltoallvNonblocking is the variable-sized analogue of Algorithm 2:
// every exchange posted up front, one wait at the end.
func alltoallvNonblocking(c comm.Comm, send comm.Buffer, sendCounts, sdispls []int,
	recv comm.Buffer, recvCounts, rdispls []int) error {
	n, r := c.Size(), c.Rank()
	reqs := make([]comm.Request, 0, 2*(n-1))
	for i := 1; i < n; i++ {
		sp := (r + i) % n
		rp := (r - i + n) % n
		rq, err := c.Irecv(recv.Slice(rdispls[rp], recvCounts[rp]), rp, tagAlltoall)
		if err != nil {
			return err
		}
		sq, err := c.Isend(send.Slice(sdispls[sp], sendCounts[sp]), sp, tagAlltoall)
		if err != nil {
			return err
		}
		reqs = append(reqs, rq, sq)
	}
	if err := c.Memcpy(
		recv.Slice(rdispls[r], recvCounts[r]),
		send.Slice(sdispls[r], sendCounts[r])); err != nil {
		return err
	}
	return c.WaitAll(reqs)
}

// runInnerV dispatches an internal variable-sized exchange. Bruck has no
// alltoallv analogue here, so only pairwise and nonblocking are accepted
// (checked once at construction by the algorithms that use it).
func runInnerV(c comm.Comm, inner Inner, send comm.Buffer, sendCounts, sdispls []int,
	recv comm.Buffer, recvCounts, rdispls []int) error {
	if c.Size() == 1 {
		return c.Memcpy(recv.Slice(rdispls[0], recvCounts[0]), send.Slice(sdispls[0], sendCounts[0]))
	}
	switch inner {
	case InnerPairwise:
		return alltoallvPairwise(c, send, sendCounts, sdispls, recv, recvCounts, rdispls)
	case InnerNonblocking:
		return alltoallvNonblocking(c, send, sendCounts, sdispls, recv, recvCounts, rdispls)
	}
	return fmt.Errorf("core: inner exchange %q not supported for alltoallv (use %q or %q)",
		inner, InnerPairwise, InnerNonblocking)
}

// checkInnerV validates the inner-exchange choice for v-algorithms at
// construction time, so a bad option fails in NewV rather than on the
// first hot-path call.
func checkInnerV(inner Inner) error {
	if inner != InnerPairwise && inner != InnerNonblocking {
		return fmt.Errorf("core: Options.Inner=%q not supported for alltoallv (use %q or %q)",
			inner, InnerPairwise, InnerNonblocking)
	}
	return nil
}

// DisplsFromCounts builds contiguous displacements for the given per-peer
// byte counts, returning the displacement slice and the total length —
// the common packing helper for Alltoallv callers (an exclusive prefix
// sum, like computing MPI displacements from counts).
func DisplsFromCounts(counts []int) (displs []int, total int) {
	displs = make([]int, len(counts))
	for i, cnt := range counts {
		displs[i] = total
		total += cnt
	}
	return displs, total
}

// CountsFromSizes builds contiguous displacements for per-peer byte
// counts.
//
// Deprecated: renamed to DisplsFromCounts (the result is displacements,
// not counts); this alias forwards to it.
func CountsFromSizes(counts []int) (displs []int, total int) {
	return DisplsFromCounts(counts)
}

// checkVCall validates both sides of a persistent Alltoallv invocation,
// including the maxTotal ceiling fixed at construction.
func checkVCall(c comm.Comm, maxTotal int, send comm.Buffer, sendCounts, sdispls []int,
	recv comm.Buffer, recvCounts, rdispls []int) error {
	if err := checkVArgs(c, send, sendCounts, sdispls, "send"); err != nil {
		return err
	}
	if err := checkVArgs(c, recv, recvCounts, rdispls, "recv"); err != nil {
		return err
	}
	if total := sumCounts(sendCounts); total > maxTotal {
		return fmt.Errorf("core: alltoallv send total %d exceeds maxTotal %d fixed at construction", total, maxTotal)
	}
	if total := sumCounts(recvCounts); total > maxTotal {
		return fmt.Errorf("core: alltoallv recv total %d exceeds maxTotal %d fixed at construction", total, maxTotal)
	}
	return nil
}

func sumCounts(counts []int) int {
	total := 0
	for _, cnt := range counts {
		total += cnt
	}
	return total
}

func checkVArgs(c comm.Comm, buf comm.Buffer, counts, displs []int, what string) error {
	n := c.Size()
	if len(counts) != n || len(displs) != n {
		return fmt.Errorf("core: alltoallv %s counts/displs length %d/%d, want %d", what, len(counts), len(displs), n)
	}
	for i := 0; i < n; i++ {
		if counts[i] < 0 {
			return fmt.Errorf("core: alltoallv %s count[%d] = %d negative", what, i, counts[i])
		}
		if displs[i] < 0 || displs[i]+counts[i] > buf.Len() {
			return fmt.Errorf("core: alltoallv %s segment %d [%d, %d) outside %d-byte buffer",
				what, i, displs[i], displs[i]+counts[i], buf.Len())
		}
	}
	return nil
}
