package core

import (
	"fmt"
	"testing"
	"testing/quick"

	"alltoallx/internal/comm"
	"alltoallx/internal/runtime"
	"alltoallx/internal/testutil"
)

// vPattern computes deterministic per-pair byte counts: rank s sends
// (s+d) % 7 + extra bytes to rank d, so counts vary (including zeros).
func vCount(s, d int) int { return (s+d)%7 + (s*d)%3 }

func runAlltoallvCase(t *testing.T, n int, nonblocking bool) {
	t.Helper()
	err := runtime.Run(runtime.Config{Ranks: n}, func(c comm.Comm) error {
		r := c.Rank()
		sendCounts := make([]int, n)
		recvCounts := make([]int, n)
		for i := 0; i < n; i++ {
			sendCounts[i] = vCount(r, i)
			recvCounts[i] = vCount(i, r)
		}
		sdispls, sTotal := CountsFromSizes(sendCounts)
		rdispls, rTotal := CountsFromSizes(recvCounts)
		send := comm.Alloc(sTotal)
		recv := comm.Alloc(rTotal)
		for i := 0; i < n; i++ {
			seg := send.Slice(sdispls[i], sendCounts[i])
			testutil.FillBlock(seg, r, i)
		}
		var err error
		if nonblocking {
			err = AlltoallvNonblocking(c, send, sendCounts, sdispls, recv, recvCounts, rdispls)
		} else {
			err = Alltoallv(c, send, sendCounts, sdispls, recv, recvCounts, rdispls)
		}
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			seg := recv.Slice(rdispls[i], recvCounts[i])
			if err := testutil.CheckBlock(seg, i, r); err != nil {
				return fmt.Errorf("from %d: %w", i, err)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallv(t *testing.T) {
	t.Parallel()
	for _, n := range []int{1, 2, 5, 8, 13} {
		for _, nb := range []bool{false, true} {
			n, nb := n, nb
			t.Run(fmt.Sprintf("n%d_nb%v", n, nb), func(t *testing.T) {
				t.Parallel()
				runAlltoallvCase(t, n, nb)
			})
		}
	}
}

// TestAlltoallvMatchesFixed: with uniform counts, alltoallv must reproduce
// the fixed-size all-to-all exactly.
func TestAlltoallvMatchesFixed(t *testing.T) {
	t.Parallel()
	f := func(blockRaw, nRaw uint8) bool {
		n := int(nRaw%6) + 2
		block := int(blockRaw%16) + 1
		ok := true
		err := runtime.Run(runtime.Config{Ranks: n}, func(c comm.Comm) error {
			r := c.Rank()
			counts := make([]int, n)
			for i := range counts {
				counts[i] = block
			}
			displs, total := CountsFromSizes(counts)
			send := comm.Alloc(total)
			recv := comm.Alloc(total)
			testutil.FillAlltoall(send, r, n, block)
			if err := Alltoallv(c, send, counts, displs, recv, counts, displs); err != nil {
				return err
			}
			if err := testutil.CheckAlltoall(recv, r, n, block); err != nil {
				ok = false
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestAlltoallvErrors(t *testing.T) {
	t.Parallel()
	err := runtime.Run(runtime.Config{Ranks: 2}, func(c comm.Comm) error {
		good := []int{1, 1}
		displs := []int{0, 1}
		buf := comm.Alloc(2)
		if err := Alltoallv(c, buf, []int{1}, displs, buf, good, displs); err == nil {
			return fmt.Errorf("short counts accepted")
		}
		if err := Alltoallv(c, buf, []int{-1, 1}, displs, buf, good, displs); err == nil {
			return fmt.Errorf("negative count accepted")
		}
		if err := Alltoallv(c, buf, []int{2, 2}, displs, buf, good, displs); err == nil {
			return fmt.Errorf("overflowing segment accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCountsFromSizes(t *testing.T) {
	t.Parallel()
	displs, total := CountsFromSizes([]int{3, 0, 5, 2})
	want := []int{0, 3, 3, 8}
	if total != 10 {
		t.Fatalf("total = %d", total)
	}
	for i := range want {
		if displs[i] != want[i] {
			t.Fatalf("displs = %v, want %v", displs, want)
		}
	}
}
