package core

import (
	"fmt"

	"alltoallx/internal/comm"
)

// bruckState is the persistent form of the Bruck algorithm with cached
// staging buffers.
type bruckState struct {
	*basic
	tmp, packS, packR comm.Buffer
}

func newBruck(c comm.Comm, maxBlock int, _ Options) (Alltoaller, error) {
	st := &bruckState{}
	st.basic = newBasic("bruck", c, maxBlock, st.run)
	return st, nil
}

func (st *bruckState) run(c comm.Comm, send, recv comm.Buffer, block int) error {
	n := c.Size()
	tmp := ensureStage(&st.tmp, send, n*block)
	half := (n + 1) / 2
	packS := ensureStage(&st.packS, send, half*block)
	packR := ensureStage(&st.packR, send, half*block)
	return alltoallBruckBuf(c, send, recv, block, tmp, packS, packR)
}

// alltoallBruck is the allocation-per-call form used as an inner exchange.
func alltoallBruck(c comm.Comm, send, recv comm.Buffer, block int) error {
	n := c.Size()
	alloc := func(k int) comm.Buffer {
		if send.IsVirtual() {
			return comm.Virtual(k)
		}
		return comm.Alloc(k)
	}
	half := (n + 1) / 2
	return alltoallBruckBuf(c, send, recv, block, alloc(n*block), alloc(half*block), alloc(half*block))
}

// alltoallBruckBuf implements the Bruck algorithm: ceil(log2 p) exchange
// steps, each moving up to p/2 blocks — the message-count-optimal exchange
// the paper identifies as the small-message choice (and the likely system
// MPI algorithm at small sizes).
//
// Phase 1 rotates so local block i is the data destined to rank r+i. In
// step k (k = 1, 2, 4, ...) every rank forwards the blocks whose index has
// bit k set to rank r+k, storing received blocks at the same indices; a
// block with displacement i therefore reaches its destination after the
// steps matching i's binary digits, at which point local block i holds the
// data *from* rank r-i. Phase 3 inverts that rotation into recv order.
func alltoallBruckBuf(c comm.Comm, send, recv comm.Buffer, block int, tmp, packS, packR comm.Buffer) error {
	n, r := c.Size(), c.Rank()
	if tmp.Len() < n*block {
		return fmt.Errorf("core: bruck tmp buffer %d short of %d", tmp.Len(), n*block)
	}
	// Phase 1: rotation tmp[i] = send[(r+i) mod n].
	for i := 0; i < n; i++ {
		src := (r + i) % n
		if _, err := comm.CopyData(tmp.Slice(i*block, block), send.Slice(src*block, block)); err != nil {
			return err
		}
	}
	if err := c.ChargeCopy(n*block, n); err != nil {
		return err
	}
	// Phase 2: log-step exchanges.
	for k := 1; k < n; k <<= 1 {
		dst := (r + k) % n
		src := (r - k + n) % n
		m := 0
		for i := 0; i < n; i++ {
			if i&k == 0 {
				continue
			}
			if _, err := comm.CopyData(packS.Slice(m*block, block), tmp.Slice(i*block, block)); err != nil {
				return err
			}
			m++
		}
		if err := c.ChargeCopy(m*block, m); err != nil {
			return err
		}
		if err := c.Sendrecv(
			packS.Slice(0, m*block), dst, tagAlltoall+k,
			packR.Slice(0, m*block), src, tagAlltoall+k); err != nil {
			return fmt.Errorf("core: bruck step k=%d: %w", k, err)
		}
		m = 0
		for i := 0; i < n; i++ {
			if i&k == 0 {
				continue
			}
			if _, err := comm.CopyData(tmp.Slice(i*block, block), packR.Slice(m*block, block)); err != nil {
				return err
			}
			m++
		}
		if err := c.ChargeCopy(m*block, m); err != nil {
			return err
		}
	}
	// Phase 3: tmp[i] now holds data from rank (r-i); invert into recv.
	for i := 0; i < n; i++ {
		src := (r - i + n) % n
		if _, err := comm.CopyData(recv.Slice(src*block, block), tmp.Slice(i*block, block)); err != nil {
			return err
		}
	}
	return c.ChargeCopy(n*block, n)
}
