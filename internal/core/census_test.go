package core

import (
	"fmt"
	"math"
	"testing"

	"alltoallx/internal/comm"
	"alltoallx/internal/netmodel"
	"alltoallx/internal/sim"
)

// census runs one algorithm under the simulator with no barrier and
// returns the exact point-to-point message count — the structural quantity
// (messages injected per exchange) that the paper's analysis is built on.
func census(t *testing.T, algo string, nodes, ppn, block int, opts Options) uint64 {
	t.Helper()
	model := netmodel.Dane()
	model.Node = tinyNode()
	if ppn > model.Node.CoresPerNode() {
		t.Fatalf("ppn %d exceeds tiny node", ppn)
	}
	cfg := sim.ClusterConfig{Model: model, Nodes: nodes, PPN: ppn, Seed: 1}
	stats, err := sim.RunCluster(cfg, func(c comm.Comm) error {
		a, err := New(algo, c, block, opts)
		if err != nil {
			return err
		}
		send := comm.Virtual(c.Size() * block)
		recv := comm.Virtual(c.Size() * block)
		return a.Alltoall(send, recv, block)
	})
	if err != nil {
		t.Fatal(err)
	}
	return stats.Messages
}

// TestMessageCensus checks closed-form message counts per algorithm:
// these are the quantities the node-aware family is designed to reduce
// (Section 3), so they are pinned exactly.
func TestMessageCensus(t *testing.T) {
	t.Parallel()
	const (
		nodes = 3
		ppn   = 8
		block = 16
	)
	p := nodes * ppn

	t.Run("pairwise", func(t *testing.T) {
		t.Parallel()
		want := uint64(p * (p - 1)) // every ordered pair, self via memcpy
		if got := census(t, "pairwise", nodes, ppn, block, Options{}); got != want {
			t.Errorf("messages = %d, want %d", got, want)
		}
	})
	t.Run("nonblocking", func(t *testing.T) {
		t.Parallel()
		want := uint64(p * (p - 1))
		if got := census(t, "nonblocking", nodes, ppn, block, Options{}); got != want {
			t.Errorf("messages = %d, want %d", got, want)
		}
	})
	t.Run("bruck", func(t *testing.T) {
		t.Parallel()
		rounds := uint64(math.Ceil(math.Log2(float64(p))))
		want := uint64(p) * rounds // one message per rank per round
		if got := census(t, "bruck", nodes, ppn, block, Options{}); got != want {
			t.Errorf("messages = %d, want %d (rounds %d)", got, want, rounds)
		}
	})
	t.Run("hierarchical", func(t *testing.T) {
		t.Parallel()
		// Gather: ppn-1 per node; leader exchange: nodes*(nodes-1);
		// scatter: ppn-1 per node.
		want := uint64(2*nodes*(ppn-1) + nodes*(nodes-1))
		if got := census(t, "hierarchical", nodes, ppn, block, Options{}); got != want {
			t.Errorf("messages = %d, want %d", got, want)
		}
	})
	t.Run("node-aware", func(t *testing.T) {
		t.Parallel()
		// Inter: each rank to its counterpart on every other node;
		// intra: each rank with every other rank of its node.
		want := uint64(p*(nodes-1) + nodes*ppn*(ppn-1))
		if got := census(t, "node-aware", nodes, ppn, block, Options{}); got != want {
			t.Errorf("messages = %d, want %d", got, want)
		}
	})
	t.Run("locality-aware", func(t *testing.T) {
		t.Parallel()
		const g = 4
		tg := (ppn / g) * nodes // total groups
		// Inter: each rank to its counterpart in every other group;
		// intra: within each group of g.
		want := uint64(p*(tg-1) + tg*g*(g-1))
		if got := census(t, "locality-aware", nodes, ppn, block, Options{PPG: g}); got != want {
			t.Errorf("messages = %d, want %d", got, want)
		}
	})
	t.Run("multileader-node-aware", func(t *testing.T) {
		t.Parallel()
		const q = 4
		nL := ppn / q
		leaders := nodes * nL
		// Gather + scatter within leader groups, inter among same-slot
		// leaders across nodes, intra among each node's leaders.
		want := uint64(2*leaders*(q-1) + leaders*(nodes-1) + nodes*nL*(nL-1))
		if got := census(t, "multileader-node-aware", nodes, ppn, block, Options{PPL: q}); got != want {
			t.Errorf("messages = %d, want %d", got, want)
		}
	})
}

// TestDegenerateEquivalences verifies the paper's §3.3 observation: with
// every rank its own leader (PPL=1), multileader-node-aware reduces to the
// node-aware algorithm — message-for-message.
func TestDegenerateEquivalences(t *testing.T) {
	t.Parallel()
	const (
		nodes = 3
		ppn   = 8
		block = 16
	)
	mlna1 := census(t, "multileader-node-aware", nodes, ppn, block, Options{PPL: 1})
	na := census(t, "node-aware", nodes, ppn, block, Options{})
	if mlna1 != na {
		t.Errorf("multileader-node-aware with PPL=1 sends %d messages, node-aware %d", mlna1, na)
	}
	// One whole-node group makes locality-aware exactly node-aware.
	la := census(t, "locality-aware", nodes, ppn, block, Options{PPG: ppn})
	if la != na {
		t.Errorf("locality-aware with PPG=ppn sends %d messages, node-aware %d", la, na)
	}
	// Multileader with PPL=ppn is exactly hierarchical.
	ml := census(t, "multileader", nodes, ppn, block, Options{PPL: ppn})
	hier := census(t, "hierarchical", nodes, ppn, block, Options{})
	if ml != hier {
		t.Errorf("multileader with PPL=ppn sends %d messages, hierarchical %d", ml, hier)
	}
}

// TestCensusScalesWithNodes: inter-node message reduction is the point of
// the paper; at fixed ppn the node-aware count must grow linearly in
// nodes^2 only through the counterpart term, staying far below direct.
func TestCensusScalesWithNodes(t *testing.T) {
	t.Parallel()
	const ppn, block = 8, 8
	for _, nodes := range []int{2, 4} {
		direct := census(t, "pairwise", nodes, ppn, block, Options{})
		na := census(t, "node-aware", nodes, ppn, block, Options{})
		if na >= direct {
			t.Errorf("nodes=%d: node-aware (%d msgs) not below direct (%d)", nodes, na, direct)
		}
	}
	_ = fmt.Sprint
}
