// Package core implements the paper's contribution: the all-to-all
// algorithm family for emerging many-core systems.
//
// Baselines (Section 2): pairwise exchange (Algorithm 1), nonblocking
// (Algorithm 2), the Bruck algorithm, and a batched hybrid (Section 2.1).
//
// Node-aware family (Section 3): hierarchical and multi-leader all-to-all
// (Algorithm 3), node-aware aggregation (Algorithm 4), and the paper's two
// novel algorithms — locality-aware aggregation (Algorithm 4 with several
// groups per node, Section 3.2) and multi-leader + node-aware (Algorithm 5,
// Section 3.3). A system-MPI emulation reproduces the vendor baseline the
// paper compares against, and a "tuned" meta-algorithm (Section 5's
// dynamic-selection future work) dispatches among the family per message
// size from a Dispatch spec precomputed by internal/autotune.
//
// Every algorithm follows MPI_Alltoall semantics: with p ranks and block
// bytes per destination, send block i goes to rank i and recv block j ends
// up holding rank j's contribution. Algorithms are persistent objects: New
// performs all communicator splitting and staging-buffer setup (the paper
// also constructs sub-communicators outside its timed regions), and
// Alltoall is the measured hot path.
package core

import (
	"errors"
	"fmt"
	"sort"

	"alltoallx/internal/coll"
	"alltoallx/internal/comm"
	"alltoallx/internal/netmodel"
	"alltoallx/internal/trace"
)

// errNilComm rejects a nil communicator before any constructor touches it.
var errNilComm = errors.New("core: nil communicator")

// Inner selects the algorithm used for the all-to-all exchanges *inside*
// the node-aware family (the paper benchmarks each algorithm with both
// pairwise and nonblocking inner exchanges; Bruck is also available).
type Inner string

// Inner exchange choices.
const (
	InnerPairwise    Inner = "pairwise"
	InnerNonblocking Inner = "nonblocking"
	InnerBruck       Inner = "bruck"
)

// Tag bases: one per phase so concurrent phases on one communicator can
// never cross-match.
const (
	tagAlltoall = 101
	tagGather   = 201
	tagScatter  = 301
)

// Options configures algorithm construction. The zero value is usable for
// every algorithm except "system-mpi" (which requires Sys) and "tuned"
// (which requires Table): zero fields take the documented defaults in New.
// The JSON tags are the persistence format of autotune tables; Table is
// deliberately excluded (a dispatch spec nested inside a dispatch entry
// would be meaningless — "tuned" cannot be a tabled winner).
type Options struct {
	// Inner is the exchange used for internal all-to-alls (default
	// pairwise, the paper's solid lines).
	Inner Inner `json:"inner,omitempty"`
	// PPL is processes per leader for multileader and
	// multileader-node-aware (default 4; the paper tests 4, 8, 16).
	PPL int `json:"ppl,omitempty"`
	// PPG is processes per group for locality-aware (default 4; the paper
	// tests 4, 8, 16).
	PPG int `json:"ppg,omitempty"`
	// BatchWindow is the in-flight message window of the batched
	// algorithm (default 32).
	BatchWindow int `json:"batchWindow,omitempty"`
	// GatherKind selects the gather/scatter tree for hierarchical
	// algorithms (default Linear, matching large-block MPI behavior).
	GatherKind coll.Kind `json:"gatherKind,omitempty"`
	// Sys is the system-MPI emulation profile (required for "system-mpi").
	// It is always emitted, zero or not: "omitzero" would need Go 1.24's
	// encoder and this module supports 1.23, so a conditional tag would
	// make the on-disk format differ by toolchain.
	Sys netmodel.SysProfile `json:"sys"`
	// Table is the dispatch spec for the "tuned" meta-algorithm (required
	// for "tuned", ignored otherwise). Build one offline with
	// internal/autotune and convert via Table.Dispatch.
	Table *Dispatch `json:"-"`
	// Online enables the tuned dispatcher's run-time refinement loop:
	// live per-bucket timings feed an incumbent-vs-challenger comparison
	// that re-promotes winners as the machine drifts away from the table.
	// Nil (the default) dispatches statically. See OnlineConfig.
	Online *OnlineConfig `json:"-"`
}

func (o Options) withDefaults() Options {
	if o.Inner == "" {
		o.Inner = InnerPairwise
	}
	if o.PPL == 0 {
		o.PPL = 4
	}
	if o.PPG == 0 {
		o.PPG = 4
	}
	if o.BatchWindow == 0 {
		o.BatchWindow = 32
	}
	return o
}

// Alltoaller is a persistent all-to-all operation bound to one rank of a
// communicator. Instances are created collectively by New (all ranks of
// the communicator must construct together, since topology-aware
// algorithms split communicators during setup), may be reused for any
// number of exchanges up to the maxBlock fixed at construction, and are
// not safe for concurrent use by multiple goroutines — like an MPI
// persistent request, one rank drives one instance. At most one exchange
// per operation may be outstanding at a time: Start fails until the
// previous handle has been completed by Wait or Test.
type Alltoaller interface {
	// Name returns the algorithm's registry name.
	Name() string
	// Alltoall exchanges block bytes per rank pair: send and recv must
	// each hold Size()*block bytes. It is exactly Start followed by
	// Wait.
	Alltoall(send, recv comm.Buffer, block int) error
	// Start launches the same exchange off the caller's critical path
	// and returns its handle, so communication can overlap computation
	// (real overlap on the live runtime, modeled overlap with
	// comm.Compute in the simulator). The buffers belong to the exchange
	// until the handle completes.
	Start(send, recv comm.Buffer, block int) (Handle, error)
	// Phases returns this rank's per-phase timings for the last
	// completed exchange (empty for algorithms without internal phases).
	// The returned map is the caller's copy: mutating it never affects
	// the operation's timing state. It must not be called while an
	// exchange is outstanding.
	Phases() map[trace.Phase]float64
}

// factory builds an algorithm instance; maxBlock is the largest block the
// instance must support (staging buffers are sized for it).
type factory func(c comm.Comm, maxBlock int, o Options) (Alltoaller, error)

var registry = map[string]factory{
	"pairwise":    newPairwise,
	"nonblocking": newNonblocking,
	"batched":     newBatched,
	"bruck":       newBruck,
	"hierarchical": func(c comm.Comm, maxBlock int, o Options) (Alltoaller, error) {
		return newHierarchical(c, maxBlock, o, true)
	},
	"multileader": func(c comm.Comm, maxBlock int, o Options) (Alltoaller, error) {
		return newHierarchical(c, maxBlock, o, false)
	},
	"node-aware": func(c comm.Comm, maxBlock int, o Options) (Alltoaller, error) {
		return newNodeAware(c, maxBlock, o, true)
	},
	"locality-aware": func(c comm.Comm, maxBlock int, o Options) (Alltoaller, error) {
		return newNodeAware(c, maxBlock, o, false)
	},
	"multileader-node-aware": newMultileaderNodeAware,
}

// init registers system-mpi separately: its factory recursively calls New,
// which would otherwise form an initialization cycle with the registry.
func init() { registry["system-mpi"] = newSystemMPI }

// Names returns all registered algorithm names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// New constructs a persistent all-to-all of the named algorithm on c,
// able to exchange blocks up to maxBlock bytes. It is collective over c
// (topology-aware algorithms split communicators during construction).
func New(name string, c comm.Comm, maxBlock int, o Options) (Alltoaller, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown algorithm %q (have %v)", name, Names())
	}
	if c == nil {
		return nil, errNilComm
	}
	if maxBlock <= 0 {
		return nil, fmt.Errorf("core: maxBlock must be positive, got %d", maxBlock)
	}
	return f(c, maxBlock, o.withDefaults())
}

// checkArgs validates an Alltoall invocation.
func checkArgs(c comm.Comm, send, recv comm.Buffer, block, maxBlock int) error {
	if block <= 0 {
		return fmt.Errorf("core: block must be positive, got %d", block)
	}
	if block > maxBlock {
		return fmt.Errorf("core: block %d exceeds maxBlock %d fixed at construction", block, maxBlock)
	}
	need := block * c.Size()
	if send.Len() < need {
		return fmt.Errorf("core: send buffer %d short of %d (%d ranks x %d)", send.Len(), need, c.Size(), block)
	}
	if recv.Len() < need {
		return fmt.Errorf("core: recv buffer %d short of %d (%d ranks x %d)", recv.Len(), need, c.Size(), block)
	}
	return nil
}

// ensureStage (re)allocates *buf to n bytes matching ref's virtualness.
// Staging buffers are kept across calls; they are only rebuilt when the
// caller switches between real and virtual payloads.
func ensureStage(buf *comm.Buffer, ref comm.Buffer, n int) comm.Buffer {
	if buf.Len() != n || buf.IsVirtual() != ref.IsVirtual() {
		if ref.IsVirtual() {
			*buf = comm.Virtual(n)
		} else {
			*buf = comm.Alloc(n)
		}
	}
	return *buf
}

// runInner dispatches an internal all-to-all exchange.
func runInner(c comm.Comm, inner Inner, send, recv comm.Buffer, block int) error {
	if c.Size() == 1 {
		return c.Memcpy(recv.Slice(0, block), send.Slice(0, block))
	}
	switch inner {
	case InnerPairwise:
		return alltoallPairwise(c, send, recv, block)
	case InnerNonblocking:
		return alltoallNonblocking(c, send, recv, block)
	case InnerBruck:
		return alltoallBruck(c, send, recv, block)
	}
	return fmt.Errorf("core: unknown inner exchange %q", inner)
}
