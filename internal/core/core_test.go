package core

import (
	"fmt"
	"strings"
	"testing"

	"alltoallx/internal/coll"
	"alltoallx/internal/comm"
	"alltoallx/internal/netmodel"
	"alltoallx/internal/runtime"
	"alltoallx/internal/sim"
	"alltoallx/internal/testutil"
	"alltoallx/internal/topo"
	"alltoallx/internal/trace"
)

// tinyNode is a small 2-socket, 2-NUMA-per-socket, 2-core node: 8 ranks
// per node, enough structure to exercise every locality level.
func tinyNode() topo.Spec { return topo.Spec{Sockets: 2, NumaPerSocket: 2, CoresPerNuma: 2} }

// liveBody returns the per-rank SPMD body that builds the named algorithm,
// runs the pattern all-to-all twice (persistence check), and verifies.
func liveBody(name string, opts Options, block int) func(c comm.Comm) error {
	return func(c comm.Comm) error {
		p, rank := c.Size(), c.Rank()
		a, err := New(name, c, block, opts)
		if err != nil {
			return err
		}
		send := comm.Alloc(p * block)
		recv := comm.Alloc(p * block)
		testutil.FillAlltoall(send, rank, p, block)
		for iter := 0; iter < 2; iter++ {
			for i := range recv.Bytes() {
				recv.Bytes()[i] = 0xEE
			}
			if err := a.Alltoall(send, recv, block); err != nil {
				return fmt.Errorf("iter %d: %w", iter, err)
			}
			if err := testutil.CheckAlltoall(recv, rank, p, block); err != nil {
				return fmt.Errorf("iter %d: %w", iter, err)
			}
		}
		return nil
	}
}

func mapping(t *testing.T, nodes, ppn int) *topo.Mapping {
	t.Helper()
	m, err := topo.NewMapping(tinyNode(), nodes, ppn)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestAlltoallLiveCorrectness runs every algorithm on the live runtime
// across topologies, inner exchanges and block sizes.
func TestAlltoallLiveCorrectness(t *testing.T) {
	t.Parallel()
	type cfg struct {
		name  string
		nodes int
		ppn   int
		opts  Options
		block int
	}
	var cases []cfg
	for _, inner := range []Inner{InnerPairwise, InnerNonblocking, InnerBruck} {
		for _, shape := range []struct{ nodes, ppn int }{{2, 8}, {3, 4}} {
			cases = append(cases,
				cfg{"hierarchical", shape.nodes, shape.ppn, Options{Inner: inner}, 3},
				cfg{"multileader", shape.nodes, shape.ppn, Options{Inner: inner, PPL: 2}, 3},
				cfg{"node-aware", shape.nodes, shape.ppn, Options{Inner: inner}, 3},
				cfg{"locality-aware", shape.nodes, shape.ppn, Options{Inner: inner, PPG: 2}, 3},
				cfg{"multileader-node-aware", shape.nodes, shape.ppn, Options{Inner: inner, PPL: 2}, 3},
			)
		}
	}
	// Direct algorithms don't use inner exchanges; cover block-size
	// variety (including a rendezvous-sized block) and odd rank counts.
	for _, block := range []int{1, 4, 64, 9000} {
		cases = append(cases,
			cfg{"pairwise", 2, 5, Options{}, block},
			cfg{"nonblocking", 2, 5, Options{}, block},
			cfg{"batched", 2, 5, Options{BatchWindow: 3}, block},
			cfg{"bruck", 2, 5, Options{}, block},
		)
	}
	// Leader/group size sweeps.
	for _, q := range []int{1, 2, 4, 8} {
		cases = append(cases,
			cfg{"multileader", 2, 8, Options{PPL: q}, 2},
			cfg{"locality-aware", 2, 8, Options{PPG: q}, 2},
			cfg{"multileader-node-aware", 2, 8, Options{PPL: q}, 2},
		)
	}
	// Binomial gather/scatter path.
	cases = append(cases,
		cfg{"hierarchical", 2, 8, Options{GatherKind: coll.Binomial}, 5},
		cfg{"multileader-node-aware", 2, 8, Options{PPL: 4, GatherKind: coll.Binomial}, 5},
	)
	// System MPI emulation around both cutovers.
	sysOpts := Options{Sys: netmodel.SysProfile{
		SmallAlgo: "bruck", SmallMax: 8,
		MidAlgo: "nonblocking", MidMax: 32,
		LargeAlgo: "pairwise", OverheadScale: 1,
	}}
	cases = append(cases,
		cfg{"system-mpi", 2, 4, sysOpts, 4},
		cfg{"system-mpi", 2, 4, sysOpts, 16},
		cfg{"system-mpi", 2, 4, sysOpts, 64},
	)

	for _, tc := range cases {
		tc := tc
		label := fmt.Sprintf("%s/n%d_ppn%d_b%d_%s_ppl%d_ppg%d",
			tc.name, tc.nodes, tc.ppn, tc.block, tc.opts.Inner, tc.opts.PPL, tc.opts.PPG)
		t.Run(label, func(t *testing.T) {
			t.Parallel()
			m := mapping(t, tc.nodes, tc.ppn)
			if err := runtime.Run(runtime.Config{Mapping: m}, liveBody(tc.name, tc.opts, tc.block)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestAlltoallSimulatedCorrectness runs every algorithm under the
// discrete-event simulator with real payloads: the virtual-time transport
// must deliver exactly the same bytes as the live one.
func TestAlltoallSimulatedCorrectness(t *testing.T) {
	t.Parallel()
	model := netmodel.Dane()
	model.Node = tinyNode()
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"pairwise", Options{}},
		{"nonblocking", Options{}},
		{"batched", Options{BatchWindow: 4}},
		{"bruck", Options{}},
		{"hierarchical", Options{}},
		{"multileader", Options{PPL: 2}},
		{"node-aware", Options{}},
		{"locality-aware", Options{PPG: 2}},
		{"multileader-node-aware", Options{PPL: 2}},
		{"multileader-node-aware/nonblocking", Options{PPL: 4, Inner: InnerNonblocking}},
		{"locality-aware/bruck", Options{PPG: 4, Inner: InnerBruck}},
	} {
		tc := tc
		algo := tc.name
		if i := indexByte(algo, '/'); i >= 0 {
			algo = algo[:i]
		}
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			const block = 7
			cfg := sim.ClusterConfig{Model: model, Nodes: 3, PPN: 8, Seed: 42}
			_, err := sim.RunCluster(cfg, liveBody(algo, tc.opts, block))
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// TestAlltoallVirtualRuns checks that virtual (payload-free) buffers flow
// through every algorithm in the simulator — the mode used for
// paper-scale figures.
func TestAlltoallVirtualRuns(t *testing.T) {
	t.Parallel()
	model := netmodel.Dane()
	model.Node = tinyNode()
	for _, name := range []string{
		"pairwise", "nonblocking", "batched", "bruck",
		"hierarchical", "multileader", "node-aware", "locality-aware", "multileader-node-aware",
	} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			const block = 64
			cfg := sim.ClusterConfig{Model: model, Nodes: 2, PPN: 8, Seed: 7}
			stats, err := sim.RunCluster(cfg, func(c comm.Comm) error {
				a, err := New(name, c, block, Options{PPL: 2, PPG: 2})
				if err != nil {
					return err
				}
				send := comm.Virtual(c.Size() * block)
				recv := comm.Virtual(c.Size() * block)
				return a.Alltoall(send, recv, block)
			})
			if err != nil {
				t.Fatal(err)
			}
			if stats.VirtualSeconds <= 0 {
				t.Fatalf("virtual run advanced no time: %+v", stats)
			}
		})
	}
}

// TestNewErrors covers construction validation.
func TestNewErrors(t *testing.T) {
	t.Parallel()
	m := mapping(t, 2, 8)
	err := runtime.Run(runtime.Config{Mapping: m}, func(c comm.Comm) error {
		if _, err := New("no-such-algo", c, 8, Options{}); err == nil {
			return fmt.Errorf("expected error for unknown algorithm")
		}
		if _, err := New("pairwise", c, 0, Options{}); err == nil {
			return fmt.Errorf("expected error for zero maxBlock")
		}
		if _, err := New("multileader", c, 8, Options{PPL: 3}); err == nil {
			return fmt.Errorf("expected error for PPL not dividing ppn")
		}
		if _, err := New("locality-aware", c, 8, Options{PPG: 16}); err == nil {
			return fmt.Errorf("expected error for PPG > ppn")
		}
		if _, err := New("system-mpi", c, 8, Options{}); err == nil {
			return fmt.Errorf("expected error for system-mpi without profile")
		}
		a, err := New("pairwise", c, 8, Options{})
		if err != nil {
			return err
		}
		send := comm.Alloc(c.Size() * 8)
		recv := comm.Alloc(c.Size() * 8)
		if err := a.Alltoall(send, recv, 16); err == nil {
			return fmt.Errorf("expected error for block > maxBlock")
		}
		if err := a.Alltoall(send.Slice(0, 4), recv, 8); err == nil {
			return fmt.Errorf("expected error for short send buffer")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestNoTopology ensures topology-aware algorithms refuse communicators
// without a mapping.
func TestNoTopology(t *testing.T) {
	t.Parallel()
	err := runtime.Run(runtime.Config{Ranks: 4}, func(c comm.Comm) error {
		for _, name := range []string{"hierarchical", "node-aware", "multileader", "locality-aware", "multileader-node-aware"} {
			if _, err := New(name, c, 4, Options{PPL: 1, PPG: 1}); err == nil {
				return fmt.Errorf("%s: expected topology error", name)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPhasesRecorded checks that hierarchical algorithms expose the phase
// breakdown the paper's Figures 13-16 report.
func TestPhasesRecorded(t *testing.T) {
	t.Parallel()
	model := netmodel.Dane()
	model.Node = tinyNode()
	phasesByRank := make([]map[trace.Phase]float64, 16)
	cfg := sim.ClusterConfig{Model: model, Nodes: 2, PPN: 8, Seed: 3}
	_, err := sim.RunCluster(cfg, func(c comm.Comm) error {
		a, err := New("node-aware", c, 8, Options{})
		if err != nil {
			return err
		}
		send := comm.Virtual(c.Size() * 8)
		recv := comm.Virtual(c.Size() * 8)
		if err := a.Alltoall(send, recv, 8); err != nil {
			return err
		}
		phasesByRank[c.Rank()] = a.Phases()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	merged := trace.MaxMerge(phasesByRank)
	for _, ph := range []trace.Phase{trace.PhaseInter, trace.PhaseIntra, trace.PhaseRepack, trace.PhaseTotal} {
		if merged[ph] <= 0 {
			t.Errorf("phase %s not recorded: %v", ph, merged)
		}
	}
	if merged[trace.PhaseTotal] < merged[trace.PhaseInter] {
		t.Errorf("total %g < inter %g", merged[trace.PhaseTotal], merged[trace.PhaseInter])
	}
}

// TestNames checks registry completeness.
func TestNames(t *testing.T) {
	t.Parallel()
	want := []string{"batched", "bruck", "hierarchical", "locality-aware", "multileader",
		"multileader-node-aware", "node-aware", "nonblocking", "pairwise",
		"sched:bruck", "sched:direct", "sched:hypercube", "sched:pairwise", "sched:ring", "sched:torus",
		"system-mpi", "tuned"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestDivisibilityErrorsNameOption: a PPL/PPG that does not divide the
// node's rank count must fail construction with an error naming the
// offending Options field and the node shape (so a user can fix the
// right knob without reading the source).
func TestDivisibilityErrorsNameOption(t *testing.T) {
	t.Parallel()
	m, err := topo.NewMapping(tinyNode(), 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		algo string
		opts Options
		want []string
	}{
		{"multileader", Options{PPL: 3}, []string{"Options.PPL=3", "2 nodes x 8 ranks/node", "1 2 4 8"}},
		{"multileader", Options{PPL: 16}, []string{"Options.PPL=16", "8 ranks per node"}},
		{"multileader", Options{PPL: -2}, []string{"Options.PPL=-2"}},
		{"locality-aware", Options{PPG: 5}, []string{"Options.PPG=5", "2 nodes x 8 ranks/node"}},
		{"multileader-node-aware", Options{PPL: 6}, []string{"Options.PPL=6"}},
	}
	err = runtime.Run(runtime.Config{Mapping: m}, func(c comm.Comm) error {
		for _, tc := range cases {
			_, err := New(tc.algo, c, 8, tc.opts)
			if err == nil {
				return fmt.Errorf("%s with %+v: accepted", tc.algo, tc.opts)
			}
			for _, frag := range tc.want {
				if !strings.Contains(err.Error(), frag) {
					return fmt.Errorf("%s with %+v: error %q does not mention %q", tc.algo, tc.opts, err, frag)
				}
			}
		}
		// The v-registry reports through the same path.
		if _, err := NewV("locality-aware", c, 8, Options{PPG: 7}); err == nil ||
			!strings.Contains(err.Error(), "Options.PPG=7") {
			return fmt.Errorf("NewV locality-aware PPG=7: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
