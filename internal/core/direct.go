package core

import (
	"fmt"

	"alltoallx/internal/comm"
	"alltoallx/internal/trace"
)

// basic wraps a stateless exchange function as a persistent Alltoaller.
type basic struct {
	name     string
	c        comm.Comm
	maxBlock int
	rec      *trace.Recorder
	st       OpState
	run      func(c comm.Comm, send, recv comm.Buffer, block int) error
}

func (b *basic) Name() string { return b.name }

func (b *basic) Phases() map[trace.Phase]float64 { return b.rec.Snapshot() }

func (b *basic) Start(send, recv comm.Buffer, block int) (Handle, error) {
	if err := checkArgs(b.c, send, recv, block, b.maxBlock); err != nil {
		return nil, err
	}
	return b.st.Start(b.c, func() error {
		b.rec.Reset()
		stop := b.rec.Time(trace.PhaseTotal)
		err := b.run(b.c, send, recv, block)
		stop()
		return err
	})
}

func (b *basic) Alltoall(send, recv comm.Buffer, block int) error {
	h, err := b.Start(send, recv, block)
	if err != nil {
		return err
	}
	return h.Wait()
}

func newBasic(name string, c comm.Comm, maxBlock int,
	run func(c comm.Comm, send, recv comm.Buffer, block int) error) *basic {
	return &basic{name: name, c: c, maxBlock: maxBlock, rec: trace.NewRecorder(c.Now), run: run}
}

func newPairwise(c comm.Comm, maxBlock int, _ Options) (Alltoaller, error) {
	return newBasic("pairwise", c, maxBlock, alltoallPairwise), nil
}

func newNonblocking(c comm.Comm, maxBlock int, _ Options) (Alltoaller, error) {
	return newBasic("nonblocking", c, maxBlock, alltoallNonblocking), nil
}

func newBatched(c comm.Comm, maxBlock int, o Options) (Alltoaller, error) {
	if o.BatchWindow < 1 {
		return nil, fmt.Errorf("core: batched window must be >= 1, got %d", o.BatchWindow)
	}
	w := o.BatchWindow
	run := func(c comm.Comm, send, recv comm.Buffer, block int) error {
		return alltoallBatched(c, send, recv, block, w)
	}
	return newBasic("batched", c, maxBlock, run), nil
}

// alltoallPairwise is Algorithm 1: p-1 disjoint Sendrecv steps. At step i,
// rank r sends to r+i and receives from r-i, so exactly one exchange is in
// flight per rank — minimal contention and matching cost, but a rank stalls
// whenever its step partner is late (the synchronization overhead the paper
// discusses).
func alltoallPairwise(c comm.Comm, send, recv comm.Buffer, block int) error {
	n, r := c.Size(), c.Rank()
	if err := c.Memcpy(recv.Slice(r*block, block), send.Slice(r*block, block)); err != nil {
		return err
	}
	for i := 1; i < n; i++ {
		sp := (r + i) % n
		rp := (r - i + n) % n
		if err := c.Sendrecv(
			send.Slice(sp*block, block), sp, tagAlltoall,
			recv.Slice(rp*block, block), rp, tagAlltoall); err != nil {
			return fmt.Errorf("core: pairwise step %d (to %d, from %d): %w", i, sp, rp, err)
		}
	}
	return nil
}

// alltoallNonblocking is Algorithm 2: post every receive and send up
// front, then wait for all. Minimal synchronization, but at scale the
// matching queues grow to p-1 entries and the network sees p-1 concurrent
// flows per rank — the queue-search and contention overheads the paper
// attributes to this exchange.
func alltoallNonblocking(c comm.Comm, send, recv comm.Buffer, block int) error {
	n, r := c.Size(), c.Rank()
	reqs := make([]comm.Request, 0, 2*(n-1))
	for i := 1; i < n; i++ {
		sp := (r + i) % n
		rp := (r - i + n) % n
		rq, err := c.Irecv(recv.Slice(rp*block, block), rp, tagAlltoall)
		if err != nil {
			return err
		}
		sq, err := c.Isend(send.Slice(sp*block, block), sp, tagAlltoall)
		if err != nil {
			return err
		}
		reqs = append(reqs, rq, sq)
	}
	if err := c.Memcpy(recv.Slice(r*block, block), send.Slice(r*block, block)); err != nil {
		return err
	}
	return c.WaitAll(reqs)
}

// alltoallBatched is the related-work hybrid (Section 2.1): nonblocking
// exchanges issued in windows of w partners, bounding both the matching
// queue depth and the synchronization exposure.
func alltoallBatched(c comm.Comm, send, recv comm.Buffer, block int, w int) error {
	n, r := c.Size(), c.Rank()
	if err := c.Memcpy(recv.Slice(r*block, block), send.Slice(r*block, block)); err != nil {
		return err
	}
	reqs := make([]comm.Request, 0, 2*w)
	for base := 1; base < n; base += w {
		end := base + w
		if end > n {
			end = n
		}
		reqs = reqs[:0]
		for i := base; i < end; i++ {
			sp := (r + i) % n
			rp := (r - i + n) % n
			rq, err := c.Irecv(recv.Slice(rp*block, block), rp, tagAlltoall)
			if err != nil {
				return err
			}
			sq, err := c.Isend(send.Slice(sp*block, block), sp, tagAlltoall)
			if err != nil {
				return err
			}
			reqs = append(reqs, rq, sq)
		}
		if err := c.WaitAll(reqs); err != nil {
			return fmt.Errorf("core: batched window at %d: %w", base, err)
		}
	}
	return nil
}
