package core

import (
	"errors"
	"fmt"

	"alltoallx/internal/comm"
)

// This file is the request layer of the persistent-operation API: every
// operation (Alltoaller, Alltoallver, and the collx collectives built on
// the same machinery) exposes Start, which launches the exchange off the
// caller's critical path and returns a Handle. The blocking methods are
// Start+Wait shims, so the two forms are always equivalent.
//
// The substrate decides what "off the critical path" means through the
// optional comm.AsyncStarter capability: the live runtime spawns a driver
// goroutine per started exchange (real overlap with the caller's Go
// code), while the simulator executes eagerly under virtual time and lets
// comm.Compute hide behind the exchange's waiting time (modeled overlap).
// A communicator without the capability degrades to synchronous execution
// inside Start.

// Handle is an in-flight started collective exchange — the MPI-4 request
// of a persistent operation. Like the operation that issued it, a handle
// is driven by one goroutine (the rank that started it) and is not safe
// for concurrent use.
type Handle interface {
	// Wait blocks until the exchange completes and returns its error.
	// Waiting an already-completed handle is a no-op returning the same
	// error again (MPI's inactive-request semantics).
	Wait() error
	// Test polls for completion without blocking. Once it has returned
	// done=true the handle is complete (err carries the exchange error,
	// and further Test/Wait calls keep returning it); while done is
	// false, err is always nil.
	Test() (done bool, err error)
}

// WaitAll waits for every handle, ignoring nil entries (MPI_REQUEST_NULL
// style), and returns the joined errors of the failures.
func WaitAll(hs []Handle) error {
	var errs []error
	for _, h := range hs {
		if h == nil {
			continue
		}
		if err := h.Wait(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// ErrPending is returned (wrapped) by Start when the operation's previous
// handle has not been completed by Wait or Test: persistent operations
// allow at most one outstanding exchange, mirroring MPI persistent
// requests (and protecting the staging buffers an exchange reuses).
var ErrPending = errors.New("operation has an outstanding handle")

// OpState is the nonblocking bookkeeping embedded in every persistent
// operation. Its Start enforces the one-outstanding-exchange rule and
// dispatches the body to the communicator's async capability.
type OpState struct {
	pending *opHandle
}

// Start launches body off the caller's critical path on c's substrate and
// returns its handle. It fails if the operation's previous handle is
// still outstanding.
func (s *OpState) Start(c comm.Comm, body func() error) (Handle, error) {
	if s.pending != nil {
		return nil, fmt.Errorf("core: %w (complete it with Wait or Test before starting another exchange)", ErrPending)
	}
	var a comm.Async
	if st, ok := c.(comm.AsyncStarter); ok {
		a = st.StartAsync(body)
	} else {
		a = completedAsync{err: body()}
	}
	h := &opHandle{owner: s, a: a}
	s.pending = h
	return h, nil
}

// opHandle implements Handle over a substrate token, caching the result
// so completion is observed exactly once and the owner is released
// exactly once.
type opHandle struct {
	owner *OpState
	a     comm.Async
	done  bool
	err   error
}

func (h *opHandle) finish(err error) {
	h.done = true
	h.err = err
	if h.owner.pending == h {
		h.owner.pending = nil
	}
}

// Wait blocks until the exchange completes.
func (h *opHandle) Wait() error {
	if h.done {
		return h.err
	}
	h.finish(h.a.Join())
	return h.err
}

// Test polls for completion without blocking.
func (h *opHandle) Test() (bool, error) {
	if h.done {
		return true, h.err
	}
	done, err := h.a.TryJoin()
	if !done {
		return false, nil
	}
	h.finish(err)
	return true, h.err
}

// completedAsync is the fallback token for communicators without the
// comm.AsyncStarter capability: the body already ran synchronously.
type completedAsync struct{ err error }

func (a completedAsync) Join() error            { return a.err }
func (a completedAsync) TryJoin() (bool, error) { return true, a.err }
