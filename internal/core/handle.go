package core

import (
	"errors"
	"fmt"
	"sync"

	"alltoallx/internal/comm"
)

// This file is the request layer of the persistent-operation API: every
// operation (Alltoaller, Alltoallver, and the collx collectives built on
// the same machinery) exposes Start, which launches the exchange off the
// caller's critical path and returns a Handle. The blocking methods are
// Start+Wait shims, so the two forms are always equivalent.
//
// The substrate decides what "off the critical path" means through the
// optional comm.AsyncStarter capability: the live runtime spawns a driver
// goroutine per started exchange (real overlap with the caller's Go
// code), while the simulator executes eagerly under virtual time and lets
// comm.Compute hide behind the exchange's waiting time (modeled overlap).
// A communicator without the capability degrades to synchronous execution
// inside Start.

// Handle is an in-flight started collective exchange — the MPI-4 request
// of a persistent operation. Like the operation that issued it, a handle
// is driven by one goroutine (the rank that started it) and is not safe
// for concurrent use.
type Handle interface {
	// Wait blocks until the exchange completes and returns its error.
	// Waiting an already-completed handle is a no-op returning the same
	// error again (MPI's inactive-request semantics).
	Wait() error
	// Test polls for completion without blocking. Once it has returned
	// done=true the handle is complete (err carries the exchange error,
	// and further Test/Wait calls keep returning it); while done is
	// false, err is always nil.
	Test() (done bool, err error)
}

// WaitAll waits for every handle, ignoring nil entries (MPI_REQUEST_NULL
// style), and returns the joined errors of the failures.
func WaitAll(hs []Handle) error {
	var errs []error
	for _, h := range hs {
		if h == nil {
			continue
		}
		if err := h.Wait(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// ErrPending is returned (wrapped) by Start when the operation's previous
// handle has not been completed by Wait or Test: persistent operations
// allow at most one outstanding exchange, mirroring MPI persistent
// requests (and protecting the staging buffers an exchange reuses).
var ErrPending = errors.New("operation has an outstanding handle")

// OpState is the nonblocking bookkeeping embedded in every persistent
// operation. Its Start enforces the one-outstanding-exchange rule and
// dispatches the body to the communicator's async capability.
//
// The pending slot is mutex-guarded: an operation is documented as driven
// by one goroutine, but the one-outstanding rule is exactly the invariant
// that catches a second goroutine sneaking in, so the check itself must
// be safe under that misuse. An unsynchronized check-then-set let two
// concurrent Starts both observe no pending handle and both launch — two
// exchange bodies racing over the operation's lazy state (the tuned
// dispatcher's per-bucket instances, staging buffers) and, for collective
// construction, a rank running a collective twice while its peers run it
// once. With the lock, exactly one Start wins and the rest fail with
// ErrPending.
type OpState struct {
	mu      sync.Mutex
	pending *opHandle // guarded by mu
}

// Start launches body off the caller's critical path on c's substrate and
// returns its handle. It fails if the operation's previous handle is
// still outstanding.
func (s *OpState) Start(c comm.Comm, body func() error) (Handle, error) {
	// Reserve the slot before launching the body: the reservation is what
	// serializes concurrent Starts, so it must happen under the lock and
	// strictly before any part of the exchange runs.
	h := &opHandle{owner: s}
	s.mu.Lock()
	if s.pending != nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("core: %w (complete it with Wait or Test before starting another exchange)", ErrPending)
	}
	s.pending = h
	s.mu.Unlock()
	if st, ok := c.(comm.AsyncStarter); ok {
		h.a = st.StartAsync(body)
	} else {
		h.a = completedAsync{err: body()}
	}
	return h, nil
}

// opHandle implements Handle over a substrate token, caching the result
// so completion is observed exactly once and the owner is released
// exactly once.
type opHandle struct {
	owner *OpState
	a     comm.Async
	done  bool
	err   error
}

func (h *opHandle) finish(err error) {
	h.done = true
	h.err = err
	h.owner.mu.Lock()
	if h.owner.pending == h {
		h.owner.pending = nil
	}
	h.owner.mu.Unlock()
}

// Wait blocks until the exchange completes.
func (h *opHandle) Wait() error {
	if h.done {
		return h.err
	}
	h.finish(h.a.Join())
	return h.err
}

// Test polls for completion without blocking.
func (h *opHandle) Test() (bool, error) {
	if h.done {
		return true, h.err
	}
	done, err := h.a.TryJoin()
	if !done {
		return false, nil
	}
	h.finish(err)
	return true, h.err
}

// completedAsync is the fallback token for communicators without the
// comm.AsyncStarter capability: the body already ran synchronously.
type completedAsync struct{ err error }

func (a completedAsync) Join() error            { return a.err }
func (a completedAsync) TryJoin() (bool, error) { return true, a.err }
