package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"alltoallx/internal/comm"
	"alltoallx/internal/netmodel"
	"alltoallx/internal/runtime"
	"alltoallx/internal/sim"
	"alltoallx/internal/testutil"
)

// runBoth executes the same SPMD body on the live runtime (real payloads)
// and under the simulator (same body; buffers stay real so results remain
// checkable), so every handle-semantics test covers both substrates.
func runBoth(t *testing.T, nodes, ppn int, body func(c comm.Comm) error) {
	t.Helper()
	m := mapping(t, nodes, ppn)
	if err := runtime.Run(runtime.Config{Mapping: m}, body); err != nil {
		t.Errorf("live: %v", err)
	}
	cfg := sim.ClusterConfig{Model: netmodel.Dane(), Nodes: nodes, PPN: ppn, Seed: 1}
	if _, err := sim.RunCluster(cfg, body); err != nil {
		t.Errorf("sim: %v", err)
	}
}

// TestStartWaitCorrectness proves Start+Wait moves the same data as the
// blocking call for a flat and a topology-aware algorithm.
func TestStartWaitCorrectness(t *testing.T) {
	const block = 32
	for _, algo := range []string{"pairwise", "node-aware"} {
		t.Run(algo, func(t *testing.T) {
			runBoth(t, 2, 4, func(c comm.Comm) error {
				p, rank := c.Size(), c.Rank()
				a, err := New(algo, c, block, Options{})
				if err != nil {
					return err
				}
				send := comm.Alloc(p * block)
				recv := comm.Alloc(p * block)
				testutil.FillAlltoall(send, rank, p, block)
				for iter := 0; iter < 2; iter++ { // handles are reusable per exchange
					h, err := a.Start(send, recv, block)
					if err != nil {
						return err
					}
					if err := h.Wait(); err != nil {
						return err
					}
					if err := testutil.CheckAlltoall(recv, rank, p, block); err != nil {
						return fmt.Errorf("iter %d: %w", iter, err)
					}
				}
				return nil
			})
		})
	}
}

// TestHandleDoubleWaitAndTestAfterCompletion: Wait is idempotent and Test
// keeps reporting done after completion.
func TestHandleDoubleWaitAndTestAfterCompletion(t *testing.T) {
	const block = 16
	runBoth(t, 1, 4, func(c comm.Comm) error {
		a, err := New("pairwise", c, block, Options{})
		if err != nil {
			return err
		}
		send := comm.Alloc(c.Size() * block)
		recv := comm.Alloc(c.Size() * block)
		h, err := a.Start(send, recv, block)
		if err != nil {
			return err
		}
		if err := h.Wait(); err != nil {
			return err
		}
		if err := h.Wait(); err != nil { // second Wait: inactive-request no-op
			return fmt.Errorf("double Wait: %w", err)
		}
		for i := 0; i < 2; i++ {
			done, err := h.Test()
			if !done {
				return fmt.Errorf("Test %d after completion: done=false", i)
			}
			if err != nil {
				return fmt.Errorf("Test %d after completion: %w", i, err)
			}
		}
		return nil
	})
}

// TestStartWhilePending: starting a second exchange on an operation whose
// handle is outstanding must fail with ErrPending (MPI persistent-request
// semantics), and completing the handle re-arms the operation.
func TestStartWhilePending(t *testing.T) {
	const block = 16
	runBoth(t, 1, 4, func(c comm.Comm) error {
		a, err := New("pairwise", c, block, Options{})
		if err != nil {
			return err
		}
		send := comm.Alloc(c.Size() * block)
		recv := comm.Alloc(c.Size() * block)
		h, err := a.Start(send, recv, block)
		if err != nil {
			return err
		}
		if _, err := a.Start(send, recv, block); !errors.Is(err, ErrPending) {
			return fmt.Errorf("second Start while pending: got %v, want ErrPending", err)
		}
		// The blocking shim is Start+Wait, so it must refuse too.
		if err := a.Alltoall(send, recv, block); !errors.Is(err, ErrPending) {
			return fmt.Errorf("Alltoall while pending: got %v, want ErrPending", err)
		}
		if err := h.Wait(); err != nil {
			return err
		}
		// Completed handle re-arms the operation.
		h2, err := a.Start(send, recv, block)
		if err != nil {
			return fmt.Errorf("Start after Wait: %w", err)
		}
		return h2.Wait()
	})
}

// TestStartWhilePendingV covers the same rule for the alltoallv and collx
// interfaces (the OpState machinery is shared, but the Start wrappers are
// per-operation).
func TestStartWhilePendingV(t *testing.T) {
	runBoth(t, 1, 4, func(c comm.Comm) error {
		p := c.Size()
		a, err := NewV("pairwise", c, p*8, Options{})
		if err != nil {
			return err
		}
		counts := make([]int, p)
		for i := range counts {
			counts[i] = 8
		}
		displs, total := DisplsFromCounts(counts)
		send, recv := comm.Alloc(total), comm.Alloc(total)
		h, err := a.Start(send, counts, displs, recv, counts, displs)
		if err != nil {
			return err
		}
		if _, err := a.Start(send, counts, displs, recv, counts, displs); !errors.Is(err, ErrPending) {
			return fmt.Errorf("second v-Start while pending: got %v, want ErrPending", err)
		}
		return h.Wait()
	})
}

// TestWaitAllNilHandles: nil entries are ignored like MPI_REQUEST_NULL,
// and errors of the rest are joined.
func TestWaitAllNilHandles(t *testing.T) {
	if err := WaitAll(nil); err != nil {
		t.Errorf("WaitAll(nil): %v", err)
	}
	if err := WaitAll([]Handle{nil, nil}); err != nil {
		t.Errorf("WaitAll all-nil: %v", err)
	}
	const block = 16
	runBoth(t, 1, 4, func(c comm.Comm) error {
		a, err := New("pairwise", c, block, Options{})
		if err != nil {
			return err
		}
		b, err := New("nonblocking", c, block, Options{})
		if err != nil {
			return err
		}
		send := comm.Alloc(c.Size() * block)
		recv := comm.Alloc(c.Size() * block)
		recv2 := comm.Alloc(c.Size() * block)
		h1, err := a.Start(send, recv, block)
		if err != nil {
			return err
		}
		h2, err := b.Start(send, recv2, block)
		if err != nil {
			return err
		}
		return WaitAll([]Handle{nil, h1, nil, h2})
	})
}

// TestLiveOverlap demonstrates a Start -> compute -> Wait sequence on the
// live runtime with provably nonzero overlap: rank 1 withholds its half
// of the exchange until rank 0 has already computed, so rank 0's Test
// must observe the exchange in flight while its compute runs — the
// exchange cannot have completed before the compute did.
func TestLiveOverlap(t *testing.T) {
	const block = 64
	m := mapping(t, 1, 2)
	release := make(chan struct{})
	var sawInFlight atomic.Bool
	var computed atomic.Int64
	body := func(c comm.Comm) error {
		p, rank := c.Size(), c.Rank()
		a, err := New("pairwise", c, block, Options{})
		if err != nil {
			return err
		}
		send := comm.Alloc(p * block)
		recv := comm.Alloc(p * block)
		testutil.FillAlltoall(send, rank, p, block)
		if rank == 1 {
			<-release // enter the exchange only after rank 0's compute
			return func() error {
				if err := a.Alltoall(send, recv, block); err != nil {
					return err
				}
				return testutil.CheckAlltoall(recv, rank, p, block)
			}()
		}
		h, err := a.Start(send, recv, block)
		if err != nil {
			return err
		}
		done, err := h.Test()
		if err != nil {
			return err
		}
		if !done {
			sawInFlight.Store(true)
		}
		// Real compute, overlapped with the pending exchange (rank 1 has
		// not entered it yet, so it cannot have completed).
		sum := int64(0)
		for i := 0; i < 1_000_00; i++ {
			sum += int64(i % 7)
		}
		computed.Store(sum)
		close(release)
		if err := h.Wait(); err != nil {
			return err
		}
		if err := c.Compute(0.001); err != nil { // live Compute: validating no-op
			return err
		}
		return testutil.CheckAlltoall(recv, rank, p, block)
	}
	if err := runtime.Run(runtime.Config{Mapping: m}, body); err != nil {
		t.Fatal(err)
	}
	if !sawInFlight.Load() {
		t.Error("Test never observed the exchange in flight: no overlap demonstrated")
	}
	if computed.Load() == 0 {
		t.Error("compute did not run")
	}
}

// TestStartErrorSurfacesAtWait: an exchange failure inside the started
// body is reported by Wait (and again by later Waits), not lost.
func TestStartErrorSurfacesAtWait(t *testing.T) {
	const block = 16
	runBoth(t, 1, 2, func(c comm.Comm) error {
		a, err := New("pairwise", c, block, Options{})
		if err != nil {
			return err
		}
		// recv shorter than the exchange needs: checkArgs catches this at
		// Start, eagerly on the caller.
		send := comm.Alloc(c.Size() * block)
		short := comm.Alloc(block - 1)
		if _, err := a.Start(send, short, block); err == nil {
			return fmt.Errorf("Start with short recv: no error")
		}
		// A second exchange must be startable after the failed Start (no
		// handle was issued).
		recv := comm.Alloc(c.Size() * block)
		h, err := a.Start(send, recv, block)
		if err != nil {
			return err
		}
		return h.Wait()
	})
}

// TestPhasesDefensiveCopy: mutating the map returned by Phases must not
// corrupt the operation's recorded timings — across the basic, leadered
// and dispatching operation kinds.
func TestPhasesDefensiveCopy(t *testing.T) {
	const block = 32
	runBoth(t, 2, 4, func(c comm.Comm) error {
		for _, algo := range []string{"pairwise", "node-aware", "multileader-node-aware"} {
			a, err := New(algo, c, block, Options{})
			if err != nil {
				return err
			}
			send := comm.Alloc(c.Size() * block)
			recv := comm.Alloc(c.Size() * block)
			if err := a.Alltoall(send, recv, block); err != nil {
				return err
			}
			first := a.Phases()
			for k := range first {
				first[k] = -42 // attempt to corrupt
			}
			for k, v := range a.Phases() {
				if v == -42 {
					return fmt.Errorf("%s: Phases()[%s] corrupted through the returned map", algo, k)
				}
			}
		}
		return nil
	})
}
