package core

import (
	"errors"
	"fmt"

	"alltoallx/internal/coll"
	"alltoallx/internal/comm"
	"alltoallx/internal/topo"
	"alltoallx/internal/trace"
)

// worldInfo extracts the topology facts the node-aware family needs from
// the world communicator.
type worldInfo struct {
	mapping *topo.Mapping
	p       int
	ppn     int
	nnodes  int
	myNode  int
	myLocal int
}

func getWorldInfo(c comm.Comm) (worldInfo, error) {
	m := c.Topo()
	if m == nil {
		return worldInfo{}, errors.New("core: communicator carries no topology; node-aware algorithms need the world communicator of a mapped cluster")
	}
	if m.Size() != c.Size() {
		return worldInfo{}, fmt.Errorf("core: topology size %d != communicator size %d", m.Size(), c.Size())
	}
	return worldInfo{
		mapping: m,
		p:       m.Size(),
		ppn:     m.PPN(),
		nnodes:  m.Nodes(),
		myNode:  m.NodeOf(c.Rank()),
		myLocal: m.LocalRank(c.Rank()),
	}, nil
}

// checkDivides validates a leader/group size against the node's rank
// count. option is the Options field the value came from ("PPL", "PPG",
// or "PPN" for whole-node group sizes), so construction errors name both
// the offending option and the node shape they conflict with.
func checkDivides(option string, q int, info worldInfo) error {
	if q <= 0 || q > info.ppn || info.ppn%q != 0 {
		return fmt.Errorf("core: Options.%s=%d invalid for this world (%d nodes x %d ranks/node): it must divide the %d ranks per node (valid values: %v)",
			option, q, info.nnodes, info.ppn, info.ppn, divisorsOf(info.ppn))
	}
	return nil
}

// divisorsOf returns n's divisors ascending — the valid leader/group
// sizes for an n-rank node, listed in checkDivides errors.
func divisorsOf(n int) []int {
	var out []int
	for d := 1; d <= n; d++ {
		if n%d == 0 {
			out = append(out, d)
		}
	}
	return out
}

// hierarchical implements Algorithm 3: gather each leader group's data to
// its leader, perform an all-to-all among all leaders, scatter back. With
// one leader per node (hier=true) this is the standard hierarchical
// algorithm; with ppn/PPL leaders per node it is the multi-leader variant.
type hierarchical struct {
	name string
	c    comm.Comm
	info worldInfo

	q       int // processes per leader (group size)
	nGroups int // leader groups per node
	nLead   int // total leaders = nGroups * nnodes

	local   comm.Comm // my leader group; rank 0 is the leader
	leaders comm.Comm // all leaders (nil on non-leaders)

	inner      Inner
	gatherKind coll.Kind
	maxBlock   int
	rec        *trace.Recorder
	st         OpState

	myGroup  int // group index within my node
	isLeader bool

	bufA, bufB comm.Buffer // leader staging: q*p*maxBlock each
}

func newHierarchical(c comm.Comm, maxBlock int, o Options, hier bool) (Alltoaller, error) {
	info, err := getWorldInfo(c)
	if err != nil {
		return nil, err
	}
	name, opt := "multileader", "PPL"
	q := o.PPL
	if hier {
		name, opt = "hierarchical", "PPN"
		q = info.ppn // exactly one leader per node
	}
	if err := checkDivides(opt, q, info); err != nil {
		return nil, err
	}
	h := &hierarchical{
		name: name, c: c, info: info,
		q: q, nGroups: info.ppn / q, nLead: (info.ppn / q) * info.nnodes,
		inner: o.Inner, gatherKind: o.GatherKind, maxBlock: maxBlock,
		rec: trace.NewRecorder(c.Now),
	}
	h.myGroup = info.myLocal / q
	h.isLeader = info.myLocal%q == 0

	// local_comm: the q ranks of my leader group, leader first.
	h.local, err = c.Split(info.myNode*h.nGroups+h.myGroup, info.myLocal%q)
	if err != nil {
		return nil, fmt.Errorf("core: %s local split: %w", name, err)
	}
	// group_comm: all leaders, ordered by world rank, so leader
	// (node N, group g) sits at index N*nGroups+g.
	color := -1
	if h.isLeader {
		color = 0
	}
	h.leaders, err = c.Split(color, c.Rank())
	if err != nil {
		return nil, fmt.Errorf("core: %s leader split: %w", name, err)
	}
	return h, nil
}

func (h *hierarchical) Name() string { return h.name }

func (h *hierarchical) Phases() map[trace.Phase]float64 { return h.rec.Snapshot() }

// leaderWorld returns the world rank of member j of the leader-group with
// global leader index d (= node*nGroups + group).
func (h *hierarchical) leaderWorld(d, j int) int {
	node := d / h.nGroups
	g := d % h.nGroups
	return node*h.info.ppn + g*h.q + j
}

func (h *hierarchical) Start(send, recv comm.Buffer, block int) (Handle, error) {
	if err := checkArgs(h.c, send, recv, block, h.maxBlock); err != nil {
		return nil, err
	}
	return h.st.Start(h.c, func() error { return h.exchange(send, recv, block) })
}

func (h *hierarchical) Alltoall(send, recv comm.Buffer, block int) error {
	hd, err := h.Start(send, recv, block)
	if err != nil {
		return err
	}
	return hd.Wait()
}

func (h *hierarchical) exchange(send, recv comm.Buffer, block int) error {
	h.rec.Reset()
	stopTotal := h.rec.Time(trace.PhaseTotal)
	defer stopTotal()

	p, q := h.info.p, h.q
	var bufA, bufB comm.Buffer
	if h.isLeader {
		bufA = ensureStage(&h.bufA, send, q*p*block)
		bufB = ensureStage(&h.bufB, send, q*p*block)
	}

	// Gather: each member ships its whole send buffer to the leader.
	stop := h.rec.Time(trace.PhaseGather)
	err := coll.Gather(h.local, 0, send.Slice(0, p*block), bufA, h.gatherKind, tagGather)
	stop()
	if err != nil {
		return fmt.Errorf("core: %s gather: %w", h.name, err)
	}

	if h.isLeader {
		// Repack member-major [m][dstWorld] into leader-destination-major
		// [D][m][dj] blocks for the leader exchange.
		stop = h.rec.Time(trace.PhaseRepack)
		for d := 0; d < h.nLead; d++ {
			for m := 0; m < q; m++ {
				for dj := 0; dj < q; dj++ {
					dw := h.leaderWorld(d, dj)
					from := bufA.Slice(m*p*block+dw*block, block)
					to := bufB.Slice((d*q*q+m*q+dj)*block, block)
					if _, err := comm.CopyData(to, from); err != nil {
						return err
					}
				}
			}
		}
		err = h.c.ChargeCopy(p*q*block, p*q)
		stop()
		if err != nil {
			return err
		}

		// All-to-all among leaders: q*q*block bytes per leader pair.
		stop = h.rec.Time(trace.PhaseInter)
		err = runInner(h.leaders, h.inner, bufB, bufA, q*q*block)
		stop()
		if err != nil {
			return fmt.Errorf("core: %s leader exchange: %w", h.name, err)
		}

		// Repack received [D][m][d] into member-major scatter layout
		// [d][srcWorld].
		stop = h.rec.Time(trace.PhaseRepack)
		for d := 0; d < q; d++ {
			for dl := 0; dl < h.nLead; dl++ {
				for m := 0; m < q; m++ {
					sw := h.leaderWorld(dl, m)
					from := bufA.Slice((dl*q*q+m*q+d)*block, block)
					to := bufB.Slice(d*p*block+sw*block, block)
					if _, err := comm.CopyData(to, from); err != nil {
						return err
					}
				}
			}
		}
		err = h.c.ChargeCopy(p*q*block, p*q)
		stop()
		if err != nil {
			return err
		}
	}

	// Scatter: each member receives its final recv buffer from the leader.
	stop = h.rec.Time(trace.PhaseScatter)
	err = coll.Scatter(h.local, 0, bufB, recv.Slice(0, p*block), h.gatherKind, tagScatter)
	stop()
	if err != nil {
		return fmt.Errorf("core: %s scatter: %w", h.name, err)
	}
	return nil
}
