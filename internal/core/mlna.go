package core

import (
	"fmt"

	"alltoallx/internal/coll"
	"alltoallx/internal/comm"
	"alltoallx/internal/trace"
)

// mlNodeAware implements Algorithm 5, the paper's novel multi-leader +
// node-aware all-to-all (Section 3.3): gather to each of the node's
// leaders, replace the hierarchical inter-leader exchange with the
// node-aware scheme — an inter-node all-to-all among same-slot leaders
// (each leader sends exactly one message per node) followed by an
// intra-node all-to-all among the node's leaders — then scatter. Gather/
// scatter costs shrink with more leaders while inter-node message counts
// stay minimal: the small-message sweet spot the paper reports.
type mlNodeAware struct {
	c    comm.Comm
	info worldInfo

	q        int // processes per leader
	nL       int // leaders per node
	myK, myJ int

	leaderLocal comm.Comm // my gather group (size q); leader is rank 0
	interComm   comm.Comm // same-slot leaders across nodes (size nnodes); nil on non-leaders
	intraComm   comm.Comm // the node's leaders (size nL); nil on non-leaders

	inner      Inner
	gatherKind coll.Kind
	maxBlock   int
	rec        *trace.Recorder
	st         OpState
	isLeader   bool

	bufA, bufB comm.Buffer // leader staging: q*p*maxBlock each
}

func newMultileaderNodeAware(c comm.Comm, maxBlock int, o Options) (Alltoaller, error) {
	info, err := getWorldInfo(c)
	if err != nil {
		return nil, err
	}
	if err := checkDivides("PPL", o.PPL, info); err != nil {
		return nil, err
	}
	m := &mlNodeAware{
		c: c, info: info,
		q: o.PPL, nL: info.ppn / o.PPL,
		inner: o.Inner, gatherKind: o.GatherKind, maxBlock: maxBlock,
		rec: trace.NewRecorder(c.Now),
	}
	m.myK = info.myLocal / m.q
	m.myJ = info.myLocal % m.q
	m.isLeader = m.myJ == 0

	// leader_comm: my gather group.
	m.leaderLocal, err = c.Split(info.myNode*m.nL+m.myK, m.myJ)
	if err != nil {
		return nil, fmt.Errorf("core: multileader-node-aware local split: %w", err)
	}
	// group_comm: leaders sharing my slot k across all nodes — the
	// node-aware inter-node exchange; rank order = node order.
	color := -1
	if m.isLeader {
		color = m.myK
	}
	m.interComm, err = c.Split(color, c.Rank())
	if err != nil {
		return nil, fmt.Errorf("core: multileader-node-aware inter split: %w", err)
	}
	// leader_group_comm: the leaders of my node; rank order = slot order.
	color = -1
	if m.isLeader {
		color = info.myNode
	}
	m.intraComm, err = c.Split(color, c.Rank())
	if err != nil {
		return nil, fmt.Errorf("core: multileader-node-aware intra split: %w", err)
	}
	return m, nil
}

func (m *mlNodeAware) Name() string { return "multileader-node-aware" }

func (m *mlNodeAware) Phases() map[trace.Phase]float64 { return m.rec.Snapshot() }

func (m *mlNodeAware) Start(send, recv comm.Buffer, block int) (Handle, error) {
	if err := checkArgs(m.c, send, recv, block, m.maxBlock); err != nil {
		return nil, err
	}
	return m.st.Start(m.c, func() error { return m.exchange(send, recv, block) })
}

func (m *mlNodeAware) Alltoall(send, recv comm.Buffer, block int) error {
	h, err := m.Start(send, recv, block)
	if err != nil {
		return err
	}
	return h.Wait()
}

func (m *mlNodeAware) exchange(send, recv comm.Buffer, block int) error {
	m.rec.Reset()
	stopTotal := m.rec.Time(trace.PhaseTotal)
	defer stopTotal()

	p, q, ppn, nn, nL := m.info.p, m.q, m.info.ppn, m.info.nnodes, m.nL
	var bufA, bufB comm.Buffer
	if m.isLeader {
		bufA = ensureStage(&m.bufA, send, q*p*block)
		bufB = ensureStage(&m.bufB, send, q*p*block)
	}

	// Gather members' send buffers to the leader: bufA = [j][dstWorld].
	stop := m.rec.Time(trace.PhaseGather)
	err := coll.Gather(m.leaderLocal, 0, send.Slice(0, p*block), bufA, m.gatherKind, tagGather)
	stop()
	if err != nil {
		return fmt.Errorf("core: multileader-node-aware gather: %w", err)
	}

	if m.isLeader {
		// Repack for the inter-node exchange: bufB = [N'][j][l'] — all of
		// my members' data for every rank of node N'.
		stop = m.rec.Time(trace.PhaseRepack)
		for n2 := 0; n2 < nn; n2++ {
			for j := 0; j < q; j++ {
				for l2 := 0; l2 < ppn; l2++ {
					from := bufA.Slice(j*p*block+(n2*ppn+l2)*block, block)
					to := bufB.Slice((n2*q*ppn+j*ppn+l2)*block, block)
					if _, err := comm.CopyData(to, from); err != nil {
						return err
					}
				}
			}
		}
		err = m.c.ChargeCopy(p*q*block, p*q)
		stop()
		if err != nil {
			return err
		}

		// Inter-node all-to-all among same-slot leaders: q*ppn*block per
		// node pair — one message to each node, as in Algorithm 4.
		stop = m.rec.Time(trace.PhaseInter)
		err = runInner(m.interComm, m.inner, bufB, bufA, q*ppn*block)
		stop()
		if err != nil {
			return fmt.Errorf("core: multileader-node-aware inter exchange: %w", err)
		}

		// bufA now holds [N'][j'][l']: data from member j' of the slot-k
		// leader group on node N', destined to local rank l' of my node.
		// Repack per destination leader: bufB = [k''][N'][j'][d] with
		// l' = k''*q + d.
		stop = m.rec.Time(trace.PhaseRepack)
		for k2 := 0; k2 < nL; k2++ {
			for n2 := 0; n2 < nn; n2++ {
				for j2 := 0; j2 < q; j2++ {
					for d := 0; d < q; d++ {
						from := bufA.Slice((n2*q*ppn+j2*ppn+k2*q+d)*block, block)
						to := bufB.Slice((k2*nn*q*q+n2*q*q+j2*q+d)*block, block)
						if _, err := comm.CopyData(to, from); err != nil {
							return err
						}
					}
				}
			}
		}
		err = m.c.ChargeCopy(p*q*block, p*q)
		stop()
		if err != nil {
			return err
		}

		// Intra-node all-to-all among the node's leaders:
		// nnodes*q*q*block per leader pair (the paper's
		// r_size*n_nodes*ppl^2).
		stop = m.rec.Time(trace.PhaseIntra)
		err = runInner(m.intraComm, m.inner, bufB, bufA, nn*q*q*block)
		stop()
		if err != nil {
			return fmt.Errorf("core: multileader-node-aware intra exchange: %w", err)
		}

		// bufA holds [k'''][N'][j'][d]: data from world rank
		// (N', k''', j') for my member d. Repack into scatter layout
		// [d][srcWorld].
		stop = m.rec.Time(trace.PhaseRepack)
		for k3 := 0; k3 < nL; k3++ {
			for n2 := 0; n2 < nn; n2++ {
				for j2 := 0; j2 < q; j2++ {
					sw := n2*ppn + k3*q + j2
					for d := 0; d < q; d++ {
						from := bufA.Slice((k3*nn*q*q+n2*q*q+j2*q+d)*block, block)
						to := bufB.Slice(d*p*block+sw*block, block)
						if _, err := comm.CopyData(to, from); err != nil {
							return err
						}
					}
				}
			}
		}
		err = m.c.ChargeCopy(p*q*block, p*q)
		stop()
		if err != nil {
			return err
		}
	}

	// Scatter the final receive buffers to members.
	stop = m.rec.Time(trace.PhaseScatter)
	err = coll.Scatter(m.leaderLocal, 0, bufB, recv.Slice(0, p*block), m.gatherKind, tagScatter)
	stop()
	if err != nil {
		return fmt.Errorf("core: multileader-node-aware scatter: %w", err)
	}
	return nil
}
