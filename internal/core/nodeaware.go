package core

import (
	"fmt"

	"alltoallx/internal/comm"
	"alltoallx/internal/trace"
)

// nodeAware implements Algorithm 4. With one group per node (g = ppn,
// node-aware aggregation) every rank first exchanges with its equal-local-
// rank counterparts across nodes — aggregating all data between a node
// pair into ppn messages — then redistributes within the node. With
// several groups per node (g < ppn) it is the paper's novel locality-aware
// aggregation (Section 3.2): the intra-region redistribution happens among
// g nearby ranks instead of all ppn, trading slightly more inter-region
// messages for much cheaper local traffic.
type nodeAware struct {
	name string
	c    comm.Comm
	info worldInfo

	g   int // processes per group
	nG  int // groups per node
	tg  int // total groups = nG * nnodes
	myG int // my group index within the node
	myJ int // my index within the group

	local comm.Comm // my group (size g)
	group comm.Comm // my j-counterparts in every group (size tg)

	inner    Inner
	maxBlock int
	rec      *trace.Recorder
	st       OpState

	bufA, bufB comm.Buffer // staging: p*maxBlock each
}

func newNodeAware(c comm.Comm, maxBlock int, o Options, whole bool) (Alltoaller, error) {
	info, err := getWorldInfo(c)
	if err != nil {
		return nil, err
	}
	name, opt := "locality-aware", "PPG"
	g := o.PPG
	if whole {
		name, opt = "node-aware", "PPN"
		g = info.ppn
	}
	if err := checkDivides(opt, g, info); err != nil {
		return nil, err
	}
	na := &nodeAware{
		name: name, c: c, info: info,
		g: g, nG: info.ppn / g, tg: (info.ppn / g) * info.nnodes,
		inner: o.Inner, maxBlock: maxBlock,
		rec: trace.NewRecorder(c.Now),
	}
	na.myG = info.myLocal / g
	na.myJ = info.myLocal % g

	// local_comm: my group, ordered by position within the group.
	na.local, err = c.Split(info.myNode*na.nG+na.myG, na.myJ)
	if err != nil {
		return nil, fmt.Errorf("core: %s local split: %w", name, err)
	}
	// group_comm: the j-th member of every group, ordered by world rank,
	// so group (node N, index k) sits at position N*nG+k.
	na.group, err = c.Split(na.myJ, c.Rank())
	if err != nil {
		return nil, fmt.Errorf("core: %s group split: %w", name, err)
	}
	return na, nil
}

func (na *nodeAware) Name() string { return na.name }

func (na *nodeAware) Phases() map[trace.Phase]float64 { return na.rec.Snapshot() }

// groupWorld returns the world rank of member i of group t (t in
// group-comm order: node-major, then group index).
func (na *nodeAware) groupWorld(t, i int) int {
	node := t / na.nG
	k := t % na.nG
	return node*na.info.ppn + k*na.g + i
}

func (na *nodeAware) Start(send, recv comm.Buffer, block int) (Handle, error) {
	if err := checkArgs(na.c, send, recv, block, na.maxBlock); err != nil {
		return nil, err
	}
	return na.st.Start(na.c, func() error { return na.exchange(send, recv, block) })
}

func (na *nodeAware) Alltoall(send, recv comm.Buffer, block int) error {
	h, err := na.Start(send, recv, block)
	if err != nil {
		return err
	}
	return h.Wait()
}

func (na *nodeAware) exchange(send, recv comm.Buffer, block int) error {
	na.rec.Reset()
	stopTotal := na.rec.Time(trace.PhaseTotal)
	defer stopTotal()

	p, g, tg := na.info.p, na.g, na.tg
	bufA := ensureStage(&na.bufA, send, p*block)
	bufB := ensureStage(&na.bufB, send, p*block)

	// Repack send blocks into group-destination order: block for group t,
	// member i at position t*g+i.
	stop := na.rec.Time(trace.PhaseRepack)
	for t := 0; t < tg; t++ {
		for i := 0; i < g; i++ {
			dw := na.groupWorld(t, i)
			if _, err := comm.CopyData(bufA.Slice((t*g+i)*block, block), send.Slice(dw*block, block)); err != nil {
				return err
			}
		}
	}
	err := na.c.ChargeCopy(p*block, p)
	stop()
	if err != nil {
		return err
	}

	// Inter-region exchange: g*block bytes to the j-counterpart of every
	// group. For node-aware (g = ppn) this is the node-pair aggregation:
	// each rank talks to exactly one rank per node.
	stop = na.rec.Time(trace.PhaseInter)
	err = runInner(na.group, na.inner, bufA, bufB, g*block)
	stop()
	if err != nil {
		return fmt.Errorf("core: %s inter exchange: %w", na.name, err)
	}

	// Repack [t][i] into member-major [i][t] for the local redistribution.
	stop = na.rec.Time(trace.PhaseRepack)
	for i := 0; i < g; i++ {
		for t := 0; t < tg; t++ {
			if _, err := comm.CopyData(bufA.Slice((i*tg+t)*block, block), bufB.Slice((t*g+i)*block, block)); err != nil {
				return err
			}
		}
	}
	err = na.c.ChargeCopy(p*block, p)
	stop()
	if err != nil {
		return err
	}

	// Intra-region exchange: tg*block bytes per member pair within the
	// group.
	stop = na.rec.Time(trace.PhaseIntra)
	err = runInner(na.local, na.inner, bufA, bufB, tg*block)
	stop()
	if err != nil {
		return fmt.Errorf("core: %s intra exchange: %w", na.name, err)
	}

	// Final repack into recv's world-rank order: the block received from
	// member i covering group t originated at world rank (t, i).
	stop = na.rec.Time(trace.PhaseRepack)
	for i := 0; i < g; i++ {
		for t := 0; t < tg; t++ {
			sw := na.groupWorld(t, i)
			if _, err := comm.CopyData(recv.Slice(sw*block, block), bufB.Slice((i*tg+t)*block, block)); err != nil {
				return err
			}
		}
	}
	err = na.c.ChargeCopy(p*block, p)
	stop()
	return err
}
