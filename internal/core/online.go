package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"alltoallx/internal/comm"
	"alltoallx/internal/trace"
)

// Online refinement keeps a tuned dispatch table honest after the offline
// sweep: machines drift (firmware, congestion, fabric degradation), and a
// table tuned on yesterday's machine model can dispatch to yesterday's
// winner. In refinement mode the dispatcher runs an incumbent-vs-
// challenger loop per size bucket: most calls run the tabled incumbent,
// every TrialEvery-th call runs a challenger drawn from the neighboring
// buckets' winners (when the machine drifts, crossover points move, so
// the adjacent bucket's algorithm is exactly the plausible usurper), and
// both sides' timings land in rings of recent observations. Once both
// windows are full the ranks agree on worst-rank window means with a
// dissemination max-allreduce and promote the challenger only if it beats
// the incumbent by the hysteresis fraction — the same damping the bucket
// logic uses against boundary thrash, here against timing noise.
//
// Every decision point is deterministic in the call sequence (SPMD: all
// ranks see the same blocks, buckets and call counts), so ranks trial,
// construct and promote in lockstep even though their local timings
// differ; the allreduce is what makes the *decision* collective. The
// dispatcher mutates only its own per-instance copy of the entries — the
// Dispatch spec in Options is shared across ranks in-process and is never
// written. Persistence stays with the caller: OnPromote (rank 0 only)
// reports each promotion so the owner of the autotune table can rewrite
// it through the atomic artifact discipline.

// OnlineConfig enables and parameterizes online refinement of a tuned
// dispatcher (Options.Online).
type OnlineConfig struct {
	// Window is the number of recent observations per side (incumbent,
	// challenger) a promotion decision compares. Default 8.
	Window int
	// TrialEvery runs a challenger every N-th call in a bucket (the
	// deterministic epsilon of the epsilon-greedy loop: epsilon = 1/N).
	// Default 8; minimum 2 (every call a trial would starve the incumbent
	// window).
	TrialEvery int
	// MinImprove is the promotion hysteresis: a challenger is promoted
	// only when its agreed window mean beats the incumbent's by this
	// fraction. Default tunedHysteresis (0.25), reusing the bucket
	// logic's damping.
	MinImprove float64
	// OnPromote, if non-nil, is invoked on rank 0 only, after the
	// collective promotion decision, with the refreshed entry. Callers
	// use it to rewrite the persisted autotune table (atomically — see
	// internal/artifact); the dispatcher itself never touches disk.
	OnPromote func(PromoteEvent)
}

func (cfg OnlineConfig) withDefaults() OnlineConfig {
	if cfg.Window == 0 {
		cfg.Window = 8
	}
	if cfg.TrialEvery == 0 {
		cfg.TrialEvery = 8
	}
	if cfg.MinImprove == 0 {
		cfg.MinImprove = tunedHysteresis
	}
	return cfg
}

func (cfg OnlineConfig) validate() error {
	if cfg.Window < 1 {
		return fmt.Errorf("core: online Window %d, need >= 1", cfg.Window)
	}
	if cfg.TrialEvery < 2 {
		return fmt.Errorf("core: online TrialEvery %d, need >= 2 (every call a trial starves the incumbent window)", cfg.TrialEvery)
	}
	if cfg.MinImprove < 0 || cfg.MinImprove >= 1 {
		return fmt.Errorf("core: online MinImprove %g, need 0 <= f < 1", cfg.MinImprove)
	}
	return nil
}

// PromoteEvent describes one collective challenger promotion.
type PromoteEvent struct {
	// Op is the dispatcher's operation kind.
	Op Op
	// Bucket is the promoted entry's index in the dispatch spec.
	Bucket int
	// Old and New are the bucket's entry before and after promotion (the
	// MaxBlock boundary never changes — only who serves the bucket).
	Old, New DispatchEntry
	// OldMean and NewMean are the agreed worst-rank window means (s) the
	// decision compared.
	OldMean, NewMean float64
	// Generation counts promotions across the dispatcher's lifetime;
	// this event is number Generation (1-based).
	Generation int
}

// OnlineStats is a snapshot of the refinement loop, observable on either
// tuned dispatcher through a type assertion:
//
//	s := a.(interface{ OnlineStats() OnlineStats }).OnlineStats()
type OnlineStats struct {
	// Enabled is false when the dispatcher runs without refinement (the
	// rest of the snapshot is zero).
	Enabled bool
	// Generation counts promotions so far (the table-provenance refresh
	// generation a caller persisting the table should record).
	Generation int
	// Buckets mirrors the dispatch entries, refreshed by promotions.
	Buckets []OnlineBucketStats
}

// OnlineBucketStats is one bucket's view of the refinement loop.
type OnlineBucketStats struct {
	// Entry is the bucket's current (possibly promoted) entry.
	Entry DispatchEntry
	// Incumbent labels the entry; Challenger labels the candidate
	// currently being trialed ("" when the bucket has none to trial).
	Incumbent, Challenger string
	// Calls, Trials and Promotions count this bucket's dispatches,
	// challenger runs, and adopted challengers.
	Calls, Trials, Promotions int
}

// ring is a fixed-capacity ring of recent timing observations.
type ring struct {
	buf     []float64
	n, next int
}

func newRing(k int) ring { return ring{buf: make([]float64, k)} }

func (r *ring) add(v float64) {
	r.buf[r.next] = v
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

func (r *ring) full() bool { return r.n == len(r.buf) }

func (r *ring) mean() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, v := range r.buf[:r.n] {
		s += v
	}
	return s / float64(r.n)
}

func (r *ring) reset() { r.n, r.next = 0, 0 }

// phaser is the slice of Alltoaller/Alltoallver the refinement loop needs
// from the instances it manages.
type phaser interface {
	Phases() map[trace.Phase]float64
}

// obucket is one bucket's refinement state.
type obucket[T phaser] struct {
	calls, trials, promotions int
	// rot rotates the challenger pool across failed trials.
	rot int
	// inc and ch hold the recent observations of the incumbent and the
	// current challenger; chLabel pins who ch's observations belong to
	// (a promotion in an adjacent bucket can change the pool mid-window,
	// which must discard the stale window, identically on every rank).
	inc, ch ring
	chLabel string
	// insts caches constructed instances by entry label, so a demoted
	// incumbent re-trials without reconstruction.
	insts map[string]T
}

// online is the refinement engine shared by the tuned and tunedV
// dispatchers (T = Alltoaller or Alltoallver).
type online[T phaser] struct {
	c   comm.Comm
	cfg OnlineConfig
	op  Op
	// entries is this instance's private copy of the dispatch entries —
	// the refreshed table. The spec the dispatcher was built from is
	// shared (all ranks of an in-process run hold the same *Dispatch)
	// and is never mutated.
	entries []DispatchEntry
	gen     int
	b       []obucket[T]
	// build constructs the instance for an entry (New or NewV closure).
	build func(DispatchEntry) (T, error)
	// lastLabel/lastInst describe the entry the previous call actually
	// ran (a trial call reports the challenger).
	lastLabel string
	lastInst  T
	hasLast   bool

	abuf, bbuf comm.Buffer // 16-byte agreement staging (always real)
}

func newOnline[T phaser](c comm.Comm, cfg OnlineConfig, op Op, spec *Dispatch, build func(DispatchEntry) (T, error)) (*online[T], error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	o := &online[T]{
		c: c, cfg: cfg, op: op.Norm(),
		entries: append([]DispatchEntry(nil), spec.Entries...),
		b:       make([]obucket[T], len(spec.Entries)),
		build:   build,
		abuf:    comm.Alloc(16),
		bbuf:    comm.Alloc(16),
	}
	for i := range o.b {
		o.b[i].inc = newRing(cfg.Window)
		o.b[i].ch = newRing(cfg.Window)
	}
	return o, nil
}

// challengers returns bucket i's candidate pool: the distinct entries of
// the adjacent buckets. Derived from the (identical) entries on every
// rank, so the pool — and therefore every trial — is SPMD-consistent.
func (o *online[T]) challengers(i int) []DispatchEntry {
	var out []DispatchEntry
	seen := map[string]bool{o.entries[i].label(): true}
	for _, j := range []int{i - 1, i + 1} {
		if j >= 0 && j < len(o.entries) && !seen[o.entries[j].label()] {
			seen[o.entries[j].label()] = true
			out = append(out, o.entries[j])
		}
	}
	return out
}

// pick chooses the entry serving this call in bucket i: the incumbent,
// or — once the incumbent window is warm, on every TrialEvery-th call —
// the current challenger.
func (o *online[T]) pick(i int) (DispatchEntry, bool) {
	b := &o.b[i]
	b.calls++
	inc := o.entries[i]
	if !b.inc.full() {
		return inc, false // warm the incumbent baseline first
	}
	pool := o.challengers(i)
	if len(pool) == 0 || b.calls%o.cfg.TrialEvery != 0 {
		return inc, false
	}
	b.trials++
	return pool[b.rot%len(pool)], true
}

// instFor returns the cached instance for an entry in bucket i,
// constructing it (collectively — all ranks reach this on the same call)
// on first use.
func (o *online[T]) instFor(i int, e DispatchEntry) (T, error) {
	b := &o.b[i]
	if b.insts == nil {
		b.insts = make(map[string]T)
	}
	if inst, ok := b.insts[e.label()]; ok {
		return inst, nil
	}
	inst, err := o.build(e)
	if err != nil {
		var zero T
		return zero, err
	}
	b.insts[e.label()] = inst
	return inst, nil
}

// run executes one dispatched call in bucket i under the refinement loop:
// pick, construct, time, record, and possibly promote.
func (o *online[T]) run(i int, call func(T) error) error {
	e, trial := o.pick(i)
	inst, err := o.instFor(i, e)
	if err != nil {
		return err
	}
	o.lastLabel, o.lastInst, o.hasLast = e.label(), inst, true
	t0 := o.c.Now()
	if err := call(inst); err != nil {
		return err
	}
	return o.record(i, trial, e, o.c.Now()-t0)
}

// record adds one observation and, when both windows are full at a trial
// call, runs the collective promotion decision.
func (o *online[T]) record(i int, trial bool, e DispatchEntry, secs float64) error {
	b := &o.b[i]
	if !trial {
		b.inc.add(secs)
		return nil
	}
	if label := e.label(); b.chLabel != label {
		b.ch.reset() // pool rotated or changed under an adjacent promotion
		b.chLabel = label
	}
	b.ch.add(secs)
	if !b.ch.full() || !b.inc.full() {
		return nil
	}
	// Both windows full at a deterministic call: every rank decides now.
	// Agree on worst-rank means — max is idempotent, so dissemination's
	// overlapping coverage yields the exact global maximum — and compare
	// once, identically, everywhere.
	im, cm, err := o.agreeMax(b.inc.mean(), b.ch.mean())
	if err != nil {
		return err
	}
	if cm < im*(1-o.cfg.MinImprove) {
		old := o.entries[i]
		o.entries[i] = DispatchEntry{MaxBlock: old.MaxBlock, Name: e.Name, Algo: e.Algo, Opts: e.Opts}
		o.gen++
		b.promotions++
		b.inc.reset()
		b.ch.reset()
		b.chLabel = ""
		b.rot = 0
		if o.cfg.OnPromote != nil && o.c.Rank() == 0 {
			o.cfg.OnPromote(PromoteEvent{
				Op: o.op, Bucket: i, Old: old, New: o.entries[i],
				OldMean: im, NewMean: cm, Generation: o.gen,
			})
		}
	} else {
		b.ch.reset()
		b.chLabel = ""
		b.rot++
	}
	return nil
}

// tagOnlineAgree is the tag base of the promotion-decision allreduce (one
// tag per dissemination round), clear of tagVDispatch's round range.
const tagOnlineAgree = 331

// agreeMax max-allreduces two non-negative float64s across the
// communicator by dissemination: in round k every rank exchanges its
// running maxima with ranks +/- 2^k away. Non-negative IEEE floats order
// identically to their bit patterns, so the reduction runs on bits.
//
//a2alint:collective
func (o *online[T]) agreeMax(a, b float64) (float64, float64, error) {
	n, r := o.c.Size(), o.c.Rank()
	am, bm := math.Float64bits(a), math.Float64bits(b)
	round := 0
	for k := 1; k < n; k <<= 1 {
		binary.LittleEndian.PutUint64(o.abuf.Bytes()[0:8], am)
		binary.LittleEndian.PutUint64(o.abuf.Bytes()[8:16], bm)
		to := (r + k) % n
		from := (r - k + n) % n
		if err := o.c.Sendrecv(o.abuf, to, tagOnlineAgree+round, o.bbuf, from, tagOnlineAgree+round); err != nil {
			return 0, 0, fmt.Errorf("core: online promotion agreement round %d: %w", round, err)
		}
		if v := binary.LittleEndian.Uint64(o.bbuf.Bytes()[0:8]); v > am {
			am = v
		}
		if v := binary.LittleEndian.Uint64(o.bbuf.Bytes()[8:16]); v > bm {
			bm = v
		}
		round++
	}
	return math.Float64frombits(am), math.Float64frombits(bm), nil
}

// stats snapshots the loop for OnlineStats.
func (o *online[T]) stats() OnlineStats {
	s := OnlineStats{Enabled: true, Generation: o.gen}
	for i := range o.b {
		b := &o.b[i]
		ch := ""
		if pool := o.challengers(i); len(pool) > 0 {
			ch = pool[b.rot%len(pool)].label()
		}
		s.Buckets = append(s.Buckets, OnlineBucketStats{
			Entry:     o.entries[i],
			Incumbent: o.entries[i].label(), Challenger: ch,
			Calls: b.calls, Trials: b.trials, Promotions: b.promotions,
		})
	}
	return s
}

// phases reports the last-run instance's breakdown ("" label = no call).
func (o *online[T]) phases() map[trace.Phase]float64 {
	if !o.hasLast {
		return nil
	}
	return o.lastInst.Phases()
}
