package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"alltoallx/internal/comm"
	"alltoallx/internal/netmodel"
	"alltoallx/internal/runtime"
	"alltoallx/internal/sim"
)

// onlineModel is the tiny-node Dane the refinement tests simulate on.
func onlineModel() netmodel.Params {
	m := netmodel.Dane()
	m.Node = tinyNode()
	return m
}

func TestOnlineConfigValidation(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		cfg  OnlineConfig
	}{
		{"negative window", OnlineConfig{Window: -1}},
		{"trial every call", OnlineConfig{TrialEvery: 1}},
		{"negative hysteresis", OnlineConfig{MinImprove: -0.1}},
		{"hysteresis >= 1", OnlineConfig{MinImprove: 1}},
	}
	for _, tc := range cases {
		err := runtime.Run(runtime.Config{Mapping: mapping(t, 1, 2)}, func(c comm.Comm) error {
			if _, err := New("tuned", c, 64, Options{Table: testDispatch(), Online: &tc.cfg}); err == nil {
				return fmt.Errorf("%s accepted", tc.name)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestOnlinePromotesOnDrift is the heart of the refinement loop: a table
// whose bucket winner is wrong for the machine (as it would be after the
// machine drifted from the one the table was tuned on) must converge onto
// the adjacent bucket's algorithm — collectively, with the OnPromote
// event on rank 0 only, and with deterministic trial cadence.
func TestOnlinePromotesOnDrift(t *testing.T) {
	t.Parallel()
	const nodes, ppn, block = 2, 8, 4096
	// "slow" serves bucket 0 but is badly beaten there by bucket 1's
	// algorithm: sched:ring routes every block through Theta(p) hops,
	// pairwise sends it once.
	spec := &Dispatch{Entries: []DispatchEntry{
		{MaxBlock: 8192, Name: "slow", Algo: "sched:ring"},
		{MaxBlock: 16384, Name: "fast", Algo: "pairwise"},
	}}
	var (
		mu       sync.Mutex
		events   []PromoteEvent
		rankGens = make(map[int]int)
		picked   = make(map[int]string)
	)
	cfg := sim.ClusterConfig{Model: onlineModel(), Nodes: nodes, PPN: ppn, Seed: 1}
	_, err := sim.RunCluster(cfg, func(c comm.Comm) error {
		oc := &OnlineConfig{Window: 2, TrialEvery: 2, OnPromote: func(ev PromoteEvent) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		}}
		a, err := New("tuned", c, 16384, Options{Table: spec, Online: oc})
		if err != nil {
			return err
		}
		send := comm.Virtual(c.Size() * block)
		recv := comm.Virtual(c.Size() * block)
		for i := 0; i < 12; i++ {
			if err := a.Alltoall(send, recv, block); err != nil {
				return fmt.Errorf("call %d: %w", i, err)
			}
		}
		st := a.(interface{ OnlineStats() OnlineStats }).OnlineStats()
		if !st.Enabled {
			return fmt.Errorf("rank %d: stats disabled in online mode", c.Rank())
		}
		if got := st.Buckets[0].Entry.Algo; got != "pairwise" {
			return fmt.Errorf("rank %d: bucket 0 serves %q after 12 calls, want promoted pairwise", c.Rank(), got)
		}
		if st.Buckets[0].Calls != 12 || st.Buckets[0].Promotions != 1 {
			return fmt.Errorf("rank %d: bucket stats %+v, want 12 calls and 1 promotion", c.Rank(), st.Buckets[0])
		}
		mu.Lock()
		rankGens[c.Rank()] = st.Generation
		picked[c.Rank()] = a.(interface{ Picked() string }).Picked()
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// OnPromote fires exactly once, on rank 0 only, after the collective
	// decision.
	if len(events) != 1 {
		t.Fatalf("OnPromote fired %d times, want exactly 1 (rank 0 only)", len(events))
	}
	ev := events[0]
	if ev.Op != OpAlltoall || ev.Bucket != 0 || ev.Generation != 1 {
		t.Errorf("event %+v: want op alltoall, bucket 0, generation 1", ev)
	}
	if ev.Old.Name != "slow" || ev.New.Name != "fast" || ev.New.MaxBlock != ev.Old.MaxBlock {
		t.Errorf("event promoted %q -> %q (boundary %d -> %d), want slow -> fast with the boundary kept",
			ev.Old.Name, ev.New.Name, ev.Old.MaxBlock, ev.New.MaxBlock)
	}
	if ev.NewMean >= ev.OldMean*(1-tunedHysteresis) {
		t.Errorf("promotion means %g vs %g do not clear the hysteresis that gated it", ev.NewMean, ev.OldMean)
	}
	// Every rank converged to the same generation and incumbent — the
	// decision was collective, not per-rank.
	for r, g := range rankGens {
		if g != 1 {
			t.Errorf("rank %d at generation %d, want 1", r, g)
		}
		if picked[r] != "fast" {
			t.Errorf("rank %d last picked %q, want fast", r, picked[r])
		}
	}
}

// TestOnlineKeepsGoodIncumbent: when the table is right for the machine,
// trials happen but nothing is promoted — the hysteresis window absorbs
// the challenger's near-miss or clear loss.
func TestOnlineKeepsGoodIncumbent(t *testing.T) {
	t.Parallel()
	const block = 4096
	spec := &Dispatch{Entries: []DispatchEntry{
		{MaxBlock: 8192, Name: "good", Algo: "pairwise"},
		{MaxBlock: 16384, Name: "bad", Algo: "sched:ring"},
	}}
	cfg := sim.ClusterConfig{Model: onlineModel(), Nodes: 2, PPN: 8, Seed: 1}
	_, err := sim.RunCluster(cfg, func(c comm.Comm) error {
		a, err := New("tuned", c, 16384, Options{Table: spec, Online: &OnlineConfig{Window: 2, TrialEvery: 2}})
		if err != nil {
			return err
		}
		send := comm.Virtual(c.Size() * block)
		recv := comm.Virtual(c.Size() * block)
		for i := 0; i < 20; i++ {
			if err := a.Alltoall(send, recv, block); err != nil {
				return err
			}
		}
		st := a.(interface{ OnlineStats() OnlineStats }).OnlineStats()
		b := st.Buckets[0]
		if b.Trials < 2 {
			return fmt.Errorf("only %d trials in 20 calls with TrialEvery=2", b.Trials)
		}
		if st.Generation != 0 || b.Promotions != 0 || b.Entry.Name != "good" {
			return fmt.Errorf("good incumbent displaced: gen %d, bucket %+v", st.Generation, b)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestOnlineVPromotes runs the same drift convergence through the
// alltoallv dispatcher: at 4096 B/peer the node-aware aggregation loses
// badly to flat nonblocking on the tiny machine.
func TestOnlineVPromotes(t *testing.T) {
	t.Parallel()
	const per = 4096
	spec := &Dispatch{Op: OpAlltoallv, Entries: []DispatchEntry{
		{MaxBlock: 8192, Name: "slow", Algo: "node-aware"},
		{MaxBlock: 16384, Name: "fast", Algo: "nonblocking"},
	}}
	cfg := sim.ClusterConfig{Model: onlineModel(), Nodes: 2, PPN: 8, Seed: 1}
	_, err := sim.RunCluster(cfg, func(c comm.Comm) error {
		p := c.Size()
		a, err := NewV("tuned", c, p*16384, Options{Table: spec, Online: &OnlineConfig{Window: 2, TrialEvery: 2}})
		if err != nil {
			return err
		}
		counts := make([]int, p)
		for i := range counts {
			counts[i] = per
		}
		displs, total := DisplsFromCounts(counts)
		send := comm.Virtual(total)
		recv := comm.Virtual(total)
		for i := 0; i < 12; i++ {
			if err := a.Alltoallv(send, counts, displs, recv, counts, displs); err != nil {
				return fmt.Errorf("call %d: %w", i, err)
			}
		}
		st := a.(interface{ OnlineStats() OnlineStats }).OnlineStats()
		if st.Generation != 1 || st.Buckets[0].Entry.Algo != "nonblocking" {
			return fmt.Errorf("rank %d: generation %d, bucket 0 %q — v-dispatcher did not converge",
				c.Rank(), st.Generation, st.Buckets[0].Entry.Algo)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestOnlineStatsDisabled: a statically tuned dispatcher reports a zero
// snapshot, and its shared spec is never copied or mutated.
func TestOnlineStatsDisabled(t *testing.T) {
	t.Parallel()
	err := runtime.Run(runtime.Config{Mapping: mapping(t, 1, 2)}, func(c comm.Comm) error {
		a, err := New("tuned", c, 8192, Options{Table: testDispatch()})
		if err != nil {
			return err
		}
		if st := a.(interface{ OnlineStats() OnlineStats }).OnlineStats(); st.Enabled {
			return fmt.Errorf("static dispatcher reports online stats: %+v", st)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTunedConcurrentStartExactlyOnce is the regression test for the
// OpState check-then-set race: goroutines racing Start on one tuned
// instance must serialize to exactly one outstanding exchange, and the
// bucket's algorithm must be instantiated exactly once — the same
// singleflight discipline the schedule cache pins for racing schedFor
// callers. Run with -race: before the OpState mutex, two racers could
// both pass the pending check and dispatch two bodies concurrently over
// the same lazy instance slot.
func TestTunedConcurrentStartExactlyOnce(t *testing.T) {
	t.Parallel()
	const racers, rounds, block = 8, 3, 10
	err := runtime.Run(runtime.Config{Mapping: mapping(t, 2, 8)}, func(c comm.Comm) error {
		p := c.Size()
		a, err := New("tuned", c, 8192, Options{Table: testDispatch()})
		if err != nil {
			return err
		}
		tu := a.(*tuned)
		var first Alltoaller
		for round := 0; round < rounds; round++ {
			handles := make([]Handle, racers)
			errs := make([]error, racers)
			var wg sync.WaitGroup
			for i := 0; i < racers; i++ {
				i := i
				send := comm.Alloc(p * block)
				recv := comm.Alloc(p * block)
				wg.Add(1)
				go func() {
					defer wg.Done()
					handles[i], errs[i] = a.Start(send, recv, block)
				}()
			}
			wg.Wait()
			// Exactly one racer may win the slot; the rest must fail with
			// ErrPending, not launch a second exchange.
			wins := 0
			for i := 0; i < racers; i++ {
				switch {
				case errs[i] == nil:
					wins++
					if err := handles[i].Wait(); err != nil {
						return fmt.Errorf("round %d: winner failed: %w", round, err)
					}
				case !errors.Is(errs[i], ErrPending):
					return fmt.Errorf("round %d racer %d: %v, want ErrPending", round, i, errs[i])
				}
			}
			if wins != 1 {
				return fmt.Errorf("round %d: %d Starts succeeded concurrently, want exactly 1", round, wins)
			}
			// Exactly-once lazy instantiation: the 10 B bucket exists, the
			// others were never touched, and every round reuses the same
			// instance.
			if tu.insts[0] == nil || tu.insts[1] != nil || tu.insts[2] != nil {
				return fmt.Errorf("round %d: lazy instantiation broken: %v", round, tu.insts)
			}
			if first == nil {
				first = tu.insts[0]
			} else if tu.insts[0] != first {
				return fmt.Errorf("round %d: bucket instance replaced across rounds", round)
			}
		}
		if got := tu.Picked(); got != "small" {
			return fmt.Errorf("picked %q, want small", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
