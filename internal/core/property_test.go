package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"alltoallx/internal/comm"
	"alltoallx/internal/runtime"
	"alltoallx/internal/testutil"
	"alltoallx/internal/topo"
)

// TestAlgorithmsAgreeProperty: every algorithm must produce byte-identical
// results to the pairwise reference for random payloads, shapes and
// parameters. This is the repository's strongest single invariant — it
// pins the novel algorithms' repacking logic against the trivial
// reference.
func TestAlgorithmsAgreeProperty(t *testing.T) {
	t.Parallel()
	f := func(seed int64, nodesRaw, blockRaw, qRaw uint8) bool {
		nodes := int(nodesRaw%3) + 2  // 2..4 nodes
		block := int(blockRaw%19) + 1 // 1..19 bytes
		qChoices := []int{1, 2, 4, 8}
		q := qChoices[int(qRaw)%len(qChoices)]
		m, err := topo.NewMapping(tinyNode(), nodes, 8)
		if err != nil {
			t.Fatal(err)
		}
		p := m.Size()
		rng := rand.New(rand.NewSource(seed))
		inputs := make([][]byte, p)
		for r := range inputs {
			inputs[r] = make([]byte, p*block)
			rng.Read(inputs[r])
		}
		// Reference result computed directly: recv_r[s] = send_s[r].
		want := make([][]byte, p)
		for r := range want {
			want[r] = make([]byte, p*block)
			for s := 0; s < p; s++ {
				copy(want[r][s*block:(s+1)*block], inputs[s][r*block:(r+1)*block])
			}
		}
		for _, algo := range []string{
			"pairwise", "nonblocking", "batched", "bruck",
			"hierarchical", "multileader", "node-aware", "locality-aware", "multileader-node-aware",
		} {
			ok := true
			err := runtime.Run(runtime.Config{Mapping: m}, func(c comm.Comm) error {
				a, err := New(algo, c, block, Options{PPL: q, PPG: q, BatchWindow: 3})
				if err != nil {
					return err
				}
				send := comm.Alloc(p * block)
				copy(send.Bytes(), inputs[c.Rank()])
				recv := comm.Alloc(p * block)
				if err := a.Alltoall(send, recv, block); err != nil {
					return err
				}
				if !bytes.Equal(recv.Bytes(), want[c.Rank()]) {
					ok = false
				}
				return nil
			})
			if err != nil || !ok {
				t.Logf("algo=%s nodes=%d block=%d q=%d seed=%d: err=%v ok=%v", algo, nodes, block, q, seed, err, ok)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestBruckManyRankCounts sweeps awkward (non-power-of-two, prime) rank
// counts through the Bruck implementation.
func TestBruckManyRankCounts(t *testing.T) {
	t.Parallel()
	for _, n := range []int{1, 2, 3, 5, 7, 11, 13, 16, 17, 24, 31, 32, 33} {
		n := n
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			t.Parallel()
			const block = 5
			err := runtime.Run(runtime.Config{Ranks: n}, func(c comm.Comm) error {
				return liveBody("bruck", Options{}, block)(c)
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestBatchedWindowProperty: any window size yields correct results,
// including windows larger than the rank count.
func TestBatchedWindowProperty(t *testing.T) {
	t.Parallel()
	f := func(wRaw uint8) bool {
		w := int(wRaw%40) + 1
		err := runtime.Run(runtime.Config{Ranks: 9}, liveBody("batched", Options{BatchWindow: w}, 6))
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestRepeatedAlltoallReuse: a persistent instance survives many calls
// with changing payloads (staging buffers must not leak state).
func TestRepeatedAlltoallReuse(t *testing.T) {
	t.Parallel()
	m, err := topo.NewMapping(tinyNode(), 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	const block = 8
	err = runtime.Run(runtime.Config{Mapping: m}, func(c comm.Comm) error {
		p := c.Size()
		a, err := New("multileader-node-aware", c, block, Options{PPL: 2})
		if err != nil {
			return err
		}
		send := comm.Alloc(p * block)
		recv := comm.Alloc(p * block)
		for iter := 0; iter < 5; iter++ {
			for d := 0; d < p; d++ {
				for i := 0; i < block; i++ {
					send.Bytes()[d*block+i] = byte(iter*31 + c.Rank()*7 + d*3 + i)
				}
			}
			if err := a.Alltoall(send, recv, block); err != nil {
				return fmt.Errorf("iter %d: %w", iter, err)
			}
			for s := 0; s < p; s++ {
				for i := 0; i < block; i++ {
					want := byte(iter*31 + s*7 + c.Rank()*3 + i)
					if got := recv.Bytes()[s*block+i]; got != want {
						return fmt.Errorf("iter %d block %d byte %d: got %d want %d", iter, s, i, got, want)
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSmallerBlockThanMax: a persistent instance built for maxBlock must
// handle any smaller block.
func TestSmallerBlockThanMax(t *testing.T) {
	t.Parallel()
	m, err := topo.NewMapping(tinyNode(), 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	err = runtime.Run(runtime.Config{Mapping: m}, func(c comm.Comm) error {
		a, err := New("locality-aware", c, 64, Options{PPG: 4})
		if err != nil {
			return err
		}
		p := c.Size()
		for _, block := range []int{64, 16, 3, 1} {
			send := comm.Alloc(p * block)
			recv := comm.Alloc(p * block)
			testutil.FillAlltoall(send, c.Rank(), p, block)
			if err := a.Alltoall(send, recv, block); err != nil {
				return fmt.Errorf("block %d: %w", block, err)
			}
			if err := testutil.CheckAlltoall(recv, c.Rank(), p, block); err != nil {
				return fmt.Errorf("block %d: %w", block, err)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
