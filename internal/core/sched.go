package core

import (
	"container/list"
	"fmt"
	"strings"
	"sync"

	"alltoallx/internal/comm"
	"alltoallx/internal/sched"
	"alltoallx/internal/topo"
)

// This file registers every schedule generator of internal/sched as a
// first-class algorithm named "sched:<generator>". Construction compiles
// the schedule for the communicator's world, statically verifies it — an
// unverifiable schedule never runs — and wraps the executor in the same
// persistent-operation shell as every other algorithm, so
// Start/Test/Wait handles, tuned dispatch, autotune sweeps, the bench
// harness and the trace phase breakdown all work on schedules with zero
// special-casing.
//
// Worlds of at most schedSliceRanks ranks compile and verify the
// assembled schedule (the authoritative full symbolic proof). Larger
// worlds use rank-sliced compilation: each rank builds only its own
// sched.RankProgram — O(slice), never O(p^2) — verified locally per
// slice plus once per world by the streaming cross-rank verifier.

// SchedPrefix is the registry namespace of schedule-backed algorithms.
const SchedPrefix = "sched:"

// schedSliceRanks is the whole-world ceiling: above it, construction
// switches to rank-sliced compilation and streaming verification. Two
// costs pin it at the old 128-rank candidate cap: the full verifier's
// symbolic state is O(p · slots) — O(p^3) slots for the route schedules —
// and the assembled schedule must fit the bounded cache below, or every
// rank's construction would miss and recompile the whole world (the ring
// schedule at 256 ranks is already ~800 MB of steps).
const schedSliceRanks = 128

// schedState is the persistent form of a schedule-backed algorithm: the
// verified schedule (or this rank's slice of it) plus its executor's
// cached scratch buffers.
type schedState struct {
	*basic
	ex *sched.Exec
}

func (st *schedState) run(c comm.Comm, send, recv comm.Buffer, block int) error {
	return st.ex.Run(c, send, recv, block, st.basic.rec)
}

// Schedule exposes the compiled whole-world schedule for inspection
// (cmd/a2asched and tests); it is reachable through a type assertion:
//
//	s := a.(interface{ Schedule() *sched.Schedule }).Schedule()
//
// Above the slicing threshold no assembled schedule exists and Schedule
// returns nil; Program always reflects what this rank runs.
func (st *schedState) Schedule() *sched.Schedule { return st.ex.Schedule() }

// Program exposes this rank's compiled program (the slice executed on the
// large-world path, or the lazy slice of the whole-world schedule).
func (st *schedState) Program() *sched.RankProgram { return st.ex.Program() }

// schedCache shares compiled-and-verified schedule artifacts across the
// ranks and operations of a process: whole-world schedules below the
// slicing threshold (generators are deterministic and schedules immutable
// after verification, so sharing is safe — without it every rank of an
// SPMD program would compile its own copy, turning an O(p^2) construction
// into O(p^3) across ranks) and per-rank programs above it. Retained
// bytes are capped: entries are evicted least-recently-used, so an
// autotune sweep over many world shapes no longer accretes every
// schedule it ever compiled. Eviction only bounds reuse, not
// correctness — live executors keep their own references.
type schedCacheT struct {
	mu    sync.Mutex
	limit int64
	used  int64
	ll    *list.List // front = most recently used; values are *schedCacheEntry
	m     map[string]*list.Element
}

type schedCacheEntry struct {
	key   string
	bytes int64
	s     *sched.Schedule
	rp    *sched.RankProgram
}

// schedCacheDefaultLimit bounds retained schedule bytes per process.
// Rank slices are small (O(blocks through the rank)), so this holds
// thousands of them, and schedSliceRanks is chosen so the largest
// whole-world schedule the full path can compile (ring at the threshold,
// ~100 MB) fits with room to spare — an entry that exceeded the limit
// would be evicted immediately and every rank of the world would
// recompile it.
const schedCacheDefaultLimit = 256 << 20

var schedCache = &schedCacheT{limit: schedCacheDefaultLimit, ll: list.New(), m: make(map[string]*list.Element)}

func (c *schedCacheT) get(key string) (*schedCacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*schedCacheEntry), true
}

func (c *schedCacheT) put(e *schedCacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[e.key]; ok {
		c.ll.MoveToFront(el)
		return
	}
	c.m[e.key] = c.ll.PushFront(e)
	c.used += e.bytes
	c.evictLocked()
}

// evictLocked drops least-recently-used entries until the retained bytes
// fit the limit. Callers hold c.mu.
func (c *schedCacheT) evictLocked() {
	for c.used > c.limit && c.ll.Len() > 0 {
		back := c.ll.Back()
		ev := back.Value.(*schedCacheEntry)
		c.ll.Remove(back)
		delete(c.m, ev.key)
		c.used -= ev.bytes
	}
}

func (c *schedCacheT) delete(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		ev := el.Value.(*schedCacheEntry)
		c.ll.Remove(el)
		delete(c.m, key)
		c.used -= ev.bytes
	}
}

// setSchedCacheLimit adjusts the retained-bytes cap (evicting immediately
// if needed) and returns the previous limit. Tests use it to pin the
// bound; a zero or negative limit keeps nothing.
func setSchedCacheLimit(limit int64) int64 {
	schedCache.mu.Lock()
	defer schedCache.mu.Unlock()
	old := schedCache.limit
	schedCache.limit = limit
	schedCache.evictLocked()
	return old
}

// schedCacheStats reports the cache's entry count and retained bytes.
func schedCacheStats() (entries int, bytes int64) {
	schedCache.mu.Lock()
	defer schedCache.mu.Unlock()
	return schedCache.ll.Len(), schedCache.used
}

// verifiedWorlds records the streaming cross-rank verification verdict
// per (generator, world shape): the check walks every rank's slice, so
// one pass per world per process is enough. Entries are a string and an
// error — O(worlds touched), not O(schedule).
var verifiedWorlds = struct {
	sync.Mutex
	m map[string]error
}{m: make(map[string]error)}

func worldKey(gen string, p int, m *topo.Mapping) string {
	return fmt.Sprintf("%s|%d|%s", gen, p, topoKey(m))
}

// schedFor returns the verified whole-world schedule for a generator at
// c's world, compiling it on first use (the at-or-below-threshold path).
func schedFor(gen string, c comm.Comm) (*sched.Schedule, error) {
	key := "w|" + worldKey(gen, c.Size(), c.Topo())
	if e, ok := schedCache.get(key); ok {
		return e.s, nil
	}
	s, err := sched.Generate(gen, c.Size(), c.Topo())
	if err != nil {
		return nil, fmt.Errorf("core: %s%s: %w", SchedPrefix, gen, err)
	}
	if err := sched.Verify(s); err != nil {
		return nil, fmt.Errorf("core: %s%s failed static verification: %w", SchedPrefix, gen, err)
	}
	schedCache.put(&schedCacheEntry{key: key, bytes: s.MemBytes(), s: s})
	return s, nil
}

// rankProgFor returns this rank's verified program for a generator at c's
// world (the above-threshold path): the slice is compiled directly —
// O(slice) memory — and locally verified; the cross-rank properties are
// proved once per world by the streaming verifier. Any whole-world entry
// for the same world is evicted: once a world is sliced, the assembled
// schedule must not linger in the cache.
func rankProgFor(gen string, c comm.Comm) (*sched.RankProgram, error) {
	wk := worldKey(gen, c.Size(), c.Topo())
	verifiedWorlds.Lock()
	werr, checked := verifiedWorlds.m[wk]
	if !checked {
		werr = sched.VerifyWorldSliced(gen, c.Size(), c.Topo())
		verifiedWorlds.m[wk] = werr
	}
	verifiedWorlds.Unlock()
	if werr != nil {
		return nil, fmt.Errorf("core: %s%s failed streamed verification: %w", SchedPrefix, gen, werr)
	}
	schedCache.delete("w|" + wk)
	key := fmt.Sprintf("r|%s|%d", wk, c.Rank())
	if e, ok := schedCache.get(key); ok {
		return e.rp, nil
	}
	rp, err := sched.GenerateRank(gen, c.Size(), c.Rank(), c.Topo())
	if err != nil {
		return nil, fmt.Errorf("core: %s%s: %w", SchedPrefix, gen, err)
	}
	// No per-slice VerifyRank here: the streamed world pass above already
	// ran the identical local checks on every rank's slice, and
	// generation is deterministic, so this regeneration is byte-identical
	// to what it proved — re-walking it would double the construction
	// cost of every above-threshold world.
	schedCache.put(&schedCacheEntry{key: key, bytes: rp.MemBytes(), rp: rp})
	return rp, nil
}

// topoKey fingerprints the part of the topology generators consume (the
// nodes x ppn grid).
func topoKey(m *topo.Mapping) string {
	if m == nil {
		return "flat"
	}
	return fmt.Sprintf("%dx%d", m.Nodes(), m.PPN())
}

// newSchedState builds the persistent operation; sliced selects the
// rank-sliced construction path (forced above schedSliceRanks).
func newSchedState(gen string, c comm.Comm, maxBlock int, sliced bool) (Alltoaller, error) {
	st := &schedState{}
	if sliced {
		rp, err := rankProgFor(gen, c)
		if err != nil {
			return nil, err
		}
		st.ex = sched.NewRankExec(rp)
	} else {
		s, err := schedFor(gen, c)
		if err != nil {
			return nil, err
		}
		st.ex = sched.NewExec(s)
	}
	st.basic = newBasic(SchedPrefix+gen, c, maxBlock, st.run)
	return st, nil
}

func newSchedFactory(gen string) factory {
	return func(c comm.Comm, maxBlock int, _ Options) (Alltoaller, error) {
		return newSchedState(gen, c, maxBlock, c.Size() > schedSliceRanks)
	}
}

// SchedNames returns the registered schedule-backed algorithm names,
// sorted.
func SchedNames() []string {
	var out []string
	for _, n := range Names() {
		if strings.HasPrefix(n, SchedPrefix) {
			out = append(out, n)
		}
	}
	return out
}

func init() {
	for _, g := range sched.Generators() {
		registry[SchedPrefix+g] = newSchedFactory(g)
	}
}
