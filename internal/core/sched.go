package core

import (
	"container/list"
	"fmt"
	"strings"
	"sync"

	"alltoallx/internal/comm"
	"alltoallx/internal/sched"
	"alltoallx/internal/singleflight"
	"alltoallx/internal/topo"
)

// This file registers every schedule generator of internal/sched as a
// first-class algorithm named "sched:<generator>". Construction compiles
// the schedule for the communicator's world, statically verifies it — an
// unverifiable schedule never runs — and wraps the executor in the same
// persistent-operation shell as every other algorithm, so
// Start/Test/Wait handles, tuned dispatch, autotune sweeps, the bench
// harness and the trace phase breakdown all work on schedules with zero
// special-casing.
//
// Worlds of at most schedSliceRanks ranks compile and verify the
// assembled schedule (the authoritative full symbolic proof). Larger
// worlds use rank-sliced compilation: each rank builds only its own
// sched.RankProgram — O(slice), never O(p^2) — verified locally per
// slice plus once per world by the streaming cross-rank verifier.
//
// Construction consults, in order: the in-process LRU cache, the
// schedule service (when a fetcher is installed via SetSchedFetcher),
// and local compilation. The service's "daemon → disk" ordering
// describes the system end-to-end — the daemon fronts the disk
// registry — but within a process the LRU is consulted first: it is the
// cheapest tier, and programs are immutable once verified, so a cached
// copy can never be stale relative to the service.

// SchedPrefix is the registry namespace of schedule-backed algorithms.
const SchedPrefix = "sched:"

// schedSliceRanks is the whole-world ceiling: above it, construction
// switches to rank-sliced compilation and streaming verification. Two
// costs pin it at the old 128-rank candidate cap: the full verifier's
// symbolic state is O(p · slots) — O(p^3) slots for the route schedules —
// and the assembled schedule must fit the bounded cache below, or every
// rank's construction would miss and recompile the whole world (the ring
// schedule at 256 ranks is already ~800 MB of steps).
const schedSliceRanks = 128

// Test seams for the compilation entry points, so tests can count
// generator invocations (proving the negative cache and singleflight
// actually prevent runs) without touching the generators themselves.
var (
	schedGenerate          = sched.Generate
	schedGenerateRank      = sched.GenerateRank
	schedVerifyWorldSliced = sched.VerifyWorldSliced
)

// SchedFetcher is the schedule-service hook: it resolves a
// (generator, world, rank) to a compiled rank program from a shared
// source — the a2aschedd daemon or a disk registry. The contract is
// three-valued:
//
//	(rp, nil)   hit — core verifies the slice locally and uses it,
//	            skipping world verification (the service verified the
//	            world before serving anything)
//	(nil, err)  definitive rejection — the world cannot be compiled;
//	            core negative-caches the error
//	(nil, nil)  service unavailable — fall through to local compilation
type SchedFetcher func(gen string, p int, m *topo.Mapping, rank int) (*sched.RankProgram, error)

var schedFetcherHook struct {
	sync.RWMutex
	f SchedFetcher // guarded by RWMutex
}

// SetSchedFetcher installs (or, with nil, removes) the schedule-service
// fetcher. While a fetcher is installed, schedule-backed algorithms
// construct through the rank-sliced path at every world size, since the
// service serves rank programs. Install once at process startup (cmd
// wiring), before constructions begin.
func SetSchedFetcher(f SchedFetcher) {
	schedFetcherHook.Lock()
	schedFetcherHook.f = f
	schedFetcherHook.Unlock()
}

func schedFetcher() SchedFetcher {
	schedFetcherHook.RLock()
	defer schedFetcherHook.RUnlock()
	return schedFetcherHook.f
}

// schedState is the persistent form of a schedule-backed algorithm: the
// verified schedule (or this rank's slice of it) plus its executor's
// cached scratch buffers.
type schedState struct {
	*basic
	ex *sched.Exec
}

func (st *schedState) run(c comm.Comm, send, recv comm.Buffer, block int) error {
	return st.ex.Run(c, send, recv, block, st.basic.rec)
}

// Schedule exposes the compiled whole-world schedule for inspection
// (cmd/a2asched and tests); it is reachable through a type assertion:
//
//	s := a.(interface{ Schedule() *sched.Schedule }).Schedule()
//
// Above the slicing threshold no assembled schedule exists and Schedule
// returns nil; Program always reflects what this rank runs.
func (st *schedState) Schedule() *sched.Schedule { return st.ex.Schedule() }

// Program exposes this rank's compiled program (the slice executed on the
// large-world path, or the lazy slice of the whole-world schedule).
func (st *schedState) Program() *sched.RankProgram { return st.ex.Program() }

// schedCache shares compiled-and-verified schedule artifacts across the
// ranks and operations of a process: whole-world schedules below the
// slicing threshold (generators are deterministic and schedules immutable
// after verification, so sharing is safe — without it every rank of an
// SPMD program would compile its own copy, turning an O(p^2) construction
// into O(p^3) across ranks) and per-rank programs above it. Retained
// bytes are capped: entries are evicted least-recently-used, so an
// autotune sweep over many world shapes no longer accretes every
// schedule it ever compiled. Eviction only bounds reuse, not
// correctness — live executors keep their own references.
//
// Alongside the positive entries it keeps a negative cache: worlds a
// generator rejected (hypercube at a non-power-of-2 world, say) are
// remembered as their error, so repeated construction attempts — every
// rank of an SPMD program, or an autotune sweep probing all generators —
// run the failing generator once, not once per attempt. Negative
// entries are O(error string) and uncounted against the byte limit.
type schedCacheT struct {
	mu    sync.Mutex
	limit int64                    // guarded by mu
	used  int64                    // guarded by mu
	ll    *list.List               // front = most recently used; values are *schedCacheEntry; guarded by mu
	m     map[string]*list.Element // guarded by mu
	neg   map[string]error         // guarded by mu

	hits, misses, evictions, negHits int64 // guarded by mu
}

type schedCacheEntry struct {
	key   string
	bytes int64
	s     *sched.Schedule
	rp    *sched.RankProgram
}

// schedCacheDefaultLimit bounds retained schedule bytes per process.
// Rank slices are small (O(blocks through the rank)), so this holds
// thousands of them, and schedSliceRanks is chosen so the largest
// whole-world schedule the full path can compile (ring at the threshold,
// ~100 MB) fits with room to spare — an entry that exceeded the limit
// would be evicted immediately and every rank of the world would
// recompile it.
const schedCacheDefaultLimit = 256 << 20

var schedCache = &schedCacheT{
	limit: schedCacheDefaultLimit,
	ll:    list.New(),
	m:     make(map[string]*list.Element),
	neg:   make(map[string]error),
}

// schedFlight coalesces concurrent constructions of the same cache key:
// N racing goroutines run the generator once and share the result (the
// cache then serves everyone after the flight lands).
var schedFlight singleflight.Group

// get is the counted lookup: a construction's first probe. Misses are
// counted here so hits + misses equals the construction attempts that
// reached the cache.
func (c *schedCacheT) get(key string) (*schedCacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*schedCacheEntry), true
}

// peek is the uncounted lookup used inside a singleflight execution to
// close the lost-race window (a caller that missed get but entered a
// fresh flight after an earlier one landed); it must not distort the
// hit/miss counters.
func (c *schedCacheT) peek(key string) (*schedCacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*schedCacheEntry), true
}

func (c *schedCacheT) put(e *schedCacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[e.key]; ok {
		c.ll.MoveToFront(el)
		return
	}
	c.m[e.key] = c.ll.PushFront(e)
	c.used += e.bytes
	c.evictLocked()
}

// getNeg answers from the negative cache (counted).
func (c *schedCacheT) getNeg(key string) (error, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	err, ok := c.neg[key]
	if ok {
		c.negHits++
	}
	return err, ok
}

// peekNeg is getNeg without counters (flight-internal re-check).
func (c *schedCacheT) peekNeg(key string) (error, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	err, ok := c.neg[key]
	return err, ok
}

// putNeg records a definitive construction failure.
func (c *schedCacheT) putNeg(key string, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.neg[key] = err
}

// deleteNeg forgets a negative verdict (tests).
func (c *schedCacheT) deleteNeg(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.neg, key)
}

// evictLocked drops least-recently-used entries until the retained bytes
// fit the limit. Callers hold c.mu.
func (c *schedCacheT) evictLocked() {
	for c.used > c.limit && c.ll.Len() > 0 {
		back := c.ll.Back()
		ev := back.Value.(*schedCacheEntry)
		c.ll.Remove(back)
		delete(c.m, ev.key)
		c.used -= ev.bytes
		c.evictions++
	}
}

func (c *schedCacheT) delete(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		ev := el.Value.(*schedCacheEntry)
		c.ll.Remove(el)
		delete(c.m, key)
		c.used -= ev.bytes
	}
}

// setSchedCacheLimit adjusts the retained-bytes cap (evicting immediately
// if needed) and returns the previous limit. Tests use it to pin the
// bound; a zero or negative limit keeps nothing.
func setSchedCacheLimit(limit int64) int64 {
	schedCache.mu.Lock()
	defer schedCache.mu.Unlock()
	old := schedCache.limit
	schedCache.limit = limit
	schedCache.evictLocked()
	return old
}

// schedCacheStats reports the cache's entry count and retained bytes.
func schedCacheStats() (entries int, bytes int64) {
	schedCache.mu.Lock()
	defer schedCache.mu.Unlock()
	return schedCache.ll.Len(), schedCache.used
}

// CacheStats is the schedule cache's observable state: what it holds and
// the lifetime counters of how it got there. Surfaced by `a2asched
// list`.
type CacheStats struct {
	// Entries and Bytes describe what the cache currently retains.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// NegativeEntries counts remembered (generator, world) rejections.
	NegativeEntries int `json:"negative_entries"`
	// Hits/Misses count constructions served from / missing the cache;
	// Evictions counts entries dropped by the byte limit; NegativeHits
	// counts constructions answered by a remembered rejection.
	Hits         int64 `json:"hits"`
	Misses       int64 `json:"misses"`
	Evictions    int64 `json:"evictions"`
	NegativeHits int64 `json:"negative_hits"`
}

// SchedCacheStats snapshots the schedule cache counters.
func SchedCacheStats() CacheStats {
	schedCache.mu.Lock()
	defer schedCache.mu.Unlock()
	return CacheStats{
		Entries:         schedCache.ll.Len(),
		Bytes:           schedCache.used,
		NegativeEntries: len(schedCache.neg),
		Hits:            schedCache.hits,
		Misses:          schedCache.misses,
		Evictions:       schedCache.evictions,
		NegativeHits:    schedCache.negHits,
	}
}

// verifiedWorlds records the streaming cross-rank verification verdict
// per (generator, world shape): the check walks every rank's slice, so
// one pass per world per process is enough. Entries are a string and an
// error — O(worlds touched), not O(schedule).
var verifiedWorlds = struct {
	sync.Mutex
	m map[string]error // guarded by Mutex
}{m: make(map[string]error)}

func worldKey(gen string, p int, m *topo.Mapping) string {
	return fmt.Sprintf("%s|%d|%s", gen, p, topoKey(m))
}

// schedFor returns the verified whole-world schedule for a generator at
// a p-rank world mapped by m, compiling it on first use (the
// at-or-below-threshold path). Concurrent callers for one world
// coalesce into a single compilation; rejections are negative-cached so
// the failing generator runs once per world, not once per construction
// attempt.
func schedFor(gen string, p int, m *topo.Mapping) (*sched.Schedule, error) {
	wk := worldKey(gen, p, m)
	key, nkey := "w|"+wk, "n|"+wk
	if e, ok := schedCache.get(key); ok {
		return e.s, nil
	}
	if err, ok := schedCache.getNeg(nkey); ok {
		return nil, err
	}
	v, err, _ := schedFlight.Do(key, func() (any, error) {
		if e, ok := schedCache.peek(key); ok {
			return e.s, nil
		}
		if err, ok := schedCache.peekNeg(nkey); ok {
			return nil, err
		}
		s, err := schedGenerate(gen, p, m)
		if err != nil {
			err = fmt.Errorf("core: %s%s: %w", SchedPrefix, gen, err)
			schedCache.putNeg(nkey, err)
			return nil, err
		}
		if err := sched.Verify(s); err != nil {
			err = fmt.Errorf("core: %s%s failed static verification: %w", SchedPrefix, gen, err)
			schedCache.putNeg(nkey, err)
			return nil, err
		}
		schedCache.put(&schedCacheEntry{key: key, bytes: s.MemBytes(), s: s})
		return s, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*sched.Schedule), nil
}

// rankProgFor returns rank's verified program for a generator at a
// p-rank world (the above-threshold path, and the only path while a
// schedule-service fetcher is installed): in order, the in-process
// cache, the schedule service, then direct compilation — O(slice)
// memory — with the cross-rank properties proved once per world by the
// streaming verifier (or by the service before it serves anything). Any
// whole-world entry for the same world is evicted: once a world is
// sliced, the assembled schedule must not linger in the cache.
func rankProgFor(gen string, p, rank int, m *topo.Mapping) (*sched.RankProgram, error) {
	wk := worldKey(gen, p, m)
	key, nkey := fmt.Sprintf("r|%s|%d", wk, rank), "n|"+wk
	if e, ok := schedCache.get(key); ok {
		return e.rp, nil
	}
	if err, ok := schedCache.getNeg(nkey); ok {
		return nil, err
	}
	v, err, _ := schedFlight.Do(key, func() (any, error) {
		if e, ok := schedCache.peek(key); ok {
			return e.rp, nil
		}
		if err, ok := schedCache.peekNeg(nkey); ok {
			return nil, err
		}
		if f := schedFetcher(); f != nil {
			rp, ferr := f(gen, p, m, rank)
			switch {
			case ferr != nil:
				ferr = fmt.Errorf("core: %s%s: %w", SchedPrefix, gen, ferr)
				schedCache.putNeg(nkey, ferr)
				return nil, ferr
			case rp != nil:
				// The service verified the world before serving anything;
				// the local re-check covers only this slice's integrity
				// after the network hop.
				if err := sched.VerifyRank(rp); err != nil {
					return nil, fmt.Errorf("core: %s%s: fetched program failed verification: %w", SchedPrefix, gen, err)
				}
				schedCache.delete("w|" + wk)
				schedCache.put(&schedCacheEntry{key: key, bytes: rp.MemBytes(), rp: rp})
				return rp, nil
			}
			// (nil, nil): service unavailable — compile locally.
		}
		verifiedWorlds.Lock()
		werr, checked := verifiedWorlds.m[wk]
		if !checked {
			werr = schedVerifyWorldSliced(gen, p, m)
			verifiedWorlds.m[wk] = werr
		}
		verifiedWorlds.Unlock()
		if werr != nil {
			werr = fmt.Errorf("core: %s%s failed streamed verification: %w", SchedPrefix, gen, werr)
			schedCache.putNeg(nkey, werr)
			return nil, werr
		}
		schedCache.delete("w|" + wk)
		rp, err := schedGenerateRank(gen, p, rank, m)
		if err != nil {
			// Rank-range errors cannot reach here (rank comes from a live
			// communicator), so a generator refusal is a world property.
			err = fmt.Errorf("core: %s%s: %w", SchedPrefix, gen, err)
			schedCache.putNeg(nkey, err)
			return nil, err
		}
		// No per-slice VerifyRank here: the streamed world pass above already
		// ran the identical local checks on every rank's slice, and
		// generation is deterministic, so this regeneration is byte-identical
		// to what it proved — re-walking it would double the construction
		// cost of every above-threshold world.
		schedCache.put(&schedCacheEntry{key: key, bytes: rp.MemBytes(), rp: rp})
		return rp, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*sched.RankProgram), nil
}

// topoKey fingerprints the part of the topology generators consume (the
// nodes x ppn grid).
func topoKey(m *topo.Mapping) string {
	if m == nil {
		return "flat"
	}
	return fmt.Sprintf("%dx%d", m.Nodes(), m.PPN())
}

// newSchedExec compiles and verifies gen's schedule for c's world and
// wraps it in a fresh executor; sliced selects the rank-sliced
// construction path.
func newSchedExec(gen string, c comm.Comm, sliced bool) (*sched.Exec, error) {
	if sliced {
		rp, err := rankProgFor(gen, c.Size(), c.Rank(), c.Topo())
		if err != nil {
			return nil, err
		}
		return sched.NewRankExec(rp), nil
	}
	s, err := schedFor(gen, c.Size(), c.Topo())
	if err != nil {
		return nil, err
	}
	return sched.NewExec(s), nil
}

// NewSchedExec compiles, statically verifies, caches and wraps the named
// generator's schedule for c's world, choosing the whole-world or
// rank-sliced construction path exactly as the sched:* algorithm
// registry does (sliced above schedSliceRanks ranks and whenever a
// schedule-service fetcher is installed). It is the building block for
// running schedules outside the Alltoaller shell — collx's
// schedule-backed reductions and the sched-backed alltoallv dispatcher
// construct through it, sharing the LRU cache, the negative cache, the
// singleflight coalescing and the schedule service with every other
// consumer. Callers running reduction schedules must install an operator
// via Exec.SetOp before Run.
func NewSchedExec(gen string, c comm.Comm) (*sched.Exec, error) {
	if c == nil {
		return nil, errNilComm
	}
	sliced := c.Size() > schedSliceRanks || schedFetcher() != nil
	return newSchedExec(gen, c, sliced)
}

// newSchedState builds the persistent operation; sliced selects the
// rank-sliced construction path (forced above schedSliceRanks, and
// whenever a schedule-service fetcher is installed — the service serves
// rank programs).
func newSchedState(gen string, c comm.Comm, maxBlock int, sliced bool) (Alltoaller, error) {
	st := &schedState{}
	ex, err := newSchedExec(gen, c, sliced)
	if err != nil {
		return nil, err
	}
	st.ex = ex
	st.basic = newBasic(SchedPrefix+gen, c, maxBlock, st.run)
	return st, nil
}

func newSchedFactory(gen string) factory {
	return func(c comm.Comm, maxBlock int, _ Options) (Alltoaller, error) {
		sliced := c.Size() > schedSliceRanks || schedFetcher() != nil
		return newSchedState(gen, c, maxBlock, sliced)
	}
}

// SchedNames returns the registered schedule-backed algorithm names,
// sorted.
func SchedNames() []string {
	var out []string
	for _, n := range Names() {
		if strings.HasPrefix(n, SchedPrefix) {
			out = append(out, n)
		}
	}
	return out
}

func init() {
	for _, g := range sched.Generators() {
		registry[SchedPrefix+g] = newSchedFactory(g)
	}
}
