package core

import (
	"fmt"
	"strings"
	"sync"

	"alltoallx/internal/comm"
	"alltoallx/internal/sched"
	"alltoallx/internal/topo"
)

// This file registers every schedule generator of internal/sched as a
// first-class algorithm named "sched:<generator>". Construction compiles
// the schedule for the communicator's world (using its topology when
// present), statically verifies it — an unverifiable schedule never
// runs — and wraps the executor in the same persistent-operation shell as
// every other algorithm, so Start/Test/Wait handles, tuned dispatch,
// autotune sweeps, the bench harness and the trace phase breakdown all
// work on schedules with zero special-casing.

// SchedPrefix is the registry namespace of schedule-backed algorithms.
const SchedPrefix = "sched:"

// schedState is the persistent form of a schedule-backed algorithm: the
// verified schedule plus its executor's cached scratch buffers.
type schedState struct {
	*basic
	ex *sched.Exec
}

func (st *schedState) run(c comm.Comm, send, recv comm.Buffer, block int) error {
	return st.ex.Run(c, send, recv, block, st.basic.rec)
}

// Schedule exposes the compiled schedule for inspection (cmd/a2asched
// and tests); it is reachable through a type assertion:
//
//	s := a.(interface{ Schedule() *sched.Schedule }).Schedule()
func (st *schedState) Schedule() *sched.Schedule { return st.ex.Schedule() }

// schedCache shares one generated-and-verified schedule per (generator,
// world shape) across all ranks and operations of a process. Generators
// are deterministic and schedules are immutable after verification (an
// Exec keeps all mutable state — scratch buffers — per rank), so sharing
// is safe; without it, every rank of an SPMD program would compile and
// verify its own copy of the whole-world schedule, turning an O(p^2)
// construction into O(p^3) across ranks.
var schedCache = struct {
	sync.Mutex
	m map[string]*sched.Schedule
}{m: make(map[string]*sched.Schedule)}

// schedFor returns the verified schedule for a generator at c's world,
// compiling it on first use.
func schedFor(gen string, c comm.Comm) (*sched.Schedule, error) {
	key := fmt.Sprintf("%s|%d|%s", gen, c.Size(), topoKey(c.Topo()))
	schedCache.Lock()
	defer schedCache.Unlock()
	if s, ok := schedCache.m[key]; ok {
		return s, nil
	}
	s, err := sched.Generate(gen, c.Size(), c.Topo())
	if err != nil {
		return nil, fmt.Errorf("core: %s%s: %w", SchedPrefix, gen, err)
	}
	if err := sched.Verify(s); err != nil {
		return nil, fmt.Errorf("core: %s%s failed static verification: %w", SchedPrefix, gen, err)
	}
	schedCache.m[key] = s
	return s, nil
}

// topoKey fingerprints the part of the topology generators consume (the
// nodes x ppn grid).
func topoKey(m *topo.Mapping) string {
	if m == nil {
		return "flat"
	}
	return fmt.Sprintf("%dx%d", m.Nodes(), m.PPN())
}

func newSchedFactory(gen string) factory {
	return func(c comm.Comm, maxBlock int, _ Options) (Alltoaller, error) {
		s, err := schedFor(gen, c)
		if err != nil {
			return nil, err
		}
		st := &schedState{ex: sched.NewExec(s)}
		st.basic = newBasic(SchedPrefix+gen, c, maxBlock, st.run)
		return st, nil
	}
}

// SchedNames returns the registered schedule-backed algorithm names,
// sorted.
func SchedNames() []string {
	var out []string
	for _, n := range Names() {
		if strings.HasPrefix(n, SchedPrefix) {
			out = append(out, n)
		}
	}
	return out
}

func init() {
	for _, g := range sched.Generators() {
		registry[SchedPrefix+g] = newSchedFactory(g)
	}
}
