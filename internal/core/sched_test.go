package core

import (
	"bytes"
	"fmt"
	"testing"

	"alltoallx/internal/comm"
	"alltoallx/internal/netmodel"
	"alltoallx/internal/runtime"
	"alltoallx/internal/sched"
	"alltoallx/internal/sim"
	"alltoallx/internal/testutil"
	"alltoallx/internal/trace"
)

// TestSchedLiveCorrectness runs every schedule-backed algorithm on the
// live runtime across world shapes and block sizes, through the same
// fill/run-twice/verify body as the loop-coded algorithms.
func TestSchedLiveCorrectness(t *testing.T) {
	t.Parallel()
	for _, name := range SchedNames() {
		shapes := []struct{ nodes, ppn int }{{2, 4}, {3, 4}, {1, 5}}
		if name == "sched:hypercube" {
			shapes = []struct{ nodes, ppn int }{{2, 4}, {4, 4}, {1, 2}}
		}
		for _, shape := range shapes {
			for _, block := range []int{1, 4, 9000} {
				name, shape, block := name, shape, block
				t.Run(fmt.Sprintf("%s/n%d_ppn%d_b%d", name, shape.nodes, shape.ppn, block), func(t *testing.T) {
					t.Parallel()
					m := mapping(t, shape.nodes, shape.ppn)
					if err := runtime.Run(runtime.Config{Mapping: m}, liveBody(name, Options{}, block)); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}

// TestSchedSimulatedCorrectness runs every schedule-backed algorithm
// under the discrete-event simulator with real payloads.
func TestSchedSimulatedCorrectness(t *testing.T) {
	t.Parallel()
	model := netmodel.Dane()
	model.Node = tinyNode()
	for _, name := range SchedNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := sim.ClusterConfig{Model: model, Nodes: 2, PPN: 8, Seed: 42}
			if _, err := sim.RunCluster(cfg, liveBody(name, Options{}, 7)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSchedCrossSubstrateEquivalence proves sched:pairwise output is
// byte-identical to the loop-coded pairwise algorithm on both substrates:
// the schedule subsystem is a compilation of the same exchange, not a
// different collective.
func TestSchedCrossSubstrateEquivalence(t *testing.T) {
	t.Parallel()
	const block = 13
	body := func(collect [][]byte, algo string) func(c comm.Comm) error {
		return func(c comm.Comm) error {
			p, rank := c.Size(), c.Rank()
			a, err := New(algo, c, block, Options{})
			if err != nil {
				return err
			}
			send := comm.Alloc(p * block)
			recv := comm.Alloc(p * block)
			testutil.FillAlltoall(send, rank, p, block)
			if err := a.Alltoall(send, recv, block); err != nil {
				return err
			}
			collect[rank] = append([]byte(nil), recv.Bytes()...)
			return nil
		}
	}
	for _, substrate := range []string{"live", "sim"} {
		substrate := substrate
		t.Run(substrate, func(t *testing.T) {
			t.Parallel()
			m := mapping(t, 2, 6)
			p := m.Size()
			ref := make([][]byte, p)
			got := make([][]byte, p)
			run := func(collect [][]byte, algo string) error {
				if substrate == "live" {
					return runtime.Run(runtime.Config{Mapping: m}, body(collect, algo))
				}
				model := netmodel.Dane()
				model.Node = tinyNode()
				_, err := sim.RunCluster(sim.ClusterConfig{Model: model, Nodes: 2, PPN: 6, Seed: 7}, body(collect, algo))
				return err
			}
			if err := run(ref, "pairwise"); err != nil {
				t.Fatal(err)
			}
			if err := run(got, "sched:pairwise"); err != nil {
				t.Fatal(err)
			}
			for r := 0; r < p; r++ {
				if !bytes.Equal(ref[r], got[r]) {
					t.Fatalf("%s: rank %d recv differs between pairwise and sched:pairwise", substrate, r)
				}
			}
		})
	}
}

// TestSchedHandles drives a schedule-backed algorithm through the
// Start/Test/Wait machinery on the live runtime: the one-outstanding rule
// and handle completion must hold like any other algorithm.
func TestSchedHandles(t *testing.T) {
	t.Parallel()
	m := mapping(t, 2, 4)
	err := runtime.Run(runtime.Config{Mapping: m}, func(c comm.Comm) error {
		const block = 5
		p, rank := c.Size(), c.Rank()
		a, err := New("sched:ring", c, block, Options{})
		if err != nil {
			return err
		}
		send := comm.Alloc(p * block)
		recv := comm.Alloc(p * block)
		testutil.FillAlltoall(send, rank, p, block)
		h, err := a.Start(send, recv, block)
		if err != nil {
			return err
		}
		if _, err := a.Start(send, recv, block); err == nil {
			return fmt.Errorf("second Start while pending succeeded")
		}
		if err := h.Wait(); err != nil {
			return err
		}
		if done, err := h.Test(); !done || err != nil {
			return fmt.Errorf("Test after Wait = (%v, %v)", done, err)
		}
		if err := testutil.CheckAlltoall(recv, rank, p, block); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSchedPhases checks the trace breakdown: schedules with repack
// copies report PhaseRepack and PhaseTotal through the standard Phases
// path.
func TestSchedPhases(t *testing.T) {
	t.Parallel()
	model := netmodel.Dane()
	model.Node = tinyNode()
	snaps := make([]map[trace.Phase]float64, 16)
	_, err := sim.RunCluster(sim.ClusterConfig{Model: model, Nodes: 2, PPN: 8, Seed: 3}, func(c comm.Comm) error {
		const block = 64
		a, err := New("sched:ring", c, block, Options{})
		if err != nil {
			return err
		}
		send := comm.Virtual(c.Size() * block)
		recv := comm.Virtual(c.Size() * block)
		if err := a.Alltoall(send, recv, block); err != nil {
			return err
		}
		snaps[c.Rank()] = a.Phases()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	merged := trace.MaxMerge(snaps)
	if merged[trace.PhaseTotal] <= 0 {
		t.Errorf("PhaseTotal not recorded: %v", merged)
	}
	if merged[trace.PhaseRepack] <= 0 {
		t.Errorf("PhaseRepack not recorded (ring schedules repack every forwarded block): %v", merged)
	}
	if merged[trace.PhaseTotal] < merged[trace.PhaseRepack] {
		t.Errorf("total %g < repack %g", merged[trace.PhaseTotal], merged[trace.PhaseRepack])
	}
}

// TestSchedTunedDispatch: a dispatch spec with schedule-backed winners
// validates and dispatches like any other algorithm — the autotune loop
// can tune over generated schedules.
func TestSchedTunedDispatch(t *testing.T) {
	t.Parallel()
	spec := &Dispatch{Entries: []DispatchEntry{
		{MaxBlock: 16, Name: "sched:ring", Algo: "sched:ring"},
		{MaxBlock: 4096, Name: "bruck", Algo: "bruck"},
	}}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	m := mapping(t, 2, 4)
	err := runtime.Run(runtime.Config{Mapping: m}, func(c comm.Comm) error {
		const maxBlock = 64
		p, rank := c.Size(), c.Rank()
		a, err := New("tuned", c, maxBlock, Options{Table: spec})
		if err != nil {
			return err
		}
		send := comm.Alloc(p * maxBlock)
		recv := comm.Alloc(p * maxBlock)
		for _, block := range []int{8, 64} {
			testutil.FillAlltoall(send, rank, p, block)
			if err := a.Alltoall(send, recv, block); err != nil {
				return err
			}
			if err := testutil.CheckAlltoall(recv, rank, p, block); err != nil {
				return fmt.Errorf("block %d: %w", block, err)
			}
		}
		if got := a.(interface{ Picked() string }).Picked(); got != "bruck" {
			return fmt.Errorf("64 B picked %q, want bruck", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSchedVirtualRuns checks virtual (payload-free) buffers flow through
// schedule executors in the simulator — the paper-scale mode.
func TestSchedVirtualRuns(t *testing.T) {
	t.Parallel()
	model := netmodel.Dane()
	model.Node = tinyNode()
	for _, name := range SchedNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			_, err := sim.RunCluster(sim.ClusterConfig{Model: model, Nodes: 2, PPN: 8, Seed: 5}, func(c comm.Comm) error {
				const block = 256
				a, err := New(name, c, block, Options{})
				if err != nil {
					return err
				}
				send := comm.Virtual(c.Size() * block)
				recv := comm.Virtual(c.Size() * block)
				return a.Alltoall(send, recv, block)
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSchedExposesSchedule: the compiled schedule is inspectable through
// the Schedule() assertion and reports coherent stats.
func TestSchedExposesSchedule(t *testing.T) {
	t.Parallel()
	m := mapping(t, 2, 4)
	err := runtime.Run(runtime.Config{Mapping: m}, func(c comm.Comm) error {
		a, err := New("sched:torus", c, 4, Options{})
		if err != nil {
			return err
		}
		s := a.(interface{ Schedule() *sched.Schedule }).Schedule()
		if s.Ranks != c.Size() {
			return fmt.Errorf("schedule ranks %d, world %d", s.Ranks, c.Size())
		}
		// The topology is 2 nodes x 4 ppn: the torus generator must have
		// picked that grid up from the communicator.
		if s.Name != "torus2x4" {
			return fmt.Errorf("schedule name %q, want torus2x4 (from the world topology)", s.Name)
		}
		if st := s.Stats(); st.Messages == 0 || st.Rounds == 0 {
			return fmt.Errorf("empty stats %+v", st)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
