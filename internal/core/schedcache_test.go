package core

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"alltoallx/internal/comm"
	"alltoallx/internal/runtime"
	"alltoallx/internal/sched"
	"alltoallx/internal/topo"
)

// schedSeams instruments the compilation seams for one test. Tests that
// install it must not be parallel: the seams and the cache are package
// globals.
type schedSeams struct {
	generates, rankGenerates, worldVerifies atomic.Int64
}

func countSchedSeams(t *testing.T) *schedSeams {
	t.Helper()
	var c schedSeams
	og, ogr, ovw := schedGenerate, schedGenerateRank, schedVerifyWorldSliced
	schedGenerate = func(name string, p int, m *topo.Mapping) (*sched.Schedule, error) {
		c.generates.Add(1)
		return og(name, p, m)
	}
	schedGenerateRank = func(name string, p, rank int, m *topo.Mapping) (*sched.RankProgram, error) {
		c.rankGenerates.Add(1)
		return ogr(name, p, rank, m)
	}
	schedVerifyWorldSliced = func(name string, p int, m *topo.Mapping) error {
		c.worldVerifies.Add(1)
		return ovw(name, p, m)
	}
	t.Cleanup(func() { schedGenerate, schedGenerateRank, schedVerifyWorldSliced = og, ogr, ovw })
	return &c
}

// dropWorld removes every cache trace of one (gen, p, topo) world so a
// test starts from a cold, unpolluted state and leaves none behind.
func dropWorld(t *testing.T, gen string, p int, m *topo.Mapping) {
	t.Helper()
	clean := func() {
		wk := worldKey(gen, p, m)
		schedCache.delete("w|" + wk)
		schedCache.deleteNeg("n|" + wk)
		for r := 0; r < p; r++ {
			schedCache.delete(fmt.Sprintf("r|%s|%d", wk, r))
		}
		verifiedWorlds.Lock()
		delete(verifiedWorlds.m, wk)
		verifiedWorlds.Unlock()
	}
	clean()
	t.Cleanup(clean)
}

// TestSchedNegativeCacheRunsGeneratorOnce is the regression test for
// repeated doomed constructions: constructing sched:hypercube at a
// 6-rank world twice runs the generator exactly once — the second
// construction (all six ranks of it) is answered by the negative cache.
func TestSchedNegativeCacheRunsGeneratorOnce(t *testing.T) {
	c := countSchedSeams(t)
	dropWorld(t, "hypercube", 6, nil)

	construct := func() error {
		var firstErr error
		err := runtime.Run(runtime.Config{Ranks: 6}, func(cm comm.Comm) error {
			_, err := New("sched:hypercube", cm, 4, Options{})
			if err == nil {
				return fmt.Errorf("hypercube@6 constructed successfully")
			}
			if cm.Rank() == 0 {
				firstErr = err
			}
			return nil
		})
		if err != nil {
			return err
		}
		return firstErr
	}

	err := construct()
	if err == nil || !strings.Contains(err.Error(), "power-of-two") {
		t.Fatalf("first construction: %v", err)
	}
	if got := c.generates.Load(); got != 1 {
		t.Fatalf("first construction ran the generator %d times, want 1 (six ranks raced)", got)
	}
	if err := construct(); err == nil {
		t.Fatal("second construction succeeded")
	}
	if got := c.generates.Load(); got != 1 {
		t.Fatalf("second construction re-ran the generator (%d total runs)", got)
	}
	st := SchedCacheStats()
	if st.NegativeEntries == 0 || st.NegativeHits == 0 {
		t.Fatalf("stats = %+v, want negative entries and hits recorded", st)
	}
}

// TestSchedCacheStatsTransitions pins the counter transitions across the
// miss → hit → eviction → miss lifecycle of one world. Delta-based: the
// counters are process-lifetime.
func TestSchedCacheStatsTransitions(t *testing.T) {
	countSchedSeams(t)
	const gen, p = "pairwise", 11
	dropWorld(t, gen, p, nil)

	base := SchedCacheStats()
	if _, err := schedFor(gen, p, nil); err != nil {
		t.Fatal(err)
	}
	st := SchedCacheStats()
	if d := st.Misses - base.Misses; d != 1 {
		t.Fatalf("cold construction: %d misses, want 1", d)
	}
	if d := st.Hits - base.Hits; d != 0 {
		t.Fatalf("cold construction: %d hits, want 0", d)
	}

	if _, err := schedFor(gen, p, nil); err != nil {
		t.Fatal(err)
	}
	st2 := SchedCacheStats()
	if d := st2.Hits - st.Hits; d != 1 {
		t.Fatalf("warm construction: %d hits, want 1", d)
	}
	if d := st2.Misses - st.Misses; d != 0 {
		t.Fatalf("warm construction: %d misses, want 0", d)
	}

	// Shrink the limit to zero: everything must evict, counted.
	old := setSchedCacheLimit(0)
	defer setSchedCacheLimit(old)
	st3 := SchedCacheStats()
	if st3.Entries != 0 || st3.Bytes != 0 {
		t.Fatalf("after limit 0: %d entries, %d bytes retained", st3.Entries, st3.Bytes)
	}
	if d := st3.Evictions - st2.Evictions; d < 1 {
		t.Fatalf("eviction not counted (delta %d)", d)
	}
	setSchedCacheLimit(old)

	// Evicted world misses again and recompiles.
	if _, err := schedFor(gen, p, nil); err != nil {
		t.Fatal(err)
	}
	st4 := SchedCacheStats()
	if d := st4.Misses - st3.Misses; d != 1 {
		t.Fatalf("post-eviction construction: %d misses, want 1", d)
	}
}

// TestSchedConstructionSingleflight: goroutines racing to construct the
// same and different keys compile each key exactly once and observe
// byte-identical programs. Run with -race.
func TestSchedConstructionSingleflight(t *testing.T) {
	c := countSchedSeams(t)
	const gen, p = "ring", 13
	dropWorld(t, gen, p, nil)

	// Same whole-world key: one generator run shared by all.
	const racers = 24
	var wg sync.WaitGroup
	scheds := make([]*sched.Schedule, racers)
	errs := make([]error, racers)
	for i := 0; i < racers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			scheds[i], errs[i] = schedFor(gen, p, nil)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("racer %d: %v", i, err)
		}
	}
	if got := c.generates.Load(); got != 1 {
		t.Fatalf("whole-world generator ran %d times under contention, want 1", got)
	}
	for i := 1; i < racers; i++ {
		if scheds[i] != scheds[0] {
			t.Fatal("racers hold different schedule instances")
		}
	}

	// Different rank keys of one world through the sliced path: one
	// world verification, one rank compile per rank, byte-identical
	// across repeat constructions.
	dropWorld(t, gen, p, nil)
	rps := make([]*sched.RankProgram, 2*p)
	perrs := make([]error, 2*p)
	for i := 0; i < 2*p; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rps[i], perrs[i] = rankProgFor(gen, p, i%p, nil)
		}()
	}
	wg.Wait()
	for i, err := range perrs {
		if err != nil {
			t.Fatalf("rank racer %d: %v", i, err)
		}
	}
	// Encode after the join: racers for one rank share the cached
	// program instance, and Encode writes the receiver's format field.
	progs := make([][]byte, 2*p)
	for i, rp := range rps {
		var buf bytes.Buffer
		if err := rp.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		progs[i] = buf.Bytes()
	}
	if got := c.worldVerifies.Load(); got != 1 {
		t.Fatalf("streamed verification ran %d times, want 1", got)
	}
	if got := c.rankGenerates.Load(); got != int64(p) {
		t.Fatalf("rank generator ran %d times, want %d (once per rank)", got, p)
	}
	for i := 0; i < p; i++ {
		if !bytes.Equal(progs[i], progs[i+p]) {
			t.Fatalf("rank %d: racing constructions disagree on program bytes", i)
		}
	}
}

// TestSchedFetcherFallback pins the SchedFetcher contract: a hit skips
// all local compilation and verification, (nil, nil) falls through to
// local compilation, and an error is a negative-cached definitive
// rejection.
func TestSchedFetcherFallback(t *testing.T) {
	c := countSchedSeams(t)
	const gen, p = "torus", 9
	dropWorld(t, gen, p, nil)
	t.Cleanup(func() { SetSchedFetcher(nil) })

	// Hit: the service's program is used verbatim; no local generator or
	// world verification runs.
	var fetches atomic.Int64
	SetSchedFetcher(func(g string, ranks int, m *topo.Mapping, rank int) (*sched.RankProgram, error) {
		fetches.Add(1)
		return sched.GenerateRank(g, ranks, rank, m)
	})
	rp, err := rankProgFor(gen, p, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Rank != 2 || rp.Ranks != p {
		t.Fatalf("fetched program is rank %d of %d", rp.Rank, rp.Ranks)
	}
	if fetches.Load() != 1 || c.rankGenerates.Load() != 0 || c.worldVerifies.Load() != 0 {
		t.Fatalf("fetch hit ran local work: %d fetches, %d rank compiles, %d verifies",
			fetches.Load(), c.rankGenerates.Load(), c.worldVerifies.Load())
	}
	// Cached: the second construction does not even reach the fetcher.
	if _, err := rankProgFor(gen, p, 2, nil); err != nil {
		t.Fatal(err)
	}
	if fetches.Load() != 1 {
		t.Fatalf("warm construction re-fetched (%d fetches)", fetches.Load())
	}

	// Unavailable: (nil, nil) falls through to local compilation.
	dropWorld(t, gen, p, nil)
	SetSchedFetcher(func(string, int, *topo.Mapping, int) (*sched.RankProgram, error) {
		return nil, nil
	})
	if _, err := rankProgFor(gen, p, 3, nil); err != nil {
		t.Fatal(err)
	}
	if c.rankGenerates.Load() != 1 || c.worldVerifies.Load() != 1 {
		t.Fatalf("fallback did not compile locally: %d rank compiles, %d verifies",
			c.rankGenerates.Load(), c.worldVerifies.Load())
	}

	// Definitive rejection: negative-cached, fetcher consulted once.
	dropWorld(t, gen, p, nil)
	rejected := errors.New("service says no")
	var rejects atomic.Int64
	SetSchedFetcher(func(string, int, *topo.Mapping, int) (*sched.RankProgram, error) {
		rejects.Add(1)
		return nil, rejected
	})
	if _, err := rankProgFor(gen, p, 4, nil); !errors.Is(err, rejected) {
		t.Fatalf("want the service rejection, got %v", err)
	}
	if _, err := rankProgFor(gen, p, 5, nil); !errors.Is(err, rejected) {
		t.Fatalf("sibling rank: want the cached rejection, got %v", err)
	}
	if rejects.Load() != 1 {
		t.Fatalf("rejection consulted the fetcher %d times, want 1", rejects.Load())
	}
}

// TestSchedFetcherForcesSlicedPath: with a fetcher installed, even a
// small world constructs through the rank-sliced path (the service
// serves rank programs, not assembled schedules).
func TestSchedFetcherForcesSlicedPath(t *testing.T) {
	countSchedSeams(t)
	const gen, p = "direct", 7
	dropWorld(t, gen, p, nil)
	t.Cleanup(func() { SetSchedFetcher(nil) })
	SetSchedFetcher(func(g string, ranks int, m *topo.Mapping, rank int) (*sched.RankProgram, error) {
		return sched.GenerateRank(g, ranks, rank, m)
	})
	err := runtime.Run(runtime.Config{Ranks: p}, func(cm comm.Comm) error {
		a, err := New("sched:"+gen, cm, 4, Options{})
		if err != nil {
			return err
		}
		st := a.(*schedState)
		if st.Schedule() != nil {
			return fmt.Errorf("fetcher-backed construction materialized a whole-world schedule")
		}
		if rp := st.Program(); rp == nil || rp.Rank != cm.Rank() {
			return fmt.Errorf("fetcher-backed construction program = %+v", rp)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
