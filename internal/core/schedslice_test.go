package core

import (
	"fmt"
	"strings"
	"testing"

	"alltoallx/internal/comm"
	"alltoallx/internal/runtime"
	"alltoallx/internal/sched"
	"alltoallx/internal/testutil"
)

// slicedBody is liveBody through the forced rank-sliced construction
// path: each rank compiles only its own program, exactly as a
// larger-than-threshold world would.
func slicedBody(gen string, block int) func(c comm.Comm) error {
	return func(c comm.Comm) error {
		p, rank := c.Size(), c.Rank()
		a, err := newSchedState(gen, c, block, true)
		if err != nil {
			return err
		}
		st := a.(*schedState)
		if st.Schedule() != nil {
			return fmt.Errorf("sliced construction materialized a whole-world schedule")
		}
		if rp := st.Program(); rp == nil || rp.Rank != rank || rp.Ranks != p {
			return fmt.Errorf("sliced construction program = %+v, want rank %d of %d", rp, rank, p)
		}
		send := comm.Alloc(p * block)
		recv := comm.Alloc(p * block)
		testutil.FillAlltoall(send, rank, p, block)
		for iter := 0; iter < 2; iter++ {
			for i := range recv.Bytes() {
				recv.Bytes()[i] = 0xEE
			}
			if err := a.Alltoall(send, recv, block); err != nil {
				return fmt.Errorf("iter %d: %w", iter, err)
			}
			if err := testutil.CheckAlltoall(recv, rank, p, block); err != nil {
				return fmt.Errorf("iter %d: %w", iter, err)
			}
		}
		return nil
	}
}

// TestSchedSlicedPathCorrectness drives every generator through the
// rank-sliced construction path (forced below the threshold so it stays
// cheap) on the live runtime and checks every byte: the large-world path
// is byte-equivalent to the whole-world one.
func TestSchedSlicedPathCorrectness(t *testing.T) {
	t.Parallel()
	for _, gen := range sched.Generators() {
		shape := struct{ nodes, ppn int }{3, 4}
		if gen == "hypercube" {
			shape = struct{ nodes, ppn int }{2, 8}
		}
		gen := gen
		t.Run(gen, func(t *testing.T) {
			t.Parallel()
			m := mapping(t, shape.nodes, shape.ppn)
			if err := runtime.Run(runtime.Config{Mapping: m}, slicedBody(gen, 9)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSchedThresholdSelectsPath: at small worlds New takes the
// whole-world path (inspectable Schedule), and the threshold constant is
// in the range the issue demands.
func TestSchedThresholdSelectsPath(t *testing.T) {
	t.Parallel()
	if schedSliceRanks < 128 {
		t.Fatalf("schedSliceRanks = %d: whole-world verification should remain authoritative at least to the old 128-rank cap", schedSliceRanks)
	}
	m := mapping(t, 2, 4)
	err := runtime.Run(runtime.Config{Mapping: m}, func(c comm.Comm) error {
		a, err := New("sched:pairwise", c, 4, Options{})
		if err != nil {
			return err
		}
		if a.(*schedState).Schedule() == nil {
			return fmt.Errorf("small world did not keep the assembled (fully verified) schedule")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSchedCacheBounded is the regression test for the unbounded
// schedCache: retained bytes must never exceed the configured limit, no
// matter how many (generator, world shape) pairs a sweep compiles.
// Not parallel: it narrows the global cache limit.
func TestSchedCacheBounded(t *testing.T) {
	const limit = 1 << 20 // 1 MiB: a handful of small-world schedules
	old := setSchedCacheLimit(limit)
	defer setSchedCacheLimit(old)
	inserted := 0
	for _, p := range []int{4, 6, 8, 10, 12, 14, 16} {
		for _, gen := range []string{"sched:pairwise", "sched:ring", "sched:torus"} {
			gen := gen
			err := runtime.Run(runtime.Config{Ranks: p}, func(c comm.Comm) error {
				_, err := New(gen, c, 8, Options{})
				return err
			})
			if err != nil {
				t.Fatalf("%s p=%d: %v", gen, p, err)
			}
			inserted++
			if n, bytes := schedCacheStats(); bytes > limit {
				t.Fatalf("after %s p=%d: cache holds %d B in %d entries, limit %d", gen, p, bytes, n, limit)
			}
		}
	}
	n, _ := schedCacheStats()
	if n == 0 {
		t.Fatalf("cache empty: eviction should leave recent entries resident")
	}
	if n >= inserted {
		t.Fatalf("cache holds all %d compiled worlds under a %d B limit: nothing was evicted", n, limit)
	}
	// Shrinking the limit evicts immediately.
	setSchedCacheLimit(0)
	if n, bytes := schedCacheStats(); n != 0 || bytes != 0 {
		t.Fatalf("zero limit retains %d entries, %d B", n, bytes)
	}
}

// TestSchedWholeWorldEvictedOnceSliced: when a world switches to the
// sliced path, its cached assembled schedule is dropped — the per-process
// footprint of a sliced world is its slices, not O(p^2).
// Not parallel: it inspects global cache keys.
func TestSchedWholeWorldEvictedOnceSliced(t *testing.T) {
	const p = 6
	err := runtime.Run(runtime.Config{Ranks: p}, func(c comm.Comm) error {
		if _, err := New("sched:bruck", c, 8, Options{}); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	wkey := "w|" + worldKey("bruck", p, nil)
	if _, ok := schedCache.get(wkey); !ok {
		t.Fatalf("whole-world entry %q missing after full-path construction", wkey)
	}
	err = runtime.Run(runtime.Config{Ranks: p}, func(c comm.Comm) error {
		_, err := newSchedState("bruck", c, 8, true)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := schedCache.get(wkey); ok {
		t.Fatalf("whole-world entry %q retained after the world went sliced", wkey)
	}
	for r := 0; r < p; r++ {
		if _, ok := schedCache.get(fmt.Sprintf("r|%s|%d", worldKey("bruck", p, nil), r)); !ok {
			t.Errorf("rank %d program not cached after sliced construction", r)
		}
	}
}

// TestSchedSlicedRejectsBadWorld: the streaming world verification gates
// sliced construction the same way full verification gates the assembled
// path (hypercube at a non-power-of-two world must fail cleanly).
func TestSchedSlicedRejectsBadWorld(t *testing.T) {
	t.Parallel()
	err := runtime.Run(runtime.Config{Ranks: 6}, func(c comm.Comm) error {
		if _, err := newSchedState("hypercube", c, 8, true); err == nil {
			return fmt.Errorf("hypercube constructed at 6 ranks")
		} else if !strings.Contains(err.Error(), "power-of-two") {
			return fmt.Errorf("unexpected error: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestExecCopyErrorAttributable pins the satellite fix: a ChargeCopy
// failure at depth surfaces with the schedule name and round, like every
// sibling executor error path. errComm fails ChargeCopy only.
func TestExecCopyErrorAttributable(t *testing.T) {
	t.Parallel()
	err := runtime.Run(runtime.Config{Ranks: 1}, func(c comm.Comm) error {
		rp, err := sched.GenerateRank("pairwise", 1, 0, nil)
		if err != nil {
			return err
		}
		ex := sched.NewRankExec(rp)
		e := ex.Run(failCopyComm{Comm: c}, comm.Alloc(4), comm.Alloc(4), 4, nil)
		if e == nil {
			return fmt.Errorf("ChargeCopy failure swallowed")
		}
		if !strings.Contains(e.Error(), "pairwise") || !strings.Contains(e.Error(), "round 0") || !strings.Contains(e.Error(), "charge exploded") {
			return fmt.Errorf("copy error not attributable to schedule and round: %v", e)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// failCopyComm wraps a communicator so ChargeCopy always fails.
type failCopyComm struct{ comm.Comm }

func (f failCopyComm) ChargeCopy(bytes, blocks int) error {
	return fmt.Errorf("charge exploded")
}
