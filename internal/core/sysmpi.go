package core

import (
	"fmt"

	"alltoallx/internal/comm"
	"alltoallx/internal/trace"
)

// systemMPI emulates a vendor MPI_Alltoall: a three-tier size-thresholded
// selection mirroring Open MPI's tuned decision function — Bruck for small
// blocks, a linear nonblocking exchange for mid sizes, pairwise for large
// (Cray MPICH on Tuolomne instead uses an aggregating node-aware path and
// tuned overheads). The vendor overhead tuning (SysProfile.OverheadScale)
// is applied by the simulation harness, not here — this type only
// reproduces the algorithm selection.
type systemMPI struct {
	c        comm.Comm
	small    Alltoaller
	mid      Alltoaller
	large    Alltoaller
	smallMax int
	midMax   int
	maxBlock int
	st       OpState
	last     Alltoaller
}

func newSystemMPI(c comm.Comm, maxBlock int, o Options) (Alltoaller, error) {
	prof := o.Sys
	if prof.SmallAlgo == "" || prof.MidAlgo == "" || prof.LargeAlgo == "" {
		return nil, fmt.Errorf("core: system-mpi requires Options.Sys with Small/Mid/LargeAlgo (got %+v)", prof)
	}
	if prof.SmallMax < 0 || prof.MidMax < prof.SmallMax {
		return nil, fmt.Errorf("core: system-mpi thresholds out of order: small %d, mid %d", prof.SmallMax, prof.MidMax)
	}
	inner := Options{Inner: o.Inner, PPL: o.PPL, PPG: o.PPG, BatchWindow: o.BatchWindow, GatherKind: o.GatherKind}
	build := func(name string) (Alltoaller, error) {
		a, err := New(name, c, maxBlock, inner)
		if err != nil {
			return nil, fmt.Errorf("core: system-mpi path %q: %w", name, err)
		}
		return a, nil
	}
	small, err := build(prof.SmallAlgo)
	if err != nil {
		return nil, err
	}
	mid := small
	if prof.MidAlgo != prof.SmallAlgo {
		if mid, err = build(prof.MidAlgo); err != nil {
			return nil, err
		}
	}
	large := mid
	if prof.LargeAlgo != prof.MidAlgo {
		if large, err = build(prof.LargeAlgo); err != nil {
			return nil, err
		}
	}
	return &systemMPI{
		c: c, small: small, mid: mid, large: large,
		smallMax: prof.SmallMax, midMax: prof.MidMax, maxBlock: maxBlock,
	}, nil
}

func (s *systemMPI) Name() string { return "system-mpi" }

func (s *systemMPI) Phases() map[trace.Phase]float64 {
	if s.last == nil {
		return nil
	}
	return s.last.Phases()
}

// Start selects the size-thresholded path (eagerly — selection is local
// arithmetic) and launches its exchange off the critical path. The
// one-outstanding-handle rule is enforced at this level, so alternating
// block sizes cannot put two inner paths in flight at once.
func (s *systemMPI) Start(send, recv comm.Buffer, block int) (Handle, error) {
	if err := checkArgs(s.c, send, recv, block, s.maxBlock); err != nil {
		return nil, err
	}
	switch {
	case block <= s.smallMax:
		s.last = s.small
	case block <= s.midMax:
		s.last = s.mid
	default:
		s.last = s.large
	}
	inst := s.last
	return s.st.Start(s.c, func() error { return inst.Alltoall(send, recv, block) })
}

func (s *systemMPI) Alltoall(send, recv comm.Buffer, block int) error {
	h, err := s.Start(send, recv, block)
	if err != nil {
		return err
	}
	return h.Wait()
}
