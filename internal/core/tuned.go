package core

import (
	"errors"
	"fmt"
	"strings"

	"alltoallx/internal/comm"
	"alltoallx/internal/trace"
)

// Op names the collective operation a dispatch spec (or autotune table)
// was tuned for. The zero value means OpAlltoall, keeping pre-op-kind
// tables loadable.
type Op string

// Tunable operation kinds.
const (
	// OpAlltoall is the fixed-size all-to-all (Alltoaller / New).
	OpAlltoall Op = "alltoall"
	// OpAlltoallv is the variable-sized all-to-all (Alltoallver / NewV).
	OpAlltoallv Op = "alltoallv"
)

// Norm maps the zero value to OpAlltoall; any other value is returned
// unchanged (Validate rejects unknown kinds).
func (o Op) Norm() Op {
	if o == "" {
		return OpAlltoall
	}
	return o
}

// DispatchEntry is one size bucket of a Dispatch spec: blocks of at most
// MaxBlock bytes run Algo constructed with Opts. Name labels the entry in
// diagnostics (it defaults to Algo); autotune carries its candidate labels
// here so "multileader/4ppl" and "multileader/8ppl" stay distinguishable.
// For OpAlltoallv specs, MaxBlock is the mean payload per peer (total
// bytes sent by a rank divided by the rank count) — the v-dispatcher
// buckets each call's total payload against MaxBlock*p.
type DispatchEntry struct {
	MaxBlock int
	Name     string
	Algo     string
	Opts     Options
}

func (e DispatchEntry) label() string {
	if e.Name != "" {
		return e.Name
	}
	return e.Algo
}

// Dispatch is the algorithm-selection spec the "tuned" meta-algorithm is
// constructed from: an ascending sequence of size buckets, each naming the
// algorithm that won that size range. Tables built offline by
// internal/autotune convert to a Dispatch for run-time use; blocks larger
// than the last bucket use the last bucket (the autotuner's large-message
// winner).
type Dispatch struct {
	// Op is the operation the spec was tuned for (zero means OpAlltoall).
	// A spec only dispatches through the matching constructor: New for
	// OpAlltoall, NewV for OpAlltoallv.
	Op      Op
	Entries []DispatchEntry
}

// Validate checks that the spec is dispatchable: a known op kind, at
// least one entry, strictly ascending positive MaxBlock boundaries, and
// every Algo registered for the spec's op. Two registered names are still
// rejected: "tuned" itself (which would recurse) and "system-mpi" (its
// vendor OverheadScale is applied by the bench harness keyed on the
// top-level algorithm name, so a dispatched system-mpi bucket would run
// without the scaling that won it the ranking — the emulation is a
// baseline to beat, not a winner to dispatch).
func (d *Dispatch) Validate() error {
	if d == nil || len(d.Entries) == 0 {
		return errors.New("core: empty dispatch spec")
	}
	op := d.Op.Norm()
	if op != OpAlltoall && op != OpAlltoallv {
		return fmt.Errorf("core: dispatch spec has unknown op %q (want %q or %q)", d.Op, OpAlltoall, OpAlltoallv)
	}
	prev := 0
	for i, e := range d.Entries {
		if e.MaxBlock <= prev {
			return fmt.Errorf("core: dispatch entry %d: MaxBlock %d not ascending (previous %d)", i, e.MaxBlock, prev)
		}
		prev = e.MaxBlock
		if e.Algo == algoTuned {
			return fmt.Errorf("core: dispatch entry %d: %q cannot dispatch to itself", i, algoTuned)
		}
		if e.Algo == "system-mpi" {
			return fmt.Errorf("core: dispatch entry %d: %q cannot be a tabled winner (its vendor overhead scaling is applied per top-level algorithm and would be lost under dispatch)", i, e.Algo)
		}
		if op == OpAlltoallv {
			if _, ok := vRegistry[e.Algo]; !ok {
				return fmt.Errorf("core: dispatch entry %d: unknown %s algorithm %q (have %v)", i, OpAlltoallv, e.Algo, NamesV())
			}
		} else if _, ok := registry[e.Algo]; !ok {
			return fmt.Errorf("core: dispatch entry %d: unknown algorithm %q (have %v)", i, e.Algo, Names())
		}
	}
	return nil
}

// Fingerprint returns a short string identifying the spec's contents, for
// use in measurement cache keys. A nil spec fingerprints as "".
func (d *Dispatch) Fingerprint() string {
	if d == nil {
		return ""
	}
	parts := make([]string, 0, len(d.Entries)+1)
	parts = append(parts, string(d.Op.Norm()))
	for _, e := range d.Entries {
		parts = append(parts, fmt.Sprintf("%d:%s:%s:%d:%d:%d:%v:%+v",
			e.MaxBlock, e.Algo, e.Opts.Inner, e.Opts.PPL, e.Opts.PPG, e.Opts.BatchWindow, e.Opts.GatherKind, e.Opts.Sys))
	}
	return strings.Join(parts, ",")
}

const algoTuned = "tuned"

// tunedHysteresis keeps the previous bucket while the block stays within
// this fraction of the crossed boundary, so a workload alternating between
// two sizes that straddle a boundary does not rebuild or thrash between
// algorithms on every call.
const tunedHysteresis = 0.25

// tuned is the run-time dispatcher over a Dispatch spec. Winning
// algorithms are instantiated lazily, on the first call that lands in
// their bucket: instantiation is collective (it splits communicators), and
// every rank of an SPMD program sees the same block sequence, so all ranks
// construct the same instance on the same call.
type tuned struct {
	c        comm.Comm
	maxBlock int
	spec     *Dispatch
	insts    []Alltoaller // lazily constructed, indexed like spec.Entries
	st       OpState
	last     int // bucket used by the previous call, -1 before any

	// onl, when non-nil, runs the online refinement loop (Options.Online)
	// over a private copy of the entries; the shared spec stays read-only.
	onl *online[Alltoaller]
}

func newTuned(c comm.Comm, maxBlock int, o Options) (Alltoaller, error) {
	if o.Table == nil {
		return nil, fmt.Errorf("core: %q requires Options.Table (a dispatch spec; see internal/autotune)", algoTuned)
	}
	if err := o.Table.Validate(); err != nil {
		return nil, err
	}
	if op := o.Table.Op.Norm(); op != OpAlltoall {
		return nil, fmt.Errorf("core: dispatch spec tuned for %q cannot drive the fixed-size %q algorithm (use NewV)", op, algoTuned)
	}
	t := &tuned{
		c:        c,
		maxBlock: maxBlock,
		spec:     o.Table,
		insts:    make([]Alltoaller, len(o.Table.Entries)),
		last:     -1,
	}
	if o.Online != nil {
		onl, err := newOnline(c, *o.Online, OpAlltoall, o.Table, func(e DispatchEntry) (Alltoaller, error) {
			a, err := New(e.Algo, c, maxBlock, e.Opts)
			if err != nil {
				return nil, fmt.Errorf("core: tuned bucket <=%d B (%s): %w", e.MaxBlock, e.label(), err)
			}
			return a, nil
		})
		if err != nil {
			return nil, err
		}
		t.onl = onl
	}
	return t, nil
}

func (t *tuned) Name() string { return algoTuned }

// bucket returns the entry index that should serve a block.
func (t *tuned) bucket(block int) int {
	return dispatchBucket(t.spec.Entries, float64(block), t.last)
}

// dispatchBucket returns the entry index that should serve a size: the
// nominal bucket (smallest MaxBlock >= size, or the last entry), adjusted
// by hysteresis against the previously used bucket (last; -1 before any
// call). It is shared by the fixed-size dispatcher (size = block bytes)
// and the v-dispatcher (size = mean payload per peer, possibly
// fractional — hence the float).
func dispatchBucket(entries []DispatchEntry, size float64, last int) int {
	nominal := len(entries) - 1
	for i, e := range entries {
		if size <= float64(e.MaxBlock) {
			nominal = i
			break
		}
	}
	if last < 0 {
		return nominal
	}
	// Hysteresis only damps oscillation across one boundary: a size that
	// lands two or more buckets away is no borderline case and switches
	// unconditionally.
	switch nominal {
	case last + 1:
		// Growing past the upper boundary of the last bucket: stay until
		// the size clearly exceeds it.
		bound := float64(entries[last].MaxBlock)
		if size <= bound*(1+tunedHysteresis) {
			return last
		}
	case last - 1:
		// Shrinking below the lower boundary of the last bucket: stay
		// until the size is clearly inside the smaller bucket.
		bound := float64(entries[last-1].MaxBlock)
		if size > bound*(1-tunedHysteresis) {
			return last
		}
	}
	return nominal
}

// Start dispatches and launches the winning algorithm's exchange off the
// critical path. Bucket choice, lazy construction and the t.last update
// all run inside the started body (on the driver goroutine in the live
// runtime), keeping Start itself nonblocking even on a first-in-bucket
// call whose collective construction communicates; every rank sees the
// same block sequence, so all ranks construct the same instance on the
// same call regardless of which goroutine performs it. Picked and Phases
// reflect a started exchange only after its handle completes.
func (t *tuned) Start(send, recv comm.Buffer, block int) (Handle, error) {
	if err := checkArgs(t.c, send, recv, block, t.maxBlock); err != nil {
		return nil, err
	}
	return t.st.Start(t.c, func() error { return t.dispatch(send, recv, block) })
}

func (t *tuned) Alltoall(send, recv comm.Buffer, block int) error {
	h, err := t.Start(send, recv, block)
	if err != nil {
		return err
	}
	return h.Wait()
}

func (t *tuned) dispatch(send, recv comm.Buffer, block int) error {
	i := t.bucket(block)
	t.last = i
	if t.onl != nil {
		// Refinement mode: the loop picks incumbent or challenger, times
		// the exchange, and owns the per-bucket instance cache. Bucket
		// boundaries never change under promotion, so t.bucket stays
		// valid against the shared spec.
		return t.onl.run(i, func(a Alltoaller) error { return a.Alltoall(send, recv, block) })
	}
	if t.insts[i] == nil {
		e := t.spec.Entries[i]
		a, err := New(e.Algo, t.c, t.maxBlock, e.Opts)
		if err != nil {
			return fmt.Errorf("core: tuned bucket <=%d B (%s): %w", e.MaxBlock, e.label(), err)
		}
		t.insts[i] = a
	}
	return t.insts[i].Alltoall(send, recv, block)
}

// Phases reports the per-phase breakdown of the algorithm the last call
// dispatched to.
func (t *tuned) Phases() map[trace.Phase]float64 {
	if t.onl != nil {
		return t.onl.phases()
	}
	if t.last < 0 || t.insts[t.last] == nil {
		return nil
	}
	return t.insts[t.last].Phases()
}

// Picked returns the label of the entry the last Alltoall dispatched to
// ("" before any call). In refinement mode a trial call reports the
// challenger that actually ran. Tests and diagnostics use it to observe
// dispatch decisions; it is available through a type assertion on the
// Alltoaller:
//
//	p := a.(interface{ Picked() string })
func (t *tuned) Picked() string {
	if t.onl != nil {
		return t.onl.lastLabel
	}
	if t.last < 0 {
		return ""
	}
	return t.spec.Entries[t.last].label()
}

// OnlineStats snapshots the refinement loop (zero value when the
// dispatcher was built without Options.Online), available through a type
// assertion like Picked.
func (t *tuned) OnlineStats() OnlineStats {
	if t.onl == nil {
		return OnlineStats{}
	}
	return t.onl.stats()
}

// init registers tuned separately: like system-mpi, its factory calls New
// (at dispatch time), which would otherwise form an initialization cycle
// with the registry.
func init() { registry[algoTuned] = newTuned }
