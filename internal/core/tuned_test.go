package core

import (
	"fmt"
	"testing"

	"alltoallx/internal/comm"
	"alltoallx/internal/runtime"
	"alltoallx/internal/testutil"
)

// testDispatch is a three-bucket spec over cheap algorithms, with
// boundaries at 16 and 256 bytes.
func testDispatch() *Dispatch {
	return &Dispatch{Entries: []DispatchEntry{
		{MaxBlock: 16, Name: "small", Algo: "bruck"},
		{MaxBlock: 256, Name: "mid", Algo: "nonblocking"},
		{MaxBlock: 4096, Name: "large", Algo: "pairwise"},
	}}
}

func TestDispatchValidate(t *testing.T) {
	t.Parallel()
	if err := testDispatch().Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name string
		d    *Dispatch
	}{
		{"nil", nil},
		{"empty", &Dispatch{}},
		{"non-ascending", &Dispatch{Entries: []DispatchEntry{
			{MaxBlock: 256, Algo: "bruck"}, {MaxBlock: 16, Algo: "bruck"},
		}}},
		{"duplicate boundary", &Dispatch{Entries: []DispatchEntry{
			{MaxBlock: 16, Algo: "bruck"}, {MaxBlock: 16, Algo: "pairwise"},
		}}},
		{"nonpositive boundary", &Dispatch{Entries: []DispatchEntry{{MaxBlock: 0, Algo: "bruck"}}}},
		{"unknown algo", &Dispatch{Entries: []DispatchEntry{{MaxBlock: 16, Algo: "no-such"}}}},
		{"self-reference", &Dispatch{Entries: []DispatchEntry{{MaxBlock: 16, Algo: "tuned"}}}},
		// system-mpi's vendor overhead scaling is applied per top-level
		// algorithm by the bench harness; dispatched it would run unscaled.
		{"system-mpi winner", &Dispatch{Entries: []DispatchEntry{{MaxBlock: 16, Algo: "system-mpi"}}}},
	}
	for _, tc := range cases {
		if err := tc.d.Validate(); err == nil {
			t.Errorf("%s spec accepted", tc.name)
		}
	}
}

func TestDispatchFingerprint(t *testing.T) {
	t.Parallel()
	var nilSpec *Dispatch
	if nilSpec.Fingerprint() != "" {
		t.Error("nil fingerprint not empty")
	}
	a, b := testDispatch(), testDispatch()
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("equal specs fingerprint differently")
	}
	b.Entries[1].Opts.PPL = 8
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("different specs fingerprint equally")
	}
}

// TestTunedRequiresTable checks construction validation.
func TestTunedRequiresTable(t *testing.T) {
	t.Parallel()
	err := runtime.Run(runtime.Config{Mapping: mapping(t, 2, 8)}, func(c comm.Comm) error {
		if _, err := New("tuned", c, 64, Options{}); err == nil {
			return fmt.Errorf("tuned without a table accepted")
		}
		bad := &Dispatch{Entries: []DispatchEntry{{MaxBlock: 16, Algo: "no-such"}}}
		if _, err := New("tuned", c, 64, Options{Table: bad}); err == nil {
			return fmt.Errorf("tuned with invalid table accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTunedLiveCorrectness runs the dispatcher on the live runtime with
// blocks landing in every bucket (and past the last boundary): each
// exchange must produce byte-exact all-to-all results regardless of which
// algorithm serves it.
func TestTunedLiveCorrectness(t *testing.T) {
	t.Parallel()
	const maxBlock = 8192
	blocks := []int{4, 16, 64, 256, 1024, 8192} // 8192 exceeds the last bucket
	err := runtime.Run(runtime.Config{Mapping: mapping(t, 2, 8)}, func(c comm.Comm) error {
		p, rank := c.Size(), c.Rank()
		a, err := New("tuned", c, maxBlock, Options{Table: testDispatch()})
		if err != nil {
			return err
		}
		for _, block := range blocks {
			send := comm.Alloc(p * block)
			recv := comm.Alloc(p * block)
			testutil.FillAlltoall(send, rank, p, block)
			if err := a.Alltoall(send, recv, block); err != nil {
				return fmt.Errorf("block %d: %w", block, err)
			}
			if err := testutil.CheckAlltoall(recv, rank, p, block); err != nil {
				return fmt.Errorf("block %d: %w", block, err)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTunedHysteresisAdjacentOnly pins the bucket() edge the band math
// alone would get wrong: with boundaries close together, a block
// nominally two buckets below the current one must switch even though it
// falls inside the hysteresis band of the intermediate boundary.
func TestTunedHysteresisAdjacentOnly(t *testing.T) {
	t.Parallel()
	spec := &Dispatch{Entries: []DispatchEntry{
		{MaxBlock: 100, Algo: "bruck"},
		{MaxBlock: 120, Algo: "nonblocking"},
		{MaxBlock: 16384, Algo: "pairwise"},
	}}
	tu := &tuned{spec: spec, insts: make([]Alltoaller, 3), last: 2}
	// 95 B: nominal bucket 0, two below the last; 95 > 0.75*120 would keep
	// bucket 2 if hysteresis applied across the skipped boundary.
	if got := tu.bucket(95); got != 0 {
		t.Errorf("bucket(95) from last=2 = %d, want 0", got)
	}
	// 110 B: nominal bucket 1, adjacent below; stays in 2 (110 > 0.75*120).
	if got := tu.bucket(110); got != 2 {
		t.Errorf("bucket(110) from last=2 = %d, want 2", got)
	}
}

// TestDispatchBucketExactBoundaries pins dispatchBucket at the exact
// hysteresis edges, size == MaxBlock*(1±tunedHysteresis): the grow edge
// is inclusive (a size exactly 25% past the crossed boundary still stays),
// the shrink edge is exclusive (a size exactly 25% below it switches),
// and a two-bucket jump ignores both bands — for integer sizes as the
// fixed-size dispatcher passes them and fractional means as the
// v-dispatcher computes them.
func TestDispatchBucketExactBoundaries(t *testing.T) {
	t.Parallel()
	entries := []DispatchEntry{
		{MaxBlock: 100, Algo: "pairwise"},
		{MaxBlock: 200, Algo: "nonblocking"},
		{MaxBlock: 400, Algo: "bruck"},
	}
	cases := []struct {
		name string
		size float64
		last int
		want int
	}{
		// Grow edge: boundary 100, band top exactly 125.
		{"grow/exact-edge-stays", 100 * (1 + tunedHysteresis), 0, 0},
		{"grow/just-past-edge-switches", 100*(1+tunedHysteresis) + 1, 0, 1},
		{"grow/fixed-int-edge", float64(int(125)), 0, 0}, // the fixed-size caller's float64(block)
		// Shrink edge: boundary 100, band bottom exactly 75.
		{"shrink/exact-edge-switches", 100 * (1 - tunedHysteresis), 1, 0},
		{"shrink/just-above-edge-stays", 100*(1-tunedHysteresis) + 1, 1, 1},
		{"shrink/fixed-int-edge", float64(int(75)), 1, 0},
		// Unconditional two-bucket jumps, landing inside the intermediate
		// boundary's band on both sides.
		{"shrink/clearly-inside-switches", 125, 2, 1}, // nominal 1 from last=2, well below 0.75*200
		{"jump/up-two", 240, 0, 2},                    // nominal 2, within 25% of the 200 boundary: still jumps
		{"jump/down-two", 95, 2, 0},                   // nominal 0, inside the 100 boundary's band: still jumps
		// No history dispatches nominally, even exactly on a band edge.
		{"fresh/exact-band-top", 125, -1, 1},
		{"fresh/boundary-itself", 100, -1, 0},
		// Fractional means, exactly as tunedV computes them (sum/p).
		{"v/exact-grow-edge", 1000.0 / 8.0, 0, 0},      // 125.0
		{"v/fraction-past-edge", 1001.0 / 8.0, 0, 1},   // 125.125
		{"v/exact-shrink-edge", 600.0 / 8.0, 1, 0},     // 75.0
		{"v/fraction-above-edge", 601.0 / 8.0, 1, 1},   // 75.125
		{"v/last-bucket-overflow", 5000.0 / 8.0, 2, 2}, // beyond every boundary
	}
	for _, tc := range cases {
		if got := dispatchBucket(entries, tc.size, tc.last); got != tc.want {
			t.Errorf("%s: dispatchBucket(%v, last=%d) = %d, want %d", tc.name, tc.size, tc.last, got, tc.want)
		}
	}
}

// TestTunedVFractionalBoundary drives the v-dispatcher end-to-end at the
// exact fractional boundary: all-equal count matrices whose mean payload
// per peer lands exactly on MaxBlock*(1±h).
func TestTunedVFractionalBoundary(t *testing.T) {
	t.Parallel()
	spec := &Dispatch{Op: OpAlltoallv, Entries: []DispatchEntry{
		{MaxBlock: 100, Name: "lo", Algo: "pairwise"},
		{MaxBlock: 400, Name: "hi", Algo: "nonblocking"},
	}}
	err := runtime.Run(runtime.Config{Mapping: mapping(t, 1, 4)}, func(c comm.Comm) error {
		p := c.Size()
		a, err := NewV("tuned", c, 1<<20, Options{Table: spec})
		if err != nil {
			return err
		}
		run := func(per int) error {
			counts := make([]int, p)
			for i := range counts {
				counts[i] = per
			}
			displs, total := DisplsFromCounts(counts)
			send := comm.Alloc(total)
			recv := comm.Alloc(total)
			return a.Alltoallv(send, counts, displs, recv, counts, displs)
		}
		picked := a.(interface{ Picked() string })
		// Establish bucket 0, then sit exactly on the grow edge: mean =
		// 125.0 stays (inclusive), one more byte per peer switches.
		for _, step := range []struct {
			per  int
			want string
		}{{100, "lo"}, {125, "lo"}, {126, "hi"}, {75, "lo"}} {
			if err := run(step.per); err != nil {
				return fmt.Errorf("per=%d: %w", step.per, err)
			}
			if got := picked.Picked(); got != step.want {
				return fmt.Errorf("per=%d picked %q, want %q", step.per, got, step.want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTunedBucketSelection drives the white-box bucket logic: nominal
// picks, lazy instantiation, and hysteresis at boundaries.
func TestTunedBucketSelection(t *testing.T) {
	t.Parallel()
	err := runtime.Run(runtime.Config{Mapping: mapping(t, 1, 2)}, func(c comm.Comm) error {
		a, err := New("tuned", c, 8192, Options{Table: testDispatch()})
		if err != nil {
			return err
		}
		tu := a.(*tuned)
		if tu.Picked() != "" {
			return fmt.Errorf("Picked before any call = %q", tu.Picked())
		}
		run := func(block int) error {
			send := comm.Alloc(c.Size() * block)
			recv := comm.Alloc(c.Size() * block)
			return a.Alltoall(send, recv, block)
		}

		// Nominal dispatch + lazy instantiation: only touched buckets exist.
		if err := run(10); err != nil {
			return err
		}
		if tu.Picked() != "small" {
			return fmt.Errorf("10 B picked %q, want small", tu.Picked())
		}
		if tu.insts[0] == nil || tu.insts[1] != nil || tu.insts[2] != nil {
			return fmt.Errorf("lazy instantiation broken: %v", tu.insts)
		}
		// Hysteresis: 17 B nominally lands in "mid" but is within 25% of
		// the 16 B boundary, so the dispatcher stays in "small"...
		if err := run(17); err != nil {
			return err
		}
		if tu.Picked() != "small" {
			return fmt.Errorf("17 B after 10 B picked %q, want small (hysteresis)", tu.Picked())
		}
		// ...while 64 B is clearly beyond it and switches.
		if err := run(64); err != nil {
			return err
		}
		if tu.Picked() != "mid" {
			return fmt.Errorf("64 B picked %q, want mid", tu.Picked())
		}
		// Coming back down: 15 B is within 25% below the boundary, stays.
		if err := run(15); err != nil {
			return err
		}
		if tu.Picked() != "mid" {
			return fmt.Errorf("15 B after 64 B picked %q, want mid (hysteresis)", tu.Picked())
		}
		// 8 B is clearly inside "small" again.
		if err := run(8); err != nil {
			return err
		}
		if tu.Picked() != "small" {
			return fmt.Errorf("8 B picked %q, want small", tu.Picked())
		}
		// Hysteresis is adjacent-boundary only: from "large", a small
		// block two buckets down switches unconditionally, even if it sits
		// inside the hysteresis band of an intermediate boundary.
		if err := run(2048); err != nil {
			return err
		}
		if tu.Picked() != "large" {
			return fmt.Errorf("2048 B picked %q, want large", tu.Picked())
		}
		if err := run(13); err != nil { // nominal "small", 13 > 0.75*16
			return err
		}
		if tu.Picked() != "small" {
			return fmt.Errorf("13 B after 2048 B picked %q, want small (multi-bucket jump)", tu.Picked())
		}
		// A fresh dispatcher has no history: 17 B goes straight to "mid".
		b, err := New("tuned", c, 8192, Options{Table: testDispatch()})
		if err != nil {
			return err
		}
		send := comm.Alloc(c.Size() * 17)
		recv := comm.Alloc(c.Size() * 17)
		if err := b.Alltoall(send, recv, 17); err != nil {
			return err
		}
		if got := b.(*tuned).Picked(); got != "mid" {
			return fmt.Errorf("fresh dispatcher at 17 B picked %q, want mid", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
