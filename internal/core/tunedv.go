package core

import (
	"fmt"

	"alltoallx/internal/comm"
	"alltoallx/internal/trace"
)

// tunedV is the run-time alltoallv dispatcher over an OpAlltoallv
// Dispatch spec. It buckets each call on its total payload: the sum of
// sendCounts, compared against MaxBlock*p per entry (table boundaries are
// stored as mean bytes per peer, so the same size grids serve both ops).
//
// Unlike the fixed-size case, a rank's send total is a per-rank quantity:
// valid MPI_Alltoallv count matrices can give different ranks different
// totals, so local bucket picks could diverge — and both the dispatched
// algorithm and the lazy collective NewV construction must be identical
// on every rank. Each call therefore agrees on the bucket with a
// ceil(log2 p)-round dissemination max-allreduce of the local proposals
// (8 bytes per message) before dispatching: the skew-heaviest rank's
// bucket wins everywhere.
type tunedV struct {
	c        comm.Comm
	maxTotal int
	spec     *Dispatch
	insts    []Alltoallver // lazily constructed, indexed like spec.Entries
	st       OpState
	last     int // agreed bucket of the previous call, -1 before any

	abuf, bbuf comm.Buffer // 8-byte agreement staging (always real)

	// onl, when non-nil, runs the online refinement loop (Options.Online)
	// over a private copy of the entries; the shared spec stays read-only.
	onl *online[Alltoallver]
}

func newTunedV(c comm.Comm, maxTotal int, o Options) (Alltoallver, error) {
	if o.Table == nil {
		return nil, fmt.Errorf("core: %q requires Options.Table (a dispatch spec; see internal/autotune)", algoTuned)
	}
	if err := o.Table.Validate(); err != nil {
		return nil, err
	}
	if op := o.Table.Op.Norm(); op != OpAlltoallv {
		return nil, fmt.Errorf("core: dispatch spec tuned for %q cannot drive the %s %q algorithm (use New)", op, OpAlltoallv, algoTuned)
	}
	t := &tunedV{
		c:        c,
		maxTotal: maxTotal,
		spec:     o.Table,
		insts:    make([]Alltoallver, len(o.Table.Entries)),
		last:     -1,
		abuf:     comm.Alloc(8),
		bbuf:     comm.Alloc(8),
	}
	if o.Online != nil {
		onl, err := newOnline(c, *o.Online, OpAlltoallv, o.Table, func(e DispatchEntry) (Alltoallver, error) {
			a, err := NewV(e.Algo, c, maxTotal, e.Opts)
			if err != nil {
				return nil, fmt.Errorf("core: tuned bucket <=%d B/peer (%s): %w", e.MaxBlock, e.label(), err)
			}
			return a, nil
		})
		if err != nil {
			return nil, err
		}
		t.onl = onl
	}
	return t, nil
}

// tagVDispatch is the tag base of the per-call bucket agreement (one tag
// per dissemination round).
const tagVDispatch = 321

// agreeBucket max-allreduces the local bucket proposal across the
// communicator by dissemination: in round k every rank exchanges its
// running maximum with ranks +/- 2^k away. Max is idempotent, so the
// overlapping coverage of dissemination yields the exact global maximum
// in ceil(log2 p) rounds for any rank count.
//
//a2alint:collective
func (t *tunedV) agreeBucket(proposal int) (int, error) {
	n, r := t.c.Size(), t.c.Rank()
	cur := int64(proposal)
	round := 0
	for k := 1; k < n; k <<= 1 {
		putLeI64(t.abuf.Bytes(), cur)
		to := (r + k) % n
		from := (r - k%n + n) % n
		if err := t.c.Sendrecv(t.abuf, to, tagVDispatch+round, t.bbuf, from, tagVDispatch+round); err != nil {
			return 0, fmt.Errorf("core: tuned bucket agreement round %d: %w", round, err)
		}
		if v := leI64(t.bbuf.Bytes()); v > cur {
			cur = v
		}
		round++
	}
	return int(cur), nil
}

func (t *tunedV) Name() string { return algoTuned }

// Start launches dispatch and exchange off the critical path. The bucket
// agreement allreduce, lazy construction and the t.last update all run
// inside the started body (agreement is communication — exactly what a
// nonblocking Start must not do on the caller), so Picked and Phases
// reflect a started exchange only after its handle completes.
func (t *tunedV) Start(send comm.Buffer, sendCounts, sdispls []int,
	recv comm.Buffer, recvCounts, rdispls []int) (Handle, error) {
	if err := checkVCall(t.c, t.maxTotal, send, sendCounts, sdispls, recv, recvCounts, rdispls); err != nil {
		return nil, err
	}
	return t.st.Start(t.c, func() error {
		return t.dispatch(send, sendCounts, sdispls, recv, recvCounts, rdispls)
	})
}

func (t *tunedV) Alltoallv(send comm.Buffer, sendCounts, sdispls []int,
	recv comm.Buffer, recvCounts, rdispls []int) error {
	h, err := t.Start(send, sendCounts, sdispls, recv, recvCounts, rdispls)
	if err != nil {
		return err
	}
	return h.Wait()
}

func (t *tunedV) dispatch(send comm.Buffer, sendCounts, sdispls []int,
	recv comm.Buffer, recvCounts, rdispls []int) error {
	mean := float64(sumCounts(sendCounts)) / float64(t.c.Size())
	i, err := t.agreeBucket(dispatchBucket(t.spec.Entries, mean, t.last))
	if err != nil {
		return err
	}
	t.last = i
	if t.onl != nil {
		// Refinement mode: the bucket is already agreed collectively, so
		// the loop's deterministic call counting holds on every rank.
		return t.onl.run(i, func(a Alltoallver) error {
			return a.Alltoallv(send, sendCounts, sdispls, recv, recvCounts, rdispls)
		})
	}
	if t.insts[i] == nil {
		e := t.spec.Entries[i]
		a, err := NewV(e.Algo, t.c, t.maxTotal, e.Opts)
		if err != nil {
			return fmt.Errorf("core: tuned bucket <=%d B/peer (%s): %w", e.MaxBlock, e.label(), err)
		}
		t.insts[i] = a
	}
	return t.insts[i].Alltoallv(send, sendCounts, sdispls, recv, recvCounts, rdispls)
}

// Phases reports the per-phase breakdown of the algorithm the last call
// dispatched to.
func (t *tunedV) Phases() map[trace.Phase]float64 {
	if t.onl != nil {
		return t.onl.phases()
	}
	if t.last < 0 || t.insts[t.last] == nil {
		return nil
	}
	return t.insts[t.last].Phases()
}

// Picked returns the label of the entry the last Alltoallv dispatched to
// ("" before any call), observable through a type assertion like the
// fixed-size dispatcher's. In refinement mode a trial call reports the
// challenger that actually ran.
func (t *tunedV) Picked() string {
	if t.onl != nil {
		return t.onl.lastLabel
	}
	if t.last < 0 {
		return ""
	}
	return t.spec.Entries[t.last].label()
}

// OnlineStats snapshots the refinement loop (zero value when the
// dispatcher was built without Options.Online), available through a type
// assertion like Picked.
func (t *tunedV) OnlineStats() OnlineStats {
	if t.onl == nil {
		return OnlineStats{}
	}
	return t.onl.stats()
}
