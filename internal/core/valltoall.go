package core

import (
	"encoding/binary"
	"fmt"

	"alltoallx/internal/comm"
	"alltoallx/internal/trace"
)

// Tag bases for the leader-aggregating alltoallv phases, distinct from the
// fixed-size bases so a program interleaving both operations on one
// communicator can never cross-match.
const (
	tagVCounts  = 211
	tagVGather  = 221
	tagVScatter = 311
)

// vLeadered applies the paper's aggregation strategy (Section 3, extended
// to variable-sized exchanges per its Section 5 future work) to
// MPI_Alltoallv. Ranks are partitioned into groups of q consecutive local
// ranks; member 0 of each group is its leader. One exchange runs in three
// stages:
//
//  1. Gather with per-peer count exchange: every member ships its
//     sendCounts/recvCounts vectors and its packed payload to the leader,
//     so the leader knows the exact size of every variable block it
//     aggregates.
//  2. Leader exchange: leaders run an inter-node alltoallv of the
//     aggregated payloads (counts derived from the gathered vectors — no
//     extra count round trip between leaders is needed).
//  3. Scatter: each leader repacks arrivals into per-member,
//     source-rank-ordered segments and returns each member its bytes,
//     which the member spreads to its recv displacements.
//
// With q = ppn (one group per node) this is the node-aware alltoallv:
// all data between a node pair travels in a single aggregated message.
// With q < ppn (several groups per node, q = Options.PPG) it is the
// locality-aware variant: aggregation happens among nearby ranks, trading
// more inter-group messages for cheaper local gathers.
type vLeadered struct {
	name string
	c    comm.Comm
	info worldInfo

	q       int // group size (processes per leader)
	nGroups int // groups per node
	nLead   int // total groups = nGroups * nnodes
	myGroup int // my group's global index
	myJ     int // my index within the group; 0 = leader

	local   comm.Comm // my group, leader first
	leaders comm.Comm // all leaders (nil on non-leaders)

	inner    Inner
	maxTotal int
	rec      *trace.Recorder
	st       OpState

	cntSend comm.Buffer // my 2p counts, encoded (always real: control data)
	cntRecv comm.Buffer // leader: q*2p gathered counts (always real)
	packBuf comm.Buffer // member staging: maxTotal
	bufA    comm.Buffer // leader staging: q*maxTotal
	bufB    comm.Buffer // leader staging: q*maxTotal
}

func newVLeadered(c comm.Comm, maxTotal int, o Options, whole bool) (Alltoallver, error) {
	info, err := getWorldInfo(c)
	if err != nil {
		return nil, err
	}
	name, opt := "locality-aware", "PPG"
	q := o.PPG
	if whole {
		name, opt = "node-aware", "PPN"
		q = info.ppn
	}
	if err := checkDivides(opt, q, info); err != nil {
		return nil, err
	}
	if err := checkInnerV(o.Inner); err != nil {
		return nil, err
	}
	v := &vLeadered{
		name: name, c: c, info: info,
		q: q, nGroups: info.ppn / q, nLead: (info.ppn / q) * info.nnodes,
		inner: o.Inner, maxTotal: maxTotal,
		rec: trace.NewRecorder(c.Now),
	}
	v.myGroup = info.myNode*v.nGroups + info.myLocal/q
	v.myJ = info.myLocal % q

	// local_comm: my group, ordered so the leader is rank 0.
	v.local, err = c.Split(v.myGroup, v.myJ)
	if err != nil {
		return nil, fmt.Errorf("core: %s alltoallv local split: %w", name, err)
	}
	// leaders_comm: the leader of every group, ordered by world rank, so
	// group d's leader sits at position d.
	color := -1
	if v.myJ == 0 {
		color = 0
	}
	v.leaders, err = c.Split(color, c.Rank())
	if err != nil {
		return nil, fmt.Errorf("core: %s alltoallv leader split: %w", name, err)
	}
	// Count vectors are control data the algorithm branches on, so they
	// are always real, even when the payload is virtual (simulation).
	p := info.p
	v.cntSend = comm.Alloc(2 * p * 8)
	if v.myJ == 0 {
		v.cntRecv = comm.Alloc(v.q * 2 * p * 8)
	}
	return v, nil
}

func (v *vLeadered) Name() string { return v.name }

func (v *vLeadered) Phases() map[trace.Phase]float64 { return v.rec.Snapshot() }

// groupWorld returns the world rank of member j of group d. Groups tile
// the rank space contiguously (q consecutive local ranks each), so this
// is simply d*q + j.
func (v *vLeadered) groupWorld(d, j int) int { return d*v.q + j }

func (v *vLeadered) Start(send comm.Buffer, sendCounts, sdispls []int,
	recv comm.Buffer, recvCounts, rdispls []int) (Handle, error) {
	if err := checkVCall(v.c, v.maxTotal, send, sendCounts, sdispls, recv, recvCounts, rdispls); err != nil {
		return nil, err
	}
	return v.st.Start(v.c, func() error {
		return v.exchange(send, sendCounts, sdispls, recv, recvCounts, rdispls)
	})
}

func (v *vLeadered) Alltoallv(send comm.Buffer, sendCounts, sdispls []int,
	recv comm.Buffer, recvCounts, rdispls []int) error {
	h, err := v.Start(send, sendCounts, sdispls, recv, recvCounts, rdispls)
	if err != nil {
		return err
	}
	return h.Wait()
}

func (v *vLeadered) exchange(send comm.Buffer, sendCounts, sdispls []int,
	recv comm.Buffer, recvCounts, rdispls []int) error {
	v.rec.Reset()
	stopTotal := v.rec.Time(trace.PhaseTotal)
	defer stopTotal()

	p := v.info.p
	// Stage 0: encode my count vectors and gather them to the leader — the
	// per-peer count exchange that makes variable-block aggregation
	// possible.
	stop := v.rec.Time(trace.PhaseGather)
	encodeCounts(v.cntSend.Bytes(), sendCounts, recvCounts)
	err := gatherToLeader(v.local, v.cntSend, v.cntRecv, tagVCounts)
	stop()
	if err != nil {
		return fmt.Errorf("core: %s alltoallv count gather: %w", v.name, err)
	}

	if v.myJ != 0 {
		return v.memberExchange(send, sendCounts, sdispls, recv, recvCounts, rdispls)
	}
	return v.leaderExchange(send, sendCounts, sdispls, recv, recvCounts, rdispls, p)
}

// memberExchange is the non-leader hot path: pack, ship to the leader,
// receive the packed result, unpack.
func (v *vLeadered) memberExchange(send comm.Buffer, sendCounts, sdispls []int,
	recv comm.Buffer, recvCounts, rdispls []int) error {
	packBuf := ensureStage(&v.packBuf, send, v.maxTotal)

	stop := v.rec.Time(trace.PhaseRepack)
	sendTotal, err := packByCounts(v.c, packBuf, send, sendCounts, sdispls)
	stop()
	if err != nil {
		return err
	}

	stop = v.rec.Time(trace.PhaseGather)
	err = v.local.Send(packBuf.Slice(0, sendTotal), 0, tagVGather)
	stop()
	if err != nil {
		return fmt.Errorf("core: %s alltoallv data gather: %w", v.name, err)
	}

	recvTotal := sumCounts(recvCounts)
	stop = v.rec.Time(trace.PhaseScatter)
	err = v.local.Recv(packBuf.Slice(0, recvTotal), 0, tagVScatter)
	stop()
	if err != nil {
		return fmt.Errorf("core: %s alltoallv scatter: %w", v.name, err)
	}

	stop = v.rec.Time(trace.PhaseRepack)
	err = unpackByCounts(v.c, recv, recvCounts, rdispls, packBuf)
	stop()
	return err
}

// leaderExchange is the leader hot path: collect members' payloads,
// aggregate per destination group, exchange among leaders, redistribute.
func (v *vLeadered) leaderExchange(send comm.Buffer, sendCounts, sdispls []int,
	recv comm.Buffer, recvCounts, rdispls []int, p int) error {
	q := v.q
	bufA := ensureStage(&v.bufA, send, q*v.maxTotal)
	bufB := ensureStage(&v.bufB, send, q*v.maxTotal)

	// Decode the gathered count matrix: scs[m][d] bytes flow from member m
	// of my group to world rank d; rcs[m][s] bytes arrive at member m from
	// world rank s.
	scs, rcs := decodeCounts(v.cntRecv.Bytes(), q, p)
	memberSendTotal := make([]int, q)
	memberRecvTotal := make([]int, q)
	for m := 0; m < q; m++ {
		memberSendTotal[m] = sumCounts(scs[m])
		memberRecvTotal[m] = sumCounts(rcs[m])
	}
	memberOff, groupSendTotal := DisplsFromCounts(memberSendTotal)

	// Stage 1b: gather members' packed payloads. Sizes are known from the
	// count gather, so each receive is posted with its exact length.
	stop := v.rec.Time(trace.PhaseGather)
	reqs := make([]comm.Request, 0, q-1)
	for m := 1; m < q; m++ {
		rq, err := v.local.Irecv(bufA.Slice(memberOff[m], memberSendTotal[m]), m, tagVGather)
		if err != nil {
			return err
		}
		reqs = append(reqs, rq)
	}
	err := v.local.WaitAll(reqs)
	stop()
	if err != nil {
		return fmt.Errorf("core: %s alltoallv data gather: %w", v.name, err)
	}
	// My own contribution packs straight into my slot (member 0).
	stop = v.rec.Time(trace.PhaseRepack)
	if _, err := packByCounts(v.c, bufA.Slice(memberOff[0], v.maxTotal), send, sendCounts, sdispls); err != nil {
		return err
	}

	// Repack member-major bufA into destination-group-major bufB: for each
	// destination group d, members' blocks for d's members, member-major.
	// The per-member read cursors advance monotonically because packed
	// payloads are already in world-destination order.
	cursor := append([]int(nil), memberOff...)
	lsc := make([]int, v.nLead) // aggregated bytes to each leader
	woff := 0
	blocks := 0
	for d := 0; d < v.nLead; d++ {
		start := woff
		for m := 0; m < q; m++ {
			for dj := 0; dj < q; dj++ {
				n := scs[m][v.groupWorld(d, dj)]
				if _, err := comm.CopyData(bufB.Slice(woff, n), bufA.Slice(cursor[m], n)); err != nil {
					return err
				}
				cursor[m] += n
				woff += n
				blocks++
			}
		}
		lsc[d] = woff - start
	}
	err = v.c.ChargeCopy(groupSendTotal+woff, q*p+blocks)
	stop()
	if err != nil {
		return err
	}
	lsd, _ := DisplsFromCounts(lsc)

	// Receive counts per source group, derived from members' recvCounts:
	// bytes from group d = sum over its members i and my members m of
	// rcs[m][world(d, i)].
	lrc := make([]int, v.nLead)
	for d := 0; d < v.nLead; d++ {
		for i := 0; i < q; i++ {
			s := v.groupWorld(d, i)
			for m := 0; m < q; m++ {
				lrc[d] += rcs[m][s]
			}
		}
	}
	lrd, _ := DisplsFromCounts(lrc)

	// Stage 2: aggregated alltoallv among leaders.
	stop = v.rec.Time(trace.PhaseInter)
	err = runInnerV(v.leaders, v.inner, bufB, lsc, lsd, bufA, lrc, lrd)
	stop()
	if err != nil {
		return fmt.Errorf("core: %s alltoallv leader exchange: %w", v.name, err)
	}

	// Repack arrivals into per-member segments ordered by source world
	// rank. An arrival from group d is laid out [src member i][my member
	// m], and iterating (d, i) walks world ranks 0..p-1 in order, so a
	// single sequential pass over bufA lands every member's bytes in
	// source-rank order.
	stop = v.rec.Time(trace.PhaseRepack)
	mOff, _ := DisplsFromCounts(memberRecvTotal)
	wcur := append([]int(nil), mOff...)
	roff := 0
	blocks = 0
	for d := 0; d < v.nLead; d++ {
		for i := 0; i < q; i++ {
			s := v.groupWorld(d, i)
			for m := 0; m < q; m++ {
				n := rcs[m][s]
				if _, err := comm.CopyData(bufB.Slice(wcur[m], n), bufA.Slice(roff, n)); err != nil {
					return err
				}
				wcur[m] += n
				roff += n
				blocks++
			}
		}
	}
	err = v.c.ChargeCopy(roff, blocks)
	stop()
	if err != nil {
		return err
	}

	// Stage 3: scatter members' segments; unpack my own.
	stop = v.rec.Time(trace.PhaseScatter)
	reqs = reqs[:0]
	for m := 1; m < q; m++ {
		rq, err := v.local.Isend(bufB.Slice(mOff[m], memberRecvTotal[m]), m, tagVScatter)
		if err != nil {
			return err
		}
		reqs = append(reqs, rq)
	}
	err = v.local.WaitAll(reqs)
	stop()
	if err != nil {
		return fmt.Errorf("core: %s alltoallv scatter: %w", v.name, err)
	}
	stop = v.rec.Time(trace.PhaseRepack)
	err = unpackByCounts(v.c, recv, recvCounts, rdispls, bufB.Slice(mOff[0], memberRecvTotal[0]))
	stop()
	return err
}

// packByCounts copies the per-peer segments of src (at displs) into dst
// contiguously in peer order, returning the packed length.
func packByCounts(c comm.Comm, dst, src comm.Buffer, counts, displs []int) (int, error) {
	off := 0
	for i, n := range counts {
		if _, err := comm.CopyData(dst.Slice(off, n), src.Slice(displs[i], n)); err != nil {
			return 0, err
		}
		off += n
	}
	return off, c.ChargeCopy(off, len(counts))
}

// unpackByCounts spreads a contiguous peer-ordered payload back to the
// per-peer displacements of dst.
func unpackByCounts(c comm.Comm, dst comm.Buffer, counts, displs []int, src comm.Buffer) error {
	off := 0
	for i, n := range counts {
		if _, err := comm.CopyData(dst.Slice(displs[i], n), src.Slice(off, n)); err != nil {
			return err
		}
		off += n
	}
	return c.ChargeCopy(off, len(counts))
}

// gatherToLeader gathers each member's equal-size buffer to local rank 0
// (recv significant only there). A one-rank group degenerates to a copy.
func gatherToLeader(local comm.Comm, send, recv comm.Buffer, tag int) error {
	if local.Size() == 1 {
		return local.Memcpy(recv.Slice(0, send.Len()), send)
	}
	if local.Rank() != 0 {
		return local.Send(send, 0, tag)
	}
	block := send.Len()
	reqs := make([]comm.Request, 0, local.Size()-1)
	for m := 1; m < local.Size(); m++ {
		rq, err := local.Irecv(recv.Slice(m*block, block), m, tag)
		if err != nil {
			return err
		}
		reqs = append(reqs, rq)
	}
	if err := local.Memcpy(recv.Slice(0, block), send); err != nil {
		return err
	}
	return local.WaitAll(reqs)
}

// encodeCounts serializes sendCounts then recvCounts as little-endian
// int64s into b.
func encodeCounts(b []byte, sendCounts, recvCounts []int) {
	p := len(sendCounts)
	for i, v := range sendCounts {
		putLeI64(b[i*8:], int64(v))
	}
	for i, v := range recvCounts {
		putLeI64(b[(p+i)*8:], int64(v))
	}
}

// decodeCounts splits a gathered q-member count buffer back into per-
// member sendCounts and recvCounts vectors.
func decodeCounts(b []byte, q, p int) (scs, rcs [][]int) {
	scs = make([][]int, q)
	rcs = make([][]int, q)
	for m := 0; m < q; m++ {
		scs[m] = make([]int, p)
		rcs[m] = make([]int, p)
		base := m * 2 * p * 8
		for i := 0; i < p; i++ {
			scs[m][i] = int(leI64(b[base+i*8:]))
			rcs[m][i] = int(leI64(b[base+(p+i)*8:]))
		}
	}
	return scs, rcs
}

func putLeI64(b []byte, v int64) { binary.LittleEndian.PutUint64(b, uint64(v)) }

func leI64(b []byte) int64 { return int64(binary.LittleEndian.Uint64(b)) }
