package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"alltoallx/internal/comm"
	"alltoallx/internal/netmodel"
	"alltoallx/internal/runtime"
	"alltoallx/internal/sim"
	"alltoallx/internal/testutil"
	"alltoallx/internal/topo"
)

// vAlgos are the persistent alltoallv algorithms under test (tuned is
// exercised separately with an explicit dispatch spec).
var vAlgos = []string{"pairwise", "nonblocking", "node-aware", "locality-aware"}

// countsFor evaluates a p x p count matrix row/column for one rank.
func countsFor(p, r int, count func(src, dst int) int) (sendCounts, recvCounts []int) {
	sendCounts = make([]int, p)
	recvCounts = make([]int, p)
	for i := 0; i < p; i++ {
		sendCounts[i] = count(r, i)
		recvCounts[i] = count(i, r)
	}
	return sendCounts, recvCounts
}

// vBody builds the named persistent alltoallv, runs the (count-driven)
// pattern exchange twice, and verifies every received segment. It is the
// SPMD body shared by the live and simulated correctness tests.
func vBody(algo string, opts Options, count func(src, dst int) int, maxTotal int) func(c comm.Comm) error {
	return func(c comm.Comm) error {
		p, r := c.Size(), c.Rank()
		sendCounts, recvCounts := countsFor(p, r, count)
		sdispls, sTotal := DisplsFromCounts(sendCounts)
		rdispls, rTotal := DisplsFromCounts(recvCounts)
		// maxTotal is collective: every rank must pass the same value, so
		// derive the global maximum from the count matrix (in a local —
		// the returned closure is shared by every rank goroutine).
		mt := maxTotal
		if mt == 0 {
			mt = globalMaxTotal(p, count)
		}
		a, err := NewV(algo, c, mt, opts)
		if err != nil {
			return err
		}
		send := comm.Alloc(sTotal)
		recv := comm.Alloc(rTotal)
		for i := 0; i < p; i++ {
			testutil.FillBlock(send.Slice(sdispls[i], sendCounts[i]), r, i)
		}
		for iter := 0; iter < 2; iter++ {
			for i := range recv.Bytes() {
				recv.Bytes()[i] = 0xEE
			}
			if err := a.Alltoallv(send, sendCounts, sdispls, recv, recvCounts, rdispls); err != nil {
				return fmt.Errorf("iter %d: %w", iter, err)
			}
			for i := 0; i < p; i++ {
				if err := testutil.CheckBlock(recv.Slice(rdispls[i], recvCounts[i]), i, r); err != nil {
					return fmt.Errorf("iter %d, from %d: %w", iter, i, err)
				}
			}
		}
		return nil
	}
}

// globalMaxTotal computes the largest per-rank send or receive total of a
// count matrix — the collective maxTotal every rank passes to NewV.
func globalMaxTotal(p int, count func(src, dst int) int) int {
	max := 1
	for r := 0; r < p; r++ {
		sc, rc := countsFor(p, r, count)
		if v := sumCounts(sc); v > max {
			max = v
		}
		if v := sumCounts(rc); v > max {
			max = v
		}
	}
	return max
}

// skewedCount is the standard varied-count pattern: includes zero-byte
// pairs and rank 1 sending nothing at all.
func skewedCount(src, dst int) int {
	if src == 1 {
		return 0 // rank 1 sends nothing to anyone
	}
	return (src+dst)%7 + (src*dst)%3
}

func TestNewVLive(t *testing.T) {
	t.Parallel()
	m, err := topo.NewMapping(tinyNode(), 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range vAlgos {
		for _, inner := range []Inner{InnerPairwise, InnerNonblocking} {
			algo, inner := algo, inner
			t.Run(fmt.Sprintf("%s_%s", algo, inner), func(t *testing.T) {
				t.Parallel()
				err := runtime.Run(runtime.Config{Mapping: m},
					vBody(algo, Options{Inner: inner, PPG: 4}, skewedCount, 0))
				if err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestNewVSimulated runs the same correctness bodies under the
// discrete-event simulator with real payloads: the acceptance criterion
// that bytes land per MPI_Alltoallv semantics on both substrates.
func TestNewVSimulated(t *testing.T) {
	t.Parallel()
	model := netmodel.Dane()
	model.Node = tinyNode()
	for _, algo := range vAlgos {
		algo := algo
		t.Run(algo, func(t *testing.T) {
			t.Parallel()
			cfg := sim.ClusterConfig{Model: model, Nodes: 3, PPN: 8, Seed: 7}
			_, err := sim.RunCluster(cfg, vBody(algo, Options{PPG: 2}, skewedCount, 0))
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestNewVZeroEverything: every rank sends zero bytes to every peer; the
// exchange must still complete (leaders exchange empty aggregates).
func TestNewVZeroEverything(t *testing.T) {
	t.Parallel()
	m, err := topo.NewMapping(tinyNode(), 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range vAlgos {
		algo := algo
		t.Run(algo, func(t *testing.T) {
			t.Parallel()
			err := runtime.Run(runtime.Config{Mapping: m},
				vBody(algo, Options{PPG: 4}, func(int, int) int { return 0 }, 4))
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestNewVPermutedDisplacements exercises non-contiguous, permuted
// layouts: segments sit in reverse peer order with gaps between them, so
// any algorithm that assumes contiguous rank-ordered displacements
// corrupts the pattern.
func TestNewVPermutedDisplacements(t *testing.T) {
	t.Parallel()
	m, err := topo.NewMapping(tinyNode(), 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range vAlgos {
		algo := algo
		t.Run(algo, func(t *testing.T) {
			t.Parallel()
			err := runtime.Run(runtime.Config{Mapping: m}, func(c comm.Comm) error {
				p, r := c.Size(), c.Rank()
				sendCounts, recvCounts := countsFor(p, r, skewedCount)
				// Slot layout: peer i's segment lives at slot p-1-i, each
				// slot padded by 3 gap bytes.
				const gap = 3
				slot := 0
				for i := 0; i < p; i++ {
					if sendCounts[i] > slot {
						slot = sendCounts[i]
					}
					if recvCounts[i] > slot {
						slot = recvCounts[i]
					}
				}
				slot += gap
				sdispls := make([]int, p)
				rdispls := make([]int, p)
				for i := 0; i < p; i++ {
					sdispls[i] = (p - 1 - i) * slot
					rdispls[i] = (p - 1 - i) * slot
				}
				send := comm.Alloc(p * slot)
				recv := comm.Alloc(p * slot)
				for i := 0; i < p; i++ {
					testutil.FillBlock(send.Slice(sdispls[i], sendCounts[i]), r, i)
				}
				a, err := NewV(algo, c, globalMaxTotal(p, skewedCount), Options{PPG: 4})
				if err != nil {
					return err
				}
				if err := a.Alltoallv(send, sendCounts, sdispls, recv, recvCounts, rdispls); err != nil {
					return err
				}
				for i := 0; i < p; i++ {
					if err := testutil.CheckBlock(recv.Slice(rdispls[i], recvCounts[i]), i, r); err != nil {
						return fmt.Errorf("from %d: %w", i, err)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestVAlgorithmsAgreeProperty: every v-algorithm must produce segments
// byte-identical to a directly computed reference for random count
// matrices (including zero rows/columns) and random payloads.
func TestVAlgorithmsAgreeProperty(t *testing.T) {
	t.Parallel()
	f := func(seed int64, nodesRaw, qRaw uint8) bool {
		nodes := int(nodesRaw%2) + 2 // 2..3 nodes
		qChoices := []int{1, 2, 4, 8}
		q := qChoices[int(qRaw)%len(qChoices)]
		m, err := topo.NewMapping(tinyNode(), nodes, 8)
		if err != nil {
			t.Fatal(err)
		}
		p := m.Size()
		rng := rand.New(rand.NewSource(seed))
		counts := make([][]int, p)
		for s := range counts {
			counts[s] = make([]int, p)
			for d := range counts[s] {
				if rng.Intn(4) == 0 {
					continue // zero count
				}
				counts[s][d] = rng.Intn(23)
			}
		}
		count := func(src, dst int) int { return counts[src][dst] }
		inputs := make([][]byte, p)
		for r := range inputs {
			_, total := DisplsFromCounts(counts[r])
			inputs[r] = make([]byte, total)
			rng.Read(inputs[r])
		}
		// Reference: concatenate, per receiver, each source's segment.
		want := make([][]byte, p)
		for r := range want {
			for s := 0; s < p; s++ {
				sd, _ := DisplsFromCounts(counts[s])
				want[r] = append(want[r], inputs[s][sd[r]:sd[r]+counts[s][r]]...)
			}
		}
		maxTotal := 1
		for r := 0; r < p; r++ {
			sc, rc := countsFor(p, r, count)
			if v := sumCounts(sc); v > maxTotal {
				maxTotal = v
			}
			if v := sumCounts(rc); v > maxTotal {
				maxTotal = v
			}
		}
		for _, algo := range vAlgos {
			ok := true
			err := runtime.Run(runtime.Config{Mapping: m}, func(c comm.Comm) error {
				r := c.Rank()
				sc, rc := countsFor(p, r, count)
				sdispls, sTotal := DisplsFromCounts(sc)
				rdispls, rTotal := DisplsFromCounts(rc)
				_ = sdispls
				a, err := NewV(algo, c, maxTotal, Options{PPG: q})
				if err != nil {
					return err
				}
				send := comm.Alloc(sTotal)
				copy(send.Bytes(), inputs[r])
				recv := comm.Alloc(rTotal)
				if err := a.Alltoallv(send, sc, sdispls, recv, rc, rdispls); err != nil {
					return err
				}
				if !bytes.Equal(recv.Bytes(), want[r]) {
					ok = false
				}
				return nil
			})
			if err != nil || !ok {
				t.Logf("algo=%s nodes=%d q=%d seed=%d: err=%v ok=%v", algo, nodes, q, seed, err, ok)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// TestVAsymmetricCountsDetected: a receiver expecting fewer bytes than
// the sender ships (globally inconsistent counts) must surface an error,
// not silent corruption. It runs under the simulator, whose engine
// diagnoses the aftermath (truncation on the mismatched pair, or a
// deadlock report once the erroring rank stops participating) instead of
// hanging like a real MPI job would.
func TestVAsymmetricCountsDetected(t *testing.T) {
	t.Parallel()
	model := netmodel.Dane()
	model.Node = tinyNode()
	for _, algo := range []string{"pairwise", "nonblocking"} {
		algo := algo
		t.Run(algo, func(t *testing.T) {
			t.Parallel()
			cfg := sim.ClusterConfig{Model: model, Nodes: 1, PPN: 4, Seed: 1}
			_, err := sim.RunCluster(cfg, func(c comm.Comm) error {
				p, r := c.Size(), c.Rank()
				sc, rc := countsFor(p, r, func(int, int) int { return 4 })
				if r == 2 {
					rc[0] = 1 // rank 2 under-declares what rank 0 sends it
				}
				sdispls, sTotal := DisplsFromCounts(sc)
				rdispls, rTotal := DisplsFromCounts(rc)
				a, err := NewV(algo, c, sTotal, Options{})
				if err != nil {
					return err
				}
				send := comm.Alloc(sTotal)
				recv := comm.Alloc(rTotal)
				return a.Alltoallv(send, sc, sdispls, recv, rc, rdispls)
			})
			if err == nil {
				t.Fatal("want an error from inconsistent counts")
			}
		})
	}
}

// TestNewVValidation covers construction-time failures: unknown names,
// group sizes that do not divide the node, bruck inner, and bad maxTotal.
func TestNewVValidation(t *testing.T) {
	t.Parallel()
	m, err := topo.NewMapping(tinyNode(), 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	err = runtime.Run(runtime.Config{Mapping: m}, func(c comm.Comm) error {
		if _, err := NewV("no-such", c, 8, Options{}); err == nil {
			return fmt.Errorf("unknown algorithm accepted")
		}
		if _, err := NewV("pairwise", c, 0, Options{}); err == nil {
			return fmt.Errorf("zero maxTotal accepted")
		}
		if _, err := NewV("locality-aware", c, 8, Options{PPG: 3}); err == nil {
			return fmt.Errorf("non-divisor PPG accepted")
		}
		if _, err := NewV("node-aware", c, 8, Options{Inner: InnerBruck}); err == nil {
			return fmt.Errorf("bruck inner accepted for alltoallv")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTunedVDispatch drives the v-dispatcher across bucket boundaries and
// checks both correctness and the dispatch decisions.
func TestTunedVDispatch(t *testing.T) {
	t.Parallel()
	m, err := topo.NewMapping(tinyNode(), 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	spec := &Dispatch{Op: OpAlltoallv, Entries: []DispatchEntry{
		{MaxBlock: 4, Name: "small", Algo: "pairwise"},
		{MaxBlock: 4096, Name: "large", Algo: "node-aware"},
	}}
	err = runtime.Run(runtime.Config{Mapping: m}, func(c comm.Comm) error {
		p, r := c.Rank(), 0
		_ = p
		_ = r
		size := c.Size()
		const maxTotal = 64 * 1024
		a, err := NewV("tuned", c, maxTotal, Options{Table: spec})
		if err != nil {
			return err
		}
		picked := a.(interface{ Picked() string })
		for _, mean := range []int{2, 64} {
			count := func(src, dst int) int { return mean }
			sc, rc := countsFor(size, c.Rank(), count)
			sdispls, sTotal := DisplsFromCounts(sc)
			rdispls, rTotal := DisplsFromCounts(rc)
			send := comm.Alloc(sTotal)
			recv := comm.Alloc(rTotal)
			for i := 0; i < size; i++ {
				testutil.FillBlock(send.Slice(sdispls[i], sc[i]), c.Rank(), i)
			}
			if err := a.Alltoallv(send, sc, sdispls, recv, rc, rdispls); err != nil {
				return fmt.Errorf("mean %d: %w", mean, err)
			}
			for i := 0; i < size; i++ {
				if err := testutil.CheckBlock(recv.Slice(rdispls[i], rc[i]), i, c.Rank()); err != nil {
					return fmt.Errorf("mean %d, from %d: %w", mean, i, err)
				}
			}
			want := "small"
			if mean > 4 {
				want = "large"
			}
			if got := picked.Picked(); got != want {
				return fmt.Errorf("mean %d dispatched to %q, want %q", mean, got, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTunedVValidation: op mismatches between table and constructor are
// rejected in both directions.
func TestTunedVValidation(t *testing.T) {
	t.Parallel()
	err := runtime.Run(runtime.Config{Ranks: 2}, func(c comm.Comm) error {
		vSpec := &Dispatch{Op: OpAlltoallv, Entries: []DispatchEntry{{MaxBlock: 64, Algo: "pairwise"}}}
		fixedSpec := &Dispatch{Entries: []DispatchEntry{{MaxBlock: 64, Algo: "pairwise"}}}
		if _, err := New("tuned", c, 64, Options{Table: vSpec}); err == nil {
			return fmt.Errorf("alltoallv spec accepted by fixed-size tuned")
		}
		if _, err := NewV("tuned", c, 64, Options{Table: fixedSpec}); err == nil {
			return fmt.Errorf("fixed-size spec accepted by tuned alltoallv")
		}
		badAlgo := &Dispatch{Op: OpAlltoallv, Entries: []DispatchEntry{{MaxBlock: 64, Algo: "bruck"}}}
		if err := badAlgo.Validate(); err == nil {
			return fmt.Errorf("bruck accepted as an alltoallv winner")
		}
		badOp := &Dispatch{Op: "gather", Entries: []DispatchEntry{{MaxBlock: 64, Algo: "pairwise"}}}
		if err := badOp.Validate(); err == nil {
			return fmt.Errorf("unknown op accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTunedVDivergentTotals: a valid count matrix can give ranks
// different send totals that straddle a bucket boundary; the dispatcher
// must agree on one bucket collectively (the heaviest rank's) instead of
// letting lazy collective construction diverge into a deadlock.
func TestTunedVDivergentTotals(t *testing.T) {
	t.Parallel()
	m, err := topo.NewMapping(tinyNode(), 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Rank 0 sends 200 B to every peer (mean 200); everyone else sends 1 B
	// (mean 1). Globally consistent, and the two means straddle the
	// boundary.
	count := func(src, dst int) int {
		if src == 0 {
			return 200
		}
		return 1
	}
	spec := &Dispatch{Op: OpAlltoallv, Entries: []DispatchEntry{
		{MaxBlock: 4, Name: "small", Algo: "pairwise"},
		{MaxBlock: 4096, Name: "large", Algo: "node-aware"},
	}}
	err = runtime.Run(runtime.Config{Mapping: m}, func(c comm.Comm) error {
		p, r := c.Size(), c.Rank()
		sc, rc := countsFor(p, r, count)
		sdispls, sTotal := DisplsFromCounts(sc)
		rdispls, rTotal := DisplsFromCounts(rc)
		a, err := NewV("tuned", c, globalMaxTotal(p, count), Options{Table: spec})
		if err != nil {
			return err
		}
		send := comm.Alloc(sTotal)
		recv := comm.Alloc(rTotal)
		for i := 0; i < p; i++ {
			testutil.FillBlock(send.Slice(sdispls[i], sc[i]), r, i)
		}
		if err := a.Alltoallv(send, sc, sdispls, recv, rc, rdispls); err != nil {
			return err
		}
		for i := 0; i < p; i++ {
			if err := testutil.CheckBlock(recv.Slice(rdispls[i], rc[i]), i, r); err != nil {
				return fmt.Errorf("from %d: %w", i, err)
			}
		}
		// Every rank must have agreed on the heavy rank's bucket.
		if got := a.(interface{ Picked() string }).Picked(); got != "large" {
			return fmt.Errorf("rank %d dispatched to %q, want %q", r, got, "large")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
