package core

import (
	"bytes"
	"fmt"

	"alltoallx/internal/comm"
	"alltoallx/internal/sched"
	"alltoallx/internal/trace"
)

// Schedule-backed alltoallv: the variable-count generators of
// internal/sched (sched.GenerateV) driven through the Alltoallver shell,
// registered as "sched:<generator>" so NewV, the tuned v-dispatcher and
// autotune sweeps can select them like any other v-algorithm.
//
// An alltoallv schedule is parameterized by the full p x p count matrix,
// which no single rank holds — each call starts with a counts allgather
// (control data, tagVSched), cross-checks the gathered matrix against
// this rank's recvCounts (the exchange deadlocks or corrupts under
// asymmetric declarations, so they are rejected up front), then compiles
// and statically verifies the schedule for that matrix. Compilation is
// memoized per instance: ML workloads re-issue the same count pattern
// for many steps, so the common case is one compile amortized over the
// epoch, with only the O(p) allgather per call. Payloads are packed into
// the schedule's canonical layout (send row-packed by destination, recv
// column-packed by source) around the executor run.

// tagVSched tags the per-call counts allgather of the sched-backed
// alltoallv (distinct from the other v-algorithm control tags).
const tagVSched = 331

// vSchedMaxRanks caps the worlds the sched-backed alltoallv accepts:
// the count matrix is inherently O(p^2) state, the assembled schedule is
// compiled and verified whole, and the per-call allgather is O(p)
// messages — the same ceiling as the fixed-count whole-world path.
const vSchedMaxRanks = schedSliceRanks

type vSched struct {
	name     string // registry name: "sched:<generator>"
	gen      string // sched.GenerateV generator name
	c        comm.Comm
	maxTotal int
	rec      *trace.Recorder
	st       OpState

	rowBuf, matBuf     comm.Buffer // counts control data: always real
	packSend, packRecv comm.Buffer // payload staging in canonical layout

	// Compilation memo: the last count matrix (encoded) and its verified
	// executor.
	lastCounts []byte
	ex         *sched.Exec
}

func newVSched(gen string) vFactory {
	return func(c comm.Comm, maxTotal int, _ Options) (Alltoallver, error) {
		p := c.Size()
		if p > vSchedMaxRanks {
			return nil, fmt.Errorf("core: sched:%s compiles the assembled alltoallv schedule; worlds above %d ranks are not supported (have %d)",
				gen, vSchedMaxRanks, p)
		}
		return &vSched{
			name: SchedPrefix + gen, gen: gen, c: c, maxTotal: maxTotal,
			rec:    trace.NewRecorder(c.Now),
			rowBuf: comm.Alloc(p * 8),
			matBuf: comm.Alloc(p * p * 8),
		}, nil
	}
}

func (v *vSched) Name() string { return v.name }

func (v *vSched) Phases() map[trace.Phase]float64 { return v.rec.Snapshot() }

func (v *vSched) Start(send comm.Buffer, sendCounts, sdispls []int,
	recv comm.Buffer, recvCounts, rdispls []int) (Handle, error) {
	if err := checkVCall(v.c, v.maxTotal, send, sendCounts, sdispls, recv, recvCounts, rdispls); err != nil {
		return nil, err
	}
	return v.st.Start(v.c, func() error {
		v.rec.Reset()
		stop := v.rec.Time(trace.PhaseTotal)
		err := v.exchange(send, sendCounts, sdispls, recv, recvCounts, rdispls)
		stop()
		return err
	})
}

func (v *vSched) Alltoallv(send comm.Buffer, sendCounts, sdispls []int,
	recv comm.Buffer, recvCounts, rdispls []int) error {
	h, err := v.Start(send, sendCounts, sdispls, recv, recvCounts, rdispls)
	if err != nil {
		return err
	}
	return h.Wait()
}

// gatherCounts runs the direct allgather of every rank's sendCounts row
// into matBuf (control data, real buffers even under virtual payloads).
func (v *vSched) gatherCounts(sendCounts []int) error {
	p, r := v.c.Size(), v.c.Rank()
	for i, n := range sendCounts {
		putLeI64(v.rowBuf.Bytes()[i*8:], int64(n))
	}
	row := p * 8
	reqs := make([]comm.Request, 0, 2*(p-1))
	for s := 0; s < p; s++ {
		if s == r {
			continue
		}
		rq, err := v.c.Irecv(v.matBuf.Slice(s*row, row), s, tagVSched)
		if err != nil {
			return err
		}
		reqs = append(reqs, rq)
	}
	for d := 0; d < p; d++ {
		if d == r {
			continue
		}
		sq, err := v.c.Isend(v.rowBuf, d, tagVSched)
		if err != nil {
			return err
		}
		reqs = append(reqs, sq)
	}
	if err := v.c.Memcpy(v.matBuf.Slice(r*row, row), v.rowBuf); err != nil {
		return err
	}
	return v.c.WaitAll(reqs)
}

// compile returns the verified executor for the gathered count matrix,
// reusing the previous call's when the counts are unchanged.
func (v *vSched) compile(recvCounts []int) (*sched.Exec, error) {
	p, r := v.c.Size(), v.c.Rank()
	enc := v.matBuf.Bytes()
	if v.ex != nil && bytes.Equal(enc, v.lastCounts) {
		return v.ex, nil
	}
	counts := make([][]int, p)
	for s := 0; s < p; s++ {
		counts[s] = make([]int, p)
		for d := 0; d < p; d++ {
			counts[s][d] = int(leI64(enc[(s*p+d)*8:]))
		}
	}
	// Asymmetric declarations (rank s says it sends n bytes here, this
	// rank expects a different count from s) would deadlock or corrupt
	// the exchange: reject before compiling.
	for s := 0; s < p; s++ {
		if counts[s][r] != recvCounts[s] {
			return nil, fmt.Errorf("core: %s alltoallv counts are asymmetric: rank %d declares %d bytes for this rank, local recvCounts[%d] is %d",
				v.name, s, counts[s][r], s, recvCounts[s])
		}
	}
	s, err := sched.GenerateV(v.gen, counts)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", v.name, err)
	}
	if err := sched.Verify(s); err != nil {
		return nil, fmt.Errorf("core: %s failed static verification: %w", v.name, err)
	}
	v.lastCounts = append(v.lastCounts[:0], enc...)
	v.ex = sched.NewExec(s)
	return v.ex, nil
}

func (v *vSched) exchange(send comm.Buffer, sendCounts, sdispls []int,
	recv comm.Buffer, recvCounts, rdispls []int) error {
	if err := v.gatherCounts(sendCounts); err != nil {
		return fmt.Errorf("core: %s alltoallv counts allgather: %w", v.name, err)
	}
	ex, err := v.compile(recvCounts)
	if err != nil {
		return err
	}
	packSend := ensureStage(&v.packSend, send, v.maxTotal)
	packRecv := ensureStage(&v.packRecv, recv, v.maxTotal)
	stop := v.rec.Time(trace.PhaseRepack)
	_, err = packByCounts(v.c, packSend, send, sendCounts, sdispls)
	stop()
	if err != nil {
		return err
	}
	if err := ex.Run(v.c, packSend, packRecv, 1, v.rec); err != nil {
		return err
	}
	stop = v.rec.Time(trace.PhaseRepack)
	err = unpackByCounts(v.c, recv, recvCounts, rdispls, packRecv)
	stop()
	return err
}

func init() {
	for _, g := range sched.VGenerators() {
		vRegistry[SchedPrefix+g] = newVSched(g)
	}
}
