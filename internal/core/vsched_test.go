package core

import (
	"fmt"
	"strings"
	"testing"

	"alltoallx/internal/comm"
	"alltoallx/internal/netmodel"
	"alltoallx/internal/runtime"
	"alltoallx/internal/sim"
	"alltoallx/internal/trace"
)

// vSchedAlgos are the schedule-backed alltoallv registry entries.
var vSchedAlgos = []string{"sched:direct", "sched:pairwise"}

// TestVSchedLive: the sched-backed alltoallv algorithms deliver the
// standard skewed pattern (zero pairs, one silent rank) on the live
// runtime, through the shared vBody (twice per instance — the second
// call takes the memoized-compile path).
func TestVSchedLive(t *testing.T) {
	t.Parallel()
	for _, algo := range vSchedAlgos {
		algo := algo
		t.Run(algo, func(t *testing.T) {
			t.Parallel()
			err := runtime.Run(runtime.Config{Ranks: 6},
				vBody(algo, Options{}, skewedCount, 0))
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestVSchedSimulated: the same bodies under the discrete-event
// simulator with real payloads.
func TestVSchedSimulated(t *testing.T) {
	t.Parallel()
	model := netmodel.Dane()
	model.Node = tinyNode()
	for _, algo := range vSchedAlgos {
		algo := algo
		t.Run(algo, func(t *testing.T) {
			t.Parallel()
			cfg := sim.ClusterConfig{Model: model, Nodes: 2, PPN: 8, Seed: 3}
			if _, err := sim.RunCluster(cfg, vBody(algo, Options{}, skewedCount, 0)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestVSchedRecompile: one persistent instance serves different count
// matrices across calls — the compile memo must miss and rebuild when
// the counts change, and both patterns must verify and deliver.
func TestVSchedRecompile(t *testing.T) {
	t.Parallel()
	altCount := func(src, dst int) int { return (src*3+dst)%5 + 1 }
	err := runtime.Run(runtime.Config{Ranks: 5}, func(c comm.Comm) error {
		p, r := c.Size(), c.Rank()
		mt := globalMaxTotal(p, skewedCount)
		if v := globalMaxTotal(p, altCount); v > mt {
			mt = v
		}
		a, err := NewV("sched:pairwise", c, mt, Options{})
		if err != nil {
			return err
		}
		for _, count := range []func(src, dst int) int{skewedCount, altCount, skewedCount} {
			sc, rc := countsFor(p, r, count)
			sdispls, sTotal := DisplsFromCounts(sc)
			rdispls, rTotal := DisplsFromCounts(rc)
			send := comm.Alloc(sTotal)
			recv := comm.Alloc(rTotal)
			for i := 0; i < p; i++ {
				for k := 0; k < sc[i]; k++ {
					send.Bytes()[sdispls[i]+k] = byte(r*89+i*17+k) ^ 0x5A
				}
			}
			if err := a.Alltoallv(send, sc, sdispls, recv, rc, rdispls); err != nil {
				return err
			}
			for i := 0; i < p; i++ {
				for k := 0; k < rc[i]; k++ {
					if got, want := recv.Bytes()[rdispls[i]+k], byte(i*89+r*17+k)^0x5A; got != want {
						return fmt.Errorf("byte %d of %d->%d: got %#x, want %#x", k, i, r, got, want)
					}
				}
			}
		}
		if ph := a.Phases(); ph[trace.PhaseTotal] <= 0 {
			return fmt.Errorf("no total phase recorded: %v", ph)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestVSchedAsymmetricCountsDetected: the counts allgather cross-check
// rejects declarations where receivers disagree with their senders,
// before any payload moves. Every rank under-declares its receives so
// every rank rejects locally (a lone detector would leave the other
// ranks blocked in the exchange — exactly the deadlock the check
// front-runs).
func TestVSchedAsymmetricCountsDetected(t *testing.T) {
	t.Parallel()
	err := runtime.Run(runtime.Config{Ranks: 4}, func(c comm.Comm) error {
		p, r := c.Size(), c.Rank()
		sc, _ := countsFor(p, r, func(int, int) int { return 4 })
		rc := make([]int, p)
		for i := range rc {
			rc[i] = 3 // everyone under-declares every receive
		}
		sdispls, sTotal := DisplsFromCounts(sc)
		rdispls, rTotal := DisplsFromCounts(rc)
		a, err := NewV("sched:direct", c, sTotal, Options{})
		if err != nil {
			return err
		}
		err = a.Alltoallv(comm.Alloc(sTotal), sc, sdispls, comm.Alloc(rTotal), rc, rdispls)
		if err == nil {
			return fmt.Errorf("asymmetric counts accepted")
		}
		if !strings.Contains(err.Error(), "asymmetric") {
			return fmt.Errorf("error does not name the asymmetry: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestVSchedWorldCap: construction is rejected above vSchedMaxRanks —
// the assembled O(p^2) compile does not scale past it.
func TestVSchedWorldCap(t *testing.T) {
	t.Parallel()
	err := runtime.Run(runtime.Config{Ranks: vSchedMaxRanks + 2}, func(c comm.Comm) error {
		_, err := NewV("sched:pairwise", c, 8, Options{})
		if err == nil {
			return fmt.Errorf("sched:pairwise accepted %d ranks", c.Size())
		}
		if !strings.Contains(err.Error(), "not supported") {
			return fmt.Errorf("cap error: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
