// Package costmodel fits predictive cost models from a handful of probe
// measurements. A model is a power law T(x) = e^intercept * x^slope — a
// straight line in log-log space, the shape every algorithm in this
// repository follows over block size once a regime (latency-, message- or
// bandwidth-bound) dominates — fitted by least squares with an R²
// confidence score. A Set collects the fitted models of one candidate
// pool (one machine, world shape and operation) as a versioned JSON
// artifact, predicts the winner at unmeasured sizes, and locates the
// crossover points where the predicted winner changes: exactly the sizes
// a predictive autotune sweep must measure densely, and the sizes it can
// safely skip.
//
// The package deliberately knows nothing about algorithms or simulators:
// it fits (x, seconds) points. internal/autotune produces the points and
// consumes the predictions.
package costmodel

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"alltoallx/internal/artifact"
)

// SetVersion is the on-disk format version Save writes and Load accepts.
const SetVersion = 1

// MinR2 is the confidence floor: a fit explaining less of its points'
// variance than this is flagged LowConfidence, and crossovers involving
// it are suppressed (a noisy fit's crossing point is an artifact of the
// noise, not a property of the machine).
const MinR2 = 0.9

// Fit is a least-squares power law T(x) = e^Intercept * x^Slope, fitted
// in log-log space (the SNIPPETS.md scaling-analysis harness shape:
// slope, intercept, R²).
type Fit struct {
	// Slope is the scaling exponent d log T / d log x.
	Slope float64 `json:"slope"`
	// Intercept is log T extrapolated to x = 1.
	Intercept float64 `json:"intercept"`
	// R2 is the coefficient of determination of the fit in log space
	// (1 = the points sit exactly on the line).
	R2 float64 `json:"r2"`
	// N is the number of points fitted.
	N int `json:"n"`
}

// FitPoints fits a power law to measured (x, y) points. It errors rather
// than fit garbage: at least two distinct x values are required (a single
// probe point determines no slope), and every coordinate must be positive
// (the fit is linear in logarithms). Constant y values are a valid zero-
// slope fit with R² = 1 — the line reproduces the points exactly.
func FitPoints(xs, ys []float64) (Fit, error) {
	if len(xs) != len(ys) {
		return Fit{}, fmt.Errorf("costmodel: %d x values vs %d y values", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return Fit{}, fmt.Errorf("costmodel: need at least 2 probe points to fit a slope, got %d", len(xs))
	}
	distinct := false
	for i, x := range xs {
		if x <= 0 || ys[i] <= 0 {
			return Fit{}, fmt.Errorf("costmodel: point %d (%g, %g) not positive (the fit is log-log)", i, x, ys[i])
		}
		if x != xs[0] {
			distinct = true
		}
	}
	if !distinct {
		return Fit{}, fmt.Errorf("costmodel: all %d probe points share x=%g (no slope is determined)", len(xs), xs[0])
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
	}
	slope := (n*sxy - sx*sy) / (n*sxx - sx*sx)
	intercept := (sy - slope*sx) / n
	// R² in log space: 1 - SSres/SStot. Constant y gives SStot = 0; the
	// zero-slope line then reproduces the points exactly (SSres = 0 up to
	// float rounding), so the fit is perfect, not undefined.
	meanY := sy / n
	var ssRes, ssTot float64
	for i := range xs {
		ly := math.Log(ys[i])
		d := ly - (slope*math.Log(xs[i]) + intercept)
		ssRes += d * d
		t := ly - meanY
		ssTot += t * t
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return Fit{Slope: slope, Intercept: intercept, R2: r2, N: len(xs)}, nil
}

// Predict returns the modeled time at x (NaN for non-positive x).
func (f Fit) Predict(x float64) float64 {
	if x <= 0 {
		return math.NaN()
	}
	return math.Exp(f.Intercept + f.Slope*math.Log(x))
}

// LowConfidence reports whether predictions from this fit should not be
// trusted on their own: too few points to cross-check the line (N < 3) or
// too much unexplained variance (R² below MinR2, e.g. non-monotone noise
// in the probes). A predictive sweep treats low-confidence candidates as
// always-uncertain: it measures them instead of pruning on their model.
func (f Fit) LowConfidence() bool {
	return f.N < 3 || f.R2 < MinR2 || math.IsNaN(f.R2)
}

// Crossover returns the x at which the two modeled times are equal — the
// predicted point where the faster candidate flips. ok is false when the
// models never cross (parallel power laws) or when either fit is
// LowConfidence (a crossing computed from a noisy fit would send the
// sweep measuring in the wrong place and, worse, pruning in the right
// one).
func Crossover(a, b Fit) (x float64, ok bool) {
	if a.LowConfidence() || b.LowConfidence() {
		return 0, false
	}
	ds := a.Slope - b.Slope
	if math.Abs(ds) < 1e-12 {
		return 0, false
	}
	return math.Exp((b.Intercept - a.Intercept) / ds), true
}

// Model is one candidate's fitted cost model.
type Model struct {
	// Name is the candidate label (autotune's Candidate.Label).
	Name string `json:"name"`
	Fit
}

// Crossing is one predicted winner-relevant crossover point.
type Crossing struct {
	// X is the size at which models A and B predict equal time.
	X float64 `json:"x"`
	// A and B name the crossing models.
	A string `json:"a"`
	B string `json:"b"`
}

// Set is the fitted-model artifact of one tuning run: every candidate's
// power law over the probe grid, for one (machine, world, operation).
type Set struct {
	Version int    `json:"version"`
	Machine string `json:"machine"`
	// Op is the tuned collective ("alltoall" or "alltoallv").
	Op    string `json:"op"`
	Nodes int    `json:"nodes"`
	PPN   int    `json:"ppn"`
	// Runs and Seed pin the probe methodology.
	Runs int   `json:"runs"`
	Seed int64 `json:"seed"`
	// ProbeSizes is the grid the models were fitted from, ascending.
	ProbeSizes []int `json:"probeSizes"`
	// Models are the per-candidate fits, in candidate-pool order.
	Models []Model `json:"models"`
}

// Validate checks version and internal consistency.
func (s *Set) Validate() error {
	if s.Version != SetVersion {
		return fmt.Errorf("costmodel: model set version %d, this build reads version %d — refit with a2atune -predict", s.Version, SetVersion)
	}
	if s.Machine == "" {
		return fmt.Errorf("costmodel: model set has no machine name")
	}
	if s.Nodes <= 0 || s.PPN <= 0 {
		return fmt.Errorf("costmodel: model set world %d nodes x %d ppn invalid", s.Nodes, s.PPN)
	}
	if len(s.ProbeSizes) < 2 {
		return fmt.Errorf("costmodel: model set has %d probe sizes, need at least 2", len(s.ProbeSizes))
	}
	for i, p := range s.ProbeSizes {
		if p <= 0 || (i > 0 && p <= s.ProbeSizes[i-1]) {
			return fmt.Errorf("costmodel: probe sizes must be positive and ascending, got %v", s.ProbeSizes)
		}
	}
	if len(s.Models) == 0 {
		return fmt.Errorf("costmodel: model set has no models")
	}
	seen := make(map[string]bool, len(s.Models))
	for i, m := range s.Models {
		if m.Name == "" {
			return fmt.Errorf("costmodel: model %d has no name", i)
		}
		if seen[m.Name] {
			return fmt.Errorf("costmodel: duplicate model %q", m.Name)
		}
		seen[m.Name] = true
	}
	return nil
}

// Model returns the named model.
func (s *Set) Model(name string) (Model, bool) {
	for _, m := range s.Models {
		if m.Name == name {
			return m, true
		}
	}
	return Model{}, false
}

// Best returns the model predicting the lowest time at x. ok is false on
// an empty set.
func (s *Set) Best(x float64) (Model, bool) {
	ok := false
	var best Model
	bestT := math.Inf(1)
	for _, m := range s.Models {
		if t := m.Predict(x); t < bestT {
			best, bestT, ok = m, t, true
		}
	}
	return best, ok
}

// Crossovers returns every pairwise crossover that falls inside [lo, hi],
// ascending in X. Low-confidence fits contribute none (see Crossover);
// the caller treats those candidates as uncertain everywhere instead.
func (s *Set) Crossovers(lo, hi float64) []Crossing {
	var out []Crossing
	for i := 0; i < len(s.Models); i++ {
		for j := i + 1; j < len(s.Models); j++ {
			x, ok := Crossover(s.Models[i].Fit, s.Models[j].Fit)
			if ok && x >= lo && x <= hi {
				out = append(out, Crossing{X: x, A: s.Models[i].Name, B: s.Models[j].Name})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].X < out[j].X })
	return out
}

// Hash returns a short content hash of the fitted models (probe grid and
// every slope/intercept/R²), the fitted-model fingerprint an autotune
// table records in its provenance so a table can be traced back to the
// exact models that pruned its sweep.
func (s *Set) Hash() string {
	h := sha256.New()
	fmt.Fprintf(h, "v%d|%s|%s|%dx%d|%v", s.Version, s.Machine, s.Op, s.Nodes, s.PPN, s.ProbeSizes)
	for _, m := range s.Models {
		fmt.Fprintf(h, "|%s:%.17g:%.17g:%.17g:%d", m.Name, m.Slope, m.Intercept, m.R2, m.N)
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// Encode writes the set as versioned, indented JSON.
func (s *Set) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Decode reads and validates one set from r.
func Decode(r io.Reader) (*Set, error) {
	var s Set
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("costmodel: decoding model set: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Save writes the set to path atomically (internal/artifact).
func (s *Set) Save(path string) error {
	if err := s.Validate(); err != nil {
		return err
	}
	return artifact.Save(path, "costmodel: saving model set", s.Encode)
}

// Load reads and validates the set at path.
func Load(path string) (*Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("costmodel: loading model set: %w", err)
	}
	defer f.Close()
	s, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
