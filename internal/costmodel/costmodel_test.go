package costmodel

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

// powerLaw samples T(x) = c * x^k at the given xs.
func powerLaw(c, k float64, xs []float64) []float64 {
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = c * math.Pow(x, k)
	}
	return ys
}

func TestFitRecoversPowerLaw(t *testing.T) {
	t.Parallel()
	xs := []float64{4, 64, 1024, 16384}
	f, err := FitPoints(xs, powerLaw(3e-6, 0.8, xs))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Slope-0.8) > 1e-9 {
		t.Errorf("slope %g, want 0.8", f.Slope)
	}
	if math.Abs(math.Exp(f.Intercept)-3e-6) > 1e-12 {
		t.Errorf("intercept e^%g, want 3e-6", f.Intercept)
	}
	if f.R2 < 0.999999 {
		t.Errorf("exact points fit with R2 %g", f.R2)
	}
	if f.LowConfidence() {
		t.Error("exact 4-point fit flagged low confidence")
	}
	if got := f.Predict(256); math.Abs(got-3e-6*math.Pow(256, 0.8)) > 1e-12 {
		t.Errorf("Predict(256) = %g", got)
	}
}

// TestFitDegenerateInputs pins the satellite requirement: constant
// timings, a single probe point, and non-monotone noise must error or
// flag low confidence — never feed a garbage crossover downstream.
func TestFitDegenerateInputs(t *testing.T) {
	t.Parallel()

	// Single probe point: no slope is determined — hard error.
	if _, err := FitPoints([]float64{64}, []float64{1e-5}); err == nil {
		t.Error("single-point fit accepted")
	}
	// All probes at one x: same degeneracy through a different door.
	if _, err := FitPoints([]float64{64, 64, 64}, []float64{1e-5, 2e-5, 3e-5}); err == nil {
		t.Error("single-x fit accepted")
	}
	// Length mismatch and non-positive coordinates: hard errors.
	if _, err := FitPoints([]float64{4, 8}, []float64{1e-5}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := FitPoints([]float64{4, 8}, []float64{1e-5, 0}); err == nil {
		t.Error("zero timing accepted (log undefined)")
	}
	if _, err := FitPoints([]float64{-4, 8}, []float64{1e-5, 2e-5}); err == nil {
		t.Error("negative size accepted (log undefined)")
	}

	// Constant timings: a valid zero-slope law, fitted exactly.
	f, err := FitPoints([]float64{4, 64, 1024}, []float64{2e-5, 2e-5, 2e-5})
	if err != nil {
		t.Fatalf("constant timings rejected: %v", err)
	}
	if math.Abs(f.Slope) > 1e-12 {
		t.Errorf("constant timings fitted slope %g, want 0", f.Slope)
	}
	if f.LowConfidence() {
		t.Error("exact constant fit flagged low confidence")
	}

	// Non-monotone noise: the line explains little variance — the fit
	// must come back LowConfidence, and crossovers against it must be
	// suppressed.
	noisy, err := FitPoints([]float64{4, 16, 64, 256, 1024}, []float64{1e-5, 9e-5, 2e-6, 7e-5, 3e-6})
	if err != nil {
		t.Fatal(err)
	}
	if !noisy.LowConfidence() {
		t.Errorf("non-monotone noise fitted with R2 %g not flagged low confidence", noisy.R2)
	}
	clean, err := FitPoints([]float64{4, 16, 64, 256, 1024}, powerLaw(1e-6, 1, []float64{4, 16, 64, 256, 1024}))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := Crossover(noisy, clean); ok {
		t.Error("crossover against a low-confidence fit not suppressed")
	}
	// Two-point fits have no residual to estimate confidence from.
	two, err := FitPoints([]float64{4, 8}, []float64{1e-5, 2e-5})
	if err != nil {
		t.Fatal(err)
	}
	if !two.LowConfidence() {
		t.Error("two-point fit not flagged low confidence")
	}
}

func TestCrossover(t *testing.T) {
	t.Parallel()
	xs := []float64{4, 64, 1024, 16384}
	// a = 1e-4 * x^0.2, b = 1e-6 * x^0.9: cross where the exponents meet.
	a, _ := FitPoints(xs, powerLaw(1e-4, 0.2, xs))
	b, _ := FitPoints(xs, powerLaw(1e-6, 0.9, xs))
	x, ok := Crossover(a, b)
	if !ok {
		t.Fatal("crossing power laws reported as non-crossing")
	}
	want := math.Exp(math.Log(1e-4/1e-6) / (0.9 - 0.2))
	if math.Abs(x-want)/want > 1e-9 {
		t.Errorf("crossover at %g, want %g", x, want)
	}
	da := a.Predict(x)
	if db := b.Predict(x); math.Abs(da-db)/da > 1e-9 {
		t.Errorf("predictions differ at the crossover: %g vs %g", da, db)
	}
	// Parallel laws never cross.
	c, _ := FitPoints(xs, powerLaw(2e-6, 0.9, xs))
	if _, ok := Crossover(b, c); ok {
		t.Error("parallel fits reported crossing")
	}
}

func testSet() *Set {
	xs := []float64{4, 64, 1024}
	a, _ := FitPoints(xs, powerLaw(1e-4, 0.2, xs))
	b, _ := FitPoints(xs, powerLaw(1e-6, 0.9, xs))
	return &Set{
		Version: SetVersion, Machine: "Dane", Op: "alltoall",
		Nodes: 4, PPN: 8, Runs: 1, Seed: 1,
		ProbeSizes: []int{4, 64, 1024},
		Models:     []Model{{Name: "flat", Fit: a}, {Name: "steep", Fit: b}},
	}
}

func TestSetBestAndCrossovers(t *testing.T) {
	t.Parallel()
	s := testSet()
	if m, ok := s.Best(4); !ok || m.Name != "steep" {
		t.Errorf("Best(4) = %v, want steep (cheap constant)", m.Name)
	}
	if m, ok := s.Best(1 << 20); !ok || m.Name != "flat" {
		t.Errorf("Best(1M) = %v, want flat (small exponent)", m.Name)
	}
	cross := s.Crossovers(1, 1e9)
	if len(cross) != 1 {
		t.Fatalf("crossovers: %v, want exactly 1", cross)
	}
	if cross[0].A != "flat" || cross[0].B != "steep" {
		t.Errorf("crossing pair %s/%s", cross[0].A, cross[0].B)
	}
	// A range that excludes the crossing finds none.
	if c := s.Crossovers(1, 2); len(c) != 0 {
		t.Errorf("out-of-range crossovers: %v", c)
	}
}

func TestSetRoundTripAndValidation(t *testing.T) {
	t.Parallel()
	s := testSet()
	path := filepath.Join(t.TempDir(), "models.json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Hash() != s.Hash() {
		t.Error("hash changed across save/load")
	}
	if len(loaded.Models) != 2 || loaded.Models[1].Slope != s.Models[1].Slope {
		t.Error("models corrupted across save/load")
	}

	cases := []struct {
		name   string
		mutate func(*Set)
	}{
		{"future version", func(s *Set) { s.Version = SetVersion + 1 }},
		{"no machine", func(s *Set) { s.Machine = "" }},
		{"bad world", func(s *Set) { s.Nodes = 0 }},
		{"one probe size", func(s *Set) { s.ProbeSizes = []int{4} }},
		{"unsorted probes", func(s *Set) { s.ProbeSizes = []int{64, 4, 1024} }},
		{"no models", func(s *Set) { s.Models = nil }},
		{"unnamed model", func(s *Set) { s.Models[0].Name = "" }},
		{"duplicate model", func(s *Set) { s.Models[1].Name = s.Models[0].Name }},
	}
	for _, tc := range cases {
		bad := testSet()
		tc.mutate(bad)
		if err := bad.Validate(); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

func TestHashTracksModelChanges(t *testing.T) {
	t.Parallel()
	a, b := testSet(), testSet()
	if a.Hash() != b.Hash() {
		t.Error("identical sets hash differently")
	}
	b.Models[0].Slope += 1e-6
	if a.Hash() == b.Hash() {
		t.Error("changed slope left hash unchanged")
	}
}

func TestLoadMissing(t *testing.T) {
	t.Parallel()
	if _, err := Load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file loaded")
	}
	// A torn/invalid file must not validate.
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("invalid JSON loaded")
	}
}
