package lint

import (
	"go/token"
	"strings"
)

// Directive kinds. The grammar is strict — //a2alint: immediately
// followed by the kind, like //go:build — so a directive is never
// mistaken for prose.
const (
	// DirIgnore is //a2alint:ignore <analyzer> <reason>: suppress that
	// analyzer's findings on this line and the next. The reason is
	// mandatory — an unexplained suppression is worse than the finding.
	DirIgnore = "ignore"
	// DirCollective is //a2alint:collective, placed on a function or
	// method declaration: marks it as a collective entry point (every
	// rank of the communicator must call it the same number of times in
	// the same order), extending spmdcollective's built-in Barrier/Split
	// set to this module's own collectives.
	DirCollective = "collective"
)

// directivePrefix introduces every a2alint directive comment.
const directivePrefix = "//a2alint:"

// A Directive is one well-formed //a2alint: comment.
type Directive struct {
	Pos      token.Position
	Kind     string
	Analyzer string // DirIgnore: which analyzer to silence
	Reason   string // DirIgnore: the recorded justification
}

// parseDirectives scans every comment of the package. Well-formed
// directives are returned; malformed ones — unknown kind, unknown
// analyzer, missing reason — come back as findings under the
// "directive" pseudo-analyzer, so a suppression can never rot into
// silence.
func parseDirectives(pkg *Package, known map[string]bool) ([]Directive, []Diagnostic) {
	var ds []Directive
	var diags []Diagnostic
	report := func(pos token.Pos, msg string) {
		diags = append(diags, Diagnostic{Pos: pkg.Fset.Position(pos), Analyzer: "directive", Message: msg})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok {
					continue
				}
				// Fixture files embed "// want" expectations in the same
				// comment (a line holds at most one comment); they are not
				// part of the directive.
				if i := strings.Index(text, "// want"); i >= 0 {
					text = text[:i]
				}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					report(c.Pos(), "a2alint: empty directive")
					continue
				}
				switch fields[0] {
				case DirIgnore:
					if len(fields) < 2 || !known[fields[1]] {
						report(c.Pos(), "a2alint: ignore directive needs a known analyzer name ("+knownList(known)+")")
						continue
					}
					if len(fields) < 3 {
						report(c.Pos(), "a2alint: ignore "+fields[1]+" needs a reason — justify the suppression")
						continue
					}
					ds = append(ds, Directive{
						Pos:      pkg.Fset.Position(c.Pos()),
						Kind:     DirIgnore,
						Analyzer: fields[1],
						Reason:   strings.Join(fields[2:], " "),
					})
				case DirCollective:
					ds = append(ds, Directive{Pos: pkg.Fset.Position(c.Pos()), Kind: DirCollective})
				default:
					report(c.Pos(), "a2alint: unknown directive "+strings.TrimSpace(fields[0]))
				}
			}
		}
	}
	return ds, diags
}

func knownList(known map[string]bool) string {
	names := make([]string, 0, len(known))
	for n := range known {
		names = append(names, n)
	}
	// Sorted so the message is deterministic — the linter practices
	// what simdet preaches.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return strings.Join(names, ", ")
}

// suppress drops findings covered by an ignore directive on the same
// line or the line immediately above (the directive-above-statement
// form). Directive findings themselves are never suppressible.
func suppress(diags []Diagnostic, ds []Directive) []Diagnostic {
	if len(ds) == 0 {
		return diags
	}
	type key struct {
		file     string
		line     int
		analyzer string
	}
	covered := make(map[key]bool)
	for _, d := range ds {
		if d.Kind != DirIgnore {
			continue
		}
		covered[key{d.Pos.Filename, d.Pos.Line, d.Analyzer}] = true
		covered[key{d.Pos.Filename, d.Pos.Line + 1, d.Analyzer}] = true
	}
	kept := diags[:0]
	for _, d := range diags {
		if d.Analyzer != "directive" && covered[key{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
