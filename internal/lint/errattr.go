package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// errattrScope is the attributable-error surface: the schedule
// compiler, the registry, the dispatch layer that stitches them into
// operations, and the daemon that serves them. At SuperMUC scale an
// error that cannot be pinned to a (generator, world, rank) is an
// operational incident, not a log line; these packages' errors cross
// package boundaries into operator-facing paths, so they must keep the
// cause chain (%w) and carry identifying context.
var errattrScope = []string{
	"internal/sched", "internal/schedreg", "internal/core",
	"cmd/a2aschedd", "cmd/a2asched",
}

// ErrAttr proves errors on the schedule/registry/daemon paths
// attributable: a wrapped cause survives errors.Is/As across package
// boundaries, and a constant-only message can never say which world
// failed.
var ErrAttr = &Analyzer{
	Name: "errattr",
	Doc: `errors crossing package boundaries on schedule/registry/daemon paths
must stay attributable: fmt.Errorf must wrap a cause with %w (never
flatten it through %v/%s — errors.Is and the negative caches depend on
the chain), a bare "%w" wrap adds no context and should name the
generator/world/rank, and a constant format with no arguments should be
an errors.New sentinel (testable with errors.Is) or carry context.`,
	Run: runErrAttr,
}

func runErrAttr(pass *Pass) error {
	if !pass.InScope(errattrScope...) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if ok && isPkgFunc(pass, call, "fmt", "Errorf") {
				checkErrorf(pass, call)
			}
			return true
		})
	}
	return nil
}

func isPkgFunc(pass *Pass, call *ast.CallExpr, pkg, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == pkg && fn.Name() == name
}

func checkErrorf(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	format, ok := stringConstant(pass, call.Args[0])
	if !ok {
		return // dynamic format: out of static reach
	}
	verbs := parseVerbs(format)
	args := call.Args[1:]

	if len(args) == 0 && len(verbs) == 0 {
		pass.Reportf(call.Pos(), "constant error message %q cannot identify a (generator, world, rank); use an errors.New sentinel or add context", truncateMsg(format))
		return
	}
	if strings.TrimSpace(format) == "%w" {
		pass.Reportf(call.Pos(), "bare %%w wrap adds no context; name the generator/world/rank the cause belongs to")
	}
	// Positional verb-to-argument matching. Explicit argument indexes
	// (%[1]v) and * widths are rare enough here to skip rather than
	// mis-attribute.
	if strings.Contains(format, "%[") || strings.Contains(format, "*") {
		return
	}
	for i, v := range verbs {
		if i >= len(args) {
			break
		}
		if v != 'w' && isErrorType(pass, args[i]) {
			pass.Reportf(call.Pos(), "error cause formatted with %%%c discards the chain; wrap it with %%w so errors.Is keeps working across package boundaries", v)
		}
	}
	return
}

func stringConstant(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// parseVerbs extracts the verb letters of a format string in argument
// order, skipping %% escapes and flag/width/precision prefixes.
func parseVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		for i < len(format) && strings.IndexByte("+-# 0123456789.", format[i]) >= 0 {
			i++
		}
		if i >= len(format) {
			break
		}
		if format[i] != '%' { // %% consumes no argument
			verbs = append(verbs, format[i])
		}
	}
	return verbs
}

func isErrorType(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	errIface, ok := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return types.Implements(tv.Type, errIface) || types.Implements(types.NewPointer(tv.Type), errIface)
}

func truncateMsg(s string) string {
	if len(s) > 40 {
		return s[:37] + "..."
	}
	return s
}
