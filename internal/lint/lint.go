// Package lint is a2alint: a suite of static analyzers encoding the
// invariants this module's correctness story rests on — bit-for-bit
// deterministic simulation (simdet), SPMD-uniform collective ordering
// (spmdcollective), attributable errors at scale (errattr),
// mutex-guarded shared state (mutexguard), and message-tag discipline
// (tagdiscipline). The generic toolchain checks none of these; until
// now they lived in reviewers' heads and -race tests.
//
// The framework mirrors the golang.org/x/tools/go/analysis shape —
// Analyzer values with a Run(*Pass) hook, reported Diagnostics, golden
// fixture tests — but is hand-rolled on go/ast + go/types because the
// module deliberately has no external dependencies (the same reason
// internal/singleflight exists).
//
// Findings are suppressed, one at a time and with a recorded
// justification, by a directive on or immediately above the flagged
// line:
//
//	//a2alint:ignore <analyzer> <reason>
//
// A malformed directive — unknown analyzer, missing reason — is itself
// a finding, so suppressions cannot rot silently.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named invariant check. Run inspects a fully
// type-checked package through its Pass and reports findings; it must
// not mutate the package.
type Analyzer struct {
	// Name identifies the analyzer in findings and in
	// //a2alint:ignore directives. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph invariant statement shown by
	// a2alint -list.
	Doc string
	// Run performs the check.
	Run func(*Pass) error
}

// All is the production suite, in reporting order.
var All = []*Analyzer{
	Simdet,
	SPMDCollective,
	ErrAttr,
	MutexGuard,
	TagDiscipline,
}

// KnownAnalyzers returns the set of valid analyzer names for
// //a2alint:ignore directives.
func KnownAnalyzers() map[string]bool {
	m := make(map[string]bool, len(All))
	for _, a := range All {
		m[a.Name] = true
	}
	return m
}

// A Diagnostic is one finding at one source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// A Package is one parsed and type-checked package, the unit of
// analysis.
type Package struct {
	// Path is the import path analyzers scope on (Pkg.Path of the
	// type-checked package).
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Directives holds every well-formed //a2alint: directive in the
	// package (spmdcollective reads the collective markers; ignore
	// directives are applied by Check after analyzers run).
	Directives []Directive

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InScope reports whether the package is one of the given path
// suffixes ("internal/sim" matches both "alltoallx/internal/sim" and a
// fixture's "fix/internal/sim"). Analyzers whose invariant only holds
// in specific subsystems gate on it.
func (p *Pass) InScope(suffixes ...string) bool {
	for _, s := range suffixes {
		if p.Pkg.Path() == s || strings.HasSuffix(p.Pkg.Path(), "/"+s) {
			return true
		}
	}
	return false
}

// Check runs the analyzers over pkg, applies //a2alint:ignore
// suppressions, reports malformed directives, and returns the
// surviving findings sorted by position. Analyzer errors (not
// findings) abort the run.
func Check(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	directives, diags := parseDirectives(pkg, KnownAnalyzers())
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			TypesInfo:  pkg.Info,
			Directives: directives,
			diags:      &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: analyzer %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	diags = suppress(diags, directives)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}
