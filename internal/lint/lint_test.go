package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"alltoallx/internal/lint"
	"alltoallx/internal/lint/linttest"
)

func TestSimdet(t *testing.T) {
	linttest.Run(t, "testdata/simdet", "fix/internal/sim", lint.Simdet)
}

// TestSimdetOutOfScope proves the determinism rules stay confined to
// the simulation/schedule/topology packages: the same violations in a
// bench-style package (which measures real wall time on purpose) are
// not findings.
func TestSimdetOutOfScope(t *testing.T) {
	pkg, err := lint.LoadDir("testdata/simdet", "fix/internal/bench")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Check(pkg, []*lint.Analyzer{lint.Simdet})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("simdet fired outside its scope: %v", diags)
	}
}

func TestSPMDCollective(t *testing.T) {
	linttest.Run(t, "testdata/spmdcollective", "fix/internal/core", lint.SPMDCollective)
}

func TestErrAttr(t *testing.T) {
	linttest.Run(t, "testdata/errattr", "fix/internal/sched", lint.ErrAttr)
}

// TestErrAttrOutOfScope: the same unwrapped errors in a package off
// the schedule/registry/daemon paths are not findings.
func TestErrAttrOutOfScope(t *testing.T) {
	pkg, err := lint.LoadDir("testdata/errattr", "fix/internal/model")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Check(pkg, []*lint.Analyzer{lint.ErrAttr})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("errattr fired outside its scope: %v", diags)
	}
}

func TestMutexGuard(t *testing.T) {
	linttest.Run(t, "testdata/mutexguard", "fix/internal/core", lint.MutexGuard)
}

func TestTagDiscipline(t *testing.T) {
	linttest.Run(t, "testdata/tagdiscipline", "fix/internal/sim", lint.TagDiscipline)
}

// TestSuppressionDirective covers the ignore grammar end to end: a
// justified ignore silences exactly its line, and malformed or
// reason-less directives are findings in their own right.
func TestSuppressionDirective(t *testing.T) {
	linttest.Run(t, "testdata/directive", "fix/internal/sim", lint.Simdet)
}

func TestKnownAnalyzers(t *testing.T) {
	known := lint.KnownAnalyzers()
	for _, a := range lint.All {
		if !known[a.Name] {
			t.Errorf("analyzer %s missing from KnownAnalyzers", a.Name)
		}
		if a.Name != strings.ToLower(a.Name) || strings.ContainsAny(a.Name, " \t") {
			t.Errorf("analyzer name %q must be lower-case with no spaces (it appears in directives)", a.Name)
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %s needs Doc and Run", a.Name)
		}
	}
	if known["directive"] {
		t.Error("the directive pseudo-analyzer must not be suppressible")
	}
}

func TestModuleRoot(t *testing.T) {
	root, err := lint.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("ModuleRoot returned %s without a go.mod: %v", root, err)
	}
	if _, err := lint.ModuleRoot(t.TempDir()); err == nil {
		t.Error("ModuleRoot outside any module should fail")
	}
}

func TestLoadPackagesResolvesPatterns(t *testing.T) {
	root, err := lint.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.LoadPackages(root, []string{"./internal/singleflight"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || !strings.HasSuffix(pkgs[0].Path, "internal/singleflight") {
		t.Fatalf("unexpected packages: %+v", pkgs)
	}
	if pkgs[0].Types == nil || len(pkgs[0].Files) == 0 {
		t.Fatal("loaded package is missing type information or files")
	}
}

// TestRepoIsClean is the regression guard the whole suite exists for:
// the production packages must stay free of findings (or carry a
// justified ignore). A finding here is a real invariant violation —
// fix it or justify it at the site, never here.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source; skipped in -short")
	}
	root, err := lint.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.LoadPackages(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("expected to load the whole module, got %d packages", len(pkgs))
	}
	for _, pkg := range pkgs {
		diags, err := lint.Check(pkg, lint.All)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}
