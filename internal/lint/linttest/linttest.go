// Package linttest runs a2alint analyzers over golden fixture
// packages, in the manner of golang.org/x/tools' analysistest: fixture
// source lines carry `// want "regexp"` comments stating the findings
// that must be reported there, and the harness fails on any mismatch
// in either direction — a missing finding is a broken analyzer, an
// extra finding is a false positive.
package linttest

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"alltoallx/internal/lint"
)

// wantRe matches one `// want "..." "..."` expectation inside a
// comment. Quoted strings are Go-quoted regular expressions. The
// expectation may live inside another comment's text (a directive
// fixture asserts the finding on its own line that way).
var wantRe = regexp.MustCompile(`// want((?:\s+"(?:[^"\\]|\\.)*")+)`)

var quotedRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

type lineKey struct {
	file string
	line int
}

// Run loads the fixture directory as one package under pkgPath (pick a
// path inside the analyzer's scope, e.g. "fix/internal/sim") and
// checks the analyzer's findings against the fixture's want comments.
// The framework's directive pass always runs, so fixtures can also
// assert malformed-directive findings.
func Run(t *testing.T, dir, pkgPath string, a *lint.Analyzer) {
	t.Helper()
	pkg, err := lint.LoadDir(dir, pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := lint.Check(pkg, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	wants := make(map[lineKey][]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.Contains(c.Text, "// want") {
						t.Errorf("%s: malformed want comment: %s", pkg.Fset.Position(c.Pos()), c.Text)
					}
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := lineKey{pos.Filename, pos.Line}
				for _, q := range quotedRe.FindAllString(m[1], -1) {
					s, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(s)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, s, err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	got := make(map[lineKey][]lint.Diagnostic)
	for _, d := range diags {
		k := lineKey{d.Pos.Filename, d.Pos.Line}
		got[k] = append(got[k], d)
	}

	for k, res := range wants {
		ds := got[k]
		for _, re := range res {
			matched := -1
			for i, d := range ds {
				if re.MatchString(d.Message) {
					matched = i
					break
				}
			}
			if matched < 0 {
				t.Errorf("%s:%d: expected finding matching %q, got %v", k.file, k.line, re, messages(ds))
				continue
			}
			ds = append(ds[:matched], ds[matched+1:]...)
		}
		if len(ds) > 0 {
			t.Errorf("%s:%d: unexpected findings %v", k.file, k.line, messages(ds))
		}
		delete(got, k)
	}
	for k, ds := range got {
		t.Errorf("%s:%d: unexpected findings %v", k.file, k.line, messages(ds))
	}
}

func messages(ds []lint.Diagnostic) []string {
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.Analyzer + ": " + d.Message
	}
	return out
}
