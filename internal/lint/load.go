package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"sync"
)

// The loader type-checks packages from source with the standard
// library's "source" importer, so a2alint needs no export data and no
// network — dependencies (including the standard library) are parsed
// and checked from GOROOT and the module tree on demand. One importer
// instance is shared process-wide: the first load pays for the
// dependency closure, later loads hit its cache.

var loaderMu sync.Mutex
var sharedFset *token.FileSet
var sharedImporter types.Importer

func loaderInit() {
	if sharedFset == nil {
		// The simulator's fabric and machine models are pure Go; cgo
		// variants of stdlib packages (net, os/user) only complicate
		// source type-checking, so resolve files as a cgo-free build.
		build.Default.CgoEnabled = false
		sharedFset = token.NewFileSet()
		sharedImporter = importer.ForCompiler(sharedFset, "source", nil)
	}
}

// TypeCheck parses and type-checks the given parsed files as one
// package with the shared source importer. The Package's Info records
// uses, defs, selections and expression types — everything the
// analyzers consume.
func typeCheck(fset *token.FileSet, path string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: sharedImporter}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// LoadDir parses every non-test .go file in dir and type-checks the
// result under the given import path. Fixture tests use it directly;
// LoadPackages uses it for real packages after `go list` resolves the
// patterns.
func LoadDir(dir, path string) (*Package, error) {
	loaderMu.Lock()
	defer loaderMu.Unlock()
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", dir, err)
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || filepath.Ext(n) != ".go" || isTestFile(n) {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	return loadFiles(dir, path, names)
}

func isTestFile(name string) bool {
	const suf = "_test.go"
	return len(name) >= len(suf) && name[len(name)-len(suf):] == suf
}

func loadFiles(dir, path string, names []string) (*Package, error) {
	loaderInit()
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: %s: no Go files", dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(sharedFset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", dir, err)
		}
		files = append(files, f)
	}
	return typeCheck(sharedFset, path, files)
}

// listedPackage is the slice of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
}

// LoadPackages resolves the package patterns (./... and friends) with
// the go command from the module root and loads each matched package —
// non-test files only, matching what ships. It returns the packages in
// the order go list reports them.
func LoadPackages(moduleRoot string, patterns []string) ([]*Package, error) {
	loaderMu.Lock()
	defer loaderMu.Unlock()
	loaderInit()
	args := append([]string{"list", "-json=ImportPath,Dir,GoFiles", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleRoot
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %w\n%s", patterns, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*Package
	for dec.More() {
		var lp listedPackage
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := loadFiles(lp.Dir, lp.ImportPath, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// ModuleRoot walks up from dir to the enclosing go.mod, the directory
// package patterns are resolved from.
func ModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", fmt.Errorf("lint: %s: %w", dir, err)
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod above %s", abs)
		}
		d = parent
	}
}
