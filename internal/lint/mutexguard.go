package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// MutexGuard enforces the `// guarded by mu` field directive: every
// selector access to an annotated struct field must happen in a
// function that acquires the named mutex (x.mu.Lock(), x.mu.RLock(),
// or — for an embedded sync.Mutex/RWMutex — x.Lock()/x.RLock()). This
// is exactly the class of the OpState check-then-set race: the
// unsynchronized read of a guarded slot looked harmless until two
// Starts interleaved. Helpers intentionally called with the lock held
// document that with //a2alint:ignore mutexguard <reason>.
//
// The check is per-function and syntactic about acquisition order —
// it proves "this function touches guarded state and never takes the
// lock", not lock-set dominance. That is the bug class that slips
// through review; -race only catches it when a test happens to
// interleave.
var MutexGuard = &Analyzer{
	Name: "mutexguard",
	Doc: `fields annotated "// guarded by <mutex>" must only be accessed in
functions that lock that mutex. Composite-literal construction is
exempt (the value is not shared yet), as are functions named *Locked
(the suffix is the documented promise that the caller holds the lock);
other functions called with the lock held carry an
//a2alint:ignore mutexguard justification.`,
	Run: runMutexGuard,
}

var guardedByRe = regexp.MustCompile(`(?i)\bguarded by (\w+)\b`)

// guardSpec records one annotated field.
type guardSpec struct {
	guard    string // mutex field name, or "Mutex"/"RWMutex" for embedded
	owner    string // struct type name, for messages
	embedded bool   // guard is an embedded sync.Mutex/RWMutex
}

func runMutexGuard(pass *Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkGuardedAccesses(pass, d.Name.Name, d.Body, guards)
			case *ast.GenDecl:
				// Package-level var initializers (rare, e.g. a registry
				// literal) construct, not share; skip.
			}
		}
	}
	return nil
}

// collectGuards finds every struct field whose doc or line comment
// says "guarded by <name>" and resolves it to its types.Var, along
// with the guard's spelling. Both named struct types and anonymous
// structs (package-level singleton vars like a registry or hook slot)
// carry annotations.
func collectGuards(pass *Pass) map[*types.Var]guardSpec {
	guards := make(map[*types.Var]guardSpec)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch spec := n.(type) {
			case *ast.TypeSpec:
				if st, ok := spec.Type.(*ast.StructType); ok {
					guardsFromStruct(pass, spec.Name.Name, st, guards)
				}
			case *ast.ValueSpec:
				owner := "anonymous struct"
				if len(spec.Names) == 1 {
					owner = spec.Names[0].Name
				}
				if st, ok := spec.Type.(*ast.StructType); ok {
					guardsFromStruct(pass, owner, st, guards)
				}
				for _, v := range spec.Values {
					if cl, ok := v.(*ast.CompositeLit); ok {
						if st, ok := cl.Type.(*ast.StructType); ok {
							guardsFromStruct(pass, owner, st, guards)
						}
					}
				}
			}
			return true
		})
	}
	return guards
}

func guardsFromStruct(pass *Pass, owner string, st *ast.StructType, guards map[*types.Var]guardSpec) {
	fieldNames := make(map[string]bool)
	embedsMutex := false
	for _, fld := range st.Fields.List {
		for _, name := range fld.Names {
			fieldNames[name.Name] = true
		}
		if len(fld.Names) == 0 {
			if sel, ok := fld.Type.(*ast.SelectorExpr); ok && (sel.Sel.Name == "Mutex" || sel.Sel.Name == "RWMutex") {
				embedsMutex = true
				fieldNames[sel.Sel.Name] = true
			}
		}
	}
	for _, fld := range st.Fields.List {
		guard := guardName(fld)
		if guard == "" {
			continue
		}
		if !fieldNames[guard] {
			pass.Reportf(fld.Pos(), "guard %q is not a field of %s; the directive names the mutex that protects this field", guard, owner)
			continue
		}
		for _, name := range fld.Names {
			if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
				guards[v] = guardSpec{
					guard:    guard,
					owner:    owner,
					embedded: embedsMutex && (guard == "Mutex" || guard == "RWMutex"),
				}
			}
		}
	}
}

func guardName(fld *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// checkGuardedAccesses flags selector accesses to guarded fields in
// functions that never acquire the guard.
func checkGuardedAccesses(pass *Pass, funcName string, body *ast.BlockStmt, guards map[*types.Var]guardSpec) {
	if body == nil {
		return
	}
	// The *Locked suffix is the repo's documented promise that every
	// caller already holds the receiver's lock (e.g. evictLocked).
	if strings.HasSuffix(funcName, "Locked") {
		return
	}
	acquired := acquiredGuards(pass, body)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
		if !ok {
			return true
		}
		spec, guarded := guards[v]
		if !guarded || acquired[spec.guard] {
			return true
		}
		pass.Reportf(sel.Pos(), "%s.%s is guarded by %s, but %s never locks it; hold the lock or justify with an ignore directive",
			spec.owner, v.Name(), spec.guard, funcName)
		return true
	})
}

// acquiredGuards collects the mutex names this function locks: the
// final selector before .Lock()/.RLock() (s.mu.Lock -> "mu"), or the
// embedded forms x.Lock()/x.RLock() (recorded as "Mutex"/"RWMutex").
// Where the lock is taken — before or after the access — is not
// checked; "never locked at all" is the reviewable signal.
func acquiredGuards(pass *Pass, body *ast.BlockStmt) map[string]bool {
	acquired := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Lock", "RLock", "TryLock", "TryRLock":
		default:
			return true
		}
		switch recv := sel.X.(type) {
		case *ast.SelectorExpr:
			acquired[recv.Sel.Name] = true
		case *ast.Ident:
			// x.Lock() through an embedded mutex, or a local `mu := &s.mu`.
			acquired[recv.Name] = true
			acquired["Mutex"] = true
			acquired["RWMutex"] = true
		}
		return true
	})
	return acquired
}
