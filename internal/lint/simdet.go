package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// simdetScope is where the determinism invariant is absolute: the
// simulator, the schedule compiler, and the topology/fabric layer. A
// golden file (BENCH_*.json) or the 1e-9 analytic-vs-flow oracle pin
// depends on every byte these packages produce being a pure function
// of (seed, world, machine).
var simdetScope = []string{"internal/sim", "internal/sched", "internal/topo"}

// Simdet proves the simulation side of the repo deterministic: no wall
// clock, no process-global randomness, and no map iteration feeding
// order-sensitive output without the sorted-keys idiom.
var Simdet = &Analyzer{
	Name: "simdet",
	Doc: `forbid nondeterminism sources in the simulation/schedule/topology packages:
time.Now and time.Since (virtual time comes from the event engine),
math/rand's process-global top-level functions (streams must be
rand.New(rand.NewSource(seed)) so runs replay bit-for-bit), and
range-over-map bodies that append, send, or float/string-accumulate
into order-sensitive output without sorting (map order would leak into
golden files and the analytic-vs-flow oracle).`,
	Run: runSimdet,
}

func runSimdet(pass *Pass) error {
	if !pass.InScope(simdetScope...) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkForbiddenCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n, enclosingFuncBody(f, n))
			}
			return true
		})
	}
	return nil
}

// checkForbiddenCall flags wall-clock reads and global-generator
// randomness.
func checkForbiddenCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return // methods (e.g. time.Time.Since does not exist; rand.Rand.Intn is fine)
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" || fn.Name() == "Since" {
			pass.Reportf(call.Pos(), "time.%s reads the wall clock; simulation code must use the event engine's virtual time", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		switch fn.Name() {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			// Constructors are how seed-stable streams are made.
		default:
			pass.Reportf(call.Pos(), "rand.%s draws from the process-global generator; use rand.New(rand.NewSource(seed)) so the stream replays bit-for-bit", fn.Name())
		}
	}
}

// checkMapRange flags `for k, v := range m` over a map whose body
// accumulates into order-sensitive output — append, channel send, or
// float/string compound assignment — unless the accumulation is
// rescued by the sorted-keys idiom (the appended slice is passed to a
// sort call later in the same function) or each iteration writes a
// distinct element (the target is indexed by exactly the range key).
func checkMapRange(pass *Pass, rng *ast.RangeStmt, body *ast.BlockStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	keyObj := rangeKeyObject(pass, rng)
	var hazards []hazard
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			hazards = append(hazards, hazard{pos: n.Pos(), what: "channel send"})
		case *ast.AssignStmt:
			hazards = append(hazards, assignHazards(pass, n, keyObj)...)
		}
		return true
	})
	if len(hazards) == 0 {
		return
	}
	sorted := sortedIdents(pass, body, rng.End())
	for _, h := range hazards {
		if h.target != nil && sorted[h.target] {
			continue // sorted-keys idiom: collect, then sort
		}
		pass.Reportf(rng.Pos(), "map iteration order reaches order-sensitive output (%s at line %d); sort the keys first or sort the result",
			h.what, pass.Fset.Position(h.pos).Line)
	}
}

type hazard struct {
	pos    token.Pos
	what   string
	target types.Object // base object accumulated into, if identifiable
}

// assignHazards classifies one assignment inside a map-range body.
func assignHazards(pass *Pass, as *ast.AssignStmt, keyObj types.Object) []hazard {
	var hs []hazard
	switch as.Tok {
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pass, call) || i >= len(as.Lhs) {
				continue
			}
			if indexedByKey(pass, as.Lhs[i], keyObj) {
				continue // one distinct element per iteration: order-free
			}
			hs = append(hs, hazard{pos: as.Pos(), what: "append", target: baseObject(pass, as.Lhs[i])})
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN:
		for _, lhs := range as.Lhs {
			tv, ok := pass.TypesInfo.Types[lhs]
			if !ok {
				continue
			}
			b, ok := tv.Type.Underlying().(*types.Basic)
			if !ok {
				continue
			}
			// Integer accumulation commutes exactly; float rounding and
			// string concatenation depend on visit order.
			if b.Info()&types.IsFloat != 0 || b.Info()&types.IsComplex != 0 {
				hs = append(hs, hazard{pos: as.Pos(), what: "floating-point accumulation"})
			} else if b.Info()&types.IsString != 0 {
				hs = append(hs, hazard{pos: as.Pos(), what: "string concatenation"})
			}
		}
	}
	return hs
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// rangeKeyObject returns the object of the range's key variable, or
// nil when the key is blank or absent.
func rangeKeyObject(pass *Pass, rng *ast.RangeStmt) types.Object {
	id, ok := rng.Key.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if o := pass.TypesInfo.Defs[id]; o != nil {
		return o
	}
	return pass.TypesInfo.Uses[id]
}

// indexedByKey reports whether expr is an index expression whose index
// is exactly the range key variable — m2[k] = append(m2[k], ...)
// touches a distinct element each iteration, so visit order cannot
// show.
func indexedByKey(pass *Pass, expr ast.Expr, keyObj types.Object) bool {
	if keyObj == nil {
		return false
	}
	ix, ok := expr.(*ast.IndexExpr)
	if !ok {
		return false
	}
	id, ok := ix.Index.(*ast.Ident)
	return ok && pass.TypesInfo.Uses[id] == keyObj
}

// baseObject walks an lvalue to its root identifier's object: the
// `outs` of outs[t][r].
func baseObject(pass *Pass, expr ast.Expr) types.Object {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			if o := pass.TypesInfo.Uses[e]; o != nil {
				return o
			}
			return pass.TypesInfo.Defs[e]
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// sortedIdents collects the base objects of every argument to a sort
// call (sort.Slice, sort.Sort, sort.Strings, sort.Ints, slices.Sort*)
// appearing in the enclosing function after pos: the second half of
// the sorted-keys idiom.
func sortedIdents(pass *Pass, body *ast.BlockStmt, after token.Pos) map[types.Object]bool {
	m := make(map[types.Object]bool)
	if body == nil {
		return m
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < after {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if o := baseObject(pass, arg); o != nil {
				m[o] = true
			}
		}
		return true
	})
	return m
}

// enclosingFuncBody returns the body of the innermost function
// declaration or literal containing n within file f.
func enclosingFuncBody(f *ast.File, n ast.Node) *ast.BlockStmt {
	var body *ast.BlockStmt
	ast.Inspect(f, func(node ast.Node) bool {
		if node == nil {
			return false
		}
		if node.Pos() > n.Pos() || node.End() < n.End() {
			return false // subtree does not contain n
		}
		switch fd := node.(type) {
		case *ast.FuncDecl:
			if fd.Body != nil {
				body = fd.Body
			}
		case *ast.FuncLit:
			body = fd.Body
		}
		return true
	})
	return body
}
