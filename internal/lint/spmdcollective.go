package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// SPMDCollective proves collective call sites rank-uniform: a
// collective (Barrier, Split, or any function marked
// //a2alint:collective — the promotion allreduce, the tunedV bucket
// agreement) deadlocks the world if any rank branches differently
// before entering it, so a collective call must not sit under a
// condition that varies by rank. Rank-varying means the condition
// mentions comm.Rank(), a variable assigned from it, or a
// conventionally named rank variable.
var SPMDCollective = &Analyzer{
	Name: "spmdcollective",
	Doc: `collective calls (Barrier, Split, //a2alint:collective-marked functions)
must not be control-dependent on rank-varying expressions: a rank that
skips — or repeats — a collective deadlocks every other rank of the
communicator. Route-compiled schedules and the promotion allreduce both
rely on every rank tracing the same collective sequence.`,
	Run: runSPMDCollective,
}

// builtinCollectives are method names that are collective over the
// communicator by the comm.Comm contract.
var builtinCollectives = map[string]bool{
	"Barrier": true,
	"Split":   true,
}

// rankVarNames are identifier spellings conventionally bound to this
// rank's id; seeing one in a branch condition guarding a collective is
// rank-varying control flow even without tracing where it came from.
var rankVarNames = map[string]bool{
	"rank": true, "myrank": true, "selfrank": true, "worldrank": true,
}

func runSPMDCollective(pass *Pass) error {
	marked := markedCollectives(pass)
	for _, f := range pass.Files {
		var stack []ast.Node
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return false
			}
			stack = append(stack, n)
			if call, ok := n.(*ast.CallExpr); ok {
				if name, ok := collectiveName(pass, call, marked); ok {
					checkCallSite(pass, call, name, stack)
				}
			}
			return true
		}
		ast.Inspect(f, walk)
	}
	return nil
}

// markedCollectives resolves //a2alint:collective directives to the
// function objects they annotate: the directive line must be within
// the doc comment of (or immediately above) a function declaration.
func markedCollectives(pass *Pass) map[*types.Func]bool {
	lines := make(map[string]map[int]bool) // file -> directive line
	for _, d := range pass.Directives {
		if d.Kind != DirCollective {
			continue
		}
		if lines[d.Pos.Filename] == nil {
			lines[d.Pos.Filename] = make(map[int]bool)
		}
		lines[d.Pos.Filename][d.Pos.Line] = true
	}
	marked := make(map[*types.Func]bool)
	if len(lines) == 0 {
		return marked
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			pos := pass.Fset.Position(fd.Pos())
			ok = lines[pos.Filename][pos.Line-1]
			if fd.Doc != nil {
				docPos := pass.Fset.Position(fd.Doc.Pos())
				for l := docPos.Line; l < pos.Line && !ok; l++ {
					ok = lines[pos.Filename][l]
				}
			}
			if ok {
				if fn, isFn := pass.TypesInfo.Defs[fd.Name].(*types.Func); isFn {
					marked[fn] = true
				}
			}
		}
	}
	return marked
}

// collectiveName reports whether call enters a collective, and which.
func collectiveName(pass *Pass, call *ast.CallExpr, marked map[*types.Func]bool) (string, bool) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return "", false
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok {
		return "", false
	}
	if marked[fn] {
		return fn.Name(), true
	}
	// Only methods count for the builtin set: a free function named
	// Split is not communicator-collective.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && builtinCollectives[fn.Name()] {
		return fn.Name(), true
	}
	return "", false
}

// checkCallSite walks the enclosing-statement stack from the call out
// to the nearest function boundary, flagging any branch or loop whose
// controlling expression varies by rank.
func checkCallSite(pass *Pass, call *ast.CallExpr, name string, stack []ast.Node) {
	tainted := map[types.Object]bool{}
	// Find the innermost enclosing function to taint rank-derived
	// variables within it.
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			taintRankVars(pass, fn.Body, tainted)
		case *ast.FuncLit:
			taintRankVars(pass, fn.Body, tainted)
		default:
			continue
		}
		break
	}
	child := ast.Node(call)
	for i := len(stack) - 2; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return // function boundary: the caller's control flow is its own problem
		case *ast.IfStmt:
			// Only the branch bodies are control-dependent; the init and
			// condition themselves always execute.
			if (n.Body != nil && within(child, n.Body)) || (n.Else != nil && within(child, n.Else)) {
				if expr := rankVarying(pass, n.Cond, tainted); expr != "" {
					pass.Reportf(call.Pos(), "collective %s is control-dependent on rank-varying condition %s: a rank that branches differently deadlocks the world", name, expr)
				}
			}
		case *ast.SwitchStmt:
			if n.Tag != nil {
				if expr := rankVarying(pass, n.Tag, tainted); expr != "" {
					pass.Reportf(call.Pos(), "collective %s is control-dependent on rank-varying switch %s: a rank that branches differently deadlocks the world", name, expr)
				}
			}
		case *ast.CaseClause:
			for _, e := range n.List {
				if expr := rankVarying(pass, e, tainted); expr != "" {
					pass.Reportf(call.Pos(), "collective %s is control-dependent on rank-varying case %s: a rank that branches differently deadlocks the world", name, expr)
				}
			}
		case *ast.ForStmt:
			if n.Cond != nil && within(child, n.Body) {
				if expr := rankVarying(pass, n.Cond, tainted); expr != "" {
					pass.Reportf(call.Pos(), "collective %s runs a rank-varying number of times (loop condition %s): ranks fall out of step on the collective sequence", name, expr)
				}
			}
		}
		child = stack[i]
	}
}

func within(n ast.Node, outer ast.Node) bool {
	return outer.Pos() <= n.Pos() && n.End() <= outer.End()
}

// taintRankVars records variables assigned (anywhere in the function)
// from an expression containing a Rank() call: `r := c.Rank()` makes
// `r` rank-varying for the rest of the function.
func taintRankVars(pass *Pass, body *ast.BlockStmt, tainted map[types.Object]bool) {
	if body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if len(as.Lhs) == len(as.Rhs) {
			for i, rhs := range as.Rhs {
				if hasRankCall(pass, rhs) {
					taintObj(pass, as.Lhs[i], tainted)
				}
			}
		} else if len(as.Rhs) == 1 && hasRankCall(pass, as.Rhs[0]) {
			for _, lhs := range as.Lhs {
				taintObj(pass, lhs, tainted)
			}
		}
		return true
	})
}

func taintObj(pass *Pass, lhs ast.Expr, tainted map[types.Object]bool) {
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	if o := pass.TypesInfo.Defs[id]; o != nil {
		tainted[o] = true
	} else if o := pass.TypesInfo.Uses[id]; o != nil {
		tainted[o] = true
	}
}

func hasRankCall(pass *Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isRankCall(call) {
			found = true
		}
		return !found
	})
	return found
}

func isRankCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Rank" && len(call.Args) == 0
}

// rankVarying returns a short rendering of the first rank-varying
// subexpression of e, or "" when e is rank-uniform.
func rankVarying(pass *Pass, e ast.Expr, tainted map[types.Object]bool) string {
	var hit string
	ast.Inspect(e, func(n ast.Node) bool {
		if hit != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if isRankCall(n) {
				hit = "Rank()"
				return false
			}
		case *ast.Ident:
			if tainted[pass.TypesInfo.Uses[n]] || rankVarNames[strings.ToLower(n.Name)] {
				hit = n.Name
				return false
			}
		}
		return true
	})
	return hit
}
