package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// TagDiscipline proves message-tag hygiene at every point-to-point
// call site: an argument bound to a parameter named tag/stag/rtag (or
// any *tag suffix, matching the comm.Comm and sim.Network signatures)
// must derive from a declared tag constant (tagAlltoall, TagBase
// arithmetic, a tag-typed parameter) — never a raw integer literal. A
// raw tag that collides with a schedule round's TagBase+ri corrupts
// FlowReport keying and round attribution, and two raw tags colliding
// with each other cross-matches messages between overlapping
// exchanges.
var TagDiscipline = &Analyzer{
	Name: "tagdiscipline",
	Doc: `message tags must derive from declared tag constants or TagBase
arithmetic, never raw integer literals: tag collisions cross-match
messages between exchanges and corrupt FlowReport round attribution.
An expression passes if it mentions at least one named constant or
variable; it fails if it is built from integer literals alone.`,
	Run: runTagDiscipline,
}

func runTagDiscipline(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sig := calleeSignature(pass, call)
			if sig == nil {
				return true
			}
			for i, arg := range call.Args {
				if i >= sig.Params().Len() {
					break // variadic tail cannot be a tag in these APIs
				}
				p := sig.Params().At(i)
				if !isTagParam(p) {
					continue
				}
				if lit := literalOnly(pass, arg); lit {
					pass.Reportf(arg.Pos(), "raw integer literal for tag parameter %q; derive tags from a declared tag constant (tagXxx or TagBase arithmetic) so exchanges cannot collide", p.Name())
				}
			}
			return true
		})
	}
	return nil
}

func calleeSignature(pass *Pass, call *ast.CallExpr) *types.Signature {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return nil
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	sig, _ := fn.Type().(*types.Signature)
	return sig
}

// isTagParam matches the tag parameters of the comm/sim messaging
// APIs: int-typed, named "tag" or ending in "tag" (stag, rtag).
func isTagParam(p *types.Var) bool {
	if p == nil || p.Name() == "" {
		return false
	}
	b, ok := p.Type().Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsInteger == 0 {
		return false
	}
	return strings.HasSuffix(strings.ToLower(p.Name()), "tag")
}

// literalOnly reports whether e is built purely from integer literals
// (possibly combined with operators, parens, and conversions): no
// named constant, no variable, no call with operands of its own.
func literalOnly(pass *Pass, e ast.Expr) bool {
	sawLiteral := false
	sawNamed := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BasicLit:
			if n.Kind == token.INT {
				sawLiteral = true
			}
		case *ast.Ident:
			switch pass.TypesInfo.Uses[n].(type) {
			case *types.Const, *types.Var, *types.Func:
				sawNamed = true
			}
		case *ast.SelectorExpr:
			switch pass.TypesInfo.Uses[n.Sel].(type) {
			case *types.Const, *types.Var, *types.Func:
				sawNamed = true
			}
		}
		return !sawNamed
	})
	return sawLiteral && !sawNamed
}
