// Package fix is the suppression-directive golden fixture, run under
// the simdet analyzer: well-formed ignores silence exactly one line,
// malformed ones are findings themselves and silence nothing.
package fix

import "time"

func suppressedAbove() {
	//a2alint:ignore simdet wall clock feeds an operator log line, not the simulation
	_ = time.Now()
}

func suppressedSameLine() {
	_ = time.Now() //a2alint:ignore simdet operator-facing timestamp outside the timed region
}

func suppressionIsPerLine() {
	//a2alint:ignore simdet only this line is justified
	_ = time.Now()
	_ = time.Now() // want "time.Now reads the wall clock"
}

func wrongAnalyzerName() {
	//a2alint:ignore errattr suppressing the wrong analyzer does nothing here
	_ = time.Now() // want "time.Now reads the wall clock"
}

func missingReason() {
	//a2alint:ignore simdet // want "needs a reason"
	_ = time.Now() // want "time.Now reads the wall clock"
}

func unknownAnalyzer() {
	//a2alint:ignore nosuchanalyzer because I say so // want "known analyzer name"
	_ = time.Now() // want "time.Now reads the wall clock"
}

func unknownDirective() {
	//a2alint:frobnicate // want "unknown directive"
	_ = time.Unix(0, 0)
}

func emptyDirective() {
	//a2alint: // want "empty directive"
	_ = time.Unix(0, 0)
}
