// Package fix is the errattr golden fixture: error flows on
// attributable paths must keep the cause chain and carry identifying
// context.
package fix

import (
	"errors"
	"fmt"
)

// errRejected is the approved form for constant messages: a sentinel,
// testable with errors.Is across package boundaries.
var errRejected = errors.New("fix: generator rejected this world")

func wrapWithContext(gen string, p, rank int, err error) error {
	return fmt.Errorf("fix: %s@p%d rank %d: %w", gen, p, rank, err)
}

func flattenedCause(gen string, err error) error {
	return fmt.Errorf("fix: %s failed: %v", gen, err) // want "discards the chain"
}

func stringedCause(err error) error {
	return fmt.Errorf("fix: %s", err) // want "discards the chain"
}

func bareWrap(err error) error {
	return fmt.Errorf("%w", err) // want "adds no context"
}

func constantMessage() error {
	return fmt.Errorf("nil schedule") // want "constant error message"
}

func percentEscapeOnly() error {
	return fmt.Errorf("100%% loss, no context") // want "constant error message"
}

func contextualNoCause(p, rank int) error {
	return fmt.Errorf("fix: rank %d out of range 0..%d", rank, p-1)
}

func customErrType(gen string, err *wrappedErr) error {
	return fmt.Errorf("fix: %s: %v", gen, err) // want "discards the chain"
}

type wrappedErr struct{ msg string }

func (w *wrappedErr) Error() string { return w.msg }

func notErrorf(err error) string {
	return fmt.Sprintf("%v", err) // Sprintf renders for humans; only Errorf builds chains
}

func dynamicFormat(format string, err error) error {
	return fmt.Errorf(format, err) // dynamic format: out of static reach
}
