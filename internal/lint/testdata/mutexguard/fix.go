// Package fix is the mutexguard golden fixture: accesses to fields
// annotated "guarded by <mutex>" must sit in functions that lock that
// mutex.
package fix

import "sync"

type opState struct {
	mu      sync.Mutex
	pending *int // guarded by mu
	stats   int  // unannotated: the analyzer has no opinion
}

func (s *opState) start() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pending != nil {
		return false
	}
	v := 1
	s.pending = &v
	return true
}

func (s *opState) racyPeek() bool {
	return s.pending != nil // want "guarded by mu, but racyPeek never locks it"
}

func (s *opState) bumpStats() {
	s.stats++ // unannotated field: fine without the lock
}

func newOpState() *opState {
	v := 0
	return &opState{pending: &v} // composite literal: not shared yet
}

type rwGuarded struct {
	mu    sync.RWMutex
	table map[string]int // guarded by mu
}

func (g *rwGuarded) read(k string) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.table[k]
}

func (g *rwGuarded) racyRead(k string) int {
	return g.table[k] // want "guarded by mu, but racyRead never locks it"
}

type embedded struct {
	sync.Mutex
	m map[string]bool // guarded by Mutex
}

func (e *embedded) set(k string) {
	e.Lock()
	defer e.Unlock()
	if e.m == nil {
		e.m = make(map[string]bool)
	}
	e.m[k] = true
}

func (e *embedded) racySet(k string) {
	e.m[k] = true // want "guarded by Mutex, but racySet never locks it"
}

// evictLocked-style helpers: the *Locked suffix is the documented
// promise that the caller holds the lock, so no finding and no
// directive needed.
func (s *opState) dropLocked() {
	s.pending = nil
}

// Annotations work on anonymous-struct singletons too (typed var and
// composite-literal forms).
var hook struct {
	mu sync.RWMutex
	f  func() // guarded by mu
}

func setHook(fn func()) {
	hook.mu.Lock()
	defer hook.mu.Unlock()
	hook.f = fn
}

func racyHook() func() {
	return hook.f // want "guarded by mu, but racyHook never locks it"
}

var registry = struct {
	sync.Mutex
	seen map[string]bool // guarded by Mutex
}{seen: make(map[string]bool)}

func record(k string) {
	registry.Lock()
	defer registry.Unlock()
	registry.seen[k] = true
}

func racyRecord(k string) bool {
	return registry.seen[k] // want "guarded by Mutex, but racyRecord never locks it"
}

type misdeclared struct {
	n int // guarded by lock // want "not a field of misdeclared"
}

func helperWithJustification(s *opState) bool {
	//a2alint:ignore mutexguard caller in start holds mu for the whole exchange
	return s.pending != nil
}
