// Package fix is the simdet golden fixture: each flagged line carries
// a want comment; everything else must stay silent.
package fix

import (
	"math/rand"
	"sort"
	"time"
)

func clock() time.Duration {
	start := time.Now() // want "time.Now reads the wall clock"
	base := time.Unix(0, 0)
	_ = base
	return time.Since(start) // want "time.Since reads the wall clock"
}

func noise(seed int64) int {
	rng := rand.New(rand.NewSource(seed)) // constructors build seed-stable streams
	_ = rand.Intn(4)                      // want "process-global generator"
	rand.Shuffle(3, func(i, j int) {})    // want "process-global generator"
	return rng.Intn(4)                    // method on an explicit stream: fine
}

func mapAppend(m map[string]int) []string {
	var out []string
	for k := range m { // want "map iteration order"
		out = append(out, k)
	}
	return out
}

func mapFloatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want "floating-point accumulation"
		sum += v
	}
	return sum
}

func mapStringConcat(m map[string]string) string {
	s := ""
	for _, v := range m { // want "string concatenation"
		s += v
	}
	return s
}

func mapSend(m map[int]int, ch chan int) {
	for k := range m { // want "channel send"
		ch <- k
	}
}

func sortedKeysIdiom(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // the sorted-keys idiom: collect, then sort
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedAfterNestedAppend(moves map[int][]int) [][]int {
	var rows [][]int
	for _, blocks := range moves { // appended rows are sorted below
		rows = append(rows, blocks)
	}
	sort.Slice(rows, func(i, j int) bool { return len(rows[i]) < len(rows[j]) })
	return rows
}

func keyedWrites(m map[string]int) map[string][]int {
	byKey := make(map[string][]int)
	for k, v := range m { // distinct element per iteration: order-free
		byKey[k] = append(byKey[k], v)
	}
	return byKey
}

func intSum(m map[string]int) int {
	n := 0
	for _, v := range m { // integer accumulation commutes exactly
		n += v
	}
	return n
}

func sliceRange(xs []float64) float64 {
	var sum float64
	for _, v := range xs { // slice order is deterministic
		sum += v
	}
	return sum
}
