// Package fix is the spmdcollective golden fixture: collective calls
// under rank-varying control flow are flagged; rank-uniform branching
// and point-to-point traffic are not.
package fix

// Comm mirrors the communicator subset the analyzer keys on.
type Comm interface {
	Rank() int
	Size() int
	Barrier() error
	Split(color, key int) (Comm, error)
	Send(b []byte, dst, tag int) error
}

func uniform(c Comm) error {
	if c.Size() > 1 { // size is rank-uniform: every rank branches alike
		return c.Barrier()
	}
	return nil
}

func rootOnly(c Comm) error {
	if c.Rank() == 0 {
		return c.Barrier() // want "control-dependent on rank-varying condition Rank"
	}
	return nil
}

func taintedLocal(c Comm) error {
	n, r := c.Size(), c.Rank()
	if r < n/2 {
		if err := c.Barrier(); err != nil { // want "rank-varying condition r"
			return err
		}
	}
	return nil
}

func namedRankParam(c Comm, rank int) error {
	if rank%2 == 0 {
		_, err := c.Split(0, 0) // want "rank-varying condition rank"
		return err
	}
	return nil
}

func switchOnRank(c Comm) error {
	switch c.Rank() {
	case 0:
		return c.Barrier() // want "rank-varying switch Rank"
	default:
		return nil
	}
}

func rankTrips(c Comm) error {
	for i := 0; i < c.Rank(); i++ {
		if err := c.Barrier(); err != nil { // want "rank-varying number of times"
			return err
		}
	}
	return nil
}

func pointToPointIsFree(c Comm) error {
	if c.Rank() == 0 { // rank-dependent point-to-point is how algorithms work
		return c.Send(nil, 1, 0)
	}
	return nil
}

func uniformLoop(c Comm) error {
	for i := 0; i < c.Size(); i++ { // uniform trip count: fine
		if err := c.Barrier(); err != nil {
			return err
		}
	}
	return nil
}

// agree is this package's own collective, marked so the analyzer
// covers its call sites like Barrier's.
//
//a2alint:collective
func agree(c Comm) error {
	return c.Barrier()
}

func promote(c Comm) error {
	if c.Rank() == 0 {
		return agree(c) // want "collective agree is control-dependent"
	}
	return agree(c)
}

// Split is a free function that happens to share a builtin collective
// name; only methods count for the builtin set.
func Split(n int) int { return n / 2 }

func freeFunctionName(c Comm) int {
	if c.Rank() == 0 {
		return Split(4)
	}
	return Split(2)
}
