// Package fix is the tagdiscipline golden fixture: tag-named integer
// parameters must receive declared-constant-derived expressions, never
// raw literals.
package fix

// Declared tag constants — the approved source of tag values.
const (
	tagExchange = 101
	tagBase     = 401
)

// Comm mirrors the tag-carrying messaging signatures.
type Comm interface {
	Send(b []byte, dst, tag int) error
	Recv(b []byte, src, tag int) error
	Sendrecv(sb []byte, dst, stag int, rb []byte, src, rtag int) error
}

func constTag(c Comm) error {
	return c.Send(nil, 1, tagExchange)
}

func tagArithmetic(c Comm, round int) error {
	return c.Send(nil, 1, tagBase+round)
}

func passthrough(c Comm, tag int) error {
	return c.Recv(nil, 0, tag) // a variable carries its provenance
}

func rawLiteral(c Comm) error {
	return c.Send(nil, 1, 401) // want "raw integer literal for tag parameter"
}

func rawArithmetic(c Comm) error {
	return c.Recv(nil, 0, 7*8+1) // want "raw integer literal for tag parameter"
}

func offsetFromVariable(c Comm, tag int) error {
	return c.Recv(nil, 0, tag+1) // an offset from a provenanced tag is fine
}

func rawSendrecv(c Comm) error {
	return c.Sendrecv(nil, 1, 9, nil, 2, tagBase) // want "raw integer literal for tag parameter .stag."
}

func converted(c Comm) error {
	return c.Send(nil, 1, int(5)) // want "raw integer literal for tag parameter"
}

func notATagParam(dst, count int) int {
	return clamp(dst, 3) // "count"-style params take literals freely
}

func clamp(v, limit int) int {
	if v > limit {
		return limit
	}
	return v
}
