// Package model provides closed-form (LogGP-style) cost predictions for
// every all-to-all algorithm in the family — the paper's Section 5 plan to
// "develop a model to evaluate these impacts at capability-scale". Where
// the discrete-event simulator (internal/sim) replays every message to
// capture queueing and synchronization, this model evaluates arithmetic
// bounds in microseconds, so it can rank algorithms at thousands of nodes
// instantly. Predictions are validated against the simulator in tests:
// absolute values differ (the model ignores convoy and matching effects),
// but winners and crossovers must agree on the paper's regimes.
package model

import (
	"fmt"
	"math"
	"sort"

	"alltoallx/internal/netmodel"
)

// Config describes the job to predict.
type Config struct {
	Machine netmodel.Params
	Nodes   int
	PPN     int
	// Block is bytes per rank pair.
	Block int
	// PPL and PPG parameterize the leader/group algorithms (defaults 4).
	PPL int
	PPG int
}

func (c Config) withDefaults() (Config, error) {
	if c.Nodes <= 0 || c.PPN <= 0 || c.Block <= 0 {
		return c, fmt.Errorf("model: nodes, ppn and block must be positive (%d, %d, %d)", c.Nodes, c.PPN, c.Block)
	}
	if c.PPL == 0 {
		c.PPL = 4
	}
	if c.PPG == 0 {
		c.PPG = 4
	}
	if c.PPN%c.PPL != 0 || c.PPN%c.PPG != 0 {
		return c, fmt.Errorf("model: PPL %d and PPG %d must divide ppn %d", c.PPL, c.PPG, c.PPN)
	}
	return c, nil
}

// Prediction is one algorithm's predicted cost decomposition.
type Prediction struct {
	Algorithm string
	// Seconds is the predicted total.
	Seconds float64
	// InterSeconds and IntraSeconds decompose wire vs on-node time;
	// LocalSeconds covers gathers/scatters/repacks.
	InterSeconds float64
	IntraSeconds float64
	LocalSeconds float64
}

// nicTime returns the per-node NIC port time for msgs messages of the
// given size each (the aggregate injection bound every node-aware
// algorithm targets).
func nicTime(m *netmodel.Params, msgs int, bytes float64) float64 {
	return float64(msgs)*m.NICMsgCost + float64(msgs)*bytes/m.NICBW
}

// copyPass returns the single-core cost of repacking vol bytes in blocks
// block copies.
func copyPass(m *netmodel.Params, vol float64, blocks int) float64 {
	return vol/m.CopyBW + float64(blocks)*m.CopyBlockCost
}

// intraXchg returns the on-node cost for each rank exchanging per-pair
// bytes with peers other ranks of its node: receive-side copies serialize
// on the rank's core, and the node's buses carry the volume.
func intraXchg(m *netmodel.Params, peers int, bytes float64, ppn int) float64 {
	core := float64(peers) * (bytes/m.CopyBW + m.RecvOverhead + m.SendOverhead)
	// Bus load: all ranks' traffic over the node's NUMA buses.
	busVol := float64(ppn) * float64(peers) * bytes
	bus := busVol / (m.NumaBW * float64(m.Node.NumaPerNode()))
	if bus > core {
		return bus
	}
	return core
}

// steps returns a latency/synchronization term for k dependent exchange
// rounds at the given locality latency.
func steps(m *netmodel.Params, k int, lat float64) float64 {
	return float64(k) * (lat + m.SendOverhead + m.RecvOverhead)
}

// Predict returns the cost prediction for one algorithm.
func Predict(algo string, cfg Config) (Prediction, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return Prediction{}, err
	}
	m := &c.Machine
	p := c.Nodes * c.PPN
	s := float64(c.Block)
	ppn := c.PPN
	nn := c.Nodes
	pr := Prediction{Algorithm: algo}
	switch algo {
	case "pairwise", "nonblocking", "batched":
		// Direct: every rank sends to every off-node rank through the NIC.
		offNode := p - ppn
		pr.InterSeconds = nicTime(m, ppn*offNode, s)
		pr.IntraSeconds = intraXchg(m, ppn-1, s, ppn)
		if algo == "pairwise" {
			pr.LocalSeconds = steps(m, p-1, m.LatInterNode)
		}
	case "bruck":
		rounds := int(math.Ceil(math.Log2(float64(p))))
		// Each round ships ~half the local volume; rounds with stride
		// below ppn stay on the node.
		interRounds := 0
		for k := 1; k < p; k <<= 1 {
			if k >= ppn {
				interRounds++
			}
		}
		volPerRound := s * float64(p) / 2
		pr.InterSeconds = nicTime(m, interRounds*ppn, volPerRound)
		pr.IntraSeconds = float64(rounds-interRounds) * volPerRound / m.CopyBW * 1
		// Pack/unpack every round plus the two rotations.
		pr.LocalSeconds = float64(rounds)*2*copyPass(m, volPerRound, p/2) +
			2*copyPass(m, s*float64(p), p) + steps(m, rounds, m.LatInterNode)
	case "hierarchical", "multileader":
		q := c.PPL
		if algo == "hierarchical" {
			q = ppn
		}
		nLead := (ppn / q) * nn
		// Gather/scatter: the leader absorbs q-1 members' full buffers.
		gather := float64(q-1) * (s * float64(p)) / m.CopyBW
		// Leader exchange: every leader pair swaps q*q*s.
		leadersPerNode := ppn / q
		interMsgs := leadersPerNode * (nLead - leadersPerNode)
		pr.InterSeconds = nicTime(m, interMsgs, float64(q*q)*s)
		pr.LocalSeconds = 2*gather + 2*copyPass(m, s*float64(p*q), p*q)
		pr.IntraSeconds = steps(m, nLead-1, m.LatInterNode)
	case "node-aware", "locality-aware":
		g := c.PPG
		if algo == "node-aware" {
			g = ppn
		}
		groupsPerNode := ppn / g
		tg := groupsPerNode * nn
		// Inter phase: each rank exchanges g*s with one rank per group.
		offGroups := tg - groupsPerNode
		pr.InterSeconds = nicTime(m, ppn*offGroups, float64(g)*s)
		// Intra phase: tg*s with each of g-1 group mates (NUMA-near).
		pr.IntraSeconds = intraXchg(m, g-1, float64(tg)*s, ppn)
		pr.LocalSeconds = 3*copyPass(m, s*float64(p), p) + steps(m, tg-1, m.LatInterNode)
	case "multileader-node-aware":
		q := c.PPL
		nLead := ppn / q
		gather := float64(q-1) * (s * float64(p)) / m.CopyBW
		// Inter: each leader sends one q*ppn*s message per other node.
		pr.InterSeconds = nicTime(m, nLead*(nn-1), float64(q*ppn)*s)
		// Intra: leaders swap nn*q*q*s within the node.
		pr.IntraSeconds = intraXchg(m, nLead-1, float64(nn*q*q)*s, nLead)
		pr.LocalSeconds = 2*gather + 3*copyPass(m, s*float64(p*q), p*q) + steps(m, nn-1, m.LatInterNode)
	case "system-mpi":
		prof := m.Sys
		inner := prof.LargeAlgo
		switch {
		case c.Block <= prof.SmallMax:
			inner = prof.SmallAlgo
		case c.Block <= prof.MidMax:
			inner = prof.MidAlgo
		}
		sub, err := Predict(inner, cfg)
		if err != nil {
			return Prediction{}, err
		}
		pr = sub
		pr.Algorithm = "system-mpi"
		pr.InterSeconds *= prof.OverheadScale
		pr.IntraSeconds *= prof.OverheadScale
		pr.LocalSeconds *= prof.OverheadScale
	default:
		return Prediction{}, fmt.Errorf("model: unknown algorithm %q", algo)
	}
	pr.Seconds = pr.InterSeconds + pr.IntraSeconds + pr.LocalSeconds
	return pr, nil
}

// Algorithms returns the names Predict understands, in a stable order.
func Algorithms() []string {
	return []string{
		"bruck", "hierarchical", "locality-aware", "multileader",
		"multileader-node-aware", "node-aware", "nonblocking", "pairwise", "system-mpi",
	}
}

// Rank predicts every algorithm for cfg and returns them fastest-first.
func Rank(cfg Config) ([]Prediction, error) {
	out := make([]Prediction, 0, len(Algorithms()))
	for _, a := range Algorithms() {
		pr, err := Predict(a, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, pr)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Seconds < out[j].Seconds })
	return out, nil
}

// Crossover returns the block size (within [lo, hi], powers of two) where
// algorithm b first becomes faster than algorithm a, or 0 if it never
// does — the analytic counterpart of reading a figure's crossover point.
func Crossover(a, b string, cfg Config, lo, hi int) (int, error) {
	for blk := lo; blk <= hi; blk *= 2 {
		cfg.Block = blk
		pa, err := Predict(a, cfg)
		if err != nil {
			return 0, err
		}
		pb, err := Predict(b, cfg)
		if err != nil {
			return 0, err
		}
		if pb.Seconds < pa.Seconds {
			return blk, nil
		}
	}
	return 0, nil
}
