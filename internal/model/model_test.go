package model

import (
	"testing"

	"alltoallx/internal/bench"
	"alltoallx/internal/core"
	"alltoallx/internal/netmodel"
)

func daneCfg(block int) Config {
	return Config{Machine: netmodel.Dane(), Nodes: 32, PPN: 112, Block: block}
}

func TestPredictValidation(t *testing.T) {
	t.Parallel()
	if _, err := Predict("node-aware", Config{Machine: netmodel.Dane()}); err == nil {
		t.Error("zero config accepted")
	}
	cfg := daneCfg(64)
	cfg.PPL = 5 // does not divide 112
	if _, err := Predict("multileader", cfg); err == nil {
		t.Error("non-dividing PPL accepted")
	}
	if _, err := Predict("warp-drive", daneCfg(64)); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestPredictPositiveAndDecomposed(t *testing.T) {
	t.Parallel()
	for _, algo := range Algorithms() {
		for _, blk := range []int{4, 256, 4096} {
			pr, err := Predict(algo, daneCfg(blk))
			if err != nil {
				t.Fatalf("%s @%d: %v", algo, blk, err)
			}
			if pr.Seconds <= 0 {
				t.Errorf("%s @%d: non-positive prediction", algo, blk)
			}
			sum := pr.InterSeconds + pr.IntraSeconds + pr.LocalSeconds
			if diff := pr.Seconds - sum; diff > 1e-12 || diff < -1e-12 {
				t.Errorf("%s @%d: decomposition %g != total %g", algo, blk, sum, pr.Seconds)
			}
		}
	}
}

// TestPaperRegimes: the analytic model must reproduce the paper's regime
// structure on Dane at 32 nodes.
func TestPaperRegimes(t *testing.T) {
	t.Parallel()
	// Small messages: multileader-node-aware beats node-aware, bruck and
	// the direct exchanges.
	small := daneCfg(4)
	mlna, _ := Predict("multileader-node-aware", small)
	for _, other := range []string{"node-aware", "bruck", "pairwise", "hierarchical"} {
		pr, _ := Predict(other, small)
		if mlna.Seconds >= pr.Seconds {
			t.Errorf("at 4 B, multileader-node-aware (%.3e) should beat %s (%.3e)", mlna.Seconds, other, pr.Seconds)
		}
	}
	// Large messages: node-aware family beats hierarchical and direct.
	large := daneCfg(4096)
	na, _ := Predict("node-aware", large)
	for _, other := range []string{"hierarchical", "pairwise"} {
		pr, _ := Predict(other, large)
		if na.Seconds >= pr.Seconds {
			t.Errorf("at 4096 B, node-aware (%.3e) should beat %s (%.3e)", na.Seconds, other, pr.Seconds)
		}
	}
	// Hierarchical's gather/scatter dominate at large sizes.
	hier, _ := Predict("hierarchical", large)
	if hier.LocalSeconds < hier.InterSeconds {
		t.Errorf("hierarchical at 4096 B should be local-phase bound: %+v", hier)
	}
	// Node-aware: inter-node dominates at every size (Figures 14-15).
	for _, blk := range []int{4, 256, 4096} {
		pr, _ := Predict("node-aware", daneCfg(blk))
		if pr.InterSeconds < pr.IntraSeconds {
			t.Errorf("node-aware @%d: intra (%.3e) above inter (%.3e)", blk, pr.IntraSeconds, pr.InterSeconds)
		}
	}
}

func TestRankSorted(t *testing.T) {
	t.Parallel()
	ranked, err := Rank(daneCfg(1024))
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != len(Algorithms()) {
		t.Fatalf("ranked %d algorithms", len(ranked))
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Seconds < ranked[i-1].Seconds {
			t.Errorf("not sorted at %d", i)
		}
	}
}

func TestCrossover(t *testing.T) {
	t.Parallel()
	// Somewhere in 4..4096, node-aware must overtake
	// multileader-node-aware (the paper's small/large regime boundary).
	cfg := daneCfg(0)
	x, err := Crossover("multileader-node-aware", "node-aware", cfg, 4, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if x == 0 {
		t.Error("node-aware never overtakes multileader-node-aware in 4..4096")
	}
	// Pairwise never beats node-aware at this scale.
	x, err = Crossover("node-aware", "pairwise", cfg, 4, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if x != 0 {
		t.Errorf("pairwise unexpectedly overtakes node-aware at %d B", x)
	}
}

// TestModelAgreesWithSimulatorOnWinners: at a reduced scale both the
// analytic model and the discrete-event simulator must pick the same
// winner among the paper's main contenders in each regime.
func TestModelAgreesWithSimulatorOnWinners(t *testing.T) {
	t.Parallel()
	m := netmodel.Dane()
	contenders := map[string]core.Options{
		"multileader-node-aware": {PPL: 4},
		"node-aware":             {},
		"hierarchical":           {},
	}
	for _, blk := range []int{4, 4096} {
		bestSim, bestModel := "", ""
		simBest, modelBest := 0.0, 0.0
		for algo, opts := range contenders {
			pt, err := bench.Measure(bench.Config{
				Machine: m, Nodes: 8, PPN: 16, Algo: algo, Opts: opts, Block: blk, Runs: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			if bestSim == "" || pt.Seconds < simBest {
				bestSim, simBest = algo, pt.Seconds
			}
			pr, err := Predict(algo, Config{Machine: m, Nodes: 8, PPN: 16, Block: blk})
			if err != nil {
				t.Fatal(err)
			}
			if bestModel == "" || pr.Seconds < modelBest {
				bestModel, modelBest = algo, pr.Seconds
			}
		}
		if bestSim != bestModel {
			t.Errorf("at %d B: simulator picks %s, model picks %s", blk, bestSim, bestModel)
		}
	}
}

// TestCapabilityScale: the model must evaluate instantly far beyond what
// the simulator could replay (the paper's capability-scale ambition).
func TestCapabilityScale(t *testing.T) {
	t.Parallel()
	cfg := Config{Machine: netmodel.Tuolomne(), Nodes: 4096, PPN: 96, Block: 1024}
	ranked, err := Rank(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ranked[0].Seconds <= 0 {
		t.Fatal("degenerate capability-scale prediction")
	}
	// At 4096 nodes the aggregating algorithms must dominate direct ones.
	pos := map[string]int{}
	for i, pr := range ranked {
		pos[pr.Algorithm] = i
	}
	if pos["pairwise"] < pos["multileader-node-aware"] && pos["pairwise"] < pos["node-aware"] {
		t.Errorf("direct exchange outranks aggregation at 4096 nodes: %v", ranked)
	}
}
