// Package netmodel defines the first-order performance model of a
// many-core cluster and the presets for the paper's three systems (Table 1:
// Dane, Amber, Tuolomne). The model captures exactly the effects the
// paper's evaluation turns on:
//
//   - per-message CPU overheads and wire latency per locality level —
//     message-count costs, which the hierarchical and multi-leader+node-aware
//     algorithms reduce;
//   - a per-node NIC with finite bandwidth and a per-message processing
//     cost (Omni-Path is an onload design with a high per-message cost,
//     Slingshot-11 an offload design with a low one) — the injection
//     bottleneck that all node-aware schemes target;
//   - per-NUMA memory buses, an inter-socket link, and a per-core copy
//     engine — the intra-node redistribution costs that motivate
//     locality-aware aggregation;
//   - matching-queue search costs and an interleaved-sender penalty at the
//     NIC — why nonblocking exchanges degrade at scale and large sizes;
//   - lognormal noise and rare OS-noise spikes — why the paper reports the
//     minimum of three runs and observes nonblocking variability.
//
// Absolute simulated seconds are synthetic; the model is calibrated so that
// algorithm rankings, crossover message sizes, and scaling shapes match the
// paper's figures (see EXPERIMENTS.md).
package netmodel

import (
	"fmt"
	"strings"

	"alltoallx/internal/topo"
)

// SysProfile describes how the vendor ("system") MPI all-to-all is
// emulated on a machine: a three-tier size-thresholded algorithm selection
// (mirroring Open MPI's tuned decision function: Bruck for small blocks, a
// linear nonblocking exchange for mid sizes, pairwise for large) plus a
// tuning factor on software overheads. The paper notes the proprietary
// implementations are unknown but "likely Bruck" at small sizes.
type SysProfile struct {
	// SmallAlgo is used for blocks of at most SmallMax bytes.
	SmallAlgo string
	SmallMax  int
	// MidAlgo is used for blocks of at most MidMax bytes.
	MidAlgo string
	MidMax  int
	// LargeAlgo is used above MidMax ("pairwise" on Open MPI stacks;
	// "node-aware" emulates Cray MPICH's aggregating large-message path).
	LargeAlgo string
	// OverheadScale multiplies CPU/NIC software overheads for system-MPI
	// runs (<1 models vendor tuning).
	OverheadScale float64
}

// Params is the complete cost model for one machine.
type Params struct {
	// Name is the machine name as in Table 1.
	Name string
	// CPU, Network, MPIName, LibFabric reproduce the Table 1 columns.
	CPU, Network, MPIName, LibFabric string
	// Node is the node shape.
	Node topo.Spec

	// Wire/hop latency per locality level, seconds.
	LatIntraNuma   float64
	LatIntraSocket float64
	LatInterSocket float64
	LatInterNode   float64

	// SendOverhead and RecvOverhead are per-operation CPU costs, seconds.
	SendOverhead float64
	RecvOverhead float64
	// MatchCost is the cost per matching-queue entry scanned, seconds.
	MatchCost float64

	// CopyBW is the single-core memory copy rate (bytes/s): the rate of
	// Memcpy repacking and of intra-node receive-side copies.
	CopyBW float64
	// CopyBlockCost is the fixed per-block cost of a repack copy (loop and
	// address arithmetic): at 4-byte blocks, repacking is block-count
	// bound, not bandwidth bound.
	CopyBlockCost float64
	// NumaBW is the per-NUMA-domain memory bus rate shared by its cores.
	NumaBW float64
	// SocketLinkBW is the inter-socket (UPI-like) link rate per node.
	SocketLinkBW float64

	// NICBW is the per-direction NIC bandwidth per node.
	NICBW float64
	// NICMsgCost is the per-message processing time at each NIC port.
	NICMsgCost float64
	// BusMsgCost is the per-message cost at memory-bus resources.
	BusMsgCost float64
	// InterleavePenalty is the fractional slowdown of a NIC transfer when
	// the previous transfer on the port came from a different peer
	// (incast/interleaving inefficiency; zero disables it).
	InterleavePenalty float64

	// FabricLinkBW is the per-direction bandwidth (bytes/s) of one
	// direct-connect fabric link when the flow-level contention model is
	// enabled (sim.ClusterConfig.Fabric). The analytic model charges only
	// the NIC ports for inter-node traffic; the flow level additionally
	// books each message onto every fabric link its route traverses, so
	// two schedules with equal message counts but different per-link load
	// become distinguishable. Zero disables the flow level for this
	// machine (a run requesting a fabric then fails fast).
	FabricLinkBW float64
	// FabricQueueBytes is the per-link queue depth in bytes: bytes of
	// in-flight traffic a link buffers before backpressure holds the next
	// message upstream (blocked time in the congestion statistics).
	FabricQueueBytes int

	// EagerMax is the eager/rendezvous protocol threshold in bytes.
	EagerMax int

	// NoiseSigma is the lognormal sigma applied to per-op overheads;
	// SpikeProb/SpikeMean describe rare OS-noise detours (exponential with
	// mean SpikeMean seconds, probability SpikeProb per operation).
	NoiseSigma float64
	SpikeProb  float64
	SpikeMean  float64

	// Sys is the system-MPI emulation profile.
	Sys SysProfile
}

// Latency returns the wire/hop latency for a locality level.
func (p *Params) Latency(l topo.Level) float64 {
	switch l {
	case topo.IntraNuma:
		return p.LatIntraNuma
	case topo.IntraSocket:
		return p.LatIntraSocket
	case topo.InterSocket:
		return p.LatInterSocket
	case topo.InterNode:
		return p.LatInterNode
	}
	return 0
}

// Validate reports configuration mistakes.
func (p *Params) Validate() error {
	if err := p.Node.Validate(); err != nil {
		return err
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"LatIntraNuma", p.LatIntraNuma}, {"LatIntraSocket", p.LatIntraSocket},
		{"LatInterSocket", p.LatInterSocket}, {"LatInterNode", p.LatInterNode},
		{"SendOverhead", p.SendOverhead}, {"RecvOverhead", p.RecvOverhead},
		{"CopyBW", p.CopyBW}, {"NumaBW", p.NumaBW}, {"SocketLinkBW", p.SocketLinkBW},
		{"NICBW", p.NICBW},
	} {
		if f.v <= 0 {
			return fmt.Errorf("netmodel: %s must be positive in %q, got %g", f.name, p.Name, f.v)
		}
	}
	if p.MatchCost < 0 || p.NICMsgCost < 0 || p.BusMsgCost < 0 || p.InterleavePenalty < 0 {
		return fmt.Errorf("netmodel: negative per-message cost in %q", p.Name)
	}
	if p.FabricLinkBW < 0 {
		return fmt.Errorf("netmodel: FabricLinkBW must be non-negative in %q, got %g", p.Name, p.FabricLinkBW)
	}
	if p.FabricQueueBytes < 0 {
		return fmt.Errorf("netmodel: FabricQueueBytes must be non-negative in %q, got %d", p.Name, p.FabricQueueBytes)
	}
	if p.FabricLinkBW > 0 && p.FabricQueueBytes == 0 {
		return fmt.Errorf("netmodel: FabricLinkBW set without FabricQueueBytes in %q (a zero-depth link would backpressure every message)", p.Name)
	}
	if p.EagerMax < 0 {
		return fmt.Errorf("netmodel: EagerMax must be non-negative in %q", p.Name)
	}
	if p.NoiseSigma < 0 || p.SpikeProb < 0 || p.SpikeProb > 1 || p.SpikeMean < 0 {
		return fmt.Errorf("netmodel: invalid noise configuration in %q", p.Name)
	}
	if p.Sys.OverheadScale <= 0 {
		return fmt.Errorf("netmodel: Sys.OverheadScale must be positive in %q", p.Name)
	}
	if p.Sys.SmallMax < 0 || p.Sys.MidMax < p.Sys.SmallMax {
		return fmt.Errorf("netmodel: Sys thresholds out of order in %q: small %d, mid %d",
			p.Name, p.Sys.SmallMax, p.Sys.MidMax)
	}
	return nil
}

// Dane models LLNL's Dane: Intel Sapphire Rapids (112 cores, 2 sockets x 4
// NUMA x 14 cores), Cornelis Omni-Path (onload NIC: high per-message cost),
// Open MPI 4.1.2 over libfabric 2.2.0.
func Dane() Params {
	return Params{
		Name: "Dane", CPU: "Intel Sapphire Rapids", Network: "Cornelis Networks Omni-Path",
		MPIName: "OpenMPI 4.1.2", LibFabric: "2.2.0",
		Node:              topo.SapphireRapids(),
		LatIntraNuma:      3.0e-7,
		LatIntraSocket:    4.5e-7,
		LatInterSocket:    7.5e-7,
		LatInterNode:      1.25e-6,
		SendOverhead:      1.2e-7,
		RecvOverhead:      1.3e-7,
		MatchCost:         3.0e-9,
		CopyBW:            5.0e9,
		CopyBlockCost:     2.0e-9,
		NumaBW:            3.0e10,
		SocketLinkBW:      2.5e10,
		NICBW:             1.25e10,
		NICMsgCost:        2.6e-7,
		BusMsgCost:        2.0e-8,
		InterleavePenalty: 0.9,
		FabricLinkBW:      1.25e10, // links match injection bandwidth
		FabricQueueBytes:  1 << 20,
		EagerMax:          65536, // PSM2-like rendezvous threshold
		NoiseSigma:        0.04,
		SpikeProb:         2.0e-5,
		SpikeMean:         2.0e-5,
		Sys: SysProfile{
			SmallAlgo: "bruck", SmallMax: 256,
			MidAlgo: "nonblocking", MidMax: 3000,
			LargeAlgo: "pairwise", OverheadScale: 1.0,
		},
	}
}

// Amber models SNL's Amber: same Sapphire Rapids / Omni-Path generation as
// Dane but Open MPI 4.1.6 with the older libfabric 2.1.0 (slightly higher
// latency and per-message cost, more OS noise).
func Amber() Params {
	p := Dane()
	p.Name = "Amber"
	p.MPIName = "OpenMPI 4.1.6"
	p.LibFabric = "2.1.0"
	p.LatInterNode = 1.4e-6
	p.NICMsgCost = 2.8e-7
	p.SpikeProb = 3.0e-5
	return p
}

// Tuolomne models LLNL's Tuolomne: AMD MI300A (96 cores, modeled as 4 NUMA
// domains of 24 cores, HBM memory), Slingshot-11 (offload NIC: low
// per-message cost, 200 Gb/s), HPE Cray MPICH 8.1.32. The Cray system MPI
// is emulated with a tuned small-message path and an aggregating
// large-message path, matching Figure 18 where system MPI wins at large
// sizes.
func Tuolomne() Params {
	return Params{
		Name: "Tuolomne", CPU: "AMD Instinct MI300A", Network: "Slingshot-11",
		MPIName: "HPE Cray MPICH 8.1.32", LibFabric: "2.1",
		Node:              topo.MI300A(),
		LatIntraNuma:      2.5e-7,
		LatIntraSocket:    4.0e-7,
		LatInterSocket:    6.0e-7, // unused: single-socket package
		LatInterNode:      1.8e-6,
		SendOverhead:      1.0e-7,
		RecvOverhead:      1.1e-7,
		MatchCost:         2.5e-9,
		CopyBW:            8.0e9,
		CopyBlockCost:     1.5e-9,
		NumaBW:            6.0e10,
		SocketLinkBW:      5.0e10,
		NICBW:             2.5e10,
		NICMsgCost:        4.0e-8,
		BusMsgCost:        1.5e-8,
		InterleavePenalty: 0.25,
		FabricLinkBW:      2.5e10, // 200 Gb/s links, matching injection
		FabricQueueBytes:  2 << 20,
		EagerMax:          16384, // Slingshot/Cassini-like rendezvous threshold
		NoiseSigma:        0.04,
		SpikeProb:         1.5e-5,
		SpikeMean:         1.5e-5,
		Sys: SysProfile{
			SmallAlgo: "bruck", SmallMax: 1024,
			MidAlgo: "node-aware", MidMax: 1 << 30,
			LargeAlgo: "node-aware", OverheadScale: 0.85,
		},
	}
}

// Machines returns all Table 1 presets in paper order.
func Machines() []Params { return []Params{Dane(), Amber(), Tuolomne()} }

// Names returns the machine names of Machines() in paper order — the
// single source for "-machine" flag docs and error messages, so adding a
// preset updates every cmd's help and diagnostics at once.
func Names() []string {
	ms := Machines()
	names := make([]string, len(ms))
	for i, m := range ms {
		names[i] = m.Name
	}
	return names
}

// ByName returns the preset with the given (case-sensitive) name.
func ByName(name string) (Params, error) {
	for _, m := range Machines() {
		if m.Name == name {
			return m, nil
		}
	}
	return Params{}, fmt.Errorf("netmodel: unknown machine %q (have %s)", name, strings.Join(Names(), ", "))
}
