package netmodel

import (
	"testing"

	"alltoallx/internal/topo"
)

func TestPresetsValidate(t *testing.T) {
	t.Parallel()
	for _, m := range Machines() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestTable1Facts(t *testing.T) {
	t.Parallel()
	d := Dane()
	if d.Node.CoresPerNode() != 112 {
		t.Errorf("Dane cores/node = %d, want 112", d.Node.CoresPerNode())
	}
	if d.MPIName != "OpenMPI 4.1.2" || d.LibFabric != "2.2.0" {
		t.Errorf("Dane software stack: %s / %s", d.MPIName, d.LibFabric)
	}
	a := Amber()
	if a.Node.CoresPerNode() != 112 || a.MPIName != "OpenMPI 4.1.6" || a.LibFabric != "2.1.0" {
		t.Errorf("Amber: %+v", a)
	}
	tu := Tuolomne()
	if tu.Node.CoresPerNode() != 96 {
		t.Errorf("Tuolomne cores/node = %d, want 96", tu.Node.CoresPerNode())
	}
	if tu.Network != "Slingshot-11" {
		t.Errorf("Tuolomne network = %s", tu.Network)
	}
	// Model intent: Omni-Path is onload (expensive per message), Slingshot
	// offload (cheap per message, double the bandwidth).
	if !(d.NICMsgCost > 3*tu.NICMsgCost) {
		t.Errorf("expected Dane per-message NIC cost >> Tuolomne: %g vs %g", d.NICMsgCost, tu.NICMsgCost)
	}
	if !(tu.NICBW > d.NICBW) {
		t.Errorf("expected Slingshot bandwidth > Omni-Path: %g vs %g", tu.NICBW, d.NICBW)
	}
}

func TestByName(t *testing.T) {
	t.Parallel()
	for _, name := range []string{"Dane", "Amber", "Tuolomne"} {
		m, err := ByName(name)
		if err != nil || m.Name != name {
			t.Errorf("ByName(%s): %v, %v", name, m.Name, err)
		}
	}
	if _, err := ByName("Frontier"); err == nil {
		t.Error("unknown machine accepted")
	}
}

func TestLatencyByLevel(t *testing.T) {
	t.Parallel()
	m := Dane()
	got := []float64{
		m.Latency(topo.IntraNuma), m.Latency(topo.IntraSocket),
		m.Latency(topo.InterSocket), m.Latency(topo.InterNode),
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Errorf("latency not increasing with level: %v", got)
		}
	}
	if m.Latency(topo.Self) != 0 {
		t.Errorf("self latency = %g", m.Latency(topo.Self))
	}
}

func TestValidateCatchesBadParams(t *testing.T) {
	t.Parallel()
	mut := []func(*Params){
		func(p *Params) { p.NICBW = 0 },
		func(p *Params) { p.CopyBW = -1 },
		func(p *Params) { p.LatInterNode = 0 },
		func(p *Params) { p.MatchCost = -1 },
		func(p *Params) { p.EagerMax = -5 },
		func(p *Params) { p.NoiseSigma = -0.1 },
		func(p *Params) { p.SpikeProb = 1.5 },
		func(p *Params) { p.Sys.OverheadScale = 0 },
		func(p *Params) { p.Node = topo.Spec{} },
		func(p *Params) { p.FabricLinkBW = -1 },
		func(p *Params) { p.FabricQueueBytes = -1 },
		func(p *Params) { p.FabricQueueBytes = 0 }, // zero depth with a link rate set backpressures everything
	}
	for i, f := range mut {
		m := Dane()
		f(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

// TestFabricLinkParams pins the flow-level contention knobs: every
// Table 1 machine carries a usable per-link bandwidth and queue depth
// (so any preset can run under sim.ClusterConfig.Fabric), and a model
// with the flow level disabled (both zero) still validates.
func TestFabricLinkParams(t *testing.T) {
	t.Parallel()
	for _, m := range Machines() {
		if m.FabricLinkBW <= 0 {
			t.Errorf("%s: FabricLinkBW = %g, want positive", m.Name, m.FabricLinkBW)
		}
		if m.FabricQueueBytes <= 0 {
			t.Errorf("%s: FabricQueueBytes = %d, want positive", m.Name, m.FabricQueueBytes)
		}
		// Links at least match injection bandwidth: the NIC stays the
		// uncontended bottleneck, so the flow level is a strict refinement
		// (it only ever adds queueing, never uncontended serialization).
		if m.FabricLinkBW < m.NICBW {
			t.Errorf("%s: FabricLinkBW %g below NICBW %g", m.Name, m.FabricLinkBW, m.NICBW)
		}
	}
	off := Dane()
	off.FabricLinkBW, off.FabricQueueBytes = 0, 0
	if err := off.Validate(); err != nil {
		t.Errorf("flow-level-disabled model rejected: %v", err)
	}
}

func TestSysProfiles(t *testing.T) {
	t.Parallel()
	// Open MPI machines use the tuned three-tier decision (Bruck, linear
	// nonblocking, pairwise); the Cray stack (Tuolomne) uses an
	// aggregating path and a tuned factor < 1, matching Figure 18 where
	// system MPI wins at large sizes.
	for _, m := range []Params{Dane(), Amber()} {
		s := m.Sys
		if s.SmallAlgo != "bruck" || s.MidAlgo != "nonblocking" || s.LargeAlgo != "pairwise" {
			t.Errorf("%s Open MPI profile: %+v", m.Name, s)
		}
		if !(s.SmallMax < s.MidMax) {
			t.Errorf("%s thresholds: %+v", m.Name, s)
		}
	}
	tu := Tuolomne()
	if tu.Sys.LargeAlgo != "node-aware" || tu.Sys.OverheadScale >= 1 {
		t.Errorf("Cray profile: %+v", tu.Sys)
	}
	bad := Dane()
	bad.Sys.MidMax = 10
	bad.Sys.SmallMax = 100
	if err := bad.Validate(); err == nil {
		t.Error("out-of-order thresholds accepted")
	}
}
