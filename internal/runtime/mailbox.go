package runtime

import (
	"sync"

	"alltoallx/internal/comm"
)

// request implements comm.Request. done is closed exactly once when the
// operation completes; err carries any failure.
type request struct {
	done chan struct{}
	err  error
}

func newRequest() *request { return &request{done: make(chan struct{})} }

func (r *request) complete(err error) {
	r.err = err
	close(r.done)
}

// Pending reports whether the request is still in flight.
func (r *request) Pending() bool {
	select {
	case <-r.done:
		return false
	default:
		return true
	}
}

// envelope identifies a message for matching.
type envelope struct {
	ctx int64
	src int
	tag int
}

// inMsg is a message sitting in the unexpected queue.
type inMsg struct {
	env     envelope
	length  int
	payload []byte      // eager copy; nil if virtual payload
	rdvBuf  comm.Buffer // rendezvous: sender's live buffer
	rdvReq  *request    // rendezvous: sender's request to complete on copy
	eager   bool
}

// postedRecv is a receive waiting in the posted queue.
type postedRecv struct {
	env envelope
	buf comm.Buffer
	req *request
}

// mailbox holds one rank's matching state. Both queues are FIFO per
// envelope, which preserves MPI's non-overtaking ordering guarantee between
// a (source, tag, communicator) pair.
type mailbox struct {
	mu         sync.Mutex
	unexpected []inMsg
	posted     []postedRecv
}

func (m *mailbox) init() {}

// deliverEager matches the message against the posted queue or stores a
// buffered copy in the unexpected queue. The sender does not block.
func (m *mailbox) deliverEager(ctx int64, src, tag, length int, payload []byte) {
	env := envelope{ctx: ctx, src: src, tag: tag}
	m.mu.Lock()
	if i := m.findPosted(env); i >= 0 {
		p := m.takePosted(i)
		m.mu.Unlock()
		completeRecv(p, length, payload, comm.Buffer{}, nil)
		return
	}
	m.unexpected = append(m.unexpected, inMsg{env: env, length: length, payload: payload, eager: true})
	m.mu.Unlock()
}

// deliverRendezvous matches against the posted queue — copying directly
// from the sender buffer and completing both sides — or parks the send in
// the unexpected queue until a matching receive arrives.
func (m *mailbox) deliverRendezvous(ctx int64, src, tag int, sb comm.Buffer, sreq *request) {
	env := envelope{ctx: ctx, src: src, tag: tag}
	m.mu.Lock()
	if i := m.findPosted(env); i >= 0 {
		p := m.takePosted(i)
		m.mu.Unlock()
		completeRecv(p, sb.Len(), nil, sb, sreq)
		return
	}
	m.unexpected = append(m.unexpected, inMsg{env: env, length: sb.Len(), rdvBuf: sb, rdvReq: sreq})
	m.mu.Unlock()
}

// postRecv matches the receive against the unexpected queue or appends it
// to the posted queue.
func (m *mailbox) postRecv(ctx int64, src, tag int, b comm.Buffer, req *request) {
	env := envelope{ctx: ctx, src: src, tag: tag}
	m.mu.Lock()
	if i := m.findUnexpected(env); i >= 0 {
		msg := m.takeUnexpected(i)
		m.mu.Unlock()
		completeRecv(postedRecv{env: env, buf: b, req: req}, msg.length, msg.payload, msg.rdvBuf, msg.rdvReq)
		return
	}
	m.posted = append(m.posted, postedRecv{env: env, buf: b, req: req})
	m.mu.Unlock()
}

func (m *mailbox) findPosted(env envelope) int {
	for i := range m.posted {
		if m.posted[i].env == env {
			return i
		}
	}
	return -1
}

func (m *mailbox) findUnexpected(env envelope) int {
	for i := range m.unexpected {
		if m.unexpected[i].env == env {
			return i
		}
	}
	return -1
}

func (m *mailbox) takePosted(i int) postedRecv {
	p := m.posted[i]
	m.posted = append(m.posted[:i], m.posted[i+1:]...)
	return p
}

func (m *mailbox) takeUnexpected(i int) inMsg {
	msg := m.unexpected[i]
	m.unexpected = append(m.unexpected[:i], m.unexpected[i+1:]...)
	return msg
}

// completeRecv finishes a matched receive: validates length, copies
// payload (from the eager copy or straight from the rendezvous sender
// buffer) and completes the receive request, plus the sender request for
// rendezvous transfers.
func completeRecv(p postedRecv, length int, payload []byte, rdvBuf comm.Buffer, rdvReq *request) {
	if length > p.buf.Len() {
		p.req.complete(comm.ErrTruncate)
		if rdvReq != nil {
			rdvReq.complete(comm.ErrTruncate)
		}
		return
	}
	dst := p.buf.Slice(0, length)
	if payload != nil && !dst.IsVirtual() {
		copy(dst.Bytes(), payload)
	}
	if rdvReq != nil {
		if _, err := comm.CopyData(dst, rdvBuf.Slice(0, length)); err != nil {
			p.req.complete(err)
			rdvReq.complete(err)
			return
		}
		rdvReq.complete(nil)
	}
	p.req.complete(nil)
}

// barrier is a reusable generation-counting barrier.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   int
}

func (b *barrier) init(n int) {
	b.n = n
	b.cond = sync.NewCond(&b.mu)
}

func (b *barrier) await() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
