// Package runtime is a live, in-process message-passing runtime: the
// repository's stand-in for an MPI library (the paper's substrate, which Go
// lacks). Every rank is a goroutine; point-to-point messages are matched on
// (communicator context, source, tag) with posted/unexpected queues, an
// eager protocol for small messages and a rendezvous protocol for large
// ones — the same structure real MPI implementations use and the structure
// whose costs (matching, synchronization, buffering) the paper's algorithms
// are designed around.
//
// The runtime is used for every correctness test and for wall-clock
// micro-benchmarks on the machine at hand. Performance reproduction of the
// paper's cluster-scale figures uses internal/sim instead; both implement
// comm.Comm, so algorithms are written once.
package runtime

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"alltoallx/internal/comm"
	"alltoallx/internal/topo"
)

// DefaultEagerMax is the default eager/rendezvous protocol switch point in
// bytes. Messages at or below it are copied through an internal buffer so
// the sender returns immediately; larger messages synchronize with the
// receiver and are copied exactly once.
const DefaultEagerMax = 1 << 13

// Config configures a world of ranks.
type Config struct {
	// Ranks is the number of ranks. Required if Mapping is nil.
	Ranks int
	// Mapping optionally attaches a topology (nodes x ppn); when set it
	// also defines Ranks = Mapping.Size().
	Mapping *topo.Mapping
	// EagerMax overrides the eager protocol threshold; 0 means
	// DefaultEagerMax.
	EagerMax int
}

// Run spawns one goroutine per rank, calls body with that rank's world
// communicator, and waits for all ranks. It returns the joined errors of
// every failing rank. A panicking rank is converted into an error so one
// bad rank cannot take down the test process silently.
func Run(cfg Config, body func(c comm.Comm) error) error {
	w, err := newWorld(cfg)
	if err != nil {
		return err
	}
	n := w.size
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for r := 0; r < n; r++ {
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("runtime: rank %d panicked: %v", rank, p)
				}
			}()
			errs[rank] = body(w.comm(rank))
		}(r)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// world is the shared state of one rank set.
type world struct {
	size     int
	mapping  *topo.Mapping
	eagerMax int
	start    time.Time
	ctx      atomic.Int64 // next communicator context id
	boxes    []mailbox    // one per world rank
	worldSh  *commShared
}

func newWorld(cfg Config) (*world, error) {
	n := cfg.Ranks
	if cfg.Mapping != nil {
		if n != 0 && n != cfg.Mapping.Size() {
			return nil, fmt.Errorf("runtime: Ranks %d conflicts with Mapping size %d", n, cfg.Mapping.Size())
		}
		n = cfg.Mapping.Size()
	}
	if n <= 0 {
		return nil, fmt.Errorf("runtime: world needs at least 1 rank, got %d", n)
	}
	eager := cfg.EagerMax
	if eager <= 0 {
		eager = DefaultEagerMax
	}
	w := &world{size: n, mapping: cfg.Mapping, eagerMax: eager, start: time.Now()}
	w.boxes = make([]mailbox, n)
	for i := range w.boxes {
		w.boxes[i].init()
	}
	ranks := make([]int, n)
	for i := range ranks {
		ranks[i] = i
	}
	w.worldSh = newCommShared(w, w.ctx.Add(1), ranks)
	return w, nil
}

func (w *world) comm(rank int) *Comm {
	return &Comm{sh: w.worldSh, rank: rank}
}

// commShared is the per-communicator state shared by all its ranks.
type commShared struct {
	w      *world
	id     int64 // context id: isolates matching across communicators
	ranks  []int // comm rank -> world rank
	bar    barrier
	splits splitTable
}

func newCommShared(w *world, id int64, ranks []int) *commShared {
	sh := &commShared{w: w, id: id, ranks: ranks}
	sh.bar.init(len(ranks))
	sh.splits.init()
	return sh
}

// Comm is one rank's handle on a communicator. It implements comm.Comm.
type Comm struct {
	sh        *commShared
	rank      int
	splitSeq  int // per-rank collective call counter for Split matching
	barrierHi int // unused counter kept for symmetry/debugging
}

var (
	_ comm.Comm         = (*Comm)(nil)
	_ comm.AsyncStarter = (*Comm)(nil)
)

// Rank returns this process's rank in the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the communicator size.
func (c *Comm) Size() int { return len(c.sh.ranks) }

// Topo returns the world topology mapping for the world communicator, nil
// for sub-communicators.
func (c *Comm) Topo() *topo.Mapping {
	if c.sh == c.sh.w.worldSh {
		return c.sh.w.mapping
	}
	return nil
}

// Now returns seconds since the world started (monotonic wall clock).
func (c *Comm) Now() float64 { return time.Since(c.sh.w.start).Seconds() }

// Memcpy copies src to dst.
func (c *Comm) Memcpy(dst, src comm.Buffer) error {
	_, err := comm.CopyData(dst, src)
	return err
}

// ChargeCopy is a no-op on the live runtime: real copies already cost real
// time.
func (c *Comm) ChargeCopy(bytes, blocks int) error {
	if bytes < 0 || blocks < 0 {
		return fmt.Errorf("runtime: ChargeCopy(%d, %d): negative argument", bytes, blocks)
	}
	return nil
}

// Compute is a validating no-op on the live runtime: wall-clock compute is
// real Go code executed by the caller, so there is nothing to charge and
// nothing sleeps. The method exists so a program body written against
// comm.Comm can be overlap-modeled unchanged in the simulator.
func (c *Comm) Compute(seconds float64) error {
	if seconds < 0 {
		return fmt.Errorf("runtime: Compute(%g): negative duration", seconds)
	}
	return nil
}

// asyncOp is the live runtime's comm.Async: one driver goroutine runs the
// body; done closes when it finishes.
type asyncOp struct {
	done chan struct{}
	err  error
}

// Join blocks until the driver goroutine finishes.
func (a *asyncOp) Join() error {
	<-a.done
	return a.err
}

// TryJoin polls the driver goroutine without blocking.
func (a *asyncOp) TryJoin() (bool, error) {
	select {
	case <-a.done:
		return true, a.err
	default:
		return false, nil
	}
}

// StartAsync spawns a driver goroutine for a started collective body — the
// live runtime's comm.AsyncStarter. The mailbox, barrier and split tables
// are all mutex-protected, so the driver may exchange messages while the
// rank's main goroutine computes; a panicking body is converted into an
// error rather than taking down the process.
func (c *Comm) StartAsync(body func() error) comm.Async {
	a := &asyncOp{done: make(chan struct{})}
	go func() {
		defer close(a.done)
		defer func() {
			if p := recover(); p != nil {
				a.err = fmt.Errorf("runtime: started operation panicked: %v", p)
			}
		}()
		a.err = body()
	}()
	return a
}

// Send blocks until the message is buffered (eager) or received
// (rendezvous).
func (c *Comm) Send(b comm.Buffer, dst, tag int) error {
	req, err := c.Isend(b, dst, tag)
	if err != nil {
		return err
	}
	return c.Wait(req)
}

// Recv blocks until a matching message has been copied into b.
func (c *Comm) Recv(b comm.Buffer, src, tag int) error {
	req, err := c.Irecv(b, src, tag)
	if err != nil {
		return err
	}
	return c.Wait(req)
}

// Isend starts a nonblocking send.
func (c *Comm) Isend(b comm.Buffer, dst, tag int) (comm.Request, error) {
	if err := comm.CheckPeer(dst, c.Size()); err != nil {
		return nil, err
	}
	if err := comm.CheckTag(tag); err != nil {
		return nil, err
	}
	wdst := c.sh.ranks[dst]
	box := &c.sh.w.boxes[wdst]
	if b.Len() <= c.sh.w.eagerMax {
		// Eager: payload is copied out of the user buffer immediately, so
		// the request completes as soon as the message is enqueued or
		// matched.
		var payload []byte
		if !b.IsVirtual() {
			payload = make([]byte, b.Len())
			copy(payload, b.Bytes())
		}
		req := newRequest()
		box.deliverEager(c.sh.id, c.rank, tag, b.Len(), payload)
		req.complete(nil)
		return req, nil
	}
	// Rendezvous: the request completes when the receiver has copied the
	// payload straight out of the user buffer (single copy, synchronizing).
	req := newRequest()
	box.deliverRendezvous(c.sh.id, c.rank, tag, b, req)
	return req, nil
}

// Irecv starts a nonblocking receive.
func (c *Comm) Irecv(b comm.Buffer, src, tag int) (comm.Request, error) {
	if err := comm.CheckPeer(src, c.Size()); err != nil {
		return nil, err
	}
	if err := comm.CheckTag(tag); err != nil {
		return nil, err
	}
	me := c.sh.ranks[c.rank]
	box := &c.sh.w.boxes[me]
	req := newRequest()
	box.postRecv(c.sh.id, src, tag, b, req)
	return req, nil
}

// Wait blocks until the request completes and returns its error.
func (c *Comm) Wait(r comm.Request) error {
	if r == nil {
		return nil
	}
	req, ok := r.(*request)
	if !ok {
		return fmt.Errorf("runtime: foreign request type %T", r)
	}
	<-req.done
	return req.err
}

// WaitAll blocks until all requests complete, returning their joined errors.
func (c *Comm) WaitAll(rs []comm.Request) error {
	var errs []error
	for _, r := range rs {
		if err := c.Wait(r); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Sendrecv posts the receive first, then sends, so that symmetric exchanges
// (everyone calls Sendrecv at once, as pairwise exchange does) cannot
// deadlock even in rendezvous mode.
func (c *Comm) Sendrecv(sb comm.Buffer, dst, stag int, rb comm.Buffer, src, rtag int) error {
	rreq, err := c.Irecv(rb, src, rtag)
	if err != nil {
		return err
	}
	if err := c.Send(sb, dst, stag); err != nil {
		return err
	}
	return c.Wait(rreq)
}

// Barrier blocks until all ranks of the communicator have entered.
func (c *Comm) Barrier() error {
	c.sh.bar.await()
	return nil
}

// Split partitions the communicator by color, ordering new ranks by
// (key, parent rank). Ranks passing a negative color receive a nil
// communicator (like MPI_UNDEFINED). Split is collective and must be called
// in the same sequence by all parent ranks.
func (c *Comm) Split(color, key int) (comm.Comm, error) {
	seq := c.splitSeq
	c.splitSeq++
	res := c.sh.splits.gather(c.sh, seq, c.rank, color, key)
	if res == nil {
		return nil, nil
	}
	return &Comm{sh: res.sh, rank: res.rank}, nil
}
