package runtime

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"alltoallx/internal/comm"
	"alltoallx/internal/testutil"
	"alltoallx/internal/topo"
)

func TestConfigValidation(t *testing.T) {
	t.Parallel()
	if err := Run(Config{}, func(c comm.Comm) error { return nil }); err == nil {
		t.Error("empty config accepted")
	}
	m, _ := topo.NewMapping(topo.Spec{Sockets: 1, NumaPerSocket: 1, CoresPerNuma: 4}, 2, 4)
	if err := Run(Config{Ranks: 3, Mapping: m}, func(c comm.Comm) error { return nil }); err == nil {
		t.Error("conflicting Ranks/Mapping accepted")
	}
}

func TestPingPong(t *testing.T) {
	t.Parallel()
	err := Run(Config{Ranks: 2}, func(c comm.Comm) error {
		b := comm.Alloc(8)
		switch c.Rank() {
		case 0:
			testutil.FillBlock(b, 0, 1)
			if err := c.Send(b, 1, 5); err != nil {
				return err
			}
			if err := c.Recv(b, 1, 6); err != nil {
				return err
			}
			return testutil.CheckBlock(b, 1, 0)
		case 1:
			if err := c.Recv(b, 0, 5); err != nil {
				return err
			}
			if err := testutil.CheckBlock(b, 0, 1); err != nil {
				return err
			}
			testutil.FillBlock(b, 1, 0)
			return c.Send(b, 0, 6)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRendezvousLargeMessage exercises the rendezvous path (> EagerMax).
func TestRendezvousLargeMessage(t *testing.T) {
	t.Parallel()
	err := Run(Config{Ranks: 2, EagerMax: 64}, func(c comm.Comm) error {
		const n = 4096
		b := comm.Alloc(n)
		if c.Rank() == 0 {
			testutil.FillBlock(b, 0, 1)
			return c.Send(b, 1, 1)
		}
		if err := c.Recv(b, 0, 1); err != nil {
			return err
		}
		return testutil.CheckBlock(b, 0, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMessageOrdering: messages between one (src, tag) pair must not
// overtake each other.
func TestMessageOrdering(t *testing.T) {
	t.Parallel()
	const k = 100
	err := Run(Config{Ranks: 2}, func(c comm.Comm) error {
		b := comm.Alloc(4)
		if c.Rank() == 0 {
			for i := 0; i < k; i++ {
				b.Bytes()[0] = byte(i)
				if err := c.Send(b, 1, 3); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < k; i++ {
			if err := c.Recv(b, 0, 3); err != nil {
				return err
			}
			if got := int(b.Bytes()[0]); got != i {
				return fmt.Errorf("message %d overtaken: got %d", i, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTagAndSourceSelectivity: receives match only their (source, tag).
func TestTagAndSourceSelectivity(t *testing.T) {
	t.Parallel()
	err := Run(Config{Ranks: 3}, func(c comm.Comm) error {
		b := comm.Alloc(1)
		switch c.Rank() {
		case 0:
			b.Bytes()[0] = 10
			if err := c.Send(b, 2, 1); err != nil {
				return err
			}
			b.Bytes()[0] = 11
			return c.Send(b, 2, 2)
		case 1:
			b.Bytes()[0] = 20
			return c.Send(b, 2, 1)
		case 2:
			// Receive in an order unrelated to arrival.
			if err := c.Recv(b, 1, 1); err != nil {
				return err
			}
			if b.Bytes()[0] != 20 {
				return fmt.Errorf("src selectivity: got %d", b.Bytes()[0])
			}
			if err := c.Recv(b, 0, 2); err != nil {
				return err
			}
			if b.Bytes()[0] != 11 {
				return fmt.Errorf("tag selectivity: got %d", b.Bytes()[0])
			}
			if err := c.Recv(b, 0, 1); err != nil {
				return err
			}
			if b.Bytes()[0] != 10 {
				return fmt.Errorf("remaining message: got %d", b.Bytes()[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTruncationError(t *testing.T) {
	t.Parallel()
	err := Run(Config{Ranks: 2}, func(c comm.Comm) error {
		if c.Rank() == 0 {
			return c.Send(comm.Alloc(16), 1, 1)
		}
		err := c.Recv(comm.Alloc(8), 0, 1)
		if !errors.Is(err, comm.ErrTruncate) {
			return fmt.Errorf("want ErrTruncate, got %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvSymmetric(t *testing.T) {
	t.Parallel()
	const n = 8
	err := Run(Config{Ranks: n, EagerMax: 4}, func(c comm.Comm) error {
		// All ranks exchange simultaneously in a ring with rendezvous-size
		// messages: deadlock-free only if Sendrecv posts the receive first.
		sb, rb := comm.Alloc(64), comm.Alloc(64)
		to := (c.Rank() + 1) % n
		from := (c.Rank() - 1 + n) % n
		testutil.FillBlock(sb, c.Rank(), to)
		if err := c.Sendrecv(sb, to, 9, rb, from, 9); err != nil {
			return err
		}
		return testutil.CheckBlock(rb, from, c.Rank())
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrier(t *testing.T) {
	t.Parallel()
	const n = 16
	var phase atomic.Int32
	err := Run(Config{Ranks: n}, func(c comm.Comm) error {
		phase.Add(1)
		if err := c.Barrier(); err != nil {
			return err
		}
		if got := phase.Load(); got != n {
			return fmt.Errorf("rank %d passed barrier with %d arrivals", c.Rank(), got)
		}
		return c.Barrier() // reusable
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitGroupsAndOrder(t *testing.T) {
	t.Parallel()
	const n = 12
	err := Run(Config{Ranks: n}, func(c comm.Comm) error {
		// Split into 3 colors; key reverses the order within each color.
		color := c.Rank() % 3
		sub, err := c.Split(color, -c.Rank())
		if err != nil {
			return err
		}
		subComm := sub.(*Comm)
		if subComm.Size() != n/3 {
			return fmt.Errorf("sub size = %d, want %d", subComm.Size(), n/3)
		}
		// Highest parent rank should be rank 0 in the subcomm.
		wantRank := (n - 3 + color - c.Rank()) / 3
		if subComm.Rank() != wantRank {
			return fmt.Errorf("parent %d: sub rank = %d, want %d", c.Rank(), subComm.Rank(), wantRank)
		}
		// The subcommunicator must carry traffic independently.
		b := comm.Alloc(4)
		if subComm.Rank() == 0 {
			b.Bytes()[0] = byte(color)
			for r := 1; r < subComm.Size(); r++ {
				if err := subComm.Send(b, r, 0); err != nil {
					return err
				}
			}
			return nil
		}
		if err := subComm.Recv(b, 0, 0); err != nil {
			return err
		}
		if int(b.Bytes()[0]) != color {
			return fmt.Errorf("cross-communicator leak: got %d, want %d", b.Bytes()[0], color)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitUndefinedColor(t *testing.T) {
	t.Parallel()
	err := Run(Config{Ranks: 4}, func(c comm.Comm) error {
		color := 0
		if c.Rank() >= 2 {
			color = -1
		}
		sub, err := c.Split(color, 0)
		if err != nil {
			return err
		}
		if c.Rank() >= 2 {
			if sub != nil {
				return fmt.Errorf("rank %d: expected nil comm for negative color", c.Rank())
			}
			return nil
		}
		if sub == nil || sub.Size() != 2 {
			return fmt.Errorf("rank %d: bad subcomm", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendIrecvWaitAll(t *testing.T) {
	t.Parallel()
	const n = 6
	err := Run(Config{Ranks: n}, func(c comm.Comm) error {
		block := 32
		send := comm.Alloc(n * block)
		recv := comm.Alloc(n * block)
		testutil.FillAlltoall(send, c.Rank(), n, block)
		var reqs []comm.Request
		for i := 0; i < n; i++ {
			if i == c.Rank() {
				if err := c.Memcpy(recv.Slice(i*block, block), send.Slice(i*block, block)); err != nil {
					return err
				}
				continue
			}
			rq, err := c.Irecv(recv.Slice(i*block, block), i, 7)
			if err != nil {
				return err
			}
			sq, err := c.Isend(send.Slice(i*block, block), i, 7)
			if err != nil {
				return err
			}
			if !rq.Pending() && sq == nil {
				return fmt.Errorf("unexpected request state")
			}
			reqs = append(reqs, rq, sq, nil) // nil requests are ignored
		}
		if err := c.WaitAll(reqs); err != nil {
			return err
		}
		return testutil.CheckAlltoall(recv, c.Rank(), n, block)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInvalidArguments(t *testing.T) {
	t.Parallel()
	err := Run(Config{Ranks: 2}, func(c comm.Comm) error {
		b := comm.Alloc(4)
		if _, err := c.Isend(b, 5, 0); err == nil {
			return fmt.Errorf("bad peer accepted")
		}
		if _, err := c.Irecv(b, -1, 0); err == nil {
			return fmt.Errorf("negative peer accepted")
		}
		if _, err := c.Isend(b, 1, -3); err == nil {
			return fmt.Errorf("negative tag accepted")
		}
		if err := c.Wait(nil); err != nil {
			return fmt.Errorf("nil request: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPanicIsolation(t *testing.T) {
	t.Parallel()
	err := Run(Config{Ranks: 2}, func(c comm.Comm) error {
		if c.Rank() == 1 {
			panic("rank 1 exploded")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic not converted to error")
	}
}

func TestTopoAndNow(t *testing.T) {
	t.Parallel()
	m, err := topo.NewMapping(topo.Spec{Sockets: 1, NumaPerSocket: 1, CoresPerNuma: 4}, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	err = Run(Config{Mapping: m}, func(c comm.Comm) error {
		if c.Topo() == nil {
			return fmt.Errorf("world topo missing")
		}
		sub, err := c.Split(c.Rank()%2, 0)
		if err != nil {
			return err
		}
		if sub.Topo() != nil {
			return fmt.Errorf("subcomm should not carry topo")
		}
		if c.Now() < 0 {
			return fmt.Errorf("negative Now")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMemcpyAndChargeCopy(t *testing.T) {
	t.Parallel()
	err := Run(Config{Ranks: 1}, func(c comm.Comm) error {
		a, b := comm.Alloc(4), comm.Alloc(4)
		a.Bytes()[2] = 42
		if err := c.Memcpy(b, a); err != nil {
			return err
		}
		if b.Bytes()[2] != 42 {
			return fmt.Errorf("memcpy failed")
		}
		if err := c.ChargeCopy(100, 10); err != nil {
			return err
		}
		if err := c.ChargeCopy(-1, 0); err == nil {
			return fmt.Errorf("negative ChargeCopy accepted")
		}
		return c.Memcpy(comm.Alloc(3), a)
	})
	if err == nil {
		t.Fatal("length-mismatched Memcpy accepted")
	}
}
