package runtime

import (
	"sort"
	"sync"
)

// splitTable coordinates collective Split calls on one communicator. Each
// rank's k-th Split call joins gathering slot k; the last rank to arrive
// computes the partition and publishes per-rank results.
type splitTable struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending map[int]*splitGather
}

type splitGather struct {
	entries []splitEntry
	results []*splitResult // indexed by parent rank; nil for negative color
	ready   bool
	readers int
}

type splitEntry struct {
	rank, color, key int
}

type splitResult struct {
	sh   *commShared
	rank int
}

func (t *splitTable) init() {
	t.cond = sync.NewCond(&t.mu)
	t.pending = make(map[int]*splitGather)
}

// gather joins collective call seq on parent sh, blocking until the
// partition for that call is computed. It returns nil when color < 0.
func (t *splitTable) gather(sh *commShared, seq, rank, color, key int) *splitResult {
	n := len(sh.ranks)
	t.mu.Lock()
	g := t.pending[seq]
	if g == nil {
		g = &splitGather{}
		t.pending[seq] = g
	}
	g.entries = append(g.entries, splitEntry{rank: rank, color: color, key: key})
	if len(g.entries) == n {
		g.results = computeSplit(sh, g.entries)
		g.ready = true
		t.cond.Broadcast()
	}
	for !g.ready {
		t.cond.Wait()
	}
	res := g.results[rank]
	g.readers++
	if g.readers == n {
		delete(t.pending, seq)
	}
	t.mu.Unlock()
	return res
}

// computeSplit partitions entries by color and orders each group by
// (key, parent rank), mirroring MPI_Comm_split semantics.
func computeSplit(sh *commShared, entries []splitEntry) []*splitResult {
	n := len(sh.ranks)
	results := make([]*splitResult, n)
	byColor := make(map[int][]splitEntry)
	for _, e := range entries {
		if e.color < 0 {
			continue
		}
		byColor[e.color] = append(byColor[e.color], e)
	}
	colors := make([]int, 0, len(byColor))
	for c := range byColor {
		colors = append(colors, c)
	}
	sort.Ints(colors) // deterministic context-id assignment order
	for _, c := range colors {
		group := byColor[c]
		sort.Slice(group, func(i, j int) bool {
			if group[i].key != group[j].key {
				return group[i].key < group[j].key
			}
			return group[i].rank < group[j].rank
		})
		worldRanks := make([]int, len(group))
		for i, e := range group {
			worldRanks[i] = sh.ranks[e.rank]
		}
		newSh := newCommShared(sh.w, sh.w.ctx.Add(1), worldRanks)
		for i, e := range group {
			results[e.rank] = &splitResult{sh: newSh, rank: i}
		}
	}
	return results
}
