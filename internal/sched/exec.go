package sched

import (
	"errors"
	"fmt"

	"alltoallx/internal/comm"
	"alltoallx/internal/trace"
)

// TagBase is the first message tag the executor uses; round ri tags its
// messages TagBase+ri. The verifier's one-message-per-pair-per-round rule
// makes the (source, tag) match unambiguous.
const TagBase = 401

// Exec runs a schedule over a communicator. It is the persistent part of
// a schedule-backed operation: scratch buffers are allocated once and
// reused across calls (resized only when the block size or buffer
// virtualness changes), mirroring how every core algorithm stages.
//
// An Exec holds either a whole-world Schedule (NewExec) — sliced lazily
// for whichever rank runs it — or a single rank's pre-sliced RankProgram
// (NewRankExec), the large-world form that never needs the assembled
// schedule in memory.
//
// Exec does not verify: callers must Verify the schedule (or VerifyRank
// plus the streamed world check for rank programs) once before
// constructing an executor (core does this at algorithm construction).
// Like the operations built on it, an Exec is driven by one rank's
// goroutine and is not safe for concurrent use.
type Exec struct {
	s       *Schedule    // whole-world form (nil for rank executors)
	rp      *RankProgram // pre-sliced form, or the lazy slice of s
	scratch []comm.Buffer
	load    *LoadRecord // optional per-round traffic recording
	op      ReduceOp    // operator applied by Reduce steps (SetOp)
}

// ReduceOp combines in into acc element-wise (acc = acc op in), the
// operator contract shared with collx.Op. Reduction schedules are
// compiled operator-generically, so the executor applies whichever
// operator the caller installs per run.
type ReduceOp func(acc, in []byte)

// SetOp installs the operator Reduce steps apply. Running a schedule
// containing Reduce steps without an installed operator is an error.
func (e *Exec) SetOp(op ReduceOp) { e.op = op }

// SetLoadRecord attaches a (typically shared) LoadRecord; every send the
// executor issues is then recorded per round. Pass nil to stop recording.
func (e *Exec) SetLoadRecord(l *LoadRecord) { e.load = l }

// NewExec returns an executor for a verified whole-world schedule; the
// running rank's slice is taken at Run time.
func NewExec(s *Schedule) *Exec {
	return &Exec{s: s, scratch: make([]comm.Buffer, len(s.Scratch))}
}

// NewRankExec returns an executor for one rank's verified program.
func NewRankExec(rp *RankProgram) *Exec {
	return &Exec{rp: rp, scratch: make([]comm.Buffer, len(rp.Scratch))}
}

// Schedule returns the executed whole-world schedule (nil for executors
// built from a rank program).
func (e *Exec) Schedule() *Schedule { return e.s }

// Program returns the rank program the executor runs: the pre-sliced one,
// or the last slice taken from the whole-world schedule (nil before the
// first Run).
func (e *Exec) Program() *RankProgram { return e.rp }

// ensure (re)allocates *buf to n bytes matching ref's virtualness, the
// staging discipline shared with core.
func ensure(buf *comm.Buffer, ref comm.Buffer, n int) {
	if buf.Len() != n || buf.IsVirtual() != ref.IsVirtual() {
		if ref.IsVirtual() {
			*buf = comm.Virtual(n)
		} else {
			*buf = comm.Alloc(n)
		}
	}
}

// Run executes the schedule's rounds for this rank: post the round's
// receives, walk copies, reduces and sends in step order, wait, next
// round. rec, when non-nil, accrues Copy time under trace.PhaseRepack
// and Reduce time under trace.PhaseReduce (the schedule's repack and
// compute costs in the phase breakdown); it may be nil.
func (e *Exec) Run(c comm.Comm, send, recv comm.Buffer, block int, rec *trace.Recorder) error {
	rp := e.rp
	if e.s != nil && (rp == nil || rp.Rank != c.Rank()) {
		if c.Size() != e.s.Ranks {
			return fmt.Errorf("sched: schedule %q compiled for %d ranks, communicator has %d", e.s.Name, e.s.Ranks, c.Size())
		}
		var err error
		rp, err = Slice(e.s, c.Rank())
		if err != nil {
			return err
		}
		e.rp = rp
	}
	if rp == nil {
		return errors.New("sched: executor has no schedule")
	}
	if c.Size() != rp.Ranks {
		return fmt.Errorf("sched: schedule %q compiled for %d ranks, communicator has %d", rp.Name, rp.Ranks, c.Size())
	}
	if c.Rank() != rp.Rank {
		return fmt.Errorf("sched: rank program %q belongs to rank %d, communicator rank is %d", rp.Name, rp.Rank, c.Rank())
	}
	if block <= 0 {
		return fmt.Errorf("sched: block must be positive, got %d", block)
	}
	for i, sz := range rp.Scratch {
		ensure(&e.scratch[i], send, sz*block)
	}
	ref := func(r Ref) comm.Buffer {
		var b comm.Buffer
		switch r.Buf {
		case SpaceSend:
			b = send
		case SpaceRecv:
			b = recv
		default:
			b = e.scratch[r.Buf-SpaceScratch]
		}
		return b.Slice(r.Off*block, r.N*block)
	}

	var reqs []comm.Request
	for ri, steps := range rp.Rounds {
		tag := TagBase + ri
		reqs = reqs[:0]
		for _, st := range steps {
			if st.Kind == Recv || st.Kind == SendRecv {
				rq, err := c.Irecv(ref(st.Dst), st.From, tag)
				if err != nil {
					return fmt.Errorf("sched: %s round %d recv from %d: %w", rp.Name, ri, st.From, err)
				}
				reqs = append(reqs, rq)
			}
		}
		for _, st := range steps {
			switch st.Kind {
			case Copy:
				t0 := c.Now()
				if _, err := comm.CopyData(ref(st.Dst), ref(st.Src)); err != nil {
					return fmt.Errorf("sched: %s round %d copy: %w", rp.Name, ri, err)
				}
				if err := c.ChargeCopy(st.Src.N*block, 1); err != nil {
					return fmt.Errorf("sched: %s round %d copy: %w", rp.Name, ri, err)
				}
				rec.Add(trace.PhaseRepack, c.Now()-t0)
			case Reduce:
				if e.op == nil {
					return fmt.Errorf("sched: %s round %d: schedule has a reduce step but no operator is installed (Exec.SetOp)", rp.Name, ri)
				}
				t0 := c.Now()
				dst, src := ref(st.Dst), ref(st.Src)
				if !dst.IsVirtual() && !src.IsVirtual() {
					e.op(dst.Bytes(), src.Bytes())
				}
				if err := c.ChargeCopy(st.Src.N*block, 1); err != nil {
					return fmt.Errorf("sched: %s round %d reduce: %w", rp.Name, ri, err)
				}
				rec.Add(trace.PhaseReduce, c.Now()-t0)
			case Send, SendRecv:
				rq, err := c.Isend(ref(st.Src), st.To, tag)
				if err != nil {
					return fmt.Errorf("sched: %s round %d send to %d: %w", rp.Name, ri, st.To, err)
				}
				reqs = append(reqs, rq)
				if e.load != nil {
					e.load.Add(ri, rp.Rank, st.To, st.Src.N)
				}
			case Recv:
				// Posted above.
			default:
				return fmt.Errorf("sched: %s round %d: kind %q is not executable", rp.Name, ri, st.Kind)
			}
		}
		if err := c.WaitAll(reqs); err != nil {
			return fmt.Errorf("sched: %s round %d: %w", rp.Name, ri, err)
		}
	}
	return nil
}
