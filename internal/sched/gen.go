package sched

import (
	"fmt"
	"sort"

	"alltoallx/internal/topo"
)

// Generator compiles an all-to-all schedule for p ranks. The mapping is
// the world topology when known (nil otherwise); topology-aware
// generators (torus) shape themselves from it.
type Generator func(p int, m *topo.Mapping) (*Schedule, error)

// genEntry couples a generator's collective kind with its whole-world
// and rank-sliced compilers (one sliced implementation per generator; a
// test pins every entry complete).
type genEntry struct {
	coll  Coll
	whole Generator
	rank  rankGenerator
}

// genRegistry is the registry of schedule generators. The classic
// all-to-all algorithms (direct, pairwise, bruck) are compiled straight
// into the IR; the direct-connect families (ring, torus, hypercube) are
// compiled from per-block routes — schedules the loop-coded core
// algorithms cannot express. The rs-*/ar-* families compile
// reduce-scatter and allreduce onto the same topologies (reduce.go).
var genRegistry = map[string]genEntry{
	"direct":    {CollAlltoall, Direct, directRank},
	"pairwise":  {CollAlltoall, Pairwise, pairwiseRank},
	"bruck":     {CollAlltoall, Bruck, bruckRank},
	"ring":      {CollAlltoall, Ring, ringRank},
	"torus":     {CollAlltoall, Torus, torusRank},
	"hypercube": {CollAlltoall, Hypercube, hypercubeRank},

	"rs-ring":      {CollReduceScatter, RingReduceScatter, ringReduceScatterRank},
	"rs-torus":     {CollReduceScatter, TorusReduceScatter, torusReduceScatterRank},
	"rs-hypercube": {CollReduceScatter, HypercubeReduceScatter, hypercubeReduceScatterRank},
	"ar-ring":      {CollAllreduce, RingAllreduce, ringAllreduceRank},
	"ar-torus":     {CollAllreduce, TorusAllreduce, torusAllreduceRank},
	"ar-hypercube": {CollAllreduce, HypercubeAllreduce, hypercubeAllreduceRank},
}

// Generators returns the all-to-all generator names, sorted — the set
// core registers as sched:* all-to-all algorithms. Reduction generators
// are listed by GeneratorsFor/AllGenerators and reach core through the
// collx registries instead.
func Generators() []string { return GeneratorsFor(CollAlltoall) }

// AllGenerators returns every generator name, sorted.
func AllGenerators() []string {
	names := make([]string, 0, len(genRegistry))
	for n := range genRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// GeneratorsFor returns the names of the generators compiling the given
// collective, sorted.
func GeneratorsFor(coll Coll) []string {
	var names []string
	for n, e := range genRegistry {
		if e.coll == coll {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// GeneratorColl reports the collective a named generator compiles, and
// whether the name is known.
func GeneratorColl(name string) (Coll, bool) {
	e, ok := genRegistry[name]
	return e.coll, ok
}

// MaxRanks is the largest world a schedule can address: block identities
// are packed as int32(src*p + dst), so p*p must stay below 2^31
// (floor(sqrt(2^31 - 1))). Generate and GenerateRank reject larger
// worlds by name instead of silently wrapping ids negative.
const MaxRanks = 46340

// checkRanks validates a world size against MaxRanks.
func checkRanks(p int) error {
	if p <= 0 {
		return fmt.Errorf("sched: rank count must be positive, got %d", p)
	}
	if p > MaxRanks {
		return fmt.Errorf("sched: %d ranks exceeds the schedule id width (max %d ranks: block ids are int32 src*p+dst)", p, MaxRanks)
	}
	return nil
}

// Generate compiles the named schedule for p ranks (m may be nil).
func Generate(name string, p int, m *topo.Mapping) (*Schedule, error) {
	e, ok := genRegistry[name]
	if !ok {
		return nil, fmt.Errorf("sched: unknown generator %q (have %v)", name, AllGenerators())
	}
	if err := checkRanks(p); err != nil {
		return nil, err
	}
	return e.whole(p, m)
}

// sendRef/recvRef/scratchRef are small constructors for readable
// generators.
func sendRef(off, n int) Ref       { return Ref{Buf: SpaceSend, Off: off, N: n} }
func recvRef(off, n int) Ref       { return Ref{Buf: SpaceRecv, Off: off, N: n} }
func scratchRef(i, off, n int) Ref { return Ref{Buf: SpaceScratch + i, Off: off, N: n} }

// selfCopy returns the step delivering rank r's own block.
func selfCopy(r int) Step {
	return Step{Kind: Copy, Src: sendRef(r, 1), Dst: recvRef(r, 1)}
}

// The classic generators are built from per-rank step builders: Generate
// assembles all p ranks into a Schedule, GenerateRank emits exactly one
// rank's rounds as a RankProgram (O(p) work for direct/pairwise,
// O(p log p) for bruck) without ever materializing the whole world.

// directSteps is rank r's single round of the spread direct exchange: all
// p-1 receives posted first, then all p-1 sends, in spread order (peer
// r±i) to avoid hotspots.
func directSteps(p, r int) []Step {
	steps := []Step{selfCopy(r)}
	for i := 1; i < p; i++ {
		from := (r - i + p) % p
		steps = append(steps, Step{Kind: Recv, From: from, Dst: recvRef(from, 1)})
	}
	for i := 1; i < p; i++ {
		to := (r + i) % p
		steps = append(steps, Step{Kind: Send, To: to, Src: sendRef(to, 1)})
	}
	return steps
}

// Direct compiles the spread direct exchange (the nonblocking algorithm):
// a single round in which every rank posts all p-1 receives, then all p-1
// sends.
func Direct(p int, _ *topo.Mapping) (*Schedule, error) {
	s := &Schedule{Format: FormatVersion, Name: "direct", Ranks: p, Rounds: []Round{{Steps: make([][]Step, p)}}}
	for r := 0; r < p; r++ {
		s.Rounds[0].Steps[r] = directSteps(p, r)
	}
	return s, nil
}

func directRank(p, r int, _ *topo.Mapping) (*RankProgram, error) {
	return &RankProgram{Format: FormatVersion, Name: "direct", Ranks: p, Rank: r,
		Rounds: [][]Step{directSteps(p, r)}}, nil
}

// pairwiseSteps is rank r's single step of pairwise round i (1 <= i < p):
// one SendRecv with disjoint partners (send to r+i, receive from r-i).
func pairwiseSteps(p, r, i int) []Step {
	to := (r + i) % p
	from := (r - i + p) % p
	return []Step{{Kind: SendRecv, To: to, Src: sendRef(to, 1), From: from, Dst: recvRef(from, 1)}}
}

// Pairwise compiles Algorithm 1: a self-copy round followed by p-1
// rounds, each one SendRecv per rank with disjoint partners.
func Pairwise(p int, _ *topo.Mapping) (*Schedule, error) {
	s := &Schedule{Format: FormatVersion, Name: "pairwise", Ranks: p}
	r0 := Round{Steps: make([][]Step, p)}
	for r := 0; r < p; r++ {
		r0.Steps[r] = []Step{selfCopy(r)}
	}
	s.Rounds = append(s.Rounds, r0)
	for i := 1; i < p; i++ {
		rd := Round{Steps: make([][]Step, p)}
		for r := 0; r < p; r++ {
			rd.Steps[r] = pairwiseSteps(p, r, i)
		}
		s.Rounds = append(s.Rounds, rd)
	}
	return s, nil
}

func pairwiseRank(p, r int, _ *topo.Mapping) (*RankProgram, error) {
	rp := &RankProgram{Format: FormatVersion, Name: "pairwise", Ranks: p, Rank: r,
		Rounds: [][]Step{{selfCopy(r)}}}
	for i := 1; i < p; i++ {
		rp.Rounds = append(rp.Rounds, pairwiseSteps(p, r, i))
	}
	return rp, nil
}

// bruckPlan computes the exchange rounds ks (k = 1, 2, 4, ...) and the
// widest exchange h: the largest count of indices in [0,p) with bit k
// set, over the rounds.
func bruckPlan(p int) (ks []int, h int) {
	for k := 1; k < p; k <<= 1 {
		ks = append(ks, k)
		m := 0
		for i := 0; i < p; i++ {
			if i&k != 0 {
				m++
			}
		}
		if m > h {
			h = m
		}
	}
	return ks, h
}

// bruckScratch is the Bruck scratch layout: 0 = rotation buffer (p
// blocks), 1 = pack-send, 2/3 = alternating pack-recv.
const (
	bruckTmp   = 0
	bruckPackS = 1
	bruckPackA = 2
)

// bruckRotateSteps is rank r's round 0: rotate so local block i is the
// data destined to rank r+i (two contiguous copies per rank).
func bruckRotateSteps(p, r int) []Step {
	steps := []Step{{Kind: Copy, Src: sendRef(r, p-r), Dst: scratchRef(bruckTmp, 0, p-r)}}
	if r > 0 {
		steps = append(steps, Step{Kind: Copy, Src: sendRef(0, r), Dst: scratchRef(bruckTmp, p-r, r)})
	}
	return steps
}

// bruckUnpackSteps emits the copies restoring round ki's received blocks
// from its pack-recv buffer into the rotation buffer (identical on every
// rank).
func bruckUnpackSteps(p int, ks []int, ki int) []Step {
	k := ks[ki]
	buf := bruckPackA + ki%2
	var steps []Step
	m := 0
	for i := 0; i < p; i++ {
		if i&k != 0 {
			steps = append(steps, Step{Kind: Copy, Src: scratchRef(buf, m, 1), Dst: scratchRef(bruckTmp, i, 1)})
			m++
		}
	}
	return steps
}

// bruckExchangeSteps is rank r's steps of exchange round ki: unpack the
// previous round (ki > 0), pack the blocks whose index has bit ks[ki]
// set, and exchange with the partners ±ks[ki].
func bruckExchangeSteps(p int, ks []int, ki, r int) []Step {
	k := ks[ki]
	var steps []Step
	if ki > 0 {
		steps = append(steps, bruckUnpackSteps(p, ks, ki-1)...)
	}
	m := 0
	for i := 0; i < p; i++ {
		if i&k != 0 {
			steps = append(steps, Step{Kind: Copy, Src: scratchRef(bruckTmp, i, 1), Dst: scratchRef(bruckPackS, m, 1)})
			m++
		}
	}
	to := (r + k) % p
	from := (r - k + p) % p
	steps = append(steps, Step{
		Kind: SendRecv,
		To:   to, Src: scratchRef(bruckPackS, 0, m),
		From: from, Dst: scratchRef(bruckPackA+ki%2, 0, m),
	})
	return steps
}

// bruckFinalSteps is rank r's final round: unpack the last exchange, then
// invert the rotation — local block i holds the data from rank r-i.
func bruckFinalSteps(p int, ks []int, r int) []Step {
	steps := bruckUnpackSteps(p, ks, len(ks)-1)
	for i := 0; i < p; i++ {
		src := (r - i + p) % p
		steps = append(steps, Step{Kind: Copy, Src: scratchRef(bruckTmp, i, 1), Dst: recvRef(src, 1)})
	}
	return steps
}

// Bruck compiles the Bruck algorithm: a rotation round, ceil(log2 p)
// exchange rounds each packing the blocks whose index has bit k set, and
// a final unpack + inverse-rotation round. Receive staging is
// double-buffered so an exchange round never receives into the buffer its
// unpack copies are still reading — the race the verifier rejects.
func Bruck(p int, _ *topo.Mapping) (*Schedule, error) {
	if p == 1 {
		return Pairwise(p, nil)
	}
	ks, h := bruckPlan(p)
	s := &Schedule{Format: FormatVersion, Name: "bruck", Ranks: p, Scratch: []int{p, h, h, h}}

	r0 := Round{Steps: make([][]Step, p)}
	for r := 0; r < p; r++ {
		r0.Steps[r] = bruckRotateSteps(p, r)
	}
	s.Rounds = append(s.Rounds, r0)

	for ki := range ks {
		rd := Round{Steps: make([][]Step, p)}
		for r := 0; r < p; r++ {
			rd.Steps[r] = bruckExchangeSteps(p, ks, ki, r)
		}
		s.Rounds = append(s.Rounds, rd)
	}

	fin := Round{Steps: make([][]Step, p)}
	for r := 0; r < p; r++ {
		fin.Steps[r] = bruckFinalSteps(p, ks, r)
	}
	s.Rounds = append(s.Rounds, fin)
	return s, nil
}

func bruckRank(p, r int, m *topo.Mapping) (*RankProgram, error) {
	if p == 1 {
		return pairwiseRank(p, r, m)
	}
	ks, h := bruckPlan(p)
	rp := &RankProgram{Format: FormatVersion, Name: "bruck", Ranks: p, Rank: r, Scratch: []int{p, h, h, h}}
	rp.Rounds = append(rp.Rounds, bruckRotateSteps(p, r))
	for ki := range ks {
		rp.Rounds = append(rp.Rounds, bruckExchangeSteps(p, ks, ki, r))
	}
	rp.Rounds = append(rp.Rounds, bruckFinalSteps(p, ks, r))
	return rp, nil
}
