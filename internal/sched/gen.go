package sched

import (
	"fmt"
	"sort"

	"alltoallx/internal/topo"
)

// Generator compiles an all-to-all schedule for p ranks. The mapping is
// the world topology when known (nil otherwise); topology-aware
// generators (torus) shape themselves from it.
type Generator func(p int, m *topo.Mapping) (*Schedule, error)

// generators is the registry of schedule generators. The classic
// algorithms (direct, pairwise, bruck) are compiled straight into the IR;
// the direct-connect families (ring, torus, hypercube) are compiled from
// per-block routes — schedules the loop-coded core algorithms cannot
// express.
var generators = map[string]Generator{
	"direct":    Direct,
	"pairwise":  Pairwise,
	"bruck":     Bruck,
	"ring":      Ring,
	"torus":     Torus,
	"hypercube": Hypercube,
}

// Generators returns all generator names, sorted.
func Generators() []string {
	names := make([]string, 0, len(generators))
	for n := range generators {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Generate compiles the named schedule for p ranks (m may be nil).
func Generate(name string, p int, m *topo.Mapping) (*Schedule, error) {
	g, ok := generators[name]
	if !ok {
		return nil, fmt.Errorf("sched: unknown generator %q (have %v)", name, Generators())
	}
	if p <= 0 {
		return nil, fmt.Errorf("sched: rank count must be positive, got %d", p)
	}
	return g(p, m)
}

// sendRef/recvRef/scratchRef are small constructors for readable
// generators.
func sendRef(off, n int) Ref       { return Ref{Buf: SpaceSend, Off: off, N: n} }
func recvRef(off, n int) Ref       { return Ref{Buf: SpaceRecv, Off: off, N: n} }
func scratchRef(i, off, n int) Ref { return Ref{Buf: SpaceScratch + i, Off: off, N: n} }

// selfCopy returns the step delivering rank r's own block.
func selfCopy(r int) Step {
	return Step{Kind: Copy, Src: sendRef(r, 1), Dst: recvRef(r, 1)}
}

// Direct compiles the spread direct exchange (the nonblocking algorithm):
// a single round in which every rank posts all p-1 receives, then all p-1
// sends, in spread order (peer r±i) to avoid hotspots.
func Direct(p int, _ *topo.Mapping) (*Schedule, error) {
	s := &Schedule{Format: FormatVersion, Name: "direct", Ranks: p, Rounds: []Round{{Steps: make([][]Step, p)}}}
	for r := 0; r < p; r++ {
		steps := []Step{selfCopy(r)}
		for i := 1; i < p; i++ {
			from := (r - i + p) % p
			steps = append(steps, Step{Kind: Recv, From: from, Dst: recvRef(from, 1)})
		}
		for i := 1; i < p; i++ {
			to := (r + i) % p
			steps = append(steps, Step{Kind: Send, To: to, Src: sendRef(to, 1)})
		}
		s.Rounds[0].Steps[r] = steps
	}
	return s, nil
}

// Pairwise compiles Algorithm 1: a self-copy round followed by p-1
// rounds, each one SendRecv per rank with disjoint partners (send to r+i,
// receive from r-i).
func Pairwise(p int, _ *topo.Mapping) (*Schedule, error) {
	s := &Schedule{Format: FormatVersion, Name: "pairwise", Ranks: p}
	r0 := Round{Steps: make([][]Step, p)}
	for r := 0; r < p; r++ {
		r0.Steps[r] = []Step{selfCopy(r)}
	}
	s.Rounds = append(s.Rounds, r0)
	for i := 1; i < p; i++ {
		rd := Round{Steps: make([][]Step, p)}
		for r := 0; r < p; r++ {
			to := (r + i) % p
			from := (r - i + p) % p
			rd.Steps[r] = []Step{{Kind: SendRecv, To: to, Src: sendRef(to, 1), From: from, Dst: recvRef(from, 1)}}
		}
		s.Rounds = append(s.Rounds, rd)
	}
	return s, nil
}

// Bruck compiles the Bruck algorithm: a rotation round, ceil(log2 p)
// exchange rounds each packing the blocks whose index has bit k set, and
// a final unpack + inverse-rotation round. Receive staging is
// double-buffered so an exchange round never receives into the buffer its
// unpack copies are still reading — the race the verifier rejects.
func Bruck(p int, _ *topo.Mapping) (*Schedule, error) {
	// Scratch layout: 0 = rotation buffer (p blocks), 1 = pack-send,
	// 2/3 = alternating pack-recv.
	const (
		tmp   = 0
		packS = 1
		packA = 2
	)
	if p == 1 {
		return Pairwise(p, nil)
	}
	// h is the widest exchange: the largest count of indices in [0,p)
	// with bit k set, over the rounds k = 1, 2, 4, ...
	h := 0
	var ks []int
	for k := 1; k < p; k <<= 1 {
		ks = append(ks, k)
		m := 0
		for i := 0; i < p; i++ {
			if i&k != 0 {
				m++
			}
		}
		if m > h {
			h = m
		}
	}
	s := &Schedule{Format: FormatVersion, Name: "bruck", Ranks: p, Scratch: []int{p, h, h, h}}

	// Round 0: rotate so local block i is the data destined to rank r+i
	// (two contiguous copies per rank).
	r0 := Round{Steps: make([][]Step, p)}
	for r := 0; r < p; r++ {
		steps := []Step{{Kind: Copy, Src: sendRef(r, p-r), Dst: scratchRef(tmp, 0, p-r)}}
		if r > 0 {
			steps = append(steps, Step{Kind: Copy, Src: sendRef(0, r), Dst: scratchRef(tmp, p-r, r)})
		}
		r0.Steps[r] = steps
	}
	s.Rounds = append(s.Rounds, r0)

	// unpack emits the copies restoring round ki's received blocks from
	// its pack-recv buffer into the rotation buffer.
	unpack := func(ki int) []Step {
		k := ks[ki]
		buf := packA + ki%2
		var steps []Step
		m := 0
		for i := 0; i < p; i++ {
			if i&k != 0 {
				steps = append(steps, Step{Kind: Copy, Src: scratchRef(buf, m, 1), Dst: scratchRef(tmp, i, 1)})
				m++
			}
		}
		return steps
	}

	for ki, k := range ks {
		rd := Round{Steps: make([][]Step, p)}
		for r := 0; r < p; r++ {
			var steps []Step
			if ki > 0 {
				steps = append(steps, unpack(ki-1)...)
			}
			m := 0
			for i := 0; i < p; i++ {
				if i&k != 0 {
					steps = append(steps, Step{Kind: Copy, Src: scratchRef(tmp, i, 1), Dst: scratchRef(packS, m, 1)})
					m++
				}
			}
			to := (r + k) % p
			from := (r - k + p) % p
			steps = append(steps, Step{
				Kind: SendRecv,
				To:   to, Src: scratchRef(packS, 0, m),
				From: from, Dst: scratchRef(packA+ki%2, 0, m),
			})
			rd.Steps[r] = steps
		}
		s.Rounds = append(s.Rounds, rd)
	}

	// Final round: unpack the last exchange, then invert the rotation —
	// local block i holds the data from rank r-i.
	fin := Round{Steps: make([][]Step, p)}
	for r := 0; r < p; r++ {
		steps := unpack(len(ks) - 1)
		for i := 0; i < p; i++ {
			src := (r - i + p) % p
			steps = append(steps, Step{Kind: Copy, Src: scratchRef(tmp, i, 1), Dst: recvRef(src, 1)})
		}
		fin.Steps[r] = steps
	}
	s.Rounds = append(s.Rounds, fin)
	return s, nil
}
