package sched

import (
	"fmt"
	"math/rand"
	"testing"

	"alltoallx/internal/comm"
	"alltoallx/internal/netmodel"
	"alltoallx/internal/runtime"
	"alltoallx/internal/sim"
	"alltoallx/internal/testutil"
	"alltoallx/internal/topo"
)

// shapesFor returns the rank counts a generator must handle; hypercube is
// restricted to powers of two.
func shapesFor(name string, rng *rand.Rand, n int) []int {
	var out []int
	if name == "hypercube" {
		for k := 0; k <= 5; k++ {
			out = append(out, 1<<k)
		}
		return out
	}
	out = append(out, 1, 2, 3) // degenerate and tiny shapes always
	for len(out) < n {
		out = append(out, 2+rng.Intn(23))
	}
	return out
}

// TestGeneratorsVerifyAtRandomShapes is the property test: every
// generator's output passes static verification at randomized world
// shapes, with and without a topology mapping.
func TestGeneratorsVerifyAtRandomShapes(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(7))
	for _, name := range Generators() {
		for _, p := range shapesFor(name, rng, 10) {
			s, err := Generate(name, p, nil)
			if err != nil {
				t.Fatalf("%s p=%d: %v", name, p, err)
			}
			if err := Verify(s); err != nil {
				t.Errorf("%s p=%d fails verification: %v", name, p, err)
			}
			if s.Ranks != p {
				t.Errorf("%s p=%d: schedule says %d ranks", name, p, s.Ranks)
			}
		}
	}
}

// TestTorusUsesTopology checks the torus generator shapes itself from the
// node x ppn grid when a mapping is present and still verifies.
func TestTorusUsesTopology(t *testing.T) {
	t.Parallel()
	spec := topo.Spec{Sockets: 1, NumaPerSocket: 1, CoresPerNuma: 5}
	m, err := topo.NewMapping(spec, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Generate("torus", 15, m)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "torus3x5" {
		t.Errorf("schedule name %q, want torus3x5 (the node x ppn grid)", s.Name)
	}
	if err := Verify(s); err != nil {
		t.Fatal(err)
	}
	// Without topology, 15 factors most-square as 3x5 too; a prime count
	// degenerates to a single ring row.
	s, err = Generate("torus", 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "torus1x7" {
		t.Errorf("schedule name %q, want torus1x7", s.Name)
	}
	if err := Verify(s); err != nil {
		t.Fatal(err)
	}
}

// execBody runs an Exec via the live pattern check: fill, run twice
// (persistence), verify every byte.
func execBody(s *Schedule, block int) func(c comm.Comm) error {
	return func(c comm.Comm) error {
		ex := NewExec(s) // one executor per rank: scratch is per-rank state
		p, rank := c.Size(), c.Rank()
		send := comm.Alloc(p * block)
		recv := comm.Alloc(p * block)
		testutil.FillAlltoall(send, rank, p, block)
		for iter := 0; iter < 2; iter++ {
			for i := range recv.Bytes() {
				recv.Bytes()[i] = 0xEE
			}
			if err := ex.Run(c, send, recv, block, nil); err != nil {
				return fmt.Errorf("iter %d: %w", iter, err)
			}
			if err := testutil.CheckAlltoall(recv, rank, p, block); err != nil {
				return fmt.Errorf("iter %d: %w", iter, err)
			}
		}
		return nil
	}
}

// TestExecLiveCorrectness runs every generator's schedule on the live
// runtime and checks every byte lands where MPI_Alltoall says.
func TestExecLiveCorrectness(t *testing.T) {
	t.Parallel()
	for _, name := range Generators() {
		shapes := []int{1, 2, 5, 8, 12}
		if name == "hypercube" {
			shapes = []int{1, 2, 8, 16}
		}
		for _, p := range shapes {
			for _, block := range []int{1, 3, 64} {
				name, p, block := name, p, block
				t.Run(fmt.Sprintf("%s/p%d/b%d", name, p, block), func(t *testing.T) {
					t.Parallel()
					s := mustGen(t, name, p)
					if err := Verify(s); err != nil {
						t.Fatal(err)
					}
					if err := runtime.Run(runtime.Config{Ranks: p}, execBody(s, block)); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}

// TestExecSimCorrectness runs every generator under the discrete-event
// simulator with real payloads: the virtual-time transport must deliver
// the same bytes.
func TestExecSimCorrectness(t *testing.T) {
	t.Parallel()
	model := netmodel.Dane()
	model.Node = topo.Spec{Sockets: 2, NumaPerSocket: 2, CoresPerNuma: 2}
	for _, name := range Generators() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			p := 16
			s := mustGen(t, name, p)
			if err := Verify(s); err != nil {
				t.Fatal(err)
			}
			if _, err := sim.RunCluster(sim.ClusterConfig{Model: model, Nodes: 2, PPN: 8, Seed: 1},
				execBody(s, 4)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestExecArgErrors checks executor argument validation.
func TestExecArgErrors(t *testing.T) {
	t.Parallel()
	s := mustGen(t, "pairwise", 4)
	err := runtime.Run(runtime.Config{Ranks: 2}, func(c comm.Comm) error {
		e := NewExec(s)
		send, recv := comm.Alloc(2*4), comm.Alloc(2*4)
		if err := e.Run(c, send, recv, 4, nil); err == nil {
			return fmt.Errorf("4-rank schedule ran on a 2-rank communicator")
		}
		if err := e.Run(c, send, recv, 0, nil); err == nil {
			return fmt.Errorf("zero block accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestExecRejectsReserved: a schedule with a Reduce step fails at run
// time too (defense in depth behind the verifier).
func TestExecRejectsReserved(t *testing.T) {
	t.Parallel()
	s := &Schedule{
		Format: FormatVersion, Name: "bad", Ranks: 1,
		Rounds: []Round{{Steps: [][]Step{{{Kind: Reduce, Src: sendRef(0, 1), Dst: recvRef(0, 1)}}}}},
	}
	err := runtime.Run(runtime.Config{Ranks: 1}, func(c comm.Comm) error {
		e := NewExec(s)
		if err := e.Run(c, comm.Alloc(4), comm.Alloc(4), 4, nil); err == nil {
			return fmt.Errorf("reduce step executed")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
