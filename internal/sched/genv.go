// Alltoallv schedule generation: the variable-count variants of the
// classic exchange generators. An alltoallv schedule is parameterized by
// its per-pair count matrix, so (unlike the fixed-shape generators in
// the registry) it is compiled per counts via GenerateV rather than by
// name through Generate. Buffers use the canonical packed layout: the
// send space is packed by destination (row prefix sums of the counts
// matrix), the recv space by source (column prefix sums) — the layout
// core's sched-backed alltoallv algorithms pack user displacements into.
package sched

import (
	"fmt"
	"sort"
)

// vGenerators maps the alltoallv generator names to per-rank step
// builders: given the counts matrix and a rank, emit that rank's rounds.
var vGenerators = map[string]func(counts [][]int, r int) [][]Step{
	"direct":   directVRounds,
	"pairwise": pairwiseVRounds,
}

// VGenerators returns the alltoallv generator names, sorted.
func VGenerators() []string {
	names := make([]string, 0, len(vGenerators))
	for n := range vGenerators {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// GenerateV compiles the named alltoallv schedule for the given count
// matrix: counts[s][d] blocks flow from rank s to rank d (zero-count
// pairs exchange nothing). The schedule's name records the generator as
// "v-<name>"; Schedule.Counts keeps a copy of the matrix.
func GenerateV(name string, counts [][]int) (*Schedule, error) {
	gen, ok := vGenerators[name]
	if !ok {
		return nil, fmt.Errorf("sched: unknown alltoallv generator %q (have %v)", name, VGenerators())
	}
	p := len(counts)
	if err := checkRanks(p); err != nil {
		return nil, err
	}
	cp := make([][]int, p)
	for s, row := range counts {
		if len(row) != p {
			return nil, fmt.Errorf("sched: counts row %d has %d entries, want %d", s, len(row), p)
		}
		for d, n := range row {
			if n < 0 {
				return nil, fmt.Errorf("sched: negative count %d for pair %d->%d", n, s, d)
			}
		}
		cp[s] = append([]int(nil), row...)
	}
	sc := &Schedule{Format: FormatVersion, Name: "v-" + name, Ranks: p,
		Coll: CollAlltoallv, Counts: cp}
	perRank := make([][][]Step, p)
	nr := 0
	for r := 0; r < p; r++ {
		perRank[r] = gen(cp, r)
		if len(perRank[r]) > nr {
			nr = len(perRank[r])
		}
	}
	for ri := 0; ri < nr; ri++ {
		rd := Round{Steps: make([][]Step, p)}
		for r := 0; r < p; r++ {
			if ri < len(perRank[r]) {
				rd.Steps[r] = perRank[r][ri]
			}
		}
		sc.Rounds = append(sc.Rounds, rd)
	}
	return sc, nil
}

// vSendRef is the packed send-space ref of the r->d message (rank r's
// row prefix sum), or a zero-length ref when the count is zero.
func vSendRef(counts [][]int, r, d int) Ref {
	off := 0
	for dd := 0; dd < d; dd++ {
		off += counts[r][dd]
	}
	return sendRef(off, counts[r][d])
}

// vRecvRef is the packed recv-space ref of the s->r message (rank r's
// column prefix sum), or a zero-length ref when the count is zero.
func vRecvRef(counts [][]int, r, s int) Ref {
	off := 0
	for ss := 0; ss < s; ss++ {
		off += counts[ss][r]
	}
	return recvRef(off, counts[s][r])
}

// directVRounds is rank r's single round of the spread direct alltoallv:
// the self copy, then all receives, then all sends, in the same spread
// order as the fixed-count generator, skipping zero-count pairs.
func directVRounds(counts [][]int, r int) [][]Step {
	p := len(counts)
	var steps []Step
	if counts[r][r] > 0 {
		steps = append(steps, Step{Kind: Copy, Src: vSendRef(counts, r, r), Dst: vRecvRef(counts, r, r)})
	}
	for i := 1; i < p; i++ {
		from := (r - i + p) % p
		if counts[from][r] > 0 {
			steps = append(steps, Step{Kind: Recv, From: from, Dst: vRecvRef(counts, r, from)})
		}
	}
	for i := 1; i < p; i++ {
		to := (r + i) % p
		if counts[r][to] > 0 {
			steps = append(steps, Step{Kind: Send, To: to, Src: vSendRef(counts, r, to)})
		}
	}
	return [][]Step{steps}
}

// pairwiseVRounds is rank r's pairwise alltoallv: the self-copy round,
// then p-1 rounds pairing disjoint partners (send to r+i, receive from
// r-i), degrading each exchange to a lone send or receive — or nothing —
// where counts are zero.
func pairwiseVRounds(counts [][]int, r int) [][]Step {
	p := len(counts)
	rounds := make([][]Step, 0, p)
	var self []Step
	if counts[r][r] > 0 {
		self = []Step{{Kind: Copy, Src: vSendRef(counts, r, r), Dst: vRecvRef(counts, r, r)}}
	}
	rounds = append(rounds, self)
	for i := 1; i < p; i++ {
		to := (r + i) % p
		from := (r - i + p) % p
		ns, nr := counts[r][to], counts[from][r]
		var steps []Step
		switch {
		case ns > 0 && nr > 0:
			steps = []Step{{Kind: SendRecv, To: to, Src: vSendRef(counts, r, to),
				From: from, Dst: vRecvRef(counts, r, from)}}
		case ns > 0:
			steps = []Step{{Kind: Send, To: to, Src: vSendRef(counts, r, to)}}
		case nr > 0:
			steps = []Step{{Kind: Recv, From: from, Dst: vRecvRef(counts, r, from)}}
		}
		rounds = append(rounds, steps)
	}
	return rounds
}
