package sched

import (
	"fmt"
	"strings"
	"testing"

	"alltoallx/internal/comm"
	"alltoallx/internal/runtime"
)

// vTestCounts builds a deterministic non-uniform count matrix with zero
// pairs, a silent rank (row of zeroes) and a deaf rank (column of
// zeroes) once p is large enough to spare them.
func vTestCounts(p int) [][]int {
	counts := make([][]int, p)
	for s := range counts {
		counts[s] = make([]int, p)
		for d := range counts[s] {
			counts[s][d] = (s*5 + d*3 + (s+d)%4) % 7
		}
	}
	if p >= 4 {
		for d := 0; d < p; d++ {
			counts[p-1][d] = 0 // rank p-1 sends nothing
		}
		for s := 0; s < p; s++ {
			counts[s][p-2] = 0 // rank p-2 receives nothing
		}
	}
	return counts
}

// TestGenerateVVerify proves both alltoallv generators at several shapes
// through the full verifier and the streamed per-slice verifier, with
// non-uniform counts including zero pairs, rows and columns.
func TestGenerateVVerify(t *testing.T) {
	t.Parallel()
	for _, name := range VGenerators() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for _, p := range []int{1, 2, 3, 4, 6, 9} {
				counts := vTestCounts(p)
				s, err := GenerateV(name, counts)
				if err != nil {
					t.Fatalf("p=%d: GenerateV: %v", p, err)
				}
				if s.Collective() != CollAlltoallv {
					t.Fatalf("p=%d: collective %q", p, s.Collective())
				}
				if err := Verify(s); err != nil {
					t.Fatalf("p=%d: Verify: %v", p, err)
				}
				sv := NewStreamVerifier(p)
				for r := 0; r < p; r++ {
					rp, err := Slice(s, r)
					if err != nil {
						t.Fatalf("p=%d: Slice(%d): %v", p, r, err)
					}
					if err := sv.Add(rp); err != nil {
						t.Fatalf("p=%d: Add(%d): %v", p, r, err)
					}
				}
				if err := sv.Finish(); err != nil {
					t.Fatalf("p=%d: Finish: %v", p, err)
				}
			}
		})
	}
}

// TestGenerateVRejectsBadCounts: malformed count matrices are rejected at
// compile time.
func TestGenerateVRejectsBadCounts(t *testing.T) {
	t.Parallel()
	if _, err := GenerateV("direct", [][]int{{1, 2}, {3}}); err == nil ||
		!strings.Contains(err.Error(), "row 1") {
		t.Errorf("non-square matrix: %v", err)
	}
	if _, err := GenerateV("direct", [][]int{{1, 2}, {-1, 0}}); err == nil ||
		!strings.Contains(err.Error(), "negative count") {
		t.Errorf("negative count: %v", err)
	}
	if _, err := GenerateV("no-such", [][]int{{1}}); err == nil ||
		!strings.Contains(err.Error(), "unknown alltoallv generator") {
		t.Errorf("unknown generator: %v", err)
	}
}

// TestStreamVerifierRejectsVCorruption: cross-slice alltoallv corruption
// classes caught by the streamed verifier.
func TestStreamVerifierRejectsVCorruption(t *testing.T) {
	t.Parallel()
	const p = 4
	slices := func(t *testing.T) []*RankProgram {
		t.Helper()
		s, err := GenerateV("pairwise", vTestCounts(p))
		if err != nil {
			t.Fatal(err)
		}
		out := make([]*RankProgram, p)
		for r := 0; r < p; r++ {
			rp, err := Slice(s, r)
			if err != nil {
				t.Fatal(err)
			}
			out[r] = rp
		}
		return out
	}
	cases := []struct {
		name    string
		mutate  func(t *testing.T, rps []*RankProgram)
		wantErr string
	}{
		{
			name: "count declarations drift across slices",
			mutate: func(t *testing.T, rps []*RankProgram) {
				// Rank 0 declares one more block for pair 0->1 than rank 1
				// expects. The steps still agree (so every per-round check
				// passes); only the declaration fingerprints can catch it.
				rps[0].VSend[1]++
			},
			wantErr: "count declarations disagree",
		},
		{
			name: "negative count declaration",
			mutate: func(t *testing.T, rps []*RankProgram) {
				rps[2].VSend[0] = -1
			},
			wantErr: "negative count",
		},
		{
			name: "self counts disagree",
			mutate: func(t *testing.T, rps []*RankProgram) {
				rps[1].VSend[1]++
			},
			wantErr: "self count",
		},
		{
			name: "counts on a non-alltoallv program",
			mutate: func(t *testing.T, rps []*RankProgram) {
				rps[0].Coll = CollAlltoall
				rps[0].VSend = nil // keep VRecv: the leftover is the defect
			},
			wantErr: "per-pair counts on a non-alltoallv",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			rps := slices(t)
			tc.mutate(t, rps)
			err := streamAll(rps)
			if err == nil {
				t.Fatalf("corruption %q passed streamed verification", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// vFill/vCheck mark every block of the canonical packed layout with a
// (source, destination, index) byte so misrouted or misplaced blocks are
// detected. Block size is 1 byte — the granularity core's sched-backed
// alltoallv drives the executor at.
func vMark(s, d, k int) byte { return byte(s*89+d*17+k) ^ 0xA5 }

// TestGenerateVExecLive executes both alltoallv schedules on the live
// runtime at block=1 with packed payloads and checks every delivered
// byte, twice through one executor.
func TestGenerateVExecLive(t *testing.T) {
	t.Parallel()
	const p = 6
	counts := vTestCounts(p)
	for _, name := range VGenerators() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			s, err := GenerateV(name, counts)
			if err != nil {
				t.Fatal(err)
			}
			if err := Verify(s); err != nil {
				t.Fatal(err)
			}
			err = runtime.Run(runtime.Config{Ranks: p}, func(c comm.Comm) error {
				r := c.Rank()
				ex := NewExec(s)
				send := comm.Alloc(maxInt(1, sumCounts(counts[r])))
				col := 0
				for src := 0; src < p; src++ {
					col += counts[src][r]
				}
				recv := comm.Alloc(maxInt(1, col))
				off := 0
				for d := 0; d < p; d++ {
					for k := 0; k < counts[r][d]; k++ {
						send.Bytes()[off] = vMark(r, d, k)
						off++
					}
				}
				for iter := 0; iter < 2; iter++ {
					for i := range recv.Bytes() {
						recv.Bytes()[i] = 0xEE
					}
					if err := ex.Run(c, send, recv, 1, nil); err != nil {
						return fmt.Errorf("iter %d: %w", iter, err)
					}
					off := 0
					for src := 0; src < p; src++ {
						for k := 0; k < counts[src][r]; k++ {
							if got, want := recv.Bytes()[off], vMark(src, r, k); got != want {
								return fmt.Errorf("iter %d: block %d of %d->%d: got %#x, want %#x", iter, k, src, r, got, want)
							}
							off++
						}
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
