package sched

import (
	"fmt"
	"strings"
	"sync"

	"alltoallx/internal/topo"
)

// This file is the static half of the flow-level contention model's
// observability: it folds a schedule's per-round message matrices onto
// the directed links of a topo.Fabric — the same routes the simulator
// books flows on — so a schedule's link pressure can be inspected
// (a2asched print -linkload) before anything runs. LoadRecord is the
// dynamic counterpart: executors record what they actually sent, which
// the tests pin against the static analysis.

// nodeOfFunc resolves a rank to its fabric node.
type nodeOfFunc func(rank int) int

// resolveNodes validates the (ranks, fabric, mapping) triple and returns
// the rank->node function: the mapping's placement when given, otherwise
// the one-rank-per-node identity.
func resolveNodes(ranks int, f *topo.Fabric, m *topo.Mapping) (nodeOfFunc, error) {
	if m != nil {
		if m.Size() != ranks {
			return nil, fmt.Errorf("sched: link load needs a mapping of %d ranks, got %d", ranks, m.Size())
		}
		if m.Nodes() != f.Nodes() {
			return nil, fmt.Errorf("sched: mapping spans %d nodes but the fabric has %d", m.Nodes(), f.Nodes())
		}
		return m.NodeOf, nil
	}
	if f.Nodes() != ranks {
		return nil, fmt.Errorf("sched: without a mapping each rank is a node, so a %d-rank schedule needs a %d-node fabric, got %d", ranks, ranks, f.Nodes())
	}
	return func(r int) int { return r }, nil
}

// matrixLinkLoads folds one blocks-sent matrix onto the fabric's links.
func matrixLinkLoads(mat [][]int, f *topo.Fabric, nodeOf nodeOfFunc) []int {
	load := make([]int, f.Links())
	for src, row := range mat {
		for dst, blocks := range row {
			if blocks == 0 {
				continue
			}
			a, b := nodeOf(src), nodeOf(dst)
			if a == b {
				continue // intra-node traffic never touches the fabric
			}
			for _, id := range f.RouteLinks(a, b) {
				load[id] += blocks
			}
		}
	}
	return load
}

// LinkLoads computes the schedule's static per-round link loads over a
// fabric: loads[ri][id] is the number of blocks round ri routes across
// directed link id. With a nil mapping each rank is its own node (the
// fabric must then have exactly s.Ranks nodes); with a mapping, ranks
// fold onto their nodes and intra-node traffic is excluded.
func LinkLoads(s *Schedule, f *topo.Fabric, m *topo.Mapping) ([][]int, error) {
	nodeOf, err := resolveNodes(s.Ranks, f, m)
	if err != nil {
		return nil, err
	}
	loads := make([][]int, len(s.Rounds))
	for ri := range s.Rounds {
		loads[ri] = matrixLinkLoads(s.RoundMatrix(ri), f, nodeOf)
	}
	return loads, nil
}

// FormatLinkLoads renders per-round link loads deterministically: a
// per-round summary (total link-blocks, links used, the hottest link)
// followed by every loaded link in (from, to) order. The golden files
// under testdata pin this format.
func FormatLinkLoads(f *topo.Fabric, loads [][]int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "link load over %s\n", f)
	ids := f.SortedLinks()
	for ri, load := range loads {
		total, max, used := 0, 0, 0
		for _, v := range load {
			total += v
			if v > max {
				max = v
			}
			if v > 0 {
				used++
			}
		}
		fmt.Fprintf(&b, "round %d: %d link-blocks on %d/%d links, max %d\n", ri, total, used, len(load), max)
		for _, id := range ids {
			if load[id] == 0 {
				continue
			}
			from, to := f.Edge(id)
			fmt.Fprintf(&b, "  %3d->%-3d %d\n", from, to, load[id])
		}
	}
	return b.String()
}

// LoadRecord accumulates the traffic matrices a schedule's executors
// actually sent, per round. One record is shared by every rank's Exec
// (SetLoadRecord), so it locks; executors themselves stay single-rank.
type LoadRecord struct {
	mu     sync.Mutex
	ranks  int       // immutable after NewLoadRecord
	rounds [][][]int // [round][src][dst] blocks; guarded by mu
}

// NewLoadRecord returns a record for a world of the given size.
func NewLoadRecord(ranks int) *LoadRecord {
	return &LoadRecord{ranks: ranks}
}

// Add records that src sent blocks to dst in the given round.
func (l *LoadRecord) Add(round, src, dst, blocks int) {
	if round < 0 || src < 0 || src >= l.ranks || dst < 0 || dst >= l.ranks {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.rounds) <= round {
		mat := make([][]int, l.ranks)
		for i := range mat {
			mat[i] = make([]int, l.ranks)
		}
		l.rounds = append(l.rounds, mat)
	}
	l.rounds[round][src][dst] += blocks
}

// Rounds returns how many rounds have recorded traffic.
func (l *LoadRecord) Rounds() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.rounds)
}

// Matrix returns a copy of round ri's recorded blocks-sent matrix.
func (l *LoadRecord) Matrix(ri int) [][]int {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([][]int, l.ranks)
	for i := range out {
		out[i] = make([]int, l.ranks)
		if ri >= 0 && ri < len(l.rounds) {
			copy(out[i], l.rounds[ri][i])
		}
	}
	return out
}

// LinkLoads folds the recorded matrices onto a fabric, mirroring the
// static LinkLoads — on a full run of a verified schedule the two are
// identical, which the tests assert.
func (l *LoadRecord) LinkLoads(f *topo.Fabric, m *topo.Mapping) ([][]int, error) {
	nodeOf, err := resolveNodes(l.ranks, f, m)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	loads := make([][]int, len(l.rounds))
	for ri := range l.rounds {
		loads[ri] = matrixLinkLoads(l.rounds[ri], f, nodeOf)
	}
	return loads, nil
}
