package sched

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"alltoallx/internal/comm"
	"alltoallx/internal/netmodel"
	"alltoallx/internal/runtime"
	"alltoallx/internal/sim"
	"alltoallx/internal/topo"
)

// update regenerates the golden link-load renderings:
//
//	go test ./internal/sched -run TestLinkLoadGolden -update
var update = flag.Bool("update", false, "rewrite the golden files under testdata")

// TestLinkLoadGolden pins the deterministic rendering of the static
// link-load analysis for the three sched:* topologies at small worlds —
// the exact text a2asched print -linkload shows.
func TestLinkLoadGolden(t *testing.T) {
	t.Parallel()
	cases := []struct {
		gen    string
		fabric string
		ranks  int
		file   string
	}{
		{"ring", "ring", 8, "linkload_ring8.golden"},
		{"torus", "torus", 16, "linkload_torus4x4.golden"},
		{"hypercube", "hypercube", 8, "linkload_hypercube8.golden"},
	}
	for _, c := range cases {
		s, err := Generate(c.gen, c.ranks, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(s); err != nil {
			t.Fatal(err)
		}
		f, err := topo.NewFabric(c.fabric, c.ranks)
		if err != nil {
			t.Fatal(err)
		}
		loads, err := LinkLoads(s, f, nil)
		if err != nil {
			t.Fatal(err)
		}
		got := FormatLinkLoads(f, loads)
		path := filepath.Join("testdata", c.file)
		if *update {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run with -update to regenerate)", path, err)
		}
		if got != string(want) {
			t.Errorf("%s: link-load rendering changed; diff against %s or regenerate with -update:\n%s",
				c.gen, path, got)
		}
	}
}

// TestLinkLoadsValidation pins the shape checks: mismatched mapping size,
// mismatched fabric node count, and the no-mapping one-rank-per-node rule.
func TestLinkLoadsValidation(t *testing.T) {
	t.Parallel()
	s, err := Generate("ring", 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	f4, _ := topo.NewFabric("ring", 4)
	if _, err := LinkLoads(s, f4, nil); err == nil {
		t.Error("8-rank schedule over a 4-node fabric without a mapping accepted")
	}
	spec := topo.Spec{Sockets: 1, NumaPerSocket: 1, CoresPerNuma: 2}
	m, err := topo.NewMapping(spec, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LinkLoads(s, f4, m); err != nil {
		t.Errorf("matching mapping rejected: %v", err)
	}
	f8, _ := topo.NewFabric("ring", 8)
	if _, err := LinkLoads(s, f8, m); err == nil {
		t.Error("mapping over 4 nodes accepted against an 8-node fabric")
	}
	mBig, err := topo.NewMapping(spec, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LinkLoads(s, f8, mBig); err == nil {
		t.Error("16-rank mapping accepted for an 8-rank schedule")
	}
}

// TestLoadRecordMatchesStatic executes schedules on the live runtime with
// a shared LoadRecord and checks the recorded traffic folds onto the
// fabric exactly as the static analysis predicts.
func TestLoadRecordMatchesStatic(t *testing.T) {
	t.Parallel()
	for _, gen := range []string{"pairwise", "bruck", "ring"} {
		const ranks, block = 8, 64
		s, err := Generate(gen, ranks, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(s); err != nil {
			t.Fatal(err)
		}
		lr := NewLoadRecord(ranks)
		err = runtime.Run(runtime.Config{Ranks: ranks}, func(c comm.Comm) error {
			ex := NewExec(s)
			ex.SetLoadRecord(lr)
			send := comm.Alloc(ranks * block)
			recv := comm.Alloc(ranks * block)
			return ex.Run(c, send, recv, block, nil)
		})
		if err != nil {
			t.Fatal(err)
		}
		// A trailing copies-only round (bruck's reorder phase) records no
		// sends, so the record may be shorter than the schedule — never
		// longer. Matrix returns zeros past the recorded range, matching
		// the schedule's empty send matrix there.
		if lr.Rounds() > len(s.Rounds) {
			t.Fatalf("%s: recorded %d rounds, schedule has %d", gen, lr.Rounds(), len(s.Rounds))
		}
		for ri := range s.Rounds {
			want := s.RoundMatrix(ri)
			got := lr.Matrix(ri)
			for src := range want {
				for dst := range want[src] {
					if want[src][dst] != got[src][dst] {
						t.Errorf("%s round %d: %d->%d recorded %d blocks, schedule says %d",
							gen, ri, src, dst, got[src][dst], want[src][dst])
					}
				}
			}
		}
		f, err := topo.NewFabric("ring", ranks)
		if err != nil {
			t.Fatal(err)
		}
		stat, err := LinkLoads(s, f, nil)
		if err != nil {
			t.Fatal(err)
		}
		dyn, err := lr.LinkLoads(f, nil)
		if err != nil {
			t.Fatal(err)
		}
		for ri := range stat {
			for id := range stat[ri] {
				rec := 0
				if ri < len(dyn) {
					rec = dyn[ri][id]
				}
				if stat[ri][id] != rec {
					t.Errorf("%s round %d link %d: static %d blocks, recorded %d",
						gen, ri, id, stat[ri][id], rec)
				}
			}
		}
	}
}

// TestLinkLoadsMatchSimulatedFlows ties the static analysis to the
// flow-level simulator: running a schedule under a fabric must book, per
// round, exactly block * (static link-blocks) bytes onto the links —
// the "-linkload preview is what the simulator charges" contract.
func TestLinkLoadsMatchSimulatedFlows(t *testing.T) {
	t.Parallel()
	model := netmodel.Dane()
	model.Node = topo.Spec{Sockets: 1, NumaPerSocket: 1, CoresPerNuma: 2}
	const (
		nodes = 4
		ppn   = 2
		block = 2048
	)
	ranks := nodes * ppn
	mapping, err := topo.NewMapping(model.Node, nodes, ppn)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct{ gen, fabric string }{
		{"pairwise", "ring"},
		{"ring", "ring"},
		{"torus", "torus"},
		{"hypercube", "hypercube"},
	} {
		s, err := Generate(c.gen, ranks, mapping)
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(s); err != nil {
			t.Fatal(err)
		}
		f, err := topo.NewFabric(c.fabric, nodes)
		if err != nil {
			t.Fatal(err)
		}
		loads, err := LinkLoads(s, f, mapping)
		if err != nil {
			t.Fatal(err)
		}
		var rep *sim.FlowReport
		cfg := sim.ClusterConfig{Model: model, Nodes: nodes, PPN: ppn, Seed: 2, Fabric: c.fabric}
		_, err = sim.RunClusterDebug(cfg, func(cm comm.Comm) error {
			ex := NewExec(s)
			send := comm.Virtual(ranks * block)
			recv := comm.Virtual(ranks * block)
			return ex.Run(cm, send, recv, block, nil)
		}, func(net *sim.Network, final float64) {
			rep = net.FlowReport()
		})
		if err != nil {
			t.Fatal(err)
		}
		for ri := range s.Rounds {
			var want int64
			for _, v := range loads[ri] {
				want += int64(v) * block
			}
			got := rep.Rounds[TagBase+ri].LinkBytes
			if got != want {
				t.Errorf("%s over %s, round %d: simulator booked %d link-bytes, static analysis says %d",
					c.gen, c.fabric, ri, got, want)
			}
		}
		var total, fromRounds int64
		for _, l := range rep.Links {
			total += l.BytesEnqueued
		}
		for _, rc := range rep.Rounds {
			fromRounds += rc.LinkBytes
		}
		if total != fromRounds {
			t.Errorf("%s over %s: per-link bytes %d != per-round bytes %d", c.gen, c.fabric, total, fromRounds)
		}
	}
}
