package sched

import (
	"fmt"
	"strings"
)

// matrixRanks is the largest world whose per-round message matrices
// Format still renders; beyond it only the per-round stats lines appear.
const matrixRanks = 16

// FormatRef renders a buffer reference as space[off:n] with the space's
// conventional name: the user buffers as "send" and "recv", scratch
// spaces as "s0", "s1", ...
func FormatRef(r Ref) string {
	var buf string
	switch r.Buf {
	case SpaceSend:
		buf = "send"
	case SpaceRecv:
		buf = "recv"
	default:
		buf = fmt.Sprintf("s%d", r.Buf-SpaceScratch)
	}
	return fmt.Sprintf("%s[%d:%d]", buf, r.Off, r.N)
}

// Format renders a schedule for human inspection: a header naming the
// collective (and, for reductions, the operator label), the aggregate
// stats, and per round the message matrix (worlds up to matrixRanks
// ranks) plus every reduce step with its operator and operand refs —
// "acc op= partial", the executor's acc = acc op in contract.
func Format(s *Schedule) string {
	var b strings.Builder
	st := s.Stats()
	coll := s.Collective()
	if coll.reduction() {
		fmt.Fprintf(&b, "schedule %q (%s, op %s): %d ranks, %d rounds\n", s.Name, coll, s.Op, s.Ranks, st.Rounds)
	} else {
		fmt.Fprintf(&b, "schedule %q (%s): %d ranks, %d rounds\n", s.Name, coll, s.Ranks, st.Rounds)
	}
	fmt.Fprintf(&b, "  messages      %d (max %d per round)\n", st.Messages, st.MaxRoundMessages)
	fmt.Fprintf(&b, "  wire volume   %d blocks\n", st.WireBlocks)
	fmt.Fprintf(&b, "  repack        %d copies, %d blocks\n", st.Copies, st.CopyBlocks)
	if coll.reduction() {
		fmt.Fprintf(&b, "  reduce        %d steps, %d blocks\n", st.Reduces, st.ReduceBlocks)
	}
	fmt.Fprintf(&b, "  scratch       %d blocks per rank\n", st.ScratchBlocks)
	for ri, rd := range s.Rounds {
		m := s.RoundMatrix(ri)
		msgs, vol := 0, 0
		for _, row := range m {
			for _, n := range row {
				if n > 0 {
					msgs++
					vol += n
				}
			}
		}
		fmt.Fprintf(&b, "round %d: %d messages, %d blocks\n", ri, msgs, vol)
		if s.Ranks <= matrixRanks {
			for src, row := range m {
				fmt.Fprintf(&b, "  %3d |", src)
				for _, n := range row {
					if n == 0 {
						fmt.Fprintf(&b, "  .")
					} else {
						fmt.Fprintf(&b, " %2d", n)
					}
				}
				fmt.Fprintln(&b)
			}
			for r, steps := range rd.Steps {
				for _, stp := range steps {
					if stp.Kind == Reduce {
						fmt.Fprintf(&b, "  rank %d: %s %s= %s\n", r, FormatRef(stp.Dst), stp.Op, FormatRef(stp.Src))
					}
				}
			}
		}
	}
	return b.String()
}
