package sched

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFormatRef: the conventional space names.
func TestFormatRef(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct {
		ref  Ref
		want string
	}{
		{sendRef(3, 1), "send[3:1]"},
		{recvRef(0, 4), "recv[0:4]"},
		{scratchRef(0, 2, 1), "s0[2:1]"},
		{scratchRef(1, 0, 5), "s1[0:5]"},
	} {
		if got := FormatRef(tc.ref); got != tc.want {
			t.Errorf("FormatRef(%v) = %q, want %q", tc.ref, got, tc.want)
		}
	}
}

// TestFormatGolden pins the rendering of a ring reduce-scatter world —
// header with collective and operator label, stats including the reduce
// line, per-round matrices and reduce steps — against a golden file.
// Regenerate with -update.
func TestFormatGolden(t *testing.T) {
	t.Parallel()
	s, err := Generate("rs-ring", 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := Format(s)
	path := filepath.Join("testdata", "print_rsring6.golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("rendering drifted from %s (run with -update to regenerate):\n%s", path, got)
	}
}

// TestFormatLargeWorld: beyond matrixRanks ranks the per-round matrices
// and reduce listings are suppressed but the stats survive.
func TestFormatLargeWorld(t *testing.T) {
	t.Parallel()
	s, err := Generate("rs-ring", matrixRanks+1, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := Format(s)
	if strings.Contains(out, "|") {
		t.Errorf("matrix rendered for %d ranks:\n%s", matrixRanks+1, out)
	}
	if !strings.Contains(out, "reduce") || !strings.Contains(out, "round 0:") {
		t.Errorf("stats lines missing:\n%s", out)
	}
}
