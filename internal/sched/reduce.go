// Reduction-schedule generators: reduce-scatter and allreduce compiled
// onto the same direct-connect topologies as the all-to-all families
// (ring, 2D torus, hypercube). Every generator is built from a per-rank
// rounds builder shared between the whole-world compiler and the
// rank-sliced compiler, so GenerateRank is byte-identical to
// Slice(Generate(...)) by construction.
//
// The schedules are operator-generic: a reduce-scatter or allreduce
// schedule is valid for any associative, commutative operator, so the
// generators label them OpAny and the executor applies whichever
// operator the caller installs (Exec.SetOp).
//
//   - rs-ring / ar-ring: the classic bucket algorithm — p-1 rounds of
//     one-block reduce-and-forward around the ring (each rank's chunk
//     accumulates contributions as it travels), allreduce appending a
//     p-1-round ring allgather.
//   - rs-torus / ar-torus: the two-phase decomposition on the rows x cols
//     torus — pack into column-major order, ring reduce-scatter along the
//     row ring (rows-block chunks), then along the column ring
//     (one-block chunks); allreduce allgathers back along both rings and
//     unpacks.
//   - rs-hypercube / ar-hypercube: recursive halving (p a power of two) —
//     round t exchanges the halves of the surviving index range across
//     dimension k-1-t and folds the kept half into an accumulator;
//     allreduce appends the mirror recursive-doubling allgather.
package sched

import (
	"fmt"
	"math/bits"

	"alltoallx/internal/topo"
)

// assembleReduce builds a whole-world reduction schedule from a per-rank
// rounds builder with a uniform round count across ranks.
func assembleReduce(name string, coll Coll, p int, scratch []int, rounds func(r int) [][]Step) *Schedule {
	s := &Schedule{Format: FormatVersion, Name: name, Ranks: p, Coll: coll, Op: OpAny, Scratch: scratch}
	perRank := make([][][]Step, p)
	nr := 0
	for r := 0; r < p; r++ {
		perRank[r] = rounds(r)
		if len(perRank[r]) > nr {
			nr = len(perRank[r])
		}
	}
	for ri := 0; ri < nr; ri++ {
		rd := Round{Steps: make([][]Step, p)}
		for r := 0; r < p; r++ {
			if ri < len(perRank[r]) {
				rd.Steps[r] = perRank[r][ri]
			}
		}
		s.Rounds = append(s.Rounds, rd)
	}
	return s
}

// reduceRank wraps one rank's rounds as a RankProgram with the same
// header fields assembleReduce emits, keeping the Slice identity exact.
func reduceRank(name string, coll Coll, p, r int, scratch []int, rounds [][]Step) *RankProgram {
	return &RankProgram{Format: FormatVersion, Name: name, Ranks: p, Rank: r,
		Coll: coll, Op: OpAny, Scratch: scratch, Rounds: rounds}
}

// reduceStep builds the Dst = Dst op Src combine step with the bundled
// generators' operator label.
func reduceStep(dst, src Ref) Step {
	return Step{Kind: Reduce, Src: src, Dst: dst, Op: OpAny}
}

// ringRSRounds emits the rounds of a ring reduce-scatter among q ring
// members for the member at index idx. Member c's chunk is chunk(c)
// (blocks blocks); next/prev are the world ranks of the ring neighbors;
// stageA/stageB are two scratch spaces of blocks blocks used as
// alternating accumulators; the fully reduced own chunk lands at dst.
//
// Round 0 sends chunk idx-1 onward; round t reduces the local
// contribution of chunk idx-1-t into the partial received last round and
// forwards it; after q-1 wire rounds the partial for chunk idx has
// visited every member, and a final round folds in the local
// contribution and copies the result to dst. q == 1 degenerates to a
// single local copy.
func ringRSRounds(q, idx, next, prev, blocks, stageA, stageB int, chunk func(c int) Ref, dst Ref) [][]Step {
	if q == 1 {
		return [][]Step{{{Kind: Copy, Src: chunk(idx), Dst: dst}}}
	}
	stage := func(t int) Ref {
		if t%2 == 0 {
			return scratchRef(stageA, 0, blocks)
		}
		return scratchRef(stageB, 0, blocks)
	}
	rounds := [][]Step{{
		{Kind: Recv, From: prev, Dst: stage(0)},
		{Kind: Send, To: next, Src: chunk(((idx-1)%q + q) % q)},
	}}
	for t := 1; t <= q-2; t++ {
		acc := stage(t - 1)
		rounds = append(rounds, []Step{
			{Kind: Recv, From: prev, Dst: stage(t)},
			reduceStep(acc, chunk(((idx-1-t)%q+q)%q)),
			{Kind: Send, To: next, Src: acc},
		})
	}
	acc := stage(q - 2)
	rounds = append(rounds, []Step{
		reduceStep(acc, chunk(idx)),
		{Kind: Copy, Src: acc, Dst: dst},
	})
	return rounds
}

// ringAGRounds emits the q-1 ring allgather rounds: member idx owns
// chunk(idx) going in, and after the rounds every member holds all q
// chunks (chunk c must already hold valid data at member c).
func ringAGRounds(q, idx, next, prev int, chunk func(c int) Ref) [][]Step {
	var rounds [][]Step
	for t := 0; t <= q-2; t++ {
		rounds = append(rounds, []Step{
			{Kind: Recv, From: prev, Dst: chunk(((idx-1-t)%q + q) % q)},
			{Kind: Send, To: next, Src: chunk(((idx-t)%q + q) % q)},
		})
	}
	return rounds
}

// ringReduceScatterRounds is rank r's program of the ring bucket
// reduce-scatter: chunks are the send-space blocks, the result is the
// single recv block.
func ringReduceScatterRounds(p, r int) [][]Step {
	return ringRSRounds(p, r, (r+1)%p, (r-1+p)%p, 1, 0, 1,
		func(c int) Ref { return sendRef(c, 1) }, recvRef(0, 1))
}

// RingReduceScatter compiles the ring bucket reduce-scatter: p-1 rounds
// of one-block reduce-and-forward, every link carrying exactly one block
// per round.
func RingReduceScatter(p int, _ *topo.Mapping) (*Schedule, error) {
	return assembleReduce("rs-ring", CollReduceScatter, p, []int{1, 1}, func(r int) [][]Step {
		return ringReduceScatterRounds(p, r)
	}), nil
}

func ringReduceScatterRank(p, r int, _ *topo.Mapping) (*RankProgram, error) {
	return reduceRank("rs-ring", CollReduceScatter, p, r, []int{1, 1}, ringReduceScatterRounds(p, r)), nil
}

// ringAllreduceRounds is rank r's program of the ring allreduce: the
// bucket reduce-scatter landing chunk r in recv slot r, then a p-1-round
// ring allgather of the recv space.
func ringAllreduceRounds(p, r int) [][]Step {
	next, prev := (r+1)%p, (r-1+p)%p
	recvChunk := func(c int) Ref { return recvRef(c, 1) }
	rounds := ringRSRounds(p, r, next, prev, 1, 0, 1,
		func(c int) Ref { return sendRef(c, 1) }, recvRef(r, 1))
	return append(rounds, ringAGRounds(p, r, next, prev, recvChunk)...)
}

// RingAllreduce compiles the ring allreduce (bucket reduce-scatter +
// ring allgather): 2(p-1) rounds, bandwidth-optimal wire volume.
func RingAllreduce(p int, _ *topo.Mapping) (*Schedule, error) {
	return assembleReduce("ar-ring", CollAllreduce, p, []int{1, 1}, func(r int) [][]Step {
		return ringAllreduceRounds(p, r)
	}), nil
}

func ringAllreduceRank(p, r int, _ *topo.Mapping) (*RankProgram, error) {
	return reduceRank("ar-ring", CollAllreduce, p, r, []int{1, 1}, ringAllreduceRounds(p, r)), nil
}

// The torus scratch layout: the column-major pack buffer, the row-phase
// accumulators, the row-reduced column chunk, the column-phase
// accumulators, and (allreduce only) the allgather assembly buffer.
const (
	torusPack = 0 // p blocks: send data packed column-major
	torusRowA = 1 // rows blocks: row-phase accumulator
	torusRowB = 2 // rows blocks: row-phase accumulator
	torusCol  = 3 // rows blocks: row-reduced chunk for this column
	torusColA = 4 // 1 block: column-phase accumulator
	torusColB = 5 // 1 block: column-phase accumulator
	torusAG   = 6 // p blocks (allreduce only): column-major allgather
)

func torusReduceScratch(p, rows int) []int    { return []int{p, rows, rows, rows, 1, 1} }
func torusAllreduceScratch(p, rows int) []int { return []int{p, rows, rows, rows, 1, 1, p} }

// torusRSRounds is rank r's reduce-scatter on the rows x cols torus,
// ending with the fully reduced block at dst: pack the send space
// column-major (chunk j' = this rank's contributions to column j', rows
// blocks), ring reduce-scatter along the row ring, then along the column
// ring.
func torusRSRounds(p, rows, cols, r int, dst Ref) [][]Step {
	i, j := r/cols, r%cols
	var pack []Step
	for jj := 0; jj < cols; jj++ {
		for ii := 0; ii < rows; ii++ {
			pack = append(pack, Step{Kind: Copy,
				Src: sendRef(ii*cols+jj, 1), Dst: scratchRef(torusPack, jj*rows+ii, 1)})
		}
	}
	rounds := [][]Step{pack}
	rowNext, rowPrev := i*cols+(j+1)%cols, i*cols+(j-1+cols)%cols
	rounds = append(rounds, ringRSRounds(cols, j, rowNext, rowPrev, rows, torusRowA, torusRowB,
		func(c int) Ref { return scratchRef(torusPack, c*rows, rows) },
		scratchRef(torusCol, 0, rows))...)
	colNext, colPrev := ((i+1)%rows)*cols+j, ((i-1+rows)%rows)*cols+j
	rounds = append(rounds, ringRSRounds(rows, i, colNext, colPrev, 1, torusColA, torusColB,
		func(c int) Ref { return scratchRef(torusCol, c, 1) }, dst)...)
	return rounds
}

// TorusReduceScatter compiles the two-phase torus reduce-scatter: ring
// reduce-scatter along the row ring (rows-block chunks), then along the
// column ring (one-block chunks). The decomposition follows the
// all-to-all torus: the topology's nodes x ppn when it matches, the
// most-square factorization otherwise.
func TorusReduceScatter(p int, m *topo.Mapping) (*Schedule, error) {
	rows, cols := torusShape(p, m)
	name := fmt.Sprintf("rs-torus%dx%d", rows, cols)
	return assembleReduce(name, CollReduceScatter, p, torusReduceScratch(p, rows), func(r int) [][]Step {
		return torusRSRounds(p, rows, cols, r, recvRef(0, 1))
	}), nil
}

func torusReduceScatterRank(p, r int, m *topo.Mapping) (*RankProgram, error) {
	rows, cols := torusShape(p, m)
	name := fmt.Sprintf("rs-torus%dx%d", rows, cols)
	return reduceRank(name, CollReduceScatter, p, r, torusReduceScratch(p, rows),
		torusRSRounds(p, rows, cols, r, recvRef(0, 1))), nil
}

// torusARRounds is rank r's allreduce on the torus: the two-phase
// reduce-scatter landing at slot (j, i) of the column-major allgather
// buffer, ring allgathers along the column then row rings, and a final
// unpack round into the recv space.
func torusARRounds(p, rows, cols, r int) [][]Step {
	i, j := r/cols, r%cols
	rounds := torusRSRounds(p, rows, cols, r, scratchRef(torusAG, j*rows+i, 1))
	rowNext, rowPrev := i*cols+(j+1)%cols, i*cols+(j-1+cols)%cols
	colNext, colPrev := ((i+1)%rows)*cols+j, ((i-1+rows)%rows)*cols+j
	rounds = append(rounds, ringAGRounds(rows, i, colNext, colPrev,
		func(c int) Ref { return scratchRef(torusAG, j*rows+c, 1) })...)
	rounds = append(rounds, ringAGRounds(cols, j, rowNext, rowPrev,
		func(c int) Ref { return scratchRef(torusAG, c*rows, rows) })...)
	var unpack []Step
	for ii := 0; ii < rows; ii++ {
		for jj := 0; jj < cols; jj++ {
			unpack = append(unpack, Step{Kind: Copy,
				Src: scratchRef(torusAG, jj*rows+ii, 1), Dst: recvRef(ii*cols+jj, 1)})
		}
	}
	return append(rounds, unpack)
}

// TorusAllreduce compiles the torus allreduce: the two-phase
// reduce-scatter followed by the mirror column- and row-ring allgathers.
func TorusAllreduce(p int, m *topo.Mapping) (*Schedule, error) {
	rows, cols := torusShape(p, m)
	name := fmt.Sprintf("ar-torus%dx%d", rows, cols)
	return assembleReduce(name, CollAllreduce, p, torusAllreduceScratch(p, rows), func(r int) [][]Step {
		return torusARRounds(p, rows, cols, r)
	}), nil
}

func torusAllreduceRank(p, r int, m *topo.Mapping) (*RankProgram, error) {
	rows, cols := torusShape(p, m)
	name := fmt.Sprintf("ar-torus%dx%d", rows, cols)
	return reduceRank(name, CollAllreduce, p, r, torusAllreduceScratch(p, rows),
		torusARRounds(p, rows, cols, r)), nil
}

// hypercubeRSRounds is rank r's recursive-halving reduce-scatter on the
// k-dimensional hypercube (p = 2^k), ending with the fully reduced block
// at dst. D_t is the 2^(k-t)-rank aligned index range containing r after
// t rounds; round t exchanges the unwanted half of D_t with the partner
// across bit k-1-t, folding the kept half into the stage-t accumulator.
// Scratch space t holds the p/2^(t+1)-block partial received in round t.
func hypercubeRSRounds(p, k, r int, dst Ref) [][]Step {
	if p == 1 {
		return [][]Step{{{Kind: Copy, Src: sendRef(0, 1), Dst: dst}}}
	}
	base := func(t int) int { return r &^ (1<<(k-t) - 1) }
	// fold is the round-t combine of the prior accumulator (the send
	// space for t == 1, a sub-range of stage t-2 after) into stage t-1,
	// completing the partial over D_t.
	fold := func(t int) Step {
		n := p >> t
		if t == 1 {
			return reduceStep(scratchRef(0, 0, n), sendRef(base(1), n))
		}
		return reduceStep(scratchRef(t-1, 0, n), scratchRef(t-2, base(t)-base(t-1), n))
	}
	half := p >> 1
	q := r ^ (1 << (k - 1))
	rounds := [][]Step{{
		{Kind: Recv, From: q, Dst: scratchRef(0, 0, half)},
		{Kind: Send, To: q, Src: sendRef((q>>(k-1))*half, half)},
	}}
	for t := 1; t < k; t++ {
		half := p >> (t + 1)
		b := k - 1 - t
		q := r ^ (1 << b)
		rounds = append(rounds, []Step{
			{Kind: Recv, From: q, Dst: scratchRef(t, 0, half)},
			fold(t),
			{Kind: Send, To: q, Src: scratchRef(t-1, ((q>>b)&1)*half, half)},
		})
	}
	rounds = append(rounds, []Step{
		fold(k),
		{Kind: Copy, Src: scratchRef(k-1, 0, 1), Dst: dst},
	})
	return rounds
}

// hypercubeReduceScratch declares the k halving accumulators: p/2, p/4,
// ..., 1 blocks.
func hypercubeReduceScratch(p, k int) []int {
	if p == 1 {
		return nil
	}
	sc := make([]int, k)
	for t := 0; t < k; t++ {
		sc[t] = p >> (t + 1)
	}
	return sc
}

// hypercubeShape validates the power-of-two rank count and returns k.
func hypercubeShape(p int) (int, error) {
	if p&(p-1) != 0 {
		return 0, fmt.Errorf("sched: hypercube needs a power-of-two rank count, got %d", p)
	}
	return bits.Len(uint(p)) - 1, nil
}

// HypercubeReduceScatter compiles the recursive-halving reduce-scatter
// (p must be a power of two): log2(p) rounds, halving the live index
// range and the message size each round.
func HypercubeReduceScatter(p int, _ *topo.Mapping) (*Schedule, error) {
	k, err := hypercubeShape(p)
	if err != nil {
		return nil, err
	}
	return assembleReduce("rs-hypercube", CollReduceScatter, p, hypercubeReduceScratch(p, k), func(r int) [][]Step {
		return hypercubeRSRounds(p, k, r, recvRef(0, 1))
	}), nil
}

func hypercubeReduceScatterRank(p, r int, _ *topo.Mapping) (*RankProgram, error) {
	k, err := hypercubeShape(p)
	if err != nil {
		return nil, err
	}
	return reduceRank("rs-hypercube", CollReduceScatter, p, r, hypercubeReduceScratch(p, k),
		hypercubeRSRounds(p, k, r, recvRef(0, 1))), nil
}

// hypercubeARRounds is rank r's allreduce on the hypercube: recursive
// halving landing the reduced block in recv slot r, then the mirror
// recursive-doubling allgather over the recv space (round u exchanges
// the aligned 2^u-block range with the partner across bit u).
func hypercubeARRounds(p, k, r int) [][]Step {
	rounds := hypercubeRSRounds(p, k, r, recvRef(r, 1))
	for u := 0; u < k; u++ {
		n := 1 << u
		myBase := r &^ (n - 1)
		q := r ^ n
		rounds = append(rounds, []Step{
			{Kind: Recv, From: q, Dst: recvRef(myBase^n, n)},
			{Kind: Send, To: q, Src: recvRef(myBase, n)},
		})
	}
	return rounds
}

// HypercubeAllreduce compiles the hypercube allreduce (recursive halving
// + recursive doubling): 2 log2(p) rounds.
func HypercubeAllreduce(p int, _ *topo.Mapping) (*Schedule, error) {
	k, err := hypercubeShape(p)
	if err != nil {
		return nil, err
	}
	return assembleReduce("ar-hypercube", CollAllreduce, p, hypercubeReduceScratch(p, k), func(r int) [][]Step {
		return hypercubeARRounds(p, k, r)
	}), nil
}

func hypercubeAllreduceRank(p, r int, _ *topo.Mapping) (*RankProgram, error) {
	k, err := hypercubeShape(p)
	if err != nil {
		return nil, err
	}
	return reduceRank("ar-hypercube", CollAllreduce, p, r, hypercubeReduceScratch(p, k),
		hypercubeARRounds(p, k, r)), nil
}
