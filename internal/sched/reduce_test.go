package sched

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"alltoallx/internal/comm"
	"alltoallx/internal/netmodel"
	"alltoallx/internal/runtime"
	"alltoallx/internal/sim"
	"alltoallx/internal/topo"
)

// reductionGenerators pairs each reduction generator with the shapes it
// must handle (hypercubes need power-of-two worlds).
func reductionShapes(name string) []int {
	if strings.HasSuffix(name, "hypercube") {
		return []int{1, 2, 4, 8, 16}
	}
	return []int{1, 2, 3, 5, 8, 12, 15}
}

func reductionGenerators() []string {
	var out []string
	for _, rs := range GeneratorsFor(CollReduceScatter) {
		out = append(out, rs)
	}
	for _, ar := range GeneratorsFor(CollAllreduce) {
		out = append(out, ar)
	}
	return out
}

// TestReductionGeneratorsVerify proves every reduction generator's
// output at many shapes through the full symbolic verifier, the streamed
// cross-rank verifier, and the GenerateRank ≡ Slice(Generate) identity
// that transfers the content proof to the sliced path.
func TestReductionGeneratorsVerify(t *testing.T) {
	t.Parallel()
	for _, name := range reductionGenerators() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for _, p := range reductionShapes(name) {
				s, err := Generate(name, p, nil)
				if err != nil {
					t.Fatalf("p=%d: Generate: %v", p, err)
				}
				if got := s.Collective(); !got.reduction() {
					t.Fatalf("p=%d: collective %q is not a reduction", p, got)
				}
				if s.Op != OpAny {
					t.Fatalf("p=%d: operator label %q, want %q", p, s.Op, OpAny)
				}
				if err := Verify(s); err != nil {
					t.Fatalf("p=%d: Verify: %v", p, err)
				}
				if err := VerifyWorldSliced(name, p, nil); err != nil {
					t.Fatalf("p=%d: VerifyWorldSliced: %v", p, err)
				}
				checkSliceIdentity(t, name, p, nil)
			}
		})
	}
	// Topology-shaped reduction worlds: the torus generators take their
	// grid from the mapping.
	m := gridMapping(t, 3, 5)
	for _, name := range []string{"rs-torus", "ar-torus"} {
		s, err := Generate(name, m.Size(), m)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(s.Name, "torus3x5") {
			t.Errorf("%s on 3x5 grid named %q", name, s.Name)
		}
		if err := Verify(s); err != nil {
			t.Errorf("%s on 3x5 grid: %v", name, err)
		}
		if err := VerifyWorldSliced(name, m.Size(), m); err != nil {
			t.Errorf("%s on 3x5 grid (sliced): %v", name, err)
		}
		checkSliceIdentity(t, name, m.Size(), m)
	}
}

// Test operators: element-wise little-endian int64 sum and max (the
// collx.Op contract, defined locally to keep the package dependency-free).
func sumI64(acc, in []byte) {
	for i := 0; i+8 <= len(acc) && i+8 <= len(in); i += 8 {
		a := int64(binary.LittleEndian.Uint64(acc[i:]))
		b := int64(binary.LittleEndian.Uint64(in[i:]))
		binary.LittleEndian.PutUint64(acc[i:], uint64(a+b))
	}
}

func maxI64(acc, in []byte) {
	for i := 0; i+8 <= len(acc) && i+8 <= len(in); i += 8 {
		a := int64(binary.LittleEndian.Uint64(acc[i:]))
		b := int64(binary.LittleEndian.Uint64(in[i:]))
		if b > a {
			binary.LittleEndian.PutUint64(acc[i:], uint64(b))
		}
	}
}

// redVal is the deterministic test payload: element e of the block rank
// s contributes toward destination d.
func redVal(s, d, e int) int64 { return int64(s*31 + d*7 + e) }

// reduceExecBody fills int64 payloads, runs the schedule twice through
// one executor (persistence) and checks the reduced result element-wise.
// For reduce-scatter the recv space is one block; for allreduce it is the
// full p-block result.
func reduceExecBody(s *Schedule, elems int, op ReduceOp, fold func(a, b int64) int64) func(c comm.Comm) error {
	return func(c comm.Comm) error {
		block := elems * 8
		p, rank := c.Size(), c.Rank()
		ex := NewExec(s)
		ex.SetOp(op)
		send := comm.Alloc(p * block)
		recvBlocks := 1
		if s.Collective() == CollAllreduce {
			recvBlocks = p
		}
		recv := comm.Alloc(recvBlocks * block)
		for d := 0; d < p; d++ {
			for e := 0; e < elems; e++ {
				binary.LittleEndian.PutUint64(send.Bytes()[d*block+e*8:], uint64(redVal(rank, d, e)))
			}
		}
		for iter := 0; iter < 2; iter++ {
			for i := range recv.Bytes() {
				recv.Bytes()[i] = 0xEE
			}
			if err := ex.Run(c, send, recv, block, nil); err != nil {
				return fmt.Errorf("iter %d: %w", iter, err)
			}
			for b := 0; b < recvBlocks; b++ {
				d := rank
				if s.Collective() == CollAllreduce {
					d = b
				}
				for e := 0; e < elems; e++ {
					want := redVal(0, d, e)
					for src := 1; src < p; src++ {
						want = fold(want, redVal(src, d, e))
					}
					got := int64(binary.LittleEndian.Uint64(recv.Bytes()[b*block+e*8:]))
					if got != want {
						return fmt.Errorf("iter %d block %d elem %d: got %d, want %d", iter, b, e, got, want)
					}
				}
			}
		}
		return nil
	}
}

// TestReductionExecLive runs every reduction schedule on the live runtime
// with both test operators and checks the combined payloads element-wise.
func TestReductionExecLive(t *testing.T) {
	t.Parallel()
	ops := []struct {
		name string
		op   ReduceOp
		fold func(a, b int64) int64
	}{
		{"sum", sumI64, func(a, b int64) int64 { return a + b }},
		{"max", maxI64, func(a, b int64) int64 {
			if b > a {
				return b
			}
			return a
		}},
	}
	for _, name := range reductionGenerators() {
		shapes := []int{1, 2, 5, 12}
		if strings.HasSuffix(name, "hypercube") {
			shapes = []int{1, 2, 8, 16}
		}
		for _, p := range shapes {
			for _, o := range ops {
				name, p, o := name, p, o
				t.Run(fmt.Sprintf("%s/p%d/%s", name, p, o.name), func(t *testing.T) {
					t.Parallel()
					s, err := Generate(name, p, nil)
					if err != nil {
						t.Fatal(err)
					}
					if err := Verify(s); err != nil {
						t.Fatal(err)
					}
					if err := runtime.Run(runtime.Config{Ranks: p}, reduceExecBody(s, 3, o.op, o.fold)); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}

// TestReductionExecSim runs every reduction schedule under the
// discrete-event simulator with real payloads: the virtual-time transport
// must deliver byte-identical reductions.
func TestReductionExecSim(t *testing.T) {
	t.Parallel()
	model := netmodel.Dane()
	model.Node = topo.Spec{Sockets: 2, NumaPerSocket: 2, CoresPerNuma: 2}
	for _, name := range reductionGenerators() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			s, err := Generate(name, 16, nil)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sim.RunCluster(sim.ClusterConfig{Model: model, Nodes: 2, PPN: 8, Seed: 1},
				reduceExecBody(s, 4, sumI64, func(a, b int64) int64 { return a + b })); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestExecReduceNeedsOp: running a reduction schedule without an
// installed operator fails, and the error names the remedy.
func TestExecReduceNeedsOp(t *testing.T) {
	t.Parallel()
	s, err := Generate("rs-ring", 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	err = runtime.Run(runtime.Config{Ranks: 2}, func(c comm.Comm) error {
		block := 8
		return NewExec(s).Run(c, comm.Alloc(2*block), comm.Alloc(block), block, nil)
	})
	if err == nil || !strings.Contains(err.Error(), "SetOp") {
		t.Fatalf("missing-operator run: %v", err)
	}
}

// findReduce locates a Reduce step in the schedule with a scratch-space
// accumulator, returning (round, rank, step index).
func findReduce(t *testing.T, s *Schedule, scratchDst bool) (int, int, int) {
	t.Helper()
	for ri, rd := range s.Rounds {
		for r, steps := range rd.Steps {
			for si, st := range steps {
				if st.Kind == Reduce && (st.Dst.Buf >= SpaceScratch) == scratchDst {
					return ri, r, si
				}
			}
		}
	}
	t.Fatal("schedule has no matching reduce step")
	return 0, 0, 0
}

// TestVerifyRejectsReductionCorruption: the generalized full verifier
// catches every reduction-specific corruption class.
func TestVerifyRejectsReductionCorruption(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name    string
		gen     string
		corrupt func(t *testing.T, s *Schedule)
		wantErr string
	}{
		{
			name: "double contribution",
			gen:  "rs-ring",
			corrupt: func(t *testing.T, s *Schedule) {
				ri, r, si := findReduce(t, s, true)
				steps := s.Rounds[ri].Steps[r]
				s.Rounds[ri].Steps[r] = append(steps[:si+1:si+1], steps[si:]...)
			},
			wantErr: "double contribution",
		},
		{
			name: "wrong operator label",
			gen:  "rs-ring",
			corrupt: func(t *testing.T, s *Schedule) {
				ri, r, si := findReduce(t, s, true)
				s.Rounds[ri].Steps[r][si].Op = "max"
			},
			wantErr: "does not match the schedule's",
		},
		{
			name: "missing contribution",
			gen:  "rs-ring",
			corrupt: func(t *testing.T, s *Schedule) {
				ri, r, si := findReduce(t, s, true)
				steps := s.Rounds[ri].Steps[r]
				s.Rounds[ri].Steps[r] = append(steps[:si:si], steps[si+1:]...)
			},
			wantErr: "contribution",
		},
		{
			name: "operator on a routing schedule",
			gen:  "ring",
			corrupt: func(t *testing.T, s *Schedule) {
				s.Op = OpAny
			},
			wantErr: "non-reduction",
		},
		{
			name: "reduction without operator label",
			gen:  "rs-ring",
			corrupt: func(t *testing.T, s *Schedule) {
				s.Op = ""
			},
			wantErr: "operator",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			s, err := Generate(tc.gen, 6, nil)
			if err != nil {
				t.Fatal(err)
			}
			tc.corrupt(t, s)
			err = Verify(s)
			if err == nil {
				t.Fatalf("corruption %q passed verification", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestStreamVerifierRejectsReductionCorruption: the same corruption
// classes are caught from rank slices by the streaming verifier.
func TestStreamVerifierRejectsReductionCorruption(t *testing.T) {
	t.Parallel()
	const p = 6
	slices := func(t *testing.T) []*RankProgram {
		t.Helper()
		s, err := Generate("rs-ring", p, nil)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]*RankProgram, p)
		for r := 0; r < p; r++ {
			rp, err := Slice(s, r)
			if err != nil {
				t.Fatal(err)
			}
			cp := *rp
			cp.Rounds = nil
			for _, steps := range rp.Rounds {
				cp.Rounds = append(cp.Rounds, append([]Step(nil), steps...))
			}
			out[r] = &cp
		}
		return out
	}
	// findSliceReduce returns the first or last Reduce step of a slice.
	// The last one folds in this rank's own send block right before the
	// accumulator is copied to the recv space, so corrupting its source
	// is locally detectable at the result write.
	findSliceReduce := func(t *testing.T, rp *RankProgram, last bool) (int, int) {
		t.Helper()
		ri, si := -1, -1
		for i, steps := range rp.Rounds {
			for j, st := range steps {
				if st.Kind == Reduce {
					if ri, si = i, j; !last {
						return ri, si
					}
				}
			}
		}
		if ri < 0 {
			t.Fatal("slice has no reduce step")
		}
		return ri, si
	}
	cases := []struct {
		name    string
		mutate  func(t *testing.T, rps []*RankProgram)
		wantErr string
	}{
		{
			name: "local double contribution",
			mutate: func(t *testing.T, rps []*RankProgram) {
				ri, si := findSliceReduce(t, rps[2], false)
				steps := rps[2].Rounds[ri]
				rps[2].Rounds[ri] = append(steps[:si+1:si+1], steps[si:]...)
			},
			wantErr: "double contribution",
		},
		{
			name: "wrong operator label on a step",
			mutate: func(t *testing.T, rps []*RankProgram) {
				ri, si := findSliceReduce(t, rps[1], false)
				rps[1].Rounds[ri][si].Op = "max"
			},
			wantErr: "does not match the schedule's",
		},
		{
			name: "operator drift across slices",
			mutate: func(t *testing.T, rps []*RankProgram) {
				rps[3].Op = "max"
				for ri := range rps[3].Rounds {
					for si := range rps[3].Rounds[ri] {
						if rps[3].Rounds[ri][si].Kind == Reduce {
							rps[3].Rounds[ri][si].Op = "max"
						}
					}
				}
			},
			wantErr: "stream carries",
		},
		{
			name: "wrong result block",
			mutate: func(t *testing.T, rps []*RankProgram) {
				// Redirect the final self contribution: rank 4 reduces the
				// wrong send block into its result slot, so the locally
				// known block id disagrees with the slot's expected result.
				ri, si := findSliceReduce(t, rps[4], true)
				rps[4].Rounds[ri][si].Src.Off = (rps[4].Rounds[ri][si].Src.Off + 1) % p
			},
			wantErr: "the result of block",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			rps := slices(t)
			tc.mutate(t, rps)
			err := streamAll(rps)
			if err == nil {
				t.Fatalf("corruption %q passed streamed verification", tc.name)
			}
			if tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestStreamVerifierRejectsDeadReduction: repaired (dead-rank) worlds are
// an all-to-all facility; reduction slices must be rejected under
// SetDead.
func TestStreamVerifierRejectsDeadReduction(t *testing.T) {
	t.Parallel()
	s, err := Generate("rs-ring", 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	sv := NewStreamVerifier(4)
	if err := sv.SetDead(2); err != nil {
		t.Fatal(err)
	}
	rp, err := Slice(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sv.Add(rp); err == nil || !strings.Contains(err.Error(), "dead-rank") {
		t.Fatalf("reduction slice accepted under SetDead: %v", err)
	}
}

// TestReductionScheduleRoundTrip: the reduction IR fields survive the
// JSON round trip at format version 2, for whole-world schedules and
// rank slices.
func TestReductionScheduleRoundTrip(t *testing.T) {
	t.Parallel()
	s, err := Generate("ar-torus", 12, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"format": 2`)) {
		t.Fatalf("reduction schedule not encoded at format 2")
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip mismatch")
	}
	if got.Collective() != CollAllreduce || got.Op != OpAny {
		t.Fatalf("decoded coll/op = %q/%q", got.Collective(), got.Op)
	}
	if err := Verify(got); err != nil {
		t.Fatalf("decoded schedule fails verification: %v", err)
	}
	rp, err := Slice(s, 7)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := rp.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	grp, err := DecodeRank(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rp, grp) {
		t.Fatalf("rank program round trip mismatch")
	}
	if grp.Collective() != CollAllreduce || grp.Op != OpAny {
		t.Fatalf("decoded rank coll/op = %q/%q", grp.Collective(), grp.Op)
	}
	if err := VerifyRank(grp); err != nil {
		t.Fatalf("decoded rank program fails verification: %v", err)
	}
}
