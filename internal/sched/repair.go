package sched

import (
	"fmt"
	"math/bits"
	"sort"

	"alltoallx/internal/topo"
)

// Failure repair for route-compiled schedules. When one rank of a
// compiled world dies, recompiling the whole world at p-1 ranks is both
// expensive and shape-destroying (a 32x32 torus does not exist at 1023
// ranks; a hypercube does not exist at any non-power-of-two). Repair
// instead keeps the world shape and patches the schedule around the hole:
//
//   - blocks whose source or destination died are dropped — no surviving
//     rank wants them;
//   - blocks that merely *transited* the dead rank are rerouted over a
//     detour on the surviving fabric (ring: the complementary arc; torus:
//     a same-length dodge through the adjacent row or column that rejoins
//     the original path at the original round; hypercube: BFS on the cube
//     minus the failed vertex);
//   - every other movement is untouched.
//
// The work splits accordingly: route recomputation is confined to the
// traffic through the dead rank — discovered in O(its slice) via the
// inverse-routing slicers (ins(dead, t) enumerates exactly the blocks
// whose paths cross it) — while all other survivors' programs are a pure
// mechanical filter (drop dead-endpoint blocks and dead-peer messages)
// over the original slicer, with zero route work. RescheduledRanks
// reports the ranks that carry rerouted traffic (old or new path); only
// those have genuinely re-planned programs, and at scale they are a thin
// neighborhood of the failure (a 32x32 torus loses one row and one
// column, ~2*sqrt(p) of p ranks).
//
// Soundness: a repaired world is re-proved by the streamed verifier with
// the dead rank marked (StreamVerifier.SetDead) — the full dead-aware
// check over every surviving slice, not just the touched rounds, because
// the verifier's delivery accounting is a whole-slice property. That
// costs O(total schedule size) like any streamed verification, but no
// route construction.

// Repaired is a patched schedule world: the original shape with one rank
// removed, servable per rank like any sliced schedule.
type Repaired struct {
	// Gen is the generator family ("ring", "torus", "hypercube").
	Gen string
	// Name is the patched schedule name, e.g. "torus4x8-dead13".
	Name string
	// Ranks is the original world size; Dead the failed rank.
	Ranks int
	Dead  int

	sl          *repairSlicer
	rescheduled []int
	dropped     int
	rerouted    int
}

// repairFamily resolves the slicer, route and detour functions of one
// route-compiled generator family.
func repairFamily(gen string, p, dead int, m *topo.Mapping) (base rankSlicer, route func(s, d int) []int, detour func(s, d int) ([]int, error), name string, err error) {
	switch gen {
	case "ring":
		base = ringSlicer{p: p}
		route = func(s, d int) []int { return ringPath(s, d, p) }
		detour = func(s, d int) ([]int, error) { return ringDetour(s, d, p), nil }
		name = "ring"
	case "torus":
		rows, cols := torusShape(p, m)
		base = torusSlicer{rows: rows, cols: cols}
		route = func(s, d int) []int { return torusRoute(rows, cols, s, d) }
		detour = func(s, d int) ([]int, error) { return torusDetour(rows, cols, s, d, dead) }
		name = fmt.Sprintf("torus%dx%d", rows, cols)
	case "hypercube":
		if p&(p-1) != 0 {
			return nil, nil, nil, "", fmt.Errorf("sched: hypercube needs a power-of-two rank count, got %d", p)
		}
		k := bits.Len(uint(p)) - 1
		base = hcubeSlicer{p: p, k: k}
		route = func(s, d int) []int { return hypercubeRoute(k, s, d) }
		hd := &hcubeDetour{p: p, k: k, dead: dead, prev: make(map[int][]int32)}
		detour = hd.path
		name = "hypercube"
	default:
		return nil, nil, nil, "", fmt.Errorf("sched: repair supports the route-compiled generators (ring, torus, hypercube), not %q", gen)
	}
	return base, route, detour, name, nil
}

// Repair patches the named route-compiled schedule around a single dead
// rank: dead-endpoint blocks are dropped, transit traffic through the
// dead rank is rerouted on the surviving fabric, and everything else is
// kept verbatim. The result serves per-rank programs for every survivor;
// call Verify to re-prove the patched world.
func Repair(gen string, p, dead int, m *topo.Mapping) (*Repaired, error) {
	if p < 2 {
		return nil, fmt.Errorf("sched: repair needs at least 2 ranks, got %d", p)
	}
	if dead < 0 || dead >= p {
		return nil, fmt.Errorf("sched: dead rank %d out of range 0..%d", dead, p-1)
	}
	base, route, detour, name, err := repairFamily(gen, p, dead, m)
	if err != nil {
		return nil, err
	}

	patch := make(map[int]*rankPatch)
	pat := func(x int) *rankPatch {
		pt := patch[x]
		if pt == nil {
			pt = &rankPatch{}
			patch[x] = pt
		}
		return pt
	}

	// Every block whose path crosses the dead rank arrives there exactly
	// once (routes are simple paths), so ins(dead, ·) enumerates the
	// affected traffic in O(the dead rank's slice).
	nrounds := base.rounds()
	rerouted := 0
	for t := 0; t < base.rounds(); t++ {
		for _, msg := range base.ins(dead, t) {
			for _, b := range msg.blocks {
				s, d := int(b)/p, int(b)%p
				if s == dead || d == dead {
					continue // endpoint block: dropped by the filter
				}
				oldPath := route(s, d)
				newPath, derr := detour(s, d)
				if derr != nil {
					return nil, fmt.Errorf("sched: repair %s p=%d dead=%d block (%d->%d): %w", gen, p, dead, s, d, derr)
				}
				if err := checkDetour(newPath, s, d, dead, p); err != nil {
					return nil, fmt.Errorf("sched: repair %s p=%d dead=%d block (%d->%d): %w", gen, p, dead, s, d, err)
				}
				// Hops identical in both paths (shared prefix before the
				// divergence, and — for the round-preserving detours — the
				// rejoined tail at the same rounds) cancel: skipping them
				// keeps the untouched carriers out of the patch set.
				sameHop := func(h int) bool {
					return h+1 < len(oldPath) && h+1 < len(newPath) &&
						oldPath[h] == newPath[h] && oldPath[h+1] == newPath[h+1]
				}
				// Remove the old hops (those touching the dead rank vanish
				// with the dead-peer filter; the rest are removed by name).
				for h := 0; h+1 < len(oldPath); h++ {
					if sameHop(h) {
						continue
					}
					x, y := oldPath[h], oldPath[h+1]
					if x != dead && y != dead {
						pat(x).remove(false, h, b)
						pat(y).remove(true, h, b)
					}
				}
				for h := 0; h+1 < len(newPath); h++ {
					if sameHop(h) {
						continue
					}
					x, y := newPath[h], newPath[h+1]
					pat(x).add(false, h, y, b)
					pat(y).add(true, h, x, b)
				}
				if hops := len(newPath) - 1; hops > nrounds {
					nrounds = hops
				}
				rerouted++
			}
		}
	}

	sl := &repairSlicer{orig: base, p: p, dead: dead, nrounds: nrounds, patch: patch}
	// The global staging bound: unpatched survivors only lose blocks, so
	// the original packMax still covers them; patched ranks are re-counted
	// exactly.
	mp := base.packMax()
	affected := make([]int, 0, len(patch))
	for x := range patch {
		affected = append(affected, x)
	}
	sort.Ints(affected)
	for _, x := range affected {
		for t := 0; t < nrounds; t++ {
			for _, dir := range [2][]rmsg{sl.outs(x, t), sl.ins(x, t)} {
				n := 0
				for _, m := range dir {
					n += len(m.blocks)
				}
				if n > mp {
					mp = n
				}
			}
		}
	}
	sl.mp = mp

	return &Repaired{
		Gen:         gen,
		Name:        fmt.Sprintf("%s-dead%d", name, dead),
		Ranks:       p,
		Dead:        dead,
		sl:          sl,
		rescheduled: affected,
		dropped:     2 * (p - 1),
		rerouted:    rerouted,
	}, nil
}

// checkDetour validates a detour path before it is trusted: right
// endpoints, in-range simple hops, and no visit to the dead rank.
func checkDetour(path []int, s, d, dead, p int) error {
	if len(path) < 2 || path[0] != s || path[len(path)-1] != d {
		return fmt.Errorf("detour path is invalid: %v", path)
	}
	for h, x := range path {
		if x < 0 || x >= p {
			return fmt.Errorf("detour path leaves the world: %v", path)
		}
		if x == dead {
			return fmt.Errorf("detour path revisits the dead rank: %v", path)
		}
		if h > 0 && x == path[h-1] {
			return fmt.Errorf("detour path has a self-hop: %v", path)
		}
	}
	return nil
}

// Program compiles one survivor's patched program (O(its slice); route
// work was already done at Repair time).
func (r *Repaired) Program(rank int) (*RankProgram, error) {
	if rank < 0 || rank >= r.Ranks {
		return nil, fmt.Errorf("sched: repair %s: rank %d out of range 0..%d", r.Name, rank, r.Ranks-1)
	}
	if rank == r.Dead {
		return nil, fmt.Errorf("sched: repair %s: rank %d is the dead rank", r.Name, rank)
	}
	return compileRank(r.Name, r.Ranks, rank, r.sl), nil
}

// Verify re-proves the repaired world: every survivor's program is
// streamed through a dead-aware StreamVerifier, which checks all local
// properties plus cross-rank round pairing and the shrunken delivery
// accounting (dead blocks must stay undelivered).
func (r *Repaired) Verify() error {
	sv := NewStreamVerifier(r.Ranks)
	if err := sv.SetDead(r.Dead); err != nil {
		return err
	}
	for rank := 0; rank < r.Ranks; rank++ {
		if rank == r.Dead {
			continue
		}
		rp, err := r.Program(rank)
		if err != nil {
			return err
		}
		if err := sv.Add(rp); err != nil {
			return err
		}
	}
	return sv.Finish()
}

// RescheduledRanks lists the ranks whose programs needed route work — the
// carriers of rerouted traffic on the old or new paths. Every other
// survivor's program is a mechanical filter of the original schedule.
func (r *Repaired) RescheduledRanks() []int {
	return append([]int(nil), r.rescheduled...)
}

// DroppedBlocks is the number of pair blocks lost with the dead rank
// (its row and column of the exchange matrix, 2(p-1) wire blocks).
func (r *Repaired) DroppedBlocks() int { return r.dropped }

// ReroutedBlocks is the number of blocks that transited the dead rank
// and were detoured around it.
func (r *Repaired) ReroutedBlocks() int { return r.rerouted }

// Rounds is the repaired exchange round count: the original count, or
// more when the longest detour exceeds it.
func (r *Repaired) Rounds() int { return r.sl.nrounds }

// ---------------------------------------------------------------------
// The patched slicer

// rankPatch is one affected rank's schedule delta: blocks to stop
// carrying (per round and direction) and messages to add.
type rankPatch struct {
	removedOut map[int]map[int32]bool // round -> blocks no longer departing
	removedIn  map[int]map[int32]bool // round -> blocks no longer arriving
	addOut     map[int]map[int][]int32
	addIn      map[int]map[int][]int32
}

func (pt *rankPatch) remove(arrivals bool, t int, b int32) {
	m := &pt.removedOut
	if arrivals {
		m = &pt.removedIn
	}
	if *m == nil {
		*m = make(map[int]map[int32]bool)
	}
	set := (*m)[t]
	if set == nil {
		set = make(map[int32]bool)
		(*m)[t] = set
	}
	set[b] = true
}

func (pt *rankPatch) add(arrivals bool, t, peer int, b int32) {
	m := &pt.addOut
	if arrivals {
		m = &pt.addIn
	}
	if *m == nil {
		*m = make(map[int]map[int][]int32)
	}
	byPeer := (*m)[t]
	if byPeer == nil {
		byPeer = make(map[int][]int32)
		(*m)[t] = byPeer
	}
	byPeer[peer] = append(byPeer[peer], b)
}

// repairSlicer wraps the original topology slicer with the failure
// filter and the per-rank patches, presenting the standard rankSlicer
// view so compileRank emits survivor programs unchanged.
type repairSlicer struct {
	orig    rankSlicer
	p       int
	dead    int
	nrounds int
	mp      int
	patch   map[int]*rankPatch
}

func (s *repairSlicer) rounds() int  { return s.nrounds }
func (s *repairSlicer) packMax() int { return s.mp }

func (s *repairSlicer) traffic(x, t int, arrivals bool) []rmsg {
	var base []rmsg
	if t < s.orig.rounds() {
		if arrivals {
			base = s.orig.ins(x, t)
		} else {
			base = s.orig.outs(x, t)
		}
	}
	var removed map[int32]bool
	var adds map[int][]int32
	if pt := s.patch[x]; pt != nil {
		if arrivals {
			removed, adds = pt.removedIn[t], pt.addIn[t]
		} else {
			removed, adds = pt.removedOut[t], pt.addOut[t]
		}
	}
	byPeer := make(map[int][]int32)
	for _, m := range base {
		if m.peer == s.dead {
			continue
		}
		for _, b := range m.blocks {
			src, dst := int(b)/s.p, int(b)%s.p
			if src == s.dead || dst == s.dead || removed[b] {
				continue
			}
			byPeer[m.peer] = append(byPeer[m.peer], b)
		}
	}
	for peer, blocks := range adds {
		byPeer[peer] = append(byPeer[peer], blocks...)
	}
	return groupMsgs(byPeer)
}

func (s *repairSlicer) outs(x, t int) []rmsg { return s.traffic(x, t, false) }
func (s *repairSlicer) ins(x, t int) []rmsg  { return s.traffic(x, t, true) }

// ---------------------------------------------------------------------
// Detours

// ringDetour is the complementary arc: the ring path the shortest-
// direction rule did not take. The dead rank sits strictly inside the
// original arc, so the complement avoids it by construction. Θ(p) hops —
// the ring has no third way around, which is exactly why the paper's
// direct-connect story moves to richer topologies at scale.
func ringDetour(s, d, p int) []int {
	fwd := (d - s + p) % p
	step, hops := 1, fwd
	if fwd <= p-fwd {
		step, hops = -1, p-fwd
	}
	path := make([]int, 0, hops+1)
	x := s
	path = append(path, x)
	for i := 0; i < hops; i++ {
		x = (x + step + p) % p
		path = append(path, x)
	}
	return path
}

// ringInterior reports whether x lies strictly inside the
// shortest-direction ring path from a to b over n ranks.
func ringInterior(a, b, x, n int) bool {
	fwd := ((b-a)%n + n) % n
	if fwd <= n-fwd {
		off := ((x-a)%n + n) % n
		return 0 < off && off < fwd
	}
	off := ((a-x)%n + n) % n
	return 0 < off && off < n-fwd
}

// ringStep is the step direction (+1/-1) the shortest-direction ring
// rule takes from a to b (ties go forward, matching ringPath).
func ringStep(a, b, n int) int {
	fwd := ((b-a)%n + n) % n
	if fwd > n-fwd {
		return -1
	}
	return 1
}

// torusDetour reroutes a torus block around a dead rank sitting on its
// row-then-column path. The detours are chosen to REJOIN the original
// path at the original rounds whenever the block has a leg in the other
// dimension — that keeps the untouched downstream carriers untouched, so
// the rescheduled set stays a thin neighborhood of the failure (its row
// and column, plus or minus one):
//
//   - dead on the row leg (interior column or the turn corner), block
//     also moves rows: take the first column step early — ride the row
//     arc one row over (in the column direction) and fall onto the
//     original column leg at the same round, same length;
//   - dead on the column leg interior, block also moves columns: hold
//     the last row step — ride the column one column early and make the
//     final row hop at the end, same length;
//   - pure-row or pure-column blocks: the complementary arc of that ring
//     (longer, but confined to the failure's own row/column).
func torusDetour(rows, cols, s, d, dead int) ([]int, error) {
	si, sj := s/cols, s%cols
	di, dj := d/cols, d%cols
	fi, fj := dead/cols, dead%cols
	switch {
	case fi == si && ((fj == dj && si != di) || ringInterior(sj, dj, fj, cols)):
		// Dead on the row leg.
		if si == di {
			// Pure row block: the only other way is the complementary arc.
			path := []int{s}
			for _, j := range ringDetour(sj, dj, cols)[1:] {
				path = append(path, si*cols+j)
			}
			return path, nil
		}
		// Dodge into the adjacent row in the column direction, rejoining
		// the original column leg at the same round.
		delta := ringStep(si, di, rows)
		r1 := ((si+delta)%rows + rows) % rows
		path := []int{s}
		for _, j := range ringPath(sj, dj, cols) {
			path = append(path, r1*cols+j)
		}
		for _, i := range ringPath(si, di, rows)[2:] {
			path = append(path, i*cols+dj)
		}
		return path, nil
	case fj == dj && fi != si && ringInterior(si, di, fi, rows):
		// Dead on the column leg interior.
		if sj == dj {
			// Pure column block: complementary arc.
			path := []int{s}
			for _, i := range ringDetour(si, di, rows)[1:] {
				path = append(path, i*cols+dj)
			}
			return path, nil
		}
		// Hold the last row step: ride the column one column early, then
		// hop into the destination column at the end.
		rowP := ringPath(sj, dj, cols)
		jl := rowP[len(rowP)-2] // the column just before dj on the row arc
		path := make([]int, 0, len(rowP)+rows)
		for _, j := range rowP[:len(rowP)-1] {
			path = append(path, si*cols+j)
		}
		for _, i := range ringPath(si, di, rows)[1:] {
			path = append(path, i*cols+jl)
		}
		path = append(path, di*cols+dj)
		return path, nil
	}
	return nil, fmt.Errorf("dead rank (%d,%d) is not on the route (%d,%d)->(%d,%d)", fi, fj, si, sj, di, dj)
}

// hcubeDetour reroutes hypercube blocks with a per-source BFS over the
// cube minus the dead vertex (memoized: one BFS serves every rerouted
// destination of that source). Removing one vertex of a k>=2 cube keeps
// it connected, and any detour costs at most 2 extra hops.
type hcubeDetour struct {
	p, k, dead int
	prev       map[int][]int32
}

func (h *hcubeDetour) bfs(s int) []int32 {
	prev := make([]int32, h.p)
	for i := range prev {
		prev[i] = -1
	}
	prev[s] = int32(s)
	queue := []int{s}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for b := 0; b < h.k; b++ {
			y := x ^ 1<<b
			if y == h.dead || prev[y] >= 0 {
				continue
			}
			prev[y] = int32(x)
			queue = append(queue, y)
		}
	}
	return prev
}

func (h *hcubeDetour) path(s, d int) ([]int, error) {
	prev, ok := h.prev[s]
	if !ok {
		prev = h.bfs(s)
		h.prev[s] = prev
	}
	if prev[d] < 0 {
		return nil, fmt.Errorf("no surviving route %d->%d", s, d)
	}
	var rev []int
	for x := d; x != s; x = int(prev[x]) {
		rev = append(rev, x)
	}
	rev = append(rev, s)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, nil
}
