package sched

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"alltoallx/internal/comm"
	"alltoallx/internal/netmodel"
	"alltoallx/internal/sim"
	"alltoallx/internal/testutil"
	"alltoallx/internal/topo"
)

// repairCases spans every supported family at shapes small enough to
// cross-check exhaustively, with failures at corners and interiors.
func repairCases() []struct {
	gen  string
	p    int
	dead int
} {
	var cases []struct {
		gen  string
		p    int
		dead int
	}
	add := func(gen string, p int, deads ...int) {
		for _, d := range deads {
			cases = append(cases, struct {
				gen  string
				p    int
				dead int
			}{gen, p, d})
		}
	}
	add("ring", 2, 0, 1)
	add("ring", 5, 0, 2, 4)
	add("ring", 8, 0, 3, 7)
	add("torus", 12, 0, 5, 7, 11) // 3x4
	add("torus", 16, 0, 5, 10, 15)
	add("hypercube", 8, 0, 3, 7)
	add("hypercube", 16, 0, 5, 15)
	return cases
}

// TestRepairVerifies proves every repaired world with the dead-aware
// streamed verifier: all local checks, cross-rank round pairing, and the
// shrunken delivery accounting.
func TestRepairVerifies(t *testing.T) {
	t.Parallel()
	for _, tc := range repairCases() {
		tc := tc
		t.Run(fmt.Sprintf("%s/p%d/dead%d", tc.gen, tc.p, tc.dead), func(t *testing.T) {
			t.Parallel()
			rep, err := Repair(tc.gen, tc.p, tc.dead, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := rep.Verify(); err != nil {
				t.Fatal(err)
			}
			for _, r := range rep.RescheduledRanks() {
				if r == tc.dead {
					t.Fatalf("dead rank %d listed as rescheduled", tc.dead)
				}
			}
			if n := len(rep.RescheduledRanks()); n >= tc.p {
				t.Fatalf("rescheduled %d ranks, world only has %d", n, tc.p)
			}
			if rep.ReroutedBlocks() > 0 && len(rep.RescheduledRanks()) == 0 {
				t.Fatalf("%d blocks rerouted but no rank rescheduled", rep.ReroutedBlocks())
			}
		})
	}
}

// TestRepairEquivalentToShrunkenWorld is the semantic equivalence
// property: executing the repaired programs (dead rank absent) delivers
// exactly the surviving blocks of the shrunken all-to-all — every block
// between survivors lands byte-correct, the dead rank's slots stay
// untouched — which is what recompiling for the surviving ranks would
// deliver, with the world shape kept.
func TestRepairEquivalentToShrunkenWorld(t *testing.T) {
	t.Parallel()
	model := netmodel.Dane()
	model.Node = topo.Spec{Sockets: 2, NumaPerSocket: 2, CoresPerNuma: 2}
	shapes := []struct {
		gen        string
		nodes, ppn int
		dead       int
	}{
		{"ring", 2, 4, 3},
		{"torus", 4, 4, 5},
		{"torus", 4, 4, 0},
		{"hypercube", 2, 8, 9},
	}
	const block = 4
	for _, sh := range shapes {
		sh := sh
		t.Run(fmt.Sprintf("%s/p%d/dead%d", sh.gen, sh.nodes*sh.ppn, sh.dead), func(t *testing.T) {
			t.Parallel()
			p := sh.nodes * sh.ppn
			rep, err := Repair(sh.gen, p, sh.dead, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := rep.Verify(); err != nil {
				t.Fatal(err)
			}
			body := func(c comm.Comm) error {
				rank := c.Rank()
				if rank == sh.dead {
					return nil // the rank is gone; survivors must not need it
				}
				rp, err := rep.Program(rank)
				if err != nil {
					return err
				}
				ex := NewRankExec(rp)
				send := comm.Alloc(p * block)
				recv := comm.Alloc(p * block)
				testutil.FillAlltoall(send, rank, p, block)
				for i := range recv.Bytes() {
					recv.Bytes()[i] = 0xEE
				}
				if err := ex.Run(c, send, recv, block, nil); err != nil {
					return err
				}
				data := recv.Bytes()
				for s := 0; s < p; s++ {
					for i := 0; i < block; i++ {
						want := testutil.PatternByte(s, rank, i)
						if s == sh.dead {
							want = 0xEE // dead source: slot must stay untouched
						}
						if got := data[s*block+i]; got != want {
							return fmt.Errorf("rank %d recv block %d byte %d: got %#x, want %#x", rank, s, i, got, want)
						}
					}
				}
				return nil
			}
			if _, err := sim.RunCluster(sim.ClusterConfig{Model: model, Nodes: sh.nodes, PPN: sh.ppn, Seed: 1}, body); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRepairAfterInjectedFailure is the end-to-end failure story: the
// original schedule deadlocks when a rank dies mid-exchange (the sim
// names the stuck survivors), and the repaired schedule then completes on
// the same world with the dead rank absent.
func TestRepairAfterInjectedFailure(t *testing.T) {
	t.Parallel()
	model := netmodel.Dane()
	model.Node = topo.Spec{Sockets: 2, NumaPerSocket: 2, CoresPerNuma: 2}
	const (
		nodes, ppn = 4, 4
		p          = nodes * ppn
		dead       = 6
		block      = 4
	)
	s := mustGen(t, "torus", p)
	if err := Verify(s); err != nil {
		t.Fatal(err)
	}
	// Phase 1: the unrepaired world with rank 6 dying as it enters round 1.
	body := func(c comm.Comm) error {
		ex := NewExec(s)
		send := comm.Alloc(p * block)
		recv := comm.Alloc(p * block)
		testutil.FillAlltoall(send, c.Rank(), p, block)
		err := ex.Run(c, send, recv, block, nil)
		if errors.Is(err, sim.ErrRankFailed) {
			return nil // this is the dying rank: it silently vanishes
		}
		return err
	}
	cfg := sim.ClusterConfig{
		Model: model, Nodes: nodes, PPN: ppn, Seed: 1,
		Fail: &sim.FailSpec{Rank: dead, AtTag: TagBase + 1},
	}
	_, err := sim.RunCluster(cfg, body)
	if err == nil {
		t.Fatal("unrepaired schedule completed despite a dead rank")
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("want a deadlock diagnosis, got: %v", err)
	}

	// Phase 2: repair and rerun without the dead rank.
	rep, err := Repair("torus", p, dead, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Verify(); err != nil {
		t.Fatal(err)
	}
	body2 := func(c comm.Comm) error {
		if c.Rank() == dead {
			return nil
		}
		rp, err := rep.Program(c.Rank())
		if err != nil {
			return err
		}
		ex := NewRankExec(rp)
		send := comm.Alloc(p * block)
		recv := comm.Alloc(p * block)
		testutil.FillAlltoall(send, c.Rank(), p, block)
		return ex.Run(c, send, recv, block, nil)
	}
	if _, err := sim.RunCluster(sim.ClusterConfig{Model: model, Nodes: nodes, PPN: ppn, Seed: 1}, body2); err != nil {
		t.Fatal(err)
	}
}

// TestRepairLocality pins the acceptance bound: at 1024 ranks (32x32
// torus) a single failure reschedules only the failure's row and column
// neighborhood — strictly (and vastly) fewer rank slices than the world —
// and the repaired world still re-verifies in full.
func TestRepairLocality(t *testing.T) {
	t.Parallel()
	const p, dead = 1024, 517
	rep, err := Repair("torus", p, dead, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := len(rep.RescheduledRanks())
	if n >= p-1 {
		t.Fatalf("rescheduled %d of %d survivors: repair is not local", n, p-1)
	}
	// The round-preserving dodges stay within one row/column of the
	// failure: rows fi-1..fi+1 plus columns fj-1..fj+1 bound the set.
	if n > 6*32 {
		t.Errorf("rescheduled %d ranks, want a thin row+column neighborhood (<= %d)", n, 6*32)
	}
	if rep.ReroutedBlocks() == 0 {
		t.Error("no blocks rerouted through an interior torus rank")
	}
	if testing.Short() {
		t.Skip("skipping full 1024-rank re-verification in -short mode")
	}
	if err := rep.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestRepairAgainstFullRecompile cross-checks the patched world against
// independent ground truth at a small shape: for every surviving pair the
// repaired schedule must move exactly the same blocks end to end as the
// original (minus the dead rank's row and column), and unpatched
// survivors must keep byte-identical programs except for dropped dead
// traffic.
func TestRepairAgainstFullRecompile(t *testing.T) {
	t.Parallel()
	for _, tc := range repairCases() {
		tc := tc
		t.Run(fmt.Sprintf("%s/p%d/dead%d", tc.gen, tc.p, tc.dead), func(t *testing.T) {
			t.Parallel()
			rep, err := Repair(tc.gen, tc.p, tc.dead, nil)
			if err != nil {
				t.Fatal(err)
			}
			resched := make(map[int]bool)
			for _, r := range rep.RescheduledRanks() {
				resched[r] = true
			}
			// Every survivor outside the rescheduled set must carry a subset
			// of its original traffic: the filter may only drop blocks.
			sl := rep.sl
			for x := 0; x < tc.p; x++ {
				if x == tc.dead || resched[x] {
					continue
				}
				for t2 := 0; t2 < sl.orig.rounds(); t2++ {
					orig := make(map[int]map[int32]bool)
					for _, m := range sl.orig.outs(x, t2) {
						set := make(map[int32]bool)
						for _, b := range m.blocks {
							set[b] = true
						}
						orig[m.peer] = set
					}
					for _, m := range sl.outs(x, t2) {
						for _, b := range m.blocks {
							if !orig[m.peer][b] {
								t.Fatalf("unrescheduled rank %d gained block %d to %d in round %d", x, b, m.peer, t2)
							}
						}
					}
				}
			}
		})
	}
}

// TestRepairErrors pins the failure modes.
func TestRepairErrors(t *testing.T) {
	t.Parallel()
	if _, err := Repair("bruck", 8, 0, nil); err == nil {
		t.Error("bruck is not route-compiled; repair must refuse")
	}
	if _, err := Repair("hypercube", 6, 0, nil); err == nil {
		t.Error("hypercube@6 must be rejected")
	}
	if _, err := Repair("ring", 1, 0, nil); err == nil {
		t.Error("1-rank world has nothing to repair")
	}
	if _, err := Repair("ring", 8, 8, nil); err == nil {
		t.Error("dead rank out of range accepted")
	}
	rep, err := Repair("ring", 8, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rep.Program(3); err == nil {
		t.Error("program for the dead rank must fail")
	}
	if _, err := rep.Program(8); err == nil {
		t.Error("out-of-range program must fail")
	}
}

// TestStreamVerifierSetDead pins the dead-aware verifier API itself.
func TestStreamVerifierSetDead(t *testing.T) {
	t.Parallel()
	sv := NewStreamVerifier(4)
	if err := sv.SetDead(5); err == nil {
		t.Error("out-of-range dead rank accepted")
	}
	if err := sv.SetDead(2); err != nil {
		t.Fatal(err)
	}
	// A dead rank's slice must be refused.
	rp, err := GenerateRank("ring", 4, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sv.Add(rp); err == nil {
		t.Error("slice of a dead rank accepted")
	}
	// An unrepaired survivor slice still talks to rank 2: rejected.
	rp, err = GenerateRank("ring", 4, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sv.Add(rp); err == nil {
		t.Error("survivor slice addressing the dead rank accepted")
	}
	// SetDead after streaming started is an API error.
	sv2 := NewStreamVerifier(4)
	rp, err = GenerateRank("ring", 4, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sv2.Add(rp); err != nil {
		t.Fatal(err)
	}
	if err := sv2.SetDead(3); err == nil {
		t.Error("SetDead accepted after the first Add")
	}
}
