package sched

import (
	"fmt"
	"math/bits"
	"sort"

	"alltoallx/internal/topo"
)

// This file compiles schedules from per-block routes, the Basu et al.
// construction for direct-connect topologies: every block (s, d) is
// assigned a multi-hop path through the topology, hop h of every path
// executes in round h, and all blocks moving between one rank pair in one
// round are packed into a single message. The compiler handles staging
// (a transit buffer indexed by block identity, double-buffered receive
// packing) and emits the pack/unpack copies; the verifier then proves the
// result correct, so a route function only has to produce valid paths.

// compileRoutes builds the schedule for p ranks where route(s, d) returns
// the rank path s = v0, v1, ..., vk = d the block (s, d) travels.
func compileRoutes(name string, p int, route func(s, d int) []int) (*Schedule, error) {
	if p == 1 {
		return Pairwise(p, nil)
	}
	// Scratch layout: 0 = transit (slot s*p+d holds block (s,d) between
	// hops), 1 = pack-send staging, 2/3 = alternating pack-recv staging.
	const (
		transit = 0
		packS   = 1
		packA   = 2
	)

	// move[t][from][to] lists the blocks hopping from->to in round t.
	type pair struct{ from, to int }
	var moves []map[pair][]int32 // per round
	maxHops := 0
	for s := 0; s < p; s++ {
		for d := 0; d < p; d++ {
			if s == d {
				continue
			}
			path := route(s, d)
			if len(path) < 2 || path[0] != s || path[len(path)-1] != d {
				return nil, fmt.Errorf("sched: %s route %d->%d is invalid: %v", name, s, d, path)
			}
			if hops := len(path) - 1; hops > maxHops {
				maxHops = hops
			}
			for h := 0; h+1 < len(path); h++ {
				x, y := path[h], path[h+1]
				if x < 0 || x >= p || y < 0 || y >= p || x == y {
					return nil, fmt.Errorf("sched: %s route %d->%d has invalid hop %d->%d", name, s, d, x, y)
				}
				for len(moves) <= h {
					moves = append(moves, make(map[pair][]int32))
				}
				moves[h][pair{x, y}] = append(moves[h][pair{x, y}], int32(s*p+d))
			}
		}
	}

	// Per (round, rank): peers and packed block lists, in deterministic
	// order, plus the staging sizes.
	type message struct {
		peer   int
		blocks []int32
	}
	outs := make([][][]message, maxHops) // [t][rank] -> sends
	ins := make([][][]message, maxHops)  // [t][rank] -> recvs
	maxPack := 1
	for t := 0; t < maxHops; t++ {
		outs[t] = make([][]message, p)
		ins[t] = make([][]message, p)
		for pr, blocks := range moves[t] {
			sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
			outs[t][pr.from] = append(outs[t][pr.from], message{peer: pr.to, blocks: blocks})
			ins[t][pr.to] = append(ins[t][pr.to], message{peer: pr.from, blocks: blocks})
		}
		for r := 0; r < p; r++ {
			sort.Slice(outs[t][r], func(i, j int) bool { return outs[t][r][i].peer < outs[t][r][j].peer })
			sort.Slice(ins[t][r], func(i, j int) bool { return ins[t][r][i].peer < ins[t][r][j].peer })
			for _, dir := range [2][]message{outs[t][r], ins[t][r]} {
				n := 0
				for _, m := range dir {
					n += len(m.blocks)
				}
				if n > maxPack {
					maxPack = n
				}
			}
		}
	}

	s := &Schedule{
		Format: FormatVersion, Name: name, Ranks: p,
		Scratch: []int{p * p, maxPack, maxPack, maxPack},
	}

	// unpackSteps restores round t's arrivals at rank r from its pack-recv
	// buffer: home blocks land in the recv buffer, in-transit blocks in
	// the transit slot s*p+d.
	unpackSteps := func(t, r int) []Step {
		buf := packA + t%2
		var steps []Step
		off := 0
		for _, m := range ins[t][r] {
			for _, b := range m.blocks {
				src, dst := int(b)/p, int(b)%p
				var to Ref
				if dst == r {
					to = recvRef(src, 1)
				} else {
					to = scratchRef(transit, int(b), 1)
				}
				steps = append(steps, Step{Kind: Copy, Src: scratchRef(buf, off, 1), Dst: to})
				off++
			}
		}
		return steps
	}

	for t := 0; t < maxHops; t++ {
		rd := Round{Steps: make([][]Step, p)}
		for r := 0; r < p; r++ {
			var steps []Step
			if t == 0 {
				steps = append(steps, selfCopy(r))
			} else {
				steps = append(steps, unpackSteps(t-1, r)...)
			}
			// Pack departures: a block leaving its source (t == 0 along
			// its path, which by construction is round 0) is read from
			// the send buffer; a forwarded block from transit.
			off := 0
			var sends []Step
			for _, m := range outs[t][r] {
				start := off
				for _, b := range m.blocks {
					src, dst := int(b)/p, int(b)%p
					var from Ref
					if src == r {
						from = sendRef(dst, 1)
					} else {
						from = scratchRef(transit, int(b), 1)
					}
					steps = append(steps, Step{Kind: Copy, Src: from, Dst: scratchRef(packS, off, 1)})
					off++
				}
				sends = append(sends, Step{Kind: Send, To: m.peer, Src: scratchRef(packS, start, off-start)})
			}
			off = 0
			for _, m := range ins[t][r] {
				steps = append(steps, Step{Kind: Recv, From: m.peer, Dst: scratchRef(packA+t%2, off, len(m.blocks))})
				off += len(m.blocks)
			}
			steps = append(steps, sends...)
			rd.Steps[r] = steps
		}
		s.Rounds = append(s.Rounds, rd)
	}

	// Final copies-only round: unpack the last exchanges (all arrivals
	// are home — the last hop of every path ends at its destination).
	fin := Round{Steps: make([][]Step, p)}
	for r := 0; r < p; r++ {
		fin.Steps[r] = unpackSteps(maxHops-1, r)
	}
	s.Rounds = append(s.Rounds, fin)
	return s, nil
}

// ringPath returns the shortest-direction ring path from s to d over p
// ranks (ties at p/2 go forward).
func ringPath(s, d, p int) []int {
	fwd := (d - s + p) % p
	step := 1
	hops := fwd
	if fwd > p-fwd {
		step, hops = -1, p-fwd
	}
	path := make([]int, 0, hops+1)
	x := s
	path = append(path, x)
	for i := 0; i < hops; i++ {
		x = (x + step + p) % p
		path = append(path, x)
	}
	return path
}

// Ring compiles the direct-connect ring all-to-all: every block travels
// the shortest way around a bidirectional ring, one hop per round, and
// co-moving blocks share one message per link per round. Per-rank wire
// volume is Theta(p^2/8) blocks — the ring's bisection cost — against the
// direct exchange's p-1 single-block messages; the trade is message count
// (2 per rank per round) for volume, exactly the schedule family Basu et
// al. tune for direct-connect fabrics.
func Ring(p int, _ *topo.Mapping) (*Schedule, error) {
	return compileRoutes("ring", p, func(s, d int) []int { return ringPath(s, d, p) })
}

// torusShape picks the 2D decomposition: the world topology's nodes x ppn
// when it matches the rank count, otherwise the most-square
// factorization.
func torusShape(p int, m *topo.Mapping) (rows, cols int) {
	if m != nil && m.Nodes()*m.PPN() == p {
		return m.Nodes(), m.PPN()
	}
	rows = 1
	for f := 1; f*f <= p; f++ {
		if p%f == 0 {
			rows = f
		}
	}
	return rows, p / rows
}

// torusRoute is the torus block route: ride the row ring to the
// destination column, then the column ring to the destination row, both
// shortest-direction.
func torusRoute(rows, cols, s, d int) []int {
	si, sj := s/cols, s%cols
	di, dj := d/cols, d%cols
	path := []int{s}
	for _, j := range ringPath(sj, dj, cols)[1:] {
		path = append(path, si*cols+j)
	}
	for _, i := range ringPath(si, di, rows)[1:] {
		path = append(path, i*cols+dj)
	}
	return path
}

// Torus compiles the 2D-torus all-to-all: ranks form a rows x cols torus
// (the node x ppn grid when the topology is known, else the most-square
// factorization), and every block first rides the row ring to its
// destination column, then the column ring to its destination row — both
// shortest-direction, one hop per round, with per-link message packing.
func Torus(p int, m *topo.Mapping) (*Schedule, error) {
	rows, cols := torusShape(p, m)
	name := fmt.Sprintf("torus%dx%d", rows, cols)
	return compileRoutes(name, p, func(s, d int) []int { return torusRoute(rows, cols, s, d) })
}

// Hypercube compiles the multiport hypercube all-to-all (p must be a
// power of two): every block fixes the differing address bits of its
// (source, destination) pair one per round, scanning the k = log2(p)
// dimensions cyclically from a source-dependent start bit. Staggering the
// start bit spreads each round's traffic across all k links of every rank
// — the multiport schedule — instead of serializing rounds onto one
// dimension as the single-port (Bruck-style) exchange does.
func Hypercube(p int, _ *topo.Mapping) (*Schedule, error) {
	if p&(p-1) != 0 {
		return nil, fmt.Errorf("sched: hypercube needs a power-of-two rank count, got %d", p)
	}
	if p == 1 {
		return Pairwise(p, nil)
	}
	k := bits.Len(uint(p)) - 1
	return compileRoutes("hypercube", p, func(s, d int) []int { return hypercubeRoute(k, s, d) })
}

// hypercubeRoute is the multiport hypercube block route: fix the differing
// bits of (s, d) one per round, scanning dimensions cyclically from the
// source-dependent start bit (s+t)%k.
func hypercubeRoute(k, s, d int) []int {
	path := []int{s}
	x := s
	for t := 0; t < k; t++ {
		b := (s + t) % k
		if (x^d)&(1<<b) != 0 {
			x ^= 1 << b
			path = append(path, x)
		}
	}
	return path
}
