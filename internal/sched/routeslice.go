package sched

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"

	"alltoallx/internal/topo"
)

// This file is the rank-sliced counterpart of routes.go: it compiles one
// rank's program of a route-based schedule without materializing all p×p
// block paths. Where compileRoutes walks every (s, d) path and buckets
// hops into per-round move lists, the slicers here answer the inverse
// question — "which blocks depart from / arrive at rank x in round t?" —
// in closed form per topology, so compiling rank x costs O(blocks routed
// through x), not O(p^2 · diameter).
//
// The two implementations are deliberately independent: compileRoutes
// stays the authoritative path-materializing construction (proved by the
// full verifier), and property tests pin compileRank byte-identical to
// its slices at randomized shapes.

// rmsg is one packed message of a round: the peer and the identities
// (s*p+d) of the blocks it carries, ascending.
type rmsg struct {
	peer   int
	blocks []int32
}

// rankSlicer enumerates one topology's per-rank, per-round traffic.
// outs/ins must return messages with peers ascending and block ids
// ascending within each message — the compileRoutes order.
type rankSlicer interface {
	// rounds is the exchange round count (the longest route's hop count).
	rounds() int
	// packMax is the global staging bound: the largest per-rank, per-round
	// packed block count over the whole world (compileRoutes' maxPack).
	packMax() int
	// outs lists the messages rank x sends in round t.
	outs(x, t int) []rmsg
	// ins lists the messages rank x receives in round t.
	ins(x, t int) []rmsg
}

// Scratch layout shared with compileRoutes: 0 = transit (slot s*p+d holds
// block (s,d) between hops), 1 = pack-send staging, 2/3 = alternating
// pack-recv staging.
const (
	routeTransit = 0
	routePackS   = 1
	routePackA   = 2
)

// compileRank emits rank r's program of the route schedule described by
// sl, mirroring compileRoutes' per-rank step construction exactly.
func compileRank(name string, p, r int, sl rankSlicer) *RankProgram {
	maxHops := sl.rounds()
	mp := sl.packMax()
	rp := &RankProgram{
		Format: FormatVersion, Name: name, Ranks: p, Rank: r,
		Scratch: []int{p * p, mp, mp, mp},
	}

	// unpackOf restores round t's arrivals from its pack-recv buffer: home
	// blocks land in the recv buffer, in-transit blocks in transit slot
	// s*p+d.
	unpackOf := func(t int, ins []rmsg) []Step {
		buf := routePackA + t%2
		var steps []Step
		off := 0
		for _, m := range ins {
			for _, b := range m.blocks {
				src, dst := int(b)/p, int(b)%p
				var to Ref
				if dst == r {
					to = recvRef(src, 1)
				} else {
					to = scratchRef(routeTransit, int(b), 1)
				}
				steps = append(steps, Step{Kind: Copy, Src: scratchRef(buf, off, 1), Dst: to})
				off++
			}
		}
		return steps
	}

	var prevIns []rmsg
	for t := 0; t < maxHops; t++ {
		var steps []Step
		if t == 0 {
			steps = append(steps, selfCopy(r))
		} else {
			steps = append(steps, unpackOf(t-1, prevIns)...)
		}
		off := 0
		var sends []Step
		for _, m := range sl.outs(r, t) {
			start := off
			for _, b := range m.blocks {
				src, dst := int(b)/p, int(b)%p
				var from Ref
				if src == r {
					from = sendRef(dst, 1)
				} else {
					from = scratchRef(routeTransit, int(b), 1)
				}
				steps = append(steps, Step{Kind: Copy, Src: from, Dst: scratchRef(routePackS, off, 1)})
				off++
			}
			sends = append(sends, Step{Kind: Send, To: m.peer, Src: scratchRef(routePackS, start, off-start)})
		}
		ins := sl.ins(r, t)
		off = 0
		for _, m := range ins {
			steps = append(steps, Step{Kind: Recv, From: m.peer, Dst: scratchRef(routePackA+t%2, off, len(m.blocks))})
			off += len(m.blocks)
		}
		steps = append(steps, sends...)
		rp.Rounds = append(rp.Rounds, steps)
		prevIns = ins
	}
	rp.Rounds = append(rp.Rounds, unpackOf(maxHops-1, prevIns))
	return rp
}

// sortBlocks orders block ids ascending (the in-message order
// compileRoutes produces).
func sortBlocks(b []int32) []int32 {
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return b
}

// sortMsgs orders messages by peer ascending.
func sortMsgs(ms []rmsg) []rmsg {
	sort.Slice(ms, func(i, j int) bool { return ms[i].peer < ms[j].peer })
	return ms
}

// packMaxCache shares the computed global staging bound per (generator,
// shape): entries are a few bytes, but computing one can cost a full
// slice enumeration (torus) or an O(p^2) counting pass (hypercube).
var packMaxCache = struct {
	sync.Mutex
	m map[string]int
}{m: make(map[string]int)}

func cachedPackMax(key string, compute func() int) int {
	packMaxCache.Lock()
	defer packMaxCache.Unlock()
	if v, ok := packMaxCache.m[key]; ok {
		return v
	}
	v := compute()
	packMaxCache.m[key] = v
	return v
}

// ---------------------------------------------------------------------
// Ring
//
// Block (s, d) travels the shortest way around the bidirectional ring:
// forward over distance j = (d-s) mod p when j <= p/2 (ties go forward),
// else backward over p-j. A forward block sits at rank s+t at the start
// of round t (t < j), so the blocks departing x forward in round t are
// exactly {(x-t, x-t+j) : t < j <= floor(p/2)} — O(result), no path walk.

type ringSlicer struct{ p int }

func (s ringSlicer) maxF() int { return s.p / 2 }       // longest forward route
func (s ringSlicer) maxB() int { return (s.p+1)/2 - 1 } // longest backward route

func (s ringSlicer) rounds() int { return s.maxF() }

// packMax: at round 0 every rank stages all its departing blocks —
// floor(p/2) forward plus ceil(p/2)-1 backward = p-1 — and per-round
// counts only shrink from there; arrivals mirror departures by symmetry.
func (s ringSlicer) packMax() int { return s.p - 1 }

func (s ringSlicer) traffic(x, t int, arrivals bool) []rmsg {
	p := s.p
	// fwdAt/bwdAt: the rank whose round-t position is relevant. For
	// departures it is x itself; for arrivals, the upstream neighbor.
	fwdAt, bwdAt := x, x
	fwdPeer, bwdPeer := (x+1)%p, (x-1+p)%p
	if arrivals {
		fwdAt, bwdAt = (x-1+p)%p, (x+1)%p
		fwdPeer, bwdPeer = (x-1+p)%p, (x+1)%p
	}
	var msgs []rmsg
	if t < s.maxF() {
		src := ((fwdAt-t)%p + p) % p
		blocks := make([]int32, 0, s.maxF()-t)
		for j := t + 1; j <= s.maxF(); j++ {
			blocks = append(blocks, int32(src*p+(src+j)%p))
		}
		msgs = append(msgs, rmsg{peer: fwdPeer, blocks: sortBlocks(blocks)})
	}
	if t < s.maxB() {
		src := (bwdAt + t) % p
		blocks := make([]int32, 0, s.maxB()-t)
		for j := t + 1; j <= s.maxB(); j++ {
			blocks = append(blocks, int32(src*p+((src-j)%p+p)%p))
		}
		msgs = append(msgs, rmsg{peer: bwdPeer, blocks: sortBlocks(blocks)})
	}
	return sortMsgs(msgs)
}

func (s ringSlicer) outs(x, t int) []rmsg { return s.traffic(x, t, false) }
func (s ringSlicer) ins(x, t int) []rmsg  { return s.traffic(x, t, true) }

func ringRank(p, r int, m *topo.Mapping) (*RankProgram, error) {
	if p == 1 {
		return pairwiseRank(p, r, m)
	}
	return compileRank("ring", p, r, ringSlicer{p: p}), nil
}

// ---------------------------------------------------------------------
// Torus
//
// Block ((si,sj) -> (di,dj)) first rides the row ring to column dj (a =
// ring distance sj->dj over cols), then the column ring to row di (b =
// ring distance si->di over rows). In round t < a it sits at (si, pos_t)
// in its row ring; in round a <= t < a+b at (pos_{t-a}, dj) in its column
// ring. Both phases invert exactly like the plain ring; the column phase
// additionally enumerates the source column sj (cols candidates, each
// fixing a = ringdist(sj, xj)).

type torusSlicer struct{ rows, cols int }

func (s torusSlicer) p() int { return s.rows * s.cols }

func (s torusSlicer) rounds() int { return s.cols/2 + s.rows/2 }

func (s torusSlicer) packMax() int {
	key := fmt.Sprintf("torus|%d|%d", s.rows, s.cols)
	return cachedPackMax(key, func() int {
		// The torus is vertex-transitive (ring routes depend only on index
		// differences), so every rank sees the same per-round totals: rank
		// 0's maximum is the global maximum.
		mp := 1
		for t := 0; t < s.rounds(); t++ {
			for _, dir := range [2][]rmsg{s.outs(0, t), s.ins(0, t)} {
				n := 0
				for _, m := range dir {
					n += len(m.blocks)
				}
				if n > mp {
					mp = n
				}
			}
		}
		return mp
	})
}

// ringDist is the route distance of the shortest-direction ring rule.
func ringDist(a, b, n int) int {
	f := ((b-a)%n + n) % n
	if f <= n/2 {
		return f
	}
	return n - f
}

func (s torusSlicer) traffic(x, t int, arrivals bool) []rmsg {
	rows, cols, p := s.rows, s.cols, s.p()
	xi, xj := x/cols, x%cols
	maxFc, maxBc := cols/2, (cols+1)/2-1
	maxFr, maxBr := rows/2, (rows+1)/2-1
	var msgs []rmsg

	// Row phase: blocks in row xi still riding the row ring. For
	// departures the round-t column position is xj; for arrivals the
	// upstream neighbor's.
	rowPhase := func(at int, peer int, backward bool) {
		var blocks []int32
		if !backward && t < maxFc {
			sj := ((at-t)%cols + cols) % cols
			src := xi*cols + sj
			for j := t + 1; j <= maxFc; j++ {
				dj := (sj + j) % cols
				for di := 0; di < rows; di++ {
					blocks = append(blocks, int32(src*p+di*cols+dj))
				}
			}
		}
		if backward && t < maxBc {
			sj := (at + t) % cols
			src := xi*cols + sj
			for j := t + 1; j <= maxBc; j++ {
				dj := ((sj-j)%cols + cols) % cols
				for di := 0; di < rows; di++ {
					blocks = append(blocks, int32(src*p+di*cols+dj))
				}
			}
		}
		if len(blocks) > 0 {
			msgs = append(msgs, rmsg{peer: peer, blocks: sortBlocks(blocks)})
		}
	}
	if arrivals {
		rowPhase((xj-1+cols)%cols, xi*cols+(xj-1+cols)%cols, false)
		rowPhase((xj+1)%cols, xi*cols+(xj+1)%cols, true)
	} else {
		rowPhase(xj, xi*cols+(xj+1)%cols, false)
		rowPhase(xj, xi*cols+(xj-1+cols)%cols, true)
	}

	// Column phase: blocks at column xj whose row ride started after a =
	// ringdist(sj, xj) rounds. tau = t - a is the column-ring round.
	colPhase := func(at int, peer int, backward bool) {
		var blocks []int32
		for sj := 0; sj < cols; sj++ {
			a := ringDist(sj, xj, cols)
			tau := t - a
			if tau < 0 {
				continue
			}
			if !backward && tau < maxFr {
				si := ((at-tau)%rows + rows) % rows
				src := si*cols + sj
				for i := tau + 1; i <= maxFr; i++ {
					di := (si + i) % rows
					blocks = append(blocks, int32(src*p+di*cols+xj))
				}
			}
			if backward && tau < maxBr {
				si := (at + tau) % rows
				src := si*cols + sj
				for i := tau + 1; i <= maxBr; i++ {
					di := ((si-i)%rows + rows) % rows
					blocks = append(blocks, int32(src*p+di*cols+xj))
				}
			}
		}
		if len(blocks) > 0 {
			msgs = append(msgs, rmsg{peer: peer, blocks: sortBlocks(blocks)})
		}
	}
	if arrivals {
		colPhase((xi-1+rows)%rows, ((xi-1+rows)%rows)*cols+xj, false)
		colPhase((xi+1)%rows, ((xi+1)%rows)*cols+xj, true)
	} else {
		colPhase(xi, ((xi+1)%rows)*cols+xj, false)
		colPhase(xi, ((xi-1+rows)%rows)*cols+xj, true)
	}
	return sortMsgs(msgs)
}

func (s torusSlicer) outs(x, t int) []rmsg { return s.traffic(x, t, false) }
func (s torusSlicer) ins(x, t int) []rmsg  { return s.traffic(x, t, true) }

func torusRank(p, r int, m *topo.Mapping) (*RankProgram, error) {
	rows, cols := torusShape(p, m)
	if p == 1 {
		return pairwiseRank(p, r, m)
	}
	name := fmt.Sprintf("torus%dx%d", rows, cols)
	return compileRank(name, p, r, torusSlicer{rows: rows, cols: cols}), nil
}

// ---------------------------------------------------------------------
// Hypercube
//
// Block (s, d) fixes the differing bits of s^d one per round, scanning
// dimensions cyclically from the source-dependent start bit (s+j) mod k.
// Its position after t fixes is s ^ e where e is the first t differing
// bits in scan order — so the blocks at rank x in round t are found by
// enumerating s with popcount(s^x) = t: the bits of e pin scan positions
// below tau = 1 + max scan index of e (where d must agree with x), and
// the k - tau later-scanned bits of d are free.

type hcubeSlicer struct{ p, k int }

func (s hcubeSlicer) rounds() int { return s.k }

// scanTau returns 1 + the largest scan index of e's bits from source s
// (0 for e == 0).
func (s hcubeSlicer) scanTau(src, e int) int {
	tau := 0
	for b := 0; b < s.k; b++ {
		if e>>b&1 == 1 {
			j := ((b-src)%s.k + s.k) % s.k
			if j+1 > tau {
				tau = j + 1
			}
		}
	}
	return tau
}

func (s hcubeSlicer) packMax() int {
	key := fmt.Sprintf("hypercube|%d", s.p)
	return cachedPackMax(key, func() int {
		// Unlike the rings, the scan start bit depends on the source's
		// arithmetic value, so per-rank totals are not symmetric in
		// general: count every (rank, round) with an O(p^2) pass (counts
		// only — no paths, no steps).
		mp := 1
		for x := 0; x < s.p; x++ {
			outT := make([]int, s.k+1)
			inT := make([]int, s.k+1)
			for src := 0; src < s.p; src++ {
				e := src ^ x
				m := bits.OnesCount(uint(e))
				free := s.k - s.scanTau(src, e)
				outT[m] += 1<<free - 1
				if m >= 1 {
					inT[m-1] += 1 << free
				}
			}
			for _, n := range outT {
				if n > mp {
					mp = n
				}
			}
			for _, n := range inT {
				if n > mp {
					mp = n
				}
			}
		}
		return mp
	})
}

func (s hcubeSlicer) outs(x, t int) []rmsg {
	byPeer := make(map[int][]int32)
	for src := 0; src < s.p; src++ {
		e := src ^ x
		if bits.OnesCount(uint(e)) != t {
			continue
		}
		tau := s.scanTau(src, e)
		// Free dimensions in scan order; the first differing one is the
		// next hop.
		freeBits := make([]int, 0, s.k-tau)
		for j := tau; j < s.k; j++ {
			freeBits = append(freeBits, (src+j)%s.k)
		}
		for mask := 1; mask < 1<<len(freeBits); mask++ {
			d := x
			first := -1
			for idx, b := range freeBits {
				if mask>>idx&1 == 1 {
					d ^= 1 << b
					if first < 0 {
						first = b
					}
				}
			}
			peer := x ^ 1<<first
			byPeer[peer] = append(byPeer[peer], int32(src*s.p+d))
		}
	}
	return groupMsgs(byPeer)
}

func (s hcubeSlicer) ins(x, t int) []rmsg {
	byPeer := make(map[int][]int32)
	for src := 0; src < s.p; src++ {
		e := src ^ x
		if bits.OnesCount(uint(e)) != t+1 {
			continue
		}
		// The (t+1)-th fix is e's bit with the largest scan index: that
		// hop carried the block here, so the sender is across it.
		tau, last := 0, -1
		for b := 0; b < s.k; b++ {
			if e>>b&1 == 1 {
				j := ((b-src)%s.k + s.k) % s.k
				if j+1 > tau {
					tau, last = j+1, b
				}
			}
		}
		from := x ^ 1<<last
		for mask := 0; mask < 1<<(s.k-tau); mask++ {
			d := x
			for idx := 0; idx < s.k-tau; idx++ {
				if mask>>idx&1 == 1 {
					d ^= 1 << ((src + tau + idx) % s.k)
				}
			}
			byPeer[from] = append(byPeer[from], int32(src*s.p+d))
		}
	}
	return groupMsgs(byPeer)
}

// groupMsgs converts a peer->blocks map into the canonical message order.
func groupMsgs(byPeer map[int][]int32) []rmsg {
	msgs := make([]rmsg, 0, len(byPeer))
	//a2alint:ignore simdet sortMsgs canonicalizes the order before msgs escapes
	for peer, blocks := range byPeer {
		msgs = append(msgs, rmsg{peer: peer, blocks: sortBlocks(blocks)})
	}
	return sortMsgs(msgs)
}

func hypercubeRank(p, r int, m *topo.Mapping) (*RankProgram, error) {
	if p&(p-1) != 0 {
		return nil, fmt.Errorf("sched: hypercube needs a power-of-two rank count, got %d", p)
	}
	if p == 1 {
		return pairwiseRank(p, r, m)
	}
	return compileRank("hypercube", p, r, hcubeSlicer{p: p, k: bits.Len(uint(p)) - 1}), nil
}
