// Package sched is the communication-schedule subsystem: an explicit
// intermediate representation for collective exchanges (all-to-all,
// alltoallv, reduce-scatter, allreduce), generators that compile
// algorithms into it, a static verifier that proves a schedule correct
// before it ever runs, and an executor that runs any verified schedule
// over comm.Comm on both substrates.
//
// The paper's algorithms (pairwise, Bruck, node-aware aggregation) are
// hand-coded message loops, but they are all instances of one thing: a
// per-rank schedule of send/recv/copy steps. Following Basu et al.
// ("Efficient All-to-All Collective Communication Schedules for
// Direct-Connect Topologies", PAPERS.md), expressing the exchange as an
// explicit schedule unlocks families of topology-tailored algorithms a
// loop-coded implementation cannot reach — this package adds ring,
// 2D-torus and multiport hypercube schedules — and makes schedules
// shareable artifacts (versioned JSON, like autotune tables) that can be
// inspected, diffed and verified offline (cmd/a2asched).
//
// # The IR
//
// A Schedule is an ordered list of Rounds; each Round holds one step list
// per rank. All offsets and lengths are in block units (the per-rank-pair
// block of MPI_Alltoall), so one schedule serves every message size.
// Steps reference three kinds of buffer space: the user send buffer
// (SpaceSend), the user recv buffer (SpaceRecv), and per-rank scratch
// spaces declared by Schedule.Scratch. User-space sizes depend on the
// collective (Schedule.SpaceSizeRank): Ranks blocks each for all-to-all,
// a single recv block for reduce-scatter, per-pair count prefix sums for
// alltoallv.
//
// # Execution semantics (the round discipline)
//
// The executor runs rounds in order, completing each before the next:
//
//  1. every Recv step (and the receive half of every SendRecv) is posted
//     nonblocking, in step order;
//  2. the step list is walked in order: Copy executes immediately, Send
//     (and the send half of SendRecv) is issued nonblocking — so a copy
//     listed before a send can pack the data that send transmits;
//  3. all posted operations are waited on.
//
// Because the verifier proves every send is matched by a receive within
// its round, the round discipline is deadlock-free. Data received in a
// round is only available in later rounds; the verifier rejects
// same-round reads of received data.
package sched

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"alltoallx/internal/artifact"
)

// FormatVersion is the on-disk JSON format version Encode writes. Bump
// on incompatible IR changes; Decode rejects unknown versions rather
// than silently executing a stale schedule. Version 2 added the
// collective kind, the reduction operator label and per-pair block
// counts; version-1 artifacts (plain all-to-all schedules) decode
// unchanged, since every added field defaults to the all-to-all
// reading.
const FormatVersion = 2

// formatReadable reports whether this build can read an artifact of the
// given format version.
func formatReadable(f int) bool { return f == 1 || f == FormatVersion }

// Coll names the collective a schedule implements. The zero value
// (empty string, omitted in JSON) reads as CollAlltoall so version-1
// artifacts keep their meaning.
type Coll string

// The collectives the IR can express.
const (
	// CollAlltoall: send space holds Ranks blocks (one per destination),
	// recv space holds Ranks blocks (one per source), every (src, dst)
	// block delivered exactly once.
	CollAlltoall Coll = "alltoall"
	// CollReduceScatter: send space holds Ranks blocks (this rank's
	// contribution to every destination), recv space holds 1 block that
	// must end as the reduction of every rank's contribution for this
	// rank — each contribution entering exactly once.
	CollReduceScatter Coll = "reduce-scatter"
	// CollAllreduce: send space holds Ranks blocks (the input vector
	// split into Ranks blocks), recv space holds Ranks blocks, and every
	// recv block b must end as the reduction of every rank's block b.
	CollAllreduce Coll = "allreduce"
	// CollAlltoallv: like CollAlltoall with per-pair block counts
	// (Schedule.Counts): rank s sends Counts[s][d] blocks to rank d.
	// Send space is packed by destination, recv space by source, both
	// with prefix-sum displacements.
	CollAlltoallv Coll = "alltoallv"
)

// valid reports whether c is a known collective kind.
func (c Coll) valid() bool {
	switch c {
	case CollAlltoall, CollReduceScatter, CollAllreduce, CollAlltoallv:
		return true
	}
	return false
}

// reduction reports whether the collective combines data with an
// operator (and so may contain Reduce steps).
func (c Coll) reduction() bool { return c == CollReduceScatter || c == CollAllreduce }

// OpAny is the operator label of the bundled reduction generators: their
// schedules are valid for any associative, commutative operator, so the
// label constrains consistency (every Reduce step must carry the
// schedule's label), not the executor's choice of operator.
const OpAny = "any"

// Buffer spaces a Ref can address. Scratch space i has id SpaceScratch+i.
const (
	// SpaceSend is the user send buffer: Ranks blocks, read-only (the
	// verifier rejects writes into it).
	SpaceSend = 0
	// SpaceRecv is the user recv buffer: Ranks blocks; slot s must end up
	// holding the block rank s sent to this rank, written exactly once.
	SpaceRecv = 1
	// SpaceScratch is the id of the first scratch space.
	SpaceScratch = 2
)

// Kind names a step type.
type Kind string

// Step kinds.
const (
	// Send transmits Src to rank To.
	Send Kind = "send"
	// Recv receives from rank From into Dst.
	Recv Kind = "recv"
	// SendRecv combines a send (To, Src) and a receive (From, Dst) in one
	// step — the pairwise-exchange primitive.
	SendRecv Kind = "sendrecv"
	// Copy moves Src to Dst within this rank's buffers (equal lengths).
	Copy Kind = "copy"
	// Reduce combines Src into Dst within this rank's buffers:
	// Dst = Dst op Src, elementwise over equal-length refs, using the
	// operator the schedule is labeled with (Step.Op must equal
	// Schedule.Op; the verifier rejects a mismatch). Reduce steps are
	// only legal in reduction schedules (reduce-scatter, allreduce); the
	// executor runs them with the operator installed via Exec.SetOp.
	Reduce Kind = "reduce"
)

// Ref addresses a contiguous run of N blocks at offset Off (both in block
// units) of buffer space Buf. It encodes as the JSON array [buf, off, n]
// to keep schedule artifacts compact.
type Ref struct {
	Buf int
	Off int
	N   int
}

// MarshalJSON encodes the ref as [buf, off, n].
func (r Ref) MarshalJSON() ([]byte, error) {
	return json.Marshal([3]int{r.Buf, r.Off, r.N})
}

// UnmarshalJSON decodes the [buf, off, n] form.
func (r *Ref) UnmarshalJSON(b []byte) error {
	var a [3]int
	if err := json.Unmarshal(b, &a); err != nil {
		return fmt.Errorf("sched: ref must be [buf, off, n]: %w", err)
	}
	r.Buf, r.Off, r.N = a[0], a[1], a[2]
	return nil
}

func (r Ref) String() string { return fmt.Sprintf("[%d %d+%d]", r.Buf, r.Off, r.N) }

// Step is one action of one rank within a round. Which fields are
// meaningful depends on Kind: Send uses To/Src, Recv uses From/Dst,
// SendRecv all four, Copy uses Src/Dst, Reduce uses Src/Dst/Op.
type Step struct {
	Kind Kind `json:"k"`
	To   int  `json:"t,omitempty"`
	From int  `json:"f,omitempty"`
	Src  Ref  `json:"s"`
	Dst  Ref  `json:"d"`
	// Op is the operator label of a Reduce step; it must match the
	// schedule's Op (per-step so a spliced or hand-edited artifact cannot
	// silently combine under the wrong operator).
	Op string `json:"o,omitempty"`
}

// Round is one synchronization unit of the schedule: Steps[r] is rank r's
// step list. Every send in a round is received in the same round.
type Round struct {
	Steps [][]Step `json:"steps"`
}

// Schedule is a complete per-rank communication schedule for a
// collective over Ranks ranks.
type Schedule struct {
	// Format is the IR format version (FormatVersion).
	Format int `json:"format"`
	// Name labels the schedule (generator name, e.g. "ring").
	Name string `json:"name"`
	// Ranks is the world size the schedule is compiled for.
	Ranks int `json:"ranks"`
	// Coll is the collective the schedule implements; empty means
	// CollAlltoall (the version-1 reading). Use Collective() to read it.
	Coll Coll `json:"coll,omitempty"`
	// Op is the reduction-operator label; required for (and only legal
	// on) reduction collectives. The bundled generators emit OpAny.
	Op string `json:"op,omitempty"`
	// Counts are the per-pair block counts of an alltoallv schedule:
	// Counts[s][d] blocks flow from rank s to rank d. Required for (and
	// only legal on) CollAlltoallv; send/recv spaces are packed by
	// prefix sums of rows/columns.
	Counts [][]int `json:"counts,omitempty"`
	// Scratch declares per-rank scratch spaces: Scratch[i] is the size in
	// blocks of space SpaceScratch+i. Every rank gets its own copy.
	Scratch []int `json:"scratch,omitempty"`
	// Rounds are executed in order under the round discipline.
	Rounds []Round `json:"rounds"`
}

// Collective returns the schedule's collective kind, reading the empty
// (version-1) value as CollAlltoall.
func (s *Schedule) Collective() Coll {
	if s.Coll == "" {
		return CollAlltoall
	}
	return s.Coll
}

// SpaceSize returns the size in blocks of a buffer space id for rank 0,
// or -1 for an unknown space. For collectives whose user-space sizes are
// uniform across ranks (everything but alltoallv) this is the per-rank
// size; use SpaceSizeRank when counts vary.
func (s *Schedule) SpaceSize(buf int) int {
	return s.SpaceSizeRank(0, buf)
}

// SpaceSizeRank returns the size in blocks of a buffer space id as seen
// by one rank, or -1 for an unknown space. Send and recv sizes depend on
// the collective: alltoall uses Ranks blocks on both sides,
// reduce-scatter receives a single block, allreduce uses Ranks blocks on
// both sides, and alltoallv packs Counts row/column sums.
func (s *Schedule) SpaceSizeRank(rank, buf int) int {
	switch buf {
	case SpaceSend:
		if s.Collective() == CollAlltoallv {
			return sumCounts(countsRow(s.Counts, rank))
		}
		return s.Ranks
	case SpaceRecv:
		switch s.Collective() {
		case CollReduceScatter:
			return 1
		case CollAlltoallv:
			return sumCounts(countsCol(s.Counts, rank))
		}
		return s.Ranks
	}
	if i := buf - SpaceScratch; i >= 0 && i < len(s.Scratch) {
		return s.Scratch[i]
	}
	return -1
}

func sumCounts(row []int) int {
	t := 0
	for _, n := range row {
		t += n
	}
	return t
}

func countsRow(counts [][]int, rank int) []int {
	if rank < 0 || rank >= len(counts) {
		return nil
	}
	return counts[rank]
}

func countsCol(counts [][]int, rank int) []int {
	col := make([]int, len(counts))
	for s, row := range counts {
		if rank >= 0 && rank < len(row) {
			col[s] = row[rank]
		}
	}
	return col
}

// Stats summarizes a schedule's cost structure.
type Stats struct {
	// Rounds is the number of rounds.
	Rounds int
	// Messages is the total number of point-to-point messages (a SendRecv
	// counts once: its send half).
	Messages int
	// WireBlocks is the total number of blocks crossing the wire.
	WireBlocks int
	// Copies and CopyBlocks count local Copy steps and the blocks they
	// move (the schedule's repack cost).
	Copies, CopyBlocks int
	// Reduces and ReduceBlocks count Reduce steps and the blocks they
	// combine (the schedule's compute cost).
	Reduces, ReduceBlocks int
	// MaxRoundMessages is the largest per-round message count.
	MaxRoundMessages int
	// ScratchBlocks is the per-rank scratch footprint in blocks.
	ScratchBlocks int
}

// Stats computes the schedule's summary counters.
func (s *Schedule) Stats() Stats {
	st := Stats{Rounds: len(s.Rounds)}
	for _, sz := range s.Scratch {
		st.ScratchBlocks += sz
	}
	for _, rd := range s.Rounds {
		msgs := 0
		for _, steps := range rd.Steps {
			for _, step := range steps {
				switch step.Kind {
				case Send, SendRecv:
					msgs++
					st.WireBlocks += step.Src.N
				case Copy:
					st.Copies++
					st.CopyBlocks += step.Src.N
				case Reduce:
					st.Reduces++
					st.ReduceBlocks += step.Src.N
				}
			}
		}
		st.Messages += msgs
		if msgs > st.MaxRoundMessages {
			st.MaxRoundMessages = msgs
		}
	}
	return st
}

// RoundMatrix returns the blocks-sent matrix of round ri: m[src][dst] is
// the number of blocks src sends to dst in that round. Out-of-range
// ranks or peers are skipped rather than indexed: the matrix is an
// inspection tool and must render malformed artifacts (which Verify
// rejects) instead of panicking on them.
func (s *Schedule) RoundMatrix(ri int) [][]int {
	m := make([][]int, s.Ranks)
	for i := range m {
		m[i] = make([]int, s.Ranks)
	}
	for r, steps := range s.Rounds[ri].Steps {
		if r >= s.Ranks {
			break
		}
		for _, step := range steps {
			switch step.Kind {
			case Send, SendRecv:
				if step.To >= 0 && step.To < s.Ranks {
					m[r][step.To] += step.Src.N
				}
			}
		}
	}
	return m
}

// Encode writes the schedule as versioned JSON (the Format field is
// forced to FormatVersion).
func (s *Schedule) Encode(w io.Writer) error {
	s.Format = FormatVersion
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(s)
}

// Decode reads one schedule from r. It checks the format version and
// basic shape; run Verify for the full correctness proof (Decode stays
// cheap so tools can load a broken schedule to inspect it).
func Decode(r io.Reader) (*Schedule, error) {
	var s Schedule
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("sched: decoding schedule: %w", err)
	}
	if !formatReadable(s.Format) {
		return nil, fmt.Errorf("sched: schedule format %d, this build reads formats 1-%d — regenerate with a2asched gen", s.Format, FormatVersion)
	}
	if s.Ranks <= 0 {
		return nil, fmt.Errorf("sched: schedule has invalid rank count %d", s.Ranks)
	}
	return &s, nil
}

// Save writes the schedule to path atomically, the same artifact
// discipline as autotune tables (internal/artifact).
func (s *Schedule) Save(path string) error {
	return artifact.Save(path, "sched: saving schedule", s.Encode)
}

// Load reads the schedule at path (Decode semantics: format-checked, not
// verified).
func Load(path string) (*Schedule, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("sched: loading schedule: %w", err)
	}
	defer f.Close()
	s, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
