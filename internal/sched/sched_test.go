package sched

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestRefJSONRoundTrip(t *testing.T) {
	t.Parallel()
	s, err := Pairwise(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip mismatch:\nwant %+v\ngot  %+v", s, got)
	}
	if err := Verify(got); err != nil {
		t.Fatalf("decoded schedule fails verification: %v", err)
	}
}

func TestDecodeRejectsWrongFormat(t *testing.T) {
	t.Parallel()
	if _, err := Decode(strings.NewReader(`{"format":99,"name":"x","ranks":2,"rounds":[]}`)); err == nil {
		t.Fatal("format 99 accepted")
	}
	if _, err := Decode(strings.NewReader(`{"format":1,"name":"x","ranks":0,"rounds":[]}`)); err == nil {
		t.Fatal("zero ranks accepted")
	}
	if _, err := Decode(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestSaveLoad(t *testing.T) {
	t.Parallel()
	s, err := Generate("ring", 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ring6.json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatal("save/load mismatch")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestStatsAndRoundMatrix(t *testing.T) {
	t.Parallel()
	p := 5
	s, err := Pairwise(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Rounds != p {
		t.Errorf("rounds = %d, want %d", st.Rounds, p)
	}
	if want := p * (p - 1); st.Messages != want {
		t.Errorf("messages = %d, want %d", st.Messages, want)
	}
	if want := p * (p - 1); st.WireBlocks != want {
		t.Errorf("wire blocks = %d, want %d", st.WireBlocks, want)
	}
	if st.Copies != p {
		t.Errorf("copies = %d, want %d (one self copy per rank)", st.Copies, p)
	}
	// Round 1 of pairwise: every rank sends exactly one block to r+1.
	m := s.RoundMatrix(1)
	for r := 0; r < p; r++ {
		for d := 0; d < p; d++ {
			want := 0
			if d == (r+1)%p {
				want = 1
			}
			if m[r][d] != want {
				t.Fatalf("round 1 matrix[%d][%d] = %d, want %d", r, d, m[r][d], want)
			}
		}
	}
}

func TestGenerateUnknown(t *testing.T) {
	t.Parallel()
	if _, err := Generate("no-such", 4, nil); err == nil {
		t.Fatal("unknown generator accepted")
	}
	if _, err := Generate("ring", 0, nil); err == nil {
		t.Fatal("zero ranks accepted")
	}
}

func TestHypercubeNeedsPowerOfTwo(t *testing.T) {
	t.Parallel()
	if _, err := Generate("hypercube", 6, nil); err == nil {
		t.Fatal("hypercube accepted 6 ranks")
	}
	if _, err := Generate("hypercube", 8, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	t.Parallel()
	for _, name := range Generators() {
		p := 8
		a, err := Generate(name, p, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := Generate(name, p, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: two generations differ", name)
		}
	}
}
