// Rank-sliced schedule compilation. A RankProgram is the slice of a
// Schedule that one rank actually executes: its step list of every round,
// plus the world-level facts (rank count, scratch declarations) the
// executor and verifier need. GenerateRank compiles a rank's program
// directly — O(slice) memory instead of the whole world's O(p^2) — so
// schedule-backed algorithms scale to worlds where materializing (or
// symbolically verifying) the assembled schedule is out of the question.
//
// The contract, enforced by property tests: for every generator and every
// (p, rank, topology), GenerateRank is byte-identical to
// Slice(Generate(...), rank). The classic generators share per-rank step
// builders with Generate; the route-compiled families (ring, torus,
// hypercube) have independent inverse-routing slicers in routeslice.go,
// cross-checked against the path-materializing compiler.

package sched

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"alltoallx/internal/artifact"
	"alltoallx/internal/topo"
)

// RankProgram is one rank's compiled schedule: Rounds[ri] is this rank's
// step list in round ri (step semantics and the round discipline are
// exactly those of Schedule). Scratch declares the same per-rank scratch
// spaces the whole-world schedule would; Ranks is the world size the
// program is compiled for.
type RankProgram struct {
	// Format is the IR format version (FormatVersion).
	Format int `json:"format"`
	// Name labels the originating schedule (generator name).
	Name string `json:"name"`
	// Ranks is the world size the program is compiled for.
	Ranks int `json:"ranks"`
	// Rank is the rank this program belongs to.
	Rank int `json:"rank"`
	// Coll is the collective the program implements; empty means
	// CollAlltoall (the version-1 reading). Use Collective() to read it.
	Coll Coll `json:"coll,omitempty"`
	// Op is the reduction-operator label (Schedule.Op).
	Op string `json:"op,omitempty"`
	// VSend/VRecv are this rank's alltoallv count row and column:
	// VSend[d] blocks go to rank d, VRecv[s] blocks arrive from rank s.
	// Present only for CollAlltoallv — the slice of Schedule.Counts a
	// rank needs (O(p), never the O(p^2) matrix).
	VSend []int `json:"vsend,omitempty"`
	VRecv []int `json:"vrecv,omitempty"`
	// Scratch declares scratch spaces, identically to Schedule.Scratch.
	Scratch []int `json:"scratch,omitempty"`
	// Rounds[ri] is this rank's steps in round ri.
	Rounds [][]Step `json:"rounds"`
}

// Collective returns the program's collective kind, reading the empty
// (version-1) value as CollAlltoall.
func (rp *RankProgram) Collective() Coll {
	if rp.Coll == "" {
		return CollAlltoall
	}
	return rp.Coll
}

// Slice extracts rank's program from an assembled schedule. The step
// lists are shared with the schedule, not copied: schedules are immutable
// after generation.
func Slice(s *Schedule, rank int) (*RankProgram, error) {
	if s == nil {
		return nil, errors.New("sched: cannot slice a nil schedule")
	}
	if rank < 0 || rank >= s.Ranks {
		return nil, fmt.Errorf("sched: rank %d out of range for a %d-rank schedule", rank, s.Ranks)
	}
	rp := &RankProgram{Format: s.Format, Name: s.Name, Ranks: s.Ranks, Rank: rank,
		Coll: s.Coll, Op: s.Op, Scratch: s.Scratch}
	if s.Collective() == CollAlltoallv {
		rp.VSend = countsRow(s.Counts, rank)
		rp.VRecv = countsCol(s.Counts, rank)
	}
	for ri := range s.Rounds {
		if rank >= len(s.Rounds[ri].Steps) {
			return nil, fmt.Errorf("sched: round %d has only %d step lists, cannot slice rank %d", ri, len(s.Rounds[ri].Steps), rank)
		}
		rp.Rounds = append(rp.Rounds, s.Rounds[ri].Steps[rank])
	}
	return rp, nil
}

// SpaceSize returns the size in blocks of a buffer space id, or -1 for an
// unknown space (the same layout the whole-world schedule reports for
// this rank via SpaceSizeRank).
func (rp *RankProgram) SpaceSize(buf int) int {
	switch buf {
	case SpaceSend:
		if rp.Collective() == CollAlltoallv {
			return sumCounts(rp.VSend)
		}
		return rp.Ranks
	case SpaceRecv:
		switch rp.Collective() {
		case CollReduceScatter:
			return 1
		case CollAlltoallv:
			return sumCounts(rp.VRecv)
		}
		return rp.Ranks
	}
	if i := buf - SpaceScratch; i >= 0 && i < len(rp.Scratch) {
		return rp.Scratch[i]
	}
	return -1
}

// Stats computes the program's summary counters: the same fields as
// Schedule.Stats restricted to this rank's steps (Messages counts this
// rank's sends).
func (rp *RankProgram) Stats() Stats {
	st := Stats{Rounds: len(rp.Rounds)}
	for _, sz := range rp.Scratch {
		st.ScratchBlocks += sz
	}
	for _, steps := range rp.Rounds {
		msgs := 0
		for _, step := range steps {
			switch step.Kind {
			case Send, SendRecv:
				msgs++
				st.WireBlocks += step.Src.N
			case Copy:
				st.Copies++
				st.CopyBlocks += step.Src.N
			case Reduce:
				st.Reduces++
				st.ReduceBlocks += step.Src.N
			}
		}
		st.Messages += msgs
		if msgs > st.MaxRoundMessages {
			st.MaxRoundMessages = msgs
		}
	}
	return st
}

// Steps returns the total step count of the program (the quantity cache
// byte accounting is based on).
func (rp *RankProgram) Steps() int {
	n := 0
	for _, steps := range rp.Rounds {
		n += len(steps)
	}
	return n
}

// stepBytes approximates the in-memory footprint of one Step (kind
// header, peers, two refs, slice overhead amortized).
const stepBytes = 96

// MemBytes estimates the program's in-memory footprint, for cache byte
// accounting.
func (rp *RankProgram) MemBytes() int64 {
	return int64(rp.Steps())*stepBytes + int64(len(rp.Rounds))*24 +
		int64(len(rp.Scratch)+len(rp.VSend)+len(rp.VRecv))*8 + 128
}

// Steps returns the total step count of the schedule across all ranks.
func (s *Schedule) Steps() int {
	n := 0
	for _, rd := range s.Rounds {
		for _, steps := range rd.Steps {
			n += len(steps)
		}
	}
	return n
}

// MemBytes estimates the schedule's in-memory footprint, for cache byte
// accounting.
func (s *Schedule) MemBytes() int64 {
	rows := 0
	for _, rd := range s.Rounds {
		rows += len(rd.Steps)
	}
	return int64(s.Steps())*stepBytes + int64(rows)*24 + int64(len(s.Scratch))*8 + 128
}

// Encode writes the rank program as versioned JSON (the Format field is
// forced to FormatVersion).
func (rp *RankProgram) Encode(w io.Writer) error {
	rp.Format = FormatVersion
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(rp)
}

// DecodeRank reads one rank program from r, checking the format version
// and basic shape (like Decode, it stays cheap; run VerifyRank for the
// local correctness checks).
func DecodeRank(r io.Reader) (*RankProgram, error) {
	var rp RankProgram
	if err := json.NewDecoder(r).Decode(&rp); err != nil {
		return nil, fmt.Errorf("sched: decoding rank program: %w", err)
	}
	if !formatReadable(rp.Format) {
		return nil, fmt.Errorf("sched: rank program format %d, this build reads formats 1-%d — regenerate with a2asched slice", rp.Format, FormatVersion)
	}
	if rp.Ranks <= 0 {
		return nil, fmt.Errorf("sched: rank program has invalid rank count %d", rp.Ranks)
	}
	if rp.Rank < 0 || rp.Rank >= rp.Ranks {
		return nil, fmt.Errorf("sched: rank program rank %d out of range 0..%d", rp.Rank, rp.Ranks-1)
	}
	return &rp, nil
}

// Save writes the rank program to path atomically (the shared artifact
// discipline).
func (rp *RankProgram) Save(path string) error {
	return artifact.Save(path, "sched: saving rank program", rp.Encode)
}

// rankGenerator compiles one rank's program directly.
type rankGenerator func(p, rank int, m *topo.Mapping) (*RankProgram, error)

// GenerateRank compiles the named schedule's slice for one rank of a
// p-rank world (m may be nil). The result is byte-identical to
// Slice(Generate(name, p, m), rank) but costs O(slice): O(p) for
// direct/pairwise, O(p log p) for bruck, and O(blocks routed through the
// rank) for the route-compiled families — never O(p^2) memory.
func GenerateRank(name string, p, rank int, m *topo.Mapping) (*RankProgram, error) {
	e, ok := genRegistry[name]
	if !ok {
		return nil, fmt.Errorf("sched: unknown generator %q (have %v)", name, AllGenerators())
	}
	if err := checkRanks(p); err != nil {
		return nil, err
	}
	if rank < 0 || rank >= p {
		return nil, fmt.Errorf("sched: rank %d out of range 0..%d", rank, p-1)
	}
	return e.rank(p, rank, m)
}

// LoadRank reads the rank program at path (DecodeRank semantics:
// format-checked, not verified).
func LoadRank(path string) (*RankProgram, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("sched: loading rank program: %w", err)
	}
	defer f.Close()
	rp, err := DecodeRank(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rp, nil
}
