package sched

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"alltoallx/internal/comm"
	"alltoallx/internal/runtime"
	"alltoallx/internal/testutil"
	"alltoallx/internal/topo"
)

// gridMapping builds a nodes x ppn topology with a flat node shape.
func gridMapping(t *testing.T, nodes, ppn int) *topo.Mapping {
	t.Helper()
	m, err := topo.NewMapping(topo.Spec{Sockets: 1, NumaPerSocket: 1, CoresPerNuma: ppn}, nodes, ppn)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestRankGeneratorsCoverRegistry pins every registry entry to a complete
// pair of implementations: whole-world and rank-sliced.
func TestRankGeneratorsCoverRegistry(t *testing.T) {
	t.Parallel()
	for name, e := range genRegistry {
		if e.whole == nil {
			t.Errorf("generator %q has no whole-world implementation", name)
		}
		if e.rank == nil {
			t.Errorf("generator %q has no rank-sliced implementation", name)
		}
		if !e.coll.valid() {
			t.Errorf("generator %q declares invalid collective %q", name, e.coll)
		}
	}
}

// checkSliceIdentity asserts GenerateRank output is byte-identical to the
// corresponding slice of Generate for every rank of the world.
func checkSliceIdentity(t *testing.T, name string, p int, m *topo.Mapping) {
	t.Helper()
	s, err := Generate(name, p, m)
	if err != nil {
		t.Fatalf("%s p=%d: Generate: %v", name, p, err)
	}
	for r := 0; r < p; r++ {
		want, err := Slice(s, r)
		if err != nil {
			t.Fatalf("%s p=%d rank %d: Slice: %v", name, p, r, err)
		}
		got, err := GenerateRank(name, p, r, m)
		if err != nil {
			t.Fatalf("%s p=%d rank %d: GenerateRank: %v", name, p, r, err)
		}
		if !reflect.DeepEqual(got, want) {
			for ri := range want.Rounds {
				if ri >= len(got.Rounds) || !reflect.DeepEqual(got.Rounds[ri], want.Rounds[ri]) {
					t.Fatalf("%s p=%d rank %d: round %d differs\n got: %v\nwant: %v\n(got scratch %v, want %v; got rounds %d, want %d)",
						name, p, r, ri, at(got.Rounds, ri), want.Rounds[ri], got.Scratch, want.Scratch, len(got.Rounds), len(want.Rounds))
				}
			}
			t.Fatalf("%s p=%d rank %d: programs differ outside rounds: got {name %q ranks %d rank %d scratch %v rounds %d}, want {name %q ranks %d rank %d scratch %v rounds %d}",
				name, p, r, got.Name, got.Ranks, got.Rank, got.Scratch, len(got.Rounds),
				want.Name, want.Ranks, want.Rank, want.Scratch, len(want.Rounds))
		}
	}
}

func at(rounds [][]Step, ri int) []Step {
	if ri < len(rounds) {
		return rounds[ri]
	}
	return nil
}

// TestGenerateRankMatchesGenerate is the oracle property test of the
// sliced compilers: for every generator and a randomized set of (p, rank,
// topology) shapes, GenerateRank output is byte-identical to the
// corresponding slice of Generate. The route-based generators have fully
// independent implementations (inverse routing vs path materialization),
// so this is a real cross-check, not a tautology.
func TestGenerateRankMatchesGenerate(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(11))
	for _, name := range Generators() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for _, p := range shapesFor(name, rng, 12) {
				checkSliceIdentity(t, name, p, nil)
			}
		})
	}
	// Topology-shaped worlds: the torus takes its grid from the mapping,
	// the others must ignore it — identity must hold either way.
	t.Run("with-topology", func(t *testing.T) {
		t.Parallel()
		for _, shape := range []struct{ nodes, ppn int }{{2, 4}, {3, 5}, {4, 4}, {1, 7}, {6, 2}} {
			m := gridMapping(t, shape.nodes, shape.ppn)
			for _, name := range Generators() {
				p := m.Size()
				if name == "hypercube" && p&(p-1) != 0 {
					continue
				}
				checkSliceIdentity(t, name, p, m)
			}
		}
	})
}

// TestStreamVerifierAcceptsGenerators: the large-world mode accepts every
// generator's sliced output at randomized shapes — the same worlds the
// full verifier proves.
func TestStreamVerifierAcceptsGenerators(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(23))
	for _, name := range Generators() {
		for _, p := range shapesFor(name, rng, 8) {
			if err := VerifyWorldSliced(name, p, nil); err != nil {
				t.Errorf("%s p=%d: sliced verification failed: %v", name, p, err)
			}
		}
	}
	m := gridMapping(t, 3, 4)
	if err := VerifyWorldSliced("torus", m.Size(), m); err != nil {
		t.Errorf("torus on 3x4 grid: %v", err)
	}
}

// corrupt returns all rank slices of a generated schedule, for mutation.
func slicesOf(t *testing.T, name string, p int) []*RankProgram {
	t.Helper()
	s, err := Generate(name, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*RankProgram, p)
	for r := 0; r < p; r++ {
		rp, err := Slice(s, r)
		if err != nil {
			t.Fatal(err)
		}
		// Deep-copy rounds so mutations cannot alias the generator output.
		cp := &RankProgram{Format: rp.Format, Name: rp.Name, Ranks: rp.Ranks, Rank: rp.Rank,
			Scratch: append([]int(nil), rp.Scratch...)}
		for _, steps := range rp.Rounds {
			cp.Rounds = append(cp.Rounds, append([]Step(nil), steps...))
		}
		out[r] = cp
	}
	return out
}

func streamAll(rps []*RankProgram) error {
	sv := NewStreamVerifier(len(rps))
	for _, rp := range rps {
		if err := sv.Add(rp); err != nil {
			return err
		}
	}
	return sv.Finish()
}

// TestStreamVerifierRejections: every corruption class the streaming mode
// claims to catch is actually caught.
func TestStreamVerifierRejections(t *testing.T) {
	t.Parallel()
	const p = 6
	cases := []struct {
		name   string
		gen    string
		mutate func(rps []*RankProgram)
	}{
		{"dropped-send", "pairwise", func(rps []*RankProgram) {
			// Remove rank 0's round-1 sendrecv entirely: its partner's
			// receive goes unmatched.
			rps[0].Rounds[1] = nil
		}},
		{"redirected-send", "pairwise", func(rps []*RankProgram) {
			// Point rank 0's round-1 send at the wrong peer: the (from,
			// to) multisets no longer match.
			rps[0].Rounds[1][0].To = (rps[0].Rounds[1][0].To + 1) % p
		}},
		{"length-mismatch", "bruck", func(rps []*RankProgram) {
			// Shrink one packed exchange: block totals disagree.
			st := &rps[2].Rounds[1][len(rps[2].Rounds[1])-1]
			st.Src.N--
			st.Dst.N--
		}},
		{"double-delivery", "direct", func(rps []*RankProgram) {
			// Deliver rank 1's self block twice.
			rps[1].Rounds[0] = append(rps[1].Rounds[0], selfCopy(1))
		}},
		{"wrong-self-block", "direct", func(rps []*RankProgram) {
			// Copy the wrong send slot into the self recv slot: content is
			// locally known, so the slice check catches it.
			rps[1].Rounds[0][0].Src.Off = 2
		}},
		{"undefined-read", "bruck", func(rps []*RankProgram) {
			// Read a rotation-buffer slot before anything wrote it.
			rps[0].Rounds[0] = append([]Step{{Kind: Copy, Src: scratchRef(0, 0, 1), Dst: scratchRef(1, 0, 1)}}, rps[0].Rounds[0]...)
		}},
		{"same-round-recv-read", "direct", func(rps []*RankProgram) {
			// Copy out of a slot a same-round receive writes.
			from := rps[0].Rounds[0][1].From
			rps[0].Rounds[0] = append(rps[0].Rounds[0], Step{Kind: Copy, Src: recvRef(from, 1), Dst: scratchRef(0, 0, 1)})
			rps[0].Scratch = []int{1}
			for r := 1; r < p; r++ {
				rps[r].Scratch = []int{1}
			}
		}},
		{"send-buffer-write", "pairwise", func(rps []*RankProgram) {
			rps[3].Rounds[0][0].Dst = sendRef(0, 1)
		}},
		{"rank-missing", "pairwise", func(rps []*RankProgram) {
			rps[4] = rps[2] // rank 4's slice replaced: 2 streams twice
		}},
		{"scratch-shape-drift", "bruck", func(rps []*RankProgram) {
			rps[5].Scratch[0]++
		}},
		{"ref-out-of-range", "pairwise", func(rps []*RankProgram) {
			rps[0].Rounds[2][0].Src.Off = p
		}},
		{"reduce-step", "pairwise", func(rps []*RankProgram) {
			rps[0].Rounds[0] = append(rps[0].Rounds[0], Step{Kind: Reduce, Src: sendRef(0, 1), Dst: scratchRef(0, 0, 1)})
			rps[0].Scratch = []int{1}
			for r := 1; r < p; r++ {
				rps[r].Scratch = []int{1}
			}
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			rps := slicesOf(t, tc.gen, p)
			if err := streamAll(rps); err != nil {
				t.Fatalf("uncorrupted %s stream rejected: %v", tc.gen, err)
			}
			rps = slicesOf(t, tc.gen, p)
			tc.mutate(rps)
			if err := streamAll(rps); err == nil {
				t.Fatalf("corrupted %s stream (%s) accepted", tc.gen, tc.name)
			}
		})
	}
}

// TestVerifyRankLocal: the single-slice entry point accepts generator
// output and rejects local corruption.
func TestVerifyRankLocal(t *testing.T) {
	t.Parallel()
	rp, err := GenerateRank("ring", 9, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyRank(rp); err != nil {
		t.Fatalf("generated slice rejected: %v", err)
	}
	rp.Rounds[0][0].Src.Off = 99
	if err := VerifyRank(rp); err == nil {
		t.Fatal("out-of-range ref accepted")
	}
	if err := VerifyRank(nil); err == nil {
		t.Fatal("nil rank program accepted")
	}
}

// TestGenerateRankArgErrors mirrors Generate's argument validation.
func TestGenerateRankArgErrors(t *testing.T) {
	t.Parallel()
	if _, err := GenerateRank("no-such", 4, 0, nil); err == nil {
		t.Error("unknown generator accepted")
	}
	if _, err := GenerateRank("pairwise", 0, 0, nil); err == nil {
		t.Error("zero rank count accepted")
	}
	if _, err := GenerateRank("pairwise", MaxRanks+1, 0, nil); err == nil {
		t.Error("world past the int32 block-id width accepted")
	}
	if _, err := Generate("pairwise", MaxRanks+1, nil); err == nil {
		t.Error("Generate accepted a world past the int32 block-id width")
	}
	if _, err := GenerateRank("pairwise", 4, 4, nil); err == nil {
		t.Error("out-of-range rank accepted")
	}
	if _, err := GenerateRank("hypercube", 6, 0, nil); err == nil {
		t.Error("non-power-of-two hypercube accepted")
	}
	if _, err := Slice(nil, 0); err == nil {
		t.Error("nil schedule sliced")
	}
	s, err := Generate("pairwise", 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Slice(s, 7); err == nil {
		t.Error("out-of-range slice accepted")
	}
}

// TestRankProgramJSONRoundTrip: the sliced artifact encodes and decodes
// losslessly and rejects foreign format versions.
func TestRankProgramJSONRoundTrip(t *testing.T) {
	t.Parallel()
	rp, err := GenerateRank("torus", 12, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rp.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRank(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rp) {
		t.Fatalf("round trip differs:\n got %+v\nwant %+v", got, rp)
	}
	bad := bytes.Replace(buf.Bytes(), []byte(fmt.Sprintf(`"format": %d`, FormatVersion)), []byte(`"format": 99`), 1)
	if _, err := DecodeRank(bytes.NewReader(bad)); err == nil {
		t.Fatal("foreign format version accepted")
	}
}

// TestRankProgramStats: slice stats are consistent with the whole-world
// schedule: per-rank messages and copies sum to the schedule totals.
func TestRankProgramStats(t *testing.T) {
	t.Parallel()
	s, err := Generate("ring", 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	whole := s.Stats()
	var msgs, copies, wire int
	var mem int64
	for r := 0; r < 10; r++ {
		rp, err := Slice(s, r)
		if err != nil {
			t.Fatal(err)
		}
		st := rp.Stats()
		msgs += st.Messages
		copies += st.Copies
		wire += st.WireBlocks
		if st.Rounds != whole.Rounds {
			t.Errorf("rank %d sees %d rounds, schedule has %d", r, st.Rounds, whole.Rounds)
		}
		if st.ScratchBlocks != whole.ScratchBlocks {
			t.Errorf("rank %d scratch %d, schedule %d", r, st.ScratchBlocks, whole.ScratchBlocks)
		}
		mem += rp.MemBytes()
	}
	if msgs != whole.Messages || copies != whole.Copies || wire != whole.WireBlocks {
		t.Errorf("slice sums (msgs %d, copies %d, wire %d) != schedule stats (%d, %d, %d)",
			msgs, copies, wire, whole.Messages, whole.Copies, whole.WireBlocks)
	}
	if mem <= s.MemBytes()/2 || s.MemBytes() <= 0 {
		t.Errorf("memory estimates inconsistent: slices %d B, schedule %d B", mem, s.MemBytes())
	}
}

// TestGenerateRankAt4096: every generator compiles and locally verifies
// single-rank slices of a 4096-rank world in O(slice) — worlds whose
// assembled schedules (hundreds of MB to tens of GB) were previously
// unconstructible. Ring's slice alone is 8.4M steps, so it is compiled
// but not symbolically walked here.
func TestGenerateRankAt4096(t *testing.T) {
	t.Parallel()
	const p = 4096
	for _, name := range []string{"direct", "pairwise", "bruck", "hypercube", "torus"} {
		for _, r := range []int{0, 1, p / 2, p - 1} {
			rp, err := GenerateRank(name, p, r, nil)
			if err != nil {
				t.Fatalf("%s rank %d: %v", name, r, err)
			}
			if err := VerifyRank(rp); err != nil {
				t.Fatalf("%s rank %d: %v", name, r, err)
			}
			if rp.Ranks != p || rp.Rank != r {
				t.Fatalf("%s rank %d: program says rank %d of %d", name, r, rp.Rank, rp.Ranks)
			}
		}
	}
	rp, err := GenerateRank("ring", p, p/2, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The shortest-path ring moves sum(dist) = p^2/4 blocks through every
	// rank: the slice must carry exactly that much traffic.
	if st := rp.Stats(); st.WireBlocks != p*p/4 {
		t.Errorf("ring rank %d wire blocks = %d, want %d", p/2, st.WireBlocks, p*p/4)
	}
}

// TestStreamVerifyLargeWorld streams a full 4096-rank world through the
// incremental verifier — O(p) memory where the full verifier would need
// O(p^2) state per rank. ~15 s of work, so -short skips it.
func TestStreamVerifyLargeWorld(t *testing.T) {
	if testing.Short() {
		t.Skip("4096-rank streamed verification (~15 s) skipped in -short mode")
	}
	t.Parallel()
	if err := VerifyWorldSliced("pairwise", 4096, nil); err != nil {
		t.Fatalf("pairwise at 4096 ranks: %v", err)
	}
	if err := VerifyWorldSliced("hypercube", 1024, nil); err != nil {
		t.Fatalf("hypercube at 1024 ranks: %v", err)
	}
}

// TestRankExecCorrectness runs executors built from GenerateRank programs
// (never touching an assembled schedule) on the live runtime and checks
// every byte lands per MPI_Alltoall.
func TestRankExecCorrectness(t *testing.T) {
	t.Parallel()
	for _, name := range Generators() {
		shapes := []int{2, 5, 9}
		if name == "hypercube" {
			shapes = []int{2, 8}
		}
		for _, p := range shapes {
			name, p := name, p
			t.Run(fmt.Sprintf("%s/p%d", name, p), func(t *testing.T) {
				t.Parallel()
				const block = 3
				err := runtime.Run(runtime.Config{Ranks: p}, func(c comm.Comm) error {
					rp, err := GenerateRank(name, p, c.Rank(), nil)
					if err != nil {
						return err
					}
					if err := VerifyRank(rp); err != nil {
						return err
					}
					ex := NewRankExec(rp)
					send := comm.Alloc(p * block)
					recv := comm.Alloc(p * block)
					testutil.FillAlltoall(send, c.Rank(), p, block)
					for iter := 0; iter < 2; iter++ {
						if err := ex.Run(c, send, recv, block, nil); err != nil {
							return fmt.Errorf("iter %d: %w", iter, err)
						}
						if err := testutil.CheckAlltoall(recv, c.Rank(), p, block); err != nil {
							return fmt.Errorf("iter %d: %w", iter, err)
						}
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestRankExecRankMismatch: an executor built for one rank refuses to run
// as another (or on the wrong world size), erroring before any
// communication.
func TestRankExecRankMismatch(t *testing.T) {
	t.Parallel()
	err := runtime.Run(runtime.Config{Ranks: 2}, func(c comm.Comm) error {
		// Every rank is handed the *other* rank's program: both must
		// refuse locally, so no one blocks in a half-posted exchange.
		rp, err := GenerateRank("pairwise", 2, 1-c.Rank(), nil)
		if err != nil {
			return err
		}
		ex := NewRankExec(rp)
		if e := ex.Run(c, comm.Alloc(8), comm.Alloc(8), 4, nil); e == nil {
			return fmt.Errorf("rank %d ran rank %d's program", c.Rank(), 1-c.Rank())
		}
		// World-size mismatch is also refused up front.
		big, err := GenerateRank("pairwise", 4, c.Rank(), nil)
		if err != nil {
			return err
		}
		if e := NewRankExec(big).Run(c, comm.Alloc(16), comm.Alloc(16), 4, nil); e == nil {
			return fmt.Errorf("4-rank program ran on a 2-rank communicator")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
