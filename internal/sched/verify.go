package sched

import (
	"errors"
	"fmt"
	"math/bits"
)

// Verify statically proves a schedule implements its collective's
// semantics before it ever runs. It checks, in order:
//
//   - structure: positive rank count, a step list per rank per round,
//     positive scratch sizes, known step kinds, peers in range, buffer
//     references in range (per-rank ranges for alltoallv), no writes
//     into the user send buffer, a well-formed header (Counts present
//     exactly for alltoallv, an operator label exactly for reductions);
//   - round pairing: every send is matched by a receive of the same
//     length within its round, at most one message per ordered rank pair
//     per round (so per-round tags are unambiguous) — deadlock-freedom
//     under the round discipline;
//   - data races the executor's ordering cannot tolerate: no copy, send
//     or reduce reads data received in the same round (received data
//     lands at the round's wait), no two same-round writes to one slot,
//     no copy or reduce overwriting a buffer an earlier send of the
//     round is transmitting;
//   - dataflow, by symbolic execution. For the routing collectives
//     (alltoall, alltoallv) every slot tracks which (src, dst) block it
//     holds, proving each recv slot is written exactly once and finally
//     holds exactly its block — exactly-count-per-pair delivery (the
//     count is 1 for alltoall, Counts[s][d] for alltoallv). For the
//     reduction collectives every slot tracks a partial: which result
//     block it contributes to and the set of ranks whose contributions
//     it contains. A Reduce step must combine partials of the same
//     block with disjoint contributor sets (rejecting wrong-block and
//     double-contribution corruption, and Step.Op must equal
//     Schedule.Op), and a recv slot must be written exactly once with a
//     complete partial — every rank's contribution entering exactly
//     once.
//
// The proof is per-schedule, not per-run: a verified schedule is correct
// for every block size on every substrate (and, for reductions, every
// associative commutative operator).
func Verify(s *Schedule) error {
	if s == nil {
		return errors.New("sched: nil schedule")
	}
	p := s.Ranks
	if p <= 0 {
		return fmt.Errorf("sched: invalid rank count %d", p)
	}
	if len(s.Rounds) == 0 {
		return errors.New("sched: schedule has no rounds (even the trivial schedule needs the self-block copy)")
	}
	for i, sz := range s.Scratch {
		if sz <= 0 {
			return fmt.Errorf("sched: scratch space %d has non-positive size %d", i, sz)
		}
	}
	if err := checkHeader(s.Collective(), s.Op, s.Counts, p); err != nil {
		return err
	}

	v := newVerifier(s)
	for ri := range s.Rounds {
		if err := v.round(ri); err != nil {
			return err
		}
	}
	return v.final()
}

// checkHeader validates the collective-describing header fields shared
// by Schedule (Counts as the full matrix) and RankProgram (counts nil;
// the slice's VSend/VRecv are checked by the stream verifier).
func checkHeader(coll Coll, op string, counts [][]int, p int) error {
	if !coll.valid() {
		return fmt.Errorf("sched: unknown collective %q", coll)
	}
	if coll.reduction() != (op != "") {
		if op == "" {
			return fmt.Errorf("sched: %s schedule must declare its operator label", coll)
		}
		return fmt.Errorf("sched: operator label %q on a non-reduction %s schedule", op, coll)
	}
	if (coll == CollAlltoallv) != (counts != nil) {
		if counts == nil {
			return errors.New("sched: alltoallv schedule must declare its per-pair counts")
		}
		return fmt.Errorf("sched: per-pair counts on a non-alltoallv %s schedule", coll)
	}
	if counts != nil {
		if len(counts) != p {
			return fmt.Errorf("sched: counts matrix has %d rows, want %d", len(counts), p)
		}
		for src, row := range counts {
			if len(row) != p {
				return fmt.Errorf("sched: counts row %d has %d entries, want %d", src, len(row), p)
			}
			for dst, n := range row {
				if n < 0 {
					return fmt.Errorf("sched: negative count %d for pair %d->%d", n, src, dst)
				}
			}
		}
	}
	return nil
}

// undef marks a slot holding no value.
const undef int64 = -1

// partial is the symbolic value of one slot of a reduction schedule: a
// sum over some contributor set for one result block.
type partial struct {
	blk  int
	mask []uint64
}

// verifier is the symbolic machine: one slot array per rank covering all
// buffer spaces. Slot values are block ids for the routing collectives
// and indices into the partials table for the reductions.
type verifier struct {
	s         *Schedule
	p         int
	coll      Coll
	reduction bool
	// Per-rank space layout: send is [0, sendSize[r]), recv follows, then
	// the scratch spaces (scratchOff are offsets past send+recv).
	sendSize, recvSize []int
	scratchOff         []int
	scratchTot         int
	// expect[r][off] is the block id a routing collective must deliver
	// into recv slot off of rank r.
	expect [][]int64
	state  [][]int64
	// recvWritten counts writes into the recv space (per rank, per slot):
	// each must end at exactly 1.
	recvWritten [][]uint8
	// stamp arrays mark per-round slot roles without reallocation: a slot
	// is marked for round ri when the entry equals ri+1.
	recvStamp [][]int32 // slot is written by a receive this round
	readStamp [][]int32 // slot is read by an already-issued send this round
	// parts is the reduction partials table; maskWords its bitset width.
	parts     []partial
	maskWords int
}

func newVerifier(s *Schedule) *verifier {
	p := s.Ranks
	v := &verifier{s: s, p: p, coll: s.Collective(), reduction: s.Collective().reduction()}
	v.scratchOff = make([]int, len(s.Scratch))
	for i, sz := range s.Scratch {
		v.scratchOff[i] = v.scratchTot
		v.scratchTot += sz
	}
	v.sendSize = make([]int, p)
	v.recvSize = make([]int, p)
	for r := 0; r < p; r++ {
		v.sendSize[r] = s.SpaceSizeRank(r, SpaceSend)
		v.recvSize[r] = s.SpaceSizeRank(r, SpaceRecv)
	}
	v.state = make([][]int64, p)
	v.recvWritten = make([][]uint8, p)
	v.recvStamp = make([][]int32, p)
	v.readStamp = make([][]int32, p)
	v.maskWords = (p + 63) / 64

	// Routing seeds are global block ids; for alltoallv they index the
	// row-packed concatenation of all count rows, so the expected recv
	// content of slot colOff[r][s]+j is the id of the j-th block of the
	// s->r message.
	var rowBase []int64
	if v.coll == CollAlltoallv {
		rowBase = make([]int64, p+1)
		for r := 0; r < p; r++ {
			rowBase[r+1] = rowBase[r] + int64(v.sendSize[r])
		}
		v.expect = make([][]int64, p)
		for r := 0; r < p; r++ {
			v.expect[r] = make([]int64, 0, v.recvSize[r])
			for src := 0; src < p; src++ {
				off := int64(0)
				for d := 0; d < r; d++ {
					off += int64(s.Counts[src][d])
				}
				for j := 0; j < s.Counts[src][r]; j++ {
					v.expect[r] = append(v.expect[r], rowBase[src]+off+int64(j))
				}
			}
		}
	}

	for r := 0; r < p; r++ {
		slots := v.sendSize[r] + v.recvSize[r] + v.scratchTot
		st := make([]int64, slots)
		for i := range st {
			st[i] = undef
		}
		for b := 0; b < v.sendSize[r]; b++ {
			switch {
			case v.reduction:
				st[b] = int64(len(v.parts))
				mask := make([]uint64, v.maskWords)
				mask[r/64] |= 1 << (r % 64)
				v.parts = append(v.parts, partial{blk: b, mask: mask})
			case v.coll == CollAlltoallv:
				st[b] = rowBase[r] + int64(b)
			default:
				st[b] = int64(r)*int64(v.p) + int64(b)
			}
		}
		v.state[r] = st
		v.recvWritten[r] = make([]uint8, v.recvSize[r])
		v.recvStamp[r] = make([]int32, slots)
		v.readStamp[r] = make([]int32, slots)
	}
	return v
}

// checkRef validates a buffer reference against rank's space layout and
// returns its first slot index.
func (v *verifier) checkRef(rank int, ref Ref, where string) (int, error) {
	var size, base int
	switch {
	case ref.Buf == SpaceSend:
		size, base = v.sendSize[rank], 0
	case ref.Buf == SpaceRecv:
		size, base = v.recvSize[rank], v.sendSize[rank]
	case ref.Buf >= SpaceScratch && ref.Buf < SpaceScratch+len(v.s.Scratch):
		size = v.s.Scratch[ref.Buf-SpaceScratch]
		base = v.sendSize[rank] + v.recvSize[rank] + v.scratchOff[ref.Buf-SpaceScratch]
	default:
		return 0, fmt.Errorf("%s: unknown buffer space %d", where, ref.Buf)
	}
	if ref.N <= 0 {
		return 0, fmt.Errorf("%s: non-positive length %d", where, ref.N)
	}
	if ref.Off < 0 || ref.Off+ref.N > size {
		return 0, fmt.Errorf("%s: range %d+%d out of space %d (%d blocks)", where, ref.Off, ref.N, ref.Buf, size)
	}
	return base + ref.Off, nil
}

// recvSlotBase returns the slot index of rank's recv space.
func (v *verifier) recvSlotBase(rank int) int { return v.sendSize[rank] }

// pairKey identifies a directed message within one round.
type pairKey struct{ from, to int }

// pendingRecv is a posted receive awaiting its round's delivery.
type pendingRecv struct {
	rank int
	slot int
	n    int
}

// round verifies and symbolically executes round ri.
func (v *verifier) round(ri int) error {
	rd := v.s.Rounds[ri]
	if len(rd.Steps) != v.p {
		return fmt.Errorf("sched: round %d has %d step lists, want one per rank (%d)", ri, len(rd.Steps), v.p)
	}
	stamp := int32(ri + 1)
	sends := make(map[pairKey][]int64)
	recvs := make(map[pairKey]pendingRecv)

	// Pass 1: collect receive-written slots (their data lands at the
	// round's wait, so same-round reads and overlapping writes are races).
	for r := 0; r < v.p; r++ {
		for si, step := range rd.Steps[r] {
			if step.Kind != Recv && step.Kind != SendRecv {
				continue
			}
			where := fmt.Sprintf("sched: round %d rank %d step %d (%s) dst", ri, r, si, step.Kind)
			slot, err := v.checkRef(r, step.Dst, where)
			if err != nil {
				return err
			}
			if step.Dst.Buf == SpaceSend {
				return fmt.Errorf("%s: schedules must not write the user send buffer", where)
			}
			if step.From < 0 || step.From >= v.p || step.From == r {
				return fmt.Errorf("sched: round %d rank %d step %d: receive source %d out of range", ri, r, si, step.From)
			}
			key := pairKey{step.From, r}
			if _, dup := recvs[key]; dup {
				return fmt.Errorf("sched: round %d: two receives from %d at %d (per-round tags would be ambiguous)", ri, step.From, r)
			}
			recvs[key] = pendingRecv{rank: r, slot: slot, n: step.Dst.N}
			for k := 0; k < step.Dst.N; k++ {
				if v.recvStamp[r][slot+k] == stamp {
					return fmt.Errorf("sched: round %d rank %d: two receives write slot %d in one round", ri, r, slot+k)
				}
				v.recvStamp[r][slot+k] = stamp
			}
		}
	}

	// Pass 2: walk copies, reduces and sends in step order per rank,
	// maintaining the symbolic state; snapshot send payloads at issue
	// position.
	for r := 0; r < v.p; r++ {
		for si, step := range rd.Steps[r] {
			where := fmt.Sprintf("sched: round %d rank %d step %d (%s)", ri, r, si, step.Kind)
			switch step.Kind {
			case Copy, Reduce:
				src, err := v.checkRef(r, step.Src, where+" src")
				if err != nil {
					return err
				}
				dst, err := v.checkRef(r, step.Dst, where+" dst")
				if err != nil {
					return err
				}
				if step.Src.N != step.Dst.N {
					return fmt.Errorf("%s: length mismatch src %d, dst %d", where, step.Src.N, step.Dst.N)
				}
				if step.Dst.Buf == SpaceSend {
					return fmt.Errorf("%s: schedules must not write the user send buffer", where)
				}
				// Overlapping ranges are rejected outright: the symbolic
				// slot-by-slot model below and the executor's memmove
				// semantics (comm.CopyData) disagree on them, so a schedule
				// relying on overlap would verify against behavior the
				// executor does not have. (For Reduce, overlap would also
				// mean combining a partial into itself.)
				if step.Src.Buf == step.Dst.Buf && step.Src.Off < step.Dst.Off+step.Dst.N && step.Dst.Off < step.Src.Off+step.Src.N {
					return fmt.Errorf("%s: src %v and dst %v overlap", where, step.Src, step.Dst)
				}
				if step.Kind == Reduce {
					if !v.reduction {
						return fmt.Errorf("%s: reduce step in a %s schedule", where, v.coll)
					}
					if step.Op != v.s.Op {
						return fmt.Errorf("%s: operator %q does not match the schedule's %q", where, step.Op, v.s.Op)
					}
				}
				for k := 0; k < step.Src.N; k++ {
					if v.recvStamp[r][src+k] == stamp {
						return fmt.Errorf("%s: reads slot %d received in the same round (received data is only available in later rounds)", where, src+k)
					}
					if v.recvStamp[r][dst+k] == stamp {
						return fmt.Errorf("%s: writes slot %d a same-round receive also writes", where, dst+k)
					}
					if v.readStamp[r][dst+k] == stamp {
						return fmt.Errorf("%s: overwrites slot %d an earlier send of the round is transmitting", where, dst+k)
					}
					val := v.state[r][src+k]
					if val == undef {
						return fmt.Errorf("%s: reads undefined data at slot %d", where, src+k)
					}
					if step.Kind == Reduce {
						if val, err = v.combine(r, dst+k, val, where); err != nil {
							return err
						}
					}
					if err := v.write(r, dst+k, val, where); err != nil {
						return err
					}
				}
			case Send, SendRecv:
				src, err := v.checkRef(r, step.Src, where+" src")
				if err != nil {
					return err
				}
				if step.To < 0 || step.To >= v.p || step.To == r {
					return fmt.Errorf("%s: send destination %d out of range", where, step.To)
				}
				key := pairKey{r, step.To}
				if _, dup := sends[key]; dup {
					return fmt.Errorf("sched: round %d: two sends from %d to %d (per-round tags would be ambiguous)", ri, r, step.To)
				}
				payload := make([]int64, step.Src.N)
				for k := 0; k < step.Src.N; k++ {
					if v.recvStamp[r][src+k] == stamp {
						return fmt.Errorf("%s: sends slot %d received in the same round", where, src+k)
					}
					val := v.state[r][src+k]
					if val == undef {
						return fmt.Errorf("%s: sends undefined data at slot %d", where, src+k)
					}
					payload[k] = val
					v.readStamp[r][src+k] = stamp
				}
				sends[key] = payload
			case Recv:
				// Posted in pass 1.
			default:
				return fmt.Errorf("%s: unknown step kind %q", where, step.Kind)
			}
		}
	}

	// Pairing: the send and receive multisets must match exactly.
	for key, payload := range sends {
		rv, ok := recvs[key]
		if !ok {
			return fmt.Errorf("sched: round %d: unmatched send %d->%d (no receive posted — the round discipline would deadlock)", ri, key.from, key.to)
		}
		if rv.n != len(payload) {
			return fmt.Errorf("sched: round %d: message %d->%d sends %d blocks but the receive expects %d", ri, key.from, key.to, len(payload), rv.n)
		}
	}
	for key := range recvs {
		if _, ok := sends[key]; !ok {
			return fmt.Errorf("sched: round %d: unmatched receive at %d from %d (no send posted — the round discipline would deadlock)", ri, key.to, key.from)
		}
	}

	// Deliver: receive payloads land at the round's wait.
	for key, rv := range recvs {
		payload := sends[key]
		where := fmt.Sprintf("sched: round %d message %d->%d", ri, key.from, key.to)
		for k, val := range payload {
			if err := v.write(rv.rank, rv.slot+k, val, where); err != nil {
				return err
			}
		}
	}
	return nil
}

// combine forms the partial a Reduce step leaves at the destination slot:
// both operands must be partials of the same result block with disjoint
// contributor sets (a shared contributor would enter the sum twice).
func (v *verifier) combine(rank, dstSlot int, srcVal int64, where string) (int64, error) {
	dstVal := v.state[rank][dstSlot]
	if dstVal == undef {
		return 0, fmt.Errorf("%s: reduces into undefined data at slot %d", where, dstSlot)
	}
	sp, dp := v.parts[srcVal], v.parts[dstVal]
	if sp.blk != dp.blk {
		return 0, fmt.Errorf("%s: reduces a partial of block %d into a partial of block %d", where, sp.blk, dp.blk)
	}
	mask := make([]uint64, v.maskWords)
	for w := range mask {
		if sp.mask[w]&dp.mask[w] != 0 {
			shared := bits.TrailingZeros64(sp.mask[w] & dp.mask[w])
			return 0, fmt.Errorf("%s: contribution of rank %d to block %d would enter twice (double contribution)", where, w*64+shared, sp.blk)
		}
		mask[w] = sp.mask[w] | dp.mask[w]
	}
	v.parts = append(v.parts, partial{blk: sp.blk, mask: mask})
	return int64(len(v.parts) - 1), nil
}

// write updates a slot, enforcing the exactly-once discipline and the
// final-content contract on the recv space.
func (v *verifier) write(rank, slot int, val int64, where string) error {
	if rb := v.recvSlotBase(rank); slot >= rb && slot < rb+v.recvSize[rank] {
		d := slot - rb
		v.recvWritten[rank][d]++
		if v.recvWritten[rank][d] > 1 {
			return fmt.Errorf("%s: recv block %d of rank %d written more than once (block delivered twice)", where, d, rank)
		}
		if v.reduction {
			pt := v.parts[val]
			want := rank // reduce-scatter: the single recv block is this rank's result
			if v.coll == CollAllreduce {
				want = d
			}
			if pt.blk != want {
				return fmt.Errorf("%s: recv block %d of rank %d receives the result of block %d, want %d", where, d, rank, pt.blk, want)
			}
			for w, m := range pt.mask {
				ranksHere := v.p - w*64
				full := ^uint64(0)
				if ranksHere < 64 {
					full = uint64(1)<<ranksHere - 1
				}
				if m != full {
					missing := bits.TrailingZeros64(^m & full)
					return fmt.Errorf("%s: recv block %d of rank %d misses the contribution of rank %d (incomplete reduction)", where, d, rank, w*64+missing)
				}
			}
		} else if want := v.expectGid(rank, d); val != want {
			if v.coll == CollAlltoall {
				return fmt.Errorf("%s: recv block %d of rank %d receives block (%d->%d), want (%d->%d)",
					where, d, rank, val/int64(v.p), val%int64(v.p), d, rank)
			}
			return fmt.Errorf("%s: recv block %d of rank %d receives block id %d, want %d", where, d, rank, val, want)
		}
	}
	v.state[rank][slot] = val
	return nil
}

// expectGid is the block id a routing collective must deliver into recv
// slot off of rank r.
func (v *verifier) expectGid(rank, off int) int64 {
	if v.coll == CollAlltoallv {
		return v.expect[rank][off]
	}
	return int64(off)*int64(v.p) + int64(rank)
}

// final checks the post-state: every recv slot written exactly once (the
// correct content was already enforced at write time).
func (v *verifier) final() error {
	for r := 0; r < v.p; r++ {
		for d := 0; d < v.recvSize[r]; d++ {
			if v.recvWritten[r][d] != 1 {
				switch {
				case v.reduction:
					return fmt.Errorf("sched: result block %d of rank %d never produced", d, r)
				case v.coll == CollAlltoall:
					return fmt.Errorf("sched: block (%d->%d) never delivered", d, r)
				default:
					return fmt.Errorf("sched: recv block %d of rank %d never delivered", d, r)
				}
			}
		}
	}
	return nil
}
