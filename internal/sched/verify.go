package sched

import "fmt"

// Verify statically proves a schedule implements MPI_Alltoall semantics
// before it ever runs. It checks, in order:
//
//   - structure: positive rank count, a step list per rank per round,
//     positive scratch sizes, known step kinds, peers in range, buffer
//     references in range, no writes into the user send buffer;
//   - round pairing: every send is matched by a receive of the same
//     length within its round, at most one message per ordered rank pair
//     per round (so per-round tags are unambiguous) — deadlock-freedom
//     under the round discipline;
//   - data races the executor's ordering cannot tolerate: no copy or
//     send reads data received in the same round (received data lands at
//     the round's wait), no two same-round writes to one slot, no copy
//     overwriting a buffer an earlier send of the round is transmitting;
//   - dataflow: a symbolic execution tracking which (src, dst) block
//     every slot holds proves that each recv-buffer slot is written
//     exactly once and finally holds exactly its block — every block
//     delivered exactly once, none duplicated, none lost.
//
// The proof is per-schedule, not per-run: a verified schedule is correct
// for every block size on every substrate.
func Verify(s *Schedule) error {
	if s == nil {
		return fmt.Errorf("sched: nil schedule")
	}
	p := s.Ranks
	if p <= 0 {
		return fmt.Errorf("sched: invalid rank count %d", p)
	}
	if len(s.Rounds) == 0 {
		return fmt.Errorf("sched: schedule has no rounds (even the trivial schedule needs the self-block copy)")
	}
	for i, sz := range s.Scratch {
		if sz <= 0 {
			return fmt.Errorf("sched: scratch space %d has non-positive size %d", i, sz)
		}
	}

	v := newVerifier(s)
	for ri := range s.Rounds {
		if err := v.round(ri); err != nil {
			return err
		}
	}
	return v.final()
}

// undef marks a slot holding no block.
const undef int32 = -1

// verifier is the symbolic machine: one slot array per rank covering all
// buffer spaces, holding block ids (src*p + dst) or undef.
type verifier struct {
	s     *Schedule
	p     int
	base  []int // slot offset of each space
	slots int   // slots per rank
	state [][]int32
	// recvWritten counts writes into the recv space (per rank, per slot):
	// each must end at exactly 1.
	recvWritten [][]uint8
	// stamp arrays mark per-round slot roles without reallocation: a slot
	// is marked for round ri when the entry equals ri+1.
	recvStamp [][]int32 // slot is written by a receive this round
	readStamp [][]int32 // slot is read by an already-issued send this round
}

func newVerifier(s *Schedule) *verifier {
	p := s.Ranks
	base := make([]int, 2+len(s.Scratch))
	base[SpaceSend] = 0
	base[SpaceRecv] = p
	off := 2 * p
	for i, sz := range s.Scratch {
		base[SpaceScratch+i] = off
		off += sz
	}
	v := &verifier{s: s, p: p, base: base, slots: off}
	v.state = make([][]int32, p)
	v.recvWritten = make([][]uint8, p)
	v.recvStamp = make([][]int32, p)
	v.readStamp = make([][]int32, p)
	for r := 0; r < p; r++ {
		st := make([]int32, off)
		for i := range st {
			st[i] = undef
		}
		for d := 0; d < p; d++ {
			st[base[SpaceSend]+d] = int32(r*p + d)
		}
		v.state[r] = st
		v.recvWritten[r] = make([]uint8, p)
		v.recvStamp[r] = make([]int32, off)
		v.readStamp[r] = make([]int32, off)
	}
	return v
}

// checkRef validates a buffer reference and returns its first slot index.
func (v *verifier) checkRef(ref Ref, where string) (int, error) {
	size := v.s.SpaceSize(ref.Buf)
	if size < 0 {
		return 0, fmt.Errorf("%s: unknown buffer space %d", where, ref.Buf)
	}
	if ref.N <= 0 {
		return 0, fmt.Errorf("%s: non-positive length %d", where, ref.N)
	}
	if ref.Off < 0 || ref.Off+ref.N > size {
		return 0, fmt.Errorf("%s: range %d+%d out of space %d (%d blocks)", where, ref.Off, ref.N, ref.Buf, size)
	}
	return v.base[ref.Buf] + ref.Off, nil
}

// pairKey identifies a directed message within one round.
type pairKey struct{ from, to int }

// pendingRecv is a posted receive awaiting its round's delivery.
type pendingRecv struct {
	rank int
	slot int
	n    int
}

// round verifies and symbolically executes round ri.
func (v *verifier) round(ri int) error {
	rd := v.s.Rounds[ri]
	if len(rd.Steps) != v.p {
		return fmt.Errorf("sched: round %d has %d step lists, want one per rank (%d)", ri, len(rd.Steps), v.p)
	}
	stamp := int32(ri + 1)
	sends := make(map[pairKey][]int32)
	recvs := make(map[pairKey]pendingRecv)

	// Pass 1: collect receive-written slots (their data lands at the
	// round's wait, so same-round reads and overlapping writes are races).
	for r := 0; r < v.p; r++ {
		for si, step := range rd.Steps[r] {
			if step.Kind != Recv && step.Kind != SendRecv {
				continue
			}
			where := fmt.Sprintf("sched: round %d rank %d step %d (%s) dst", ri, r, si, step.Kind)
			slot, err := v.checkRef(step.Dst, where)
			if err != nil {
				return err
			}
			if step.Dst.Buf == SpaceSend {
				return fmt.Errorf("%s: schedules must not write the user send buffer", where)
			}
			if step.From < 0 || step.From >= v.p || step.From == r {
				return fmt.Errorf("sched: round %d rank %d step %d: receive source %d out of range", ri, r, si, step.From)
			}
			key := pairKey{step.From, r}
			if _, dup := recvs[key]; dup {
				return fmt.Errorf("sched: round %d: two receives from %d at %d (per-round tags would be ambiguous)", ri, step.From, r)
			}
			recvs[key] = pendingRecv{rank: r, slot: slot, n: step.Dst.N}
			for k := 0; k < step.Dst.N; k++ {
				if v.recvStamp[r][slot+k] == stamp {
					return fmt.Errorf("sched: round %d rank %d: two receives write slot %d in one round", ri, r, slot+k)
				}
				v.recvStamp[r][slot+k] = stamp
			}
		}
	}

	// Pass 2: walk copies and sends in step order per rank, maintaining
	// the symbolic state; snapshot send payloads at issue position.
	for r := 0; r < v.p; r++ {
		for si, step := range rd.Steps[r] {
			where := fmt.Sprintf("sched: round %d rank %d step %d (%s)", ri, r, si, step.Kind)
			switch step.Kind {
			case Copy:
				src, err := v.checkRef(step.Src, where+" src")
				if err != nil {
					return err
				}
				dst, err := v.checkRef(step.Dst, where+" dst")
				if err != nil {
					return err
				}
				if step.Src.N != step.Dst.N {
					return fmt.Errorf("%s: length mismatch src %d, dst %d", where, step.Src.N, step.Dst.N)
				}
				if step.Dst.Buf == SpaceSend {
					return fmt.Errorf("%s: schedules must not write the user send buffer", where)
				}
				// Overlapping ranges are rejected outright: the symbolic
				// slot-by-slot model below and the executor's memmove
				// semantics (comm.CopyData) disagree on them, so a schedule
				// relying on overlap would verify against behavior the
				// executor does not have.
				if step.Src.Buf == step.Dst.Buf && step.Src.Off < step.Dst.Off+step.Dst.N && step.Dst.Off < step.Src.Off+step.Src.N {
					return fmt.Errorf("%s: src %v and dst %v overlap", where, step.Src, step.Dst)
				}
				for k := 0; k < step.Src.N; k++ {
					if v.recvStamp[r][src+k] == stamp {
						return fmt.Errorf("%s: reads slot %d received in the same round (received data is only available in later rounds)", where, src+k)
					}
					if v.recvStamp[r][dst+k] == stamp {
						return fmt.Errorf("%s: writes slot %d a same-round receive also writes", where, dst+k)
					}
					if v.readStamp[r][dst+k] == stamp {
						return fmt.Errorf("%s: overwrites slot %d an earlier send of the round is transmitting", where, dst+k)
					}
					val := v.state[r][src+k]
					if val == undef {
						return fmt.Errorf("%s: reads undefined data at slot %d", where, src+k)
					}
					if err := v.write(r, dst+k, val, where); err != nil {
						return err
					}
				}
			case Send, SendRecv:
				src, err := v.checkRef(step.Src, where+" src")
				if err != nil {
					return err
				}
				if step.To < 0 || step.To >= v.p || step.To == r {
					return fmt.Errorf("%s: send destination %d out of range", where, step.To)
				}
				key := pairKey{r, step.To}
				if _, dup := sends[key]; dup {
					return fmt.Errorf("sched: round %d: two sends from %d to %d (per-round tags would be ambiguous)", ri, r, step.To)
				}
				payload := make([]int32, step.Src.N)
				for k := 0; k < step.Src.N; k++ {
					if v.recvStamp[r][src+k] == stamp {
						return fmt.Errorf("%s: sends slot %d received in the same round", where, src+k)
					}
					val := v.state[r][src+k]
					if val == undef {
						return fmt.Errorf("%s: sends undefined data at slot %d", where, src+k)
					}
					payload[k] = val
					v.readStamp[r][src+k] = stamp
				}
				sends[key] = payload
			case Recv:
				// Posted in pass 1.
			case Reduce:
				return fmt.Errorf("%s: reduce steps are reserved for future reduction schedules", where)
			default:
				return fmt.Errorf("%s: unknown step kind %q", where, step.Kind)
			}
		}
	}

	// Pairing: the send and receive multisets must match exactly.
	for key, payload := range sends {
		rv, ok := recvs[key]
		if !ok {
			return fmt.Errorf("sched: round %d: unmatched send %d->%d (no receive posted — the round discipline would deadlock)", ri, key.from, key.to)
		}
		if rv.n != len(payload) {
			return fmt.Errorf("sched: round %d: message %d->%d sends %d blocks but the receive expects %d", ri, key.from, key.to, len(payload), rv.n)
		}
	}
	for key := range recvs {
		if _, ok := sends[key]; !ok {
			return fmt.Errorf("sched: round %d: unmatched receive at %d from %d (no send posted — the round discipline would deadlock)", ri, key.to, key.from)
		}
	}

	// Deliver: receive payloads land at the round's wait.
	for key, rv := range recvs {
		payload := sends[key]
		where := fmt.Sprintf("sched: round %d message %d->%d", ri, key.from, key.to)
		for k, val := range payload {
			if err := v.write(rv.rank, rv.slot+k, val, where); err != nil {
				return err
			}
		}
	}
	return nil
}

// write updates a slot, enforcing the exactly-once discipline on the recv
// space.
func (v *verifier) write(rank, slot int, val int32, where string) error {
	if rb := v.base[SpaceRecv]; slot >= rb && slot < rb+v.p {
		d := slot - rb
		v.recvWritten[rank][d]++
		if v.recvWritten[rank][d] > 1 {
			return fmt.Errorf("%s: recv block %d of rank %d written more than once (block delivered twice)", where, d, rank)
		}
		if want := int32(d*v.p + rank); val != want {
			return fmt.Errorf("%s: recv block %d of rank %d receives block (%d->%d), want (%d->%d)",
				where, d, rank, int(val)/v.p, int(val)%v.p, d, rank)
		}
	}
	v.state[rank][slot] = val
	return nil
}

// final checks the post-state: every recv slot written exactly once (the
// correct content was already enforced at write time).
func (v *verifier) final() error {
	for r := 0; r < v.p; r++ {
		for s := 0; s < v.p; s++ {
			if v.recvWritten[r][s] != 1 {
				return fmt.Errorf("sched: block (%d->%d) never delivered", s, r)
			}
		}
	}
	return nil
}
