package sched

import (
	"strings"
	"testing"
)

// mustGen generates and returns a schedule or fails the test.
func mustGen(t *testing.T, name string, p int) *Schedule {
	t.Helper()
	s, err := Generate(name, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestVerifyRejectsCorruption corrupts a verified schedule in every way
// the verifier claims to catch and checks each is rejected with a
// diagnostic mentioning the failure.
func TestVerifyRejectsCorruption(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name    string
		corrupt func(s *Schedule)
		wantErr string
	}{
		{
			name: "dropped step",
			corrupt: func(s *Schedule) {
				// Remove rank 2's exchange in round 3: its partners' send
				// and receive both lose their match.
				s.Rounds[3].Steps[2] = nil
			},
			wantErr: "unmatched",
		},
		{
			name: "unpaired send",
			corrupt: func(s *Schedule) {
				s.Rounds[1].Steps[0] = append(s.Rounds[1].Steps[0],
					Step{Kind: Send, To: 3, Src: sendRef(3, 1)})
			},
			wantErr: "unmatched send",
		},
		{
			name: "unpaired recv",
			corrupt: func(s *Schedule) {
				s.Rounds[1].Steps[0] = append(s.Rounds[1].Steps[0],
					Step{Kind: Recv, From: 3, Dst: recvRef(3, 1)})
			},
			wantErr: "unmatched receive",
		},
		{
			name: "duplicated block delivery",
			corrupt: func(s *Schedule) {
				// An extra matched exchange in round 2 delivering block
				// (0->3) early: correct content, but round 3's regular
				// pairwise delivery then lands it a second time.
				rd := &s.Rounds[2]
				rd.Steps[0] = append(rd.Steps[0], Step{Kind: Send, To: 3, Src: sendRef(3, 1)})
				rd.Steps[3] = append(rd.Steps[3], Step{Kind: Recv, From: 0, Dst: recvRef(0, 1)})
			},
			wantErr: "more than once",
		},
		{
			name: "misrouted block",
			corrupt: func(s *Schedule) {
				// Point round 1's receive at the wrong recv slot: the slot
				// gets a block from the wrong source.
				st := &s.Rounds[1].Steps[0]
				for i := range *st {
					if (*st)[i].Kind == SendRecv {
						(*st)[i].Dst.Off = ((*st)[i].Dst.Off + 1) % s.Ranks
					}
				}
			},
			wantErr: "",
		},
		{
			name: "offset out of range",
			corrupt: func(s *Schedule) {
				s.Rounds[1].Steps[0][0].Src.Off = s.Ranks
			},
			wantErr: "out of space",
		},
		{
			name: "length mismatch across the wire",
			corrupt: func(s *Schedule) {
				s.Rounds[1].Steps[0][0].Src.N = 2
			},
			wantErr: "",
		},
		{
			name: "write into the user send buffer",
			corrupt: func(s *Schedule) {
				s.Rounds[0].Steps[0][0].Dst = sendRef(0, 1)
			},
			wantErr: "send buffer",
		},
		{
			name: "unknown step kind",
			corrupt: func(s *Schedule) {
				s.Rounds[0].Steps[0][0].Kind = Kind("warp")
			},
			wantErr: "unknown step kind",
		},
		{
			name: "reduce step in a routing schedule",
			corrupt: func(s *Schedule) {
				s.Rounds[0].Steps[0][0].Kind = Reduce
			},
			wantErr: "reduce step in a alltoall schedule",
		},
		{
			name: "peer out of range",
			corrupt: func(s *Schedule) {
				s.Rounds[1].Steps[0][0].To = s.Ranks
			},
			wantErr: "out of range",
		},
		{
			name: "self send",
			corrupt: func(s *Schedule) {
				s.Rounds[1].Steps[0][0].To = 0
			},
			wantErr: "",
		},
		{
			name: "unknown buffer space",
			corrupt: func(s *Schedule) {
				s.Rounds[1].Steps[0][0].Src.Buf = 9
			},
			wantErr: "unknown buffer space",
		},
		{
			name: "undelivered block",
			corrupt: func(s *Schedule) {
				// Drop the whole last round: every rank misses the block
				// from its farthest partner.
				s.Rounds = s.Rounds[:len(s.Rounds)-1]
			},
			wantErr: "never delivered",
		},
		{
			name: "overlapping copy ranges",
			corrupt: func(s *Schedule) {
				// The symbolic model would execute this slot by slot while
				// the executor memmoves: the verifier must reject overlap
				// rather than certify behavior the executor doesn't have.
				s.Scratch = []int{3}
				s.Rounds[0].Steps[0] = append(s.Rounds[0].Steps[0],
					Step{Kind: Copy, Src: sendRef(0, 2), Dst: scratchRef(0, 0, 2)},
					Step{Kind: Copy, Src: scratchRef(0, 0, 2), Dst: scratchRef(0, 1, 2)})
			},
			wantErr: "overlap",
		},
		{
			name: "non-positive scratch",
			corrupt: func(s *Schedule) {
				s.Scratch = []int{0}
			},
			wantErr: "scratch",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			s := mustGen(t, "pairwise", 6)
			if err := Verify(s); err != nil {
				t.Fatalf("pristine schedule rejected: %v", err)
			}
			tc.corrupt(s)
			err := Verify(s)
			if err == nil {
				t.Fatalf("corrupted schedule (%s) verified", tc.name)
			}
			if tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestVerifyRejectsSameRoundRaces builds the races the round discipline
// cannot tolerate by hand and checks the verifier names them.
func TestVerifyRejectsSameRoundRaces(t *testing.T) {
	t.Parallel()
	// Base: 2 ranks, scratch of 2 blocks, a valid exchange plus the
	// mutation under test.
	base := func() *Schedule {
		return &Schedule{
			Format: FormatVersion, Name: "hand", Ranks: 2, Scratch: []int{2},
			Rounds: []Round{{Steps: [][]Step{
				{
					selfCopy(0),
					{Kind: SendRecv, To: 1, Src: sendRef(1, 1), From: 1, Dst: recvRef(1, 1)},
				},
				{
					selfCopy(1),
					{Kind: SendRecv, To: 0, Src: sendRef(0, 1), From: 0, Dst: recvRef(0, 1)},
				},
			}}},
		}
	}
	if err := Verify(base()); err != nil {
		t.Fatalf("base schedule rejected: %v", err)
	}

	t.Run("copy reads same-round received data", func(t *testing.T) {
		t.Parallel()
		s := base()
		s.Rounds[0].Steps[0] = append(s.Rounds[0].Steps[0],
			Step{Kind: Copy, Src: recvRef(1, 1), Dst: scratchRef(0, 0, 1)})
		err := Verify(s)
		if err == nil || !strings.Contains(err.Error(), "received in the same round") {
			t.Fatalf("race not caught: %v", err)
		}
	})
	t.Run("copy overwrites same-round receive target", func(t *testing.T) {
		t.Parallel()
		s := base()
		// The self copy already writes recv[0]; make rank 0's receive
		// land on the same slot.
		s.Rounds[0].Steps[0][1].Dst = recvRef(0, 1)
		if err := Verify(s); err == nil {
			t.Fatal("overlapping copy/receive writes verified")
		}
	})
	t.Run("copy overwrites an issued send's buffer", func(t *testing.T) {
		t.Parallel()
		s := base()
		// Stage through scratch so the conflicting write is legal in
		// space terms: copy to scratch, send scratch, copy over scratch.
		s.Rounds[0].Steps[0] = []Step{
			selfCopy(0),
			{Kind: Copy, Src: sendRef(1, 1), Dst: scratchRef(0, 0, 1)},
			{Kind: SendRecv, To: 1, Src: scratchRef(0, 0, 1), From: 1, Dst: recvRef(1, 1)},
			{Kind: Copy, Src: sendRef(0, 1), Dst: scratchRef(0, 0, 1)},
		}
		err := Verify(s)
		if err == nil || !strings.Contains(err.Error(), "transmitting") {
			t.Fatalf("send-buffer overwrite not caught: %v", err)
		}
	})
	t.Run("copy reads undefined scratch", func(t *testing.T) {
		t.Parallel()
		s := base()
		s.Rounds[0].Steps[0] = append([]Step{
			{Kind: Copy, Src: scratchRef(0, 1, 1), Dst: scratchRef(0, 0, 1)},
		}, s.Rounds[0].Steps[0]...)
		err := Verify(s)
		if err == nil || !strings.Contains(err.Error(), "undefined") {
			t.Fatalf("undefined read not caught: %v", err)
		}
	})
	t.Run("two messages between one pair", func(t *testing.T) {
		t.Parallel()
		s := base()
		s.Rounds[0].Steps[0] = append(s.Rounds[0].Steps[0],
			Step{Kind: Send, To: 1, Src: sendRef(1, 1)})
		s.Rounds[0].Steps[1] = append(s.Rounds[0].Steps[1],
			Step{Kind: Recv, From: 0, Dst: scratchRef(0, 0, 1)})
		err := Verify(s)
		if err == nil || !strings.Contains(err.Error(), "two") {
			t.Fatalf("double message not caught: %v", err)
		}
	})
	t.Run("round with wrong rank fanout", func(t *testing.T) {
		t.Parallel()
		s := base()
		s.Rounds[0].Steps = s.Rounds[0].Steps[:1]
		if err := Verify(s); err == nil {
			t.Fatal("truncated round verified")
		}
	})
	t.Run("nil and empty", func(t *testing.T) {
		t.Parallel()
		if err := Verify(nil); err == nil {
			t.Fatal("nil schedule verified")
		}
		if err := Verify(&Schedule{Ranks: 2}); err == nil {
			t.Fatal("round-less schedule verified")
		}
	})
}
